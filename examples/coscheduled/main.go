// Co-scheduled consolidation (Section III-B3 of the paper): a high-priority
// latency-sensitive application (Swaptions) owns part of the machine, and a
// best-effort memory-intensive application (FT.C) wants to harvest the
// spare bandwidth of Swaptions' nodes without degrading it.
//
//	go run ./examples/coscheduled
//
// BWAP's two-stage co-scheduled tuner first raises FT.C's data-to-worker
// proximity until Swaptions' stall rate stabilizes (the protective lower
// bound), then continues optimizing FT.C itself.
package main

import (
	"fmt"
	"log"

	"bwap"
)

func main() {
	m := bwap.MachineA()
	cfg := bwap.Config{DemandFactor: 1.3}

	// FT.C runs on one node; Swaptions occupies the other seven.
	workers, err := bwap.BestWorkerSet(m, 1)
	if err != nil {
		log.Fatal(err)
	}
	best := mustByName("FT.C").Scaled(0.15)
	fmt.Printf("best-effort FT.C on %v; Swaptions on the remaining %d nodes\n\n",
		workers, len(bwap.RemainingNodes(m, workers)))

	ct := bwap.NewCanonicalTuner(m, cfg)
	for _, placer := range []bwap.Placer{
		bwap.UniformWorkers(),
		bwap.UniformAll(),
		bwap.NewBWAP(ct), // engages the co-scheduled tuner automatically
	} {
		res, err := bwap.RunCoScheduled(m, cfg, bwap.SwaptionsSpec(), best, workers, placer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s FT.C %6.2f s   Swaptions stall %.3f Gcycles/s\n",
			placer.Name(), res.Times["FT.C"], res.AvgStallRate["Swaptions"]/1e9)
		if b, ok := placer.(*bwap.BWAPPolicy); ok {
			if tuner := b.TunerFor("FT.C"); tuner != nil {
				fmt.Printf("%-16s chose DWP %.0f%%\n", "", tuner.BestDWP()*100)
			}
		}
	}
}

func mustByName(name string) bwap.Spec {
	s, err := bwap.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
