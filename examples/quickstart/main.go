// Quickstart: place one memory-intensive application with BWAP and compare
// it against the state-of-the-art uniform-workers placement.
//
//	go run ./examples/quickstart
//
// The flow mirrors how the paper's libnuma extension is used: build (or
// detect) the machine, run the offline canonical tuner once, deploy the
// application, and let the on-line DWP tuner adjust the placement during
// the first seconds of execution.
package main

import (
	"fmt"
	"log"

	"bwap"
)

func main() {
	// The paper's Machine A: 8 NUMA nodes with the Figure 1a asymmetric
	// interconnect.
	m := bwap.MachineA()

	// Deploy on the two nodes with the highest inter-worker bandwidth
	// (the AsymSched rule of thumb the paper adopts).
	workers, err := bwap.BestWorkerSet(m, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s\nworkers: %v (amplitude %.1fx)\n\n", m.Name, workers, m.BWAmplitude())

	// Streamcluster, scaled down so the demo finishes quickly.
	spec := bwap.Streamcluster().Scaled(0.1)

	// Offline stage: profile the machine once (results are cached per
	// worker set, as at installation time in the paper).
	ct := bwap.NewCanonicalTuner(m, bwap.Config{DemandFactor: 1.3})

	baseline, err := bwap.RunStandalone(m, bwap.Config{DemandFactor: 1.3}, spec, workers, bwap.UniformWorkers())
	if err != nil {
		log.Fatal(err)
	}

	policy := bwap.NewBWAP(ct)
	tuned, err := bwap.RunStandalone(m, bwap.Config{DemandFactor: 1.3}, spec, workers, policy)
	if err != nil {
		log.Fatal(err)
	}

	tb, tw := tuned.Times[spec.Name], baseline.Times[spec.Name]
	fmt.Printf("uniform-workers : %6.2f s\n", tw)
	fmt.Printf("bwap            : %6.2f s  (speedup %.2fx)\n", tb, tw/tb)
	if tuner := policy.TunerFor(spec.Name); tuner != nil {
		fmt.Printf("DWP chosen      : %.0f%% after %d measurement periods\n",
			tuner.BestDWP()*100, len(tuner.Trajectory()))
	}
}
