// Stand-alone policy bake-off (the Figure 3c/d scenario): every benchmark
// of the paper's suite at its optimal worker count, under all six
// placement policies.
//
//	go run ./examples/standalone
//
// Expect the ordering the paper reports: first-touch worst for
// multi-worker runs, uniform-all strong, BWAP best-or-comparable, with the
// biggest wins when the application does not scale to the whole machine.
package main

import (
	"fmt"
	"log"

	"bwap"
)

func main() {
	m := bwap.MachineA()
	cfg := bwap.Config{DemandFactor: 1.3}
	ct := bwap.NewCanonicalTuner(m, cfg)

	optimalWorkers := map[string]int{"SC": 4, "OC": 8, "ON": 8, "SP.B": 1, "FT.C": 8}

	fmt.Printf("%-6s %2s  %-12s %-16s %-12s %-10s\n", "bench", "W", "first-touch", "uniform-workers", "uniform-all", "bwap")
	for _, spec := range bwap.Benchmarks() {
		spec := spec.Scaled(0.1)
		workers, err := bwap.BestWorkerSet(m, optimalWorkers[spec.Name])
		if err != nil {
			log.Fatal(err)
		}
		times := make(map[string]float64)
		for _, placer := range []bwap.Placer{
			bwap.FirstTouch(), bwap.UniformWorkers(), bwap.UniformAll(), bwap.NewBWAP(ct),
		} {
			res, err := bwap.RunStandalone(m, cfg, spec, workers, placer)
			if err != nil {
				log.Fatal(err)
			}
			times[placer.Name()] = res.Times[spec.Name]
		}
		fmt.Printf("%-6s %2d  %9.2fs %13.2fs %9.2fs %7.2fs\n",
			spec.Name, len(workers),
			times["first-touch"], times["uniform-workers"], times["uniform-all"], times["bwap"])
	}
}
