// Custom topology: build your own NUMA machine from a bandwidth matrix and
// watch the canonical tuner react to its asymmetry — the core mechanism
// that distinguishes BWAP from uniform interleaving.
//
//	go run ./examples/customtopology
//
// The example builds a 4-node machine with one deliberately weak node and
// shows (a) the canonical weights shifting mass away from it (Equation 5)
// and (b) the end-to-end effect on a bandwidth-bound application.
package main

import (
	"fmt"
	"log"

	"bwap"
)

func main() {
	// Node 3 sits behind a half-width link: its bandwidth to everyone is
	// poor, and the paper's uniform-workers/uniform-all policies cannot
	// express "give node 3 fewer pages".
	m, err := bwap.FromMatrix(bwap.MatrixSpec{
		Name: "custom-4n (one weak node)",
		BW: [][]float64{
			{18.0, 9.0, 8.0, 2.0},
			{9.0, 18.0, 8.5, 2.0},
			{8.0, 8.5, 18.0, 2.0},
			{2.0, 2.0, 2.0, 18.0},
		},
		CoresPerNode:   6,
		MemoryPerNode:  4 << 30,
		LocalLatencyNs: 95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)

	cfg := bwap.Config{}
	ct := bwap.NewCanonicalTuner(m, cfg)
	workers := []bwap.NodeID{0, 1}
	weights, err := ct.Weights(workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical weights for workers %v:\n", workers)
	for i, w := range weights {
		fmt.Printf("  N%d: %.3f\n", i+1, w)
	}
	fmt.Println("(node 4's weak paths earn it the smallest share)")

	// A bandwidth-hungry app: uniform-all blindly puts 25% of pages on the
	// weak node; BWAP's weighted interleave does not.
	spec := bwap.SyntheticWorkload("stream", 60, 0, 0, 0.05)
	spec.WorkGB = 400
	for _, placer := range []bwap.Placer{bwap.UniformAll(), bwap.NewBWAP(ct)} {
		res, err := bwap.RunStandalone(m, cfg, spec, workers, placer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6.2f s\n", placer.Name(), res.Times["stream"])
	}
}
