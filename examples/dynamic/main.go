// Dynamic re-tuning (the paper's Section VI future work): an application
// whose access pattern changes mid-run — bandwidth-hungry first, then
// latency-bound. The one-shot DWP tuner freezes the placement after its
// first search; the dynamic variant watches the MAPI metric and re-tunes
// when the phase shifts.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"bwap"
)

func main() {
	m := bwap.MachineB()
	workers, err := bwap.BestWorkerSet(m, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 (first 40% of the work): full 60 GB/s streaming demand.
	// Phase 2: demand collapses to 12% and the code becomes latency-bound.
	spec := bwap.SyntheticWorkload("phasey", 60, 0, 0, 0.6)
	spec.WorkGB = 700
	spec.SharedGB = 0.032 // small hot set: re-tune migrations stay cheap
	spec.Phases = []bwap.WorkloadPhase{
		{AtWorkFraction: 0, DemandFactor: 1, LatencyFactor: 0.02},
		{AtWorkFraction: 0.4, DemandFactor: 0.12, LatencyFactor: 1.5},
	}
	params := bwap.Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}
	cfg := bwap.Config{Seed: 17} // deterministic counter-noise stream

	oneShot := bwap.NewBWAPUniform()
	oneShot.Params = params
	resStatic, err := bwap.RunStandalone(m, cfg, spec, workers, oneShot)
	if err != nil {
		log.Fatal(err)
	}

	dyn := bwap.NewDynamicBWAP(nil) // uniform canonical, like bwap-uniform
	dyn.Params = params
	resDyn, err := bwap.RunStandalone(m, cfg, spec, workers, dyn)
	if err != nil {
		log.Fatal(err)
	}

	ts, td := resStatic.Times["phasey"], resDyn.Times["phasey"]
	fmt.Printf("one-shot bwap : %6.1f s (DWP frozen after the first search)\n", ts)
	if tuner := dyn.TunerFor("phasey"); tuner != nil {
		fmt.Printf("bwap-dynamic  : %6.1f s (%d re-tune(s), final DWP %.0f%%)\n",
			td, tuner.ReTuneCount, tuner.AppliedDWP()*100)
	}
	fmt.Printf("improvement   : %6.1f%%\n", 100*(1-td/ts))
}
