package bwap_test

import (
	"fmt"
	"math"
	"testing"

	"bwap"
)

func TestPublicQuickstartFlow(t *testing.T) {
	m := bwap.MachineB()
	workers, err := bwap.BestWorkerSet(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := bwap.Streamcluster().Scaled(0.05)
	ct := bwap.NewCanonicalTuner(m, bwap.Config{})
	res, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, bwap.NewBWAP(ct))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("quickstart run timed out")
	}
	if tt := res.Times["SC"]; tt <= 0 || math.IsInf(tt, 0) {
		t.Fatalf("SC time = %v", tt)
	}
}

func TestPublicPolicyComparison(t *testing.T) {
	m := bwap.MachineA()
	workers, _ := bwap.BestWorkerSet(m, 2)
	spec := bwap.Streamcluster().Scaled(0.05)
	var firstTouch, uniform float64
	for _, tc := range []struct {
		placer bwap.Placer
		out    *float64
	}{
		{bwap.FirstTouch(), &firstTouch},
		{bwap.UniformAll(), &uniform},
	} {
		res, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, tc.placer)
		if err != nil {
			t.Fatal(err)
		}
		*tc.out = res.Times["SC"]
	}
	if uniform >= firstTouch {
		t.Fatalf("uniform-all (%v) not faster than first-touch (%v) for a BW-bound app", uniform, firstTouch)
	}
}

func TestPublicCoScheduled(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 2)
	best := bwap.Streamcluster().Scaled(0.05)
	res, err := bwap.RunCoScheduled(m, bwap.Config{}, bwap.SwaptionsSpec(), best, workers, bwap.NewBWAPUniform())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.AvgStallRate["Swaptions"]; !ok {
		t.Fatal("co-runner stall rate missing")
	}
	// Whole-machine worker set must be rejected.
	all, _ := bwap.BestWorkerSet(m, 4)
	if _, err := bwap.RunCoScheduled(m, bwap.Config{}, bwap.SwaptionsSpec(), best, all, bwap.UniformAll()); err == nil {
		t.Fatal("no-room co-schedule accepted")
	}
}

func TestPublicCustomMachineAndWorkload(t *testing.T) {
	m, err := bwap.FromMatrix(bwap.MatrixSpec{
		Name:           "custom",
		BW:             [][]float64{{20, 8}, {8, 20}},
		CoresPerNode:   4,
		MemoryPerNode:  1 << 30,
		LocalLatencyNs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := bwap.SyntheticWorkload("probe", 10, 2, 0.5, 0.1)
	spec.WorkGB = 20
	res, err := bwap.RunStandalone(m, bwap.Config{}, spec, []bwap.NodeID{0}, bwap.UniformWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if res.Times["probe"] <= 0 {
		t.Fatal("no completion time")
	}
}

func TestPublicWorkloadLookup(t *testing.T) {
	if len(bwap.Benchmarks()) != 5 {
		t.Fatal("benchmark suite wrong size")
	}
	if _, err := bwap.WorkloadByName("FT.C"); err != nil {
		t.Fatal(err)
	}
	if _, err := bwap.WorkloadByName("bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPublicTunerIntrospection(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 1)
	b := bwap.NewBWAPUniform()
	spec := bwap.SyntheticWorkload("lat", 6, 0, 0, 1.0)
	spec.WorkGB = 150
	if _, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, b); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("lat")
	if tuner == nil {
		t.Fatal("tuner not recorded")
	}
	if len(tuner.Trajectory()) == 0 {
		t.Fatal("no measurements recorded")
	}
	if tuner.AppliedDWP() < 0.5 {
		t.Fatalf("latency-bound app should climb: DWP %v", tuner.AppliedDWP())
	}
}

func TestPublicMachineConstructors(t *testing.T) {
	if m := bwap.MachineA(); m.NumNodes() != 8 {
		t.Fatal("MachineA wrong shape")
	}
	if m := bwap.Symmetric(4, 4, 20, 10); m.BWAmplitude() != 2 {
		t.Fatal("Symmetric wrong amplitude")
	}
	if m := bwap.HybridDRAMNVRAM(2, 2, 8, 24, 6); m.NumNodes() != 4 {
		t.Fatal("Hybrid wrong shape")
	}
}

func TestPublicAllPolicies(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 2)
	spec := bwap.Streamcluster().Scaled(0.02)
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	for _, placer := range []bwap.Placer{
		bwap.FirstTouch(),
		bwap.UniformWorkers(),
		bwap.UniformAll(),
		bwap.AutoNUMA(),
		bwap.StaticWeighted(weights),
	} {
		res, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, placer)
		if err != nil {
			t.Fatalf("%s: %v", placer.Name(), err)
		}
		if res.Times["SC"] <= 0 {
			t.Fatalf("%s: no completion", placer.Name())
		}
	}
}

func TestPublicRemainingNodes(t *testing.T) {
	m := bwap.MachineA()
	workers, _ := bwap.BestWorkerSet(m, 3)
	rest := bwap.RemainingNodes(m, workers)
	if len(workers)+len(rest) != m.NumNodes() {
		t.Fatal("node partition broken")
	}
}

func TestPublicMAPIAndPhaseDetection(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 1)
	spec := bwap.Streamcluster().Scaled(0.02)
	e := bwap.NewEngine(m, bwap.Config{})
	app, err := e.AddApp("SC", spec, workers, bwap.UniformAll())
	if err != nil {
		t.Fatal(err)
	}
	det := bwap.NewPhaseDetector(app)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bwap.MemoryIntensive(app, 0) {
		t.Fatal("SC must classify memory-intensive")
	}
	det.Observe(e.Now()) // detector usable through the façade
}

func TestPublicAutoDetectStablePhasePolicy(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 1)
	spec := bwap.SyntheticWorkload("lat", 6, 0, 0, 1.0)
	spec.WorkGB = 120
	spec = spec.WithInitPhase(1.5, 0.2)
	b := bwap.NewBWAPUniform()
	b.AutoDetectStablePhase = true
	if _, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, b); err != nil {
		t.Fatal(err)
	}
	if tuner := b.TunerFor("lat"); tuner == nil || len(tuner.Trajectory()) == 0 {
		t.Fatal("auto-detected tuner did not run")
	}
}

func TestPublicDynamicBWAP(t *testing.T) {
	m := bwap.MachineB()
	workers, _ := bwap.BestWorkerSet(m, 1)
	spec := bwap.SyntheticWorkload("phasey", 50, 0, 0, 0.5)
	spec.WorkGB = 400
	spec.Phases = []bwap.WorkloadPhase{
		{AtWorkFraction: 0, DemandFactor: 1, LatencyFactor: 0.05},
		{AtWorkFraction: 0.5, DemandFactor: 0.1, LatencyFactor: 2},
	}
	ct := bwap.NewCanonicalTuner(m, bwap.Config{})
	d := bwap.NewDynamicBWAP(ct)
	// Short sampling periods so both the phase-1 search and the re-tune
	// fit in this compressed run.
	d.Params = bwap.Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}
	res, err := bwap.RunStandalone(m, bwap.Config{}, spec, workers, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("dynamic run timed out")
	}
	tuner := d.TunerFor("phasey")
	if tuner == nil {
		t.Fatal("no re-tuner")
	}
	if tuner.ReTuneCount == 0 {
		t.Fatal("phase change not followed")
	}
}

// Example demonstrates the end-to-end BWAP flow on the paper's Machine A.
func Example() {
	m := bwap.MachineA()
	workers, _ := bwap.BestWorkerSet(m, 2)
	ct := bwap.NewCanonicalTuner(m, bwap.Config{})
	weights, _ := ct.Weights(workers)
	fmt.Printf("workers %v get the largest canonical weights: %.2f %.2f\n",
		workers, weights[workers[0]], weights[workers[1]])
	// Output:
	// workers [0 1] get the largest canonical weights: 0.26 0.26
}

func TestPublicFleetQuickstart(t *testing.T) {
	cache := bwap.NewTuningCache(bwap.Config{Seed: 5}, 0, 5)
	f, err := bwap.NewFleet(bwap.FleetConfig{
		Machines: 2,
		SimCfg:   bwap.Config{Seed: 5},
		Seed:     5,
		Cache:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = f.SubmitStream([]bwap.StreamSpec{{
		Workload: bwap.Streamcluster(),
		Arrival:  bwap.ArrivalSpec{Process: "periodic", Rate: 0.1, Count: 3},
		Workers:  2, WorkScale: 0.02,
	}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 {
		t.Fatalf("completed %d/3", stats.Completed)
	}
	if stats.CacheMisses == 0 || stats.CacheHits == 0 {
		t.Fatalf("cache accounting hits=%d misses=%d", stats.CacheHits, stats.CacheMisses)
	}
	recs, err := bwap.DecodeFleetLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty fleet event log")
	}
}
