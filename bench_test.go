// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, running reduced-budget (Quick) versions of the experiment
// harnesses so a full `go test -bench=.` completes in minutes. The
// full-fidelity artifacts are produced by cmd/bwap-experiments.
package bwap_test

import (
	"fmt"
	"testing"

	"bwap"
	"bwap/internal/core"
	"bwap/internal/experiments"
	"bwap/internal/mm"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

func BenchmarkFig1aBandwidthMatrix(b *testing.B) {
	p := experiments.MachineA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig1a(p)
		if len(f.Matrix) != 8 {
			b.Fatal("bad matrix")
		}
	}
}

func BenchmarkFig1bOfflineSearch(b *testing.B) {
	p := experiments.MachineA().Quick()
	p.SearchBudget = 24
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1b(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Characterization(b *testing.B) {
	p := experiments.MachineB().Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2CoScheduledMachineA(b *testing.B) {
	p := experiments.MachineA().Quick()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		for _, nw := range []int{1, 2, 4} {
			if _, err := experiments.RunCoScheduled(p, nw, "fig2"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig3abCoScheduledMachineB(b *testing.B) {
	p := experiments.MachineB().Quick()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		for _, nw := range []int{1, 2} {
			if _, err := experiments.RunCoScheduled(p, nw, "fig3"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig3cdStandalone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []*experiments.Profile{experiments.MachineA().Quick(), experiments.MachineB().Quick()} {
			p.Seeds = 1
			if _, err := experiments.RunStandalone(p, "fig3cd"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2DWPSearch(b *testing.B) {
	p := experiments.MachineB().Quick()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(p, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DWPSweep(b *testing.B) {
	p := experiments.MachineA().Quick()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(p, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadAnalysis(b *testing.B) {
	p := experiments.MachineA().Quick()
	p.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOverhead(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKernelVsUser(b *testing.B) {
	p := experiments.MachineA().Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunKernelVsUserAblation(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationCanonicalTuner measures bwap vs bwap-uniform (the
// canonical tuner's contribution) on the strongly asymmetric machine.
func BenchmarkAblationCanonicalTuner(b *testing.B) {
	p := experiments.MachineA().Quick()
	p.Seeds = 1
	ws, err := p.Workers(2)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ByName("FT.C")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, pol := range []string{"bwap-uniform", "bwap"} {
			if _, err := p.Run(spec, ws, pol, true); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationHybridMemory exercises the Section VI hybrid-memory
// future-work scenario: canonical weighting vs uniform-all on DRAM+NVRAM.
func BenchmarkAblationHybridMemory(b *testing.B) {
	m := topology.HybridDRAMNVRAM(2, 2, 8, 24, 6)
	cfg := sim.Config{Seed: 31}
	ct := core.NewCanonicalTuner(m, cfg)
	spec := workload.Synthetic("stream", 60, 0, 0, 0.1)
	spec.WorkGB = 150
	workers := []topology.NodeID{0, 1}
	for i := 0; i < b.N; i++ {
		for _, placer := range []sim.Placer{
			core.StaticDWP{Uniform: true, DWP: 0, UserLevel: true},
			core.StaticDWP{Canonical: ct, DWP: 0, UserLevel: true},
		} {
			e := sim.New(m, cfg)
			if _, err := e.AddApp("stream", spec, workers, placer); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineTickThroughput measures raw simulator speed: simulated
// seconds per wall second for a fully loaded co-scheduled Machine A.
func BenchmarkEngineTickThroughput(b *testing.B) {
	m := topology.MachineA()
	spec := workload.OceanCP
	spec.WorkGB = 1e9 // never finishes; we bound by MaxTime
	for i := 0; i < b.N; i++ {
		e := sim.New(m, sim.Config{MaxTime: 10, DemandFactor: 1.3})
		if _, err := e.AddApp("oc", spec, []topology.NodeID{0, 1, 2, 3}, policyUniformAll{}); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type policyUniformAll struct{}

func (policyUniformAll) Name() string { return "uniform-all" }
func (policyUniformAll) Place(e *sim.Engine, a *sim.App) error {
	all := make([]topology.NodeID, e.M.NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	for _, seg := range a.Segments() {
		if err := seg.Mbind(0, seg.Length(), all, mm.MoveFlag); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkEngineQuiescentAdvance measures the quiescent-interval
// fast-forward on a long quiescent single-app run: 3000 ticks advanced
// with the memoized replay path ("on") vs. the naive solve-every-tick
// reference ("off"). The two are byte-identical in results (pinned by
// TestFastForwardEquivalence); the acceptance criterion is on ≥ 5× faster.
func BenchmarkEngineQuiescentAdvance(b *testing.B) {
	m := topology.MachineA()
	spec := workload.OceanCP
	spec.WorkGB = 1e9 // quiescent throughout: nothing ever completes
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := sim.New(m, sim.Config{MaxTime: 1e9, DemandFactor: 1.3, DisableFastForward: mode.disable})
				app, err := e.AddApp("oc", spec, []topology.NodeID{0, 1, 2, 3}, policyUniformAll{})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.PlaceApp(app); err != nil {
					b.Fatal(err)
				}
				e.AdvanceToQuiescent(300)
				if e.Ticks() != 3000 {
					b.Fatalf("advanced %d ticks, want 3000", e.Ticks())
				}
			}
			b.ReportMetric(300*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
		})
	}
}

// BenchmarkDynamicReTuning measures the Section VI extension experiment.
func BenchmarkDynamicReTuning(b *testing.B) {
	p := experiments.MachineB().Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDynamicExtension(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetThroughput measures the fleet scheduler's job-stream rate:
// jobs scheduled (admitted, run, completed and retuned) per wall second on
// a warm tuning cache. The stream repeats one workload class, so after the
// first iteration every admission is a cache hit — the steady state of a
// long-running bwapd.
func BenchmarkFleetThroughput(b *testing.B) {
	cache := bwap.NewTuningCache(bwap.Config{Seed: 1}, 0, 1)
	const jobs = 12
	stream := []bwap.StreamSpec{{
		Workload: bwap.Streamcluster(),
		Arrival:  bwap.ArrivalSpec{Process: "poisson", Rate: 0.4, Count: jobs},
		Workers:  2, WorkScale: 0.02,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := bwap.NewFleet(bwap.FleetConfig{
			Machines: 2,
			SimCfg:   bwap.Config{Seed: 1},
			Seed:     1,
			Cache:    cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.SubmitStream(stream); err != nil {
			b.Fatal(err)
		}
		stats, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Completed != jobs {
			b.Fatalf("completed %d/%d", stats.Completed, jobs)
		}
	}
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkFleetThroughputSharded measures the scheduler's multi-core
// scaling axis: the identical warm-cache job stream over 8 machines at 1,
// 2 and 4 shards with the worker pool sized to match, under both advance
// engines (v1 per-tick barrier, v2 conservative-lookahead windows).
// Least-loaded routing keeps every placement — and, per engine, the
// event log — bit-identical across shard counts, so the sub-benchmarks
// do the same simulated work; jobs/s differences are pure tick-advance
// parallelism. (On a single-core runner the shard counts tie modulo
// barrier overhead; the /4-beats-/1 gate for v2 assumes ≥4 cores and is
// enforced by the CI multicore job via TestShardScalingMultiCoreGate.)
func BenchmarkFleetThroughputSharded(b *testing.B) {
	cache := bwap.NewTuningCache(bwap.Config{Seed: 1}, 0, 1)
	const jobs = 24
	stream := []bwap.StreamSpec{{
		Workload: bwap.Streamcluster(),
		Arrival:  bwap.ArrivalSpec{Process: "poisson", Rate: 2.0, Count: jobs},
		Workers:  2, WorkScale: 0.02,
	}}
	// Warm the shared cache before any timed iteration: otherwise the
	// first sub-benchmark pays every profiling probe inside its timed loop
	// and the cross-shard speedup ratios are skewed.
	warm, err := bwap.NewFleet(bwap.FleetConfig{
		Machines: 8, SimCfg: bwap.Config{Seed: 1}, Seed: 1, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.SubmitStream(stream); err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Run(); err != nil {
		b.Fatal(err)
	}
	for _, engine := range []int{1, 2} {
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("v%d/%d", engine, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f, err := bwap.NewFleet(bwap.FleetConfig{
						Machines:      8,
						Shards:        shards,
						Workers:       shards,
						EngineVersion: engine,
						SimCfg:        bwap.Config{Seed: 1},
						Seed:          1,
						Cache:         cache,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := f.SubmitStream(stream); err != nil {
						b.Fatal(err)
					}
					stats, err := f.Run()
					if err != nil {
						b.Fatal(err)
					}
					if stats.Completed != jobs {
						b.Fatalf("completed %d/%d", stats.Completed, jobs)
					}
				}
				b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// probeBurstStreams builds n single-job streams whose workload specs all
// hash to distinct signatures, so a cold tuning cache owes one probe
// mini-sim per stream — the worst-case admission burst a fresh bwapd
// faces. Shared by BenchmarkColdCacheProbeBurst and the CI multicore
// probe gate in scaling_test.go.
func probeBurstStreams(n int) []bwap.StreamSpec {
	streams := make([]bwap.StreamSpec, n)
	for i := range streams {
		spec := bwap.Streamcluster()
		spec.ReadGBs += 0.25 * float64(i) // distinct signature => distinct probe key
		streams[i] = bwap.StreamSpec{
			Workload: spec,
			Arrival:  bwap.ArrivalSpec{Process: "poisson", Rate: 4.0, Count: 1},
			Workers:  2, WorkScale: 0.02,
		}
	}
	return streams
}

// BenchmarkColdCacheProbeBurst measures the speculative probe pool on its
// target scenario: a cold cache hit by a burst of distinct workload
// classes, where every admission owes a probe mini-sim. Each iteration
// builds a fresh fleet with a fresh private cache, so nothing is ever
// warm; the sub-benchmarks differ only in pool width. On a multi-core
// runner probe-workers=4 overlaps up to four probes with the scheduler
// and beats probe-workers=1 (enforced by TestProbeBurstMultiCoreGate in
// CI); the event logs are byte-identical either way.
func BenchmarkColdCacheProbeBurst(b *testing.B) {
	const sigs = 12
	streams := probeBurstStreams(sigs)
	for _, pw := range []int{1, 4} {
		b.Run(fmt.Sprintf("probe-workers=%d", pw), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := bwap.NewFleet(bwap.FleetConfig{
					Machines:      8,
					Shards:        2,
					Workers:       2,
					EngineVersion: 2,
					ProbeWorkers:  pw,
					SimCfg:        bwap.Config{Seed: 1},
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := f.SubmitStream(streams); err != nil {
					b.Fatal(err)
				}
				stats, err := f.Run()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Completed != sigs {
					b.Fatalf("completed %d/%d", stats.Completed, sigs)
				}
				if stats.CacheMisses == 0 {
					b.Fatal("cold run recorded no probe misses; the burst is vacuous")
				}
			}
			b.ReportMetric(float64(sigs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkFleetTelemetryOverhead prices the observer on the fleet's
// event path: the identical warm-cache stream with telemetry off and on
// (counters, histograms and timeline; spans stay off, as they would on a
// hot path). The off/on delta is the telemetry-overhead headline in
// BENCH_5.json — the observer consumes records the scheduler emits
// anyway, so the two sub-benchmarks should be within noise of each other.
func BenchmarkFleetTelemetryOverhead(b *testing.B) {
	cache := bwap.NewTuningCache(bwap.Config{Seed: 1}, 0, 1)
	const jobs = 12
	stream := []bwap.StreamSpec{{
		Workload: bwap.Streamcluster(),
		Arrival:  bwap.ArrivalSpec{Process: "poisson", Rate: 0.4, Count: jobs},
		Workers:  2, WorkScale: 0.02,
	}}
	warm, err := bwap.NewFleet(bwap.FleetConfig{
		Machines: 2, SimCfg: bwap.Config{Seed: 1}, Seed: 1, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.SubmitStream(stream); err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Run(); err != nil {
		b.Fatal(err)
	}
	for _, telemetry := range []bool{false, true} {
		name := "off"
		if telemetry {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := bwap.FleetConfig{
					Machines: 2,
					SimCfg:   bwap.Config{Seed: 1},
					Seed:     1,
					Cache:    cache,
				}
				if telemetry {
					cfg.Obs = bwap.NewFleetObserver(bwap.FleetObserverConfig{})
				}
				f, err := bwap.NewFleet(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := f.SubmitStream(stream); err != nil {
					b.Fatal(err)
				}
				stats, err := f.Run()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Completed != jobs {
					b.Fatalf("completed %d/%d", stats.Completed, jobs)
				}
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
