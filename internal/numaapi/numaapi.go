// Package numaapi provides a libnuma-flavoured interface over the simulated
// memory subsystem. BWAP is "implemented as an extension to Linux libnuma"
// (Section I): it enriches the stock interface with a bw-interleaved policy.
// This package supplies the stock part — node masks, uniform interleaving,
// mbind wrappers — mirroring the names a libnuma user would reach for, so
// that the core package's extension point matches the paper's.
package numaapi

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"bwap/internal/mm"
	"bwap/internal/topology"
)

// Bitmask is a fixed-width node bitmask, the moral equivalent of libnuma's
// struct bitmask. It supports machines with up to 64 nodes, which covers
// every commodity NUMA system the paper considers.
type Bitmask uint64

// NewBitmask returns a mask with the given nodes set.
func NewBitmask(nodes ...topology.NodeID) Bitmask {
	var b Bitmask
	for _, n := range nodes {
		b = b.Set(n)
	}
	return b
}

// AllNodes returns a mask with nodes [0, n) set.
func AllNodes(n int) Bitmask {
	if n >= 64 {
		return ^Bitmask(0)
	}
	return Bitmask(1)<<uint(n) - 1
}

// Set returns b with node n set.
func (b Bitmask) Set(n topology.NodeID) Bitmask { return b | 1<<uint(n) }

// Clear returns b with node n cleared.
func (b Bitmask) Clear(n topology.NodeID) Bitmask { return b &^ (1 << uint(n)) }

// IsSet reports whether node n is set.
func (b Bitmask) IsSet(n topology.NodeID) bool { return b&(1<<uint(n)) != 0 }

// Count returns the number of set nodes.
func (b Bitmask) Count() int { return bits.OnesCount64(uint64(b)) }

// Nodes returns the set nodes in ascending order.
func (b Bitmask) Nodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, b.Count())
	for v := uint64(b); v != 0; {
		n := bits.TrailingZeros64(v)
		out = append(out, topology.NodeID(n))
		v &^= 1 << uint(n)
	}
	return out
}

// Union returns b ∪ o.
func (b Bitmask) Union(o Bitmask) Bitmask { return b | o }

// Intersect returns b ∩ o.
func (b Bitmask) Intersect(o Bitmask) Bitmask { return b & o }

// Complement returns the nodes of [0,n) not in b.
func (b Bitmask) Complement(n int) Bitmask { return AllNodes(n) &^ b }

// String renders the mask in numactl range syntax, e.g. "0-2,5".
func (b Bitmask) String() string {
	if b == 0 {
		return ""
	}
	var buf [256]byte
	return string(b.AppendRanges(buf[:0]))
}

// AppendRanges appends the numactl range rendering of b (the same bytes
// String returns) to dst — for callers building cache keys without the
// intermediate node slice, parts slice and join that a naive rendering
// costs.
func (b Bitmask) AppendRanges(dst []byte) []byte {
	v := uint64(b)
	first := true
	for v != 0 {
		start := bits.TrailingZeros64(v)
		end := start
		for end < 63 && v&(1<<uint(end+1)) != 0 {
			end++
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = strconv.AppendInt(dst, int64(start), 10)
		if end > start {
			dst = append(dst, '-')
			dst = strconv.AppendInt(dst, int64(end), 10)
		}
		// Clear [start, end]; a shift count of 64 yields 0 in Go, so the
		// end == 63 case clears through the top bit correctly.
		v &^= (uint64(1)<<uint(end+1) - 1) &^ (uint64(1)<<uint(start) - 1)
	}
	return dst
}

// ParseBitmask parses numactl range syntax ("0-2,5") into a mask.
func ParseBitmask(s string) (Bitmask, error) {
	var b Bitmask
	if strings.TrimSpace(s) == "" {
		return 0, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			l, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return 0, fmt.Errorf("numaapi: bad range %q: %v", part, err)
			}
			h, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return 0, fmt.Errorf("numaapi: bad range %q: %v", part, err)
			}
			if l > h || l < 0 || h > 63 {
				return 0, fmt.Errorf("numaapi: bad range %q", part)
			}
			for n := l; n <= h; n++ {
				b = b.Set(topology.NodeID(n))
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 63 {
			return 0, fmt.Errorf("numaapi: bad node %q", part)
		}
		b = b.Set(topology.NodeID(n))
	}
	return b, nil
}

// InterleaveMemory applies numa_interleave_memory semantics: uniform page
// interleaving of the whole segment over the masked nodes, migrating
// non-conforming pages.
func InterleaveMemory(seg *mm.Segment, mask Bitmask) error {
	if mask.Count() == 0 {
		return fmt.Errorf("numaapi: interleave with empty node mask")
	}
	return seg.Mbind(0, seg.Length(), mask.Nodes(), mm.MoveFlag)
}

// BindMemory applies numa_tonode_memory semantics: bind the whole segment
// to one node, migrating pages.
func BindMemory(seg *mm.Segment, node topology.NodeID) error {
	return seg.Mbind(0, seg.Length(), []topology.NodeID{node}, mm.MoveFlag)
}

// MbindRange exposes raw mbind over a byte range of a segment with uniform
// interleaving over the masked nodes — the call Algorithm 1 issues per
// sub-range.
func MbindRange(seg *mm.Segment, offset, length uint64, mask Bitmask, flags mm.Flags) error {
	if mask.Count() == 0 {
		return fmt.Errorf("numaapi: mbind with empty node mask")
	}
	return seg.Mbind(offset, length, mask.Nodes(), flags)
}

// WeightedInterleaveMemory applies the kernel-level weighted interleave
// policy the paper adds behind a new system call (Section III-B2).
func WeightedInterleaveMemory(seg *mm.Segment, weights []float64) error {
	return seg.MbindWeighted(weights, mm.MoveFlag)
}

// SortedByWeight returns the masked nodes ordered by ascending weight —
// the iteration order of Algorithm 1 ("getNodeWithMinWeight"). Ties break
// by node id for determinism.
func SortedByWeight(weights []float64, mask Bitmask) []topology.NodeID {
	return AppendSortedByWeight(make([]topology.NodeID, 0, mask.Count()), weights, mask)
}

// AppendSortedByWeight appends the masked nodes in SortedByWeight's order
// onto dst and returns the extended slice — the non-allocating form for
// callers that own a scratch buffer.
func AppendSortedByWeight(dst []topology.NodeID, weights []float64, mask Bitmask) []topology.NodeID {
	base := len(dst)
	for v := uint64(mask); v != 0; {
		n := bits.TrailingZeros64(v)
		dst = append(dst, topology.NodeID(n))
		v &^= 1 << uint(n)
	}
	nodes := dst[base:]
	// Insertion sort: masks hold at most machine-sized node counts, and
	// this runs per placement inside Algorithm 1 — the sort.SliceStable
	// closure and reflection swapper were measurable allocation traffic.
	// The weight-then-id order is total, so stability is moot but
	// insertion sort preserves it anyway.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0; j-- {
			wi, wj := weights[nodes[j]], weights[nodes[j-1]]
			if wi > wj || (wi == wj && nodes[j] > nodes[j-1]) {
				break
			}
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	return dst
}
