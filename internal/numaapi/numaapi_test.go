package numaapi

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"bwap/internal/mm"
	"bwap/internal/topology"
)

func TestBitmaskBasics(t *testing.T) {
	b := NewBitmask(0, 2, 5)
	if !b.IsSet(0) || !b.IsSet(2) || !b.IsSet(5) || b.IsSet(1) {
		t.Fatalf("membership wrong: %b", b)
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b = b.Clear(2)
	if b.IsSet(2) || b.Count() != 2 {
		t.Fatalf("Clear failed: %b", b)
	}
}

func TestBitmaskNodesSorted(t *testing.T) {
	b := NewBitmask(7, 1, 4)
	nodes := b.Nodes()
	want := []topology.NodeID{1, 4, 7}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestAllNodesAndComplement(t *testing.T) {
	all := AllNodes(8)
	if all.Count() != 8 {
		t.Fatalf("AllNodes(8).Count = %d", all.Count())
	}
	workers := NewBitmask(0, 1)
	non := workers.Complement(8)
	if non.Count() != 6 || non.IsSet(0) || non.IsSet(1) {
		t.Fatalf("Complement wrong: %v", non.Nodes())
	}
	if AllNodes(64).Count() != 64 {
		t.Fatalf("AllNodes(64) = %d bits", AllNodes(64).Count())
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := NewBitmask(0, 1), NewBitmask(1, 2)
	if got := a.Union(b); got.Count() != 3 {
		t.Fatalf("Union = %v", got.Nodes())
	}
	if got := a.Intersect(b); got.Count() != 1 || !got.IsSet(1) {
		t.Fatalf("Intersect = %v", got.Nodes())
	}
}

func TestBitmaskString(t *testing.T) {
	cases := []struct {
		mask Bitmask
		want string
	}{
		{NewBitmask(), ""},
		{NewBitmask(3), "3"},
		{NewBitmask(0, 1, 2), "0-2"},
		{NewBitmask(0, 1, 2, 5), "0-2,5"},
		{NewBitmask(0, 2, 3, 4, 7), "0,2-4,7"},
	}
	for _, c := range cases {
		if got := c.mask.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.mask.Nodes(), got, c.want)
		}
	}
}

// referenceRangeString is the original Nodes-slice formulation of the
// numactl range rendering, kept verbatim as an oracle for the bit-twiddling
// AppendRanges rewrite: workerKey-style cache keys depend on the bytes not
// drifting.
func referenceRangeString(b Bitmask) string {
	nodes := b.Nodes()
	if len(nodes) == 0 {
		return ""
	}
	var parts []string
	start, prev := nodes[0], nodes[0]
	flush := func() {
		if start == prev {
			parts = append(parts, strconv.Itoa(int(start)))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, n := range nodes[1:] {
		if n == prev+1 {
			prev = n
			continue
		}
		flush()
		start, prev = n, n
	}
	flush()
	return strings.Join(parts, ",")
}

func TestAppendRangesMatchesReference(t *testing.T) {
	for _, b := range []Bitmask{0, 1, Bitmask(1) << 63, ^Bitmask(0), NewBitmask(0, 2, 3, 4, 7, 63)} {
		if got, want := string(b.AppendRanges(nil)), referenceRangeString(b); got != want {
			t.Errorf("AppendRanges(%#x) = %q, want %q", uint64(b), got, want)
		}
	}
	f := func(raw uint64) bool {
		b := Bitmask(raw)
		return string(b.AppendRanges(nil)) == referenceRangeString(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseBitmask(t *testing.T) {
	b, err := ParseBitmask("0-2,5")
	if err != nil {
		t.Fatal(err)
	}
	if b != NewBitmask(0, 1, 2, 5) {
		t.Fatalf("parsed %v", b.Nodes())
	}
	if _, err := ParseBitmask("2-1"); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := ParseBitmask("x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if b, err := ParseBitmask(""); err != nil || b != 0 {
		t.Fatal("empty string must parse to empty mask")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		b := Bitmask(raw)
		parsed, err := ParseBitmask(b.String())
		return err == nil && parsed == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveMemory(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*8, mm.SharedOwner)
	if err := InterleaveMemory(seg, NewBitmask(0, 2)); err != nil {
		t.Fatal(err)
	}
	c := seg.Counts()
	if c[0] != 4 || c[2] != 4 {
		t.Fatalf("counts = %v", c)
	}
	if err := InterleaveMemory(seg, NewBitmask()); err == nil {
		t.Fatal("empty mask accepted")
	}
}

func TestBindMemory(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*8, mm.SharedOwner)
	seg.FaultAll(0)
	if err := BindMemory(seg, 3); err != nil {
		t.Fatal(err)
	}
	if seg.Counts()[3] != 8 {
		t.Fatalf("counts = %v", seg.Counts())
	}
}

func TestMbindRange(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*8, mm.SharedOwner)
	if err := MbindRange(seg, 0, 4*mm.PageSize, NewBitmask(1), mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	if seg.Counts()[1] != 4 {
		t.Fatalf("counts = %v", seg.Counts())
	}
	if err := MbindRange(seg, 0, mm.PageSize, NewBitmask(), 0); err == nil {
		t.Fatal("empty mask accepted")
	}
}

func TestWeightedInterleaveMemory(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*100, mm.SharedOwner)
	if err := WeightedInterleaveMemory(seg, []float64{0.7, 0.3, 0, 0}); err != nil {
		t.Fatal(err)
	}
	c := seg.Counts()
	if c[0] != 70 || c[1] != 30 {
		t.Fatalf("counts = %v, want [70 30 0 0]", c)
	}
}

func TestSortedByWeight(t *testing.T) {
	w := []float64{0.4, 0.1, 0.1, 0.4}
	got := SortedByWeight(w, NewBitmask(0, 1, 2, 3))
	want := []topology.NodeID{1, 2, 0, 3} // ties break by id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedByWeight = %v, want %v", got, want)
		}
	}
}
