package topology

import (
	"math"
	"strings"
	"testing"
)

func TestMachineAValidates(t *testing.T) {
	m := MachineA()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 8 {
		t.Fatalf("MachineA nodes = %d, want 8", m.NumNodes())
	}
	if m.TotalCores() != 64 {
		t.Fatalf("MachineA cores = %d, want 64", m.TotalCores())
	}
}

func TestMachineBValidates(t *testing.T) {
	m := MachineB()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4 {
		t.Fatalf("MachineB nodes = %d, want 4", m.NumNodes())
	}
	if m.TotalCores() != 28 {
		t.Fatalf("MachineB cores = %d, want 28", m.TotalCores())
	}
}

// TestMachineANominalMatrixMatchesFig1a is the calibration check: the
// pairwise measured bandwidth of the simulated Machine A must reproduce
// Figure 1a of the paper exactly.
func TestMachineANominalMatrixMatchesFig1a(t *testing.T) {
	m := MachineA()
	got := m.NominalMatrix()
	for s := range machineAMatrix {
		for d := range machineAMatrix[s] {
			if math.Abs(got[s][d]-machineAMatrix[s][d]) > 1e-9 {
				t.Errorf("nominal BW[%d][%d] = %.2f, want %.2f (Fig. 1a)", s, d, got[s][d], machineAMatrix[s][d])
			}
		}
	}
}

func TestMachineAAmplitude(t *testing.T) {
	// The paper: "the lowest BW in machine A was 5.8x lower than the highest".
	amp := MachineA().BWAmplitude()
	if amp < 5.7 || amp > 5.95 {
		t.Fatalf("MachineA amplitude = %.2f, want ~5.8", amp)
	}
}

func TestMachineBAsymmetryRatios(t *testing.T) {
	// The paper: local/nearest ~1.8x, local/farthest 2.3x on machine B.
	m := MachineB()
	local := m.NominalBW(0, 0)
	nearest := m.NominalBW(1, 0)
	farthest := local
	for s := 0; s < m.NumNodes(); s++ {
		for d := 0; d < m.NumNodes(); d++ {
			if v := m.NominalBW(NodeID(s), NodeID(d)); v < farthest {
				farthest = v
			}
		}
	}
	if r := local / nearest; r < 1.7 || r > 1.9 {
		t.Fatalf("local/nearest = %.2f, want ~1.8", r)
	}
	if r := local / farthest; r < 2.2 || r > 2.4 {
		t.Fatalf("local/farthest = %.2f, want ~2.3", r)
	}
}

func TestLocalRoutesEmptyRemoteRoutesNot(t *testing.T) {
	for _, m := range []*Machine{MachineA(), MachineB(), Symmetric(4, 4, 20, 10)} {
		for s := 0; s < m.NumNodes(); s++ {
			for d := 0; d < m.NumNodes(); d++ {
				r := m.Route(NodeID(s), NodeID(d))
				if s == d && len(r) != 0 {
					t.Fatalf("%s: local route %d->%d not empty", m.Name, s, d)
				}
				if s != d && len(r) == 0 {
					t.Fatalf("%s: remote route %d->%d empty", m.Name, s, d)
				}
			}
		}
	}
}

func TestCrossPackageRoutesShareTrunk(t *testing.T) {
	m := MachineA()
	// Nodes 0 and 1 are package 0; nodes 4 and 5 are package 2. Flows 0->4
	// and 1->5 must share at least one link (the package trunk), which is
	// what creates interconnect congestion between them.
	shared := false
	for _, a := range m.Route(0, 4) {
		for _, b := range m.Route(1, 5) {
			if a == b {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("cross-package flows 0->4 and 1->5 share no trunk link")
	}
	// Intra-package pairs must NOT cross a trunk (single direct link).
	if got := len(m.Route(0, 1)); got != 1 {
		t.Fatalf("intra-package route 0->1 has %d links, want 1", got)
	}
}

func TestLatencyMonotoneInBandwidth(t *testing.T) {
	// Lower-bandwidth (longer) paths must have higher synthesized latency.
	m := MachineA()
	for d := 0; d < m.NumNodes(); d++ {
		for s1 := 0; s1 < m.NumNodes(); s1++ {
			for s2 := 0; s2 < m.NumNodes(); s2++ {
				b1, b2 := m.NominalBW(NodeID(s1), NodeID(d)), m.NominalBW(NodeID(s2), NodeID(d))
				l1, l2 := m.LatencyNs(NodeID(s1), NodeID(d)), m.LatencyNs(NodeID(s2), NodeID(d))
				if b1 > b2 && l1 > l2+1e-9 {
					t.Fatalf("latency not monotone: bw(%d->%d)=%.1f lat=%.0f vs bw(%d->%d)=%.1f lat=%.0f",
						s1, d, b1, l1, s2, d, b2, l2)
				}
			}
		}
	}
}

func TestLocalLatencyIsMinimum(t *testing.T) {
	for _, m := range []*Machine{MachineA(), MachineB()} {
		for d := 0; d < m.NumNodes(); d++ {
			local := m.LatencyNs(NodeID(d), NodeID(d))
			for s := 0; s < m.NumNodes(); s++ {
				if s != d && m.LatencyNs(NodeID(s), NodeID(d)) < local {
					t.Fatalf("%s: remote latency %d->%d below local", m.Name, s, d)
				}
			}
		}
	}
}

func TestSymmetricMachineIsSymmetric(t *testing.T) {
	m := Symmetric(6, 4, 24, 12)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			want := 12.0
			if s == d {
				want = 24.0
			}
			if got := m.NominalBW(NodeID(s), NodeID(d)); got != want {
				t.Fatalf("symmetric BW[%d][%d] = %v, want %v", s, d, got, want)
			}
		}
	}
	if amp := m.BWAmplitude(); amp != 2 {
		t.Fatalf("amplitude = %v, want 2", amp)
	}
}

func TestFromMatrixRejectsBadInput(t *testing.T) {
	if _, err := FromMatrix(MatrixSpec{Name: "x"}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := FromMatrix(MatrixSpec{Name: "x", BW: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := FromMatrix(MatrixSpec{Name: "x", BW: [][]float64{{1}}, CoresPerNode: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestBuilderMissingRoute(t *testing.T) {
	b := NewBuilder("broken", 10)
	b.AddNode(2, 5, GiB, 100)
	b.AddNode(2, 5, GiB, 100)
	// no routes declared
	if _, err := b.Build(); err == nil {
		t.Fatal("builder accepted machine with missing routes")
	}
}

func TestBuilderExplicitLatencyPreserved(t *testing.T) {
	b := NewBuilder("lat", 10)
	n0 := b.AddNode(2, 5, GiB, 100)
	n1 := b.AddNode(2, 5, GiB, 100)
	l01 := b.AddLink("l01", 3)
	l10 := b.AddLink("l10", 3)
	b.SetRoute(n0, n1, l01)
	b.SetRoute(n1, n0, l10)
	b.SetLatency(n0, n1, 321)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LatencyNs(n0, n1); got != 321 {
		t.Fatalf("explicit latency = %v, want 321", got)
	}
	if got := m.LatencyNs(n1, n0); got <= 100 {
		t.Fatalf("synthesized latency = %v, want > local", got)
	}
}

func TestValidateCatchesIngestBelowController(t *testing.T) {
	b := NewBuilder("bad-ingest", 4) // below controller 5
	b.AddNode(2, 5, GiB, 100)
	if _, err := b.Build(); err == nil {
		t.Fatal("ingest below controller accepted")
	}
}

func TestNominalBWRespectsIngestCap(t *testing.T) {
	m, err := FromMatrix(MatrixSpec{
		Name:           "capped",
		BW:             [][]float64{{10, 8}, {8, 10}},
		CoresPerNode:   2,
		MemoryPerNode:  GiB,
		LocalLatencyNs: 100,
		IngestFactor:   1, // ingest == max controller == 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NominalBW(0, 0); got != 10 {
		t.Fatalf("local BW = %v, want 10 (ingest must not bind below controller)", got)
	}
}

func TestStringRendersMatrix(t *testing.T) {
	s := MachineA().String()
	if !strings.Contains(s, "9.2") || !strings.Contains(s, "10.5") || !strings.Contains(s, "1.8") {
		t.Fatalf("String() missing matrix values:\n%s", s)
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	m := MachineB()
	nodes := m.Nodes()
	nodes[0].Cores = 999
	if m.Node(0).Cores == 999 {
		t.Fatal("Nodes() exposed internal state")
	}
}

func TestBWAmplitudeSingleNode(t *testing.T) {
	b := NewBuilder("one", 20)
	b.AddNode(4, 10, GiB, 100)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if amp := m.BWAmplitude(); amp != 1 {
		t.Fatalf("single-node amplitude = %v, want 1", amp)
	}
}

func TestHybridDRAMNVRAM(t *testing.T) {
	m := HybridDRAMNVRAM(2, 2, 8, 24, 6)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4 {
		t.Fatalf("nodes = %d", m.NumNodes())
	}
	// DRAM nodes carry the cores; NVRAM nodes are memory-only.
	if m.Node(0).Cores != 8 || m.Node(3).Cores != 1 {
		t.Fatalf("core layout wrong: %d/%d", m.Node(0).Cores, m.Node(3).Cores)
	}
	// NVRAM local bandwidth far below DRAM.
	if m.NominalBW(2, 2) >= m.NominalBW(0, 0)/2 {
		t.Fatalf("NVRAM not slower: %v vs %v", m.NominalBW(2, 2), m.NominalBW(0, 0))
	}
	// NVRAM read latency reflects the media, not the path bandwidth.
	if lat := m.LatencyNs(2, 0); lat < 300 {
		t.Fatalf("NVRAM source latency = %v, want >= 300", lat)
	}
	if lat := m.LatencyNs(1, 0); lat > 200 {
		t.Fatalf("remote DRAM latency = %v, want ~140", lat)
	}
}
