package topology

import (
	"fmt"
	"math"
)

// Builder assembles a Machine. The zero value is not usable; call NewBuilder.
//
// Typical use:
//
//	b := topology.NewBuilder("machine", ingestGBs)
//	b.AddNode(cores, controllerGBs, memBytes, localLatNs) // repeated
//	l := b.AddLink("trunk", capacityGBs)
//	b.SetRoute(src, dst, l0, l1)
//	m, err := b.Build()
type Builder struct {
	name       string
	ingestGBs  float64
	nodes      []Node
	links      []Link
	routes     map[[2]NodeID][]LinkID
	latency    map[[2]NodeID]float64
	latencyExp float64
}

// NewBuilder returns a Builder for a machine with the given name and
// per-node core ingest cap (GB/s).
func NewBuilder(name string, ingestGBs float64) *Builder {
	return &Builder{
		name:       name,
		ingestGBs:  ingestGBs,
		routes:     make(map[[2]NodeID][]LinkID),
		latency:    make(map[[2]NodeID]float64),
		latencyExp: 0.9,
	}
}

// SetLatencyExponent tunes the bandwidth→latency synthesis exponent used
// for pairs without an explicit latency (see Build). Multi-hop torus-like
// interconnects (Opteron HyperTransport) warrant values near 1; low-hop
// ring/mesh designs (Xeon Cluster-on-Die) keep remote latency much closer
// to local and warrant small exponents.
func (b *Builder) SetLatencyExponent(exp float64) {
	if exp > 0 {
		b.latencyExp = exp
	}
}

// AddNode appends a node and returns its id.
func (b *Builder) AddNode(cores int, controllerGBs float64, memoryBytes int64, localLatencyNs float64) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		ID:             id,
		Cores:          cores,
		ControllerGBs:  controllerGBs,
		MemoryBytes:    memoryBytes,
		LocalLatencyNs: localLatencyNs,
	})
	return id
}

// AddLink appends a directed link and returns its id.
func (b *Builder) AddLink(name string, capacityGBs float64) LinkID {
	id := LinkID(len(b.links))
	b.links = append(b.links, Link{ID: id, Name: name, CapacityGBs: capacityGBs})
	return id
}

// SetRoute declares the link path for data flowing from memory node src to a
// consumer on dst. Local pairs (src == dst) must not be routed.
func (b *Builder) SetRoute(src, dst NodeID, path ...LinkID) {
	b.routes[[2]NodeID{src, dst}] = append([]LinkID(nil), path...)
}

// SetLatency declares the uncontended latency (ns) for a thread on dst
// accessing memory on src. Pairs without an explicit latency get a synthetic
// one derived from the nominal bandwidth ratio (see Build).
func (b *Builder) SetLatency(src, dst NodeID, ns float64) {
	b.latency[[2]NodeID{src, dst}] = ns
}

// Build assembles and validates the Machine.
//
// Latencies not set explicitly are synthesized from the bandwidth
// asymmetry: lat(s,d) = localLat(d) · (localBW(d)/bw(s,d))^exp, with exp
// from SetLatencyExponent (default 0.9). Lower-bandwidth paths are longer
// paths in commodity NUMA interconnects, so this monotone map is a
// reasonable stand-in where the paper publishes no latency table
// (DESIGN.md, "Model notes").
func (b *Builder) Build() (*Machine, error) {
	n := len(b.nodes)
	m := &Machine{
		Name:      b.name,
		nodes:     append([]Node(nil), b.nodes...),
		links:     append([]Link(nil), b.links...),
		ingestGBs: b.ingestGBs,
	}
	m.routes = make([][][]LinkID, n)
	m.latencyNs = make([][]float64, n)
	for s := 0; s < n; s++ {
		m.routes[s] = make([][]LinkID, n)
		m.latencyNs[s] = make([]float64, n)
		for d := 0; d < n; d++ {
			key := [2]NodeID{NodeID(s), NodeID(d)}
			if r, ok := b.routes[key]; ok {
				m.routes[s][d] = r
			} else if s != d {
				return nil, fmt.Errorf("topology: no route declared for %d->%d", s, d)
			}
			if lat, ok := b.latency[key]; ok {
				m.latencyNs[s][d] = lat
			}
		}
	}
	// Synthesize missing latencies now that routes exist and NominalBW works.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if m.latencyNs[s][d] != 0 {
				continue
			}
			local := m.nodes[d].LocalLatencyNs
			if s == d {
				m.latencyNs[s][d] = local
				continue
			}
			bw := m.NominalBW(NodeID(s), NodeID(d))
			localBW := m.NominalBW(NodeID(d), NodeID(d))
			ratio := 1.0
			if bw > 0 {
				ratio = localBW / bw
			}
			m.latencyNs[s][d] = local * math.Pow(ratio, b.latencyExp)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustBuild is Build that panics on error; for package-level constructors of
// the known-good reference machines.
func (b *Builder) MustBuild() *Machine {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
