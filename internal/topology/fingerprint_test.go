package topology

import "testing"

func TestFingerprintStableAcrossIdenticalStructures(t *testing.T) {
	a, b := MachineA(), MachineA()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical machines must share a fingerprint")
	}
	if MachineA().Fingerprint() == MachineB().Fingerprint() {
		t.Fatal("different machines must not collide")
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a := Symmetric(4, 8, 40, 10)
	b := Symmetric(4, 8, 40, 10)
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("name must not affect the fingerprint")
	}
	c := Symmetric(4, 8, 40, 12)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("bandwidth change must change the fingerprint")
	}
}
