// Package topology describes cache-coherent NUMA machines: nodes with
// multi-core CPUs and local memory controllers, connected by an asymmetric
// interconnect of directed links with fixed routes (Section III-A1 of the
// BWAP paper).
//
// A Machine is a static description. The memsys package turns it into a
// contended bandwidth model; this package only answers structural questions:
// which links does a transfer from node s to node d cross, what are the
// nominal capacities, and what is the uncontended latency.
package topology

import (
	"fmt"
	"strings"
	"sync"
)

// NodeID identifies a NUMA node within a Machine. IDs are dense, starting
// at 0.
type NodeID int

// LinkID identifies a directed interconnect link within a Machine.
type LinkID int

// Node is one NUMA node: one or more multi-core CPUs plus local memory
// behind an aggregated single-channel memory controller (the paper's
// simplifying abstraction in Section III-A1).
type Node struct {
	ID NodeID
	// Cores is the number of hardware threads local to the node.
	Cores int
	// ControllerGBs is the aggregate local memory controller bandwidth in
	// GB/s. A single uncontended local stream achieves exactly this rate.
	ControllerGBs float64
	// MemoryBytes is the capacity of the node's local memory.
	MemoryBytes int64
	// LocalLatencyNs is the uncontended local DRAM access latency.
	LocalLatencyNs float64
}

// Link is one directed interconnect link. Flows whose routes share a link
// contend for its capacity.
type Link struct {
	ID   LinkID
	Name string
	// CapacityGBs is the link bandwidth in GB/s for its direction.
	CapacityGBs float64
}

// Machine is an immutable description of a NUMA system.
type Machine struct {
	Name  string
	nodes []Node
	links []Link
	// routes[src][dst] lists the links crossed by data flowing from memory
	// node src to a consumer on node dst. Local pairs have an empty route.
	routes [][][]LinkID
	// latencyNs[src][dst] is the uncontended access latency for a thread on
	// dst reading memory on src.
	latencyNs [][]float64
	// ingestGBs caps the rate at which the cores of one node can consume
	// data (load/store ports, LFBs). It must exceed the local controller
	// bandwidth so pairwise local measurements see the controller.
	ingestGBs float64
	// fp memoizes Fingerprint: the structure above is immutable once the
	// builder returns, and the digest is demanded on every tuning-cache
	// key derivation.
	fpOnce sync.Once
	fp     string
}

// NumNodes returns the number of NUMA nodes.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// NumLinks returns the number of directed interconnect links.
func (m *Machine) NumLinks() int { return len(m.links) }

// Node returns the node with the given id.
func (m *Machine) Node(id NodeID) Node { return m.nodes[id] }

// Nodes returns a copy of the node table.
func (m *Machine) Nodes() []Node { return append([]Node(nil), m.nodes...) }

// Link returns the link with the given id.
func (m *Machine) Link(id LinkID) Link { return m.links[id] }

// TotalCores returns the machine-wide hardware thread count (the paper's C×N).
func (m *Machine) TotalCores() int {
	total := 0
	for _, n := range m.nodes {
		total += n.Cores
	}
	return total
}

// IngestGBs returns the per-node core ingest cap in GB/s.
func (m *Machine) IngestGBs() float64 { return m.ingestGBs }

// Route returns the directed link path crossed by data flowing from memory
// on src to a consumer on dst. The returned slice must not be modified.
func (m *Machine) Route(src, dst NodeID) []LinkID { return m.routes[src][dst] }

// LatencyNs returns the uncontended access latency, in nanoseconds, for a
// thread on dst reading memory on src.
func (m *Machine) LatencyNs(src, dst NodeID) float64 { return m.latencyNs[src][dst] }

// NominalBW returns the bandwidth, in GB/s, that a single uncontended
// stream on dst achieves reading from src: the minimum of the source
// controller, every link on the route, and the destination ingest cap.
// This is the quantity Figure 1a tabulates.
func (m *Machine) NominalBW(src, dst NodeID) float64 {
	bw := m.nodes[src].ControllerGBs
	for _, l := range m.routes[src][dst] {
		if c := m.links[l].CapacityGBs; c < bw {
			bw = c
		}
	}
	if m.ingestGBs < bw {
		bw = m.ingestGBs
	}
	return bw
}

// NominalMatrix returns the full src×dst nominal bandwidth matrix
// (rows = source/memory node, columns = destination/worker node, matching
// the layout of Figure 1a).
func (m *Machine) NominalMatrix() [][]float64 {
	n := m.NumNodes()
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		out[s] = make([]float64, n)
		for d := 0; d < n; d++ {
			out[s][d] = m.NominalBW(NodeID(s), NodeID(d))
		}
	}
	return out
}

// BWAmplitude returns the ratio between the highest (local) and lowest
// nominal bandwidth in the machine — the paper quotes 5.8x for Machine A
// and 2.3x for Machine B.
func (m *Machine) BWAmplitude() float64 {
	matrix := m.NominalMatrix()
	lo, hi := matrix[0][0], matrix[0][0]
	for _, row := range matrix {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// Validate checks structural invariants: positive capacities, complete and
// in-range routing, empty local routes, and a sane ingest cap. Builders call
// it; tests call it on every machine constructor.
func (m *Machine) Validate() error {
	if len(m.nodes) == 0 {
		return fmt.Errorf("topology: machine %q has no nodes", m.Name)
	}
	for i, n := range m.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("topology: node %d has id %d; ids must be dense", i, n.ID)
		}
		if n.Cores <= 0 {
			return fmt.Errorf("topology: node %d has %d cores", i, n.Cores)
		}
		if n.ControllerGBs <= 0 {
			return fmt.Errorf("topology: node %d controller bandwidth %.2f", i, n.ControllerGBs)
		}
		if n.MemoryBytes <= 0 {
			return fmt.Errorf("topology: node %d memory %d", i, n.MemoryBytes)
		}
		if n.LocalLatencyNs <= 0 {
			return fmt.Errorf("topology: node %d local latency %.2f", i, n.LocalLatencyNs)
		}
	}
	for i, l := range m.links {
		if l.ID != LinkID(i) {
			return fmt.Errorf("topology: link %d has id %d; ids must be dense", i, l.ID)
		}
		if l.CapacityGBs <= 0 {
			return fmt.Errorf("topology: link %q capacity %.2f", l.Name, l.CapacityGBs)
		}
	}
	n := len(m.nodes)
	if len(m.routes) != n || len(m.latencyNs) != n {
		return fmt.Errorf("topology: routing/latency tables sized %d/%d, want %d", len(m.routes), len(m.latencyNs), n)
	}
	for s := 0; s < n; s++ {
		if len(m.routes[s]) != n || len(m.latencyNs[s]) != n {
			return fmt.Errorf("topology: row %d of routing/latency tables incomplete", s)
		}
		for d := 0; d < n; d++ {
			if s == d && len(m.routes[s][d]) != 0 {
				return fmt.Errorf("topology: local route %d->%d must be empty", s, d)
			}
			if s != d && len(m.routes[s][d]) == 0 {
				return fmt.Errorf("topology: remote route %d->%d missing", s, d)
			}
			for _, l := range m.routes[s][d] {
				if l < 0 || int(l) >= len(m.links) {
					return fmt.Errorf("topology: route %d->%d references unknown link %d", s, d, l)
				}
			}
			if m.latencyNs[s][d] <= 0 {
				return fmt.Errorf("topology: latency %d->%d is %.2f", s, d, m.latencyNs[s][d])
			}
			if s != d && m.latencyNs[s][d] < m.nodes[d].LocalLatencyNs {
				return fmt.Errorf("topology: remote latency %d->%d (%.1f) below local (%.1f)",
					s, d, m.latencyNs[s][d], m.nodes[d].LocalLatencyNs)
			}
		}
	}
	if m.ingestGBs <= 0 {
		return fmt.Errorf("topology: ingest cap %.2f", m.ingestGBs)
	}
	for _, nd := range m.nodes {
		if m.ingestGBs < nd.ControllerGBs {
			return fmt.Errorf("topology: ingest cap %.2f below controller %.2f of node %d; local measurements would not see the controller",
				m.ingestGBs, nd.ControllerGBs, nd.ID)
		}
	}
	return nil
}

// String renders the machine's nominal bandwidth matrix in the style of
// Figure 1a.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes, %d cores/node, %d links\n", m.Name, m.NumNodes(), m.nodes[0].Cores, len(m.links))
	matrix := m.NominalMatrix()
	b.WriteString("      ")
	for d := range matrix {
		fmt.Fprintf(&b, "  N%-4d", d+1)
	}
	b.WriteString("\n")
	for s, row := range matrix {
		fmt.Fprintf(&b, "  N%-4d", s+1)
		for _, v := range row {
			fmt.Fprintf(&b, " %6.1f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
