package topology

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a stable 64-bit hex digest of the machine's
// performance-relevant structure: nodes (cores, controller bandwidth,
// memory, local latency), links, routes, the latency matrix and the ingest
// cap. Two Machine values with identical structure fingerprint identically
// even when their Names differ, so tuning results keyed by fingerprint are
// shared across a fleet of same-model machines.
//
// A Machine is immutable once its builder returns, so the digest is
// computed once and memoized — Fingerprint sits on the fleet scheduler's
// cache-key hot path, where recomputing the hash dominated the allocation
// profile.
func (m *Machine) Fingerprint() string {
	m.fpOnce.Do(func() { m.fp = m.fingerprint() })
	return m.fp
}

func (m *Machine) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "n%d l%d i%g;", len(m.nodes), len(m.links), m.ingestGBs)
	for _, n := range m.nodes {
		fmt.Fprintf(h, "N%d:%d:%g:%d:%g;", n.ID, n.Cores, n.ControllerGBs, n.MemoryBytes, n.LocalLatencyNs)
	}
	for _, l := range m.links {
		fmt.Fprintf(h, "L%d:%g;", l.ID, l.CapacityGBs)
	}
	for s := range m.routes {
		for d := range m.routes[s] {
			fmt.Fprintf(h, "R%d>%d:", s, d)
			for _, id := range m.routes[s][d] {
				fmt.Fprintf(h, "%d,", id)
			}
			fmt.Fprintf(h, "=%g;", m.latencyNs[s][d])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
