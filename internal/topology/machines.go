package topology

import "fmt"

// GiB is one gibibyte in bytes.
const GiB = int64(1) << 30

// machineAMatrix is the node-to-node bandwidth matrix of the paper's
// Machine A (Figure 1a): a 4-socket AMD Opteron 6272 with 8 NUMA nodes
// (2 dies per package). Rows are source (memory) nodes, columns are
// destination (worker) nodes, values in GB/s.
var machineAMatrix = [][]float64{
	{9.2, 5.5, 4.0, 3.6, 2.8, 1.8, 2.7, 1.8},
	{5.5, 9.2, 3.6, 4.0, 1.8, 2.8, 1.8, 2.8},
	{2.9, 3.6, 9.3, 5.5, 4.0, 1.8, 2.9, 1.8},
	{1.8, 4.0, 5.5, 9.3, 3.6, 2.9, 1.8, 2.9},
	{4.0, 1.8, 2.9, 1.8, 10.5, 5.4, 2.9, 3.5},
	{3.6, 2.8, 1.9, 2.9, 5.4, 10.5, 1.8, 4.0},
	{4.0, 1.8, 2.9, 3.6, 2.9, 1.8, 10.5, 5.4},
	{3.5, 2.8, 1.8, 4.0, 1.9, 2.8, 5.4, 10.5},
}

// machineBMatrix is the synthesized matrix for the paper's Machine B
// (2-socket Intel Xeon E5-2660 v4 in Cluster-on-Die mode, 4 NUMA nodes).
// The paper publishes no matrix for it, only the asymmetry ratios:
// local/nearest = 1.8x and local/farthest = 2.3x (Section IV). This matrix
// honours both. Nodes 0,1 share socket 0; nodes 2,3 share socket 1.
var machineBMatrix = [][]float64{
	{25.0, 14.0, 11.5, 10.8},
	{14.0, 25.0, 10.8, 11.5},
	{11.5, 10.8, 25.0, 14.0},
	{10.8, 11.5, 14.0, 25.0},
}

// MatrixSpec parameterizes FromMatrix.
type MatrixSpec struct {
	Name string
	// BW is the square src×dst bandwidth matrix in GB/s; the diagonal is the
	// local controller bandwidth.
	BW [][]float64
	// CoresPerNode is the hardware thread count of every node.
	CoresPerNode int
	// MemoryPerNode is the local memory capacity of every node.
	MemoryPerNode int64
	// LocalLatencyNs is the uncontended local access latency.
	LocalLatencyNs float64
	// PackageOf maps a node to its physical package; cross-package flows
	// additionally share a per-package-pair trunk link (interconnect
	// congestion). A nil PackageOf places every node in its own package.
	PackageOf func(NodeID) int
	// TrunkHeadroom scales each trunk's capacity relative to the fastest
	// pairwise path it carries. Values slightly above 1 mean two concurrent
	// cross-package flows contend (the congestion phenomenon of
	// Section III-A3). Defaults to 1.25.
	TrunkHeadroom float64
	// IngestFactor scales the per-node core ingest cap relative to the
	// fastest controller. Defaults to 1.5.
	IngestFactor float64
	// LatencyExponent tunes the bandwidth→latency synthesis
	// (Builder.SetLatencyExponent). Defaults to 0.9.
	LatencyExponent float64
}

// FromMatrix constructs a Machine whose pairwise *measured* bandwidths
// reproduce the given matrix exactly, which is how we calibrate the
// simulated machines against Figure 1a: each directed remote pair gets a
// dedicated path link with capacity equal to the matrix entry, and pairs
// crossing the same ordered package pair additionally share a trunk link.
//
// A single uncontended stream from src to dst therefore measures
// min(controller=BW[src][src], pathLink=BW[src][dst], trunk≥path) =
// BW[src][dst]; concurrent streams contend at controllers and trunks.
func FromMatrix(spec MatrixSpec) (*Machine, error) {
	n := len(spec.BW)
	if n == 0 {
		return nil, fmt.Errorf("topology: empty bandwidth matrix")
	}
	for i, row := range spec.BW {
		if len(row) != n {
			return nil, fmt.Errorf("topology: bandwidth matrix row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if spec.CoresPerNode <= 0 {
		return nil, fmt.Errorf("topology: cores per node %d", spec.CoresPerNode)
	}
	pkg := spec.PackageOf
	if pkg == nil {
		pkg = func(id NodeID) int { return int(id) }
	}
	headroom := spec.TrunkHeadroom
	if headroom == 0 {
		headroom = 1.25
	}
	ingestFactor := spec.IngestFactor
	if ingestFactor == 0 {
		ingestFactor = 1.5
	}

	maxController := 0.0
	for i := 0; i < n; i++ {
		if spec.BW[i][i] > maxController {
			maxController = spec.BW[i][i]
		}
	}
	b := NewBuilder(spec.Name, ingestFactor*maxController)
	if spec.LatencyExponent > 0 {
		b.SetLatencyExponent(spec.LatencyExponent)
	}
	for i := 0; i < n; i++ {
		b.AddNode(spec.CoresPerNode, spec.BW[i][i], spec.MemoryPerNode, spec.LocalLatencyNs)
	}

	// One trunk per ordered package pair, sized off the fastest pairwise
	// path it carries.
	trunkMax := make(map[[2]int]float64)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			ps, pd := pkg(NodeID(s)), pkg(NodeID(d))
			if s == d || ps == pd {
				continue
			}
			key := [2]int{ps, pd}
			if spec.BW[s][d] > trunkMax[key] {
				trunkMax[key] = spec.BW[s][d]
			}
		}
	}
	trunks := make(map[[2]int]LinkID)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			ps, pd := pkg(NodeID(s)), pkg(NodeID(d))
			if s == d || ps == pd {
				continue
			}
			key := [2]int{ps, pd}
			if _, ok := trunks[key]; !ok {
				trunks[key] = b.AddLink(fmt.Sprintf("trunk-p%d-p%d", ps, pd), headroom*trunkMax[key])
			}
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			path := b.AddLink(fmt.Sprintf("path-n%d-n%d", s, d), spec.BW[s][d])
			ps, pd := pkg(NodeID(s)), pkg(NodeID(d))
			if ps != pd {
				b.SetRoute(NodeID(s), NodeID(d), path, trunks[[2]int{ps, pd}])
			} else {
				b.SetRoute(NodeID(s), NodeID(d), path)
			}
		}
	}
	return b.Build()
}

// MachineA returns the paper's Machine A: 8 NUMA nodes, 8 cores per node,
// 64 GB total DRAM, strongly asymmetric HyperTransport interconnect whose
// pairwise bandwidths reproduce Figure 1a (amplitude 5.8x).
func MachineA() *Machine {
	m, err := FromMatrix(MatrixSpec{
		Name:           "machine-A (8-node AMD Opteron 6272)",
		BW:             machineAMatrix,
		CoresPerNode:   8,
		MemoryPerNode:  8 * GiB,
		LocalLatencyNs: 100,
		PackageOf:      func(id NodeID) int { return int(id) / 2 },
	})
	if err != nil {
		panic(err)
	}
	return m
}

// MachineB returns the paper's Machine B: 4 NUMA nodes (Cluster-on-Die),
// 7 cores per node, 32 GB DRAM, mildly asymmetric (amplitude 2.3x).
func MachineB() *Machine {
	m, err := FromMatrix(MatrixSpec{
		Name:           "machine-B (4-node Intel Xeon E5-2660v4)",
		BW:             machineBMatrix,
		CoresPerNode:   7,
		MemoryPerNode:  8 * GiB,
		LocalLatencyNs: 90,
		PackageOf:      func(id NodeID) int { return int(id) / 2 },
		// Broadwell Cluster-on-Die keeps remote latency within ~1.2-1.5x of
		// local even where bandwidth drops 2.3x; exponent calibrated to
		// those ratios (DESIGN.md, "Model notes").
		LatencyExponent: 0.45,
	})
	if err != nil {
		panic(err)
	}
	return m
}

// HybridDRAMNVRAM returns a machine for the paper's future-work direction
// (Section VI): NUMA nodes backed by heterogeneous memory technologies.
// computeNodes DRAM nodes host all the cores; nvramNodes memory-only nodes
// expose capacity behind a much slower controller (nvramGBs, with NVRAM-like
// ~3x read latency). BWAP's bandwidth-aware weighting needs no changes to
// handle it — the canonical tuner simply profiles lower bandwidth from the
// NVRAM nodes and weights them down, where uniform-all would place a full
// 1/N of pages there (the BATMAN/Yu-et-al. scenario the paper generalizes).
func HybridDRAMNVRAM(computeNodes, nvramNodes, coresPerNode int, dramGBs, nvramGBs float64) *Machine {
	n := computeNodes + nvramNodes
	bw := make([][]float64, n)
	for s := range bw {
		bw[s] = make([]float64, n)
		srcNVRAM := s >= computeNodes
		for d := range bw[s] {
			local := dramGBs
			if srcNVRAM {
				local = nvramGBs
			}
			if s == d {
				bw[s][d] = local
			} else {
				// Interconnect carries up to 60% of the source media rate.
				bw[s][d] = 0.6 * local
			}
		}
	}
	cores := make([]int, n)
	for i := range cores {
		if i < computeNodes {
			cores[i] = coresPerNode
		} else {
			cores[i] = 1 // memory-only node; no threads are placed there
		}
	}
	// Latencies are set explicitly: the bandwidth-ratio synthesis cannot
	// know that NVRAM's device latency is ~3x DRAM's regardless of path
	// bandwidth.
	b := NewBuilder(fmt.Sprintf("hybrid-%ddram+%dnvram", computeNodes, nvramNodes), 1.5*dramGBs)
	for i := 0; i < n; i++ {
		b.AddNode(cores[i], bw[i][i], 8*GiB, 95)
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				if s >= computeNodes {
					b.SetLatency(NodeID(s), NodeID(d), 300)
				}
				continue
			}
			l := b.AddLink(fmt.Sprintf("path-n%d-n%d", s, d), bw[s][d])
			b.SetRoute(NodeID(s), NodeID(d), l)
			lat := 140.0 // remote DRAM
			if s >= computeNodes {
				lat = 320.0 // remote NVRAM read
			}
			b.SetLatency(NodeID(s), NodeID(d), lat)
		}
	}
	return b.MustBuild()
}

// Symmetric returns an n-node machine in which every remote pair has the
// same bandwidth — the "obsolete assumption" uniform interleaving was
// designed for. Useful as a control in tests and ablations: on a symmetric
// machine BWAP's canonical weights degenerate to uniform.
func Symmetric(n, coresPerNode int, localGBs, remoteGBs float64) *Machine {
	bw := make([][]float64, n)
	for s := range bw {
		bw[s] = make([]float64, n)
		for d := range bw[s] {
			if s == d {
				bw[s][d] = localGBs
			} else {
				bw[s][d] = remoteGBs
			}
		}
	}
	m, err := FromMatrix(MatrixSpec{
		Name:           fmt.Sprintf("symmetric-%dn", n),
		BW:             bw,
		CoresPerNode:   coresPerNode,
		MemoryPerNode:  8 * GiB,
		LocalLatencyNs: 100,
	})
	if err != nil {
		panic(err)
	}
	return m
}
