package experiments

import (
	"fmt"
	"math"
	"strings"

	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/trace"
	"bwap/internal/workload"
)

// Table1 is the memory-access characterization of the benchmarks
// (Table I: measured on Machine B with one full worker node).
type Table1 struct {
	MachineName string
	Rows        []trace.Characterization
}

// RunTable1 reproduces Table I: run every benchmark on one worker node of
// the profile's machine and characterize it with the trace package (our
// NumaMMA substitute).
func RunTable1(p *Profile) (*Table1, error) {
	ws, err := p.Workers(1)
	if err != nil {
		return nil, err
	}
	out := &Table1{MachineName: p.Name}
	benches := workload.Benchmarks()
	out.Rows = make([]trace.Characterization, len(benches))
	err = parallelFor(len(benches), func(i int) error {
		spec := benches[i]
		e := sim.New(p.M, p.SimCfg)
		// Pages are spread uniform-all so the single worker's demand is not
		// clipped by one controller: NumaMMA characterizes the benchmark's
		// *demand*, not a placement bottleneck.
		app, err := e.AddApp(spec.Name, spec.Scaled(p.WorkScale), ws, policy.UniformAll{})
		if err != nil {
			return err
		}
		res, err := e.Run()
		if err != nil {
			return err
		}
		if res.TimedOut {
			return fmt.Errorf("experiments: table1 run for %s timed out", spec.Name)
		}
		out.Rows[i] = trace.Characterize(app)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints Table I.
func (t *Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — memory access characterization (%s, one full worker node)\n", t.MachineName)
	b.WriteString(trace.Table(t.Rows))
	return b.String()
}

// Table2Cell is one scenario's tuner outcome for one benchmark.
type Table2Cell struct {
	// Workers is the worker-node count of the scenario.
	Workers int
	// DWP is the value the iterative search settled on (median of seeds).
	DWP float64
}

// Table2 reports the DWP values found by the BWAP iterative search in the
// co-scheduled scenarios (Table II of the paper).
type Table2 struct {
	MachineName string
	// Workers lists the scenario worker counts (columns).
	Workers []int
	// DWP[benchmark][i] pairs with Workers[i].
	DWP map[string][]float64
	// Order preserves the paper's benchmark row order.
	Order []string
}

// RunTable2 reproduces the profile's half of Table II: for each benchmark
// and worker count, run the co-scheduled BWAP deployment and record the
// DWP the search chose.
func RunTable2(p *Profile, workerCounts []int) (*Table2, error) {
	out := &Table2{
		MachineName: p.Name,
		Workers:     append([]int(nil), workerCounts...),
		DWP:         make(map[string][]float64),
	}
	// Every (benchmark, worker count) pair is an independent cell; run the
	// whole grid on the shared worker pool.
	benches := workload.Benchmarks()
	cells := make([]float64, len(benches)*len(workerCounts))
	err := parallelFor(len(cells), func(i int) error {
		spec := benches[i/len(workerCounts)]
		nw := workerCounts[i%len(workerCounts)]
		ws, err := p.Workers(nw)
		if err != nil {
			return err
		}
		r, err := p.Run(spec, ws, "bwap", true)
		if err != nil {
			return fmt.Errorf("table2 %s %dW: %w", spec.Name, nw, err)
		}
		cells[i] = r.BestDWP
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, spec := range benches {
		out.Order = append(out.Order, spec.Name)
		// Full slice expression: rows must not share spare capacity.
		out.DWP[spec.Name] = cells[bi*len(workerCounts) : (bi+1)*len(workerCounts) : (bi+1)*len(workerCounts)]
	}
	return out, nil
}

// Render prints Table II.
func (t *Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — DWP values via BWAP iterative search (co-scheduled, %s)\n", t.MachineName)
	b.WriteString("Application")
	for _, w := range t.Workers {
		fmt.Fprintf(&b, " %9dW", w)
	}
	b.WriteString("\n")
	for _, name := range t.Order {
		fmt.Fprintf(&b, "%-11s", name)
		for _, v := range t.DWP[name] {
			if math.IsNaN(v) {
				b.WriteString("         -")
			} else {
				fmt.Fprintf(&b, " %9.1f%%", v*100)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
