package experiments

import (
	"runtime"
	"sync"
)

// The experiment grid is embarrassingly parallel: every cell (benchmark ×
// policy × worker count × seed) is an independent simulation whose engine,
// address spaces and solver are private to the run. The harness fans cells
// out over one bounded, process-wide worker pool shared by every fan-out
// level (figure rows, policy columns, seed replicas, sweep points). A task
// that cannot get a pool slot runs inline on the caller's goroutine, so
// nested fan-outs can never deadlock and total concurrency stays bounded
// no matter how the levels compose.
//
// Results are always written to caller-owned, index-addressed slots and
// aggregated in input order afterwards, so the output of a parallel run is
// bit-identical to a serial one regardless of scheduling.

var (
	poolMu  sync.Mutex
	poolSem = make(chan struct{}, runtime.GOMAXPROCS(0))
)

// SetMaxParallel bounds the number of pooled worker goroutines the
// experiment harness uses; n <= 0 selects GOMAXPROCS. With n == 1 every
// task still runs, but at most one off-caller goroutine exists at a time.
// Call it before starting experiment runs; it does not affect fan-outs
// already in flight (their slot releases drain to the old pool).
func SetMaxParallel(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	poolSem = make(chan struct{}, n)
	poolMu.Unlock()
}

// parallelFor runs fn(0) … fn(n-1), using pool slots when available and
// the caller's goroutine otherwise, and waits for all of them. It returns
// the error of the lowest failing index, so error reporting is as
// deterministic as the results.
func parallelFor(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	poolMu.Lock()
	sem := poolSem
	poolMu.Unlock()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
