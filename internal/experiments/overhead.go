package experiments

import (
	"fmt"
	"math"
	"strings"

	"bwap/internal/core"
	"bwap/internal/sim"
	"bwap/internal/workload"
)

// OverheadRow quantifies the DWP tuner's cost and accuracy for one
// benchmark (the Section IV-B analysis): the tuned run against the best
// static DWP deployment found by a manual sweep.
type OverheadRow struct {
	Benchmark string
	Workers   int
	// BestStaticDWP and BestStaticTime describe the manual sweep's optimum.
	BestStaticDWP, BestStaticTime float64
	// TunedDWP and TunedTime describe the on-line run.
	TunedDWP, TunedTime float64
	// OverheadPct is 100·(TunedTime/BestStaticTime − 1); the paper measured
	// at most 4%.
	OverheadPct float64
	// WithinOneStep reports |TunedDWP − BestStaticDWP| ≤ one 10% step.
	WithinOneStep bool
}

// Overhead is the tuner cost/accuracy experiment over the benchmark suite.
type Overhead struct {
	MachineName string
	Rows        []OverheadRow
}

// RunOverhead measures tuner overhead and accuracy in the co-scheduled
// scenario at the given worker count.
func RunOverhead(p *Profile, workers int) (*Overhead, error) {
	ws, err := p.Workers(workers)
	if err != nil {
		return nil, err
	}
	out := &Overhead{MachineName: p.Name}
	benches := workload.Benchmarks()
	out.Rows = make([]OverheadRow, len(benches))
	err = parallelFor(len(benches), func(bi int) error {
		spec := benches[bi]
		row := OverheadRow{Benchmark: spec.Name, Workers: workers, BestStaticTime: math.Inf(1)}
		sweep := make([]Fig4Point, len(dwpSweep))
		err := parallelFor(len(dwpSweep), func(i int) error {
			t, _, err := p.staticDWPRun(spec, ws, dwpSweep[i])
			sweep[i] = Fig4Point{DWP: dwpSweep[i], RawTime: t}
			return err
		})
		if err != nil {
			return err
		}
		for _, pt := range sweep {
			if pt.RawTime < row.BestStaticTime {
				row.BestStaticTime, row.BestStaticDWP = pt.RawTime, pt.DWP
			}
		}
		r, err := p.Run(spec, ws, "bwap", true)
		if err != nil {
			return err
		}
		row.TunedDWP, row.TunedTime = r.BestDWP, r.Time
		row.OverheadPct = 100 * (row.TunedTime/row.BestStaticTime - 1)
		row.WithinOneStep = withinOneStepOfOptimum(row.TunedDWP, sweep, row.BestStaticTime)
		out.Rows[bi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaxOverheadPct returns the worst overhead across the suite.
func (o *Overhead) MaxOverheadPct() float64 {
	worst := 0.0
	for _, r := range o.Rows {
		if r.OverheadPct > worst {
			worst = r.OverheadPct
		}
	}
	return worst
}

// Render prints the analysis.
func (o *Overhead) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DWP tuner overhead & accuracy (%s)\n", o.MachineName)
	b.WriteString("Benchmark   W  best-static-DWP  best-static-t  tuned-DWP  tuned-t  overhead%  within-1-step\n")
	for _, r := range o.Rows {
		fmt.Fprintf(&b, "%-10s %2d %15.0f%% %14.1f %9.0f%% %8.1f %9.1f %14v\n",
			r.Benchmark, r.Workers, r.BestStaticDWP*100, r.BestStaticTime,
			r.TunedDWP*100, r.TunedTime, r.OverheadPct, r.WithinOneStep)
	}
	fmt.Fprintf(&b, "max overhead: %.1f%% (paper: at most 4%%)\n", o.MaxOverheadPct())
	return b.String()
}

// AblationRow compares the kernel-level and user-level (Algorithm 1)
// weighted interleaving for one benchmark; Section IV reports the gap at
// no more than 3%.
type AblationRow struct {
	Benchmark string
	// UserTime and KernelTime are completion times under the two
	// enforcement mechanisms at the same canonical DWP=0 placement.
	UserTime, KernelTime float64
	// GapPct is 100·(UserTime/KernelTime − 1).
	GapPct float64
}

// Ablation is the kernel- vs user-level enforcement study.
type Ablation struct {
	MachineName string
	Rows        []AblationRow
}

// RunKernelVsUserAblation runs every benchmark stand-alone at the canonical
// placement (DWP 0) enforced via Algorithm 1 and via the kernel weighted
// interleave, and reports the performance gap.
func RunKernelVsUserAblation(p *Profile, workers int) (*Ablation, error) {
	ws, err := p.Workers(workers)
	if err != nil {
		return nil, err
	}
	out := &Ablation{MachineName: p.Name}
	benches := workload.Benchmarks()
	out.Rows = make([]AblationRow, len(benches))
	err = parallelFor(len(benches), func(bi int) error {
		spec := benches[bi]
		times := make(map[bool]float64)
		for _, userLevel := range []bool{true, false} {
			e := sim.New(p.M, p.SimCfg)
			placer := core.StaticDWP{Canonical: p.Canonical(), DWP: 0, UserLevel: userLevel}
			if _, err := e.AddApp(spec.Name, spec.Scaled(p.WorkScale), ws, placer); err != nil {
				return err
			}
			res, err := e.Run()
			if err != nil {
				return err
			}
			if res.TimedOut {
				return fmt.Errorf("experiments: ablation run for %s timed out", spec.Name)
			}
			times[userLevel] = res.Times[spec.Name]
		}
		out.Rows[bi] = AblationRow{
			Benchmark:  spec.Name,
			UserTime:   times[true],
			KernelTime: times[false],
			GapPct:     100 * (times[true]/times[false] - 1),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaxAbsGapPct returns the largest absolute gap.
func (a *Ablation) MaxAbsGapPct() float64 {
	worst := 0.0
	for _, r := range a.Rows {
		if g := math.Abs(r.GapPct); g > worst {
			worst = g
		}
	}
	return worst
}

// Render prints the ablation.
func (a *Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — user-level (Algorithm 1) vs kernel-level weighted interleave (%s)\n", a.MachineName)
	b.WriteString("Benchmark   user-level(s)  kernel-level(s)   gap%\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-11s %13.1f %16.1f %6.1f\n", r.Benchmark, r.UserTime, r.KernelTime, r.GapPct)
	}
	fmt.Fprintf(&b, "max |gap|: %.1f%% (paper: at most 3%%)\n", a.MaxAbsGapPct())
	return b.String()
}
