package experiments

import (
	"fmt"
	"strings"
	"time"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// The shard-scaling scenario measures the fleet's multi-core axis: the
// identical job stream scheduled at increasing shard counts (worker pool
// sized to match), under each admission policy and both advance engines
// (v1 per-tick barrier, v2 conservative-lookahead windows). Because
// routing is least-loaded, the simulated outcome — every placement,
// turnaround and log byte — is invariant to the shard count for a fixed
// engine (the replay tests pin this);
// what changes is wall-clock time, so the table separates simulation
// results (identical down the column) from the wall-time scaling the
// sharding exists for. Runs share one pre-warmed tuning cache so probe
// cost does not pollute the timing.

// ShardAdmissionPolicies is the fixed comparison order.
var ShardAdmissionPolicies = []string{
	fleet.AdmitMostFree, fleet.AdmitBestBandwidth, fleet.AdmitAntiAffinity,
}

// ShardScalingResult is one (admission policy, engine, shard count) cell.
type ShardScalingResult struct {
	Admission string
	Engine    int
	Shards    int
	WallMS    float64
	Stats     *fleet.Stats
}

// ShardScalingTable is the rendered scenario.
type ShardScalingTable struct {
	Title       string
	Machines    int
	Jobs        int
	ShardCounts []int
	Results     []ShardScalingResult
}

// RunShardScaling executes the scenario: a shared Poisson stream over a
// fleet of Machine B boxes, swept over admission policies × shard counts.
// quick shrinks the fleet and stream for tests and CI.
func RunShardScaling(quick bool) (*ShardScalingTable, error) {
	machines := 8
	engines := []int{1, 2}
	shardCounts := []int{1, 2, 4}
	jobsPerClass := 6
	workScale := 0.05
	if quick {
		machines = 4
		shardCounts = []int{1, 2}
		jobsPerClass = 2
		workScale = 0.03
	}
	streams := fleetStream(jobsPerClass, workScale)
	simCfg := sim.Config{Seed: 1}
	cache := fleet.NewTuningCache(simCfg, 0, 1)

	newFleet := func(admission string, engine, shards int) (*fleet.Fleet, error) {
		return fleet.New(fleet.Config{
			Machines:      machines,
			Shards:        shards,
			Workers:       shards,
			EngineVersion: engine,
			Admission:     admission,
			NewMachine:    func(int) *topology.Machine { return topology.MachineB() },
			SimCfg:        simCfg,
			Seed:          1,
			Cache:         cache,
		})
	}

	// Warm the cache once per admission policy (placements differ across
	// policies, so their co-runner contexts can too), then time the grid.
	// Cells run serially on purpose: wall-clock scaling is the measurement.
	table := &ShardScalingTable{
		Title:       "Shard scaling: admission policies × shard counts on a shared job stream",
		Machines:    machines,
		Jobs:        jobsPerClass * 3,
		ShardCounts: shardCounts,
	}
	for _, admission := range ShardAdmissionPolicies {
		warm, err := newFleet(admission, 1, 1)
		if err != nil {
			return nil, err
		}
		if err := warm.SubmitStream(streams); err != nil {
			return nil, err
		}
		if _, err := warm.Run(); err != nil {
			return nil, fmt.Errorf("shards warm-up (%s): %w", admission, err)
		}
		for _, engine := range engines {
			for _, shards := range shardCounts {
				f, err := newFleet(admission, engine, shards)
				if err != nil {
					return nil, err
				}
				if err := f.SubmitStream(streams); err != nil {
					return nil, err
				}
				start := time.Now() //bwap:wallclock WallMS reports real speedup; it is presentation, not simulation state
				stats, err := f.Run()
				if err != nil {
					return nil, fmt.Errorf("shards %s/v%d/%d: %w", admission, engine, shards, err)
				}
				table.Results = append(table.Results, ShardScalingResult{
					Admission: admission,
					Engine:    engine,
					Shards:    shards,
					WallMS:    float64(time.Since(start).Microseconds()) / 1000, //bwap:wallclock harness timing, excluded from log-identity checks
					Stats:     stats,
				})
			}
		}
	}
	return table, nil
}

// Render formats the comparison.
func (t *ShardScalingTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d machines (Machine B), %d jobs, least-loaded routing, workers = shards\n", t.Machines, t.Jobs)
	fmt.Fprintf(&b, "(simulated columns are shard-invariant per engine by construction; wall ms is the scaling axis)\n\n")
	fmt.Fprintf(&b, "  %-16s %6s %7s %9s %11s %12s %7s %8s\n",
		"admission", "engine", "shards", "wall ms", "speedup", "turnaround", "util", "cache")
	var base float64
	for _, r := range t.Results {
		if r.Shards == t.ShardCounts[0] {
			base = r.WallMS
		}
		speedup := "-"
		if r.Shards != t.ShardCounts[0] && r.WallMS > 0 {
			speedup = fmt.Sprintf("%.2fx", base/r.WallMS)
		}
		s := r.Stats
		fmt.Fprintf(&b, "  %-16s %6s %7d %9.1f %11s %11.1fs %6.1f%% %5d/%d\n",
			r.Admission, fmt.Sprintf("v%d", r.Engine), r.Shards, r.WallMS, speedup,
			s.MeanTurnaround, 100*s.Utilization, s.CacheHits, s.CacheMisses)
	}
	return b.String()
}
