package experiments

import (
	"fmt"
	"math"
	"strings"

	"bwap/internal/topology"
	"bwap/internal/workload"
)

// SpeedupRow is one benchmark's result across all policies, as a speedup
// relative to uniform-workers (the paper's Figures 2 and 3 baseline).
type SpeedupRow struct {
	Benchmark string
	// Speedup maps policy name to T(uniform-workers)/T(policy).
	Speedup map[string]float64
	// Time maps policy name to absolute completion time (seconds).
	Time map[string]float64
	// BWAPDWP is the DWP the bwap tuner settled on (median over seeds).
	BWAPDWP float64
	// Workers is the worker count used for this row.
	Workers int
}

// SpeedupFigure is one panel of Figure 2 or Figure 3.
type SpeedupFigure struct {
	// Label identifies the panel (e.g. "Figure 2a").
	Label string
	// Scenario is "co-scheduled" or "stand-alone".
	Scenario string
	// MachineName identifies the machine.
	MachineName string
	Rows        []SpeedupRow
}

// RunCoScheduled reproduces one co-scheduled panel (Figure 2a/b/c on
// Machine A; Figure 3a/b on Machine B): benchmark B runs on `workers`
// nodes under each policy while Swaptions occupies the remaining nodes.
// Benchmark rows are independent cells and run on the shared worker pool.
func RunCoScheduled(p *Profile, workers int, label string) (*SpeedupFigure, error) {
	ws, err := p.Workers(workers)
	if err != nil {
		return nil, err
	}
	fig := &SpeedupFigure{Label: label, Scenario: "co-scheduled", MachineName: p.Name}
	benches := workload.Benchmarks()
	fig.Rows = make([]SpeedupRow, len(benches))
	err = parallelFor(len(benches), func(i int) error {
		row, err := p.speedupRow(benches[i], ws, true)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", label, benches[i].Name, err)
		}
		fig.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// RunStandalone reproduces Figure 3c/3d: each benchmark deployed
// stand-alone at the paper's optimal worker count for the machine.
func RunStandalone(p *Profile, label string) (*SpeedupFigure, error) {
	optimal := OptimalWorkersStandalone(p.Name)
	fig := &SpeedupFigure{Label: label, Scenario: "stand-alone", MachineName: p.Name}
	benches := workload.Benchmarks()
	fig.Rows = make([]SpeedupRow, len(benches))
	err := parallelFor(len(benches), func(i int) error {
		ws, err := p.Workers(optimal[benches[i].Name])
		if err != nil {
			return err
		}
		row, err := p.speedupRow(benches[i], ws, false)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", label, benches[i].Name, err)
		}
		fig.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

func (p *Profile) speedupRow(spec workload.Spec, ws []topology.NodeID, coSched bool) (SpeedupRow, error) {
	row := SpeedupRow{
		Benchmark: spec.Name,
		Speedup:   make(map[string]float64),
		Time:      make(map[string]float64),
		BWAPDWP:   math.NaN(),
		Workers:   len(ws),
	}
	// The policy columns of a row are independent deployments too.
	results := make([]RunResult, len(PolicyNames))
	err := parallelFor(len(PolicyNames), func(i int) error {
		r, err := p.Run(spec, ws, PolicyNames[i], coSched)
		results[i] = r
		return err
	})
	if err != nil {
		return row, err
	}
	for i, pol := range PolicyNames {
		row.Time[pol] = results[i].Time
		if pol == "bwap" {
			row.BWAPDWP = results[i].BestDWP
		}
	}
	base := row.Time["uniform-workers"]
	for pol, t := range row.Time {
		row.Speedup[pol] = base / t
	}
	return row, nil
}

// Render prints the panel in the layout of Figures 2/3 (speedup vs
// uniform-workers; higher is better).
func (f *SpeedupFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — speedup vs uniform-workers (%s, %s)\n", f.Label, f.Scenario, f.MachineName)
	fmt.Fprintf(&b, "%-7s %4s", "Bench", "W")
	for _, pol := range PolicyNames {
		fmt.Fprintf(&b, " %15s", pol)
	}
	b.WriteString("   bwap-DWP\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-7s %4d", r.Benchmark, r.Workers)
		for _, pol := range PolicyNames {
			fmt.Fprintf(&b, " %15.2f", r.Speedup[pol])
		}
		if math.IsNaN(r.BWAPDWP) {
			b.WriteString("          -\n")
		} else {
			fmt.Fprintf(&b, " %9.0f%%\n", r.BWAPDWP*100)
		}
	}
	return b.String()
}

// MaxSpeedup returns the largest speedup of the given policy across rows.
func (f *SpeedupFigure) MaxSpeedup(policy string) float64 {
	best := 0.0
	for _, r := range f.Rows {
		if s := r.Speedup[policy]; s > best {
			best = s
		}
	}
	return best
}
