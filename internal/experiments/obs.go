package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"bwap/internal/fleet"
)

// The obs scenario demonstrates the telemetry layer: the rolling-restart
// chaos schedule runs under both placement policies with an observer
// attached, and the figure renders the resulting turnaround and
// queue-wait distributions (histogram quantiles, not just means) side by
// side. Each observed cell is paired with an unobserved twin and the two
// event logs are byte-compared — the "observer never perturbs the log"
// invariant shown as an experiment, not just a unit test.

// ObsResult is one policy's observed distribution summary.
type ObsResult struct {
	Policy    string
	Stats     *fleet.Stats
	TurnP     [3]float64 // p50/p90/p99 turnaround, sim seconds
	WaitP     [3]float64 // p50/p90/p99 queue wait, sim seconds
	Completed uint64     // histogram sample count, from the observer
	// Unperturbed reports whether the observed run's event log was
	// byte-identical to an unobserved twin's.
	Unperturbed bool
}

// ObsTable is the rendered figure.
type ObsTable struct {
	Title    string
	Scenario string
	Machines int
	Jobs     int
	Results  []ObsResult
}

// RunObs executes the telemetry comparison under the rolling-restart
// fault schedule. quick shrinks the stream and fleet for tests and CI.
func RunObs(quick bool) (*ObsTable, error) {
	machines := 4
	jobsPerClass := 6
	workScale := 0.05
	if quick {
		machines = 2
		jobsPerClass = 2
		workScale = 0.03
	}
	streams := fleetStream(jobsPerClass, workScale)
	sc := chaosScenarios(machines, quick)[0] // rolling-restart
	policies := []string{fleet.PolicyFirstTouch, fleet.PolicyBWAP}

	table := &ObsTable{
		Title:    "Obs: sim-time telemetry under the rolling-restart chaos plan",
		Scenario: sc.name,
		Machines: machines,
		Jobs:     jobsPerClass * len(streams),
		Results:  make([]ObsResult, len(policies)),
	}
	err := parallelFor(len(policies), func(i int) error {
		pol := policies[i]
		runOnce := func(observe bool) (*fleet.Fleet, *fleet.Stats, error) {
			cfg := chaosConfig(machines, 1, pol, sc.plan)
			if observe {
				cfg.Obs = fleet.NewObserver(fleet.ObserverConfig{})
			}
			f, err := fleet.New(cfg)
			if err != nil {
				return nil, nil, err
			}
			if err := f.SubmitStream(streams); err != nil {
				return nil, nil, err
			}
			stats, err := f.Run()
			if err != nil {
				return nil, nil, fmt.Errorf("obs %s/%s: %w", sc.name, pol, err)
			}
			return f, stats, nil
		}
		bare, _, err := runOnce(false)
		if err != nil {
			return err
		}
		observed, stats, err := runOnce(true)
		if err != nil {
			return err
		}
		o := observed.Observer()
		turn, wait := o.Turnaround(), o.QueueWait()
		table.Results[i] = ObsResult{
			Policy:      pol,
			Stats:       stats,
			TurnP:       [3]float64{turn.Quantile(0.5), turn.Quantile(0.9), turn.Quantile(0.99)},
			WaitP:       [3]float64{wait.Quantile(0.5), wait.Quantile(0.9), wait.Quantile(0.99)},
			Completed:   turn.Count(),
			Unperturbed: bytes.Equal(bare.LogBytes(), observed.LogBytes()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// Render formats the comparison.
func (t *ObsTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d machines (Machine B), %d jobs, scenario %s\n\n", t.Machines, t.Jobs, t.Scenario)
	fmt.Fprintf(&b, "  %-12s %9s | %27s | %27s\n", "", "", "turnaround (s)", "queue wait (s)")
	fmt.Fprintf(&b, "  %-12s %9s | %8s %8s %8s | %8s %8s %8s\n",
		"policy", "completed", "p50", "p90", "p99", "p50", "p90", "p99")
	for _, r := range t.Results {
		fmt.Fprintf(&b, "  %-12s %9d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
			r.Policy, r.Completed,
			r.TurnP[0], r.TurnP[1], r.TurnP[2],
			r.WaitP[0], r.WaitP[1], r.WaitP[2])
	}
	b.WriteString("\n")
	for _, r := range t.Results {
		verdict := "byte-identical with and without telemetry"
		if !r.Unperturbed {
			verdict = "LOG PERTURBED by telemetry"
		}
		fmt.Fprintf(&b, "  %-12s event log %s\n", r.Policy, verdict)
	}
	return b.String()
}
