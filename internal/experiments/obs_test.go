package experiments

import (
	"math"
	"strings"
	"testing"

	"bwap/internal/fleet"
)

// TestRunObs runs the quick telemetry scenario and checks what it exists
// to demonstrate: the observer saw every completion, the quantiles are
// real numbers in sane order, and attaching telemetry left both policies'
// event logs untouched.
func TestRunObs(t *testing.T) {
	table, err := RunObs(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Results) != 2 {
		t.Fatalf("%d result cells, want 2", len(table.Results))
	}
	for _, r := range table.Results {
		if !r.Unperturbed {
			t.Fatalf("%s: telemetry perturbed the event log", r.Policy)
		}
		if r.Stats == nil || int(r.Completed) != r.Stats.Completed {
			t.Fatalf("%s: observer counted %d completions, stats say %+v",
				r.Policy, r.Completed, r.Stats)
		}
		for i := 0; i < 2; i++ {
			if math.IsNaN(r.TurnP[i]) || r.TurnP[i] > r.TurnP[i+1] {
				t.Fatalf("%s: turnaround quantiles out of order: %v", r.Policy, r.TurnP)
			}
			if math.IsNaN(r.WaitP[i]) || r.WaitP[i] > r.WaitP[i+1] {
				t.Fatalf("%s: wait quantiles out of order: %v", r.Policy, r.WaitP)
			}
		}
	}
	out := table.Render()
	for _, want := range []string{"rolling-restart", fleet.PolicyBWAP,
		fleet.PolicyFirstTouch, "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
