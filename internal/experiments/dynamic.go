package experiments

import (
	"fmt"
	"strings"

	"bwap/internal/core"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// DynamicResult quantifies the Section VI dynamic re-tuning extension on a
// phase-changing workload: one-shot BWAP (tuned once, stuck when the
// pattern shifts) against the MAPI-watchdog re-tuner.
type DynamicResult struct {
	MachineName string
	// OneShotTime and DynamicTime are completion times in seconds.
	OneShotTime, DynamicTime float64
	// ReTunes is how many times the watchdog restarted the search.
	ReTunes int
	// FinalDWP is the placement in force when the run ended.
	FinalDWP float64
	// ImprovementPct is 100·(1 − DynamicTime/OneShotTime).
	ImprovementPct float64
}

// PhaseChangingWorkload is the extension experiment's subject: a
// bandwidth-hungry first phase (optimal DWP ≈ 0) followed by a light
// latency-bound phase (optimal DWP = 1). The demand drop moves MAPI, which
// is what the watchdog detects.
func PhaseChangingWorkload() workload.Spec {
	return workload.Spec{
		Name: "phasey", ReadGBs: 60, WriteGBs: 0, PrivateFrac: 0,
		LatencySensitivity: 0.6, WorkGB: 700,
		SharedGB: 0.032, PrivateGBPerNode: 0.004,
		Phases: []workload.Phase{
			{AtWorkFraction: 0, DemandFactor: 1, LatencyFactor: 0.02},
			{AtWorkFraction: 0.4, DemandFactor: 0.12, LatencyFactor: 1.5},
		},
	}
}

// RunDynamicExtension compares the one-shot and dynamic tuners on the
// phase-changing workload, stand-alone on one worker node.
func RunDynamicExtension(p *Profile) (*DynamicResult, error) {
	spec := PhaseChangingWorkload()
	workers := []topology.NodeID{0}
	params := core.Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}
	cfg := p.SimCfg

	run := func(placer sim.Placer) (float64, error) {
		e := sim.New(p.M, cfg)
		if _, err := e.AddApp(spec.Name, spec, workers, placer); err != nil {
			return 0, err
		}
		res, err := e.Run()
		if err != nil {
			return 0, err
		}
		if res.TimedOut {
			return 0, fmt.Errorf("experiments: dynamic-extension run timed out")
		}
		return res.Times[spec.Name], nil
	}

	oneShot := core.NewBWAPUniform()
	oneShot.Params = params
	tOne, err := run(oneShot)
	if err != nil {
		return nil, err
	}
	dyn := &core.DynamicBWAP{Params: params}
	tDyn, err := run(dyn)
	if err != nil {
		return nil, err
	}
	tuner := dyn.TunerFor(spec.Name)
	out := &DynamicResult{
		MachineName:    p.Name,
		OneShotTime:    tOne,
		DynamicTime:    tDyn,
		ImprovementPct: 100 * (1 - tDyn/tOne),
	}
	if tuner != nil {
		out.ReTunes = tuner.ReTuneCount
		out.FinalDWP = tuner.AppliedDWP()
	}
	return out, nil
}

// Render prints the extension result.
func (d *DynamicResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §VI) — dynamic re-tuning on a phase-changing workload (%s)\n", d.MachineName)
	fmt.Fprintf(&b, "  one-shot bwap : %6.1f s (placement frozen after the first search)\n", d.OneShotTime)
	fmt.Fprintf(&b, "  bwap-dynamic  : %6.1f s (%d re-tune(s), final DWP %.0f%%)\n", d.DynamicTime, d.ReTunes, d.FinalDWP*100)
	fmt.Fprintf(&b, "  improvement   : %6.1f%%\n", d.ImprovementPct)
	return b.String()
}
