package experiments

import (
	"math"
	"testing"

	"bwap/internal/search"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TestObservation1PagesOnAllNodes reproduces Section II, Observation 1:
// the searched optimal placements use non-worker nodes, not just workers.
func TestObservation1PagesOnAllNodes(t *testing.T) {
	p := MachineA().Quick()
	workers, _ := p.Workers(2)
	best := searchedWeights(t, p, workload.Streamcluster, workers)
	nonWorkerMass := 0.0
	isWorker := map[topology.NodeID]bool{}
	for _, w := range workers {
		isWorker[w] = true
	}
	for i, w := range best {
		if !isWorker[topology.NodeID(i)] {
			nonWorkerMass += w
		}
	}
	if nonWorkerMass < 0.2 {
		t.Fatalf("searched placement ignores non-workers: %.2f mass outside the worker set (weights %v)",
			nonWorkerMass, best)
	}
}

// TestObservation2UnevenWeights reproduces Observation 2: the searched
// distributions are highly asymmetric, reflecting the topology.
func TestObservation2UnevenWeights(t *testing.T) {
	p := MachineA().Quick()
	workers, _ := p.Workers(2)
	best := searchedWeights(t, p, workload.Streamcluster, workers)
	if cv := stats.CV(best); cv < 0.2 {
		t.Fatalf("searched weights suspiciously uniform (CV %.3f): %v", cv, best)
	}
}

// TestObservation3ProportionalSimilarity reproduces Observation 3, the
// insight behind the DWP reduction: after scaling one application's worker
// (resp. non-worker) weights so the aggregates match another application's,
// the per-node differences shrink — optimal distributions differ mostly by
// a single scalar per set.
func TestObservation3ProportionalSimilarity(t *testing.T) {
	p := MachineA().Quick()
	workers, _ := p.Workers(2)
	wa := searchedWeights(t, p, workload.Streamcluster, workers)
	wb := searchedWeights(t, p, workload.FTC, workers)

	isWorker := make([]bool, len(wa))
	for _, w := range workers {
		isWorker[w] = true
	}
	improvedSets := 0
	for _, workerSet := range []bool{true, false} {
		var idx []int
		for i := range wa {
			if isWorker[i] == workerSet {
				idx = append(idx, i)
			}
		}
		sumA, sumB := 0.0, 0.0
		for _, i := range idx {
			sumA += wa[i]
			sumB += wb[i]
		}
		if sumA == 0 || sumB == 0 {
			continue
		}
		scale := sumB / sumA
		before, after := 0.0, 0.0
		for _, i := range idx {
			before += math.Abs(wa[i] - wb[i])
			after += math.Abs(wa[i]*scale - wb[i])
		}
		if after <= before+1e-12 {
			improvedSets++
		}
		t.Logf("set(worker=%v): per-node |diff| before %.4f after scaling %.4f", workerSet, before, after)
	}
	if improvedSets == 0 {
		t.Fatal("scaling did not improve per-node similarity for either set (Observation 3)")
	}
}

// searchedWeights hill-climbs the weight space for one benchmark and
// returns the best distribution found.
func searchedWeights(t *testing.T, p *Profile, spec workload.Spec, workers []topology.NodeID) []float64 {
	t.Helper()
	objective := func(w []float64) float64 {
		tt, err := p.staticWeightedTime(spec, workers, w)
		if err != nil {
			return inf
		}
		return tt
	}
	starts := [][]float64{
		search.UniformOver(p.M.NumNodes(), nodeInts(workers)),
		search.Uniform(p.M.NumNodes()),
	}
	res, err := search.HillClimbMulti(objective, starts, 0.10, p.SearchBudget)
	if err != nil {
		t.Fatal(err)
	}
	return res.Best.Weights
}

// TestRendersContainKeyMarkers covers the text renderers.
func TestRendersContainKeyMarkers(t *testing.T) {
	p := MachineB().Quick()
	p.Seeds = 1
	fig, err := RunCoScheduled(p, 1, "Figure 3a")
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Render()
	for _, want := range []string{"Figure 3a", "bwap", "uniform-workers", "SC"} {
		if !containsStr(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	o, err := RunOverhead(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(o.Render(), "overhead") {
		t.Error("overhead render broken")
	}
	a, err := RunKernelVsUserAblation(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(a.Render(), "Algorithm 1") {
		t.Error("ablation render broken")
	}
	f4, err := RunFig4(p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(f4.Render(), "bwap chose") {
		t.Error("fig4 render broken")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
