package experiments

import (
	"strings"
	"testing"

	"bwap/internal/fleet"
)

// TestRunChaos runs the quick chaos scenario and checks what it exists to
// demonstrate: fault injection actually touches jobs (the comparison is
// not vacuous), every job still reaches a terminal state under churn, and
// each recorded bwap log replays bit-identically at every shard count.
func TestRunChaos(t *testing.T) {
	table, err := RunChaos(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Results) != 4 {
		t.Fatalf("%d result cells, want 4 (2 scenarios x 2 policies)", len(table.Results))
	}
	churned := false
	for _, r := range table.Results {
		s := r.Stats
		if s == nil {
			t.Fatalf("cell %s/%s has no stats", r.Scenario, r.Policy)
		}
		if s.Completed+s.FailedJobs != table.Jobs {
			t.Fatalf("cell %s/%s: %d completed + %d failed of %d jobs",
				r.Scenario, r.Policy, s.Completed, s.FailedJobs, table.Jobs)
		}
		if s.Evacuations > 0 || s.Retries > 0 {
			churned = true
		}
		if s.MachinesUp != s.Machines {
			t.Fatalf("cell %s/%s ended with %d/%d machines up: a fault never recovered",
				r.Scenario, r.Policy, s.MachinesUp, s.Machines)
		}
	}
	if !churned {
		t.Fatal("no cell evacuated or retried a job; the chaos scenario is vacuous")
	}
	if len(table.Replays) != 2 {
		t.Fatalf("%d replay verdicts, want 2", len(table.Replays))
	}
	for _, rep := range table.Replays {
		if !rep.Identical {
			t.Fatalf("scenario %s: chaos replay diverged across shard counts", rep.Scenario)
		}
	}
	out := table.Render()
	for _, want := range []string{"rolling-restart", "correlated-crash",
		fleet.PolicyBWAP, fleet.PolicyFirstTouch, "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
