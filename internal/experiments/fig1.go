package experiments

import (
	"fmt"
	"strings"

	"bwap/internal/memsys"
	"bwap/internal/policy"
	"bwap/internal/search"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// inf is the objective value for failed search evaluations.
const inf = 1e30

// Fig1a is the pairwise node-to-node bandwidth matrix (Figure 1a).
type Fig1a struct {
	MachineName string
	// Matrix[src][dst] is the measured single-stream bandwidth in GB/s.
	Matrix [][]float64
}

// RunFig1a measures the matrix the way the paper does: one saturating
// stream per (src,dst) pair, nothing else running.
func RunFig1a(p *Profile) *Fig1a {
	memCfg := memsys.DefaultConfig()
	if p.SimCfg.Mem != nil {
		memCfg = *p.SimCfg.Mem
	}
	sys := memsys.New(p.M, memCfg)
	return &Fig1a{MachineName: p.M.Name, Matrix: sys.MeasuredMatrix()}
}

// Render prints the matrix in the layout of Figure 1a (rows = source node,
// columns = destination node).
func (f *Fig1a) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1a — node-to-node BWs (GB/s) on %s\n", f.MachineName)
	b.WriteString("src\\dst")
	for d := range f.Matrix {
		fmt.Fprintf(&b, "   N%-3d", d+1)
	}
	b.WriteString("\n")
	for s, row := range f.Matrix {
		fmt.Fprintf(&b, "  N%-4d", s+1)
		for _, v := range row {
			fmt.Fprintf(&b, " %6.1f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig1bRow is one benchmark of Figure 1b: execution-time of each baseline
// normalized against the offline n-dimensional search (1.0 = as good as
// the search's best placements; lower = slower).
type Fig1bRow struct {
	Benchmark      string
	FirstTouch     float64
	UniformWorkers float64
	UniformAll     float64
	// OracleTime is the mean execution time of the search's top-10 weight
	// distributions.
	OracleTime float64
	// OracleBest is the single best weight distribution found.
	OracleBest []float64
}

// Fig1b is the motivation experiment of Section II: 2 worker nodes,
// 8 threads each, on Machine A.
type Fig1b struct {
	Rows []Fig1bRow
	// Evals is the per-benchmark evaluation budget of the search.
	Evals int
}

// RunFig1b reproduces Figure 1b: for each benchmark, hill-climb the
// N-dimensional weight space (starting from uniform-workers, as the paper
// does) and normalize the standard policies against the top-10 mean.
func RunFig1b(p *Profile) (*Fig1b, error) {
	workers, err := p.Workers(2)
	if err != nil {
		return nil, err
	}
	out := &Fig1b{Evals: p.SearchBudget}
	benches := workload.Benchmarks()
	out.Rows = make([]Fig1bRow, len(benches))
	err = parallelFor(len(benches), func(i int) error {
		spec := benches[i]
		objective := func(w []float64) float64 {
			t, err := p.staticWeightedTime(spec, workers, w)
			if err != nil {
				return inf
			}
			return t
		}
		// The paper climbs from uniform-workers; a second start at
		// uniform-all keeps the oracle strong at reduced budgets.
		starts := [][]float64{
			search.UniformOver(p.M.NumNodes(), nodeInts(workers)),
			search.Uniform(p.M.NumNodes()),
		}
		res, err := search.HillClimbMulti(objective, starts, 0.10, p.SearchBudget)
		if err != nil {
			return err
		}
		oracle := res.MeanTopK(10)

		row := Fig1bRow{Benchmark: spec.Name, OracleTime: oracle, OracleBest: res.Best.Weights}
		for _, pol := range []string{"first-touch", "uniform-workers", "uniform-all"} {
			r, err := p.Run(spec, workers, pol, false)
			if err != nil {
				return err
			}
			norm := oracle / r.Time
			switch pol {
			case "first-touch":
				row.FirstTouch = norm
			case "uniform-workers":
				row.UniformWorkers = norm
			case "uniform-all":
				row.UniformAll = norm
			}
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// staticWeightedTime runs one stand-alone deployment under a fixed weight
// vector (the search's evaluation function).
func (p *Profile) staticWeightedTime(spec workload.Spec, workers []topology.NodeID, w []float64) (float64, error) {
	e := sim.New(p.M, p.SimCfg)
	placer := policy.StaticWeighted{Weights: w, Label: "static-search"}
	if _, err := e.AddApp(spec.Name, spec.Scaled(p.WorkScale), workers, placer); err != nil {
		return 0, err
	}
	res, err := e.Run()
	if err != nil {
		return 0, err
	}
	if res.TimedOut {
		return 0, fmt.Errorf("experiments: static-weighted %s timed out", spec.Name)
	}
	return res.Times[spec.Name], nil
}

// nodeInts converts node ids to plain ints for search.UniformOver.
func nodeInts(nodes []topology.NodeID) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}

// Render prints Figure 1b as a table.
func (f *Fig1b) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1b — performance normalized to the n-dim search (higher is better)\n")
	b.WriteString("Benchmark   first-touch  uniform-workers  uniform-all   (oracle time s)\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-11s %11.2f %16.2f %12.2f %14.1f\n",
			r.Benchmark, r.FirstTouch, r.UniformWorkers, r.UniformAll, r.OracleTime)
	}
	fmt.Fprintf(&b, "(search budget: %d evaluations per benchmark)\n", f.Evals)
	return b.String()
}
