package experiments

import (
	"fmt"
	"strings"
	"time"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// The replay scenario closes the loop the paper's economics imply: a
// workload's bandwidth-aware placement is computed once and reused. A
// recorded Poisson job stream (the fleet scenario's mix) is replayed twice
// from its own JSONL event log — once against a cold tuning cache, which
// re-runs every profiling probe, and once against a cache warmed from the
// recorded run's snapshot, which runs none. Simulated turnaround is
// identical by determinism (same placements either way); what the snapshot
// buys is admission latency — the wall-clock probe work at placement time —
// so the table reports probe counts and wall time per phase.

// ReplayResult is one phase of the scenario.
type ReplayResult struct {
	// Phase labels the run: recorded, replay-cold, replay-warm.
	Phase string
	// Stats is the fleet outcome of the phase.
	Stats *fleet.Stats
	// Cache is the phase's tuning-cache accounting (Misses = probe runs).
	Cache fleet.TuningCacheStats
	// WallMS is the wall-clock time of the fleet run, dominated by probes.
	WallMS float64
}

// ReplayTable is the rendered scenario.
type ReplayTable struct {
	Title   string
	Jobs    int
	Classes int
	Results []ReplayResult
}

// replayConfig is the shared fleet configuration of every phase; only the
// cache differs.
func replayConfig(machines int, cache *fleet.TuningCache) fleet.Config {
	return fleet.Config{
		Machines:   machines,
		NewMachine: func(int) *topology.Machine { return topology.MachineB() },
		SimCfg:     sim.Config{Seed: 1},
		Policy:     fleet.PolicyBWAP,
		Seed:       1,
		Cache:      cache,
	}
}

// RunReplay records a Poisson stream, snapshots the tuning cache, and
// replays the stream from its own event log cold and snapshot-warmed.
// quick shrinks the stream for tests and CI.
func RunReplay(quick bool) (*ReplayTable, error) {
	machines := 4
	jobsPerClass := 6
	workScale := 0.05
	if quick {
		machines = 2
		jobsPerClass = 2
		workScale = 0.03
	}
	streams := fleetStream(jobsPerClass, workScale)

	runPhase := func(phase string, cache *fleet.TuningCache, submit func(f *fleet.Fleet) error) (*fleet.Fleet, ReplayResult, error) {
		f, err := fleet.New(replayConfig(machines, cache))
		if err != nil {
			return nil, ReplayResult{}, err
		}
		if err := submit(f); err != nil {
			return nil, ReplayResult{}, err
		}
		start := time.Now() //bwap:wallclock WallMS reports real speedup; it is presentation, not simulation state
		stats, err := f.Run()
		if err != nil {
			return nil, ReplayResult{}, fmt.Errorf("replay phase %s: %w", phase, err)
		}
		return f, ReplayResult{
			Phase:  phase,
			Stats:  stats,
			Cache:  cache.Stats(),
			WallMS: float64(time.Since(start).Microseconds()) / 1000, //bwap:wallclock harness timing, excluded from log-identity checks
		}, nil
	}

	// Phase 1: record the stream and snapshot the warmed cache.
	recCache := fleet.NewTuningCache(sim.Config{Seed: 1}, 0, 1)
	recorded, recRes, err := runPhase("recorded", recCache, func(f *fleet.Fleet) error {
		return f.SubmitStream(streams)
	})
	if err != nil {
		return nil, err
	}
	snapshot, err := recCache.SnapshotBytes()
	if err != nil {
		return nil, err
	}

	// The recorded log becomes the input stream.
	trace, err := fleet.ReadTrace(recorded.LogBytes(), nil)
	if err != nil {
		return nil, err
	}

	// Phase 2: cold replay — every placement re-probes.
	coldCache := fleet.NewTuningCache(sim.Config{Seed: 1}, 0, 1)
	_, coldRes, err := runPhase("replay-cold", coldCache, func(f *fleet.Fleet) error {
		return f.SubmitStream(trace)
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: snapshot-warmed replay — zero probes.
	warmCache := fleet.NewTuningCache(sim.Config{Seed: 1}, 0, 1)
	if _, err := warmCache.RestoreBytes(snapshot); err != nil {
		return nil, err
	}
	_, warmRes, err := runPhase("replay-warm", warmCache, func(f *fleet.Fleet) error {
		return f.SubmitStream(trace)
	})
	if err != nil {
		return nil, err
	}

	return &ReplayTable{
		Title:   "Trace replay: recorded stream vs cold and snapshot-warmed tuning cache",
		Jobs:    jobsPerClass * len(streams),
		Classes: len(trace),
		Results: []ReplayResult{recRes, coldRes, warmRes},
	}, nil
}

// Render formats the comparison.
func (t *ReplayTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d jobs in %d classes, machine B fleet, bwap policy\n\n", t.Jobs, t.Classes)
	fmt.Fprintf(&b, "  %-12s %12s %12s %8s %6s %9s %8s %10s\n",
		"phase", "turnaround", "wait", "probes", "hits", "restored", "entries", "wall")
	for _, r := range t.Results {
		fmt.Fprintf(&b, "  %-12s %11.1fs %11.1fs %8d %6d %9d %8d %8.1fms\n",
			r.Phase, r.Stats.MeanTurnaround, r.Stats.MeanWait,
			r.Cache.Misses, r.Cache.Hits, r.Cache.Restored, r.Cache.Entries, r.WallMS)
	}
	cold, warm := t.Results[1], t.Results[2]
	fmt.Fprintf(&b, "\n  snapshot-warmed replay: %d probes avoided, admission-path wall time %.1fms -> %.1fms (%.0f%% cut)\n",
		cold.Cache.Misses-warm.Cache.Misses, cold.WallMS, warm.WallMS,
		100*(1-warm.WallMS/cold.WallMS))
	fmt.Fprintf(&b, "  turnaround delta %.3fs (deterministic replay: identical placements either way)\n",
		warm.Stats.MeanTurnaround-cold.Stats.MeanTurnaround)
	return b.String()
}
