package experiments

import (
	"fmt"
	"testing"

	"bwap/internal/core"
	"bwap/internal/sim"
	"bwap/internal/workload"
)

// TestDiagnosticDWPSweep prints the static DWP landscape for Streamcluster
// on Machine A (the Figure 4 scenario) — run with -v to inspect.
func TestDiagnosticDWPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := MachineA().Quick()
	for _, nw := range []int{1, 2} {
		workers, err := p.Workers(nw)
		if err != nil {
			t.Fatal(err)
		}
		spec := workload.Streamcluster
		for dwp := 0.0; dwp <= 1.001; dwp += 0.2 {
			cfg := p.SimCfg
			e := sim.New(p.M, cfg)
			app, err := e.AddApp("sc", spec.Scaled(p.WorkScale), workers,
				core.StaticDWP{Canonical: p.Canonical(), DWP: dwp, UserLevel: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("SC A %dW dwp=%.1f time=%.1f stall=%.3g", nw, dwp, res.Times["sc"], app.Counters.AvgStallFraction())
		}
	}
}

// TestDiagnosticPolicies prints policy comparison for all benchmarks,
// co-scheduled on machine A with 1 and 2 workers.
func TestDiagnosticPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := MachineA().Quick()
	for _, nw := range []int{1, 2} {
		workers, _ := p.Workers(nw)
		for _, spec := range workload.Benchmarks() {
			line := ""
			for _, pol := range PolicyNames {
				r, err := p.Run(spec, workers, pol, true)
				if err != nil {
					t.Fatalf("%s/%s: %v", spec.Name, pol, err)
				}
				line += " " + pol + "=" + fmtF(r.Time)
				if pol == "bwap" {
					line += " dwp=" + fmtF(r.BestDWP)
				}
			}
			t.Logf("A %dW %-5s%s", nw, spec.Name, line)
		}
	}
}

// TestDiagnosticScaling prints stand-alone times vs worker count under
// uniform-workers, to check the optimal-parallelism calibration.
func TestDiagnosticScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, p := range []*Profile{MachineA().Quick(), MachineB().Quick()} {
		counts := []int{1, 2, 4}
		if p.M.NumNodes() == 8 {
			counts = append(counts, 8)
		}
		for _, spec := range workload.Benchmarks() {
			line := ""
			for _, nw := range counts {
				workers, _ := p.Workers(nw)
				r, err := p.Run(spec, workers, "uniform-workers", false)
				if err != nil {
					t.Fatal(err)
				}
				line += fmtF(r.Time) + " "
			}
			t.Logf("%s %-5s W=%v times: %s", p.Name, spec.Name, counts, line)
		}
	}
}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }
