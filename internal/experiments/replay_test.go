package experiments

import "testing"

// TestRunReplay pins the durable-cache acceptance criterion end to end: a
// recorded fleet log replays with a snapshot-warmed cache showing restored
// hits and zero probe runs for the repeated signatures, while the cold
// replay re-probes every key.
func TestRunReplay(t *testing.T) {
	table, err := RunReplay(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Results) != 3 {
		t.Fatalf("got %d phases, want 3", len(table.Results))
	}
	rec, cold, warm := table.Results[0], table.Results[1], table.Results[2]

	for _, r := range table.Results {
		if r.Stats.Completed != table.Jobs {
			t.Fatalf("phase %s completed %d/%d jobs", r.Phase, r.Stats.Completed, table.Jobs)
		}
	}
	if rec.Cache.Misses == 0 {
		t.Fatal("recorded phase ran no probes; the comparison is vacuous")
	}
	if cold.Cache.Misses != rec.Cache.Misses {
		t.Fatalf("cold replay ran %d probes, recorded run ran %d — replay is not faithful",
			cold.Cache.Misses, rec.Cache.Misses)
	}
	if warm.Cache.Misses != 0 {
		t.Fatalf("snapshot-warmed replay ran %d probes, want 0", warm.Cache.Misses)
	}
	if warm.Cache.Restored < 1 {
		t.Fatalf("warm replay restored %d entries, want >= 1", warm.Cache.Restored)
	}
	if warm.Cache.Hits < int64(table.Jobs) {
		t.Fatalf("warm replay hit %d times for %d jobs", warm.Cache.Hits, table.Jobs)
	}
	// Deterministic replay: the warmed cache changes admission wall time,
	// never simulated placements.
	if warm.Stats.MeanTurnaround != cold.Stats.MeanTurnaround {
		t.Fatalf("turnaround diverged: cold %.6f vs warm %.6f",
			cold.Stats.MeanTurnaround, warm.Stats.MeanTurnaround)
	}
	if warm.Stats.MeanTurnaround != rec.Stats.MeanTurnaround {
		t.Fatalf("replay turnaround %.6f differs from recorded %.6f",
			warm.Stats.MeanTurnaround, rec.Stats.MeanTurnaround)
	}
	if table.Render() == "" {
		t.Fatal("empty render")
	}
}
