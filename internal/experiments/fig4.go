package experiments

import (
	"fmt"
	"math"
	"strings"

	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// Fig4Point is one static deployment of the DWP sweep.
type Fig4Point struct {
	DWP float64
	// StallRate and ExecTime are normalized to the maximum of their series
	// (the paper plots "Norm. Stall rate" / "Norm. Execution time").
	StallRate, ExecTime float64
	// RawStallRate and RawTime are the unnormalized values.
	RawStallRate, RawTime float64
}

// Fig4Panel is one panel of Figure 4 (Streamcluster on Machine A, for one
// worker count): the static-DWP landscape plus the point the on-line
// tuner picked.
type Fig4Panel struct {
	Workers int
	Static  []Fig4Point
	// TunedDWP is the DWP the on-line search settled on (median of seeds);
	// TunedTime its (normalized) execution time.
	TunedDWP, TunedTime float64
	// BestStaticDWP is the sweep's argmin by execution time.
	BestStaticDWP float64
	// WithinOneStep reports the Section IV-B accuracy claim: the tuner
	// landed within one step (10%) of a near-optimal static DWP (within 2%
	// of the sweep's best time — flat regions of the landscape are ties).
	WithinOneStep bool
}

// Fig4 is the complete figure.
type Fig4 struct {
	MachineName string
	Panels      []Fig4Panel
}

// RunFig4 reproduces Figure 4: Streamcluster on Machine A with 1 and 2
// worker nodes (co-scheduled with Swaptions, the Table II scenario),
// sweeping static DWP values 0..100% in steps of 10% and overlaying the
// on-line tuner's choice.
func RunFig4(p *Profile, workerCounts []int) (*Fig4, error) {
	spec := workload.Streamcluster
	out := &Fig4{MachineName: p.Name}
	for _, nw := range workerCounts {
		ws, err := p.Workers(nw)
		if err != nil {
			return nil, err
		}
		panel := Fig4Panel{Workers: nw}
		panel.Static = make([]Fig4Point, len(dwpSweep))
		err = parallelFor(len(dwpSweep), func(i int) error {
			dwp := dwpSweep[i]
			t, stall, err := p.staticDWPRun(spec, ws, dwp)
			if err != nil {
				return err
			}
			panel.Static[i] = Fig4Point{DWP: dwp, RawStallRate: stall, RawTime: t}
			return nil
		})
		if err != nil {
			return nil, err
		}
		maxStall, maxTime := 0.0, 0.0
		bestTime := math.Inf(1)
		for _, pt := range panel.Static {
			maxStall = math.Max(maxStall, pt.RawStallRate)
			maxTime = math.Max(maxTime, pt.RawTime)
			if pt.RawTime < bestTime {
				bestTime = pt.RawTime
				panel.BestStaticDWP = pt.DWP
			}
		}
		for i := range panel.Static {
			if maxStall > 0 {
				panel.Static[i].StallRate = panel.Static[i].RawStallRate / maxStall
			}
			if maxTime > 0 {
				panel.Static[i].ExecTime = panel.Static[i].RawTime / maxTime
			}
		}
		// On-line tuner run (bwap, co-scheduled).
		r, err := p.Run(spec, ws, "bwap", true)
		if err != nil {
			return nil, err
		}
		panel.TunedDWP = r.BestDWP
		if maxTime > 0 {
			panel.TunedTime = r.Time / maxTime
		}
		panel.WithinOneStep = withinOneStepOfOptimum(panel.TunedDWP, panel.Static, bestTime)
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// dwpSweep is the static DWP grid of Figure 4 and the overhead analysis:
// 0..100% in steps of 10%.
var dwpSweep = func() []float64 {
	var out []float64
	for dwp := 0.0; dwp <= 1.0001; dwp += 0.1 {
		out = append(out, dwp)
	}
	return out
}()

// withinOneStepOfOptimum reports whether dwp lies within one 10% step of
// any static point whose time is within 2% of the sweep's best — the
// Section IV-B accuracy criterion, treating flat regions as ties.
func withinOneStepOfOptimum(dwp float64, static []Fig4Point, bestTime float64) bool {
	for _, pt := range static {
		if pt.RawTime <= bestTime*1.02 && math.Abs(dwp-pt.DWP) <= 0.10001 {
			return true
		}
	}
	return false
}

// staticDWPRun is one manual deployment at a fixed DWP in the co-scheduled
// scenario, returning (time, stall rate).
func (p *Profile) staticDWPRun(spec workload.Spec, ws []topology.NodeID, dwp float64) (float64, float64, error) {
	e := sim.New(p.M, p.SimCfg)
	rest := sched.RemainingNodes(p.M, ws)
	if len(rest) > 0 {
		if _, err := e.AddApp(coRunnerName, workload.Swaptions, rest, policy.FirstTouch{}); err != nil {
			return 0, 0, err
		}
	}
	placer := core.StaticDWP{Canonical: p.Canonical(), DWP: dwp, UserLevel: true}
	if _, err := e.AddApp(spec.Name, spec.Scaled(p.WorkScale), ws, placer); err != nil {
		return 0, 0, err
	}
	res, err := e.Run()
	if err != nil {
		return 0, 0, err
	}
	if res.TimedOut {
		return 0, 0, fmt.Errorf("experiments: static DWP %.0f%% run timed out", dwp*100)
	}
	return res.Times[spec.Name], res.AvgStallRate[spec.Name], nil
}

// Render prints the sweep as aligned series, one panel per worker count.
func (f *Fig4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — DWP iterative search, Streamcluster on %s\n", f.MachineName)
	for _, panel := range f.Panels {
		fmt.Fprintf(&b, "\n%d worker node(s):\n  DWP(%%)      ", panel.Workers)
		for _, pt := range panel.Static {
			fmt.Fprintf(&b, " %6.0f", pt.DWP*100)
		}
		b.WriteString("\n  norm stall  ")
		for _, pt := range panel.Static {
			fmt.Fprintf(&b, " %6.2f", pt.StallRate)
		}
		b.WriteString("\n  norm time   ")
		for _, pt := range panel.Static {
			fmt.Fprintf(&b, " %6.2f", pt.ExecTime)
		}
		fmt.Fprintf(&b, "\n  bwap chose DWP=%.0f%% (best static %.0f%%; within one step: %v)\n",
			panel.TunedDWP*100, panel.BestStaticDWP*100, panel.WithinOneStep)
	}
	return b.String()
}
