package experiments

import (
	"math"
	"strings"
	"testing"

	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TestFig1aReproducesPaperMatrix: the harness-level check that the
// simulated Machine A measures exactly the published matrix.
func TestFig1aReproducesPaperMatrix(t *testing.T) {
	f := RunFig1a(MachineA())
	want := topology.MachineA().NominalMatrix()
	for s := range want {
		for d := range want[s] {
			if math.Abs(f.Matrix[s][d]-want[s][d]) > 1e-6 {
				t.Fatalf("matrix[%d][%d] = %v, want %v", s, d, f.Matrix[s][d], want[s][d])
			}
		}
	}
	if !strings.Contains(f.Render(), "9.2") {
		t.Fatal("render missing local bandwidth")
	}
}

// TestFig1bShape: the Section II claims — the offline search beats every
// baseline; first-touch is the worst of the three for multi-worker runs.
func TestFig1bShape(t *testing.T) {
	p := MachineA().Quick()
	f, err := RunFig1b(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 5 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	for _, r := range f.Rows {
		// Normalized scores are oracle/policy: <= ~1 (searching found
		// something at least as good; small tolerance for noise in the
		// top-10 average).
		for name, v := range map[string]float64{
			"first-touch": r.FirstTouch, "uniform-workers": r.UniformWorkers, "uniform-all": r.UniformAll,
		} {
			if v > 1.02 {
				t.Errorf("%s/%s normalized %v > 1: search lost to a baseline", r.Benchmark, name, v)
			}
			if v <= 0 {
				t.Errorf("%s/%s normalized %v <= 0", r.Benchmark, name, v)
			}
		}
		if r.FirstTouch > r.UniformAll {
			t.Errorf("%s: first-touch (%v) beat uniform-all (%v)", r.Benchmark, r.FirstTouch, r.UniformAll)
		}
	}
}

// TestTable1Shape: the characterization must reproduce the access mix of
// Table I and the demand ordering of the benchmarks.
func TestTable1Shape(t *testing.T) {
	p := MachineB().Quick()
	tab, err := RunTable1(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, r := range tab.Rows {
		byName[r.Benchmark] = i
	}
	want := map[string]struct{ priv, reads float64 }{
		"OC": {79.3, 17576}, "ON": {86.7, 16053}, "SP.B": {19.9, 11962},
		"SC": {0.2, 10055}, "FT.C": {95.0, 5585},
	}
	for name, w := range want {
		r := tab.Rows[byName[name]]
		if math.Abs(r.PrivatePct-w.priv) > 3 {
			t.Errorf("%s private%% = %.1f, want ~%.1f", name, r.PrivatePct, w.priv)
		}
		// Reads within 25% (saturating apps measure below their demand).
		if r.ReadMBs < w.reads*0.75 || r.ReadMBs > w.reads*1.1 {
			t.Errorf("%s reads = %.0f MB/s, want within 25%% of %.0f", name, r.ReadMBs, w.reads)
		}
	}
	// Demand ordering preserved: OC > ON > SP.B > SC > FT.C by reads.
	order := []string{"OC", "ON", "SP.B", "SC", "FT.C"}
	for i := 0; i+1 < len(order); i++ {
		if tab.Rows[byName[order[i]]].ReadMBs <= tab.Rows[byName[order[i+1]]].ReadMBs {
			t.Errorf("read ordering broken between %s and %s", order[i], order[i+1])
		}
	}
}

// TestFig2Shape: co-scheduled on Machine A with 2 workers — the headline
// ordering of Figure 2b.
func TestFig2Shape(t *testing.T) {
	p := MachineA().Quick()
	fig, err := RunCoScheduled(p, 2, "Figure 2b")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig.Rows {
		// BWAP must at least match uniform-workers (speedup >= ~1) on every
		// benchmark and machine (the paper's "best or comparable" claim).
		if r.Speedup["bwap"] < 0.97 {
			t.Errorf("%s: bwap speedup %v < 1 vs uniform-workers", r.Benchmark, r.Speedup["bwap"])
		}
		// first-touch never beats bwap in this scenario.
		if r.Speedup["first-touch"] > r.Speedup["bwap"]+0.02 {
			t.Errorf("%s: first-touch (%v) beat bwap (%v)", r.Benchmark, r.Speedup["first-touch"], r.Speedup["bwap"])
		}
	}
	// Somewhere in the suite the gain must be substantial (paper: up to
	// 1.66x over uniform-workers at small worker counts).
	if best := fig.MaxSpeedup("bwap"); best < 1.25 {
		t.Errorf("max bwap speedup %v, want >= 1.25", best)
	}
}

// TestGainsShrinkWithMoreWorkers: the paper's key trend — BWAP's edge over
// uniform interleaving drops as the worker set grows (Figure 2a vs 2c).
func TestGainsShrinkWithMoreWorkers(t *testing.T) {
	p := MachineA().Quick()
	small, err := RunCoScheduled(p, 1, "2a")
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunCoScheduled(p, 4, "2c")
	if err != nil {
		t.Fatal(err)
	}
	// Compare the geometric-mean edge of bwap over uniform-all (the
	// strongest uniform baseline).
	edge := func(f *SpeedupFigure) float64 {
		prod, n := 1.0, 0
		for _, r := range f.Rows {
			prod *= r.Speedup["bwap"] / r.Speedup["uniform-all"]
			n++
		}
		return math.Pow(prod, 1/float64(n))
	}
	if e1, e4 := edge(small), edge(large); e4 > e1+0.05 {
		t.Errorf("bwap edge grew with more workers: 1W %v vs 4W %v", e1, e4)
	}
}

// TestFig3StandaloneShape: stand-alone at optimal worker counts, Machine B
// (Figure 3d): bwap within a whisker of the best policy everywhere.
func TestFig3StandaloneShape(t *testing.T) {
	p := MachineB().Quick()
	fig, err := RunStandalone(p, "Figure 3d")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig.Rows {
		best := 0.0
		for _, pol := range PolicyNames {
			if r.Speedup[pol] > best {
				best = r.Speedup[pol]
			}
		}
		if r.Speedup["bwap"] < best*0.93 {
			t.Errorf("%s: bwap %.3f not comparable to best %.3f", r.Benchmark, r.Speedup["bwap"], best)
		}
	}
}

// TestTable2Shape: the DWP values of Table II — SC on Machine B climbs to
// 100% (locality wins outright there); OC/ON on Machine B stay at 0
// (pure bandwidth hunger).
func TestTable2Shape(t *testing.T) {
	p := MachineB().Quick()
	tab, err := RunTable2(p, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sc := tab.DWP["SC"]
	if sc[0] < 0.85 {
		t.Errorf("SC 1W DWP on machine B = %v, want ~100%% (Table II)", sc[0])
	}
	// At 2 workers the landscape beyond DWP~0.4 is flat to within
	// measurement noise in our model (see EXPERIMENTS.md); the tuner must
	// still climb well away from 0.
	if sc[1] < 0.25 {
		t.Errorf("SC 2W DWP on machine B = %v, want to climb toward locality", sc[1])
	}
	for _, name := range []string{"OC", "ON"} {
		for i, v := range tab.DWP[name] {
			if v > 0.15 {
				t.Errorf("%s DWP[%d] = %v, want ~0 (Table II)", name, i, v)
			}
		}
	}
	if !strings.Contains(tab.Render(), "Table II") {
		t.Fatal("render broken")
	}
}

// TestFig4Shape: the Streamcluster DWP landscape on Machine A — convex-ish
// with an interior optimum at 1 worker, monotone rising at 2 workers, and
// the tuner within one step of the static optimum.
func TestFig4Shape(t *testing.T) {
	p := MachineA().Quick()
	fig, err := RunFig4(p, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := fig.Panels[0], fig.Panels[1]
	// 1 worker: interior optimum (neither 0 nor 1), per Figure 4 left.
	if p1.BestStaticDWP <= 0.05 || p1.BestStaticDWP >= 0.95 {
		t.Errorf("1W best static DWP = %v, want interior", p1.BestStaticDWP)
	}
	// 2 workers: optimum at/near zero, per Table II (SC/A/2W = 0%).
	if p2.BestStaticDWP > 0.15 {
		t.Errorf("2W best static DWP = %v, want ~0", p2.BestStaticDWP)
	}
	for _, panel := range fig.Panels {
		if !panel.WithinOneStep {
			t.Errorf("%dW: tuner DWP %v vs static %v — outside one step",
				panel.Workers, panel.TunedDWP, panel.BestStaticDWP)
		}
		// Stall rate tracks execution time: argmin within one step.
		bestStall, bestTime := 0.0, 0.0
		minS, minT := math.Inf(1), math.Inf(1)
		for _, pt := range panel.Static {
			if pt.RawStallRate < minS {
				minS, bestStall = pt.RawStallRate, pt.DWP
			}
			if pt.RawTime < minT {
				minT, bestTime = pt.RawTime, pt.DWP
			}
		}
		if math.Abs(bestStall-bestTime) > 0.11 {
			t.Errorf("%dW: stall argmin %v vs time argmin %v — not correlated",
				panel.Workers, bestStall, bestTime)
		}
	}
}

// TestOverheadWithinBounds: Section IV-B — tuner overhead stays small and
// the chosen DWP lands within one step of the optimum. This uses the full
// profile: the paper itself notes that short runs cannot amortize the
// search, and the Quick profile's runs are deliberately short.
func TestOverheadWithinBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-profile experiment")
	}
	p := MachineA()
	p.Seeds = 2
	o, err := RunOverhead(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at most 4% on minutes-long native runs. Our compressed runs
	// amortize the search less, and SP.B's simulated landscape is steeper
	// around DWP=0 than the real machine's, so its inherent one-step
	// overshoot costs ~20% (see EXPERIMENTS.md). Everything else must stay
	// in single digits.
	if worst := o.MaxOverheadPct(); worst > 25 {
		t.Errorf("max tuner overhead %.1f%%, want <= 25%%", worst)
	}
	inSingleDigits := 0
	for _, r := range o.Rows {
		if !r.WithinOneStep {
			t.Errorf("%s: tuned DWP %v vs best static %v", r.Benchmark, r.TunedDWP, r.BestStaticDWP)
		}
		if r.OverheadPct <= 8 {
			inSingleDigits++
		}
	}
	if inSingleDigits < 4 {
		t.Errorf("only %d/5 benchmarks with single-digit overhead", inSingleDigits)
	}
}

// TestKernelVsUserAblation: Section IV — the user-level Algorithm 1 costs
// at most ~3% against the kernel-level weighted interleave.
func TestKernelVsUserAblation(t *testing.T) {
	p := MachineA().Quick()
	a, err := RunKernelVsUserAblation(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gap := a.MaxAbsGapPct(); gap > 3 {
		t.Errorf("kernel-vs-user gap %.2f%%, want <= 3%%", gap)
	}
}

// TestProfilesAndPolicies covers harness plumbing.
func TestProfilesAndPolicies(t *testing.T) {
	for _, p := range []*Profile{MachineA(), MachineB()} {
		if p.Canonical() == nil {
			t.Fatal("no canonical tuner")
		}
		if p.Canonical() != p.Canonical() {
			t.Fatal("canonical tuner not cached")
		}
		for _, name := range PolicyNames {
			pl, err := p.NewPolicy(name, "")
			if err != nil {
				t.Fatal(err)
			}
			if pl.Name() != name {
				t.Fatalf("policy %q renders as %q", name, pl.Name())
			}
		}
		if _, err := p.NewPolicy("nope", ""); err == nil {
			t.Fatal("unknown policy accepted")
		}
	}
	q := MachineA().Quick()
	if q.Seeds >= MachineA().Seeds {
		t.Fatal("Quick did not reduce seeds")
	}
}

func TestOptimalWorkersStandalone(t *testing.T) {
	a := OptimalWorkersStandalone("machine-A")
	if a["SC"] != 4 || a["OC"] != 8 || a["SP.B"] != 1 {
		t.Fatalf("machine-A map wrong: %v", a)
	}
	b := OptimalWorkersStandalone("machine-B")
	if b["OC"] != 4 || b["SP.B"] != 1 {
		t.Fatalf("machine-B map wrong: %v", b)
	}
}

func TestRunRejectsImpossibleCoSchedule(t *testing.T) {
	p := MachineB().Quick()
	ws, err := p.Workers(4) // whole machine: no nodes left for Swaptions
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(workload.Streamcluster, ws, "bwap", true); err == nil {
		t.Fatal("co-scheduling with no free nodes accepted")
	}
}

// TestDynamicExtension: the Section VI re-tuner must beat (or match) the
// one-shot tuner on a phase-changing workload and actually re-tune.
func TestDynamicExtension(t *testing.T) {
	p := MachineB().Quick()
	d, err := RunDynamicExtension(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReTunes == 0 {
		t.Fatal("watchdog never re-tuned")
	}
	if d.DynamicTime > d.OneShotTime*1.02 {
		t.Fatalf("dynamic slower than one-shot: %v vs %v", d.DynamicTime, d.OneShotTime)
	}
	if !strings.Contains(d.Render(), "re-tune") {
		t.Fatal("render broken")
	}
}
