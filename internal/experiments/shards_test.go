package experiments

import "testing"

// TestShardScalingInvariance runs the quick shard-scaling grid and checks
// the scenario's core claim: for a fixed admission policy, the simulated
// outcome is identical at every shard count (only wall time may move).
func TestShardScalingInvariance(t *testing.T) {
	table, err := RunShardScaling(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Results) != len(ShardAdmissionPolicies)*len(table.ShardCounts) {
		t.Fatalf("got %d cells, want %d", len(table.Results),
			len(ShardAdmissionPolicies)*len(table.ShardCounts))
	}
	type outcome struct {
		completed  int
		turnaround float64
		records    int
	}
	byAdmission := map[string]outcome{}
	for _, r := range table.Results {
		if r.Stats.Completed != table.Jobs {
			t.Fatalf("%s/%d completed %d/%d jobs", r.Admission, r.Shards, r.Stats.Completed, table.Jobs)
		}
		got := outcome{r.Stats.Completed, r.Stats.MeanTurnaround, r.Stats.LogRecords}
		if prev, ok := byAdmission[r.Admission]; ok {
			if prev != got {
				t.Fatalf("%s: shard count changed the simulated outcome: %+v vs %+v",
					r.Admission, prev, got)
			}
		} else {
			byAdmission[r.Admission] = got
		}
		// Warm cache: the measured cells must never probe.
		if r.Stats.CacheMisses != 0 {
			t.Fatalf("%s/%d ran %d probes against the warm cache", r.Admission, r.Shards, r.Stats.CacheMisses)
		}
	}
	if table.Render() == "" {
		t.Fatal("empty render")
	}
}
