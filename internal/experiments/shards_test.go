package experiments

import (
	"fmt"
	"testing"
)

// TestShardScalingInvariance runs the quick shard-scaling grid and checks
// the scenario's core claim: for a fixed (admission policy, engine) pair,
// the simulated outcome is identical at every shard count (only wall time
// may move). Engines are NOT compared to each other: v2's latency-feedback
// snap legitimately shifts turnarounds in the last float digits.
func TestShardScalingInvariance(t *testing.T) {
	table, err := RunShardScaling(true)
	if err != nil {
		t.Fatal(err)
	}
	const engines = 2 // v1 barrier, v2 windowed
	if len(table.Results) != len(ShardAdmissionPolicies)*len(table.ShardCounts)*engines {
		t.Fatalf("got %d cells, want %d", len(table.Results),
			len(ShardAdmissionPolicies)*len(table.ShardCounts)*engines)
	}
	type outcome struct {
		completed  int
		turnaround float64
		records    int
	}
	byGroup := map[string]outcome{}
	for _, r := range table.Results {
		if r.Stats.Completed != table.Jobs {
			t.Fatalf("%s/v%d/%d completed %d/%d jobs", r.Admission, r.Engine, r.Shards, r.Stats.Completed, table.Jobs)
		}
		key := fmt.Sprintf("%s/v%d", r.Admission, r.Engine)
		got := outcome{r.Stats.Completed, r.Stats.MeanTurnaround, r.Stats.LogRecords}
		if prev, ok := byGroup[key]; ok {
			if prev != got {
				t.Fatalf("%s: shard count changed the simulated outcome: %+v vs %+v",
					key, prev, got)
			}
		} else {
			byGroup[key] = got
		}
		// Warm cache: the measured cells must never probe.
		if r.Stats.CacheMisses != 0 {
			t.Fatalf("%s/v%d/%d ran %d probes against the warm cache", r.Admission, r.Engine, r.Shards, r.Stats.CacheMisses)
		}
	}
	if table.Render() == "" {
		t.Fatal("empty render")
	}
}
