package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// The chaos scenario stresses the scheduler's robustness claim: machine
// churn — rolling restarts and correlated crashes injected by a
// deterministic FaultPlan — should degrade turnaround, not correctness,
// and bandwidth-aware placement should keep its edge over first-touch
// while the fleet is losing and regaining capacity. Each scenario runs the
// identical job stream and fault schedule under both policies; the bwap
// run's event log is then replayed through fleet.ReadTrace with the same
// FaultPlan at several shard counts and byte-compared against the
// original, demonstrating that a recorded failure scenario is a fully
// replayable experiment.

// ChaosResult is one (scenario, policy) cell.
type ChaosResult struct {
	Scenario string
	Policy   string
	Stats    *fleet.Stats
}

// ChaosReplay is one scenario's replay-equivalence verdict.
type ChaosReplay struct {
	Scenario string
	// Shards lists the shard counts replayed; Identical reports whether
	// every replay reproduced the recorded log byte for byte.
	Shards    []int
	Identical bool
}

// ChaosTable is the rendered scenario.
type ChaosTable struct {
	Title    string
	Machines int
	Jobs     int
	Results  []ChaosResult
	Replays  []ChaosReplay
}

// chaosScenario pairs a fault schedule with its label.
type chaosScenario struct {
	name string
	plan *fleet.FaultPlan
}

// chaosScenarios builds the two fault schedules against a fleet of the
// given size. Times sit inside the stream's busy window so the faults
// actually hit running jobs.
func chaosScenarios(machines int, quick bool) []chaosScenario {
	drainAt, stagger, drainUp := 30.0, 20.0, 20.0
	crashAt, crashEvery, crashUp := 10.0, 15.0, 10.0
	crashWaves := 3
	if quick {
		drainAt, stagger, drainUp = 4, 5, 8
		crashAt, crashEvery, crashUp = 6, 8, 6
		crashWaves = 1
	}
	half := make([]int, 0, machines/2)
	for m := 0; m < (machines+1)/2; m++ {
		half = append(half, m)
	}
	return []chaosScenario{
		{
			name: "rolling-restart",
			plan: &fleet.FaultPlan{Faults: []fleet.FaultSpec{
				{Kind: fleet.FaultDrain, At: drainAt, Stagger: stagger, RecoverAfter: drainUp},
			}},
		},
		{
			name: "correlated-crash",
			plan: &fleet.FaultPlan{Faults: []fleet.FaultSpec{
				{Kind: fleet.FaultCrash, Machines: half, At: crashAt,
					Every: crashEvery, Count: crashWaves, RecoverAfter: crashUp},
			}},
		},
	}
}

// chaosConfig is the shared fleet configuration of every cell.
func chaosConfig(machines, shards int, policy string, plan *fleet.FaultPlan) fleet.Config {
	return fleet.Config{
		Machines:   machines,
		Shards:     shards,
		NewMachine: func(int) *topology.Machine { return topology.MachineB() },
		SimCfg:     sim.Config{Seed: 1},
		Policy:     policy,
		Seed:       1,
		Faults:     plan,
	}
}

// RunChaos executes the fault-injection comparison and the replay
// verification. quick shrinks the stream, fleet and shard sweep for tests
// and CI.
func RunChaos(quick bool) (*ChaosTable, error) {
	machines := 4
	jobsPerClass := 6
	workScale := 0.05
	shardCounts := []int{1, 2, 4}
	if quick {
		machines = 2
		jobsPerClass = 2
		workScale = 0.03
		shardCounts = []int{1, 2}
	}
	streams := fleetStream(jobsPerClass, workScale)
	scenarios := chaosScenarios(machines, quick)
	policies := []string{fleet.PolicyFirstTouch, fleet.PolicyBWAP}

	table := &ChaosTable{
		Title:    "Chaos: deterministic fault injection under bwap vs first-touch",
		Machines: machines,
		Jobs:     jobsPerClass * len(streams),
		Results:  make([]ChaosResult, len(scenarios)*len(policies)),
	}
	logs := make([][]byte, len(scenarios)) // bwap run per scenario, for replay
	err := parallelFor(len(table.Results), func(i int) error {
		sc := scenarios[i/len(policies)]
		pol := policies[i%len(policies)]
		f, err := fleet.New(chaosConfig(machines, 1, pol, sc.plan))
		if err != nil {
			return err
		}
		if err := f.SubmitStream(streams); err != nil {
			return err
		}
		stats, err := f.Run()
		if err != nil {
			return fmt.Errorf("chaos %s/%s: %w", sc.name, pol, err)
		}
		table.Results[i] = ChaosResult{Scenario: sc.name, Policy: pol, Stats: stats}
		if pol == fleet.PolicyBWAP {
			logs[i/len(policies)] = f.LogBytes()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Replay verification: the recorded bwap log, re-ingested as a trace and
	// rerun with the same FaultPlan, must reproduce itself bit for bit at
	// every shard count.
	for si, sc := range scenarios {
		rep := ChaosReplay{Scenario: sc.name, Shards: shardCounts, Identical: true}
		trace, err := fleet.ReadTrace(logs[si], nil)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", sc.name, err)
		}
		for _, shards := range shardCounts {
			f, err := fleet.New(chaosConfig(machines, shards, fleet.PolicyBWAP, sc.plan))
			if err != nil {
				return nil, err
			}
			if err := f.SubmitStream(trace); err != nil {
				return nil, err
			}
			if _, err := f.Run(); err != nil {
				return nil, fmt.Errorf("chaos %s replay (%d shards): %w", sc.name, shards, err)
			}
			if !bytes.Equal(f.LogBytes(), logs[si]) {
				rep.Identical = false
			}
		}
		table.Replays = append(table.Replays, rep)
	}
	return table, nil
}

// Render formats the comparison.
func (t *ChaosTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d machines (Machine B), %d jobs per cell\n\n", t.Machines, t.Jobs)
	fmt.Fprintf(&b, "  %-18s %-12s %12s %10s %6s %8s %7s %6s\n",
		"scenario", "policy", "turnaround", "completed", "evac", "retries", "failed", "util")
	for _, r := range t.Results {
		s := r.Stats
		fmt.Fprintf(&b, "  %-18s %-12s %11.1fs %10d %6d %8d %7d %5.1f%%\n",
			r.Scenario, r.Policy, s.MeanTurnaround, s.Completed,
			s.Evacuations, s.Retries, s.FailedJobs, 100*s.Utilization)
	}
	b.WriteString("\n")
	for _, rep := range t.Replays {
		verdict := "bit-identical"
		if !rep.Identical {
			verdict = "MISMATCH"
		}
		shards := make([]string, len(rep.Shards))
		for i, s := range rep.Shards {
			shards[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&b, "  %-18s log replay at %s shards: %s\n",
			rep.Scenario, strings.Join(shards, "/"), verdict)
	}
	return b.String()
}
