package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// The fast-forward scenario demonstrates the quiescent-interval
// optimization end to end: the identical job stream scheduled twice —
// once on the naive solve-every-tick reference (DisableFastForward, the
// BWAP_NO_FASTFORWARD=1 path) and once with memoized solves and
// barrier-free replay batches. The simulated outcome is byte-identical by
// construction (the scenario verifies the merged event logs match); what
// changes is wall-clock time and the tick economics, which the table
// reports as solves vs. replays.

// FastForwardResult is one mode's outcome on the shared stream.
type FastForwardResult struct {
	// Mode labels the run: naive or fast-forward.
	Mode string
	// Stats is the fleet outcome (TickSolves/TickReplays carry the
	// economics).
	Stats *fleet.Stats
	// WallMS is the wall-clock time of the fleet run.
	WallMS float64
}

// FastForwardTable is the rendered scenario.
type FastForwardTable struct {
	Title    string
	Machines int
	Jobs     int
	// LogsIdentical records the byte-comparison of the two event logs —
	// the scenario's correctness half.
	LogsIdentical bool
	Results       []FastForwardResult
}

// RunFastForward executes the comparison: a Poisson stream over a fleet
// of Machine B boxes with a pre-warmed tuning cache (so probe work does
// not pollute the timing), naive vs. fast-forward. quick shrinks the
// stream for tests and CI.
func RunFastForward(quick bool) (*FastForwardTable, error) {
	machines := 8
	jobsPerClass := 6
	workScale := 0.05
	if quick {
		machines = 4
		jobsPerClass = 2
		workScale = 0.03
	}
	streams := fleetStream(jobsPerClass, workScale)
	cache := fleet.NewTuningCache(sim.Config{Seed: 1}, 0, 1)

	newFleet := func(disable bool) (*fleet.Fleet, error) {
		return fleet.New(fleet.Config{
			Machines:   machines,
			NewMachine: func(int) *topology.Machine { return topology.MachineB() },
			SimCfg:     sim.Config{Seed: 1, DisableFastForward: disable},
			Seed:       1,
			Cache:      cache,
		})
	}

	// Warm the shared cache so both timed runs place from hits alone.
	warm, err := newFleet(true)
	if err != nil {
		return nil, err
	}
	if err := warm.SubmitStream(streams); err != nil {
		return nil, err
	}
	if _, err := warm.Run(); err != nil {
		return nil, fmt.Errorf("fastforward warm-up: %w", err)
	}

	table := &FastForwardTable{
		Title:    "Quiescent-interval fast-forward: naive reference vs memoized replay",
		Machines: machines,
		Jobs:     jobsPerClass * len(streams),
	}
	var logs [][]byte
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"naive", true}, {"fast-forward", false}} {
		f, err := newFleet(mode.disable)
		if err != nil {
			return nil, err
		}
		if err := f.SubmitStream(streams); err != nil {
			return nil, err
		}
		start := time.Now() //bwap:wallclock WallMS reports real speedup; it is presentation, not simulation state
		stats, err := f.Run()
		if err != nil {
			return nil, fmt.Errorf("fastforward %s: %w", mode.name, err)
		}
		table.Results = append(table.Results, FastForwardResult{
			Mode:   mode.name,
			Stats:  stats,
			WallMS: float64(time.Since(start).Microseconds()) / 1000, //bwap:wallclock harness timing, excluded from log-identity checks
		})
		logs = append(logs, f.LogBytes())
	}
	table.LogsIdentical = bytes.Equal(logs[0], logs[1])
	return table, nil
}

// Render formats the comparison.
func (t *FastForwardTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d machines, %d jobs; identical stream, identical seed\n\n", t.Machines, t.Jobs)
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %10s %12s\n",
		"mode", "wall ms", "tick solves", "tick replays", "replay %", "turnaround")
	for _, r := range t.Results {
		total := r.Stats.TickSolves + r.Stats.TickReplays
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Stats.TickReplays) / float64(total)
		}
		fmt.Fprintf(&b, "%-14s %10.1f %12d %12d %9.1f%% %11.2fs\n",
			r.Mode, r.WallMS, r.Stats.TickSolves, r.Stats.TickReplays, pct, r.Stats.MeanTurnaround)
	}
	fmt.Fprintf(&b, "\nevent logs byte-identical: %v\n", t.LogsIdentical)
	return b.String()
}
