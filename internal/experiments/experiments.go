// Package experiments regenerates every table and figure of the paper's
// evaluation (Section II and Section IV) on the simulated machines:
//
//	Figure 1a — node-to-node bandwidth matrix of Machine A
//	Figure 1b — baseline policies vs the offline n-dimensional search
//	Table I   — memory access characterization of the benchmarks
//	Figure 2  — co-scheduled speedups on Machine A (1/2/4 workers)
//	Figure 3a/b — co-scheduled speedups on Machine B (1/2 workers)
//	Figure 3c/d — stand-alone speedups at optimal worker counts
//	Table II  — DWP values found by the iterative search
//	Figure 4  — static-DWP sweep vs the on-line tuner (Streamcluster)
//	plus the Section IV-B overhead/accuracy analysis and the kernel- vs
//	user-level interleaving ablation.
//
// Absolute numbers come from the simulator, not the authors' testbed; the
// comparisons EXPERIMENTS.md makes are about shape (who wins, by roughly
// what factor, where trends reverse).
package experiments

import (
	"fmt"
	"math"
	"sync"

	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// Profile bundles a machine with the simulation configuration and
// experiment scales used on it.
type Profile struct {
	// Name labels output.
	Name string
	// M is the machine under test.
	M *topology.Machine
	// SimCfg is the engine configuration every run uses.
	SimCfg sim.Config
	// Seeds is how many noise seeds BWAP runs average over (the paper
	// averages 5 runs).
	Seeds int
	// WorkScale uniformly scales benchmark work volumes, trading run length
	// for fidelity of the tuner's convergence window.
	WorkScale float64
	// SearchBudget is the evaluation budget of the Figure 1b offline search
	// (the paper spent ~180 evaluations per benchmark).
	SearchBudget int
	// TunerParams configures the DWP tuner; the zero value selects the
	// paper's n=20/c=5/t=0.2s/x=10%.
	TunerParams core.Params

	ct *core.CanonicalTuner
}

// MachineA returns the experiment profile of the paper's Machine A.
//
// DemandFactor calibration: Table I demands were measured on Machine B's
// cores; Machine A packs 8 (vs 7) hungrier-relative-to-controller cores per
// node — Section II shows its workloads saturating node controllers hard.
// The factor 1.3 reproduces that demand/capacity regime.
func MachineA() *Profile {
	return &Profile{
		Name:         "machine-A",
		M:            topology.MachineA(),
		SimCfg:       sim.Config{DemandFactor: 1.3, Seed: 1},
		Seeds:        5,
		WorkScale:    0.25,
		SearchBudget: 180,
		TunerParams:  scaledTunerParams(0.25),
	}
}

// scaledTunerParams compresses the DWP tuner's sampling pipeline by the
// same factor the profile compresses work volumes, so the search converges
// at the same *fraction* of the run as it does in the paper (whose
// n=20/c=5/t=0.2s parameters assume minutes-long native runs; those remain
// the library defaults in core.DefaultParams).
func scaledTunerParams(workScale float64) core.Params {
	p := core.DefaultParams()
	if workScale >= 1 {
		return p
	}
	// Halve the per-sample window (bounded below by the tick length) and
	// shrink the sample count to keep the trimmed mean meaningful.
	p.N, p.C, p.T = 10, 2, 0.1
	if workScale <= 0.12 {
		p.N, p.C, p.T = 5, 1, 0.1
	}
	return p
}

// MachineB returns the experiment profile of the paper's Machine B (the
// Table I reference machine: DemandFactor 1).
func MachineB() *Profile {
	return &Profile{
		Name:         "machine-B",
		M:            topology.MachineB(),
		SimCfg:       sim.Config{DemandFactor: 1.0, Seed: 2},
		Seeds:        5,
		WorkScale:    0.25,
		SearchBudget: 180,
		TunerParams:  scaledTunerParams(0.25),
	}
}

// Quick returns a reduced-cost copy of the profile for tests and
// benchmarks: fewer seeds, shorter runs, smaller search budget. The
// steady-state behaviour (who wins) is unchanged; only averaging tightness
// suffers.
func (p *Profile) Quick() *Profile {
	q := *p
	q.ct = nil
	q.Seeds = 2
	q.WorkScale = 0.10
	q.SearchBudget = 48
	q.TunerParams = scaledTunerParams(q.WorkScale)
	return &q
}

// canonicalMu guards lazy construction of profile canonical tuners; the
// parallel harness may race on first use.
var canonicalMu sync.Mutex

// Canonical returns the profile's canonical tuner (shared so its profiling
// cache is reused across runs; safe for concurrent use).
func (p *Profile) Canonical() *core.CanonicalTuner {
	canonicalMu.Lock()
	defer canonicalMu.Unlock()
	if p.ct == nil {
		p.ct = core.NewCanonicalTuner(p.M, p.SimCfg)
	}
	return p.ct
}

// Workers returns the k-node worker set chosen by the AsymSched rule.
func (p *Profile) Workers(k int) ([]topology.NodeID, error) {
	return sched.BestWorkerSet(p.M, k)
}

// PolicyNames is the fixed policy order of Figures 2 and 3.
var PolicyNames = []string{
	"first-touch", "uniform-workers", "uniform-all", "autonuma", "bwap-uniform", "bwap",
}

// NewPolicy builds a fresh placer by name. coRunner, when non-empty, makes
// the BWAP variants use the co-scheduled two-stage tuner against that app.
// Fresh instances matter: AutoNUMA and BWAP carry per-run state.
func (p *Profile) NewPolicy(name, coRunner string) (sim.Placer, error) {
	switch name {
	case "first-touch":
		return policy.FirstTouch{}, nil
	case "uniform-workers":
		return policy.UniformWorkers{}, nil
	case "uniform-all":
		return policy.UniformAll{}, nil
	case "autonuma":
		return &policy.AutoNUMA{}, nil
	case "bwap-uniform":
		b := core.NewBWAPUniform()
		b.CoRunner = coRunner
		if p.TunerParams != (core.Params{}) {
			b.Params = p.TunerParams
		}
		return b, nil
	case "bwap":
		b := core.NewBWAP(p.Canonical())
		b.CoRunner = coRunner
		if p.TunerParams != (core.Params{}) {
			b.Params = p.TunerParams
		}
		return b, nil
	}
	return nil, fmt.Errorf("experiments: unknown policy %q", name)
}

// policyIsNoisy reports whether a policy's runs depend on the noise seed
// (only the BWAP variants sample noisy counters).
func policyIsNoisy(name string) bool { return name == "bwap" || name == "bwap-uniform" }

// RunResult is the outcome of a single benchmark deployment.
type RunResult struct {
	// Time is the completion time in simulated seconds (averaged over
	// seeds for noisy policies).
	Time float64
	// StallRate is the app's lifetime average stalled cycles/s.
	StallRate float64
	// CoRunnerStallRate is the high-priority app's average stall rate in
	// co-scheduled runs (0 otherwise).
	CoRunnerStallRate float64
	// BestDWP and AppliedDWP report the BWAP tuner outcome (NaN for
	// non-BWAP policies).
	BestDWP, AppliedDWP float64
	// MigratedGB is the total page-migration volume.
	MigratedGB float64
}

const coRunnerName = "swaptions"

// runOnce executes one deployment: spec with the given placer on workers;
// if coScheduled, Swaptions occupies the remaining nodes first (placed
// locally, as the paper's high-priority app does).
func (p *Profile) runOnce(spec workload.Spec, workers []topology.NodeID, placerName string, coScheduled bool, seed uint64) (RunResult, error) {
	cfg := p.SimCfg
	cfg.Seed = seed
	e := sim.New(p.M, cfg)

	coRunner := ""
	if coScheduled {
		coRunner = coRunnerName
		rest := sched.RemainingNodes(p.M, workers)
		if len(rest) == 0 {
			return RunResult{}, fmt.Errorf("experiments: no nodes left for the co-runner")
		}
		if _, err := e.AddApp(coRunnerName, workload.Swaptions, rest, policy.FirstTouch{}); err != nil {
			return RunResult{}, err
		}
	}
	placer, err := p.NewPolicy(placerName, coRunner)
	if err != nil {
		return RunResult{}, err
	}
	app, err := e.AddApp(spec.Name, spec.Scaled(p.WorkScale), workers, placer)
	if err != nil {
		return RunResult{}, err
	}
	res, err := e.Run()
	if err != nil {
		return RunResult{}, err
	}
	if res.TimedOut {
		return RunResult{}, fmt.Errorf("experiments: %s under %s timed out", spec.Name, placerName)
	}

	out := RunResult{
		Time:       res.Times[spec.Name],
		StallRate:  res.AvgStallRate[spec.Name],
		BestDWP:    math.NaN(),
		AppliedDWP: math.NaN(),
		MigratedGB: float64(app.AS.TotalMigratedBytes()) / 1e9,
	}
	if coScheduled {
		out.CoRunnerStallRate = res.AvgStallRate[coRunnerName]
	}
	if b, ok := placer.(*core.BWAP); ok {
		if tuner := b.TunerFor(spec.Name); tuner != nil {
			if err := tuner.Err(); err != nil {
				return RunResult{}, fmt.Errorf("experiments: tuner for %s: %w", spec.Name, err)
			}
			out.BestDWP = tuner.BestDWP()
			out.AppliedDWP = tuner.AppliedDWP()
		}
	}
	return out, nil
}

// Run executes a deployment, averaging noisy policies over the profile's
// seeds. Seed replicas are independent simulations and run on the shared
// worker pool; aggregation happens in seed order, so the result is
// identical to a serial run.
func (p *Profile) Run(spec workload.Spec, workers []topology.NodeID, placerName string, coScheduled bool) (RunResult, error) {
	seeds := 1
	if policyIsNoisy(placerName) && p.Seeds > 1 {
		seeds = p.Seeds
	}
	replicas := make([]RunResult, seeds)
	err := parallelFor(seeds, func(s int) error {
		r, err := p.runOnce(spec, workers, placerName, coScheduled, p.SimCfg.Seed+uint64(s)*7919)
		replicas[s] = r
		return err
	})
	if err != nil {
		return RunResult{}, err
	}
	var agg RunResult
	var times, stalls, bests, applieds, migs, coStalls []float64
	for _, r := range replicas {
		times = append(times, r.Time)
		stalls = append(stalls, r.StallRate)
		coStalls = append(coStalls, r.CoRunnerStallRate)
		migs = append(migs, r.MigratedGB)
		if !math.IsNaN(r.BestDWP) {
			bests = append(bests, r.BestDWP)
			applieds = append(applieds, r.AppliedDWP)
		}
	}
	agg.Time = stats.Mean(times)
	agg.StallRate = stats.Mean(stalls)
	agg.CoRunnerStallRate = stats.Mean(coStalls)
	agg.MigratedGB = stats.Mean(migs)
	agg.BestDWP, agg.AppliedDWP = math.NaN(), math.NaN()
	if len(bests) > 0 {
		agg.BestDWP = stats.Median(bests)
		agg.AppliedDWP = stats.Median(applieds)
	}
	return agg, nil
}

// OptimalWorkersStandalone maps each benchmark to the worker count the
// paper's Figure 3c/d deploys it with.
func OptimalWorkersStandalone(machine string) map[string]int {
	if machine == "machine-A" {
		return map[string]int{"SC": 4, "OC": 8, "ON": 8, "SP.B": 1, "FT.C": 8}
	}
	return map[string]int{"SC": 4, "OC": 4, "ON": 4, "SP.B": 1, "FT.C": 4}
}
