package experiments

import (
	"os"
	"testing"
)

// TestRunFastForward pins the scenario's correctness half — naive and
// fast-forwarded runs must produce byte-identical event logs — and its
// non-vacuity: the fast-forwarded run actually replays ticks (unless the
// CI knob forces the naive path everywhere).
func TestRunFastForward(t *testing.T) {
	table, err := RunFastForward(true)
	if err != nil {
		t.Fatal(err)
	}
	if !table.LogsIdentical {
		t.Fatal("fast-forward changed the event log")
	}
	if len(table.Results) != 2 {
		t.Fatalf("expected 2 modes, got %d", len(table.Results))
	}
	naive, ff := table.Results[0], table.Results[1]
	if naive.Stats.TickReplays != 0 {
		t.Fatalf("naive mode replayed %d ticks", naive.Stats.TickReplays)
	}
	if os.Getenv("BWAP_NO_FASTFORWARD") != "1" && ff.Stats.TickReplays == 0 {
		t.Fatal("fast-forward mode never replayed a tick")
	}
	if naive.Stats.Completed != ff.Stats.Completed ||
		naive.Stats.MeanTurnaround != ff.Stats.MeanTurnaround {
		t.Fatalf("stats diverge: %+v vs %+v", naive.Stats, ff.Stats)
	}
	if r := table.Render(); r == "" {
		t.Fatal("empty render")
	}
}
