package experiments

import (
	"strings"
	"testing"

	"bwap/internal/fleet"
)

// TestRunFleetComparison runs the quick fleet scenario and checks the
// shape results the scenario exists to show: every policy drains the same
// stream, and bandwidth-aware placement does not lose to first-touch on
// mean turnaround (first-touch centralizes shared pages on one controller,
// which is exactly the pathology BWAP spreads away).
func TestRunFleetComparison(t *testing.T) {
	table, err := RunFleet(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Results) != len(FleetPolicies) {
		t.Fatalf("%d results, want %d", len(table.Results), len(FleetPolicies))
	}
	byPolicy := map[string]*fleet.Stats{}
	for _, r := range table.Results {
		if r.Stats == nil {
			t.Fatalf("policy %s has no stats", r.Policy)
		}
		if r.Stats.Completed != table.Jobs {
			t.Fatalf("policy %s completed %d/%d jobs", r.Policy, r.Stats.Completed, table.Jobs)
		}
		byPolicy[r.Policy] = r.Stats
	}
	ft, bw := byPolicy[fleet.PolicyFirstTouch], byPolicy[fleet.PolicyBWAP]
	if bw.MeanTurnaround > ft.MeanTurnaround*1.02 {
		t.Fatalf("bwap turnaround %.2fs worse than first-touch %.2fs",
			bw.MeanTurnaround, ft.MeanTurnaround)
	}
	// The stream repeats workload classes, so the cache must be hitting.
	if bw.CacheHits == 0 || bw.CacheMisses == 0 {
		t.Fatalf("bwap cache accounting hits=%d misses=%d, want both positive",
			bw.CacheHits, bw.CacheMisses)
	}
	out := table.Render()
	for _, p := range FleetPolicies {
		if !strings.Contains(out, p) {
			t.Fatalf("rendered table misses policy %s:\n%s", p, out)
		}
	}
}
