package experiments

import (
	"fmt"
	"strings"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// The fleet-utilization scenario scales the paper's question up one layer:
// not "how should one mix of co-scheduled applications place its pages",
// but "how much throughput does bandwidth-aware placement buy a *fleet*
// serving a stream of arriving and departing jobs". Each admission policy
// runs the identical job stream (same seed, same arrival times) over the
// same machines; only page placement differs. BWAP admissions consult the
// single-flight tuning cache, so the stream also demonstrates the
// repeat-job economics: the cache probes once per (workload, context) and
// every later admission is a hit.

// FleetPolicies is the fixed comparison order.
var FleetPolicies = []string{fleet.PolicyFirstTouch, fleet.PolicyUniformAll, fleet.PolicyBWAP}

// FleetResult is one policy's outcome on the shared stream.
type FleetResult struct {
	Policy string
	Stats  *fleet.Stats
}

// FleetTable is the rendered scenario.
type FleetTable struct {
	Title    string
	Machines int
	Jobs     int
	Results  []FleetResult
}

// fleetStream is the shared workload mix: a latency-exposed shared-heavy
// stream (SC), a scalable private-heavy one (OC) and a write-heavy one
// (FT.C), arriving as independent Poisson processes.
func fleetStream(jobsPerClass int, workScale float64) []fleet.StreamSpec {
	return []fleet.StreamSpec{
		{
			Workload: workload.Streamcluster,
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 0.12, Count: jobsPerClass},
			Workers:  2, WorkScale: workScale,
		},
		{
			Workload: workload.OceanCP,
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 0.09, Start: 3, Count: jobsPerClass},
			Workers:  2, WorkScale: workScale,
		},
		{
			Workload: workload.FTC,
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 0.09, Start: 7, Count: jobsPerClass},
			Workers:  1, WorkScale: workScale,
		},
	}
}

// RunFleet executes the fleet-utilization comparison: the same Poisson job
// stream over a fleet of Machine B boxes under each admission/placement
// policy. quick shrinks the stream for tests and CI.
func RunFleet(quick bool) (*FleetTable, error) {
	machines := 4
	jobsPerClass := 6
	workScale := 0.05
	if quick {
		machines = 2
		jobsPerClass = 2
		workScale = 0.03
	}
	streams := fleetStream(jobsPerClass, workScale)

	table := &FleetTable{
		Title:    "Fleet utilization: admission + placement policies on a shared job stream",
		Machines: machines,
		Jobs:     jobsPerClass * len(streams),
		Results:  make([]FleetResult, len(FleetPolicies)),
	}
	err := parallelFor(len(FleetPolicies), func(i int) error {
		f, err := fleet.New(fleet.Config{
			Machines:   machines,
			NewMachine: func(int) *topology.Machine { return topology.MachineB() },
			SimCfg:     sim.Config{Seed: 1},
			Policy:     FleetPolicies[i],
			Seed:       1,
		})
		if err != nil {
			return err
		}
		if err := f.SubmitStream(streams); err != nil {
			return err
		}
		stats, err := f.Run()
		if err != nil {
			return fmt.Errorf("fleet policy %s: %w", FleetPolicies[i], err)
		}
		table.Results[i] = FleetResult{Policy: FleetPolicies[i], Stats: stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// Render formats the comparison.
func (t *FleetTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%d machines (Machine B), %d jobs\n\n", t.Machines, t.Jobs)
	fmt.Fprintf(&b, "  %-16s %12s %12s %12s %10s %7s %7s\n",
		"policy", "turnaround", "runtime", "wait", "jobs/100s", "util", "cache")
	for _, r := range t.Results {
		s := r.Stats
		fmt.Fprintf(&b, "  %-16s %11.1fs %11.1fs %11.1fs %10.2f %6.1f%% %4d/%d\n",
			r.Policy, s.MeanTurnaround, s.MeanRuntime, s.MeanWait,
			100*s.ThroughputJobsPerSec, 100*s.Utilization, s.CacheHits, s.CacheMisses)
	}
	return b.String()
}
