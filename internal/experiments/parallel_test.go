package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"bwap/internal/workload"
)

// TestParallelForRunsEverythingOnce covers the pool mechanics: all indices
// run exactly once whatever the pool size, including nested fan-outs.
func TestParallelForRunsEverythingOnce(t *testing.T) {
	for _, pool := range []int{1, 2, 8} {
		SetMaxParallel(pool)
		var count atomic.Int64
		hits := make([]atomic.Int64, 20)
		err := parallelFor(len(hits), func(i int) error {
			return parallelFor(3, func(int) error { // nested level must not deadlock
				count.Add(1)
				if i%3 == 0 {
					return nil
				}
				hits[i].Add(1)
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := count.Load(); got != 60 {
			t.Fatalf("pool %d: ran %d tasks, want 60", pool, got)
		}
	}
	SetMaxParallel(0)
}

// TestParallelForReportsLowestError pins deterministic error selection.
func TestParallelForReportsLowestError(t *testing.T) {
	SetMaxParallel(4)
	defer SetMaxParallel(0)
	errOf := func(i int) error { return fmt.Errorf("task %d", i) }
	err := parallelFor(10, func(i int) error {
		if i == 3 || i == 7 {
			return errOf(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3" {
		t.Fatalf("err = %v, want task 3", err)
	}
	if err := parallelFor(4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := parallelFor(1, func(int) error { return errors.New("solo") }); err == nil {
		t.Fatal("serial error lost")
	}
}

// TestParallelRunMatchesSerial is the harness's equivalence contract: a
// parallel experiment cell grid produces results identical to a serial
// run — same Times, same DWPs — because aggregation is slot-indexed and
// every simulation is self-contained.
func TestParallelRunMatchesSerial(t *testing.T) {
	spec, err := workload.ByName("SC")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() ([]RunResult, *SpeedupFigure) {
		p := MachineA().Quick()
		p.Seeds = 2
		ws, err := p.Workers(2)
		if err != nil {
			t.Fatal(err)
		}
		var results []RunResult
		for _, pol := range []string{"uniform-workers", "bwap-uniform"} {
			r, err := p.Run(spec, ws, pol, true)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		fig, err := RunCoScheduled(p, 1, "eq")
		if err != nil {
			t.Fatal(err)
		}
		return results, fig
	}

	SetMaxParallel(1)
	serialRes, serialFig := runOnce()
	SetMaxParallel(8)
	parallelRes, parallelFig := runOnce()
	SetMaxParallel(0)

	// Compare formatted representations: DeepEqual would treat the NaN
	// DWP placeholders of non-BWAP policies as unequal.
	if s, p := fmt.Sprintf("%+v", serialRes), fmt.Sprintf("%+v", parallelRes); s != p {
		t.Fatalf("parallel Run diverged from serial:\n serial  %s\n parallel %s", s, p)
	}
	if s, p := fmt.Sprintf("%+v", serialFig), fmt.Sprintf("%+v", parallelFig); s != p {
		t.Fatalf("parallel figure diverged from serial:\n serial  %s\n parallel %s", s, p)
	}
}
