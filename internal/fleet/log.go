package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// LogSchemaVersion is stamped on the schema record every log opens with.
// Version 1 (implicit — no schema record) had only the five stream-level
// record types; version 2 added the machine-lifecycle types and the
// version/attempt/retry_at fields.
const LogSchemaVersion = 2

// Record is one line of the fleet's replayable JSONL event log. Field order
// is fixed by this struct, values are fully determined by the fleet
// configuration and job stream, and every float is produced by the same
// deterministic computation on every run — so the same seed and stream
// yield a bit-identical log (pinned by TestFleetDeterministicReplay).
//
// Record types:
//
//	schema      — always line 0: the log format version (Version)
//	arrive      — a job entered the system (Machine is -1; Workers/WorkScale
//	              make the log a replayable trace, see ReadTrace)
//	queue       — no machine had capacity; the job waits (Machine is -1)
//	admit       — the job was placed (Machine, Nodes; DWP/CacheHit for bwap)
//	complete    — the job finished (Elapsed = finish − admit)
//	retune      — co-located jobs were re-placed after churn (Jobs)
//	drain       — the machine left service gracefully; Jobs lists the
//	              evacuated ids (each then re-admits or queues)
//	crash       — the machine failed; Jobs lists the killed ids (each then
//	              retries or fails)
//	recover     — the machine returned to service
//	machine-add — the fleet grew by machine Machine
//	retry       — a crash-killed job will re-enter admission at RetryAt
//	              (Attempt = kills so far)
//	fail        — the job exhausted its retry budget; terminal
type Record struct {
	Seq  int     `json:"seq"`
	T    float64 `json:"t"`
	Type string  `json:"type"`
	// Version is the log schema version, stamped on the schema record only.
	Version  int    `json:"version,omitempty"`
	Job      int    `json:"job,omitempty"`
	Machine  int    `json:"machine"`
	Workload string `json:"workload,omitempty"`
	// Workers and WorkScale are stamped on arrive records so the job's
	// shape survives into the log; together with T they are exactly what
	// ReadTrace needs to resubmit the stream.
	Workers   int     `json:"workers,omitempty"`
	WorkScale float64 `json:"work_scale,omitempty"`
	Nodes     []int   `json:"nodes,omitempty"`
	Jobs      []int   `json:"jobs,omitempty"`
	// DWP is a pointer so an applied proximity factor of exactly 0 (the
	// canonical distribution) still appears in admit records.
	DWP      *float64 `json:"dwp,omitempty"`
	CacheHit *bool    `json:"cache_hit,omitempty"`
	Elapsed  float64  `json:"elapsed,omitempty"`
	// Attempt and RetryAt describe the crash-retry records: how many times
	// the job has been killed and when its backoff elapses.
	Attempt int     `json:"attempt,omitempty"`
	RetryAt float64 `json:"retry_at,omitempty"`
}

// eventLog accumulates the merged JSONL log, optionally mirroring each
// line to a streaming writer. With sharding, records belong to per-shard
// streams (admits, completes and retunes to the owning machine's shard,
// arrive/queue to the router); the merge is the interleave by the
// fleet-global sequence number, which is assigned here under the
// scheduler — handling is serialized even when tick advancement is
// parallel — so the merged order is total, causal, and independent of
// shard and worker counts. Shard ids are deliberately absent from the
// records themselves: a machine's shard changes with Config.Shards, and
// stamping it would break the shard-count invariance of the log.
type eventLog struct {
	// buf mirrors the encoded log in memory. With retain == 0 it holds the
	// whole log; with retain > 0 only the most recent retain lines, tracked
	// by the lens ring (line lengths, oldest at lens[head]); with
	// retain < 0 the mirror is disabled entirely. The streaming writer w,
	// when set, always receives every line regardless of retention.
	buf    bytes.Buffer
	lens   []int
	head   int
	retain int
	w      io.Writer
	seq    int
	// scratch is the reused encode buffer; after warmup append performs no
	// heap allocations (TestLogAppendAllocationFree).
	scratch []byte
	errs    []error
}

// append assigns the next sequence number, encodes the record and appends
// it. Encoding errors are collected rather than interrupting the
// simulation; Err surfaces them. Encoding is the hand-rolled appendRecord
// (byte-identical to json.Marshal — see encode.go) into a reused scratch
// buffer, keeping the per-record cost allocation-free.
func (l *eventLog) append(rec Record) {
	rec.Seq = l.seq
	l.seq++
	data, err := appendRecord(l.scratch[:0], &rec)
	l.scratch = data
	if err != nil {
		l.errs = append(l.errs, err)
		return
	}
	data = append(data, '\n')
	l.scratch = data
	if l.retain >= 0 {
		l.buf.Write(data)
		if l.retain > 0 {
			l.lens = append(l.lens, len(data))
			if len(l.lens)-l.head > l.retain {
				l.buf.Next(l.lens[l.head])
				l.head++
				// Compact the ring once the dead prefix exceeds the live
				// window, keeping the slice bounded at ~2×retain.
				if l.head > l.retain {
					l.lens = append(l.lens[:0], l.lens[l.head:]...)
					l.head = 0
				}
			}
		}
	}
	if l.w != nil {
		if _, err := l.w.Write(data); err != nil {
			l.errs = append(l.errs, err)
		}
	}
}

func (l *eventLog) Err() error {
	if len(l.errs) == 0 {
		return nil
	}
	return fmt.Errorf("fleet: %d log errors, first: %w", len(l.errs), l.errs[0])
}

// DecodeLog parses a JSONL event log back into records — the replay/verify
// side of the format.
func DecodeLog(data []byte) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("fleet: log line %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
