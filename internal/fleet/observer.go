package fleet

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strconv"
	"sync"

	"bwap/internal/obs"
	"bwap/internal/sim"
)

// ErrNoObserver is returned by the telemetry surfaces when the fleet was
// built without Config.Obs.
var ErrNoObserver = errors.New("fleet: no telemetry observer attached")

// ObserverConfig parameterizes an Observer.
type ObserverConfig struct {
	// Window is the timeline's base window width in simulated seconds
	// (default 1). /timeline?window= re-buckets in integer multiples of it.
	Window float64
	// TimelineSlots bounds the timeline ring per series (default
	// obs.DefaultTimelineSlots base windows).
	TimelineSlots int
	// SpanW, if set, receives per-job lifecycle spans as Chrome trace
	// events (open the file in chrome://tracing or Perfetto). Span output
	// is itself deterministic, but it allocates per span, so leave it nil
	// on hot benchmark paths.
	SpanW io.Writer
}

// Observer is the fleet's telemetry layer: a pure consumer of the merged
// event-record stream. Counters, histograms, timeline windows and spans
// update only from records (which are bit-reproducible per seed, shard
// count and worker count); instantaneous gauges are synced from fleet
// state at exposition time. The observer never touches the log, the RNG,
// or the tick/barrier path — attaching one cannot change the event log by
// a byte, and replaying a recorded trace reproduces the /metrics
// exposition byte for byte (both pinned by tests).
//
// All observer state sits behind its own mutex: the fleet feeds records
// from its single scheduling thread, while exposition (WriteMetrics,
// TimelineSnapshot) may run concurrently from HTTP handlers without
// holding the fleet's lock — a slow scraper serializes against other
// scrapes, not against the simulation. An Observer still must not be
// shared between fleets.
type Observer struct {
	mu    sync.Mutex
	reg   *obs.Registry
	tl    *obs.Timeline
	spans *obs.SpanWriter

	// Record-driven counters.
	arrivals, queueEvents, admits, completions, failures *obs.Counter
	retries, evacuations, crashes, drains                *obs.Counter
	recovers, machineAdds, retunes                       *obs.Counter
	cacheHits, cacheMisses, probeRuns                    *obs.Counter

	// Record-driven histograms (sim-time valued).
	turnaround, queueWait, runtime *obs.Histogram
	retryBackoff                   *obs.Histogram
	probeLat                       *obs.Histogram
	latMult                        *obs.Histogram

	// Timeline series.
	tlArrivals, tlCompletions, tlTurnaround, tlQueueWait *obs.TimeSeries

	// simTime is the fleet clock captured by the last syncGauges — the
	// timeline's notion of "now" when rendered off the fleet's lock.
	simTime float64

	// Instantaneous gauges, synced from fleet state at exposition time.
	gSimTime, gMachines, gMachinesUp *obs.Gauge
	gQueueDepth, gJobsTotal          *obs.Gauge
	gJobState                        [6]*obs.Gauge // indexed by JobState
	gTickSolves, gTickReplays        *obs.Gauge
	machUp, machRunning              []*obs.Gauge // indexed by machine id

	jobs []jobTrack // indexed by job ID-1
}

// jobTrack is the observer's per-job lifecycle cursor: when the current
// phase (queued, running, retry-wait) began and where the job runs.
type jobTrack struct {
	arrival    float64
	phaseStart float64
	machine    int
}

// NewObserver builds a telemetry observer; attach it via Config.Obs.
func NewObserver(cfg ObserverConfig) *Observer {
	r := obs.NewRegistry()
	o := &Observer{
		reg: r,
		tl:  obs.NewTimeline(cfg.Window, cfg.TimelineSlots),
	}
	if cfg.SpanW != nil {
		o.spans = obs.NewSpanWriter(cfg.SpanW)
	}

	o.arrivals = r.Counter("bwap_job_arrivals_total", "Job arrival events fired.")
	o.queueEvents = r.Counter("bwap_job_queue_events_total", "Times a job entered the wait queue (no capacity on its routed shard).")
	o.admits = r.Counter("bwap_job_admits_total", "Job placements (fresh arrivals, evacuations and retries alike).")
	o.completions = r.Counter("bwap_job_completions_total", "Jobs that ran to completion.")
	o.failures = r.Counter("bwap_job_failures_total", "Jobs that exhausted their crash-retry budget (terminal).")
	o.retries = r.Counter("bwap_job_retries_total", "Crash-retry grants (a job killed twice counts twice).")
	o.evacuations = r.Counter("bwap_job_evacuations_total", "Jobs gracefully evacuated off draining machines.")
	o.crashes = r.Counter("bwap_machine_crashes_total", "Machine crash events.")
	o.drains = r.Counter("bwap_machine_drains_total", "Machine drain events.")
	o.recovers = r.Counter("bwap_machine_recovers_total", "Machines returned to service.")
	o.machineAdds = r.Counter("bwap_machine_adds_total", "Machines added to the fleet.")
	o.retunes = r.Counter("bwap_retunes_total", "Coalesced co-runner retunes (bwap policy).")
	o.cacheHits = r.Counter("bwap_cache_hits_total", "Admission placements served from the tuning cache.")
	o.cacheMisses = r.Counter("bwap_cache_misses_total", "Admission placements that had to probe.")
	o.probeRuns = r.Counter("bwap_probe_runs_total", "Tuning-probe simulations run by the cache.")

	// Latency histograms use exponential (log) buckets: job latencies span
	// orders of magnitude, so fixed-ratio buckets keep relative quantile
	// error constant across the range. The latency multiplier is a narrow
	// ratio >= 1, so it gets linear buckets instead.
	o.turnaround = r.Histogram("bwap_job_turnaround_seconds",
		"Arrival-to-completion time in simulated seconds.", obs.ExpBuckets(0.5, 2, 18))
	o.queueWait = r.Histogram("bwap_job_queue_wait_seconds",
		"Phase-start-to-admission wait in simulated seconds (per placement).", obs.ExpBuckets(0.1, 2, 16))
	o.runtime = r.Histogram("bwap_job_runtime_seconds",
		"Admission-to-finish runtime in simulated seconds (per completed placement).", obs.ExpBuckets(0.5, 2, 18))
	o.retryBackoff = r.Histogram("bwap_job_retry_backoff_seconds",
		"Crash-retry backoff delays in simulated seconds.", obs.ExpBuckets(1, 2, 8))
	o.probeLat = r.Histogram("bwap_probe_latency_seconds",
		"Elapsed simulated time of tuning-probe runs.", obs.ExpBuckets(1, 2, 12))
	o.latMult = r.Histogram("bwap_engine_lat_multiplier",
		"Per-node latency-feedback multipliers sampled at each completion on the completing machine.",
		obs.LinearBuckets(1, 0.1, 20))

	o.tlArrivals = o.tl.Series("arrivals")
	o.tlCompletions = o.tl.Series("completions")
	o.tlTurnaround = o.tl.Series("turnaround")
	o.tlQueueWait = o.tl.Series("queue_wait")

	o.gSimTime = r.Gauge("bwap_sim_time_seconds", "Fleet simulated clock.")
	o.gMachines = r.Gauge("bwap_machines_total", "Fleet size.")
	o.gMachinesUp = r.Gauge("bwap_machines_up", "Machines currently in service.")
	o.gQueueDepth = r.Gauge("bwap_queue_depth", "Jobs waiting for capacity.")
	o.gJobsTotal = r.Gauge("bwap_jobs_total", "Jobs submitted (the per-state bwap_jobs gauges partition this).")
	for st := JobPending; st <= JobFailed; st++ {
		o.gJobState[st] = r.Gauge("bwap_jobs", "Jobs by lifecycle state.",
			obs.Label{Key: "state", Value: st.String()})
	}
	o.gTickSolves = r.Gauge("bwap_tick_solves", "Engine ticks that ran a full flow build + solve, summed over machines.")
	o.gTickReplays = r.Gauge("bwap_tick_replays", "Engine ticks replayed from a memoized solve, summed over machines.")
	return o
}

// Registry exposes the underlying metric registry (for rendering).
func (o *Observer) Registry() *obs.Registry { return o.reg }

// Turnaround returns the arrival-to-completion histogram.
func (o *Observer) Turnaround() *obs.Histogram { return o.turnaround }

// QueueWait returns the admission-wait histogram.
func (o *Observer) QueueWait() *obs.Histogram { return o.queueWait }

// ProbeLatency returns the tuning-probe sim-time histogram.
func (o *Observer) ProbeLatency() *obs.Histogram { return o.probeLat }

// CloseSpans terminates the span stream's JSON array (no-op without a
// span sink). Call it once, after the run.
func (o *Observer) CloseSpans() error {
	if o.spans == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.spans.Close()
}

// SpanErr reports the first span-sink write error, if any.
func (o *Observer) SpanErr() error {
	if o.spans == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.spans.Err()
}

// track returns the job's cursor, or nil for an id the observer never saw
// arrive (possible only if the observer was attached mid-run).
func (o *Observer) track(id int) *jobTrack {
	if id < 1 || id > len(o.jobs) {
		return nil
	}
	return &o.jobs[id-1]
}

// spanArgs is the args payload of job spans; a struct (not a map) keeps
// the JSON field order fixed.
type spanArgs struct {
	Workload string `json:"workload,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
}

// pid maps a machine id to a span process id (router-level records,
// machine -1, land on pid 0).
func pid(machine int) int { return machine + 1 }

// record consumes one event-log record — the observer's only input on the
// scheduler path. For already-tracked jobs with spans disabled this path
// is allocation-free (pinned by TestObserverRecordAllocationFree); the
// uncontended mutex costs nanoseconds and keeps exposition off the
// fleet's lock.
func (o *Observer) record(rec Record) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch rec.Type {
	case "arrive":
		for len(o.jobs) < rec.Job {
			o.jobs = append(o.jobs, jobTrack{})
		}
		if jt := o.track(rec.Job); jt != nil {
			*jt = jobTrack{arrival: rec.T, phaseStart: rec.T, machine: -1}
		}
		o.arrivals.Inc()
		o.tlArrivals.Observe(rec.T, 1)

	case "queue":
		o.queueEvents.Inc()

	case "admit":
		o.admits.Inc()
		if rec.CacheHit != nil {
			if *rec.CacheHit {
				o.cacheHits.Inc()
			} else {
				o.cacheMisses.Inc()
			}
		}
		if jt := o.track(rec.Job); jt != nil {
			wait := rec.T - jt.phaseStart
			o.queueWait.Observe(wait)
			o.tlQueueWait.Observe(rec.T, wait)
			if o.spans != nil && wait > 0 {
				o.spans.Complete("queued", "job", pid(-1), rec.Job, jt.phaseStart, wait,
					spanArgs{Workload: rec.Workload})
			}
			jt.phaseStart = rec.T
			jt.machine = rec.Machine
		}

	case "complete":
		o.completions.Inc()
		o.runtime.Observe(rec.Elapsed)
		o.tlCompletions.Observe(rec.T, 1)
		if jt := o.track(rec.Job); jt != nil {
			turn := rec.T - jt.arrival
			o.turnaround.Observe(turn)
			o.tlTurnaround.Observe(rec.T, turn)
			if o.spans != nil {
				o.spans.Complete("running", "job", pid(rec.Machine), rec.Job,
					jt.phaseStart, rec.T-jt.phaseStart, spanArgs{Workload: rec.Workload, Outcome: "complete"})
			}
		}

	case "drain", "crash":
		outcome := "evacuated"
		if rec.Type == "crash" {
			o.crashes.Inc()
			outcome = "killed"
		} else {
			o.drains.Inc()
			o.evacuations.Add(float64(len(rec.Jobs)))
		}
		for _, id := range rec.Jobs {
			if jt := o.track(id); jt != nil {
				if o.spans != nil {
					o.spans.Complete("running", "job", pid(rec.Machine), id,
						jt.phaseStart, rec.T-jt.phaseStart, spanArgs{Outcome: outcome})
				}
				jt.phaseStart = rec.T
				jt.machine = -1
			}
		}
		if o.spans != nil {
			o.spans.Instant(rec.Type, "machine", pid(rec.Machine), 0, rec.T, nil)
		}

	case "retry":
		o.retries.Inc()
		o.retryBackoff.Observe(rec.RetryAt - rec.T)
		if jt := o.track(rec.Job); jt != nil {
			if o.spans != nil {
				o.spans.Complete("retry-wait", "job", pid(-1), rec.Job,
					rec.T, rec.RetryAt-rec.T, spanArgs{Workload: rec.Workload})
			}
			jt.phaseStart = rec.RetryAt
		}

	case "fail":
		o.failures.Inc()
		if o.spans != nil {
			o.spans.Instant("fail", "job", pid(-1), rec.Job, rec.T, nil)
		}

	case "recover":
		o.recovers.Inc()
		if o.spans != nil {
			o.spans.Instant("recover", "machine", pid(rec.Machine), 0, rec.T, nil)
		}

	case "machine-add":
		o.machineAdds.Inc()
		if o.spans != nil {
			o.spans.Instant("machine-add", "machine", pid(rec.Machine), 0, rec.T, nil)
		}

	case "retune":
		o.retunes.Inc()
	}
}

// observeEngine samples the completing machine's latency-feedback
// multipliers — the engine fixed point exposed as a first-class signal.
// Called at completion events, a deterministic point of the record
// stream, so the histogram is shard- and worker-invariant.
func (o *Observer) observeEngine(eng *sim.Engine) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, v := range eng.LatMultipliers() {
		o.latMult.Observe(v)
	}
}

// observeProbe receives every tuning-probe run's elapsed simulated time
// (wired through TuningCache.SetProbeObserver).
func (o *Observer) observeProbe(simSeconds float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.probeRuns.Inc()
	o.probeLat.Observe(simSeconds)
}

// syncGauges refreshes the instantaneous gauges from fleet state. Called
// at exposition time only: gauges describe "now", and at deterministic
// observation points (a drained run's end, a quiescent daemon) the values
// are as reproducible as the record stream. Per-machine series are
// created here on first sight, so a machine-add shows up on the next
// exposition. The caller must hold the fleet's lock (or otherwise own the
// fleet); the observer's own lock is taken here.
func (o *Observer) syncGauges(f *Fleet) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.simTime = f.now
	o.gSimTime.Set(f.now)
	o.gMachines.Set(float64(len(f.machines)))
	o.gMachinesUp.Set(float64(f.machinesUp()))
	o.gQueueDepth.Set(float64(len(f.queue)))
	o.gJobsTotal.Set(float64(len(f.jobs)))
	var byState [6]int
	for _, j := range f.jobs {
		if j.State >= 0 && int(j.State) < len(byState) {
			byState[j.State]++
		}
	}
	for st, g := range o.gJobState {
		g.Set(float64(byState[st]))
	}
	var solves, replays int64
	for _, m := range f.machines {
		s, r := m.eng.FastForwardStats()
		solves += int64(s)
		replays += int64(r)
	}
	o.gTickSolves.Set(float64(solves))
	o.gTickReplays.Set(float64(replays))

	for len(o.machUp) < len(f.machines) {
		lbl := obs.Label{Key: "machine", Value: strconv.Itoa(len(o.machUp))}
		o.machUp = append(o.machUp,
			o.reg.Gauge("bwap_machine_up", "1 while the machine is in service, else 0.", lbl))
		o.machRunning = append(o.machRunning,
			o.reg.Gauge("bwap_machine_running_jobs", "Jobs currently placed on the machine.", lbl))
	}
	for i, m := range f.machines {
		up := 0.0
		if m.state == machineUp {
			up = 1
		}
		o.machUp[i].Set(up)
		o.machRunning[i].Set(float64(len(m.active)))
	}
}

// WriteMetrics renders the Prometheus text exposition from the observer's
// last-synced state — counters, histograms and gauges as of the most
// recent syncGauges. Safe to call concurrently with the fleet advancing;
// it takes only the observer's lock, and only for the in-memory render:
// w may be a live socket, and a slow client must not hold up recording.
func (o *Observer) WriteMetrics(w io.Writer) error {
	o.mu.Lock()
	var b bytes.Buffer
	err := o.reg.Write(&b)
	o.mu.Unlock()
	if err != nil {
		return err
	}
	_, werr := w.Write(b.Bytes())
	return werr
}

// WriteMetrics renders the Prometheus text exposition: record-driven
// counters/histograms plus gauges synced from the fleet's current state.
// Returns ErrNoObserver when the fleet has no telemetry attached. The
// caller must own the fleet (this is the single-threaded surface; the
// daemon splits the sync from the render so the exposition write happens
// off the fleet's lock).
func (f *Fleet) WriteMetrics(w io.Writer) error {
	if f.obs == nil {
		return ErrNoObserver
	}
	f.obs.syncGauges(f)
	return f.obs.WriteMetrics(w)
}

// Observer returns the attached telemetry observer (nil without one).
func (f *Fleet) Observer() *Observer { return f.obs }

// TimelineSnapshot is the /timeline JSON payload: windowed rolling stats
// per series. Series maps render with sorted keys, so the payload is as
// deterministic as the record stream feeding it.
type TimelineSnapshot struct {
	SimTime    float64                     `json:"sim_time"`
	BaseWindow float64                     `json:"base_window"`
	Window     float64                     `json:"window"`
	Series     map[string][]obs.WindowStat `json:"series"`
}

// TimelineSnapshot renders the timeline re-bucketed to the requested
// window (rounded to an integer multiple of the base window; <= base
// keeps the base), stamped with the fleet clock as of the last
// SyncSimTime/syncGauges. Safe to call concurrently with the fleet
// advancing; it takes only the observer's lock.
func (o *Observer) TimelineSnapshot(window float64) *TimelineSnapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	base := o.tl.Width()
	k := 1
	if window > base {
		k = int(math.Round(window / base))
	}
	return &TimelineSnapshot{
		SimTime:    o.simTime,
		BaseWindow: base,
		Window:     float64(k) * base,
		Series:     o.tl.Snapshot(k),
	}
}

// SyncSimTime refreshes the observer's copy of the fleet clock — the
// cheap slice of syncGauges the timeline needs. The caller must hold the
// fleet's lock (or otherwise own the fleet).
func (o *Observer) SyncSimTime(f *Fleet) {
	o.mu.Lock()
	o.simTime = f.now
	o.mu.Unlock()
}

// TimelineSnapshot renders the timeline re-bucketed to the requested
// window. Returns ErrNoObserver when the fleet has no telemetry. The
// caller must own the fleet.
func (f *Fleet) TimelineSnapshot(window float64) (*TimelineSnapshot, error) {
	if f.obs == nil {
		return nil, ErrNoObserver
	}
	f.obs.SyncSimTime(f)
	return f.obs.TimelineSnapshot(window), nil
}
