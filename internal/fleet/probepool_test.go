package fleet

import (
	"bytes"
	"fmt"
	"testing"
)

// TestProbePoolDeterminism is the parallel-probe acceptance criterion:
// for a cold cache, the probe pool width must be invisible to every
// demand-side observable. A chaos + telemetry fleet runs at probe-workers
// −1 (pool disabled: the pre-pool synchronous behaviour), 1 and 4,
// crossed with shards/workers 1, 2 and 4; the merged event log, the
// /metrics exposition and the probe-observer consumption sequence must
// all be byte-for-byte (resp. value-for-value) identical across the
// whole matrix. Only wall-clock time may change with the pool width.
func TestProbePoolDeterminism(t *testing.T) {
	type outcome struct {
		name    string
		log     []byte
		metrics []byte
		probes  []float64
	}
	var runs []outcome
	for _, pw := range []int{-1, 1, 4} {
		for _, c := range []struct{ shards, workers int }{{1, 1}, {2, 2}, {4, 4}} {
			cfg := v2(obsFaultConfig(c.shards, c.workers))
			cfg.ProbeWorkers = pw
			cfg.Obs = NewObserver(ObserverConfig{})
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Interpose on the probe observer: record the consumption
			// sequence this run reports, then feed the real observer so
			// /metrics stays fully populated.
			var probes []float64
			inner := f.Observer().observeProbe
			f.Cache().SetProbeObserver(func(secs float64) {
				probes = append(probes, secs)
				inner(secs)
			})
			if err := f.SubmitStream(shardStreams()); err != nil {
				t.Fatal(err)
			}
			stats, err := f.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Completed == 0 {
				t.Fatal("no jobs completed; the matrix is vacuous")
			}
			runs = append(runs, outcome{
				name:    fmt.Sprintf("probe-workers=%d shards=%d", pw, c.shards),
				log:     f.LogBytes(),
				metrics: metricsOf(t, f),
				probes:  probes,
			})
		}
	}
	base := runs[0]
	if len(base.probes) == 0 {
		t.Fatal("no probes observed on a cold cache; the sequence check is vacuous")
	}
	for _, r := range runs[1:] {
		if !bytes.Equal(base.log, r.log) {
			t.Errorf("%s: merged log differs from %s", r.name, base.name)
		}
		if !bytes.Equal(base.metrics, r.metrics) {
			t.Errorf("%s: /metrics differs from %s\n--- base ---\n%s\n--- got ---\n%s",
				r.name, base.name, base.metrics, r.metrics)
		}
		if len(base.probes) != len(r.probes) {
			t.Errorf("%s: %d probe observations, %s saw %d", r.name, len(r.probes), base.name, len(base.probes))
			continue
		}
		for i := range base.probes {
			if base.probes[i] != r.probes[i] {
				t.Errorf("%s: probe observation %d = %v, want %v", r.name, i, r.probes[i], base.probes[i])
				break
			}
		}
	}
}

// TestProbePoolQuiesce pins the at-rest contract: Run drains the probe
// pool before returning, so no prefetch goroutine outlives the fleet's
// work (allocation-counting tests and -race depend on this), and a
// mispredicted prefetch left unconsumed never perturbs the hit/miss
// accounting of a later identical run.
func TestProbePoolQuiesce(t *testing.T) {
	cfg := shardConfig(PolicyBWAP, AdmitMostFree, 2, 2, 7)
	cfg.ProbeWorkers = 4
	f, stats := runFleet(t, cfg, shardStreams())
	f.Cache().Quiesce() // must be a no-op: Run already drained the pool
	if stats.CacheMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}

	// A second fleet sharing the warm cache sees only hits, exactly as a
	// pool-less warm run would.
	cfg2 := shardConfig(PolicyBWAP, AdmitMostFree, 2, 2, 7)
	cfg2.ProbeWorkers = 4
	cfg2.Cache = f.Cache()
	_, warm := runFleet(t, cfg2, shardStreams())
	if warm.CacheMisses != 0 {
		t.Fatalf("warm run recorded %d misses; prefetching perturbed the cache", warm.CacheMisses)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm run recorded no hits")
	}
}
