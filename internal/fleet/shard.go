package fleet

// shard is one independently advanced slice of the fleet: a fixed machine
// set (global ids preserved, assigned round-robin by id so heterogeneous
// fleets stay balanced), its own event heap for machine-scoped events
// (completions, retunes), a mirror of the lockstep clock, and shard-local
// statistics.
//
// Concurrency contract — the "shard barrier" every counter hides behind:
// worker goroutines touch a shard only inside advanceParallel's per-tick
// window (between the wake send and the done reply), and the scheduler
// touches shards only outside those windows. Everything a worker mutates
// (engines, busyNodeSeconds, the completion scratch, now) is therefore
// exclusively owned at every instant, and Stats/ShardStats — which run
// under the server mutex, never concurrently with an Advance — read only
// quiescent state. The -race HTTP load test pins this.
type shard struct {
	id       int
	v2       bool       // conservative-lookahead engine: advance free-runs
	machines []*machine // ascending global id
	events   eventHeap  // completions + retunes for these machines
	now      float64
	nodes    int

	// Written by the owning worker during the tick window.
	busyNodeSeconds float64
	comps           []*Job // completions found this tick, machine-ascending

	// Written by the scheduler between windows.
	admitted, completed, retunes int
	records                      int
	cacheHits, cacheMisses       int64
}

// tick advances every engine of the shard by one step, charges busy-node
// time, and collects jobs that completed during the step. Runs either on
// the scheduler goroutine (serial mode) or on the shard's worker between
// barriers (parallel mode). The shard clock mirror (s.now) is maintained
// by advanceTo on the scheduler goroutine, not here, so the lockstep
// clock has exactly one accumulation sequence.
func (s *shard) tick(dt float64) {
	for _, m := range s.machines {
		m.eng.Step()
		s.busyNodeSeconds += float64(len(m.free)-m.freeCount) * dt
	}
	s.collectComps()
}

// advance moves the shard k ticks forward. Engine v1: one barrier-bound
// step for k == 1, the quiescent batch path otherwise. Engine v2: the
// free-running window body regardless of k.
func (s *shard) advance(k int, dt float64) {
	if s.v2 {
		s.freeRun(k, dt)
		return
	}
	if k == 1 {
		s.tick(dt)
		return
	}
	s.replay(k, dt)
}

// replay advances every machine k ticks through the engine's memoized
// replay loop — the barrier-free path advanceTo takes when every machine
// is quiescent with a horizon of at least k ticks. Machines with zero
// placed apps reduce to a bare clock loop inside ReplayTicks, so idle
// machines cost (almost) nothing. If an engine declines or stops early,
// the remainder is topped up with full Steps: each machine's state stays
// byte-identical to k naive Steps regardless. The scheduler would observe
// a completion inside the window only after the batch — which is why
// QuiescentTicks' horizon excludes completions with a drift margin that
// holds for quiescent spans up to ~1e10 ticks (batches are capped at 2^20
// ticks each), far beyond MaxSimTime's reach; the defensive scan below
// still surfaces such a completion rather than losing it. The busy-time
// charges repeat the per-tick additions the naive loop makes (k constant
// occupancies per machine), keeping utilization accounting bit-equal too.
func (s *shard) replay(k int, dt float64) {
	for _, m := range s.machines {
		for ran := m.eng.ReplayTicks(k); ran < k; ran++ {
			m.eng.Step()
		}
	}
	for i := 0; i < k; i++ {
		for _, m := range s.machines {
			s.busyNodeSeconds += float64(len(m.free)-m.freeCount) * dt
		}
	}
	s.collectComps()
}

// freeRun advances every machine k ticks with no synchronization at all —
// the conservative-lookahead engine's window body. Unlike replay it does
// not assume the window is quiescent: each machine greedily replays
// memoized stretches and falls back to full solving Steps at every
// boundary (phase or init crossing, staled solve), re-entering the replay
// path as soon as a new fixed point is cached. The window sizer
// (lookaheadWindow) guarantees no completion and no scheduled event falls
// inside the window, so nothing a worker does here can interact across
// shards; the completion scan at the end is the same defensive backstop
// replay keeps. Busy-time charges repeat the per-tick additions in the
// same (tick, machine) order as the per-tick loop — occupancy is constant
// between barriers — so utilization accounting is independent of how a
// span of ticks is cut into windows.
func (s *shard) freeRun(k int, dt float64) {
	for _, m := range s.machines {
		for ran := 0; ran < k; {
			if r := m.eng.ReplayTicks(k - ran); r > 0 {
				ran += r
				continue
			}
			m.eng.Step()
			ran++
		}
	}
	for i := 0; i < k; i++ {
		for _, m := range s.machines {
			s.busyNodeSeconds += float64(len(m.free)-m.freeCount) * dt
		}
	}
	s.collectComps()
}

// collectComps gathers jobs that completed during the step(s) just run,
// in (machine id, admission order).
func (s *shard) collectComps() {
	for _, m := range s.machines {
		for _, j := range m.active {
			if !j.seen && j.app.Done() {
				j.seen = true
				s.comps = append(s.comps, j)
			}
		}
	}
}

// running counts the shard's currently placed jobs.
func (s *shard) running() int {
	n := 0
	for _, m := range s.machines {
		n += len(m.active)
	}
	return n
}

// gatherComps drains every shard's per-tick completion scratch into one
// slice ordered by (machine id, admission order) — the exact order the
// pre-sharding scan produced, so completion events get the same sequence
// numbers regardless of how machines are partitioned.
func (f *Fleet) gatherComps() []*Job {
	total := 0
	for _, s := range f.shards {
		total += len(s.comps)
	}
	if total == 0 {
		return nil
	}
	out := f.compScratch[:0]
	for _, s := range f.shards {
		out = append(out, s.comps...)
		s.comps = s.comps[:0]
	}
	// Each shard's scratch is already machine-ascending; a stable
	// insertion sort across shards keeps the per-machine admission order
	// intact (equal machines never swap) without sort.SliceStable's
	// closure and swapper allocations — completion batches are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Machine < out[j-1].Machine; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	f.compScratch = out
	return out
}

// advanceSerial is the single-worker tick loop: every shard advanced on
// the scheduler goroutine, stopping at the first tick that completes a
// job. Quiescent windows are batched: when every machine is provably
// event-free for k ticks the shards replay k ticks back to back instead
// of looping one tick at a time.
func (f *Fleet) advanceSerial(t float64) []*Job {
	for f.now+f.eps() < t {
		k := f.batchTicks(t)
		for _, s := range f.shards {
			s.advance(k, f.dt)
		}
		f.bumpClock(k)
		if comps := f.gatherComps(); len(comps) > 0 {
			return comps
		}
	}
	return nil
}

// bumpClock advances the lockstep clock by k ticks, with the same one-dt-
// at-a-time additions the per-tick loop performs so the clock value (and
// every timestamp derived from it) is independent of the batch size.
func (f *Fleet) bumpClock(k int) {
	for i := 0; i < k; i++ {
		f.now += f.dt
	}
}

// tickPool is the bounded worker pool advancing shards in parallel:
// worker w owns shards w, w+W, ... and sleeps on its wake channel between
// batches. The wake message carries the batch size — 1 for a normal
// barrier tick, k > 1 for a quiescent fast-forward window, so a batch
// pays one barrier instead of k. The pool is created lazily by the first
// parallel advance of a run() invocation and torn down when run()
// returns, so its lifetime spans many inter-event advances instead of
// one goroutine spawn per event gap.
type tickPool struct {
	wake []chan int
	done chan int
}

func (f *Fleet) ensurePool() *tickPool {
	if f.pool != nil {
		return f.pool
	}
	nw := f.workers
	p := &tickPool{wake: make([]chan int, nw), done: make(chan int, nw)}
	for w := 0; w < nw; w++ {
		p.wake[w] = make(chan int)
		go func(w int) {
			for k := range p.wake[w] {
				for si := w; si < len(f.shards); si += nw {
					f.shards[si].advance(k, f.dt)
				}
				p.done <- w
			}
		}(w)
	}
	f.pool = p
	return p
}

// stopPool releases the pool's workers; the wake-channel close makes each
// goroutine's range loop exit.
func (f *Fleet) stopPool() {
	if f.pool == nil {
		return
	}
	for _, c := range f.pool.wake {
		close(c)
	}
	f.pool = nil
}

// advanceParallel runs the same loop as advanceSerial with the shards
// spread over the worker pool. Each batch is a barrier: the scheduler
// wakes every worker, each advances its shards the batch's tick count,
// and the batch ends only when all have replied — so no shard ever runs
// ahead of a tick at which an event could emerge, and completion events
// are gathered from quiescent state. Normal operation batches one tick at
// a time; quiescent windows batch k ticks and re-enter the barrier once.
// Determinism does not depend on the worker count: shards share no state,
// the clock advances on the scheduler goroutine, and gatherComps orders
// completions by machine id.
func (f *Fleet) advanceParallel(t float64) []*Job {
	p := f.ensurePool()
	for f.now+f.eps() < t {
		k := f.batchTicks(t)
		for _, c := range p.wake {
			c <- k
		}
		for i := 0; i < len(p.wake); i++ {
			<-p.done
		}
		f.bumpClock(k)
		if comps := f.gatherComps(); len(comps) > 0 {
			return comps
		}
	}
	return nil
}
