package fleet

import "sort"

// shard is one independently advanced slice of the fleet: a fixed machine
// set (global ids preserved, assigned round-robin by id so heterogeneous
// fleets stay balanced), its own event heap for machine-scoped events
// (completions, retunes), a mirror of the lockstep clock, and shard-local
// statistics.
//
// Concurrency contract — the "shard barrier" every counter hides behind:
// worker goroutines touch a shard only inside advanceParallel's per-tick
// window (between the wake send and the done reply), and the scheduler
// touches shards only outside those windows. Everything a worker mutates
// (engines, busyNodeSeconds, the completion scratch, now) is therefore
// exclusively owned at every instant, and Stats/ShardStats — which run
// under the server mutex, never concurrently with an Advance — read only
// quiescent state. The -race HTTP load test pins this.
type shard struct {
	id       int
	machines []*machine // ascending global id
	events   eventHeap  // completions + retunes for these machines
	now      float64
	nodes    int

	// Written by the owning worker during the tick window.
	busyNodeSeconds float64
	comps           []*Job // completions found this tick, machine-ascending

	// Written by the scheduler between windows.
	admitted, completed, retunes int
	records                      int
	cacheHits, cacheMisses       int64
}

// tick advances every engine of the shard by one step, charges busy-node
// time, and collects jobs that completed during the step. Runs either on
// the scheduler goroutine (serial mode) or on the shard's worker between
// barriers (parallel mode). The shard clock mirror (s.now) is maintained
// by advanceTo on the scheduler goroutine, not here, so the lockstep
// clock has exactly one accumulation sequence.
func (s *shard) tick(dt float64) {
	for _, m := range s.machines {
		m.eng.Step()
		s.busyNodeSeconds += float64(len(m.free)-m.freeCount) * dt
	}
	for _, m := range s.machines {
		for _, j := range m.active {
			if !j.seen && j.app.Done() {
				j.seen = true
				s.comps = append(s.comps, j)
			}
		}
	}
}

// running counts the shard's currently placed jobs.
func (s *shard) running() int {
	n := 0
	for _, m := range s.machines {
		n += len(m.active)
	}
	return n
}

// gatherComps drains every shard's per-tick completion scratch into one
// slice ordered by (machine id, admission order) — the exact order the
// pre-sharding scan produced, so completion events get the same sequence
// numbers regardless of how machines are partitioned.
func (f *Fleet) gatherComps() []*Job {
	total := 0
	for _, s := range f.shards {
		total += len(s.comps)
	}
	if total == 0 {
		return nil
	}
	out := make([]*Job, 0, total)
	for _, s := range f.shards {
		out = append(out, s.comps...)
		s.comps = s.comps[:0]
	}
	// Each shard's scratch is already machine-ascending; a stable sort
	// across shards keeps the per-machine admission order intact.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// advanceSerial is the single-worker tick loop: every shard advanced on
// the scheduler goroutine, stopping at the first tick that completes a
// job.
func (f *Fleet) advanceSerial(t float64) []*Job {
	for f.now+f.eps() < t {
		for _, s := range f.shards {
			s.tick(f.dt)
		}
		f.now += f.dt
		if comps := f.gatherComps(); len(comps) > 0 {
			return comps
		}
	}
	return nil
}

// tickPool is the bounded worker pool advancing shards in parallel:
// worker w owns shards w, w+W, ... and sleeps on its wake channel between
// ticks. The pool is created lazily by the first parallel advance of a
// run() invocation and torn down when run() returns, so its lifetime
// spans many inter-event advances instead of one goroutine spawn per
// event gap.
type tickPool struct {
	wake []chan struct{}
	done chan int
}

func (f *Fleet) ensurePool() *tickPool {
	if f.pool != nil {
		return f.pool
	}
	nw := f.workers
	p := &tickPool{wake: make([]chan struct{}, nw), done: make(chan int, nw)}
	for w := 0; w < nw; w++ {
		p.wake[w] = make(chan struct{})
		go func(w int) {
			for range p.wake[w] {
				for si := w; si < len(f.shards); si += nw {
					f.shards[si].tick(f.dt)
				}
				p.done <- w
			}
		}(w)
	}
	f.pool = p
	return p
}

// stopPool releases the pool's workers; the wake-channel close makes each
// goroutine's range loop exit.
func (f *Fleet) stopPool() {
	if f.pool == nil {
		return
	}
	for _, c := range f.pool.wake {
		close(c)
	}
	f.pool = nil
}

// advanceParallel runs the same loop as advanceSerial with the shards
// spread over the worker pool. Each simulated tick is a barrier: the
// scheduler wakes every worker, each advances its shards one step, and
// the tick ends only when all have replied — so no shard ever runs
// ahead, and completion events are gathered from quiescent state.
// Determinism does not depend on the worker count: shards share no state,
// the clock advances on the scheduler goroutine, and gatherComps orders
// completions by machine id.
func (f *Fleet) advanceParallel(t float64) []*Job {
	p := f.ensurePool()
	for f.now+f.eps() < t {
		for _, c := range p.wake {
			c <- struct{}{}
		}
		for i := 0; i < len(p.wake); i++ {
			<-p.done
		}
		f.now += f.dt
		if comps := f.gatherComps(); len(comps) > 0 {
			return comps
		}
	}
	return nil
}
