package fleet

// The fleet scheduler is a deterministic discrete-event loop. Eight event
// kinds exist; their ordering at equal timestamps is part of the replay
// contract (DESIGN.md):
//
//	completion < crash < drain < recover < machine-add < arrival < retry < retune
//
// Completions sort first so a departing job frees its nodes — and counts
// as finished — before anything else at the same instant touches its
// machine; in particular a job whose interpolated finish time coincides
// with a crash completes rather than being killed. The machine-lifecycle
// kinds come next, failures before repairs: a crash at the same instant as
// a drain wins (the graceful path must not pretend to evacuate jobs a
// crash already killed), and recover/machine-add restore capacity before
// arrivals at the same instant ask for it. Crash-retry re-entries sort
// after fresh arrivals, and retunes sort last so they see the post-churn
// job set. Ties within a kind break on the event's push sequence number,
// which is itself deterministic because every push happens at a
// deterministic point of the loop.
type eventKind int

const (
	evComplete eventKind = iota
	evCrash
	evDrain
	evRecover
	evMachineAdd
	evArrive
	evRetry
	evRetune
)

func (k eventKind) String() string {
	switch k {
	case evComplete:
		return "complete"
	case evCrash:
		return "crash"
	case evDrain:
		return "drain"
	case evRecover:
		return "recover"
	case evMachineAdd:
		return "machine-add"
	case evArrive:
		return "arrive"
	case evRetry:
		return "retry"
	case evRetune:
		return "retune"
	}
	return "unknown"
}

// event is one scheduled occurrence.
type event struct {
	t    float64
	kind eventKind
	seq  int  // monotonic push counter; final tie-break
	job  *Job // arrivals, retries and completions
	mach int  // machine-scoped kinds (completion, retune, crash, drain, recover); -1 otherwise
}

// eventLess is the scheduling order: (t, kind, seq). Sequence numbers are
// assigned from one fleet-global counter, so comparing the tops of several
// shard heaps with eventLess yields the exact order a single merged heap
// would produce.
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// eventHeap is a min-heap ordered by eventLess, used via container/heap.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
