package fleet

import (
	"fmt"

	"bwap/internal/sched"
	"bwap/internal/topology"
)

// Admission policy names accepted by Config.Admission.
const (
	// AdmitMostFree hands the job the lowest-numbered free nodes — the
	// packing rule the scheduler used before the policy seam existed.
	AdmitMostFree = "most-free"
	// AdmitBestBandwidth picks the free node subset with the highest
	// aggregate inter-worker bandwidth (sched.BestWorkerSubset — the
	// AsymSched rule restricted to what is actually free).
	AdmitBestBandwidth = "best-bandwidth"
	// AdmitAntiAffinity spreads bandwidth-hungry jobs away from occupied
	// nodes: among the free subsets it maximizes internal bandwidth minus
	// the interconnect coupling to busy nodes. Modest jobs fall back to
	// most-free packing.
	AdmitAntiAffinity = "anti-affinity"
)

// AdmissionPolicy is the node-selection seam of the admission decision:
// given the machine the router/scheduler settled on and its free nodes, it
// picks the job's worker set. Machine selection itself (most free nodes,
// ties to the lowest machine id) stays in the scheduler so that the
// least-loaded router's shard choice composes with it partition-
// invariantly — that alignment is what keeps the replay log independent of
// the shard count (see DESIGN.md).
//
// PickNodes is called with free in ascending node order and
// len(free) >= job.Workers; it must return exactly job.Workers distinct
// members of free.
type AdmissionPolicy interface {
	Name() string
	PickNodes(topo *topology.Machine, free []topology.NodeID, job *Job) ([]topology.NodeID, error)
}

// NewAdmissionPolicy builds one of the named admission policies.
func NewAdmissionPolicy(name string) (AdmissionPolicy, error) {
	switch name {
	case AdmitMostFree:
		return mostFree{}, nil
	case AdmitBestBandwidth:
		return bestBandwidth{}, nil
	case AdmitAntiAffinity:
		return antiAffinity{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown admission policy %q", name)
}

// mostFree packs the lowest-numbered free nodes, preserving the original
// machine.allocate behaviour.
type mostFree struct{}

func (mostFree) Name() string { return AdmitMostFree }

func (mostFree) PickNodes(_ *topology.Machine, free []topology.NodeID, job *Job) ([]topology.NodeID, error) {
	return append([]topology.NodeID(nil), free[:job.Workers]...), nil
}

// bestBandwidth maximizes aggregate inter-worker bandwidth over the free
// subset.
type bestBandwidth struct{}

func (bestBandwidth) Name() string { return AdmitBestBandwidth }

func (bestBandwidth) PickNodes(topo *topology.Machine, free []topology.NodeID, job *Job) ([]topology.NodeID, error) {
	return sched.BestWorkerSubset(topo, free, job.Workers)
}

// hungryDemandGBs classifies a workload as bandwidth-hungry: at or above
// this aggregate demand the anti-affinity policy spreads it away from
// occupied nodes. The threshold sits between the paper's compute-bound
// co-runner (Swaptions, ~1 GB/s) and its memory-intensive benchmarks
// (Table I: 10-40 GB/s).
const hungryDemandGBs = 8

// antiAffinity spreads bandwidth-hungry jobs: it scores every free
// k-subset by internal inter-worker bandwidth minus the nominal bandwidth
// coupling to busy nodes, so a hungry job lands on the free nodes whose
// interconnect paths are least shared with already-running jobs. Jobs
// below the demand threshold pack most-free, keeping dense nodes free for
// the hungry ones.
type antiAffinity struct{}

func (antiAffinity) Name() string { return AdmitAntiAffinity }

func (antiAffinity) PickNodes(topo *topology.Machine, free []topology.NodeID, job *Job) ([]topology.NodeID, error) {
	if job.Spec.ReadGBs+job.Spec.WriteGBs < hungryDemandGBs {
		return mostFree{}.PickNodes(topo, free, job)
	}
	busy := busyNodes(topo, free)
	if len(busy) == 0 {
		// Empty machine: coupling is zero for every subset, so this is
		// exactly the best-bandwidth choice.
		return sched.BestWorkerSubset(topo, free, job.Workers)
	}
	return sched.BestScoredSubset(free, job.Workers, func(sub []topology.NodeID) float64 {
		score := sched.InterWorkerBW(topo, sub)
		for _, a := range sub {
			for _, b := range busy {
				score -= topo.NominalBW(a, b) + topo.NominalBW(b, a)
			}
		}
		return score
	})
}

// busyNodes returns the machine's nodes absent from the ascending free
// list, in ascending order.
func busyNodes(topo *topology.Machine, free []topology.NodeID) []topology.NodeID {
	var busy []topology.NodeID
	j := 0
	for i := 0; i < topo.NumNodes(); i++ {
		n := topology.NodeID(i)
		if j < len(free) && free[j] == n {
			j++
			continue
		}
		busy = append(busy, n)
	}
	return busy
}
