package fleet

import "fmt"

// Routing names accepted by Config.Routing.
const (
	// RouteLeastLoaded routes each admission attempt to the shard holding
	// the machine with the most free nodes that fits the job (ties to the
	// lowest machine id). Because the shard-level machine selection uses
	// the same rule, the composition picks the *globally* most-free
	// machine for any shard count — the partition invariance the replay
	// tests pin.
	RouteLeastLoaded = "least-loaded"
	// RouteHashAffinity routes a job to the shard addressed by the FNV-64a
	// hash of its workload signature. Identical workloads keep landing on
	// the same machines, which stabilizes their co-runner mixes and so the
	// tuning-cache contexts they resolve; the assignment is sticky, so a
	// full shard queues the job rather than spilling it elsewhere.
	RouteHashAffinity = "hash-affinity"
	// RouteRoundRobin routes job i to shard (i-1) mod shards — sticky per
	// job, so queued jobs retry the same shard on backfill.
	RouteRoundRobin = "round-robin"
)

// Routing is the fleet's job→shard tier: every admission attempt (fresh
// arrival or queue backfill) asks the router which shard should try to
// host the job. route returns -1 when no shard can take the job right now
// (the job queues). Sticky routers (hash, round-robin) must return the
// same shard for the same job on every attempt, or backfill order would
// depend on attempt history.
type Routing interface {
	Name() string
	route(f *Fleet, job *Job) int
}

// NewRouting builds one of the named routing policies.
func NewRouting(name string) (Routing, error) {
	switch name {
	case RouteLeastLoaded:
		return leastLoaded{}, nil
	case RouteHashAffinity:
		return hashAffinity{}, nil
	case RouteRoundRobin:
		return roundRobin{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown routing %q", name)
}

// leastLoaded routes to the shard of the fleet-wide bestFit machine —
// exactly the pre-sharding admission rule, split at the shard boundary.
// Because shard-level admission applies the same bestFit over the routed
// shard, the composition selects this very machine for any partition.
type leastLoaded struct{}

func (leastLoaded) Name() string { return RouteLeastLoaded }

func (leastLoaded) route(f *Fleet, job *Job) int {
	if m := bestFit(f.machines, job.Workers); m != nil {
		return m.shard
	}
	return -1
}

// hashAffinity maps the workload signature onto the shard space, using
// the hash Submit computed once per job (backfill retries this route on
// every completion, so it must stay cheap).
type hashAffinity struct{}

func (hashAffinity) Name() string { return RouteHashAffinity }

func (hashAffinity) route(f *Fleet, job *Job) int {
	return f.staticFit(job, int(job.sigHash%uint64(len(f.shards))))
}

// roundRobin cycles the arrival stream across shards by job id.
type roundRobin struct{}

func (roundRobin) Name() string { return RouteRoundRobin }

func (roundRobin) route(f *Fleet, job *Job) int {
	return f.staticFit(job, (job.ID-1)%len(f.shards))
}

// staticFit keeps a sticky route deterministic on heterogeneous fleets: if
// no machine of the preferred shard is large enough to *ever* host the
// job, it walks forward to the first shard where one is. (Submit already
// guarantees some machine fits.) Current occupancy is deliberately
// ignored — sticky routes queue rather than spill.
func (f *Fleet) staticFit(job *Job, si int) int {
	for off := 0; off < len(f.shards); off++ {
		s := f.shards[(si+off)%len(f.shards)]
		for _, m := range s.machines {
			if job.Workers <= m.topo.NumNodes() {
				return s.id
			}
		}
	}
	return -1
}
