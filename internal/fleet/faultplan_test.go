package fleet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestFaultPlanValidateRejects is the table of invalid plans: every
// rejection is typed (errors.Is ErrBadFaultPlan) and the message names
// the offending spec.
func TestFaultPlanValidateRejects(t *testing.T) {
	cases := []struct {
		name     string
		machines int
		spec     FaultSpec
		wantSub  string
	}{
		{"unknown kind", 4, FaultSpec{Kind: "meteor", At: 1}, "unknown fault kind"},
		{"negative at", 4, FaultSpec{Kind: FaultCrash, At: -1}, "negative time"},
		{"negative every", 4, FaultSpec{Kind: FaultCrash, At: 1, Every: -2}, "negative time"},
		{"negative stagger", 4, FaultSpec{Kind: FaultDrain, At: 1, Stagger: -0.5}, "negative time"},
		{"negative jitter", 4, FaultSpec{Kind: FaultCrash, At: 1, Jitter: -1}, "negative time"},
		{"negative recover_after", 4, FaultSpec{Kind: FaultDrain, At: 1, RecoverAfter: -3}, "negative time"},
		{"negative count", 4, FaultSpec{Kind: FaultCrash, At: 1, Every: 2, Count: -2}, "negative count"},
		{"count without period", 4, FaultSpec{Kind: FaultCrash, At: 1, Count: 3}, "needs a period"},
		{"recover overlaps next crash", 4,
			FaultSpec{Kind: FaultCrash, At: 1, Every: 5, Count: 3, RecoverAfter: 5}, "overlaps the next occurrence"},
		{"jitter pushes recover past period", 4,
			FaultSpec{Kind: FaultDrain, At: 1, Every: 5, Count: 2, RecoverAfter: 4, Jitter: 1.5}, "overlaps the next occurrence"},
		{"zero-machine fleet", 0, FaultSpec{Kind: FaultCrash, At: 1}, "no machines to target"},
		{"machine out of range", 4, FaultSpec{Kind: FaultDrain, Machines: []int{4}, At: 1}, "out of range"},
		{"negative machine id", 4, FaultSpec{Kind: FaultRecover, Machines: []int{-1}, At: 1}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &FaultPlan{Faults: []FaultSpec{tc.spec}}
			err := p.Validate(tc.machines)
			if err == nil {
				t.Fatalf("plan accepted: %+v", tc.spec)
			}
			if !errors.Is(err, ErrBadFaultPlan) {
				t.Fatalf("error not typed ErrBadFaultPlan: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The boundary cases the table's rejections bracket stay valid: a
	// recover window strictly inside the period, a forward reference to a
	// machine the plan itself adds, and a machine-add on an empty fleet.
	ok := &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultCrash, At: 1, Every: 5, Count: 3, RecoverAfter: 4, Jitter: 0.5},
		{Kind: FaultMachineAdd, At: 2},
		{Kind: FaultDrain, Machines: []int{4}, At: 3},
	}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	add := &FaultPlan{Faults: []FaultSpec{{Kind: FaultMachineAdd, At: 1}}}
	if err := add.Validate(0); err != nil {
		t.Fatalf("machine-add on an empty fleet rejected: %v", err)
	}
}

// TestLoadFaultPlanErrors pins the file surface: unparseable JSON and
// empty plans are typed plan errors; a missing file is a plain I/O error.
func TestLoadFaultPlanErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadFaultPlan(write("bad.json", "{not json")); !errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, err := LoadFaultPlan(write("empty.json", `{"faults":[]}`)); !errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("empty plan: %v", err)
	}
	if _, err := LoadFaultPlan(filepath.Join(dir, "absent.json")); err == nil || errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("missing file should be an I/O error, got %v", err)
	}
	good, err := LoadFaultPlan(write("good.json", `{"faults":[{"kind":"crash","at":1}]}`))
	if err != nil || len(good.Faults) != 1 {
		t.Fatalf("good plan: %v %+v", err, good)
	}
}

// FuzzFaultPlanValidate feeds arbitrary JSON through the load/validate/
// materialize pipeline and holds the pair of invariants the fleet
// constructor relies on: a plan Validate accepts always materializes
// without error into a time-sorted, non-negative schedule, and a plan
// Validate rejects is rejected with the typed sentinel.
func FuzzFaultPlanValidate(f *testing.F) {
	f.Add(`{"faults":[{"kind":"crash","at":1}]}`, 4)
	f.Add(`{"faults":[{"kind":"drain","machines":[0,2],"at":2,"every":13,"count":3,"recover_after":5}]}`, 4)
	f.Add(`{"faults":[{"kind":"machine-add","at":9},{"kind":"crash","machines":[8],"at":10}]}`, 8)
	f.Add(`{"faults":[{"kind":"crash","at":4,"every":11,"count":3,"stagger":3,"jitter":1,"recover_after":4}]}`, 3)
	f.Add(`{"faults":[{"kind":"crash","at":1,"every":2,"count":-1}]}`, 2)
	f.Add(`{"seed":7,"faults":[{"kind":"recover","at":0.5,"jitter":0.25}]}`, 1)
	f.Fuzz(func(t *testing.T, body string, machines int) {
		if machines < 0 || machines > 64 {
			return
		}
		var p FaultPlan
		if json.Unmarshal([]byte(body), &p) != nil {
			return
		}
		err := p.Validate(machines)
		if err != nil {
			if !errors.Is(err, ErrBadFaultPlan) {
				t.Fatalf("Validate rejection not typed: %v", err)
			}
			if _, merr := p.materialize(machines, 1); merr == nil {
				t.Fatal("materialize accepted a plan Validate rejected")
			}
			return
		}
		evs, merr := p.materialize(machines, 1)
		if merr != nil {
			t.Fatalf("materialize failed on a validated plan: %v", merr)
		}
		if !sort.SliceIsSorted(evs, func(a, b int) bool { return evs[a].t < evs[b].t }) {
			t.Fatal("materialized schedule not time-sorted")
		}
		for _, ev := range evs {
			if ev.t < 0 {
				t.Fatalf("materialized event at negative time %g", ev.t)
			}
		}
	})
}
