package fleet

import (
	"fmt"
	"math"
	"sort"

	"bwap/internal/sim"
)

// machineState is a fleet member's lifecycle position. State changes only
// inside event handlers (or the public Drain/Recover wrappers, which the
// server serializes with Advance), so every transition lands at a
// deterministic point of the log.
type machineState int

const (
	// machineUp accepts admissions and runs jobs.
	machineUp machineState = iota
	// machineDrained stopped admission gracefully; its jobs were evacuated
	// with their progress preserved.
	machineDrained
	// machineCrashed failed; its in-flight jobs were killed and requeued
	// (progress since the last graceful evacuation lost).
	machineCrashed
)

func (s machineState) String() string {
	switch s {
	case machineUp:
		return "up"
	case machineDrained:
		return "drained"
	case machineCrashed:
		return "crashed"
	}
	return "unknown"
}

// MachineView is one machine's externally visible state, serialized by the
// daemon's /machines endpoint.
type MachineView struct {
	ID        int    `json:"id"`
	Shard     int    `json:"shard"`
	State     string `json:"state"`
	Nodes     int    `json:"nodes"`
	FreeNodes int    `json:"free_nodes"`
	// Jobs lists the ids of jobs currently placed here, admission order.
	Jobs []int `json:"jobs,omitempty"`
}

// Machines snapshots every fleet member, by id.
func (f *Fleet) Machines() []MachineView {
	out := make([]MachineView, len(f.machines))
	for i, m := range f.machines {
		v := MachineView{
			ID: m.id, Shard: m.shard, State: m.state.String(),
			Nodes: len(m.free), FreeNodes: m.freeCount,
		}
		for _, j := range m.active {
			v.Jobs = append(v.Jobs, j.ID)
		}
		out[i] = v
	}
	return out
}

// machinesUp counts fleet members in the up state.
func (f *Fleet) machinesUp() int {
	n := 0
	for _, m := range f.machines {
		if m.state == machineUp {
			n++
		}
	}
	return n
}

// Drain gracefully takes machine id out of service: admission stops and
// every running job is evacuated — progress snapshotted, remainder
// resubmitted through the routing/admission tiers. The server's /drain
// endpoint calls this between Advance windows.
func (f *Fleet) Drain(id int) error {
	m, err := f.machineByID(id)
	if err != nil {
		return err
	}
	if m.state != machineUp {
		return fmt.Errorf("fleet: machine %d is already %s", id, m.state)
	}
	return f.drainMachine(m)
}

// Recover returns a drained or crashed machine to service and backfills
// the queue against the restored capacity.
func (f *Fleet) Recover(id int) error {
	m, err := f.machineByID(id)
	if err != nil {
		return err
	}
	if m.state == machineUp {
		return fmt.Errorf("fleet: machine %d is already up", id)
	}
	return f.recoverMachine(m)
}

// AddMachine grows the fleet by one machine (topology from
// Config.NewMachine at the new index) and returns its id.
func (f *Fleet) AddMachine() (int, error) {
	id := len(f.machines)
	return id, f.addMachine()
}

func (f *Fleet) machineByID(id int) (*machine, error) {
	if id < 0 || id >= len(f.machines) {
		return nil, fmt.Errorf("fleet: no machine %d (fleet of %d)", id, len(f.machines))
	}
	return f.machines[id], nil
}

// drainMachine is the drain event handler. Jobs whose completion is
// already an event in flight (seen) finish where they are — in the
// discrete model they completed before the drain took effect; everything
// else is evacuated: progress snapshotted into the job's remaining-work
// fraction, the app detached, and the remainder resubmitted through the
// normal routing/admission tiers (queueing if nothing fits). A drain of a
// machine that is not up is a no-op, so a FaultPlan drain racing a crash
// at the same instant — crashes sort first — never "gracefully" evacuates
// jobs the crash already killed.
func (f *Fleet) drainMachine(m *machine) error {
	if m.state != machineUp {
		return nil
	}
	m.state = machineDrained
	evac := f.detach(m, true)
	ids := make([]int, len(evac))
	for i, j := range evac {
		ids[i] = j.ID
	}
	f.logAppend(m.shard, Record{T: f.now, Type: "drain", Machine: m.id, Jobs: ids})
	f.evacuations += len(evac)
	for _, job := range evac {
		admitted, err := f.tryAdmit(job)
		if err != nil {
			return err
		}
		if !admitted {
			f.enqueue(job)
			f.logAppend(-1, Record{T: f.now, Type: "queue", Job: job.ID, Machine: -1, Workload: job.Spec.Name})
		}
	}
	return nil
}

// crashMachine is the crash event handler: in-flight jobs are killed and
// re-enter admission after a capped exponential backoff, until their retry
// budget runs out and they fail terminally. As with drain, jobs whose
// completion event is already in flight complete rather than die, and a
// crash of a machine that is not up is a no-op.
func (f *Fleet) crashMachine(m *machine) error {
	if m.state != machineUp {
		return nil
	}
	m.state = machineCrashed
	killed := f.detach(m, false)
	ids := make([]int, len(killed))
	for i, j := range killed {
		ids[i] = j.ID
	}
	f.logAppend(m.shard, Record{T: f.now, Type: "crash", Machine: m.id, Jobs: ids})
	for _, job := range killed {
		job.Attempts++
		if job.Attempts > f.cfg.MaxRetries {
			job.State = JobFailed
			f.failedJobs++
			f.logAppend(-1, Record{T: f.now, Type: "fail", Job: job.ID, Machine: -1,
				Workload: job.Spec.Name, Attempt: job.Attempts})
			continue
		}
		backoff := f.cfg.RetryBackoff * math.Pow(2, float64(job.Attempts-1))
		if backoff > f.cfg.RetryBackoffCap {
			backoff = f.cfg.RetryBackoffCap
		}
		at := f.now + backoff
		job.State = JobRetryWait
		f.retries++
		f.push(at, evRetry, job, -1)
		f.logAppend(-1, Record{T: f.now, Type: "retry", Job: job.ID, Machine: -1,
			Workload: job.Spec.Name, Attempt: job.Attempts, RetryAt: at})
	}
	return nil
}

// detach removes every not-yet-completing job from m, releasing nodes and
// deregistering apps. With snapshot set (drain) each job's progress is
// folded into its remaining-work fraction so the resubmitted remainder is
// only what is left; without it (crash) progress since the last snapshot
// is lost. Jobs with a completion event in flight stay put.
func (f *Fleet) detach(m *machine, snapshot bool) []*Job {
	var out []*Job
	kept := m.active[:0]
	for _, job := range m.active {
		if job.seen {
			kept = append(kept, job)
			continue
		}
		if snapshot {
			total := job.Spec.WorkGB * job.WorkScale * job.remFrac
			if done := job.app.Progress(); total > 0 && done > 0 {
				frac := 1 - done/total
				if frac < 1e-6 {
					frac = 1e-6 // a sliver keeps the respawned app valid
				}
				job.remFrac *= frac
			}
		}
		m.eng.RemoveApp(job.app) //nolint:errcheck // app registration is ours
		m.release(job.Nodes)
		job.app = nil
		job.Machine = -1
		job.Nodes = nil
		job.State = JobQueued
		f.running--
		out = append(out, job)
	}
	for i := len(kept); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = kept
	return out
}

// recoverMachine is the recover event handler: the machine returns to the
// up state and the queue is backfilled against its capacity. Allocation
// state needs no reset — drain/crash released every node when they
// detached the jobs. The engine keeps its clock (it ticked empty while
// down, preserving the fleet-wide lockstep), which models the machine's
// hardware surviving the outage. Recovering a machine that is already up
// is a no-op.
func (f *Fleet) recoverMachine(m *machine) error {
	if m.state == machineUp {
		return nil
	}
	m.state = machineUp
	f.logAppend(m.shard, Record{T: f.now, Type: "recover", Machine: m.id})
	return f.backfill()
}

// addMachine is the machine-add event handler: the fleet grows by one
// machine with the next id, its topology from Config.NewMachine, its
// engine seeded by the same id-derived formula as the boot-time members,
// and its clock caught up to the lockstep tick count so every engine keeps
// ticking in unison. The new machine joins shard id mod shards — the same
// round-robin rule New applies — so the machine→shard map stays a pure
// function of the id and the log stays shard-count invariant.
func (f *Fleet) addMachine() error {
	id := len(f.machines)
	topo := f.cfg.NewMachine(id)
	if topo == nil {
		return fmt.Errorf("fleet: NewMachine(%d) returned nil", id)
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("fleet: machine %d: %w", id, err)
	}
	simCfg := f.cfg.SimCfg
	simCfg.MaxTime = math.Inf(1)
	simCfg.Seed = f.cfg.Seed + uint64(id)*0x9e3779b97f4a7c15
	eng := sim.New(topo, simCfg)
	// Catch the fresh engine up to the fleet's lockstep tick count. Every
	// existing engine has ticked the same number of times, and the clock is
	// a per-tick += dt accumulation, so after this loop the new engine's
	// clock is bit-equal to its peers'.
	if len(f.machines) > 0 {
		k := f.machines[0].eng.Ticks()
		for ran := eng.ReplayTicks(k); ran < k; ran++ {
			eng.Step()
		}
	}
	m := &machine{
		id:        id,
		shard:     id % len(f.shards),
		topo:      topo,
		eng:       eng,
		free:      make([]bool, topo.NumNodes()),
		freeCount: topo.NumNodes(),
		state:     machineUp,
	}
	for j := range m.free {
		m.free[j] = true
	}
	f.machines = append(f.machines, m)
	sh := f.shards[m.shard]
	sh.machines = append(sh.machines, m)
	sh.nodes += topo.NumNodes()
	f.totalNodes += topo.NumNodes()
	f.logAppend(m.shard, Record{T: f.now, Type: "machine-add", Machine: id})
	return f.backfill()
}

// retryJob is the retry event handler: the job's backoff elapsed, so it
// re-enters admission exactly like a fresh arrival (retries sort after
// arrivals at the same instant, so a recovering fleet serves its incumbent
// stream first).
func (f *Fleet) retryJob(job *Job) error {
	job.State = JobQueued
	admitted, err := f.tryAdmit(job)
	if err != nil {
		return err
	}
	if !admitted {
		f.enqueue(job)
		f.logAppend(-1, Record{T: f.now, Type: "queue", Job: job.ID, Machine: -1, Workload: job.Spec.Name})
	}
	return nil
}

// enqueue inserts a job into the wait queue in (arrival, id) order. Fresh
// arrivals append (the stream is arrival-ordered), but evacuated and
// retried jobs re-enter with old arrival times and must not jump behind
// younger queue residents' backfill priority.
func (f *Fleet) enqueue(job *Job) {
	i := sort.Search(len(f.queue), func(i int) bool {
		q := f.queue[i]
		if q.Arrival != job.Arrival {
			return q.Arrival > job.Arrival
		}
		return q.ID > job.ID
	})
	f.queue = append(f.queue, nil)
	copy(f.queue[i+1:], f.queue[i:])
	f.queue[i] = job
}

// backfill admits every queued job that now fits, preserving arrival order
// among those that stay. The queue is always committed — even when an
// admission errors — so jobs admitted earlier in the sweep are never
// retried (a retry would collide with their registered app).
func (f *Fleet) backfill() error {
	// Hint the whole queue before the admission sweep: predictions use the
	// pre-sweep state (exact for the first admission, approximate after it
	// consumes capacity), so a cold queued burst fans its probes across
	// the pool while the sweep consumes them in order.
	for _, qj := range f.queue {
		f.prefetch(qj)
	}
	kept := f.queue[:0]
	var admitErr error
	for _, qj := range f.queue {
		if admitErr != nil {
			kept = append(kept, qj)
			continue
		}
		admitted, err := f.tryAdmit(qj)
		if err != nil {
			admitErr = err
			kept = append(kept, qj) // failed admission leaves the job queued
			continue
		}
		if !admitted {
			kept = append(kept, qj)
		}
	}
	for i := len(kept); i < len(f.queue); i++ {
		f.queue[i] = nil
	}
	f.queue = kept
	return admitErr
}

// Conservation checks the job-conservation invariant — no lifecycle churn
// may lose or duplicate a job: every submission is in exactly one of
// pending / queued / retry-wait / running / done / failed, and the
// scheduler's redundant counters agree with the per-job truth. The chaos
// property tests call this at every barrier.
func (f *Fleet) Conservation() error {
	var pending, queued, wait, running, done, failed int
	for _, j := range f.jobs {
		switch j.State {
		case JobPending:
			pending++
		case JobQueued:
			queued++
		case JobRetryWait:
			wait++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		default:
			return fmt.Errorf("fleet: job %d in unknown state %d", j.ID, j.State)
		}
	}
	if total := pending + queued + wait + running + done + failed; total != len(f.jobs) {
		return fmt.Errorf("fleet: %d jobs submitted but %d accounted for", len(f.jobs), total)
	}
	if running != f.running {
		return fmt.Errorf("fleet: %d jobs in running state but running counter is %d", running, f.running)
	}
	placed := 0
	for _, m := range f.machines {
		placed += len(m.active)
	}
	if placed != f.running {
		return fmt.Errorf("fleet: %d jobs placed on machines but running counter is %d", placed, f.running)
	}
	if queued != len(f.queue) {
		return fmt.Errorf("fleet: %d jobs in queued state but queue holds %d", queued, len(f.queue))
	}
	if failed != f.failedJobs {
		return fmt.Errorf("fleet: %d jobs in failed state but failed counter is %d", failed, f.failedJobs)
	}
	return nil
}
