package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bwap/internal/obs"
	"bwap/internal/sim"
	"bwap/internal/workload"
)

// obsFaultConfig is the chaos-flavored telemetry fixture: the sharded
// 8-machine config plus a crash (retry path) and a drain (evacuation
// path), so an observed run exercises every record type.
func obsFaultConfig(shards, workers int) Config {
	cfg := shardConfig(PolicyBWAP, AdmitMostFree, shards, workers, 23)
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultCrash, Machines: []int{0}, At: 1.5, RecoverAfter: 3},
		{Kind: FaultDrain, Machines: []int{2}, At: 2, RecoverAfter: 4},
	}}
	return cfg
}

// obsResolve maps shardStreams workload names back to specs for ReadTrace.
func obsResolve(name string) (workload.Spec, error) {
	switch name {
	case "alpha", "beta":
		return testSpec(name), nil
	case "modest":
		m := testSpec("modest")
		m.ReadGBs, m.WriteGBs = 3, 0.5
		return m, nil
	}
	return workload.Spec{}, fmt.Errorf("unknown workload %q", name)
}

func metricsOf(t *testing.T, f *Fleet) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := f.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func timelineJSON(t *testing.T, f *Fleet, window float64) []byte {
	t.Helper()
	snap, err := f.TimelineSnapshot(window)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTelemetryDoesNotPerturbLog pins the observer's core invariant:
// attaching telemetry (spans included) leaves the merged JSONL event log
// byte-identical. The observer consumes records and never produces them.
func TestTelemetryDoesNotPerturbLog(t *testing.T) {
	bare, _ := runFleet(t, obsFaultConfig(2, 2), shardStreams())

	cfg := obsFaultConfig(2, 2)
	var spanBuf bytes.Buffer
	cfg.Obs = NewObserver(ObserverConfig{SpanW: &spanBuf})
	observed, _ := runFleet(t, cfg, shardStreams())

	if !bytes.Equal(bare.LogBytes(), observed.LogBytes()) {
		t.Fatalf("telemetry perturbed the event log\n--- bare ---\n%s\n--- observed ---\n%s",
			bare.LogBytes(), observed.LogBytes())
	}
	// The observer must actually have seen the run it did not perturb.
	o := observed.Observer()
	if o.Turnaround().Count() == 0 || o.QueueWait().Count() == 0 {
		t.Fatalf("observer saw no completions/waits: %d/%d",
			o.Turnaround().Count(), o.QueueWait().Count())
	}
	if err := o.CloseSpans(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(spanBuf.Bytes(), &events); err != nil {
		t.Fatalf("span log invalid: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no spans emitted")
	}
}

// TestMetricsReplayByteIdentical pins the exposition determinism claim:
// replaying a recorded trace through identically configured fleets at 1,
// 2 and 4 shards reproduces the /metrics text, the timeline JSON and the
// span log byte for byte.
func TestMetricsReplayByteIdentical(t *testing.T) {
	cfg := obsFaultConfig(1, 1)
	var baseSpans bytes.Buffer
	cfg.Obs = NewObserver(ObserverConfig{SpanW: &baseSpans})
	recorded, _ := runFleet(t, cfg, shardStreams())
	if err := recorded.Observer().CloseSpans(); err != nil {
		t.Fatal(err)
	}
	baseMetrics := metricsOf(t, recorded)
	baseTimeline := timelineJSON(t, recorded, 2)
	if err := obs.Lint(baseMetrics); err != nil {
		t.Fatalf("live exposition failed lint: %v", err)
	}

	streams, err := ReadTrace(recorded.LogBytes(), obsResolve)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ shards, workers int }{{1, 1}, {2, 2}, {4, 4}} {
		rcfg := obsFaultConfig(c.shards, c.workers)
		var spans bytes.Buffer
		rcfg.Obs = NewObserver(ObserverConfig{SpanW: &spans})
		rf, _ := runFleet(t, rcfg, streams)
		if err := rf.Observer().CloseSpans(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recorded.LogBytes(), rf.LogBytes()) {
			t.Fatalf("shards=%d: replay diverged from recording", c.shards)
		}
		if got := metricsOf(t, rf); !bytes.Equal(baseMetrics, got) {
			t.Fatalf("shards=%d changed /metrics\n--- base ---\n%s\n--- got ---\n%s",
				c.shards, baseMetrics, got)
		}
		if got := timelineJSON(t, rf, 2); !bytes.Equal(baseTimeline, got) {
			t.Fatalf("shards=%d changed the timeline\n--- base ---\n%s\n--- got ---\n%s",
				c.shards, baseTimeline, got)
		}
		if !bytes.Equal(baseSpans.Bytes(), spans.Bytes()) {
			t.Fatalf("shards=%d changed the span log", c.shards)
		}
	}
}

// TestObserverRecordAllocationFree pins the hot-path contract: consuming
// records for already-tracked jobs (spans disabled) must not allocate —
// the observer rides the event path without adding GC pressure.
func TestObserverRecordAllocationFree(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	o.record(Record{T: 0, Type: "arrive", Job: 1})
	hit := true
	admit := Record{Type: "admit", Job: 1, Machine: 0, Workload: "w", CacheHit: &hit}
	complete := Record{Type: "complete", Job: 1, Machine: 0, Workload: "w", Elapsed: 1}
	now := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		admit.T, complete.T = now+1, now+2
		o.record(admit)
		o.record(complete)
		o.record(Record{T: now + 2, Type: "retune", Machine: 0})
		now += 0.5
	})
	if allocs != 0 {
		t.Fatalf("observer record path allocates %.1f per run, want 0", allocs)
	}
}

// TestServerMethodChecks verifies every endpoint rejects the wrong method
// with 405 and an Allow header naming the right one.
func TestServerMethodChecks(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ path, allow string }{
		{"/submit", "POST"},
		{"/status", "GET"},
		{"/jobs", "GET"},
		{"/fleet", "GET"},
		{"/shards", "GET"},
		{"/machines", "GET"},
		{"/drain", "POST"},
		{"/recover", "POST"},
		{"/log", "GET"},
		{"/metrics", "GET"},
		{"/timeline", "GET"},
		{"/healthz", "GET"},
	}
	client := ts.Client()
	for _, c := range cases {
		wrong := http.MethodPost
		if c.allow == http.MethodPost {
			wrong = http.MethodGet
		}
		req, err := http.NewRequest(wrong, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", wrong, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", wrong, c.path, got, c.allow)
		}
	}
	// DELETE on a GET endpoint is 405 too — the guard is not POST-specific.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/fleet", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /fleet = %d, want 405", resp.StatusCode)
	}
}

// scrapeJobGauges pulls bwap_jobs_total and the per-state bwap_jobs gauges
// out of one exposition.
func scrapeJobGauges(t *testing.T, body []byte) (total float64, byState map[string]float64) {
	t.Helper()
	byState = map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "bwap_jobs_total "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, "bwap_jobs_total "), 64)
			if err != nil {
				t.Fatalf("bad bwap_jobs_total line %q: %v", line, err)
			}
			total = v
		case strings.HasPrefix(line, `bwap_jobs{state="`):
			rest := strings.TrimPrefix(line, `bwap_jobs{state="`)
			i := strings.Index(rest, `"`)
			j := strings.LastIndex(rest, " ")
			if i < 0 || j < i {
				t.Fatalf("bad bwap_jobs line %q", line)
			}
			v, err := strconv.ParseFloat(rest[j+1:], 64)
			if err != nil {
				t.Fatalf("bad bwap_jobs line %q: %v", line, err)
			}
			byState[rest[:i]] = v
		}
	}
	return total, byState
}

// TestServerConservationDuringChaos drives a faulty fleet through the
// daemon and checks job conservation from the outside: at every /metrics
// observation the per-state gauges must partition bwap_jobs_total — no
// job is lost or double-counted mid-crash. Each scrape is also linted
// against the exposition format.
func TestServerConservationDuringChaos(t *testing.T) {
	cfg := Config{
		Machines:   4,
		Shards:     2,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 29},
		Policy:     PolicyFirstTouch,
		Seed:       29,
		Faults: &FaultPlan{Faults: []FaultSpec{
			{Kind: FaultCrash, Machines: []int{0}, At: 2, RecoverAfter: 3},
			{Kind: FaultDrain, Machines: []int{1}, At: 3, RecoverAfter: 3},
		}},
	}
	cfg.Obs = NewObserver(ObserverConfig{})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 500
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() { ts.Close(); s.Stop() })

	body := `{"spec":{"Name":"chaosjob","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":2,"work_scale":0.3,"count":10}`
	submitted := postSubmit(t, ts.URL, body)
	want := float64(len(submitted.IDs))

	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	observations := 0
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: %d %v", resp.StatusCode, err)
		}
		if err := obs.Lint(data); err != nil {
			t.Fatalf("live exposition failed lint: %v\n%s", err, data)
		}
		total, byState := scrapeJobGauges(t, data)
		var sum float64
		for _, v := range byState {
			sum += v
		}
		if sum != total {
			t.Fatalf("job conservation violated: states sum to %g, total %g (%v)", sum, total, byState)
		}
		if total != want {
			t.Fatalf("jobs_total = %g, want %g", total, want)
		}
		observations++
		if byState["done"]+byState["failed"] == total {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatalf("fleet did not drain: %v", byState)
		}
		time.Sleep(5 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	if observations < 2 {
		t.Logf("only %d observations before drain (fast run)", observations)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := f.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestServerMetricsAndTimelineEndpoints smoke-tests the telemetry surface
// over HTTP, including the no-observer 404 and bad-window 400 paths.
func TestServerMetricsAndTimelineEndpoints(t *testing.T) {
	// newTestServer has no observer: telemetry endpoints must 404.
	_, bare := newTestServer(t)
	for _, path := range []string{"/metrics", "/timeline"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without observer = %d, want 404", path, resp.StatusCode)
		}
	}

	cfg := Config{
		Machines:   2,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 31},
		Policy:     PolicyFirstTouch,
		Seed:       31,
		Obs:        NewObserver(ObserverConfig{}),
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 1000
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() { ts.Close(); s.Stop() })

	postSubmit(t, ts.URL, `{"spec":{"Name":"tljob","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":2,"work_scale":0.2,"count":3}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	if err := obs.Lint(data); err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	if !strings.Contains(string(data), "bwap_job_arrivals_total 3") {
		t.Fatalf("exposition missing arrivals:\n%s", data)
	}

	var snap TimelineSnapshot
	getJSON(t, ts.URL+"/timeline?window=2", &snap)
	if snap.Window != 2 || snap.BaseWindow != 1 {
		t.Fatalf("timeline window = %g/%g, want 2/1", snap.Window, snap.BaseWindow)
	}
	if len(snap.Series["arrivals"]) == 0 {
		t.Fatalf("timeline has no arrivals series: %+v", snap.Series)
	}

	badResp, err := http.Get(ts.URL + "/timeline?window=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, badResp.Body) //nolint:errcheck
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window = %d, want 400", badResp.StatusCode)
	}
}
