package fleet

import (
	"bytes"
	"strings"
	"testing"

	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// testSpec is a modest streaming job: finishes in a few simulated seconds
// at WorkScale 0.1 on the small test machines.
func testSpec(name string) workload.Spec {
	return workload.Spec{
		Name: name, ReadGBs: 10, WriteGBs: 1, PrivateFrac: 0.3,
		LatencySensitivity: 0.2, SyncFactor: 0.1,
		WorkGB: 400, SharedGB: 0.25, PrivateGBPerNode: 0.1,
	}
}

func smallMachine(int) *topology.Machine { return topology.Symmetric(4, 4, 40, 10) }

func testConfig(policy string, seed uint64) Config {
	return Config{
		Machines:   2,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: seed},
		Policy:     policy,
		Seed:       seed,
	}
}

func testStreams() []StreamSpec {
	return []StreamSpec{
		{
			Workload: testSpec("alpha"),
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 0.05, Count: 4},
			Workers:  2, WorkScale: 0.1,
		},
		{
			Workload: testSpec("beta"),
			Arrival:  workload.ArrivalSpec{Process: workload.Periodic, Rate: 0.04, Start: 5, Count: 3},
			Workers:  1, WorkScale: 0.1,
		},
	}
}

func runFleet(t *testing.T, cfg Config, streams []StreamSpec) (*Fleet, *Stats) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SubmitStream(streams); err != nil {
		t.Fatal(err)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return f, stats
}

// TestFleetDeterministicReplay pins the tentpole acceptance criterion:
// same seed + same job stream => bit-identical JSONL event log.
func TestFleetDeterministicReplay(t *testing.T) {
	f1, s1 := runFleet(t, testConfig(PolicyBWAP, 11), testStreams())
	f2, s2 := runFleet(t, testConfig(PolicyBWAP, 11), testStreams())
	if !bytes.Equal(f1.LogBytes(), f2.LogBytes()) {
		t.Fatalf("same seed produced different logs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			f1.LogBytes(), f2.LogBytes())
	}
	if *s1 != *s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}

	f3, _ := runFleet(t, testConfig(PolicyBWAP, 12), testStreams())
	if bytes.Equal(f1.LogBytes(), f3.LogBytes()) {
		t.Fatal("different seeds produced identical logs; the arrival noise is not wired through")
	}
}

// TestFleetLogStructure decodes the replay log and checks the causal
// ordering contract: every job arrives before it is admitted, admits
// before it completes, and sequence numbers are dense.
func TestFleetLogStructure(t *testing.T) {
	f, stats := runFleet(t, testConfig(PolicyBWAP, 3), testStreams())
	recs, err := DecodeLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty event log")
	}
	if stats.LogRecords != len(recs) {
		t.Fatalf("stats says %d records, log has %d", stats.LogRecords, len(recs))
	}
	phase := map[int]string{} // job -> last record type
	lastT := 0.0
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.T < lastT-1e-9 && r.Type != "complete" {
			// Completions may be logged marginally earlier than the tick
			// that discovered them (interpolated finish times); everything
			// else is monotone.
			t.Fatalf("record %d (%s) at t=%.4f precedes previous t=%.4f", i, r.Type, r.T, lastT)
		}
		if r.T > lastT {
			lastT = r.T
		}
		switch r.Type {
		case "schema":
			if i != 0 || r.Version != LogSchemaVersion {
				t.Fatalf("schema record %d version %d; want line 0, version %d", i, r.Version, LogSchemaVersion)
			}
		case "drain", "crash", "recover", "machine-add":
			t.Fatalf("lifecycle record %q in a fault-free run", r.Type)
		case "retry", "fail":
			t.Fatalf("retry record %q in a fault-free run", r.Type)
		case "arrive":
			if phase[r.Job] != "" {
				t.Fatalf("job %d arrived twice", r.Job)
			}
			phase[r.Job] = "arrive"
		case "queue":
			if phase[r.Job] != "arrive" {
				t.Fatalf("job %d queued from state %q", r.Job, phase[r.Job])
			}
			phase[r.Job] = "queue"
		case "admit":
			if p := phase[r.Job]; p != "arrive" && p != "queue" {
				t.Fatalf("job %d admitted from state %q", r.Job, p)
			}
			if r.Machine < 0 || len(r.Nodes) == 0 {
				t.Fatalf("admit record without machine/nodes: %+v", r)
			}
			phase[r.Job] = "admit"
		case "complete":
			if phase[r.Job] != "admit" {
				t.Fatalf("job %d completed from state %q", r.Job, phase[r.Job])
			}
			phase[r.Job] = "complete"
		case "retune":
			if r.Machine < 0 || len(r.Jobs) == 0 {
				t.Fatalf("retune record without machine/jobs: %+v", r)
			}
		default:
			t.Fatalf("unknown record type %q", r.Type)
		}
	}
	total := len(f.Jobs())
	if total != 7 {
		t.Fatalf("submitted %d jobs, want 7", total)
	}
	for id := 1; id <= total; id++ {
		if phase[id] != "complete" {
			t.Fatalf("job %d ended in state %q", id, phase[id])
		}
	}
	if stats.Completed != total || stats.Running != 0 || stats.Queued != 0 || stats.Pending != 0 {
		t.Fatalf("final stats: %+v", stats)
	}
	if stats.Utilization <= 0 || stats.Utilization > 1 {
		t.Fatalf("utilization %.3f out of (0,1]", stats.Utilization)
	}
	if stats.ThroughputJobsPerSec <= 0 {
		t.Fatalf("throughput %.4f", stats.ThroughputJobsPerSec)
	}
}

// TestTuningCacheSkipsReprofiling pins the cache acceptance criterion: the
// second identical job must not re-profile.
func TestTuningCacheSkipsReprofiling(t *testing.T) {
	cfg := testConfig(PolicyBWAP, 7)
	cfg.Machines = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical jobs, far enough apart that they never co-run: both
	// resolve the same (topology, signature, workers=2, co=0) key.
	spec := testSpec("repeat")
	if _, err := f.Submit(spec, 2, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(spec, 2, 0.1, 500); err != nil {
		t.Fatal(err)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := f.Job(1), f.Job(2)
	if j1.CacheHit {
		t.Fatal("first job hit the cache; nothing could have populated it")
	}
	if !j2.CacheHit {
		t.Fatal("second identical job missed the cache: it re-profiled")
	}
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want exactly 1 probe", stats.CacheMisses)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("CacheHits = %d, want >= 1", stats.CacheHits)
	}
	// Both placements must have applied the same tuned DWP.
	recs, err := DecodeLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	var dwps []float64
	for _, r := range recs {
		if r.Type == "admit" {
			if r.DWP == nil {
				t.Fatalf("bwap admit record without dwp: %+v", r)
			}
			dwps = append(dwps, *r.DWP)
		}
	}
	if len(dwps) != 2 || dwps[0] != dwps[1] {
		t.Fatalf("admit DWPs = %v, want two equal values", dwps)
	}
}

// TestQueueingAndBackfill saturates a one-machine fleet so arrivals must
// wait, then verifies they are admitted as capacity frees and all finish.
func TestQueueingAndBackfill(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 5)
	cfg.Machines = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("burst")
	for i := 0; i < 3; i++ {
		// All three want the whole machine at t=0/0.1/0.2.
		if _, err := f.Submit(spec, 4, 0.1, float64(i)*0.1); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 {
		t.Fatalf("completed %d/3", stats.Completed)
	}
	log := string(f.LogBytes())
	if !strings.Contains(log, `"type":"queue"`) {
		t.Fatal("saturated fleet produced no queue records")
	}
	if stats.MeanWait <= 0 {
		t.Fatalf("mean wait %.3f, want positive under saturation", stats.MeanWait)
	}
	// Jobs must run serially: each admission only after the previous
	// completion.
	j1, j2, j3 := f.Job(1), f.Job(2), f.Job(3)
	if j2.Admit < j1.Finish-1e-9 || j3.Admit < j2.Finish-1e-9 {
		t.Fatalf("admissions overlap completions: admit2=%.3f finish1=%.3f admit3=%.3f finish2=%.3f",
			j2.Admit, j1.Finish, j3.Admit, j2.Finish)
	}
}

// TestRetuneOnChurn co-locates two jobs and checks churn triggers retunes
// that consult the cache with the updated co-runner count.
func TestRetuneOnChurn(t *testing.T) {
	cfg := testConfig(PolicyBWAP, 9)
	cfg.Machines = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("pair")
	if _, err := f.Submit(spec, 2, 0.2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(spec, 2, 0.2, 2); err != nil { // overlaps the first
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	retunes := 0
	for _, r := range recs {
		if r.Type == "retune" {
			retunes++
		}
	}
	if retunes == 0 {
		t.Fatal("overlapping jobs produced no retune events")
	}
	// The cache must now hold both co-runner contexts for the spec.
	tc := f.Cache()
	if _, hit, _ := tc.DWP(smallMachine(0), spec, 2, 0); !hit {
		t.Fatal("co=0 context missing from cache")
	}
	if _, hit, _ := tc.DWP(smallMachine(0), spec, 2, 1); !hit {
		t.Fatal("co=1 context missing from cache after retune")
	}
}

// TestMaxSimTimeAborts verifies the drain guard trips instead of spinning.
func TestMaxSimTimeAborts(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 1)
	cfg.Machines = 1
	cfg.MaxSimTime = 2 // far too short for the job
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSpec("stuck"), 2, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("Run returned nil, want MaxSimTime error")
	}
}

// TestSubmitValidation covers the rejection paths.
func TestSubmitValidation(t *testing.T) {
	f, err := New(testConfig(PolicyFirstTouch, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSpec("x"), 99, 1, 0); err == nil {
		t.Fatal("oversized worker demand accepted")
	}
	if _, err := f.Submit(testSpec("x"), 1, 0, 0); err == nil {
		t.Fatal("zero work scale accepted")
	}
	if _, err := f.Submit(workload.Spec{}, 1, 1, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New(Config{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Config{Routing: "nope"}); err == nil {
		t.Fatal("unknown routing accepted")
	}
	if _, err := New(Config{Admission: "nope"}); err == nil {
		t.Fatal("unknown admission policy accepted")
	}
	if _, err := New(Config{Machines: 2, Shards: 3}); err == nil {
		t.Fatal("more shards than machines accepted")
	}
}

// TestRoundRobinRoutingCycles pins the sticky per-job shard assignment:
// with one machine per shard, concurrent jobs land on machines 0..3 in
// submission order.
func TestRoundRobinRoutingCycles(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 2)
	cfg.Machines, cfg.Shards, cfg.Routing = 4, 4, RouteRoundRobin
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.Submit(testSpec("rr"), 1, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if got := f.Job(i).Machine; got != i-1 {
			t.Fatalf("job %d ran on machine %d, want %d", i, got, i-1)
		}
	}
}

// TestHashAffinityCoLocatesSignatures submits two concurrent jobs of the
// same workload: the least-loaded router would spread them to different
// machines, hash affinity must keep them on the same shard's machine.
func TestHashAffinityCoLocatesSignatures(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 2)
	cfg.Machines, cfg.Shards, cfg.Routing = 2, 2, RouteHashAffinity
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("affine")
	if _, err := f.Submit(spec, 1, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(spec, 1, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Job(1).Machine != f.Job(2).Machine {
		t.Fatalf("same-signature jobs split across machines %d and %d",
			f.Job(1).Machine, f.Job(2).Machine)
	}

	// Control: the default router spreads them.
	cfg.Routing = RouteLeastLoaded
	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f2.Submit(spec, 1, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f2.Run(); err != nil {
		t.Fatal(err)
	}
	if f2.Job(1).Machine == f2.Job(2).Machine {
		t.Fatal("least-loaded router co-located concurrent jobs with free machines available")
	}
}

// TestAdmissionBestBandwidthPicksBWSubset checks the node-selection seam:
// on Machine A (asymmetric), a 2-worker job must get the best free pair by
// inter-worker bandwidth, not the two lowest free ids.
func TestAdmissionBestBandwidthPicksBWSubset(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 3)
	cfg.Machines = 1
	cfg.NewMachine = func(int) *topology.Machine { return topology.MachineA() }
	cfg.Admission = AdmitBestBandwidth
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSpec("bw"), 2, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	got := f.Job(1).Nodes
	want, err := sched.BestWorkerSet(topology.MachineA(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("best-bandwidth admitted on %v, want %v", got, want)
	}
}

// TestAdmissionAntiAffinityAvoidsBusyNeighbours co-locates a hungry job
// with a running one on a machine whose only bandwidth asymmetry is the
// busy set: the spread choice must not be the most-free prefix adjacent to
// the busy pair.
func TestAdmissionAntiAffinityAvoidsBusyNeighbours(t *testing.T) {
	// MachineA: same-package pairs (0,1), (2,3), ... have high mutual BW.
	cfg := testConfig(PolicyBWAP, 3)
	cfg.Machines = 1
	cfg.NewMachine = func(int) *topology.Machine { return topology.MachineA() }
	cfg.Admission = AdmitAntiAffinity
	cfg.Policy = PolicyFirstTouch
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Long-running first job occupies the machine's best pair; the hungry
	// second job must steer clear of its package neighbours.
	if _, err := f.Submit(testSpec("hog"), 2, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSpec("spread"), 2, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	hog, spread := f.Job(1), f.Job(2)
	for _, n := range spread.Nodes {
		for _, b := range hog.Nodes {
			if n/2 == b/2 {
				t.Fatalf("anti-affinity placed hungry job on %v, sharing a package with busy %v",
					spread.Nodes, hog.Nodes)
			}
		}
	}

	// A modest job (below the demand threshold) packs most-free instead.
	free := []topology.NodeID{2, 3, 5, 7}
	modest := &Job{Spec: workload.Spec{Name: "m", ReadGBs: 2}, Workers: 2}
	nodes, err := antiAffinity{}.PickNodes(topology.MachineA(), free, modest)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0] != 2 || nodes[1] != 3 {
		t.Fatalf("modest job got %v, want most-free prefix [2 3]", nodes)
	}
}

// TestShardStatsPartition verifies the per-shard snapshot: disjoint
// machine ownership covering the fleet, and counters that add up to the
// fleet totals.
func TestShardStatsPartition(t *testing.T) {
	cfg := testConfig(PolicyBWAP, 11)
	cfg.Machines, cfg.Shards = 4, 3
	f, stats := runFleet(t, cfg, testStreams())
	shards := f.ShardStats()
	if len(shards) != 3 {
		t.Fatalf("%d shard stats, want 3", len(shards))
	}
	seen := map[int]bool{}
	admitted, completed, records := 0, 0, 0
	var hits, misses int64
	for _, sh := range shards {
		for _, m := range sh.Machines {
			if seen[m] {
				t.Fatalf("machine %d owned by two shards", m)
			}
			seen[m] = true
		}
		if sh.SimTime != stats.SimTime {
			t.Fatalf("shard %d clock %.3f, fleet %.3f", sh.Shard, sh.SimTime, stats.SimTime)
		}
		admitted += sh.Admitted
		completed += sh.Completed
		records += sh.LogRecords
		hits += sh.CacheHits
		misses += sh.CacheMisses
	}
	if len(seen) != 4 {
		t.Fatalf("shards own %d machines, want 4", len(seen))
	}
	if completed != stats.Completed || admitted != stats.Completed {
		t.Fatalf("shard admit/complete %d/%d, fleet completed %d", admitted, completed, stats.Completed)
	}
	if hits != stats.CacheHits || misses != stats.CacheMisses {
		t.Fatalf("shard cache %d/%d, fleet %d/%d", hits, misses, stats.CacheHits, stats.CacheMisses)
	}
	// Router-level arrive/queue records are attributed to no shard.
	if records >= stats.LogRecords {
		t.Fatalf("shard records %d should exclude router records (total %d)", records, stats.LogRecords)
	}
}
