package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"os"

	"bwap/internal/obs"
	"bwap/internal/workload"
)

// v2 returns cfg switched to the conservative-lookahead engine; v1 pins
// the barrier engine explicitly, so the comparison tests hold even when
// BWAP_ENGINE=2 flips the suite-wide default.
func v2(cfg Config) Config {
	cfg.EngineVersion = 2
	return cfg
}

func v1(cfg Config) Config {
	cfg.EngineVersion = 1
	return cfg
}

// testingNoFastForward mirrors the engine's BWAP_NO_FASTFORWARD knob.
func testingNoFastForward() bool {
	return os.Getenv("BWAP_NO_FASTFORWARD") == "1"
}

func TestEngineVersionValidation(t *testing.T) {
	cfg := shardConfig(PolicyFirstTouch, AdmitMostFree, 1, 1, 1)
	cfg.EngineVersion = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("engine version 3 accepted")
	}
	cfg.EngineVersion = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("engine version -1 accepted")
	}

	// BWAP_ENGINE fills only a zero EngineVersion, and bad values are
	// rejected by New rather than silently mapped to a default.
	t.Setenv("BWAP_ENGINE", "2")
	f, err := New(shardConfig(PolicyFirstTouch, AdmitMostFree, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().EngineVersion; got != 2 {
		t.Fatalf("BWAP_ENGINE=2 gave engine %d", got)
	}
	cfg = shardConfig(PolicyFirstTouch, AdmitMostFree, 1, 1, 1)
	cfg.EngineVersion = 1 // explicit config beats the environment
	f, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().EngineVersion; got != 1 {
		t.Fatalf("explicit engine 1 overridden to %d", got)
	}
	t.Setenv("BWAP_ENGINE", "9")
	if _, err := New(shardConfig(PolicyFirstTouch, AdmitMostFree, 1, 1, 1)); err == nil {
		t.Fatal("BWAP_ENGINE=9 accepted")
	}
}

// TestEngineV2ReplayShardWorkerEquivalence is the v2 determinism contract:
// the merged (t, kind, seq) log is bit-identical for every shard/worker
// partition, exactly as the v1 suite pins for the barrier engine — even
// though shards now free-run through multi-tick windows between barriers.
func TestEngineV2ReplayShardWorkerEquivalence(t *testing.T) {
	for _, admission := range []string{AdmitMostFree, AdmitBestBandwidth, AdmitAntiAffinity} {
		var base []byte
		for _, c := range replayCombos {
			f, stats := runFleet(t, v2(shardConfig(PolicyBWAP, admission, c.shards, c.workers, 7)), shardStreams())
			if stats.Completed != stats.Jobs {
				t.Fatalf("%s %d/%d: %d of %d jobs completed", admission, c.shards, c.workers, stats.Completed, stats.Jobs)
			}
			if base == nil {
				base = f.LogBytes()
				continue
			}
			if !bytes.Equal(base, f.LogBytes()) {
				t.Fatalf("%s: v2 log differs at shards=%d workers=%d", admission, c.shards, c.workers)
			}
		}
	}
}

// TestEngineV2ChaosTraceReplayShardInvariance extends the chaos replay
// suite to the parallel engine: a trace recorded under v2 with fault
// injection reproduces itself bit for bit at 1, 2 and 4 shards.
func TestEngineV2ChaosTraceReplayShardInvariance(t *testing.T) {
	rec, stats := runFleet(t, v2(chaosShardConfig(1, 1, false)), shardStreams())
	if stats.Evacuations == 0 && stats.Retries == 0 {
		t.Fatal("recorded run hit no faults; shard invariance would be vacuous")
	}
	resolve := func(name string) (workload.Spec, error) {
		spec := testSpec(name)
		if name == "modest" {
			spec.ReadGBs, spec.WriteGBs = 3, 0.5
		}
		return spec, nil
	}
	trace, err := ReadTrace(rec.LogBytes(), resolve)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		f, _ := runFleet(t, v2(chaosShardConfig(shards, shards, false)), trace)
		if !bytes.Equal(rec.LogBytes(), f.LogBytes()) {
			t.Fatalf("v2 chaos replay at %d shards changed the log\n--- recorded ---\n%s\n--- replay ---\n%s",
				shards, rec.LogBytes(), f.LogBytes())
		}
	}
}

// TestEngineV2MetricsReplayByteIdentical runs the telemetry-attached
// replay matrix (chaos plan + observer + spans) under the parallel
// engine: log, /metrics text, timeline JSON and span log must all be
// byte-identical at 1, 2 and 4 shards.
func TestEngineV2MetricsReplayByteIdentical(t *testing.T) {
	cfg := v2(obsFaultConfig(1, 1))
	var baseSpans bytes.Buffer
	cfg.Obs = NewObserver(ObserverConfig{SpanW: &baseSpans})
	recorded, _ := runFleet(t, cfg, shardStreams())
	if err := recorded.Observer().CloseSpans(); err != nil {
		t.Fatal(err)
	}
	baseMetrics := metricsOf(t, recorded)
	baseTimeline := timelineJSON(t, recorded, 2)
	if err := obs.Lint(baseMetrics); err != nil {
		t.Fatalf("v2 exposition failed lint: %v", err)
	}

	streams, err := ReadTrace(recorded.LogBytes(), obsResolve)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ shards, workers int }{{1, 1}, {2, 2}, {4, 4}} {
		rcfg := v2(obsFaultConfig(c.shards, c.workers))
		var spans bytes.Buffer
		rcfg.Obs = NewObserver(ObserverConfig{SpanW: &spans})
		rf, _ := runFleet(t, rcfg, streams)
		if err := rf.Observer().CloseSpans(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recorded.LogBytes(), rf.LogBytes()) {
			t.Fatalf("shards=%d: v2 replay diverged from recording", c.shards)
		}
		if got := metricsOf(t, rf); !bytes.Equal(baseMetrics, got) {
			t.Fatalf("shards=%d changed v2 /metrics\n--- base ---\n%s\n--- got ---\n%s",
				c.shards, baseMetrics, got)
		}
		if got := timelineJSON(t, rf, 2); !bytes.Equal(baseTimeline, got) {
			t.Fatalf("shards=%d changed the v2 timeline", c.shards)
		}
		if !bytes.Equal(baseSpans.Bytes(), spans.Bytes()) {
			t.Fatalf("shards=%d changed the v2 span log", c.shards)
		}
	}
}

// TestEngineV2FastForwardEquivalence pins that the v2 free-run path —
// mixed memoized replays and full Steps inside a window — is
// byte-identical to the naive all-Steps loop, across routings and shard
// counts, just as TestFastForwardFleetEquivalence pins for v1.
func TestEngineV2FastForwardEquivalence(t *testing.T) {
	if ffForcedOffEnv(t) {
		return
	}
	for _, routing := range []string{RouteLeastLoaded, RouteHashAffinity, RouteRoundRobin} {
		for _, shards := range []int{1, 2, 4} {
			on, _ := runFleet(t, v2(ffShardConfig(routing, shards, false)), shardStreams())
			off, _ := runFleet(t, v2(ffShardConfig(routing, shards, true)), shardStreams())
			if !bytes.Equal(on.LogBytes(), off.LogBytes()) {
				t.Fatalf("%s/%d shards: v2 fast-forward changed the log\n--- on ---\n%s\n--- off ---\n%s",
					routing, shards, on.LogBytes(), off.LogBytes())
			}
		}
	}
}

// TestEngineV2ReplaysMoreTicks pins the point of the latency-feedback
// snap: on the dense shard stream the v1 engines spend dozens of ticks
// after every perturbation chasing sub-ULP feedback drift (latEpoch
// churn blocks the replay path), while v2 snaps to the fixed point and
// replays a strictly larger share of ticks.
func TestEngineV2ReplaysMoreTicks(t *testing.T) {
	if ffForcedOffEnv(t) {
		return
	}
	fraction := func(cfg Config) (float64, *Stats) {
		_, stats := runFleet(t, cfg, shardStreams())
		total := stats.TickSolves + stats.TickReplays
		if total == 0 {
			t.Fatal("no ticks ran")
		}
		return float64(stats.TickReplays) / float64(total), stats
	}
	f1, _ := fraction(v1(shardConfig(PolicyBWAP, AdmitMostFree, 2, 2, 7)))
	f2, s2 := fraction(v2(shardConfig(PolicyBWAP, AdmitMostFree, 2, 2, 7)))
	if f2 <= f1 {
		t.Fatalf("v2 replay fraction %.3f not above v1's %.3f", f2, f1)
	}
	// The dense stream measures ~0.678 under the snap + windowed advance;
	// the gate sits at the honest floor with a small margin so a regression
	// that costs more than a few points of replay share fails loudly.
	if f2 < 0.6 {
		t.Fatalf("v2 replays %.1f%% of ticks on the dense stream, want > 60%%", 100*f2)
	}
	if s2.Completed != s2.Jobs {
		t.Fatalf("v2 run completed %d of %d jobs", s2.Completed, s2.Jobs)
	}
	t.Logf("replay fraction: v1 %.3f -> v2 %.3f", f1, f2)
}

// ffForcedOffEnv skips comparisons that are vacuous (or wrong by design)
// when BWAP_NO_FASTFORWARD forces the naive loop for the whole run.
func ffForcedOffEnv(t *testing.T) bool {
	t.Helper()
	if noFF := testingNoFastForward(); noFF {
		t.Log("BWAP_NO_FASTFORWARD=1: replay-path comparison skipped")
		return true
	}
	return false
}

// TestEngineV2PhaseAwareHorizon pins the fleet-visible effect of the
// per-phase completion bound (sim.appCompletionHorizon): a demand peak
// the workload has already passed must stop haunting the free-run
// windows. Two streams differ only in where a 3× demand phase sits — at
// 5% of the work (passed almost immediately, factor 1 thereafter) or at
// 90% (genuinely gating completion). A lifetime-peak-majorized horizon
// sizes both runs' windows by the same factor 3; the per-phase bound
// gives the early-peak run factor-1 windows for the ~95% of its life
// after the boundary, which shows up as a strictly larger mean advance
// window (AdvanceTicks/AdvanceBatches) than the late-peak run, whose
// short windows near the end are honest.
func TestEngineV2PhaseAwareHorizon(t *testing.T) {
	meanWindow := func(phases []workload.Phase) float64 {
		spec := testSpec("phased")
		spec.Phases = phases
		// Sparse arrivals: with few scheduled events on the heap, the
		// completion horizon is what actually bounds the free-run windows.
		streams := []StreamSpec{{
			Workload: spec,
			Arrival:  workload.ArrivalSpec{Process: workload.Periodic, Rate: 0.2, Count: 3},
			Workers:  2, WorkScale: 0.1,
		}}
		f, stats := runFleet(t, v2(shardConfig(PolicyBWAP, AdmitMostFree, 2, 2, 7)), streams)
		if stats.Completed != stats.Jobs {
			t.Fatalf("phases %v: %d of %d jobs completed", phases, stats.Completed, stats.Jobs)
		}
		if stats.AdvanceBatches == 0 {
			t.Fatal("no advance batches recorded")
		}
		_ = f
		return float64(stats.AdvanceTicks) / float64(stats.AdvanceBatches)
	}
	late := meanWindow([]workload.Phase{
		{AtWorkFraction: 0.9, DemandFactor: 3, LatencyFactor: 1},
	})
	early := meanWindow([]workload.Phase{
		{AtWorkFraction: 0.05, DemandFactor: 3, LatencyFactor: 1},
		{AtWorkFraction: 0.15, DemandFactor: 1, LatencyFactor: 1},
	})
	t.Logf("mean advance window: early-peak %.1f ticks, late-peak %.1f ticks", early, late)
	if early <= late {
		t.Fatalf("early-peak mean window %.1f not above late-peak %.1f; a passed peak still haunts the horizon", early, late)
	}
}

// TestEngineV1LogFrozen pins the v1 reference bytes: the barrier engine's
// log for a fixed config and stream is frozen across PRs (the hash was
// recorded when v2 landed), so any drift in v1 semantics — however the
// advance machinery evolves — fails loudly rather than silently moving
// the reference.
func TestEngineV1LogFrozen(t *testing.T) {
	if testingNoFastForward() {
		t.Skip("BWAP_NO_FASTFORWARD changes nothing in the bytes but runs the slow path")
	}
	f, _ := runFleet(t, v1(chaosShardConfig(2, 2, false)), shardStreams())
	sum := sha256.Sum256(f.LogBytes())
	const want = "c62be096b51da97f1a3ef5aaacba9b622426d42dfa09fd086834f19ecbbc7018"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("v1 reference log hash drifted:\n got %s\nwant %s", got, want)
	}
}

// TestEngineVersionInStats pins the /fleet surface: the engine version a
// fleet runs with is visible to clients.
func TestEngineVersionInStats(t *testing.T) {
	f, stats := runFleet(t, v2(shardConfig(PolicyFirstTouch, AdmitMostFree, 2, 2, 3)), shardStreams())
	if stats.EngineVersion != 2 {
		t.Fatalf("stats report engine %d, want 2", stats.EngineVersion)
	}
	data, err := json.Marshal(f.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"engine_version":2`)) {
		t.Fatalf("engine_version missing from stats JSON: %s", data)
	}
}
