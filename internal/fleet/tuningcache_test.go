package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bwap/internal/sim"
)

// TestTuningCacheSnapshotRoundTrip pins the durability acceptance
// criterion: probe once, Save, LoadInto a fresh cache, and the repeated
// signature hits with zero probe runs.
func TestTuningCacheSnapshotRoundTrip(t *testing.T) {
	topo := smallMachine(0)
	spec := testSpec("durable")
	src := NewTuningCache(sim.Config{Seed: 7}, 0, 7)
	want, hit, err := src.DWP(topo, spec, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup hit an empty cache")
	}

	path := filepath.Join(t.TempDir(), "tuning.json")
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}

	dst := NewTuningCache(sim.Config{Seed: 7}, 0, 7)
	n, err := dst.LoadInto(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	got, hit, err := dst.DWP(topo, spec, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("restored entry missed: the probe ran again")
	}
	if got != want {
		t.Fatalf("restored DWP %g, want %g", got, want)
	}
	cs := dst.Stats()
	if cs.Misses != 0 {
		t.Fatalf("warm cache ran %d probes, want 0", cs.Misses)
	}
	if cs.Restored != 1 || cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("warm cache stats %+v", cs)
	}

	// Missing file surfaces as os.IsNotExist for the boot-if-present path.
	if _, err := dst.LoadInto(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("LoadInto(absent) err = %v, want IsNotExist", err)
	}
	// Garbage and wrong-kind files are rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"version":1,"kind":"other","dwp":{}}`), 0o644) //nolint:errcheck
	if _, err := dst.LoadInto(bad); err == nil {
		t.Fatal("LoadInto accepted a foreign file kind")
	}
}

// TestTuningCacheErrorNotPoisoned is the error-poisoning regression test
// at the fleet layer: a failing probe (worker demand no machine satisfies,
// so sched.BestWorkerSet errors) must be retried on the next lookup by
// default, and memoized forever only under CacheErrors.
func TestTuningCacheErrorNotPoisoned(t *testing.T) {
	topo := smallMachine(0)
	spec := testSpec("flaky")

	tc := NewTuningCache(sim.Config{Seed: 3}, 0, 3)
	if _, _, err := tc.DWP(topo, spec, 99, 0); err == nil {
		t.Fatal("impossible worker demand probed successfully")
	}
	if _, _, err := tc.DWP(topo, spec, 99, 0); err == nil {
		t.Fatal("second lookup succeeded")
	}
	if cs := tc.Stats(); cs.Misses != 2 {
		t.Fatalf("failing probe ran %d times, want 2 (forget-on-error retries)", cs.Misses)
	}
	// A succeeding key still computes exactly once.
	if _, hit, err := tc.DWP(topo, spec, 2, 0); err != nil || hit {
		t.Fatalf("first good lookup: hit=%v err=%v", hit, err)
	}
	if _, hit, err := tc.DWP(topo, spec, 2, 0); err != nil || !hit {
		t.Fatalf("second good lookup: hit=%v err=%v", hit, err)
	}

	strict := NewTuningCache(sim.Config{Seed: 3}, 0, 3, CacheErrors())
	strict.DWP(topo, spec, 99, 0) //nolint:errcheck
	if _, hit, err := strict.DWP(topo, spec, 99, 0); err == nil || !hit {
		t.Fatalf("CacheErrors lookup: hit=%v err=%v, want cached failure", hit, err)
	}
	if cs := strict.Stats(); cs.Misses != 1 {
		t.Fatalf("strict cache ran the failing probe %d times, want 1", cs.Misses)
	}
}

// TestTuningCacheLRUBound checks CacheMaxEntries evicts the least recently
// used placement and reports it in the stats.
func TestTuningCacheLRUBound(t *testing.T) {
	topo := smallMachine(0)
	tc := NewTuningCache(sim.Config{Seed: 5}, 0, 5, CacheMaxEntries(2))
	for _, name := range []string{"w1", "w2", "w3"} {
		if _, _, err := tc.DWP(topo, testSpec(name), 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	cs := tc.Stats()
	if cs.Entries != 2 || cs.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction", cs)
	}
	// w1 was evicted: looking it up again probes.
	if _, hit, err := tc.DWP(topo, testSpec("w1"), 2, 0); err != nil || hit {
		t.Fatalf("evicted key lookup: hit=%v err=%v", hit, err)
	}
	// w3 survived (w2 went when w1 re-entered).
	if _, hit, err := tc.DWP(topo, testSpec("w3"), 2, 0); err != nil || !hit {
		t.Fatalf("recent key lookup: hit=%v err=%v", hit, err)
	}
}

// TestTuningCacheBadSnapshots mirrors the cache-layer corrupt-snapshot
// table at the fleet boundary: every unusable payload surfaces as
// ErrBadSnapshot via errors.Is — the sentinel bwapd's boot path matches to
// warn and cold-start instead of dying — and the cache keeps working.
func TestTuningCacheBadSnapshots(t *testing.T) {
	topo := smallMachine(0)
	spec := testSpec("survivor")
	tc := NewTuningCache(sim.Config{Seed: 5}, 0, 5)
	want, _, err := tc.DWP(topo, spec, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("}{")},
		{"truncated file", []byte(`{"version":1,"kind":"bwap-tuning-cache"`)},
		{"wrong kind", []byte(`{"version":1,"kind":"other","dwp":{"version":1,"entries":[]}}`)},
		{"wrong file version", []byte(`{"version":9,"kind":"bwap-tuning-cache","dwp":{"version":1,"entries":[]}}`)},
		{"inner version", []byte(`{"version":1,"kind":"bwap-tuning-cache","dwp":{"version":9,"entries":[]}}`)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, err := tc.RestoreBytes(c.data)
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("RestoreBytes = %v, want ErrBadSnapshot", err)
			}
			if n != 0 {
				t.Fatalf("RestoreBytes loaded %d entries from a bad payload", n)
			}
			got, hit, err := tc.DWP(topo, spec, 2, 0)
			if err != nil || !hit || got != want {
				t.Fatalf("cache unusable after failed restore: %g, %v, %v", got, hit, err)
			}
		})
	}
	if st := tc.Stats(); st.Entries != 1 || st.Restored != 0 {
		t.Fatalf("failed restores mutated the cache: %+v", st)
	}
}
