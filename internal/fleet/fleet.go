// Package fleet is the service layer above the single-run BWAP engine: a
// deterministic discrete-event scheduler that drives a *stream* of jobs —
// workload specs with arrival processes and durations — across a fleet of
// simulated NUMA machines.
//
// The fleet is partitioned into shards, each with its own event heap,
// clock and machine set. Within a shard every machine is one sim.Engine
// advanced in lockstep with the others (identical tick length), so
// co-located jobs contend exactly as they do in the single-run
// experiments; across shards a bounded worker pool advances every shard
// concurrently with a barrier per simulated tick, which is the daemon's
// multi-core scaling axis. Jobs never cross shards once placed, so the
// lockstep invariant holds per shard and the merged event log is
// bit-identical for a given seed regardless of the worker count.
//
// The scheduler pops events off the shard heaps (and a router-level
// arrival heap) in global (timestamp, event kind, push sequence) order;
// between events it advances every shard tick by tick, stopping the
// instant any job completes so the completion becomes an event of its
// own. A routing tier assigns each admission attempt to a shard
// (Config.Routing: least-loaded, hash-affinity, round-robin) and an
// AdmissionPolicy picks the node set on the chosen machine
// (Config.Admission: most-free, best-bandwidth, anti-affinity); jobs that
// do not fit wait in an arrival-ordered queue and are backfilled as
// capacity frees up. Under the bwap policy, placement consults the
// TuningCache — repeated jobs skip re-profiling — and churn (an arrival
// or departure on a machine) schedules a coalesced retune event that
// re-places the survivors for their new co-runner count.
//
// Every decision is appended to a JSONL event log; the same
// configuration, seed and job stream reproduce the log bit for bit.
package fleet

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"

	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// ErrQueueFull is returned (wrapped) by Submit when Config.MaxQueue
// backpressure rejects a job; the HTTP layer maps it to 429 so clients
// can tell a transient overload from an invalid request.
var ErrQueueFull = errors.New("fleet: admission queue full")

// Placement policy names accepted by Config.Policy.
const (
	PolicyBWAP           = "bwap"
	PolicyFirstTouch     = "first-touch"
	PolicyUniformAll     = "uniform-all"
	PolicyUniformWorkers = "uniform-workers"
)

// Config parameterizes a fleet. The zero value is completed by defaults.
type Config struct {
	// Machines is the fleet size (default 2).
	Machines int
	// Shards partitions the machines into independently advanced shards
	// (default 1; machine i belongs to shard i mod Shards). Must not
	// exceed Machines.
	Shards int
	// Workers bounds the goroutines advancing shards between events
	// (default min(Shards, GOMAXPROCS); clamped to Shards). The event log
	// is bit-identical for any worker count.
	Workers int
	// EngineVersion selects the advance engine. 1 (the default) is the
	// per-tick barrier loop with quiescent batching — the CI reference
	// whose logs are frozen byte for byte across PRs. 2 is the
	// conservative-lookahead windowed engine: shards free-run to a
	// provable completion-free horizon between barriers instead of
	// re-entering a fleet-wide barrier every tick, and engines snap the
	// latency-feedback smoothing to its float fixed point (a deliberate,
	// versioned bit-compat break — see DESIGN.md §12). Both versions keep
	// the hard determinism contract: the merged (t, kind, seq) event log
	// is bit-identical for any shard and worker count. The BWAP_ENGINE
	// environment variable overrides a zero value, so whole test suites
	// can run under either engine without touching configs.
	EngineVersion int
	// Routing selects the job→shard tier (default RouteLeastLoaded).
	Routing string
	// Admission selects the node-selection policy on the admitting
	// machine (default AdmitMostFree).
	Admission string
	// NewMachine builds machine i's topology (default: the paper's
	// Machine B for every i). Machines sharing a topology structure share
	// canonical profiling and tuning-cache entries via the fingerprint.
	NewMachine func(i int) *topology.Machine
	// SimCfg configures every machine's engine. All machines tick with the
	// same DT; per-machine noise streams are decorrelated by deriving each
	// engine's seed from Seed and the machine index.
	SimCfg sim.Config
	// Policy selects the placement policy for admitted jobs (default
	// PolicyBWAP).
	Policy string
	// RetuneDelay is how long after churn the coalesced retune fires, in
	// simulated seconds (default 0.5). Zero keeps the default; negative
	// disables retuning.
	RetuneDelay float64
	// MaxSimTime aborts a drain that never completes (default 1e6 s).
	MaxSimTime float64
	// MaxQueue bounds the arrived-but-unadmitted queue: Submit refuses
	// further jobs while that many are already waiting for capacity,
	// giving a daemon backpressure instead of an unbounded backlog
	// (0 = unbounded). Not-yet-due stream arrivals don't count, so
	// pre-submitted streams (SubmitStream, replay) are unaffected unless
	// the backlog genuinely builds.
	MaxQueue int
	// Faults optionally injects a deterministic machine-lifecycle schedule
	// (crashes, drains, recoveries, fleet growth); see FaultPlan. The plan
	// is materialized and validated at New.
	Faults *FaultPlan
	// MaxRetries is the per-job retry budget for crash-killed jobs: a job
	// killed more than MaxRetries times fails terminally (default 3;
	// negative means no retries).
	MaxRetries int
	// RetryBackoff is the base crash-retry delay in simulated seconds; the
	// k-th retry waits RetryBackoff·2^(k−1), capped at RetryBackoffCap
	// (defaults 2 and 60).
	RetryBackoff    float64
	RetryBackoffCap float64
	// Seed derives the arrival streams, engine seeds and probe seeds.
	Seed uint64
	// ProbeWorkScale scales tuning-probe work volumes (default
	// DefaultProbeWorkScale); only used when Cache is nil.
	ProbeWorkScale float64
	// ProbeWorkers sizes the asynchronous probe pool of the private tuning
	// cache (only used when Cache is nil; a shared Cache carries its own
	// pool): >= 1 bounds concurrent speculative probes, 0 selects
	// GOMAXPROCS, < 0 disables prefetching so every probe runs inside the
	// admission that demands it. Purely a throughput knob — the event log
	// is byte-identical for any value (TestProbePoolDeterminism).
	ProbeWorkers int
	// LogRetention bounds the in-memory mirror of the event log: 0 (the
	// default) retains every record, n > 0 retains only the most recent n
	// records, and n < 0 disables the mirror entirely. The streaming LogW
	// writer always receives every record, so long runs keep a complete
	// on-disk log while holding bounded memory. LogBytes (and everything
	// built on it: replay round-trips, log-equality tests) needs the full
	// mirror — with retention the tail it returns lacks the leading schema
	// record once trimming starts.
	LogRetention int
	// Cache optionally shares a TuningCache across fleets (and with a
	// daemon); nil builds a private one from SimCfg/ProbeWorkScale/Seed.
	Cache *TuningCache
	// LogW optionally mirrors every event-log line as it is written.
	LogW io.Writer
	// Obs optionally attaches a telemetry observer (see NewObserver). The
	// observer is a pure consumer of the record stream plus exposition-time
	// gauge sync — it never touches the log, the RNG or the tick path, so
	// enabling it cannot change the event log by a byte. An observer must
	// not be shared between fleets.
	Obs *Observer
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 2
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Routing == "" {
		c.Routing = RouteLeastLoaded
	}
	if c.Admission == "" {
		c.Admission = AdmitMostFree
	}
	if c.NewMachine == nil {
		// One immutable topology serves every default machine: a Machine is
		// a static description, engines only read it, and sharing pays the
		// builder and the memoized fingerprint once per fleet instead of
		// once per machine. A NewMachine hook keeps whatever per-index
		// behaviour the caller wants.
		shared := topology.MachineB()
		c.NewMachine = func(int) *topology.Machine { return shared }
	}
	if c.Policy == "" {
		c.Policy = PolicyBWAP
	}
	if c.RetuneDelay == 0 {
		c.RetuneDelay = 0.5
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 1e6
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 60
	}
	if c.EngineVersion == 0 {
		c.EngineVersion = 1
		if v := os.Getenv("BWAP_ENGINE"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				c.EngineVersion = n // New rejects out-of-range values loudly
			}
		}
	}
	return c
}

// JobState is a job's lifecycle position.
type JobState int

const (
	// JobPending means the arrival event is scheduled but has not fired.
	JobPending JobState = iota
	// JobQueued means the job arrived but no machine had capacity.
	JobQueued
	// JobRunning means the job is placed and executing.
	JobRunning
	// JobDone means the job completed.
	JobDone
	// JobRetryWait means a crash killed the job and its retry backoff is
	// ticking.
	JobRetryWait
	// JobFailed means the job exhausted its retry budget — terminal.
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobRetryWait:
		return "retry-wait"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// Job is one unit of the stream: a workload spec, a worker-node demand and
// a work volume, admitted onto some machine at some time.
type Job struct {
	// ID is the 1-based admission-stream identifier.
	ID int
	// Spec is the unscaled workload; the tuning cache keys on its
	// Signature.
	Spec workload.Spec
	// Workers is the number of NUMA nodes the job asks for.
	Workers int
	// WorkScale scales Spec.WorkGB for this instance (1 = full volume).
	WorkScale float64
	// Arrival is the submission time in simulated seconds.
	Arrival float64

	// State, Machine, Nodes, Admit and Finish are maintained by the
	// scheduler. Machine is -1 until admission.
	State   JobState
	Machine int
	Nodes   []topology.NodeID
	Admit   float64
	Finish  float64
	// CacheHit reports whether admission placement came from the tuning
	// cache (bwap policy only).
	CacheHit bool
	// Attempts counts crash-kills of this job; past Config.MaxRetries the
	// job fails terminally.
	Attempts int

	app     *sim.App
	seen    bool   // completion already turned into an event
	sigHash uint64 // FNV-64a of Spec.Signature(), computed once at Submit
	// remFrac is the fraction of the job's scaled work volume still to
	// run: 1 until a drain snapshots progress, then scaled down so the
	// re-placed remainder is only what is left. Placement multiplies it
	// into WorkScale; keeping it an exact 1.0 for never-evacuated jobs
	// makes fault-free logs bit-identical to the pre-lifecycle scheduler.
	remFrac float64
}

// machine is one fleet member: a topology, its engine, allocation state,
// its home shard and its lifecycle state. A machine that is not up keeps
// ticking its (empty) engine so the fleet-wide lockstep clock survives the
// outage; it is merely invisible to bestFit until it recovers.
type machine struct {
	id            int
	shard         int
	topo          *topology.Machine
	eng           *sim.Engine
	free          []bool
	freeCount     int
	active        []*Job // admission order
	retunePending bool
	state         machineState
}

// freeNodes lists the machine's free nodes in ascending order.
func (m *machine) freeNodes() []topology.NodeID {
	nodes := make([]topology.NodeID, 0, m.freeCount)
	for i := range m.free {
		if m.free[i] {
			nodes = append(nodes, topology.NodeID(i))
		}
	}
	return nodes
}

// claim marks the given nodes used, validating the admission policy's
// choice (every node free, no duplicates). On error nothing is claimed.
func (m *machine) claim(nodes []topology.NodeID) error {
	for i, n := range nodes {
		if int(n) < 0 || int(n) >= len(m.free) || !m.free[n] {
			for _, p := range nodes[:i] { // unwind the prefix
				m.free[p] = true
				m.freeCount++
			}
			return fmt.Errorf("fleet: admission policy picked unavailable node %d on machine %d", n, m.id)
		}
		m.free[n] = false
		m.freeCount--
	}
	return nil
}

func (m *machine) release(nodes []topology.NodeID) {
	for _, n := range nodes {
		if !m.free[n] {
			m.free[n] = true
			m.freeCount++
		}
	}
}

// Fleet schedules a job stream over a sharded set of simulated machines.
// It is not safe for concurrent use; the HTTP server serializes access.
// (The worker pool inside Advance/Run is an implementation detail — it
// synchronizes on per-tick barriers and never outlives the call.)
type Fleet struct {
	cfg       Config
	dt        float64
	machines  []*machine // by global id
	shards    []*shard
	workers   int
	router    Routing
	admission AdmissionPolicy
	cache     *TuningCache

	jobs    []*Job // by ID-1
	queue   []*Job // arrived, waiting for capacity; (Arrival, ID) order
	running int

	// compScratch backs gatherComps' merged completion slice. The returned
	// slice is consumed by the run loop before the next advance step, and
	// gatherComps runs only on the scheduler goroutine, so one buffer per
	// fleet is safe.
	compScratch []*Job

	// Lifecycle counters, maintained by the event handlers (scheduler
	// goroutine only; the server mutex covers concurrent readers).
	evacuations int
	retries     int
	failedJobs  int

	arrivals eventHeap // router-level events; machine events live on shards
	eventSeq int
	now      float64
	pool     *tickPool // live only inside a run() invocation
	lastBusy int       // machine that vetoed the last quiescent batch
	// batches/batchTicksSum count barrier-bound advance steps and the ticks
	// they covered — the denominator and numerator of the mean window the
	// horizon allows, the v2 perf signal the engine2 suite gates on.
	batches       int64
	batchTicksSum int64

	log        eventLog
	totalNodes int
	obs        *Observer
}

// New builds a fleet.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case PolicyBWAP, PolicyFirstTouch, PolicyUniformAll, PolicyUniformWorkers:
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q", cfg.Policy)
	}
	if cfg.Shards > cfg.Machines {
		return nil, fmt.Errorf("fleet: %d shards for %d machines", cfg.Shards, cfg.Machines)
	}
	if cfg.EngineVersion != 1 && cfg.EngineVersion != 2 {
		return nil, fmt.Errorf("fleet: unknown engine version %d (have 1, 2)", cfg.EngineVersion)
	}
	if cfg.EngineVersion >= 2 {
		// The windowed engine opts every machine — including ones a
		// machine-add fault grows later, which inherit cfg.SimCfg — into
		// the latency-feedback fixed-point snap.
		cfg.SimCfg.SnapLatFeedback = true
	}
	router, err := NewRouting(cfg.Routing)
	if err != nil {
		return nil, err
	}
	admission, err := NewAdmissionPolicy(cfg.Admission)
	if err != nil {
		return nil, err
	}
	dt := cfg.SimCfg.DT
	if dt <= 0 {
		dt = 0.1
	}
	f := &Fleet{cfg: cfg, dt: dt, router: router, admission: admission, cache: cfg.Cache}
	if f.cache == nil {
		f.cache = NewTuningCache(cfg.SimCfg, cfg.ProbeWorkScale, cfg.Seed,
			ProbeWorkers(cfg.ProbeWorkers))
	}
	f.log.retain = cfg.LogRetention
	f.workers = cfg.Workers
	if f.workers <= 0 {
		f.workers = min(cfg.Shards, runtime.GOMAXPROCS(0))
	}
	if f.workers > cfg.Shards {
		f.workers = cfg.Shards
	}
	f.log.w = cfg.LogW
	f.obs = cfg.Obs
	if f.obs != nil {
		// A shared cache reports probes from the last fleet to attach; with
		// per-fleet caches (the default) attribution is exact.
		f.cache.SetProbeObserver(f.obs.observeProbe)
	}
	for s := 0; s < cfg.Shards; s++ {
		f.shards = append(f.shards, &shard{id: s, v2: cfg.EngineVersion >= 2})
	}
	for i := 0; i < cfg.Machines; i++ {
		topo := cfg.NewMachine(i)
		if topo == nil {
			return nil, fmt.Errorf("fleet: NewMachine(%d) returned nil", i)
		}
		if err := topo.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: machine %d: %w", i, err)
		}
		simCfg := cfg.SimCfg
		// The fleet's event loop bounds time, not the per-engine MaxTime.
		simCfg.MaxTime = math.Inf(1)
		simCfg.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		m := &machine{
			id:        i,
			shard:     i % cfg.Shards,
			topo:      topo,
			eng:       sim.New(topo, simCfg),
			free:      make([]bool, topo.NumNodes()),
			freeCount: topo.NumNodes(),
		}
		for j := range m.free {
			m.free[j] = true
		}
		f.machines = append(f.machines, m)
		sh := f.shards[m.shard]
		sh.machines = append(sh.machines, m)
		sh.nodes += topo.NumNodes()
		f.totalNodes += topo.NumNodes()
	}
	// The schema record is always line 0, so any consumer can version-gate
	// before touching the rest of the log.
	f.logAppend(-1, Record{T: 0, Type: "schema", Machine: -1, Version: LogSchemaVersion})
	if cfg.Faults != nil {
		evs, err := cfg.Faults.materialize(cfg.Machines, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Pushed in sorted order before any Submit, so the fault events'
		// sequence numbers are a pure function of the plan — a replay with
		// the same plan regenerates them exactly.
		for _, fe := range evs {
			f.push(fe.t, fe.kind, nil, fe.mach)
		}
	}
	return f, nil
}

// Now returns the fleet's simulated time.
func (f *Fleet) Now() float64 { return f.now }

// Jobs returns every submitted job, by ID order.
func (f *Fleet) Jobs() []*Job { return f.jobs }

// Job returns the job with the given 1-based ID, or nil.
func (f *Fleet) Job(id int) *Job {
	if id < 1 || id > len(f.jobs) {
		return nil
	}
	return f.jobs[id-1]
}

// Cache returns the fleet's tuning cache.
func (f *Fleet) Cache() *TuningCache { return f.cache }

// LogBytes returns the merged JSONL event log accumulated so far: the
// interleave of every shard's record stream in global sequence order
// (sequence numbers are assigned under the scheduler, so the merge is
// total and independent of shard and worker counts). With
// Config.LogRetention > 0 only the most recent records are returned (the
// schema record trims away once the bound bites); with LogRetention < 0
// the mirror is disabled and LogBytes returns nil — stream via
// Config.LogW when a bounded-memory run still needs the full log.
func (f *Fleet) LogBytes() []byte { return f.log.buf.Bytes() }

// pendingEvents counts scheduled events across the arrival heap and every
// shard heap.
func (f *Fleet) pendingEvents() int {
	n := f.arrivals.Len()
	for _, s := range f.shards {
		n += s.events.Len()
	}
	return n
}

// push schedules an event: router-level kinds (arrivals, retries,
// machine-adds) on the arrival heap, machine-scoped kinds (completions,
// retunes, crashes, drains, recoveries) on the owning machine's shard
// heap. The shard is computed as mach mod shards — the machine→shard
// assignment rule — rather than looked up, so a FaultPlan may target a
// machine a scheduled machine-add has not created yet. The sequence
// counter is global, so the cross-heap pop order is the exact order a
// single heap would produce.
func (f *Fleet) push(t float64, kind eventKind, job *Job, mach int) {
	f.eventSeq++
	ev := &event{t: t, kind: kind, seq: f.eventSeq, job: job, mach: mach}
	switch kind {
	case evArrive, evRetry, evMachineAdd:
		heap.Push(&f.arrivals, ev)
	default:
		heap.Push(&f.shards[mach%len(f.shards)].events, ev)
	}
}

// peekNext returns the globally next event by (t, kind, seq) without
// popping it, scanning the arrival heap and every shard heap top.
func (f *Fleet) peekNext() (*event, *eventHeap) {
	var best *event
	var from *eventHeap
	consider := func(h *eventHeap) {
		if h.Len() == 0 {
			return
		}
		ev := (*h)[0]
		if best == nil || eventLess(ev, best) {
			best, from = ev, h
		}
	}
	consider(&f.arrivals)
	for _, s := range f.shards {
		consider(&s.events)
	}
	return best, from
}

// Submit schedules one job arrival at time at (>= Now). Workers must fit
// on at least one machine or the job could never run.
func (f *Fleet) Submit(spec workload.Spec, workers int, workScale, at float64) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if workScale <= 0 {
		return nil, fmt.Errorf("fleet: work scale %g must be positive", workScale)
	}
	if at < f.now {
		return nil, fmt.Errorf("fleet: arrival %.3f is in the past (now %.3f)", at, f.now)
	}
	fits := false
	for _, m := range f.machines {
		if workers >= 1 && workers <= m.topo.NumNodes() {
			fits = true
			break
		}
	}
	if !fits {
		return nil, fmt.Errorf("fleet: no machine has %d nodes", workers)
	}
	if f.cfg.MaxQueue > 0 && len(f.queue) >= f.cfg.MaxQueue {
		return nil, fmt.Errorf("%w (%d jobs waiting, max %d)", ErrQueueFull, len(f.queue), f.cfg.MaxQueue)
	}
	job := &Job{
		ID: len(f.jobs) + 1, Spec: spec, Workers: workers, WorkScale: workScale,
		Arrival: at, State: JobPending, Machine: -1, remFrac: 1,
	}
	h := fnv.New64a()
	h.Write([]byte(spec.Signature()))
	job.sigHash = h.Sum64()
	f.jobs = append(f.jobs, job)
	f.push(at, evArrive, job, -1)
	f.prefetch(job)
	return job, nil
}

// prefetch hints the tuning cache's probe pool with the key this job's
// admission would demand if it were placed right now: the bestFit machine
// (the same read-only rule routing and admission compose to) and its
// current co-runner count. The prediction may be wrong — churn between
// the hint and the admission changes the co-runner count — in which case
// the hinted key is simply never consumed and the admission probes its
// real key inline, exactly as an unhinted run would; a hint can therefore
// never perturb the demand sequence, only overlap probe work with the
// scheduler. Cheap when wrong, free when the key is already cached.
func (f *Fleet) prefetch(job *Job) {
	if f.cfg.Policy != PolicyBWAP {
		return
	}
	if m := bestFit(f.machines, job.Workers); m != nil {
		f.cache.Prefetch(m.topo, job.Spec, job.Workers, len(m.active))
	}
}

// StreamSpec is one workload class of a job stream: a spec, an arrival
// process and a per-job shape.
type StreamSpec struct {
	// Workload is the job's (unscaled) spec.
	Workload workload.Spec
	// Arrival generates this class's submission times.
	Arrival workload.ArrivalSpec
	// Workers is the per-job NUMA-node demand.
	Workers int
	// WorkScale scales each job's work volume (default 1).
	WorkScale float64
}

// SubmitStream materializes every class's arrival process (seeded from the
// fleet seed and the class index) and submits the merged job stream. Jobs
// are numbered in global arrival order, ties broken by class order.
func (f *Fleet) SubmitStream(streams []StreamSpec) error {
	type pending struct {
		at    float64
		class int
		s     *StreamSpec
	}
	var all []pending
	for ci := range streams {
		s := &streams[ci]
		times, err := s.Arrival.Times(f.cfg.Seed + uint64(ci)*1_000_003)
		if err != nil {
			return fmt.Errorf("fleet: stream %d (%s): %w", ci, s.Workload.Name, err)
		}
		for _, at := range times {
			all = append(all, pending{at: at, class: ci, s: s})
		}
	}
	// Stable merge: arrival time, then class index. Insertion sort keeps
	// it dependency-free; streams are short relative to simulation work.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].at < all[j-1].at ||
			(all[j].at == all[j-1].at && all[j].class < all[j-1].class)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for _, p := range all {
		ws := p.s.WorkScale
		if ws <= 0 {
			ws = 1
		}
		if _, err := f.Submit(p.s.Workload, p.s.Workers, ws, p.at); err != nil {
			return err
		}
	}
	return nil
}

// Run processes the whole submitted stream to completion and returns the
// final statistics. Before returning it waits out any probe prefetches
// still in flight (mispredicted hints no admission consumed), so a
// drained fleet leaves no background goroutine behind.
func (f *Fleet) Run() (*Stats, error) {
	defer f.cache.Quiesce()
	if err := f.run(math.Inf(1), true); err != nil {
		return nil, err
	}
	if err := f.log.Err(); err != nil {
		return nil, err
	}
	return f.Stats(), nil
}

// Advance moves simulated time forward by d seconds, handling every event
// that falls due — the daemon's clock driver.
func (f *Fleet) Advance(d float64) error {
	if d < 0 {
		return fmt.Errorf("fleet: negative advance %g", d)
	}
	return f.run(f.now+d, false)
}

// ProcessDue handles events due at the current time without advancing the
// clock — how a daemon admits a just-submitted job synchronously.
func (f *Fleet) ProcessDue() error { return f.run(f.now, false) }

// eps returns the tolerance for clock comparisons: events bind to the
// first tick boundary at or after their timestamp, so an event is due only
// once the clock has actually reached it (modulo float accumulation
// drift). Binding forward means a job is never logged as admitted before
// its own arrival. Log timestamps are still not globally monotone:
// completion records carry interpolated sub-tick finish times, so one may
// trail an admit bound to the next tick boundary by up to one tick —
// consumers needing exact order must sort by Seq, which is dense and
// causal.
func (f *Fleet) eps() float64 { return f.dt * 1e-6 }

// run is the event loop. In drain mode it runs until no events remain and
// no job is running (error if MaxSimTime is hit first); otherwise it stops
// once the clock reaches target. The tick worker pool, if the advance
// path needs one, lives exactly as long as this invocation.
func (f *Fleet) run(target float64, drain bool) error {
	defer f.stopPool()
	for {
		// Handle everything due at the current tick, in global heap order.
		if ev, from := f.peekNext(); ev != nil && ev.t <= f.now+f.eps() {
			heap.Pop(from)
			if err := f.handle(ev); err != nil {
				return err
			}
			continue
		}
		next := target
		if ev, _ := f.peekNext(); ev != nil && ev.t < next {
			next = ev.t
		}
		// MaxSimTime is a drain guard only: a daemon-driven Advance keeps
		// its virtual clock running indefinitely.
		if drain {
			if f.pendingEvents() == 0 {
				if f.running == 0 {
					if len(f.queue) > 0 {
						// Nothing runs, nothing is scheduled, yet jobs wait:
						// no future completion or recovery can ever admit
						// them (e.g. every machine they could route to is
						// down for good). Fail fast instead of grinding the
						// clock to MaxSimTime.
						return fmt.Errorf("fleet: %d jobs stranded in queue with no pending events (%d/%d machines up)",
							len(f.queue), f.machinesUp(), len(f.machines))
					}
					return nil
				}
				next = f.cfg.MaxSimTime
			}
			if next > f.cfg.MaxSimTime {
				next = f.cfg.MaxSimTime
			}
		}
		if f.now+f.eps() >= next {
			if !drain {
				return nil
			}
			return fmt.Errorf("fleet: MaxSimTime %.0f exceeded with %d running and %d queued jobs",
				f.cfg.MaxSimTime, f.running, len(f.queue))
		}
		for _, j := range f.advanceTo(next) {
			f.push(j.app.FinishTime(), evComplete, j, j.Machine)
		}
	}
}

// minQuiescentBatch is the smallest quiescent window worth advancing as
// one barrier-free batch; anything shorter runs through the normal
// per-tick loop (whose engine-level solve memoization already makes those
// ticks cheap).
const minQuiescentBatch = 4

// quiescentBatch returns how many ticks the next advance step may cover:
// 1 — a normal barrier-bound tick — unless every machine in the fleet is
// quiescent with a known horizon, in which case the whole provably
// event-free window (capped so the clock stays strictly below t) advances
// as one batch. Idle machines (zero placed apps) are quiescent with an
// unbounded horizon once their latency feedback settles, so a mostly-idle
// fleet stops grinding per-tick barriers entirely — the fix for the
// negative shard scaling BENCH_3 measured.
func (f *Fleet) quiescentBatch(t float64) int {
	rt := (t - f.now) / f.dt
	if !(rt < 1<<40) {
		rt = 1 << 40
	}
	k := int(rt) - 1 // strictly below t: the tail ticks use the exact clock test
	if k < minQuiescentBatch {
		return 1
	}
	// Probe the machine that vetoed the last batch first: in a busy fleet
	// it is almost always still non-quiescent, so the common per-tick cost
	// of this scan is one machine's check, not the whole fleet's.
	if b := f.lastBusy; b < len(f.machines) {
		q := f.machines[b].eng.QuiescentTicks(k)
		if q < minQuiescentBatch {
			return 1
		}
		if q < k {
			k = q
		}
	}
	for i, m := range f.machines {
		if i == f.lastBusy {
			continue
		}
		q := m.eng.QuiescentTicks(k)
		if q < minQuiescentBatch {
			f.lastBusy = i
			return 1
		}
		if q < k {
			k = q
		}
	}
	return k
}

// batchTicks sizes the next barrier-free advance step for the configured
// engine: v1 batches only provably quiescent windows, v2 free-runs to the
// conservative-lookahead horizon.
func (f *Fleet) batchTicks(t float64) int {
	k := 0
	if f.cfg.EngineVersion >= 2 {
		k = f.lookaheadWindow(t)
	} else {
		k = f.quiescentBatch(t)
	}
	f.batches++
	f.batchTicksSum += int64(k)
	return k
}

// lookaheadWindow is the engine-v2 window sizer: the number of ticks the
// shards may free-run without any barrier, capped so the clock stays
// strictly below t (the next scheduled event already on a heap) and below
// every machine's completion horizon (the only event kind that emerges
// from inside an engine rather than from a heap; see
// sim.CompletionHorizonTicks for the demand-bound proof). Unlike
// quiescentBatch this does not require quiescence — solves, phase
// changes and init bursts may all happen inside the window — so a busy
// fleet pays one barrier per emergent event instead of one per tick. The
// window size is a pure function of global fleet state, identical for
// every shard and worker count, which keeps the merged log invariant.
func (f *Fleet) lookaheadWindow(t float64) int {
	rt := (t - f.now) / f.dt
	if !(rt < 1<<40) {
		rt = 1 << 40
	}
	k := int(rt) - 1 // strictly below t: the tail ticks use the exact clock test
	if k < 1 {
		return 1
	}
	for _, m := range f.machines {
		if h := m.eng.CompletionHorizonTicks(k); h < k {
			if h < 1 {
				return 1
			}
			k = h
		}
	}
	return k
}

// advanceTo ticks every shard in lockstep until the clock reaches t,
// stopping at the first tick in which any job completes; the newly
// completed jobs are returned so the loop can turn them into events. With
// more than one shard and worker the shards advance concurrently under
// the per-tick barrier; the serial path is the single-worker degenerate
// case of the same loop. Quiescent windows — every machine event-free
// with a known horizon — advance as single batches that skip the
// per-tick barrier (see quiescentBatch).
func (f *Fleet) advanceTo(t float64) []*Job {
	var comps []*Job
	if f.workers > 1 && len(f.shards) > 1 {
		comps = f.advanceParallel(t)
	} else {
		comps = f.advanceSerial(t)
	}
	// Shards mirror the lockstep clock for their stats snapshots.
	for _, s := range f.shards {
		s.now = f.now
	}
	return comps
}

// handle dispatches one event.
func (f *Fleet) handle(ev *event) error {
	switch ev.kind {
	case evArrive:
		job := ev.job
		job.State = JobQueued
		f.logAppend(-1, Record{T: job.Arrival, Type: "arrive", Job: job.ID, Machine: -1,
			Workload: job.Spec.Name, Workers: job.Workers, WorkScale: job.WorkScale})
		// Re-hint with the fleet's current state: the submit-time prediction
		// was made before any placements, so arrival time is where queued
		// bursts get accurate (machine, co-runner) keys into the pool.
		f.prefetch(job)
		admitted, err := f.tryAdmit(job)
		if err != nil {
			return err
		}
		if !admitted {
			f.enqueue(job)
			f.logAppend(-1, Record{T: job.Arrival, Type: "queue", Job: job.ID, Machine: -1, Workload: job.Spec.Name})
		}
		return nil

	case evComplete:
		return f.complete(ev.job)

	case evRetune:
		return f.retune(f.machines[ev.mach])

	case evRetry:
		return f.retryJob(ev.job)

	case evMachineAdd:
		return f.addMachine()

	case evCrash, evDrain, evRecover:
		// FaultPlan targets may reference machines a machine-add creates
		// later; firing before the add is a plan bug, surfaced here.
		m, err := f.machineByID(ev.mach)
		if err != nil {
			return fmt.Errorf("fleet: %s event at %.3f: %w", ev.kind, ev.t, err)
		}
		switch ev.kind {
		case evCrash:
			return f.crashMachine(m)
		case evDrain:
			return f.drainMachine(m)
		default:
			return f.recoverMachine(m)
		}
	}
	return fmt.Errorf("fleet: unknown event kind %d", ev.kind)
}

// logAppend writes one record to the merged log, attributing it to a
// shard (-1 = router-level records: arrive, queue).
func (f *Fleet) logAppend(shardID int, rec Record) {
	f.log.append(rec)
	if shardID >= 0 {
		f.shards[shardID].records++
	}
	if f.obs != nil {
		f.obs.record(rec)
	}
}

// bestFit is THE machine-selection rule: the most-free up machine that
// fits the worker demand, ties to the earliest in the slice (= lowest id,
// as every machine list is id-ascending). Drained and crashed machines are
// invisible — that single check is how every admission path honors the
// lifecycle state. The least-loaded router and the shard-level admission
// both call it, which is what makes their composition pick the same
// machine for any shard partition — the replay-equivalence tests depend on
// this staying a single function.
func bestFit(ms []*machine, workers int) *machine {
	var best *machine
	for _, m := range ms {
		if m.state == machineUp && m.freeCount >= workers && (best == nil || m.freeCount > best.freeCount) {
			best = m
		}
	}
	return best
}

// tryAdmit asks the router for a shard, then admits within it: the
// shard's bestFit machine takes the job, with the admission policy
// picking the node set. False means no capacity on the routed shard (or
// nowhere, for the least-loaded router).
func (f *Fleet) tryAdmit(job *Job) (bool, error) {
	si := f.router.route(f, job)
	if si < 0 {
		return false, nil
	}
	s := f.shards[si]
	best := bestFit(s.machines, job.Workers)
	if best == nil {
		return false, nil
	}
	nodes, err := f.admission.PickNodes(best.topo, best.freeNodes(), job)
	if err != nil {
		return false, err
	}
	if len(nodes) != job.Workers {
		return false, fmt.Errorf("fleet: admission policy %s picked %d nodes for a %d-worker job",
			f.admission.Name(), len(nodes), job.Workers)
	}
	if err := best.claim(nodes); err != nil {
		return false, err
	}
	return true, f.place(job, best, nodes)
}

// place admits the job onto machine m with the chosen nodes: builds the
// policy's placer (consulting the tuning cache under bwap), registers the
// app and performs the initial placement.
func (f *Fleet) place(job *Job, m *machine, nodes []topology.NodeID) error {
	s := f.shards[m.shard]
	coRunners := len(m.active)

	var placer sim.Placer
	var dwp float64
	var hitPtr *bool
	switch f.cfg.Policy {
	case PolicyFirstTouch:
		placer = policy.FirstTouch{}
	case PolicyUniformAll:
		placer = policy.UniformAll{}
	case PolicyUniformWorkers:
		placer = policy.UniformWorkers{}
	case PolicyBWAP:
		var hit bool
		var err error
		dwp, hit, err = f.cache.DWP(m.topo, job.Spec, job.Workers, coRunners)
		if err != nil {
			m.release(nodes)
			return err
		}
		if hit {
			s.cacheHits++
		} else {
			s.cacheMisses++
		}
		job.CacheHit = hit
		hitPtr = &hit
		placer = core.StaticDWP{
			Canonical: f.cache.Canonical(m.topo),
			DWP:       dwp,
			UserLevel: true,
			Label:     "fleet-bwap",
		}
	}

	name := fmt.Sprintf("job-%d", job.ID)
	app, err := m.eng.AddApp(name, job.Spec.Scaled(job.WorkScale*job.remFrac), nodes, placer)
	if err != nil {
		m.release(nodes)
		return fmt.Errorf("fleet: admitting job %d: %w", job.ID, err)
	}
	if err := m.eng.PlaceApp(app); err != nil {
		// Deregister the half-admitted app so a later retry of this job
		// does not collide with its name.
		m.eng.RemoveApp(app) //nolint:errcheck // best-effort unwind
		m.release(nodes)
		return fmt.Errorf("fleet: placing job %d: %w", job.ID, err)
	}

	job.State = JobRunning
	job.Machine = m.id
	job.Nodes = nodes
	job.Admit = f.now
	job.app = app
	m.active = append(m.active, job)
	f.running++
	s.admitted++

	rec := Record{T: f.now, Type: "admit", Job: job.ID, Machine: m.id,
		Workload: job.Spec.Name, Nodes: nodeInts(nodes), CacheHit: hitPtr}
	if f.cfg.Policy == PolicyBWAP {
		rec.DWP = &dwp
	}
	f.logAppend(m.shard, rec)
	f.scheduleRetune(m)
	return nil
}

// complete handles a job departure: frees its nodes, detaches its app from
// the engine, and backfills the queue.
func (f *Fleet) complete(job *Job) error {
	m := f.machines[job.Machine]
	s := f.shards[m.shard]
	job.State = JobDone
	job.Finish = job.app.FinishTime()
	m.release(job.Nodes)
	if err := m.eng.RemoveApp(job.app); err != nil {
		return fmt.Errorf("fleet: completing job %d: %w", job.ID, err)
	}
	for i, j := range m.active {
		if j == job {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	f.running--
	s.completed++
	f.logAppend(m.shard, Record{T: job.Finish, Type: "complete", Job: job.ID, Machine: m.id,
		Workload: job.Spec.Name, Elapsed: job.Finish - job.Admit})
	if f.obs != nil {
		// Completion is a deterministic point of the record stream, so
		// sampling the engine fixed point here is shard-invariant.
		f.obs.observeEngine(m.eng)
	}
	f.scheduleRetune(m)
	return f.backfill()
}

// scheduleRetune arranges a coalesced retune of machine m's surviving jobs
// shortly after churn (bwap policy only).
func (f *Fleet) scheduleRetune(m *machine) {
	if f.cfg.Policy != PolicyBWAP || f.cfg.RetuneDelay < 0 || m.retunePending ||
		len(m.active) == 0 || m.state != machineUp {
		return
	}
	m.retunePending = true
	f.push(f.now+f.cfg.RetuneDelay, evRetune, nil, m.id)
}

// retune re-places every running job on m for its current co-runner count,
// migrating pages toward the cached placement for the new mix.
func (f *Fleet) retune(m *machine) error {
	m.retunePending = false
	// A retune scheduled before a drain/crash may fire while the machine is
	// down; the survivors (if any) are only jobs already completing.
	if len(m.active) == 0 || m.state != machineUp {
		return nil
	}
	// The retune keys are exact (same machine, co-runner count fixed for
	// the whole sweep), so hint them all before the serial consumption
	// loop: a cold retune of n distinct signatures runs its probes
	// pool-wide instead of one by one.
	for _, job := range m.active {
		f.cache.Prefetch(m.topo, job.Spec, job.Workers, len(m.active)-1)
	}
	s := f.shards[m.shard]
	jobs := make([]int, 0, len(m.active))
	for _, job := range m.active {
		dwp, hit, err := f.cache.DWP(m.topo, job.Spec, job.Workers, len(m.active)-1)
		if err != nil {
			return fmt.Errorf("fleet: retuning job %d: %w", job.ID, err)
		}
		if hit {
			s.cacheHits++
		} else {
			s.cacheMisses++
		}
		canonical, err := f.cache.Canonical(m.topo).Weights(job.Nodes)
		if err != nil {
			return fmt.Errorf("fleet: retuning job %d: %w", job.ID, err)
		}
		w, err := core.DWPWeights(canonical, job.Nodes, dwp)
		if err != nil {
			return fmt.Errorf("fleet: retuning job %d: %w", job.ID, err)
		}
		if err := core.ApplyWeights(job.app.AS, w, true); err != nil {
			return fmt.Errorf("fleet: retuning job %d: %w", job.ID, err)
		}
		jobs = append(jobs, job.ID)
	}
	s.retunes++
	f.logAppend(m.shard, Record{T: f.now, Type: "retune", Machine: m.id, Jobs: jobs})
	return nil
}

func nodeInts(nodes []topology.NodeID) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}
