package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bwap/internal/workload"
)

// Server exposes a Fleet over HTTP — the bwapd daemon. The fleet itself is
// single-threaded; the server serializes all access behind one mutex, so
// concurrent submissions are safe and admission (including any tuning-
// cache probe) happens synchronously inside the POST. Simulated time is
// decoupled from wall time: a background driver advances the clock at
// SimRate simulated seconds per wall second while jobs are outstanding and
// freezes it when the fleet is idle.
//
// Endpoints:
//
//	POST /submit  {"workload":"SC","workers":2,"work_scale":0.05,"count":1}
//	              → {"ids":[1],"cache_hits":[false]}; "spec" may replace
//	              "workload" with a full custom spec object
//	GET  /status?id=N → one job
//	GET  /jobs        → every job
//	GET  /fleet       → Stats
//	GET  /shards      → per-shard ShardStat slice
//	GET  /machines    → per-machine MachineView slice
//	POST /drain?machine=N   → gracefully evacuate machine N (409 if not up)
//	POST /recover?machine=N → bring machine N back up (409 if already up)
//	GET  /log         → the merged JSONL event log
//	GET  /metrics     → Prometheus text exposition (404 without an observer)
//	GET  /timeline?window=W → windowed telemetry series as JSON
//	GET  /healthz     → 200 ok
//
// Every endpoint accepts exactly its listed method (GET endpoints also
// take HEAD); anything else is 405 with an Allow header.
type Server struct {
	mu    sync.Mutex
	fleet *Fleet
	// Log receives structured warnings (e.g. a background-driver failure);
	// nil falls back to slog.Default().
	Log *slog.Logger
	// driveErr is the first error the background driver hit; it is
	// reported by /healthz (503) and /fleet, since the driver itself has
	// no requester to fail.
	driveErr error

	// SimRate is simulated seconds advanced per wall second (default 100).
	SimRate float64
	// Tick is the wall interval of the background driver (default 10 ms).
	Tick time.Duration

	// lifeMu serializes Start/Stop end to end (including Stop's wait for
	// the driver to exit), so a Start racing an in-progress Stop cannot
	// spawn a second driver before the old one has observed its closed
	// stop channel. It is never taken by the driver itself, so holding it
	// across the done-wait cannot deadlock. stop/done belong to the
	// current driver goroutine and are additionally guarded by mu.
	lifeMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewServer wraps a fleet.
func NewServer(f *Fleet) *Server {
	return &Server{fleet: f, SimRate: 100, Tick: 10 * time.Millisecond}
}

// Start launches the background clock driver. Safe to call concurrently
// with Stop; at most one driver runs at any instant.
func (s *Server) Start() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.drive(s.stop, s.done)
}

// Stop halts the clock driver and waits for it to exit. Safe to call
// concurrently with Start; exactly one caller tears down each driver, and
// the driver is fully gone before a subsequent Start can launch another.
func (s *Server) Stop() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	// With the driver gone no new prefetch can be kicked; waiting out the
	// in-flight ones leaves the cache at rest, so a post-Stop snapshot
	// (bwapd's -cache-file save) sees only consumed, demand-attested
	// entries and tests sequenced after Stop see no stray goroutines.
	s.fleet.Cache().Quiesce()
}

// drive owns the channels it was started with rather than reading them
// from the struct, so a concurrent Stop+Start pair can never swap them
// under the running goroutine.
func (s *Server) drive(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(s.Tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.mu.Lock()
			// Freeze virtual time while idle: an empty daemon stays at a
			// reproducible clock instead of burning ticks.
			busy := s.fleet.running > 0 || s.fleet.pendingEvents() > 0
			var failed error
			if busy {
				if err := s.fleet.Advance(s.SimRate * s.Tick.Seconds()); err != nil && s.driveErr == nil {
					s.driveErr = err
					failed = err
				}
			}
			now := s.fleet.Now()
			s.mu.Unlock()
			// Log off the lock: slog writes to stderr, and every request
			// handler contends on s.mu.
			if failed != nil {
				s.logger().Warn("background driver failed; clock frozen",
					"err", failed, "sim_time", now)
			}
		}
	}
}

// submitRequest is the POST /submit body.
type submitRequest struct {
	// Workload names a built-in benchmark (SC, OC, ON, SP.B, FT.C).
	Workload string `json:"workload,omitempty"`
	// Spec is a full custom workload spec; overrides Workload.
	Spec *workload.Spec `json:"spec,omitempty"`
	// Workers is the per-job NUMA-node demand (default 1).
	Workers int `json:"workers,omitempty"`
	// WorkScale scales the spec's work volume (default 1).
	WorkScale float64 `json:"work_scale,omitempty"`
	// Count submits that many identical jobs (default 1).
	Count int `json:"count,omitempty"`
}

// submitResponse reports every job the batch put into the fleet. On a
// mid-batch failure the response carries the partial IDs and cache flags
// alongside the error — including the job whose own admission failed, if
// it was submitted: those jobs exist in the fleet, so dropping their IDs
// would strand the client.
type submitResponse struct {
	IDs       []int   `json:"ids"`
	CacheHits []bool  `json:"cache_hits"`
	SimTime   float64 `json:"sim_time"`
	Error     string  `json:"error,omitempty"`
}

// jobView is the JSON shape of one job.
type jobView struct {
	ID        int     `json:"id"`
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	State     string  `json:"state"`
	Machine   int     `json:"machine"`
	Nodes     []int   `json:"nodes,omitempty"`
	Arrival   float64 `json:"arrival"`
	Admit     float64 `json:"admit"`
	Finish    float64 `json:"finish"`
	CacheHit  bool    `json:"cache_hit"`
	WorkScale float64 `json:"work_scale"`
	Attempts  int     `json:"attempts,omitempty"`
}

func viewOf(j *Job) jobView {
	v := jobView{
		ID: j.ID, Workload: j.Spec.Name, Workers: j.Workers,
		State: j.State.String(), Machine: j.Machine,
		Arrival: j.Arrival, Admit: j.Admit, Finish: j.Finish,
		CacheHit: j.CacheHit, WorkScale: j.WorkScale, Attempts: j.Attempts,
	}
	for _, n := range j.Nodes {
		v.Nodes = append(v.Nodes, int(n))
	}
	return v
}

// logger returns the server's structured logger (slog.Default when unset).
func (s *Server) logger() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return slog.Default()
}

// methods wraps h so only the allowed method is accepted (GET endpoints
// also take HEAD — net/http suppresses the body); anything else is 405
// with an Allow header, per RFC 9110.
func methods(allow string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != allow && !(allow == http.MethodGet && r.Method == http.MethodHead) {
			w.Header().Set("Allow", allow)
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%s only", allow))
			return
		}
		h(w, r)
	}
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", methods(http.MethodPost, s.handleSubmit))
	mux.HandleFunc("/status", methods(http.MethodGet, s.handleStatus))
	mux.HandleFunc("/jobs", methods(http.MethodGet, s.handleJobs))
	mux.HandleFunc("/fleet", methods(http.MethodGet, s.handleFleet))
	mux.HandleFunc("/shards", methods(http.MethodGet, s.handleShards))
	mux.HandleFunc("/machines", methods(http.MethodGet, s.handleMachines))
	mux.HandleFunc("/drain", methods(http.MethodPost, s.handleDrain))
	mux.HandleFunc("/recover", methods(http.MethodPost, s.handleRecover))
	mux.HandleFunc("/log", methods(http.MethodGet, s.handleLog))
	mux.HandleFunc("/metrics", methods(http.MethodGet, s.handleMetrics))
	mux.HandleFunc("/timeline", methods(http.MethodGet, s.handleTimeline))
	mux.HandleFunc("/healthz", methods(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		err := s.driveErr
		s.mu.Unlock()
		if err != nil {
			http.Error(w, "driver failed: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	var spec workload.Spec
	switch {
	case req.Spec != nil:
		spec = *req.Spec
	case req.Workload != "":
		var err error
		spec, err = workload.ByName(req.Workload)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need workload or spec"))
		return
	}
	// Zero means "default"; negatives are requests for something impossible
	// and rejecting them beats silently running a different job than asked.
	if req.Workers < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Workers))
		return
	}
	if req.WorkScale < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("negative work_scale %g", req.WorkScale))
		return
	}
	if req.Count < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("negative count %d", req.Count))
		return
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.WorkScale == 0 {
		req.WorkScale = 1
	}
	if req.Count == 0 {
		req.Count = 1
	}

	// The batch runs under the mutex; the response write happens after it
	// is released, so a stalled client cannot wedge the fleet (mid-batch
	// errors carry the already-admitted IDs and cache flags along).
	status := http.StatusOK
	resp := submitResponse{IDs: []int{}, CacheHits: []bool{}}
	s.mu.Lock()
	for i := 0; i < req.Count; i++ {
		job, err := s.fleet.Submit(spec, req.Workers, req.WorkScale, s.fleet.Now())
		if err != nil {
			// Backpressure is transient and retryable; invalid input is not.
			status = http.StatusBadRequest
			if errors.Is(err, ErrQueueFull) {
				status = http.StatusTooManyRequests
			}
			resp.Error = err.Error()
			break
		}
		// The job is in the fleet from here on, so its ID rides in the
		// response even if its own admission below fails.
		resp.IDs = append(resp.IDs, job.ID)
		// Admit synchronously: the arrival is due now, so ProcessDue runs
		// placement — and on a cache hit the probe is skipped, which is
		// the repeat-job latency win the cache exists for.
		procErr := s.fleet.ProcessDue()
		resp.CacheHits = append(resp.CacheHits, job.CacheHit)
		if procErr != nil {
			status = http.StatusInternalServerError
			resp.Error = procErr.Error()
			break
		}
	}
	resp.SimTime = s.fleet.Now()
	s.mu.Unlock()
	writeJSON(w, status, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	s.mu.Lock()
	job := s.fleet.Job(id)
	var view jobView
	if job != nil {
		view = viewOf(job)
	}
	s.mu.Unlock()
	if job == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.fleet.Jobs()))
	for _, j := range s.fleet.Jobs() {
		views = append(views, viewOf(j))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := struct {
		*Stats
		DriverError string `json:"driver_error,omitempty"`
	}{Stats: s.fleet.Stats()}
	if s.driveErr != nil {
		resp.DriverError = s.driveErr.Error()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stats := s.fleet.ShardStats()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := s.fleet.Machines()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

// lifecycleOp parses the machine parameter and runs op under the fleet
// mutex — the shared shape of /drain and /recover. A state conflict
// (draining a down machine, recovering an up one) maps to 409, an unknown
// machine to 404, and success returns the machine's new view.
func (s *Server) lifecycleOp(w http.ResponseWriter, r *http.Request, op func(int) error) {
	id, err := strconv.Atoi(r.URL.Query().Get("machine"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad machine: %w", err))
		return
	}
	s.mu.Lock()
	if _, err := s.fleet.machineByID(id); err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := op(id); err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, err)
		return
	}
	view := s.fleet.Machines()[id]
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.lifecycleOp(w, r, s.fleet.Drain)
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	s.lifecycleOp(w, r, s.fleet.Recover)
}

func (s *Server) handleLog(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	data := append([]byte(nil), s.fleet.LogBytes()...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data) //nolint:errcheck // client went away
}

// handleMetrics renders the telemetry registry as Prometheus text
// exposition format 0.0.4. Only the gauge sync — the one step that reads
// fleet state — runs under the server mutex; the registry render and the
// client write happen outside it (behind the observer's own lock), so a
// slow scraper or a large exposition cannot stall the simulation driver.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	o := s.fleet.Observer()
	if o == nil {
		writeErr(w, http.StatusNotFound, ErrNoObserver)
		return
	}
	s.mu.Lock()
	o.syncGauges(s.fleet)
	s.mu.Unlock()
	var b bytes.Buffer
	if err := o.WriteMetrics(&b); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes()) //nolint:errcheck // client went away
}

// handleTimeline renders the windowed telemetry series; ?window=W merges
// base windows up to roughly W simulated seconds each.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var window float64
	if q := r.URL.Query().Get("window"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad window %q", q))
			return
		}
		window = v
	}
	o := s.fleet.Observer()
	if o == nil {
		writeErr(w, http.StatusNotFound, ErrNoObserver)
		return
	}
	// Only the clock capture needs the fleet; the series render runs off
	// the server mutex, behind the observer's own lock.
	s.mu.Lock()
	o.SyncSimTime(s.fleet)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, o.TimelineSnapshot(window))
}
