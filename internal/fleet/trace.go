package fleet

import (
	"fmt"

	"bwap/internal/workload"
)

// ReadTrace parses a merged JSONL event log back into the job stream that
// produced it: one trace-driven StreamSpec per distinct (workload, workers,
// work-scale) class, arrivals replayed at their recorded timestamps. This
// closes the replay loop — the fleet's own write-only log becomes an input:
//
//	recs → one class per job shape → workload.TraceArrival(recorded times)
//
// resolve maps a workload name from the log to its full spec; nil selects
// workload.ByName (the built-in benchmarks). For replay equivalence the
// resolver must return a spec whose Signature matches the recorded job's —
// the log stores only the name, so custom specs need a caller-side table.
//
// Classes are emitted in order of first arrival. Because SubmitStream
// orders ties by class index and the log's arrive records are globally
// time-ordered, resubmitting the returned streams into an identically
// configured fleet reproduces the original job numbering and admission
// order (pinned by TestTraceReplayReproducesLog). One caveat: when two
// *different classes* share a bit-exact arrival timestamp, the replay
// breaks the tie by trace class index (first-arrival order), which may
// differ from the recording's original class order — Poisson and jittered
// streams never collide, but same-grid periodic streams can; ties within
// a class always keep their order.
func ReadTrace(data []byte, resolve func(name string) (workload.Spec, error)) ([]StreamSpec, error) {
	if resolve == nil {
		resolve = workload.ByName
	}
	recs, err := DecodeLog(data)
	if err != nil {
		return nil, err
	}
	type class struct {
		name    string
		workers int
		scale   float64
	}
	index := map[class]int{}
	var streams []StreamSpec
	var times [][]float64
	for _, r := range recs {
		if r.Type != "arrive" {
			continue
		}
		if r.Workers <= 0 || r.WorkScale <= 0 {
			return nil, fmt.Errorf("fleet: arrive record for job %d lacks workers/work_scale (log predates trace replay)", r.Job)
		}
		k := class{name: r.Workload, workers: r.Workers, scale: r.WorkScale}
		i, ok := index[k]
		if !ok {
			spec, err := resolve(r.Workload)
			if err != nil {
				return nil, fmt.Errorf("fleet: trace class %q: %w", r.Workload, err)
			}
			i = len(streams)
			index[k] = i
			streams = append(streams, StreamSpec{Workload: spec, Workers: r.Workers, WorkScale: r.WorkScale})
			times = append(times, nil)
		}
		times[i] = append(times[i], r.T)
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("fleet: log contains no arrive records")
	}
	for i := range streams {
		streams[i].Arrival = workload.TraceArrival(times[i])
	}
	return streams, nil
}
