package fleet

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// This file is the hand-rolled JSONL encoder for Record — the event log's
// hot path. eventLog.append used to reflect over the struct through
// json.Marshal, which dominated the sharded-fleet allocation profile
// (~9,900 allocs/op in FleetThroughputSharded); appendRecord writes the
// same bytes into a caller-owned scratch buffer with zero allocations.
//
// The contract is byte-equality with encoding/json: field order follows
// the Record struct, omitempty semantics match reflect's isEmptyValue
// (zero ints/floats/strings and empty slices omitted; Machine has no
// omitempty and is always emitted; nil pointers omitted), floats follow
// the ES6-style shortest form with the e-0X exponent cleanup, and strings
// are HTML-escaped exactly like Marshal's default. FuzzRecordEncode pins
// the equality over randomized records, and the frozen log SHAs pin it
// over every record the fleet actually produces. If a field is ever added
// to Record, this encoder and the fuzz target must grow with it — the
// fuzz corpus fails loudly on a shape mismatch.

// appendRecord appends rec's JSON object (no trailing newline) to dst and
// returns the extended slice. Non-finite floats return an error and dst
// unmodified, mirroring json.Marshal's UnsupportedValueError; every float
// the fleet logs is finite, so the path exists for parity, not use.
func appendRecord(dst []byte, rec *Record) ([]byte, error) {
	for _, f := range [...]float64{rec.T, rec.WorkScale, rec.Elapsed, rec.RetryAt} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return dst, fmt.Errorf("fleet: record %d: unsupported non-finite float %v", rec.Seq, f)
		}
	}
	if rec.DWP != nil && (math.IsNaN(*rec.DWP) || math.IsInf(*rec.DWP, 0)) {
		return dst, fmt.Errorf("fleet: record %d: unsupported non-finite dwp %v", rec.Seq, *rec.DWP)
	}

	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	dst = append(dst, `,"t":`...)
	dst = appendJSONFloat(dst, rec.T)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, rec.Type)
	if rec.Version != 0 {
		dst = append(dst, `,"version":`...)
		dst = strconv.AppendInt(dst, int64(rec.Version), 10)
	}
	if rec.Job != 0 {
		dst = append(dst, `,"job":`...)
		dst = strconv.AppendInt(dst, int64(rec.Job), 10)
	}
	dst = append(dst, `,"machine":`...)
	dst = strconv.AppendInt(dst, int64(rec.Machine), 10)
	if rec.Workload != "" {
		dst = append(dst, `,"workload":`...)
		dst = appendJSONString(dst, rec.Workload)
	}
	if rec.Workers != 0 {
		dst = append(dst, `,"workers":`...)
		dst = strconv.AppendInt(dst, int64(rec.Workers), 10)
	}
	if rec.WorkScale != 0 {
		dst = append(dst, `,"work_scale":`...)
		dst = appendJSONFloat(dst, rec.WorkScale)
	}
	if len(rec.Nodes) != 0 {
		dst = append(dst, `,"nodes":`...)
		dst = appendJSONInts(dst, rec.Nodes)
	}
	if len(rec.Jobs) != 0 {
		dst = append(dst, `,"jobs":`...)
		dst = appendJSONInts(dst, rec.Jobs)
	}
	if rec.DWP != nil {
		dst = append(dst, `,"dwp":`...)
		dst = appendJSONFloat(dst, *rec.DWP)
	}
	if rec.CacheHit != nil {
		if *rec.CacheHit {
			dst = append(dst, `,"cache_hit":true`...)
		} else {
			dst = append(dst, `,"cache_hit":false`...)
		}
	}
	if rec.Elapsed != 0 {
		dst = append(dst, `,"elapsed":`...)
		dst = appendJSONFloat(dst, rec.Elapsed)
	}
	if rec.Attempt != 0 {
		dst = append(dst, `,"attempt":`...)
		dst = strconv.AppendInt(dst, int64(rec.Attempt), 10)
	}
	if rec.RetryAt != 0 {
		dst = append(dst, `,"retry_at":`...)
		dst = appendJSONFloat(dst, rec.RetryAt)
	}
	return append(dst, '}'), nil
}

// appendJSONFloat appends a finite float the way encoding/json does: the
// shortest round-trip form, 'f' format inside [1e-6, 1e21) and 'e'
// outside, with the two-digit negative exponent rewritten e-0X → e-X
// (ES6 number-to-string conversion; see golang.org/issue/6384).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s quoted and escaped exactly like
// json.Marshal's default (HTML-escaping) string encoder: `"`, `\` and
// control bytes escaped (with the \b \f \n \r \t shorthands), `<` `>` `&`
// written as \u00XX, invalid UTF-8 bytes written as the six-byte
// replacement escape (backslash-u-fffd), and the JSONP-hostile
// U+2028/U+2029 escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONInts appends an int slice as a JSON array.
func appendJSONInts(dst []byte, xs []int) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return append(dst, ']')
}
