package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
)

// encodeOne runs the hand-rolled encoder against a fresh buffer.
func encodeOne(t *testing.T, rec Record) []byte {
	t.Helper()
	out, err := appendRecord(nil, &rec)
	if err != nil {
		t.Fatalf("appendRecord: %v", err)
	}
	return out
}

// TestRecordEncodeMatchesMarshal pins the encoder against encoding/json on
// a table of tricky records: every omitempty boundary, both float formats
// and the exponent-cleanup path, HTML escaping, invalid UTF-8 and the
// JSONP line separators.
func TestRecordEncodeMatchesMarshal(t *testing.T) {
	dwp := 0.0
	hit := false
	hit2 := true
	cases := []Record{
		{},
		{Seq: 3, T: 12.5, Type: "arrive", Machine: -1, Workload: "alpha", Workers: 2, WorkScale: 0.1},
		{T: 1e-7, Type: "x", WorkScale: 1e21, Elapsed: 123456789.000001, RetryAt: 2.5e-8},
		{T: -1e-9, WorkScale: -3e21, Elapsed: 5e-324, RetryAt: math.MaxFloat64},
		{Type: "admit", Machine: 4, Nodes: []int{0, 1, 2}, DWP: &dwp, CacheHit: &hit},
		{Type: "retune", Jobs: []int{7}, CacheHit: &hit2, Attempt: 2, RetryAt: 9.75},
		{Type: "schema", Version: LogSchemaVersion},
		{Workload: `quote " back \ slash`},
		{Workload: "ctrl \x00\x01\x1f\b\f\n\r\t end"},
		{Workload: "html <b>&amp;</b>"},
		{Workload: "bad utf8 \xff\xfe ok"},
		{Workload: "seps \u2028 and \u2029"},
		{Workload: "uni 漢字 café"},
	}
	for _, rec := range cases {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", rec, err)
		}
		if got := encodeOne(t, rec); !bytes.Equal(got, want) {
			t.Errorf("encode mismatch for %+v:\n got  %s\n want %s", rec, got, want)
		}
	}
}

// TestRecordEncodeNonFinite checks the error path agrees with Marshal:
// non-finite floats must fail, not emit bytes.
func TestRecordEncodeNonFinite(t *testing.T) {
	inf := math.Inf(1)
	for _, rec := range []Record{
		{T: math.NaN()},
		{WorkScale: math.Inf(-1)},
		{DWP: &inf},
		{Elapsed: math.NaN()},
		{RetryAt: math.Inf(1)},
	} {
		if _, err := json.Marshal(rec); err == nil {
			t.Fatalf("Marshal accepted non-finite %+v", rec)
		}
		if _, err := appendRecord(nil, &rec); err == nil {
			t.Errorf("appendRecord accepted non-finite %+v", rec)
		}
	}
}

// FuzzRecordEncode is the byte-equality contract with encoding/json,
// explored over randomized records (see encode.go). CI replays the corpus
// via plain `go test -run FuzzRecordEncode`.
func FuzzRecordEncode(f *testing.F) {
	f.Add(int(3), 12.5, "arrive", 2, 7, -1, "alpha", 2, 0.1, []byte{0, 1}, []byte{7}, true, 0.0, true, false, 3.25, 1, 40.5)
	f.Add(int(0), 1e-7, "x<>&", 0, 0, 0, "bad \xff \u2028", 0, 1e21, []byte{}, []byte{}, false, -0.0, false, true, 5e-324, 0, -2.5e-8)
	f.Add(int(-9), -3.0, "ctrl\x00\n\t", 0, 0, 4, "quote\"\\", 0, -1e-6, []byte{255}, []byte{128, 2}, true, 1e20, true, true, 0.0, -1, 0.0)
	f.Fuzz(func(t *testing.T, seq int, tt float64, typ string, version, job, machine int,
		wl string, workers int, workScale float64, nodesRaw, jobsRaw []byte,
		hasDWP bool, dwp float64, hasHit, hit bool, elapsed float64, attempt int, retryAt float64) {
		rec := Record{
			Seq: seq, T: tt, Type: typ, Version: version, Job: job, Machine: machine,
			Workload: wl, Workers: workers, WorkScale: workScale,
			Elapsed: elapsed, Attempt: attempt, RetryAt: retryAt,
		}
		for _, b := range nodesRaw {
			rec.Nodes = append(rec.Nodes, int(b)-128)
		}
		for _, b := range jobsRaw {
			rec.Jobs = append(rec.Jobs, int(b))
		}
		if hasDWP {
			rec.DWP = &dwp
		}
		if hasHit {
			rec.CacheHit = &hit
		}
		want, werr := json.Marshal(rec)
		got, gerr := appendRecord(nil, &rec)
		if werr != nil {
			if gerr == nil {
				t.Fatalf("Marshal rejected %+v (%v) but appendRecord accepted: %s", rec, werr, got)
			}
			return
		}
		if gerr != nil {
			t.Fatalf("Marshal accepted %+v but appendRecord failed: %v", rec, gerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch:\n got  %s\n want %s", got, want)
		}
	})
}

// TestLogAppendAllocationFree pins the zero-alloc property of the log hot
// path: with the in-memory mirror disabled, a warmed eventLog appends
// records without heap allocations; with a bounded mirror, the ring and
// buffer reach steady state and stay amortized-free.
func TestLogAppendAllocationFree(t *testing.T) {
	dwp := 0.37
	hit := true
	rec := Record{
		T: 12.5, Type: "admit", Job: 42, Machine: 3, Workload: "alpha",
		Nodes: []int{0, 1, 2, 3}, DWP: &dwp, CacheHit: &hit,
	}
	for name, l := range map[string]*eventLog{
		"no-mirror": {retain: -1, w: io.Discard},
		"retained":  {retain: 64, w: io.Discard},
	} {
		for i := 0; i < 512; i++ {
			l.append(rec) // warm scratch, ring and buffer to steady state
		}
		allocs := testing.AllocsPerRun(200, func() { l.append(rec) })
		if allocs >= 1 {
			t.Errorf("%s: eventLog.append allocates %.1f times per record; want 0", name, allocs)
		}
		if err := l.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLogRetention covers the three retention regimes of the in-memory
// mirror and checks the streaming writer always sees the full log.
func TestLogRetention(t *testing.T) {
	mkRec := func(i int) Record {
		return Record{T: float64(i), Type: "arrive", Job: i, Machine: -1, Workload: "w"}
	}
	var full bytes.Buffer
	ref := &eventLog{w: &full}
	for i := 0; i < 10; i++ {
		ref.append(mkRec(i))
	}
	if !bytes.Equal(ref.buf.Bytes(), full.Bytes()) {
		t.Fatal("retain=0 mirror diverges from the streamed log")
	}
	lines := bytes.SplitAfter(full.Bytes(), []byte("\n"))

	var stream bytes.Buffer
	l := &eventLog{retain: 3, w: &stream}
	for i := 0; i < 10; i++ {
		l.append(mkRec(i))
	}
	if !bytes.Equal(stream.Bytes(), full.Bytes()) {
		t.Fatal("retention must not affect the streaming writer")
	}
	want := bytes.Join(lines[7:10], nil)
	if got := l.buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("retain=3 kept:\n%s\nwant last 3 lines:\n%s", got, want)
	}
	recs, err := DecodeLog(l.buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 7 || recs[2].Seq != 9 {
		t.Fatalf("retained window decoded to %+v", recs)
	}

	var stream2 bytes.Buffer
	off := &eventLog{retain: -1, w: &stream2}
	for i := 0; i < 10; i++ {
		off.append(mkRec(i))
	}
	if off.buf.Len() != 0 {
		t.Fatalf("retain<0 still mirrored %d bytes", off.buf.Len())
	}
	if !bytes.Equal(stream2.Bytes(), full.Bytes()) {
		t.Fatal("retain<0 must still stream every record")
	}
}

// TestFleetLogRetention wires Config.LogRetention end to end: a bounded
// fleet log is exactly the tail of the unbounded one, and a disabled
// mirror still streams to LogW.
func TestFleetLogRetention(t *testing.T) {
	fullFleet, _ := runFleet(t, testConfig(PolicyBWAP, 11), testStreams())
	fullLog := fullFleet.LogBytes()
	fullLines := bytes.SplitAfter(fullLog, []byte("\n"))
	fullLines = fullLines[:len(fullLines)-1] // drop the empty split tail

	cfg := testConfig(PolicyBWAP, 11)
	cfg.LogRetention = 5
	tailFleet, _ := runFleet(t, cfg, testStreams())
	want := bytes.Join(fullLines[len(fullLines)-5:], nil)
	if got := tailFleet.LogBytes(); !bytes.Equal(got, want) {
		t.Fatalf("LogRetention=5 kept:\n%s\nwant:\n%s", got, want)
	}

	var stream bytes.Buffer
	cfg = testConfig(PolicyBWAP, 11)
	cfg.LogRetention = -1
	cfg.LogW = &stream
	offFleet, _ := runFleet(t, cfg, testStreams())
	if n := len(offFleet.LogBytes()); n != 0 {
		t.Fatalf("LogRetention=-1 still mirrored %d bytes", n)
	}
	if !bytes.Equal(stream.Bytes(), fullLog) {
		t.Fatal("LogRetention=-1 must still stream the full log to LogW")
	}
	if strings.Count(stream.String(), "\n") != len(fullLines) {
		t.Fatal("streamed log line count diverged")
	}
}
