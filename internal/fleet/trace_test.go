package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"bwap/internal/workload"
)

// testResolve maps the test workload names back to their specs; ReadTrace
// stores only the name, so custom specs need this caller-side table.
func testResolve(name string) (workload.Spec, error) {
	switch name {
	case "alpha", "beta":
		return testSpec(name), nil
	}
	return workload.Spec{}, fmt.Errorf("unknown test workload %q", name)
}

// TestTraceReplayReproducesLog pins the replay-loop acceptance criterion:
// reading a recorded Poisson/periodic stream back out of the JSONL log and
// resubmitting it as trace arrivals into an identically configured fleet
// reproduces the original event log bit for bit — same job numbering, same
// admission order, same placements.
func TestTraceReplayReproducesLog(t *testing.T) {
	recorded, _ := runFleet(t, testConfig(PolicyBWAP, 11), testStreams())

	streams, err := ReadTrace(recorded.LogBytes(), testResolve)
	if err != nil {
		t.Fatal(err)
	}
	// testStreams has two classes with distinct shapes; both must survive.
	if len(streams) != 2 {
		t.Fatalf("ReadTrace found %d classes, want 2", len(streams))
	}
	total := 0
	for _, s := range streams {
		if s.Arrival.Process != workload.Trace {
			t.Fatalf("class %s arrival process %q, want trace", s.Workload.Name, s.Arrival.Process)
		}
		total += len(s.Arrival.Trace)
	}
	if total != 7 {
		t.Fatalf("trace carries %d arrivals, want 7", total)
	}

	replayed, _ := runFleet(t, testConfig(PolicyBWAP, 11), streams)
	if !bytes.Equal(recorded.LogBytes(), replayed.LogBytes()) {
		t.Fatalf("trace replay diverged from the recorded log\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recorded.LogBytes(), replayed.LogBytes())
	}

	// Admission order, stated explicitly (the byte equality above implies
	// it, but this is the property the scenario sells).
	recs, err := DecodeLog(replayed.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	admits := 0
	for _, r := range recs {
		if r.Type == "admit" {
			admits++
			if got := recorded.Job(r.Job); got == nil || got.Machine != r.Machine {
				t.Fatalf("admit record %+v does not match the recorded fleet's job table", r)
			}
		}
	}
	if admits != 7 {
		t.Fatalf("replay admitted %d jobs, want 7", admits)
	}
}

// TestTraceReplayShardInvariant replays a trace into a sharded fleet: the
// trace was recorded unsharded, and the merged log must still come out
// bit-identical (least-loaded routing is shard-partition invariant).
func TestTraceReplayShardInvariant(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 19)
	cfg.Machines = 4
	recorded, _ := runFleet(t, cfg, testStreams())

	streams, err := ReadTrace(recorded.LogBytes(), testResolve)
	if err != nil {
		t.Fatal(err)
	}
	sharded := cfg
	sharded.Shards, sharded.Workers = 2, 2
	replayed, _ := runFleet(t, sharded, streams)
	if !bytes.Equal(recorded.LogBytes(), replayed.LogBytes()) {
		t.Fatal("sharded trace replay diverged from the unsharded recording")
	}
}

func TestReadTraceErrors(t *testing.T) {
	// Unknown workload name with the default resolver.
	line := `{"seq":0,"t":0,"type":"arrive","job":1,"machine":-1,"workload":"nope","workers":1,"work_scale":1}` + "\n"
	if _, err := ReadTrace([]byte(line), nil); err == nil {
		t.Fatal("ReadTrace resolved an unknown workload")
	}
	// Pre-trace log: arrive record without workers/work_scale.
	old := `{"seq":0,"t":0,"type":"arrive","job":1,"machine":-1,"workload":"SC"}` + "\n"
	if _, err := ReadTrace([]byte(old), nil); err == nil {
		t.Fatal("ReadTrace accepted a log without job shapes")
	}
	// No arrivals at all.
	empty := `{"seq":0,"t":1,"type":"retune","machine":0,"jobs":[1]}` + "\n"
	if _, err := ReadTrace([]byte(empty), nil); err == nil {
		t.Fatal("ReadTrace accepted a log with no arrive records")
	}
	// A built-in workload resolves with the default resolver.
	sc := `{"seq":0,"t":0.5,"type":"arrive","job":1,"machine":-1,"workload":"SC","workers":2,"work_scale":0.1}` + "\n"
	streams, err := ReadTrace([]byte(sc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || streams[0].Workers != 2 || streams[0].WorkScale != 0.1 ||
		len(streams[0].Arrival.Trace) != 1 || streams[0].Arrival.Trace[0] != 0.5 {
		t.Fatalf("ReadTrace = %+v", streams)
	}
}
