package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bwap/internal/sim"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Machines:   1,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 21},
		Policy:     PolicyBWAP,
		Seed:       21,
		// Full-volume probes: on the small test machine a default-scale
		// probe finishes in well under a millisecond, which puts the
		// miss-vs-hit latency comparison inside scheduler noise on a
		// loaded single-core runner. Full volume keeps the probe an
		// order of magnitude above the noise floor.
		ProbeWorkScale: 1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 2000 // drain quickly in wall time
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() { ts.Close(); s.Stop() })
	return s, ts
}

func postSubmit(t *testing.T, url string, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(url+"/submit", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		t.Fatalf("submit: %d %v", resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// jobBody is a fast custom spec submitted through the full HTTP path.
const jobBody = `{"spec":{"Name":"httpjob","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":4,"work_scale":0.05}`

// TestServerConcurrentSubmissions hammers /submit from many goroutines:
// every submission must succeed, exactly one may probe (the rest hit the
// tuning cache — repeat jobs skip re-profiling), and the stream must drain.
func TestServerConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postSubmit(t, ts.URL, jobBody)
		}()
	}
	wg.Wait()

	// All jobs take the whole 4-node machine, so they run serially and
	// every admission sees co-runner count 0: one cache key, one probe.
	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	var stats Stats
	for {
		getJSON(t, ts.URL+"/fleet", &stats)
		if stats.Completed == n {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatalf("stream did not drain: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1 (repeat jobs must not re-profile)", stats.CacheMisses)
	}
	if stats.CacheHits < n-1 {
		t.Fatalf("CacheHits = %d, want >= %d", stats.CacheHits, n-1)
	}

	var views []jobView
	getJSON(t, ts.URL+"/jobs", &views)
	if len(views) != n {
		t.Fatalf("/jobs returned %d, want %d", len(views), n)
	}
	hits := 0
	for _, v := range views {
		if v.State != "done" {
			t.Fatalf("job %d state %q", v.ID, v.State)
		}
		if v.CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Fatalf("%d jobs hit the cache, want %d", hits, n-1)
	}
}

// TestServerShardedConcurrentLoad is the stats-race audit test: submits
// stream in from several goroutines while pollers hammer every read
// endpoint — /fleet and /shards read counters the advancing scheduler and
// its shard workers mutate, so any counter not guarded by the scheduler
// mutex plus the per-tick shard barrier is a -race failure here (CI runs
// this package with -race).
func TestServerShardedConcurrentLoad(t *testing.T) {
	cfg := Config{
		Machines:   4,
		Shards:     2,
		Workers:    2,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 33},
		Policy:     PolicyBWAP,
		Seed:       33,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 2000
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() { ts.Close(); s.Stop() })

	const body = `{"spec":{"Name":"loadjob","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":2,"work_scale":0.05}`
	const jobs = 8

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for _, path := range []string{"/fleet", "/shards", "/jobs", "/log", "/healthz", "/status?id=1"} {
		pollers.Add(1)
		go func(path string) {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(path)
	}

	var submitters sync.WaitGroup
	for i := 0; i < 4; i++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for j := 0; j < jobs/4; j++ {
				postSubmit(t, ts.URL, body)
			}
		}()
	}
	submitters.Wait()

	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	var stats Stats
	for {
		getJSON(t, ts.URL+"/fleet", &stats)
		if stats.Completed == jobs {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatalf("stream did not drain under load: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	close(stop)
	pollers.Wait()

	var shards []ShardStat
	getJSON(t, ts.URL+"/shards", &shards)
	if len(shards) != 2 {
		t.Fatalf("/shards returned %d entries, want 2", len(shards))
	}
	completed := 0
	for _, sh := range shards {
		completed += sh.Completed
	}
	if completed != jobs {
		t.Fatalf("shard completions sum to %d, want %d", completed, jobs)
	}
}

// TestServerEndpoints covers status, log and validation paths.
func TestServerEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	out := postSubmit(t, ts.URL, jobBody)
	if len(out.IDs) != 1 || out.IDs[0] != 1 {
		t.Fatalf("submit response %+v", out)
	}

	var v jobView
	getJSON(t, ts.URL+"/status?id=1", &v)
	if v.ID != 1 || v.Workload != "httpjob" {
		t.Fatalf("status = %+v", v)
	}
	if v.State != "running" && v.State != "done" {
		t.Fatalf("job state %q immediately after synchronous admission", v.State)
	}

	if resp, _ := http.Get(ts.URL + "/status?id=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job returned %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/submit"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /submit returned %d", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/submit", "application/json",
		bytes.NewReader([]byte(`{}`))); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submit returned %d", resp.StatusCode)
	}

	// Wait for completion, then the log must decode and contain the job.
	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	for {
		getJSON(t, ts.URL+"/status?id=1", &v)
		if v.State == "done" {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	resp, err := http.Get(ts.URL + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeLog(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]bool{}
	for _, r := range recs {
		types[r.Type] = true
	}
	for _, want := range []string{"arrive", "admit", "complete"} {
		if !types[want] {
			t.Fatalf("log missing %q records: %v", want, types)
		}
	}
}

// TestServerSubmitValidation pins the /submit input contract: zero values
// select defaults, negative workers/work_scale/count are rejected with 400
// instead of being silently coerced into a different job than asked for.
func TestServerSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"negative workers", `{"workload":"SC","workers":-1}`, http.StatusBadRequest},
		{"negative work_scale", `{"workload":"SC","work_scale":-0.5}`, http.StatusBadRequest},
		{"negative count", `{"workload":"SC","count":-2}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"no workload", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"zero values default", `{"workload":"SC","workers":0,"work_scale":0,"count":0}`, http.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/submit", "application/json", bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.status, body)
			}
		})
	}
}

// TestServerPartialBatchSubmit is the lost-IDs regression test: a batch
// that fails mid-way (here on job 4, via MaxQueue capacity exhaustion)
// must return the IDs and cache flags of the jobs already admitted into
// the fleet alongside the error — those jobs exist and will run.
func TestServerPartialBatchSubmit(t *testing.T) {
	cfg := Config{
		Machines:   1,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 4},
		Policy:     PolicyFirstTouch,
		Seed:       4,
		MaxQueue:   2,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// The clock driver stays off: job 1 occupies the whole machine and
	// never finishes, so jobs 2-3 queue and job 4 hits the bound.
	body := `{"spec":{"Name":"batch","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":4,"work_scale":1,"count":10}`
	resp, err := http.Post(ts.URL+"/submit", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity batch returned %d, want 429 (retryable backpressure)", resp.StatusCode)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" {
		t.Fatalf("partial response carries no error: %+v", out)
	}
	if len(out.IDs) != 3 || len(out.CacheHits) != 3 {
		t.Fatalf("partial response lost admitted jobs: ids=%v cache_hits=%v, want 3 of each", out.IDs, out.CacheHits)
	}
	for i, id := range out.IDs {
		if id != i+1 {
			t.Fatalf("partial IDs = %v, want [1 2 3]", out.IDs)
		}
		if f.Job(id) == nil {
			t.Fatalf("returned job %d not in the fleet", id)
		}
	}
	// The failed submission must not have entered the fleet.
	if got := len(f.Jobs()); got != 3 {
		t.Fatalf("fleet holds %d jobs, want 3", got)
	}
}

// TestMaxQueueIgnoresPendingStream pins the backpressure semantics:
// MaxQueue bounds the arrived-but-unadmitted queue, not future arrivals,
// so a pre-submitted stream longer than the bound (the replay path) is
// accepted and drains normally.
func TestMaxQueueIgnoresPendingStream(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 6)
	cfg.MaxQueue = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SubmitStream(testStreams()); err != nil {
		t.Fatalf("pre-submitted stream rejected by MaxQueue: %v", err)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 7 {
		t.Fatalf("completed %d/7", stats.Completed)
	}
}

// TestServerStartStopRace hammers the driver lifecycle from many
// goroutines; run under -race (CI does) this pins the mutex-guarded
// stop/done handover. Every interleaving must end with at most one driver,
// and the final Stop must leave none.
func TestServerStartStopRace(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 9)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.Tick = time.Millisecond
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Start()
				s.Stop()
			}
		}()
	}
	wg.Wait()
	s.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil || s.done != nil {
		t.Fatal("driver channels survived the final Stop")
	}
}

// TestServerSubmitLatencyDrop measures the placement-latency effect the
// tuning cache exists for: the first submission of a workload runs the
// profiling probe inline, the second skips it. The hit must be at least
// several times faster; the generous ratio keeps slow-CI noise out.
func TestServerSubmitLatencyDrop(t *testing.T) {
	_, ts := newTestServer(t)
	start := time.Now() //bwap:wallclock measures real handler latency to prove the cache hit is cheap
	first := postSubmit(t, ts.URL, jobBody)
	missLatency := time.Since(start) //bwap:wallclock measures real handler latency to prove the cache hit is cheap
	// Let the first job drain so the repeat admission happens synchronously
	// inside the second POST instead of queueing behind a busy machine.
	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	for {
		var v jobView
		getJSON(t, ts.URL+"/status?id=1", &v)
		if v.State == "done" {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatal("first job never finished")
		}
		time.Sleep(10 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	start = time.Now() //bwap:wallclock measures real handler latency to prove the cache hit is cheap
	second := postSubmit(t, ts.URL, jobBody)
	hitLatency := time.Since(start) //bwap:wallclock measures real handler latency to prove the cache hit is cheap
	if first.CacheHits[0] || !second.CacheHits[0] {
		t.Fatalf("cache flags: first=%v second=%v", first.CacheHits[0], second.CacheHits[0])
	}
	if hitLatency > missLatency {
		t.Fatalf("cache hit submission (%v) slower than probing one (%v)", hitLatency, missLatency)
	}
	t.Logf("miss=%v hit=%v (%.1fx)", missLatency, hitLatency, float64(missLatency)/float64(hitLatency))
}
