package fleet

import (
	"fmt"
	"hash/fnv"

	"bwap/internal/cache"
	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TuningCache memoizes BWAP placement decisions across jobs so that a
// repeated job skips re-profiling entirely. Two layers are cached, both
// with single-flight semantics (internal/cache):
//
//   - one core.CanonicalTuner per topology *fingerprint*, shared by every
//     machine of the same model — the canonical bandwidth profiling runs
//     at most once per (model, worker set) for the whole fleet;
//   - one tuned DWP value per (topology fingerprint × workload signature ×
//     worker count × co-runner count). A miss runs an offline probe: the
//     job's spec under the full BWAP policy (canonical weights + on-line
//     DWP tuner) on the best worker set of that size, against a synthetic
//     background co-runner scaled to the co-runner count. The probe's
//     BestDWP is the cached placement decision.
//
// The key deliberately uses the worker *count*, not the exact node set:
// the DWP proximity factor is a scalar property of how much page mass the
// worker set should attract, which transfers across symmetric node sets;
// the node-set-specific canonical weights are resolved separately (and
// cached per exact set inside the CanonicalTuner).
//
// A TuningCache is safe for concurrent use and may be shared across fleets
// and a bwapd daemon; concurrent first submissions of the same key share
// one probe run.
type TuningCache struct {
	simCfg     sim.Config
	probeScale float64
	seed       uint64
	canon      *cache.Cache[*core.CanonicalTuner]
	dwp        *cache.Cache[float64]
}

// DefaultProbeWorkScale is the fraction of a job's work volume a tuning
// probe simulates: long enough for the scaled DWP search to converge,
// short enough that a cache miss costs a small fraction of the job itself.
const DefaultProbeWorkScale = 0.05

// probeMaxTime bounds one probe run in simulated seconds; if the tuner has
// not finished by then, its best-so-far DWP is used.
const probeMaxTime = 600

// NewTuningCache returns an empty cache. simCfg should match the fleet's
// engine configuration so probes see the same contention model; probeScale
// <= 0 selects DefaultProbeWorkScale.
func NewTuningCache(simCfg sim.Config, probeScale float64, seed uint64) *TuningCache {
	if probeScale <= 0 {
		probeScale = DefaultProbeWorkScale
	}
	return &TuningCache{
		simCfg:     simCfg,
		probeScale: probeScale,
		seed:       seed,
		canon:      cache.New[*core.CanonicalTuner](),
		dwp:        cache.New[float64](),
	}
}

// Canonical returns the shared canonical tuner for the machine's topology
// fingerprint, creating it on first use.
func (tc *TuningCache) Canonical(topo *topology.Machine) *core.CanonicalTuner {
	ct, _, _ := tc.canon.Get(topo.Fingerprint(), func() (*core.CanonicalTuner, error) {
		return core.NewCanonicalTuner(topo, tc.simCfg), nil
	})
	return ct
}

// Key derives the cache key for a placement decision.
func (tc *TuningCache) Key(topo *topology.Machine, spec workload.Spec, workers, coRunners int) string {
	return fmt.Sprintf("%s|%s|w%d|c%d", topo.Fingerprint(), spec.Signature(), workers, coRunners)
}

// DWP returns the tuned proximity factor for the given placement context,
// running a probe on first use. hit reports whether the value came from
// the cache (true) or this call ran the probe (false).
func (tc *TuningCache) DWP(topo *topology.Machine, spec workload.Spec, workers, coRunners int) (dwp float64, hit bool, err error) {
	key := tc.Key(topo, spec, workers, coRunners)
	return tc.dwp.Get(key, func() (float64, error) {
		return tc.probe(key, topo, spec, workers, coRunners)
	})
}

// Stats reports the DWP cache's cumulative hit and miss counts.
func (tc *TuningCache) Stats() (hits, misses int64) { return tc.dwp.Stats() }

// probeParams compresses the DWP search the same way the experiment
// profiles do for scaled-down runs, so the probe converges within its
// shortened work volume.
func probeParams() core.Params {
	p := core.DefaultParams()
	p.N, p.C, p.T = 5, 1, 0.1
	return p
}

// probeCoSpec models the aggregate memory pressure of n co-located jobs as
// one background streaming application: a moderate mixed read/write stream
// per co-runner, never finishing (ComputeBound), so the probe's tuner
// hill-climbs against a loaded interconnect comparable to the fleet
// machine it stands in for.
func probeCoSpec(n int) workload.Spec {
	d := 4.0 * float64(n)
	return workload.Spec{
		Name: "probe-co", ReadGBs: d, WriteGBs: 0.25 * d, PrivateFrac: 0.5,
		LatencySensitivity: 0.05,
		SharedGB:           0.25, PrivateGBPerNode: 0.1,
		ComputeBound: true,
	}
}

// probe runs one offline tuning simulation and returns the DWP the on-line
// tuner settles on. The seed is derived from the key so every probe is
// deterministic regardless of the order in which keys are first requested.
func (tc *TuningCache) probe(key string, topo *topology.Machine, spec workload.Spec, workers, coRunners int) (float64, error) {
	ws, err := sched.BestWorkerSet(topo, workers)
	if err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	cfg := tc.simCfg
	cfg.MaxTime = probeMaxTime
	h := fnv.New64a()
	h.Write([]byte(key))
	cfg.Seed = tc.seed ^ h.Sum64()
	e := sim.New(topo, cfg)

	if rest := sched.RemainingNodes(topo, ws); coRunners > 0 && len(rest) > 0 {
		if _, err := e.AddApp("probe-co", probeCoSpec(coRunners), rest, policy.FirstTouch{}); err != nil {
			return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
		}
	}
	b := core.NewBWAP(tc.Canonical(topo))
	b.Params = probeParams()
	if _, err := e.AddApp(spec.Name, spec.Scaled(tc.probeScale), ws, b); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	if _, err := e.Run(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	tuner := b.TunerFor(spec.Name)
	if tuner == nil {
		return 0, fmt.Errorf("fleet: probe %s: no tuner attached", key)
	}
	if err := tuner.Err(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	return tuner.BestDWP(), nil
}
