package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"bwap/internal/cache"
	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TuningCache memoizes BWAP placement decisions across jobs so that a
// repeated job skips re-profiling entirely. Two layers are cached, both
// with single-flight semantics (internal/cache):
//
//   - one core.CanonicalTuner per topology *fingerprint*, shared by every
//     machine of the same model — the canonical bandwidth profiling runs
//     at most once per (model, worker set) for the whole fleet;
//   - one tuned DWP value per (topology fingerprint × workload signature ×
//     worker count × co-runner count). A miss runs an offline probe: the
//     job's spec under the full BWAP policy (canonical weights + on-line
//     DWP tuner) on the best worker set of that size, against a synthetic
//     background co-runner scaled to the co-runner count. The probe's
//     BestDWP is the cached placement decision.
//
// The key deliberately uses the worker *count*, not the exact node set:
// the DWP proximity factor is a scalar property of how much page mass the
// worker set should attract, which transfers across symmetric node sets;
// the node-set-specific canonical weights are resolved separately (and
// cached per exact set inside the CanonicalTuner).
//
// A TuningCache is safe for concurrent use and may be shared across fleets
// and a bwapd daemon; concurrent first submissions of the same key share
// one probe run.
//
// By default the DWP layer forgets failed probes (a transient failure does
// not poison its key for the daemon's lifetime — CacheErrors restores the
// strict first-outcome-is-the-outcome behaviour for replay determinism),
// and is unbounded (CacheMaxEntries adds an LRU bound for long-lived
// multi-tenant fleets). Completed DWP entries can be saved to a versioned
// JSON file and reloaded on a later boot: the key derivation is stable
// across processes, so a restored entry is a legitimate hit.
type TuningCache struct {
	simCfg     sim.Config
	probeScale float64
	seed       uint64
	canon      *cache.Cache[*core.CanonicalTuner]
	dwp        *cache.Cache[float64]
	probeObs   func(simSeconds float64) // successful-probe elapsed sim time
}

// SetProbeObserver registers fn to receive every successful probe run's
// elapsed simulated time. Set it before the cache is used and do not
// change it mid-run; a cache shared between fleets reports all probes to
// the last observer attached.
func (tc *TuningCache) SetProbeObserver(fn func(simSeconds float64)) { tc.probeObs = fn }

// TuningCacheOption configures a TuningCache at construction.
type TuningCacheOption func(*tuningCacheOpts)

type tuningCacheOpts struct {
	maxEntries  int
	cacheErrors bool
}

// CacheMaxEntries bounds the DWP layer to n entries with LRU eviction
// (n <= 0 keeps it unbounded). The canonical-tuner layer stays unbounded:
// it holds one entry per topology model, not per workload.
func CacheMaxEntries(n int) TuningCacheOption {
	return func(o *tuningCacheOpts) { o.maxEntries = n }
}

// CacheErrors memoizes failed probes forever — the pre-durability default,
// kept available because strict replay determinism wants the first outcome
// (even a failure) to be the outcome. Without it a failed probe is
// forgotten and the next lookup of its key retries.
func CacheErrors() TuningCacheOption {
	return func(o *tuningCacheOpts) { o.cacheErrors = true }
}

// DefaultProbeWorkScale is the fraction of a job's work volume a tuning
// probe simulates: long enough for the scaled DWP search to converge,
// short enough that a cache miss costs a small fraction of the job itself.
const DefaultProbeWorkScale = 0.05

// probeMaxTime bounds one probe run in simulated seconds; if the tuner has
// not finished by then, its best-so-far DWP is used.
const probeMaxTime = 600

// NewTuningCache returns an empty cache. simCfg should match the fleet's
// engine configuration so probes see the same contention model; probeScale
// <= 0 selects DefaultProbeWorkScale.
func NewTuningCache(simCfg sim.Config, probeScale float64, seed uint64, opts ...TuningCacheOption) *TuningCache {
	if probeScale <= 0 {
		probeScale = DefaultProbeWorkScale
	}
	var o tuningCacheOpts
	for _, opt := range opts {
		opt(&o)
	}
	var dwpOpts []cache.Option
	if o.maxEntries > 0 {
		dwpOpts = append(dwpOpts, cache.MaxEntries(o.maxEntries))
	}
	if !o.cacheErrors {
		dwpOpts = append(dwpOpts, cache.ForgetErrors())
	}
	return &TuningCache{
		simCfg:     simCfg,
		probeScale: probeScale,
		seed:       seed,
		canon:      cache.New[*core.CanonicalTuner](),
		dwp:        cache.New[float64](dwpOpts...),
	}
}

// Canonical returns the shared canonical tuner for the machine's topology
// fingerprint, creating it on first use.
func (tc *TuningCache) Canonical(topo *topology.Machine) *core.CanonicalTuner {
	ct, _, _ := tc.canon.Get(topo.Fingerprint(), func() (*core.CanonicalTuner, error) {
		return core.NewCanonicalTuner(topo, tc.simCfg), nil
	})
	return ct
}

// Key derives the cache key for a placement decision.
func (tc *TuningCache) Key(topo *topology.Machine, spec workload.Spec, workers, coRunners int) string {
	return fmt.Sprintf("%s|%s|w%d|c%d", topo.Fingerprint(), spec.Signature(), workers, coRunners)
}

// DWP returns the tuned proximity factor for the given placement context,
// running a probe on first use. hit reports whether the value came from
// the cache (true) or this call ran the probe (false).
func (tc *TuningCache) DWP(topo *topology.Machine, spec workload.Spec, workers, coRunners int) (dwp float64, hit bool, err error) {
	key := tc.Key(topo, spec, workers, coRunners)
	return tc.dwp.Get(key, func() (float64, error) {
		return tc.probe(key, topo, spec, workers, coRunners)
	})
}

// TuningCacheStats is the DWP layer's cumulative accounting, reported by
// the daemon's /fleet endpoint. Misses equal probe runs.
type TuningCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Restored  int64 `json:"restored"`
	Entries   int   `json:"entries"`
}

// Stats reports the DWP cache's cumulative counters.
func (tc *TuningCache) Stats() TuningCacheStats {
	hits, misses := tc.dwp.Stats()
	return TuningCacheStats{
		Hits:      hits,
		Misses:    misses,
		Evictions: tc.dwp.Evictions(),
		Restored:  tc.dwp.Restored(),
		Entries:   tc.dwp.Len(),
	}
}

// tuningCacheFileVersion versions the Save/LoadInto envelope; the inner
// cache snapshot carries its own format version.
const (
	tuningCacheFileVersion = 1
	tuningCacheFileKind    = "bwap-tuning-cache"
)

// tuningCacheFile is the on-disk envelope around the DWP cache snapshot.
type tuningCacheFile struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	DWP     json.RawMessage `json:"dwp"`
}

// SnapshotBytes serializes every completed DWP entry (keys embed the
// topology fingerprint and workload signature, so entries are portable
// across processes and machines of the same model).
func (tc *TuningCache) SnapshotBytes() ([]byte, error) {
	dwp, err := tc.dwp.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("fleet: cache snapshot: %w", err)
	}
	return json.MarshalIndent(tuningCacheFile{
		Version: tuningCacheFileVersion,
		Kind:    tuningCacheFileKind,
		DWP:     dwp,
	}, "", " ")
}

// ErrBadSnapshot re-exports cache.ErrBadSnapshot: every RestoreBytes (and
// LoadInto) failure caused by the snapshot content wraps it, so a daemon
// can distinguish a corrupt cache file — warn and boot cold — from an I/O
// problem worth failing on.
var ErrBadSnapshot = cache.ErrBadSnapshot

// RestoreBytes loads a SnapshotBytes payload into the cache and returns
// how many entries it added. Restored entries are full hits: a later DWP
// lookup of their key runs no probe. Corrupt, truncated or wrong-version
// payloads return an error wrapping ErrBadSnapshot and leave the cache
// untouched and usable.
func (tc *TuningCache) RestoreBytes(data []byte) (int, error) {
	var f tuningCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("fleet: cache restore: %w: %v", ErrBadSnapshot, err)
	}
	if f.Kind != tuningCacheFileKind {
		return 0, fmt.Errorf("fleet: cache restore: %w: kind %q, want %q", ErrBadSnapshot, f.Kind, tuningCacheFileKind)
	}
	if f.Version != tuningCacheFileVersion {
		return 0, fmt.Errorf("fleet: cache restore: %w: file version %d, want %d", ErrBadSnapshot, f.Version, tuningCacheFileVersion)
	}
	n, err := tc.dwp.Restore(f.DWP)
	if err != nil {
		return 0, fmt.Errorf("fleet: cache restore: %w", err)
	}
	return n, nil
}

// Save atomically writes the cache snapshot to path (temp file + rename),
// so a crash mid-write never leaves a truncated cache for the next boot.
func (tc *TuningCache) Save(path string) error {
	data, err := tc.SnapshotBytes()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fleet: cache save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("fleet: cache save: %w", err)
	}
	return nil
}

// LoadInto reads a Save file into this cache, returning how many entries
// were restored. A missing file is an error the caller can detect with
// os.IsNotExist for the boot-if-present pattern.
func (tc *TuningCache) LoadInto(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return tc.RestoreBytes(data)
}

// probeParams compresses the DWP search the same way the experiment
// profiles do for scaled-down runs, so the probe converges within its
// shortened work volume.
func probeParams() core.Params {
	p := core.DefaultParams()
	p.N, p.C, p.T = 5, 1, 0.1
	return p
}

// probeCoSpec models the aggregate memory pressure of n co-located jobs as
// one background streaming application: a moderate mixed read/write stream
// per co-runner, never finishing (ComputeBound), so the probe's tuner
// hill-climbs against a loaded interconnect comparable to the fleet
// machine it stands in for.
func probeCoSpec(n int) workload.Spec {
	d := 4.0 * float64(n)
	return workload.Spec{
		Name: "probe-co", ReadGBs: d, WriteGBs: 0.25 * d, PrivateFrac: 0.5,
		LatencySensitivity: 0.05,
		SharedGB:           0.25, PrivateGBPerNode: 0.1,
		ComputeBound: true,
	}
}

// probe runs one offline tuning simulation and returns the DWP the on-line
// tuner settles on. The seed is derived from the key so every probe is
// deterministic regardless of the order in which keys are first requested.
func (tc *TuningCache) probe(key string, topo *topology.Machine, spec workload.Spec, workers, coRunners int) (float64, error) {
	ws, err := sched.BestWorkerSet(topo, workers)
	if err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	cfg := tc.simCfg
	cfg.MaxTime = probeMaxTime
	h := fnv.New64a()
	h.Write([]byte(key))
	cfg.Seed = tc.seed ^ h.Sum64()
	e := sim.New(topo, cfg)

	if rest := sched.RemainingNodes(topo, ws); coRunners > 0 && len(rest) > 0 {
		if _, err := e.AddApp("probe-co", probeCoSpec(coRunners), rest, policy.FirstTouch{}); err != nil {
			return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
		}
	}
	b := core.NewBWAP(tc.Canonical(topo))
	b.Params = probeParams()
	if _, err := e.AddApp(spec.Name, spec.Scaled(tc.probeScale), ws, b); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	if _, err := e.Run(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	if tc.probeObs != nil {
		// e.Now() after Run is the probe's elapsed simulated time — a pure
		// function of (key, topology, spec), so observing it is replayable.
		tc.probeObs(e.Now())
	}
	tuner := b.TunerFor(spec.Name)
	if tuner == nil {
		return 0, fmt.Errorf("fleet: probe %s: no tuner attached", key)
	}
	if err := tuner.Err(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	return tuner.BestDWP(), nil
}
