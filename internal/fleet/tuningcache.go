package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"sync"

	"bwap/internal/cache"
	"bwap/internal/core"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TuningCache memoizes BWAP placement decisions across jobs so that a
// repeated job skips re-profiling entirely. Two layers are cached, both
// with single-flight semantics (internal/cache):
//
//   - one core.CanonicalTuner per topology *fingerprint*, shared by every
//     machine of the same model — the canonical bandwidth profiling runs
//     at most once per (model, worker set) for the whole fleet;
//   - one tuned DWP value per (topology fingerprint × workload signature ×
//     worker count × co-runner count). A miss runs an offline probe: the
//     job's spec under the full BWAP policy (canonical weights + on-line
//     DWP tuner) on the best worker set of that size, against a synthetic
//     background co-runner scaled to the co-runner count. The probe's
//     BestDWP is the cached placement decision.
//
// The key deliberately uses the worker *count*, not the exact node set:
// the DWP proximity factor is a scalar property of how much page mass the
// worker set should attract, which transfers across symmetric node sets;
// the node-set-specific canonical weights are resolved separately (and
// cached per exact set inside the CanonicalTuner).
//
// A TuningCache is safe for concurrent use and may be shared across fleets
// and a bwapd daemon; concurrent first submissions of the same key share
// one probe run. Because a probe is a pure function of its key, the cache
// can also compute probes speculatively: Prefetch reserves a key and runs
// its mini-sim on a bounded worker pool (ProbeWorkers), and the later DWP
// call that demands the key blocks on the single-flight result at the
// same deterministic consumption point a synchronous probe would occupy.
// Restore a snapshot before kicking prefetches (the daemon's boot order):
// a reservation already in flight blocks a restore of the same key.
//
// By default the DWP layer forgets failed probes (a transient failure does
// not poison its key for the daemon's lifetime — CacheErrors restores the
// strict first-outcome-is-the-outcome behaviour for replay determinism),
// and is unbounded (CacheMaxEntries adds an LRU bound for long-lived
// multi-tenant fleets). Completed DWP entries can be saved to a versioned
// JSON file and reloaded on a later boot: the key derivation is stable
// across processes, so a restored entry is a legitimate hit.
type TuningCache struct {
	simCfg     sim.Config
	probeScale float64
	seed       uint64
	canon      *cache.Cache[*core.CanonicalTuner]
	dwp        *cache.Cache[float64]

	// Probe pool: Prefetch reserves a key synchronously, then hands the
	// probe mini-sim to a goroutine bounded by sem. wg tracks every
	// in-flight prefetch so Quiesce can prove the cache is at rest.
	workers int
	sem     chan struct{}
	wg      sync.WaitGroup

	// mu guards the observer hook and the per-key elapsed side-channel.
	// Probes record their elapsed simulated time here regardless of which
	// goroutine ran them; DWP pops and reports it at the consumption point
	// — on the demanding goroutine, outside any cache mutex — so the
	// observation sequence is a pure function of the demand order no
	// matter how many pool workers computed probes concurrently.
	mu       sync.Mutex
	probeObs func(simSeconds float64)
	elapsed  map[string]float64
}

// SetProbeObserver registers fn to receive every probe run's elapsed
// simulated time, reported when the probed value is first consumed by a
// DWP call (the deterministic point of the record stream). A cache shared
// between fleets reports each consumption to the last observer attached.
func (tc *TuningCache) SetProbeObserver(fn func(simSeconds float64)) {
	tc.mu.Lock()
	tc.probeObs = fn
	tc.mu.Unlock()
}

// TuningCacheOption configures a TuningCache at construction.
type TuningCacheOption func(*tuningCacheOpts)

type tuningCacheOpts struct {
	maxEntries   int
	cacheErrors  bool
	probeWorkers int
}

// CacheMaxEntries bounds the DWP layer to n entries with LRU eviction
// (n <= 0 keeps it unbounded). The canonical-tuner layer stays unbounded:
// it holds one entry per topology model, not per workload.
func CacheMaxEntries(n int) TuningCacheOption {
	return func(o *tuningCacheOpts) { o.maxEntries = n }
}

// CacheErrors memoizes failed probes forever — the pre-durability default,
// kept available because strict replay determinism wants the first outcome
// (even a failure) to be the outcome. Without it a failed probe is
// forgotten and the next lookup of its key retries.
func CacheErrors() TuningCacheOption {
	return func(o *tuningCacheOpts) { o.cacheErrors = true }
}

// ProbeWorkers sizes the asynchronous probe pool serving Prefetch: n >= 1
// bounds how many speculative probe mini-sims run concurrently, n == 0
// (the default) selects GOMAXPROCS, and n < 0 disables prefetching —
// every probe then runs synchronously inside the DWP call that demands
// it, the pre-pool behaviour. Probes are pure functions of the cache key
// and consumption stays single-flight at the demanding caller, so the
// setting changes wall-clock time only, never a log byte (pinned by
// TestProbePoolDeterminism).
func ProbeWorkers(n int) TuningCacheOption {
	return func(o *tuningCacheOpts) { o.probeWorkers = n }
}

// DefaultProbeWorkScale is the fraction of a job's work volume a tuning
// probe simulates: long enough for the scaled DWP search to converge,
// short enough that a cache miss costs a small fraction of the job itself.
const DefaultProbeWorkScale = 0.05

// probeMaxTime bounds one probe run in simulated seconds; if the tuner has
// not finished by then, its best-so-far DWP is used.
const probeMaxTime = 600

// NewTuningCache returns an empty cache. simCfg should match the fleet's
// engine configuration so probes see the same contention model; probeScale
// <= 0 selects DefaultProbeWorkScale.
func NewTuningCache(simCfg sim.Config, probeScale float64, seed uint64, opts ...TuningCacheOption) *TuningCache {
	if probeScale <= 0 {
		probeScale = DefaultProbeWorkScale
	}
	var o tuningCacheOpts
	for _, opt := range opts {
		opt(&o)
	}
	var dwpOpts []cache.Option
	if o.maxEntries > 0 {
		dwpOpts = append(dwpOpts, cache.MaxEntries(o.maxEntries))
	}
	if !o.cacheErrors {
		dwpOpts = append(dwpOpts, cache.ForgetErrors())
	}
	workers := o.probeWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		workers = 0
	}
	tc := &TuningCache{
		simCfg:     simCfg,
		probeScale: probeScale,
		seed:       seed,
		canon:      cache.New[*core.CanonicalTuner](),
		dwp:        cache.New[float64](dwpOpts...),
		workers:    workers,
		elapsed:    make(map[string]float64),
	}
	if workers > 0 {
		tc.sem = make(chan struct{}, workers)
	}
	return tc
}

// Canonical returns the shared canonical tuner for the machine's topology
// fingerprint, creating it on first use.
func (tc *TuningCache) Canonical(topo *topology.Machine) *core.CanonicalTuner {
	ct, _, _ := tc.canon.Get(topo.Fingerprint(), func() (*core.CanonicalTuner, error) {
		return core.NewCanonicalTuner(topo, tc.simCfg), nil
	})
	return ct
}

// Key derives the cache key for a placement decision. The layout is
// frozen — "<fingerprint>|<signature>|w<workers>|c<coRunners>" — because
// persisted cache snapshots store keys verbatim; the hand-rolled append
// keeps the derivation to one allocation on the admission/prefetch hot
// path.
func (tc *TuningCache) Key(topo *topology.Machine, spec workload.Spec, workers, coRunners int) string {
	var scratch [64]byte
	return string(appendKey(scratch[:0], topo, spec, workers, coRunners))
}

// appendKey appends the Key bytes to dst, so the prefetch hot path can
// probe the cache with a stack-built key and allocate only when it
// actually reserves.
func appendKey(dst []byte, topo *topology.Machine, spec workload.Spec, workers, coRunners int) []byte {
	dst = append(dst, topo.Fingerprint()...)
	dst = append(dst, '|')
	dst = spec.AppendSignature(dst)
	dst = append(dst, '|', 'w')
	dst = strconv.AppendInt(dst, int64(workers), 10)
	dst = append(dst, '|', 'c')
	dst = strconv.AppendInt(dst, int64(coRunners), 10)
	return dst
}

// DWP returns the tuned proximity factor for the given placement context,
// running a probe on first use. hit reports whether the value came from
// the cache (true) or this call consumed the probe (false) — a probe the
// pool prefetched still counts as this caller's miss, because consumption
// is the deterministic point of the demand sequence.
func (tc *TuningCache) DWP(topo *topology.Machine, spec workload.Spec, workers, coRunners int) (dwp float64, hit bool, err error) {
	key := tc.Key(topo, spec, workers, coRunners)
	dwp, hit, err = tc.dwp.Get(key, func() (float64, error) {
		return tc.probe(key, topo, spec, workers, coRunners)
	})
	if !hit {
		// Consumption point: report the probe's elapsed simulated time to
		// the observer here — on the demanding goroutine, outside the cache
		// mutex (lockedio) — never from the pool goroutine that happened to
		// run the mini-sim. The elapsed value is a pure function of the key
		// and this pop happens exactly once per consumed probe, so the
		// observation sequence is byte-identical for any pool width.
		tc.mu.Lock()
		secs, ran := tc.elapsed[key]
		if ran {
			delete(tc.elapsed, key)
		}
		obs := tc.probeObs
		tc.mu.Unlock()
		if ran && obs != nil {
			obs(secs)
		}
	}
	return dwp, hit, err
}

// Prefetch hints that the given placement context will be demanded soon:
// if its key is not already cached or reserved, the probe mini-sim is
// handed to the cache's bounded pool and computed off the caller's
// goroutine. The reservation itself is synchronous and cheap; the later
// DWP call blocks on the single-flight result (or computes it inline if
// it wins the race), so prefetching overlaps probe work with the
// scheduler without moving any demand-side observable. No-op when the
// pool is disabled (ProbeWorkers < 0).
func (tc *TuningCache) Prefetch(topo *topology.Machine, spec workload.Spec, workers, coRunners int) {
	if tc.workers <= 0 {
		return
	}
	// Probe with a stack-built key first: the fleet re-hints aggressively
	// (every arrival, backfill sweep and retune), so on a warm cache this
	// path runs orders of magnitude more often than it reserves and must
	// not allocate. Contains is advisory — Prefetch re-checks under its
	// own lock — so a race costs one key allocation, nothing else.
	var scratch [64]byte
	if tc.dwp.Contains(appendKey(scratch[:0], topo, spec, workers, coRunners)) {
		return
	}
	key := tc.Key(topo, spec, workers, coRunners)
	run, reserved := tc.dwp.Prefetch(key, func() (float64, error) {
		return tc.probe(key, topo, spec, workers, coRunners)
	})
	if !reserved {
		return
	}
	tc.wg.Add(1)
	go func() {
		defer tc.wg.Done()
		tc.sem <- struct{}{}
		defer func() { <-tc.sem }()
		run()
	}()
}

// Quiesce blocks until every in-flight prefetch probe has finished. A
// drained fleet calls it before returning (and the daemon before saving
// the cache), so no background goroutine outlives the work that spawned
// it — allocation-counting tests and the race detector see a cache at
// rest between runs.
func (tc *TuningCache) Quiesce() { tc.wg.Wait() }

// TuningCacheStats is the DWP layer's cumulative accounting, reported by
// the daemon's /fleet endpoint. Misses equal probe runs.
type TuningCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Restored  int64 `json:"restored"`
	Entries   int   `json:"entries"`
}

// Stats reports the DWP cache's cumulative counters.
func (tc *TuningCache) Stats() TuningCacheStats {
	hits, misses := tc.dwp.Stats()
	return TuningCacheStats{
		Hits:      hits,
		Misses:    misses,
		Evictions: tc.dwp.Evictions(),
		Restored:  tc.dwp.Restored(),
		Entries:   tc.dwp.Len(),
	}
}

// tuningCacheFileVersion versions the Save/LoadInto envelope; the inner
// cache snapshot carries its own format version.
const (
	tuningCacheFileVersion = 1
	tuningCacheFileKind    = "bwap-tuning-cache"
)

// tuningCacheFile is the on-disk envelope around the DWP cache snapshot.
type tuningCacheFile struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	DWP     json.RawMessage `json:"dwp"`
}

// SnapshotBytes serializes every completed DWP entry (keys embed the
// topology fingerprint and workload signature, so entries are portable
// across processes and machines of the same model).
func (tc *TuningCache) SnapshotBytes() ([]byte, error) {
	dwp, err := tc.dwp.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("fleet: cache snapshot: %w", err)
	}
	return json.MarshalIndent(tuningCacheFile{
		Version: tuningCacheFileVersion,
		Kind:    tuningCacheFileKind,
		DWP:     dwp,
	}, "", " ")
}

// ErrBadSnapshot re-exports cache.ErrBadSnapshot: every RestoreBytes (and
// LoadInto) failure caused by the snapshot content wraps it, so a daemon
// can distinguish a corrupt cache file — warn and boot cold — from an I/O
// problem worth failing on.
var ErrBadSnapshot = cache.ErrBadSnapshot

// RestoreBytes loads a SnapshotBytes payload into the cache and returns
// how many entries it added. Restored entries are full hits: a later DWP
// lookup of their key runs no probe. Corrupt, truncated or wrong-version
// payloads return an error wrapping ErrBadSnapshot and leave the cache
// untouched and usable.
func (tc *TuningCache) RestoreBytes(data []byte) (int, error) {
	var f tuningCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("fleet: cache restore: %w: %v", ErrBadSnapshot, err)
	}
	if f.Kind != tuningCacheFileKind {
		return 0, fmt.Errorf("fleet: cache restore: %w: kind %q, want %q", ErrBadSnapshot, f.Kind, tuningCacheFileKind)
	}
	if f.Version != tuningCacheFileVersion {
		return 0, fmt.Errorf("fleet: cache restore: %w: file version %d, want %d", ErrBadSnapshot, f.Version, tuningCacheFileVersion)
	}
	n, err := tc.dwp.Restore(f.DWP)
	if err != nil {
		return 0, fmt.Errorf("fleet: cache restore: %w", err)
	}
	return n, nil
}

// Save atomically writes the cache snapshot to path (temp file + rename),
// so a crash mid-write never leaves a truncated cache for the next boot.
func (tc *TuningCache) Save(path string) error {
	data, err := tc.SnapshotBytes()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fleet: cache save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("fleet: cache save: %w", err)
	}
	return nil
}

// LoadInto reads a Save file into this cache, returning how many entries
// were restored. A missing file is an error the caller can detect with
// os.IsNotExist for the boot-if-present pattern.
func (tc *TuningCache) LoadInto(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return tc.RestoreBytes(data)
}

// probeParams compresses the DWP search the same way the experiment
// profiles do for scaled-down runs, so the probe converges within its
// shortened work volume.
func probeParams() core.Params {
	p := core.DefaultParams()
	p.N, p.C, p.T = 5, 1, 0.1
	return p
}

// probeCoSpec models the aggregate memory pressure of n co-located jobs as
// one background streaming application: a moderate mixed read/write stream
// per co-runner, never finishing (ComputeBound), so the probe's tuner
// hill-climbs against a loaded interconnect comparable to the fleet
// machine it stands in for.
func probeCoSpec(n int) workload.Spec {
	d := 4.0 * float64(n)
	return workload.Spec{
		Name: "probe-co", ReadGBs: d, WriteGBs: 0.25 * d, PrivateFrac: 0.5,
		LatencySensitivity: 0.05,
		SharedGB:           0.25, PrivateGBPerNode: 0.1,
		ComputeBound: true,
	}
}

// probe runs one offline tuning simulation and returns the DWP the on-line
// tuner settles on. The seed is derived from the key so every probe is
// deterministic regardless of the order in which keys are first requested.
func (tc *TuningCache) probe(key string, topo *topology.Machine, spec workload.Spec, workers, coRunners int) (float64, error) {
	ws, err := sched.BestWorkerSet(topo, workers)
	if err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	cfg := tc.simCfg
	cfg.MaxTime = probeMaxTime
	h := fnv.New64a()
	h.Write([]byte(key))
	cfg.Seed = tc.seed ^ h.Sum64()
	e := sim.New(topo, cfg)

	if rest := sched.RemainingNodes(topo, ws); coRunners > 0 && len(rest) > 0 {
		if _, err := e.AddApp("probe-co", probeCoSpec(coRunners), rest, policy.FirstTouch{}); err != nil {
			return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
		}
	}
	b := core.NewBWAP(tc.Canonical(topo))
	b.Params = probeParams()
	if _, err := e.AddApp(spec.Name, spec.Scaled(tc.probeScale), ws, b); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	if _, err := e.Run(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	// e.Now() after Run is the probe's elapsed simulated time — a pure
	// function of (key, topology, spec). It is parked here and reported to
	// the observer only when a DWP call consumes the key, because this
	// function may run on a pool goroutine at a wall-clock-dependent point.
	tc.mu.Lock()
	tc.elapsed[key] = e.Now()
	tc.mu.Unlock()
	tuner := b.TunerFor(spec.Name)
	if tuner == nil {
		return 0, fmt.Errorf("fleet: probe %s: no tuner attached", key)
	}
	if err := tuner.Err(); err != nil {
		return 0, fmt.Errorf("fleet: probe %s: %w", key, err)
	}
	return tuner.BestDWP(), nil
}
