package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"bwap/internal/workload"
)

// ErrBadFaultPlan wraps every plan-validity failure from Validate and
// LoadFaultPlan (bad JSON, unknown kinds, negative parameters, impossible
// schedules). I/O errors reading a plan file are not wrapped: they say
// nothing about the plan itself. Callers branch with errors.Is.
var ErrBadFaultPlan = errors.New("fleet: invalid fault plan")

// FaultPlan is a deterministic machine-lifecycle schedule: a set of
// crash/drain/recover/machine-add specs that the fleet materializes into
// lifecycle events at construction, exactly the way SubmitStream
// materializes arrival processes. Two runs with the same plan, seed and
// job stream produce bit-identical event logs — a failure scenario is a
// replayable experiment, not a one-off.
//
// Jitter noise comes from a splitmix64 stream derived from the plan seed
// and the spec index, so editing one spec never shifts another spec's
// occurrence times.
type FaultPlan struct {
	// Seed drives the per-spec jitter streams. Zero falls back to the
	// fleet's Config.Seed.
	Seed uint64 `json:"seed,omitempty"`
	// Faults are materialized in order; each spec owns its jitter stream.
	Faults []FaultSpec `json:"faults"`
}

// Fault kinds accepted by FaultSpec.Kind.
const (
	// FaultCrash kills the machine: in-flight jobs die and re-enter
	// admission with capped exponential backoff until their retry budget
	// runs out (then they fail terminally). Progress since the last
	// graceful evacuation is lost.
	FaultCrash = "crash"
	// FaultDrain stops admission to the machine and gracefully evacuates
	// its running jobs: each job's progress is snapshotted and the
	// remainder resubmitted through the routing/admission tiers.
	FaultDrain = "drain"
	// FaultRecover brings a crashed or drained machine back up and
	// backfills the queue against the restored capacity.
	FaultRecover = "recover"
	// FaultMachineAdd grows the fleet by one machine per occurrence
	// (topology from Config.NewMachine at the new index, shard = index mod
	// shards, engine clock caught up to the lockstep tick count).
	FaultMachineAdd = "machine-add"
)

// FaultSpec is one line of a plan: a kind, a target machine set and an
// occurrence schedule.
type FaultSpec struct {
	// Kind is one of crash, drain, recover, machine-add.
	Kind string `json:"kind"`
	// Machines are the target machine ids; empty means every machine
	// present at boot. Ignored by machine-add (each occurrence creates the
	// next id). Targets may name machines a machine-add occurrence creates
	// later; the event errors at fire time if the machine does not exist
	// yet.
	Machines []int `json:"machines,omitempty"`
	// At is the first occurrence time in simulated seconds.
	At float64 `json:"at"`
	// Every repeats the occurrence with this period (0 = once per target).
	Every float64 `json:"every,omitempty"`
	// Count is the number of occurrences per target (default 1; requires
	// Every when > 1).
	Count int `json:"count,omitempty"`
	// Stagger offsets successive targets by this many seconds — a rolling
	// restart is one drain spec with a stagger and a RecoverAfter.
	Stagger float64 `json:"stagger,omitempty"`
	// Jitter adds uniform [0, Jitter) noise per occurrence from the plan's
	// splitmix64 stream.
	Jitter float64 `json:"jitter,omitempty"`
	// RecoverAfter schedules a matching recover this many seconds after
	// each crash/drain occurrence (0 = the machine stays down).
	RecoverAfter float64 `json:"recover_after,omitempty"`
}

// faultEvent is one materialized occurrence.
type faultEvent struct {
	t    float64
	kind eventKind
	mach int // -1 for machine-add
}

// faultKind maps a spec kind to its event kind.
func faultKind(kind string) (eventKind, error) {
	switch kind {
	case FaultCrash:
		return evCrash, nil
	case FaultDrain:
		return evDrain, nil
	case FaultRecover:
		return evRecover, nil
	case FaultMachineAdd:
		return evMachineAdd, nil
	}
	return 0, fmt.Errorf("fleet: unknown fault kind %q", kind)
}

// Validate checks the plan against a boot-time machine count. Lifecycle
// targets must be existing machines or machines the plan itself adds
// (machine-add occurrences allocate ids machines, machines+1, ... in
// event-time order, so a forward reference is only provably valid when the
// id stays below machines + total adds).
func (p *FaultPlan) Validate(machines int) error {
	adds := 0
	for _, s := range p.Faults {
		if s.Kind == FaultMachineAdd {
			n := s.Count
			if n <= 0 {
				n = 1
			}
			adds += n
		}
	}
	for i, s := range p.Faults {
		kind, err := faultKind(s.Kind)
		if err != nil {
			return fmt.Errorf("%w: fault %d: %v", ErrBadFaultPlan, i, err)
		}
		if s.At < 0 || s.Every < 0 || s.Stagger < 0 || s.Jitter < 0 || s.RecoverAfter < 0 {
			return fmt.Errorf("%w: fault %d (%s): negative time parameter", ErrBadFaultPlan, i, s.Kind)
		}
		if s.Count < 0 {
			return fmt.Errorf("%w: fault %d (%s): negative count %d", ErrBadFaultPlan, i, s.Kind, s.Count)
		}
		if s.Count > 1 && s.Every == 0 {
			return fmt.Errorf("%w: fault %d (%s): count %d needs a period", ErrBadFaultPlan, i, s.Kind, s.Count)
		}
		// A repeating crash/drain whose scheduled recovery can land on or
		// past the next occurrence (jitter counts: it delays the fault, and
		// the paired recover rides RecoverAfter behind it) would re-fault a
		// machine that never came back up — reject the overlap rather than
		// materialize a lifecycle the plan author cannot have meant.
		if s.Count > 1 && s.RecoverAfter > 0 && (kind == evCrash || kind == evDrain) &&
			s.RecoverAfter+s.Jitter >= s.Every {
			return fmt.Errorf("%w: fault %d (%s): recover_after %g + jitter %g overlaps the next occurrence (every %g)",
				ErrBadFaultPlan, i, s.Kind, s.RecoverAfter, s.Jitter, s.Every)
		}
		if kind == evMachineAdd {
			continue
		}
		if machines+adds <= 0 {
			return fmt.Errorf("%w: fault %d (%s): no machines to target", ErrBadFaultPlan, i, s.Kind)
		}
		for _, m := range s.Machines {
			if m < 0 || m >= machines+adds {
				return fmt.Errorf("%w: fault %d (%s): machine %d out of range (fleet of %d, %d planned adds)",
					ErrBadFaultPlan, i, s.Kind, m, machines, adds)
			}
		}
	}
	return nil
}

// materialize expands the plan into a deterministic event list, sorted by
// (time, kind, machine, spec order) — the push order, and therefore the
// sequence-number assignment, is pinned.
func (p *FaultPlan) materialize(machines int, fallbackSeed uint64) ([]faultEvent, error) {
	if err := p.Validate(machines); err != nil {
		return nil, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = fallbackSeed
	}
	var evs []faultEvent
	for i, s := range p.Faults {
		kind, _ := faultKind(s.Kind)
		rng := workload.NewRand(seed + uint64(i)*0x9e3779b97f4a7c15)
		count := s.Count
		if count <= 0 {
			count = 1
		}
		targets := s.Machines
		if kind == evMachineAdd {
			targets = []int{-1}
		} else if len(targets) == 0 {
			targets = make([]int, machines)
			for m := range targets {
				targets[m] = m
			}
		}
		for ti, m := range targets {
			for k := 0; k < count; k++ {
				t := s.At + float64(ti)*s.Stagger + float64(k)*s.Every
				if s.Jitter > 0 {
					t += s.Jitter * rng.Float64()
				}
				evs = append(evs, faultEvent{t: t, kind: kind, mach: m})
				if s.RecoverAfter > 0 && (kind == evCrash || kind == evDrain) {
					evs = append(evs, faultEvent{t: t + s.RecoverAfter, kind: evRecover, mach: m})
				}
			}
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		if evs[a].kind != evs[b].kind {
			return evs[a].kind < evs[b].kind
		}
		return evs[a].mach < evs[b].mach
	})
	return evs, nil
}

// LoadFaultPlan reads a JSON FaultPlan from disk (the bwapd -fault-plan
// flag). Validation happens at fleet construction, when the machine count
// is known.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p FaultPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadFaultPlan, path, err)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("%w: %s: no faults", ErrBadFaultPlan, path)
	}
	return &p, nil
}
