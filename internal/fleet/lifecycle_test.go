package fleet

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bwap/internal/workload"
)

// The lifecycle tests cover the machine drain/crash/recover/add subsystem:
// graceful evacuation preserves progress, crashes retry with capped
// exponential backoff until the budget runs out, capacity changes backfill
// the queue, and — the tentpole property — no amount of churn loses or
// duplicates a job, with the event log staying bit-identical across shard
// counts and with fast-forward on or off.

// submitOne puts a single long-running job into the fleet at time at.
func submitOne(t *testing.T, f *Fleet, name string, workers int, at float64) *Job {
	t.Helper()
	job, err := f.Submit(testSpec(name), workers, 1.0, at)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// recordTypes decodes the fleet log and counts records by type.
func recordTypes(t *testing.T, f *Fleet) map[string]int {
	t.Helper()
	recs, err := DecodeLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, r := range recs {
		types[r.Type]++
	}
	return types
}

// TestDrainEvacuatesWithProgress pins the graceful path: draining a
// machine moves its running job to another machine, carrying the finished
// fraction along so only the remainder re-runs.
func TestDrainEvacuatesWithProgress(t *testing.T) {
	f, err := New(testConfig(PolicyFirstTouch, 3))
	if err != nil {
		t.Fatal(err)
	}
	job := submitOne(t, f, "long", 2, 0)
	if err := f.ProcessDue(); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRunning {
		t.Fatalf("job state %s after admission", job.State)
	}
	first := job.Machine
	if err := f.Advance(5); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRunning {
		t.Fatalf("job finished during warm-up; use a longer spec")
	}
	if err := f.Drain(first); err != nil {
		t.Fatal(err)
	}
	if job.remFrac >= 1 || job.remFrac <= 0 {
		t.Fatalf("evacuation snapshotted remFrac %g, want (0,1)", job.remFrac)
	}
	if job.State != JobRunning || job.Machine == first {
		t.Fatalf("evacuated job: state %s on machine %d (drained %d)", job.State, job.Machine, first)
	}
	// Draining again is a state conflict, as is recovering an up machine.
	if err := f.Drain(first); err == nil {
		t.Fatal("second drain of the same machine succeeded")
	}
	if err := f.Recover(job.Machine); err == nil {
		t.Fatal("recovering an up machine succeeded")
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone || stats.Completed != 1 {
		t.Fatalf("evacuated job ended %s; stats %+v", job.State, stats)
	}
	if stats.Evacuations != 1 || stats.MachinesUp != 1 {
		t.Fatalf("Evacuations=%d MachinesUp=%d, want 1 and 1", stats.Evacuations, stats.MachinesUp)
	}

	// Control: the same machine crashing at the same instant loses the
	// progress snapshot — the job restarts from zero after a backoff — so
	// it must finish strictly later than the graceful evacuation.
	g, err := New(testConfig(PolicyFirstTouch, 3))
	if err != nil {
		t.Fatal(err)
	}
	jg := submitOne(t, g, "long", 2, 0)
	if err := g.ProcessDue(); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(5); err != nil {
		t.Fatal(err)
	}
	m, err := g.machineByID(jg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.crashMachine(m); err != nil {
		t.Fatal(err)
	}
	if jg.State != JobRetryWait || jg.remFrac != 1 {
		t.Fatalf("after crash: state %s remFrac %g, want retry-wait with progress discarded", jg.State, jg.remFrac)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if jg.State != JobDone {
		t.Fatalf("crashed job ended %s", jg.State)
	}
	if jg.Finish <= job.Finish {
		t.Fatalf("crash restart finished at %.2f, not later than the drain evacuation at %.2f; the snapshot bought nothing",
			jg.Finish, job.Finish)
	}
}

// TestCrashRetryBackoff pins the failure path: a crash kills the job,
// schedules a retry one backoff later, and the retry re-places it on a
// surviving machine with no progress carried over.
func TestCrashRetryBackoff(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 5)
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultCrash, Machines: []int{0}, At: 1},
	}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := submitOne(t, f, "victim", 2, 0)
	if err := f.ProcessDue(); err != nil {
		t.Fatal(err)
	}
	if job.Machine != 0 {
		t.Fatalf("job admitted on machine %d, want 0", job.Machine)
	}
	if err := f.Advance(1.5); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRetryWait || job.Attempts != 1 {
		t.Fatalf("after crash: state %s, attempts %d", job.State, job.Attempts)
	}
	// The default backoff is 2·2^0 = 2s: not yet due at +1.9s, due at +3s.
	if err := f.Advance(1.2); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRetryWait {
		t.Fatalf("retry fired before its backoff: state %s at t=%.2f", job.State, f.Now())
	}
	if err := f.Advance(1.5); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRunning || job.Machine != 1 {
		t.Fatalf("after backoff: state %s on machine %d, want running on 1", job.State, job.Machine)
	}
	if job.remFrac != 1 {
		t.Fatalf("crash preserved progress: remFrac %g, want exactly 1", job.remFrac)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 || stats.Retries != 1 || stats.FailedJobs != 0 {
		t.Fatalf("final stats %+v", stats)
	}
	types := recordTypes(t, f)
	for _, want := range []string{"crash", "retry"} {
		if types[want] != 1 {
			t.Fatalf("%d %q records, want 1 (types: %v)", types[want], want, types)
		}
	}
}

// TestRetryBudgetExhaustion pins terminal failure: with no retry budget, a
// single crash fails the job permanently — a visible "fail" record, not a
// silent loss — and the run still terminates cleanly.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 7)
	cfg.Machines = 1
	cfg.MaxRetries = -1 // no retries
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultCrash, Machines: []int{0}, At: 1, RecoverAfter: 2},
	}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := submitOne(t, f, "doomed", 2, 0)
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobFailed || job.Attempts != 1 {
		t.Fatalf("job ended %s with %d attempts, want failed after 1", job.State, job.Attempts)
	}
	if stats.FailedJobs != 1 || stats.Completed != 0 || stats.Retries != 0 {
		t.Fatalf("final stats %+v", stats)
	}
	if types := recordTypes(t, f); types["fail"] != 1 {
		t.Fatalf("%d fail records, want 1", types["fail"])
	}
	if err := f.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryBudgetAcrossWaves exercises a budget > 0: the first crash
// grants a retry, the second exhausts the budget.
func TestRetryBudgetAcrossWaves(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 9)
	cfg.Machines = 1
	cfg.MaxRetries = 1
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultCrash, Machines: []int{0}, At: 1, Every: 5, Count: 3, RecoverAfter: 1},
	}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := submitOne(t, f, "doomed", 2, 0)
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobFailed || job.Attempts != 2 {
		t.Fatalf("job ended %s with %d attempts, want failed after 2", job.State, job.Attempts)
	}
	if stats.Retries != 1 || stats.FailedJobs != 1 {
		t.Fatalf("final stats %+v", stats)
	}
}

// TestRecoverBackfillsQueue pins the repair path: jobs stuck in the queue
// because every machine was down admit the instant one recovers.
func TestRecoverBackfillsQueue(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 11)
	cfg.Machines = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Drain(0); err != nil {
		t.Fatal(err)
	}
	job := submitOne(t, f, "waiter", 2, 0)
	if err := f.ProcessDue(); err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued {
		t.Fatalf("job state %s with the only machine drained, want queued", job.State)
	}
	if err := f.Recover(0); err != nil {
		t.Fatal(err)
	}
	if job.State != JobRunning {
		t.Fatalf("job state %s after recover, want running", job.State)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMachineAddGrowsFleet pins fleet growth: a machine-add event creates
// the next machine id with a lockstep-synchronized engine and immediately
// backfills the queue against the new capacity.
func TestMachineAddGrowsFleet(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 13)
	cfg.Machines = 1
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultMachineAdd, At: 2},
	}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two whole-machine jobs: the second must wait for the new machine.
	j1 := submitOne(t, f, "first", 4, 0)
	j2 := submitOne(t, f, "second", 4, 0)
	if err := f.Advance(3); err != nil {
		t.Fatal(err)
	}
	if len(f.machines) != 2 {
		t.Fatalf("fleet has %d machines after the add, want 2", len(f.machines))
	}
	if got, want := f.machines[1].eng.Ticks(), f.machines[0].eng.Ticks(); got != want {
		t.Fatalf("added engine at tick %d, incumbents at %d: lockstep broken", got, want)
	}
	if j2.State != JobRunning || j2.Machine != 1 {
		t.Fatalf("queued job: state %s on machine %d, want running on 1", j2.State, j2.Machine)
	}
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if j1.State != JobDone || j2.State != JobDone || stats.Completed != 2 {
		t.Fatalf("jobs ended %s/%s; stats %+v", j1.State, j2.State, stats)
	}
	views := f.Machines()
	if len(views) != 2 || views[1].State != "up" || views[1].Nodes != 4 {
		t.Fatalf("machine views %+v", views)
	}
	if types := recordTypes(t, f); types["machine-add"] != 1 {
		t.Fatalf("%d machine-add records, want 1", types["machine-add"])
	}
}

// TestStrandedQueueFailsFast: a queue that can never drain (every machine
// permanently down, no pending events) must error immediately instead of
// silently succeeding or burning the clock to MaxSimTime.
func TestStrandedQueueFailsFast(t *testing.T) {
	cfg := testConfig(PolicyFirstTouch, 15)
	cfg.Machines = 1
	cfg.Faults = &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultDrain, Machines: []int{0}, At: 1}, // never recovers
	}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitOne(t, f, "stuck", 2, 0)
	_, err = f.Run()
	if err == nil || !strings.Contains(err.Error(), "stranded") {
		t.Fatalf("Run() = %v, want a stranded-queue error", err)
	}
	if err := f.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanValidation rejects malformed plans at construction.
func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"unknown kind", FaultPlan{Faults: []FaultSpec{{Kind: "explode", At: 1}}}, "unknown fault kind"},
		{"negative time", FaultPlan{Faults: []FaultSpec{{Kind: FaultCrash, At: -1}}}, "negative time"},
		{"count without period", FaultPlan{Faults: []FaultSpec{{Kind: FaultCrash, At: 1, Count: 2}}}, "needs a period"},
		{"machine out of range", FaultPlan{Faults: []FaultSpec{{Kind: FaultCrash, At: 1, Machines: []int{9}}}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(PolicyFirstTouch, 1)
			cfg.Faults = &tc.plan
			_, err := New(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	// A forward reference to a machine the plan itself adds is legal.
	ok := FaultPlan{Faults: []FaultSpec{
		{Kind: FaultMachineAdd, At: 1},
		{Kind: FaultCrash, Machines: []int{2}, At: 2},
	}}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("forward reference rejected: %v", err)
	}
}

// TestFaultPlanJitterDeterminism pins the per-spec noise streams: the same
// plan materializes identically every time, and editing one spec never
// shifts another spec's occurrence times.
func TestFaultPlanJitterDeterminism(t *testing.T) {
	base := FaultPlan{Seed: 99, Faults: []FaultSpec{
		{Kind: FaultCrash, Machines: []int{0, 1}, At: 5, Every: 7, Count: 3, Jitter: 2},
		{Kind: FaultDrain, Machines: []int{2}, At: 9, Jitter: 3, RecoverAfter: 4},
	}}
	a, err := base.materialize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.materialize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("materialize lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Change spec 1; spec 0's crash times must not move.
	edited := base
	edited.Faults = append([]FaultSpec(nil), base.Faults...)
	edited.Faults[1].Jitter = 0.5
	c, err := edited.materialize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	crashTimes := func(evs []faultEvent) []float64 {
		var out []float64
		for _, e := range evs {
			if e.kind == evCrash {
				out = append(out, e.t)
			}
		}
		return out
	}
	ca, cc := crashTimes(a), crashTimes(c)
	if len(ca) != len(cc) {
		t.Fatalf("crash counts differ: %d vs %d", len(ca), len(cc))
	}
	for i := range ca {
		if ca[i] != cc[i] {
			t.Fatalf("editing spec 1 moved spec 0's crash %d: %.6f vs %.6f", i, ca[i], cc[i])
		}
	}
}

// chaosTestPlan is the shared churn schedule for the conservation and
// replay-invariance tests: a recovering drain loop, staggered jittered
// crash waves across two machines, and a mid-run fleet growth.
func chaosTestPlan() *FaultPlan {
	return &FaultPlan{Faults: []FaultSpec{
		{Kind: FaultDrain, Machines: []int{0}, At: 2, Every: 13, Count: 3, RecoverAfter: 5},
		{Kind: FaultCrash, Machines: []int{1, 2}, At: 4, Every: 11, Count: 3, Stagger: 3, Jitter: 1, RecoverAfter: 4},
		{Kind: FaultMachineAdd, At: 9},
	}}
}

// chaosShardConfig is shardConfig plus the chaos plan.
func chaosShardConfig(shards, workers int, disableFF bool) Config {
	cfg := shardConfig(PolicyFirstTouch, AdmitMostFree, shards, workers, 31)
	cfg.Faults = chaosTestPlan()
	cfg.SimCfg.DisableFastForward = disableFF
	return cfg
}

// TestConservationUnderChaos is the tentpole property test: stepping the
// fleet through drain/crash/recover/add churn in small Advance windows,
// the job-conservation invariant must hold at every barrier — submitted =
// pending + queued + retry-wait + running + completed + failed, counters
// consistent — and every job must reach a terminal state in the end. Runs
// with fast-forward on and off and demands bit-identical logs.
func TestConservationUnderChaos(t *testing.T) {
	ffForcedOff := os.Getenv("BWAP_NO_FASTFORWARD") == "1"
	var logs [][]byte
	for _, disableFF := range []bool{true, false} {
		f, err := New(chaosShardConfig(2, 2, disableFF))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SubmitStream(shardStreams()); err != nil {
			t.Fatal(err)
		}
		if err := f.Conservation(); err != nil {
			t.Fatalf("disableFF=%v: before start: %v", disableFF, err)
		}
		for f.Now() < 120 {
			if err := f.Advance(0.7); err != nil {
				t.Fatalf("disableFF=%v: advance at t=%.1f: %v", disableFF, f.Now(), err)
			}
			if err := f.Conservation(); err != nil {
				t.Fatalf("disableFF=%v: at t=%.1f: %v", disableFF, f.Now(), err)
			}
		}
		stats, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Conservation(); err != nil {
			t.Fatalf("disableFF=%v: after drain: %v", disableFF, err)
		}
		if stats.Completed+stats.FailedJobs != stats.Jobs {
			t.Fatalf("disableFF=%v: %d jobs, %d completed + %d failed: some never reached a terminal state",
				disableFF, stats.Jobs, stats.Completed, stats.FailedJobs)
		}
		if stats.Evacuations == 0 && stats.Retries == 0 {
			t.Fatalf("disableFF=%v: chaos plan touched no jobs; the property is vacuous", disableFF)
		}
		if stats.Machines != 9 {
			t.Fatalf("disableFF=%v: %d machines after the add, want 9", disableFF, stats.Machines)
		}
		logs = append(logs, f.LogBytes())
	}
	if ffForcedOff {
		return // both runs used the naive path; the comparison is vacuous
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("fast-forward changed the chaos log")
	}
}

// TestChaosTraceReplayShardInvariance extends the replay-equivalence suite
// with fault injection: a recorded chaos log, re-ingested via ReadTrace
// and rerun with the same FaultPlan, reproduces itself bit for bit at
// 1, 2 and 4 shards.
func TestChaosTraceReplayShardInvariance(t *testing.T) {
	rec, stats := runFleet(t, chaosShardConfig(1, 1, false), shardStreams())
	if stats.Evacuations == 0 && stats.Retries == 0 {
		t.Fatal("recorded run hit no faults; shard invariance would be vacuous")
	}
	// shardStreams uses custom specs, so the trace needs a resolver that
	// maps their names back (modest is testSpec with smaller bandwidth).
	resolve := func(name string) (workload.Spec, error) {
		spec := testSpec(name)
		if name == "modest" {
			spec.ReadGBs, spec.WriteGBs = 3, 0.5
		}
		return spec, nil
	}
	trace, err := ReadTrace(rec.LogBytes(), resolve)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		f, _ := runFleet(t, chaosShardConfig(shards, shards, false), trace)
		if !bytes.Equal(rec.LogBytes(), f.LogBytes()) {
			t.Fatalf("chaos replay at %d shards changed the log\n--- recorded ---\n%s\n--- replay ---\n%s",
				shards, rec.LogBytes(), f.LogBytes())
		}
	}
}

// TestLifecycleRecordsWellFormed drives the chaos plan once and checks the
// structural contract of the new record kinds.
func TestLifecycleRecordsWellFormed(t *testing.T) {
	f, _ := runFleet(t, chaosShardConfig(2, 1, false), shardStreams())
	recs, err := DecodeLog(f.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Type != "schema" || recs[0].Version != LogSchemaVersion {
		t.Fatalf("log opens with %+v, want a schema record at version %d", recs[0], LogSchemaVersion)
	}
	for i, r := range recs {
		switch r.Type {
		case "drain", "crash", "recover", "machine-add":
			if r.Machine < 0 {
				t.Fatalf("record %d (%s) without a machine: %+v", i, r.Type, r)
			}
		case "retry":
			if r.Job <= 0 || r.Attempt <= 0 || r.RetryAt <= r.T {
				t.Fatalf("malformed retry record %d: %+v", i, r)
			}
		case "fail":
			if r.Job <= 0 || r.Attempt <= 0 {
				t.Fatalf("malformed fail record %d: %+v", i, r)
			}
		}
	}
}

// TestEvacuatedJobWorkScaleUnchanged guards the trace-replay contract: the
// arrive record's WorkScale is the job's submission shape, so evacuation
// must track progress in a separate field rather than mutating WorkScale.
func TestEvacuatedJobWorkScaleUnchanged(t *testing.T) {
	f, err := New(testConfig(PolicyFirstTouch, 21))
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("tracked")
	job, err := f.Submit(spec, 2, 0.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ProcessDue(); err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain(job.Machine); err != nil {
		t.Fatal(err)
	}
	if job.WorkScale != 0.7 {
		t.Fatalf("evacuation mutated WorkScale to %g", job.WorkScale)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadFaultPlan round-trips a plan file and rejects junk.
func TestLoadFaultPlan(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/plan.json"
	if err := os.WriteFile(good, []byte(`{"faults":[{"kind":"drain","machines":[0],"at":5,"recover_after":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFaultPlan(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 1 || p.Faults[0].Kind != FaultDrain || p.Faults[0].RecoverAfter != 3 {
		t.Fatalf("loaded plan %+v", p)
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"faults": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFaultPlan(bad); err == nil {
		t.Fatal("truncated plan loaded without error")
	}
	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFaultPlan(empty); err == nil {
		t.Fatal("empty plan loaded without error")
	}

	// FaultSpec workload sanity: arrival classes beyond the plan keep
	// materializing from the same splitmix64 stream regardless of plan
	// presence — the plan's RNG is private to it.
	times1, err := workload.ArrivalSpec{Process: workload.Poisson, Rate: 1, Count: 3}.Times(42)
	if err != nil {
		t.Fatal(err)
	}
	times2, err := workload.ArrivalSpec{Process: workload.Poisson, Rate: 1, Count: 3}.Times(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times1 {
		if times1[i] != times2[i] {
			t.Fatal("arrival stream not deterministic")
		}
	}
}
