package fleet

// Stats summarizes a fleet's state, serialized by the daemon's /fleet
// endpoint and rendered by the fleet experiment.
type Stats struct {
	// Policy is the placement policy in force.
	Policy string `json:"policy"`
	// Routing and Admission name the job→shard tier and the node-selection
	// policy.
	Routing   string `json:"routing"`
	Admission string `json:"admission"`
	// Machines is the fleet size; MachinesUp the members currently in
	// service; Shards the partition count; Workers the advance pool bound.
	Machines   int `json:"machines"`
	MachinesUp int `json:"machines_up"`
	Shards     int `json:"shards"`
	Workers    int `json:"workers"`
	// EngineVersion is the advance engine in force (1 = per-tick barrier
	// reference, 2 = conservative-lookahead windowed; see
	// Config.EngineVersion).
	EngineVersion int `json:"engine_version"`
	// SimTime is the current simulated time.
	SimTime float64 `json:"sim_time"`

	// Jobs counts every submission; Pending/Queued/RetryWait/Running/
	// Completed/FailedJobs partition it (the job-conservation invariant:
	// the six always sum to Jobs).
	Jobs       int `json:"jobs"`
	Pending    int `json:"pending"`
	Queued     int `json:"queued"`
	RetryWait  int `json:"retry_wait"`
	Running    int `json:"running"`
	Completed  int `json:"completed"`
	FailedJobs int `json:"failed_jobs"`

	// Evacuations counts jobs gracefully moved off draining machines;
	// Retries counts crash-retry grants (a job killed twice counts twice).
	Evacuations int `json:"evacuations"`
	Retries     int `json:"retries"`

	// MeanWait is the mean time from arrival to admission over completed
	// jobs; MeanRuntime the mean admission-to-finish time; MeanTurnaround
	// their sum measured end to end.
	MeanWait       float64 `json:"mean_wait"`
	MeanRuntime    float64 `json:"mean_runtime"`
	MeanTurnaround float64 `json:"mean_turnaround"`
	// ThroughputJobsPerSec is completed jobs per simulated second.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// Utilization is the busy-node-seconds fraction across the fleet.
	Utilization float64 `json:"utilization"`

	// CacheHits/CacheMisses count this fleet's tuning-cache lookups
	// (admissions and retunes, bwap policy only), summed over shards.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheEvictions/CacheRestored/CacheEntries report the backing tuning
	// cache's DWP layer: LRU evictions under a CacheMaxEntries bound,
	// entries loaded from a snapshot file, and current occupancy. Unlike
	// the hit/miss counters these are properties of the (possibly shared)
	// cache itself, not of this fleet's lookups alone.
	CacheEvictions int64 `json:"cache_evictions"`
	CacheRestored  int64 `json:"cache_restored"`
	CacheEntries   int   `json:"cache_entries"`
	// TickSolves/TickReplays report the engines' quiescent-interval
	// fast-forward economics, summed over machines: ticks that ran a full
	// flow build + memsys solve vs. ticks replayed from a cached solve.
	// A healthy steady-state fleet replays most ticks.
	TickSolves  int64 `json:"tick_solves"`
	TickReplays int64 `json:"tick_replays"`
	// AdvanceBatches counts barrier-bound advance steps (each sized by
	// batchTicks); AdvanceTicks is the total ticks those steps covered.
	// Their ratio — the mean barrier-free window — measures how well the
	// engine's horizon prediction amortizes the shard barrier: sharper
	// horizons mean fewer, longer batches for the same tick sequence.
	AdvanceBatches int64 `json:"advance_batches"`
	AdvanceTicks   int64 `json:"advance_ticks"`
	// LogRecords is the number of event-log lines written.
	LogRecords int `json:"log_records"`
}

// ShardStat is one shard's slice of the fleet counters, serialized by the
// daemon's /shards endpoint. All fields are maintained by the scheduler or
// behind the per-tick barrier, so a snapshot taken between Advance calls
// is consistent.
type ShardStat struct {
	// Shard is the shard id; Machines the global machine ids it owns.
	Shard    int   `json:"shard"`
	Machines []int `json:"machines"`
	// Nodes is the shard's total NUMA-node count.
	Nodes int `json:"nodes"`
	// SimTime mirrors the lockstep clock.
	SimTime float64 `json:"sim_time"`
	// Running/Admitted/Completed/Retunes count this shard's share of the
	// stream.
	Running   int `json:"running"`
	Admitted  int `json:"admitted"`
	Completed int `json:"completed"`
	Retunes   int `json:"retunes"`
	// Utilization is the shard's busy-node-seconds fraction.
	Utilization float64 `json:"utilization"`
	// CacheHits/CacheMisses count tuning-cache lookups attributed to this
	// shard's admissions and retunes.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// LogRecords counts merged-log lines attributed to this shard
	// (arrive/queue records are router-level and belong to none).
	LogRecords int `json:"log_records"`
}

// Stats computes the current snapshot.
func (f *Fleet) Stats() *Stats {
	s := &Stats{
		Policy:         f.cfg.Policy,
		Routing:        f.router.Name(),
		Admission:      f.admission.Name(),
		Machines:       len(f.machines),
		MachinesUp:     f.machinesUp(),
		Shards:         len(f.shards),
		Workers:        f.workers,
		EngineVersion:  f.cfg.EngineVersion,
		SimTime:        f.now,
		Jobs:           len(f.jobs),
		Evacuations:    f.evacuations,
		Retries:        f.retries,
		AdvanceBatches: f.batches,
		AdvanceTicks:   f.batchTicksSum,
		LogRecords:     f.log.seq,
	}
	cs := f.cache.Stats()
	s.CacheEvictions = cs.Evictions
	s.CacheRestored = cs.Restored
	s.CacheEntries = cs.Entries
	busy := 0.0
	for _, sh := range f.shards {
		s.CacheHits += sh.cacheHits
		s.CacheMisses += sh.cacheMisses
		busy += sh.busyNodeSeconds
	}
	for _, m := range f.machines {
		solves, replays := m.eng.FastForwardStats()
		s.TickSolves += int64(solves)
		s.TickReplays += int64(replays)
	}
	var wait, run, turn float64
	for _, j := range f.jobs {
		switch j.State {
		case JobPending:
			s.Pending++
		case JobQueued:
			s.Queued++
		case JobRunning:
			s.Running++
		case JobDone:
			s.Completed++
			wait += j.Admit - j.Arrival
			run += j.Finish - j.Admit
			turn += j.Finish - j.Arrival
		case JobRetryWait:
			s.RetryWait++
		case JobFailed:
			s.FailedJobs++
		}
	}
	if s.Completed > 0 {
		n := float64(s.Completed)
		s.MeanWait = wait / n
		s.MeanRuntime = run / n
		s.MeanTurnaround = turn / n
	}
	if f.now > 0 {
		s.ThroughputJobsPerSec = float64(s.Completed) / f.now
		s.Utilization = busy / (f.now * float64(f.totalNodes))
	}
	return s
}

// ShardStats snapshots every shard's counters, by shard id.
func (f *Fleet) ShardStats() []ShardStat {
	out := make([]ShardStat, len(f.shards))
	for i, sh := range f.shards {
		st := ShardStat{
			Shard:       sh.id,
			Nodes:       sh.nodes,
			SimTime:     sh.now,
			Running:     sh.running(),
			Admitted:    sh.admitted,
			Completed:   sh.completed,
			Retunes:     sh.retunes,
			CacheHits:   sh.cacheHits,
			CacheMisses: sh.cacheMisses,
			LogRecords:  sh.records,
		}
		for _, m := range sh.machines {
			st.Machines = append(st.Machines, m.id)
		}
		if f.now > 0 && sh.nodes > 0 {
			st.Utilization = sh.busyNodeSeconds / (f.now * float64(sh.nodes))
		}
		out[i] = st
	}
	return out
}
