package fleet

// Stats summarizes a fleet's state, serialized by the daemon's /fleet
// endpoint and rendered by the fleet experiment.
type Stats struct {
	// Policy is the placement policy in force.
	Policy string `json:"policy"`
	// Machines is the fleet size.
	Machines int `json:"machines"`
	// SimTime is the current simulated time.
	SimTime float64 `json:"sim_time"`

	// Jobs counts every submission; Pending/Queued/Running/Completed
	// partition it.
	Jobs      int `json:"jobs"`
	Pending   int `json:"pending"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`

	// MeanWait is the mean time from arrival to admission over completed
	// jobs; MeanRuntime the mean admission-to-finish time; MeanTurnaround
	// their sum measured end to end.
	MeanWait       float64 `json:"mean_wait"`
	MeanRuntime    float64 `json:"mean_runtime"`
	MeanTurnaround float64 `json:"mean_turnaround"`
	// ThroughputJobsPerSec is completed jobs per simulated second.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// Utilization is the busy-node-seconds fraction across the fleet.
	Utilization float64 `json:"utilization"`

	// CacheHits/CacheMisses count this fleet's tuning-cache lookups
	// (admissions and retunes, bwap policy only).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// LogRecords is the number of event-log lines written.
	LogRecords int `json:"log_records"`
}

// Stats computes the current snapshot.
func (f *Fleet) Stats() *Stats {
	s := &Stats{
		Policy:      f.cfg.Policy,
		Machines:    len(f.machines),
		SimTime:     f.now,
		Jobs:        len(f.jobs),
		CacheHits:   f.cacheHits,
		CacheMisses: f.cacheMisses,
		LogRecords:  f.log.seq,
	}
	var wait, run, turn float64
	for _, j := range f.jobs {
		switch j.State {
		case JobPending:
			s.Pending++
		case JobQueued:
			s.Queued++
		case JobRunning:
			s.Running++
		case JobDone:
			s.Completed++
			wait += j.Admit - j.Arrival
			run += j.Finish - j.Admit
			turn += j.Finish - j.Arrival
		}
	}
	if s.Completed > 0 {
		n := float64(s.Completed)
		s.MeanWait = wait / n
		s.MeanRuntime = run / n
		s.MeanTurnaround = turn / n
	}
	if f.now > 0 {
		s.ThroughputJobsPerSec = float64(s.Completed) / f.now
		s.Utilization = f.busyNodeSeconds / (f.now * float64(f.totalNodes))
	}
	return s
}
