package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestServerScrapeDuringChaosEngineV2 hammers the read-only HTTP surfaces
// while a chaos-plan fleet advances under the conservative-lookahead
// engine. The exposition endpoints render off the server mutex (behind
// the observer's own lock), so this is the regression net for the
// snapshot/render split: under -race it proves scrapes never observe the
// fleet mid-advance, and without -race it still exercises the
// stalled-scraper-vs-driver interleaving.
func TestServerScrapeDuringChaosEngineV2(t *testing.T) {
	cfg := v2(chaosShardConfig(2, 2, false))
	var spans bytes.Buffer
	cfg.Obs = NewObserver(ObserverConfig{SpanW: &spans})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 500
	s.Tick = time.Millisecond
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Start()
	defer s.Stop()

	// A burst of jobs keeps the background driver advancing through the
	// chaos plan's drain/crash/recover windows while the scrapers run.
	for i := 0; i < 4; i++ {
		postSubmit(t, ts.URL, `{"workload":"SC","workers":2,"work_scale":0.5,"count":3}`)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/timeline?window=2", "/fleet", "/jobs", "/machines"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("read %s: %v", p, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", p, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	time.Sleep(200 * time.Millisecond) //bwap:wallclock let racing handlers overlap the real driver for a while
	close(stop)
	wg.Wait()
	s.Stop()

	s.mu.Lock()
	driveErr, now := s.driveErr, f.Now()
	s.mu.Unlock()
	if driveErr != nil {
		t.Fatalf("background driver failed mid-hammer: %v", driveErr)
	}
	if now <= 0 {
		t.Fatal("driver never advanced simulated time; the hammer raced nothing")
	}
	if err := f.Observer().CloseSpans(); err != nil {
		t.Fatal(err)
	}
	if spans.Len() == 0 {
		t.Fatal("no spans recorded during the chaos run")
	}
}
