package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bwap/internal/sim"
)

// newLifecycleServer boots a 2-machine, 2-shard server for the
// drain/recover endpoint tests.
func newLifecycleServer(t *testing.T) *httptest.Server {
	t.Helper()
	f, err := New(Config{
		Machines:   2,
		Shards:     2,
		Workers:    2,
		NewMachine: smallMachine,
		SimCfg:     sim.Config{Seed: 27},
		Policy:     PolicyBWAP,
		Seed:       27,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.SimRate = 2000
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() { ts.Close(); s.Stop() })
	return ts
}

// lifecyclePost hits a lifecycle endpoint and returns the status code plus
// the decoded machine view (valid only on 200).
func lifecyclePost(t *testing.T, url string) (int, MachineView) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view MachineView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, view
}

// TestServerLifecycleEndpoints walks the /machines, /drain and /recover
// status-code contract: 405 on wrong method, 400 on a garbled id, 404 on
// an unknown machine, 409 on a state conflict, and machine views on
// success.
func TestServerLifecycleEndpoints(t *testing.T) {
	ts := newLifecycleServer(t)

	var views []MachineView
	getJSON(t, ts.URL+"/machines", &views)
	if len(views) != 2 || views[0].State != "up" || views[1].State != "up" {
		t.Fatalf("/machines = %+v, want two up machines", views)
	}
	if views[1].Shard != 1 || views[1].FreeNodes != views[1].Nodes {
		t.Fatalf("machine 1 view %+v", views[1])
	}

	if resp, err := http.Get(ts.URL + "/drain?machine=0"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /drain = %d, want 405", resp.StatusCode)
		}
	}
	if code, _ := lifecyclePost(t, ts.URL+"/drain?machine=banana"); code != http.StatusBadRequest {
		t.Fatalf("drain banana = %d, want 400", code)
	}
	if code, _ := lifecyclePost(t, ts.URL+"/drain?machine=9"); code != http.StatusNotFound {
		t.Fatalf("drain unknown machine = %d, want 404", code)
	}

	code, view := lifecyclePost(t, ts.URL+"/drain?machine=0")
	if code != http.StatusOK || view.State != "drained" {
		t.Fatalf("drain = %d %+v, want 200 drained", code, view)
	}
	if code, _ := lifecyclePost(t, ts.URL+"/drain?machine=0"); code != http.StatusConflict {
		t.Fatalf("double drain = %d, want 409", code)
	}
	if code, _ := lifecyclePost(t, ts.URL+"/recover?machine=1"); code != http.StatusConflict {
		t.Fatalf("recover of an up machine = %d, want 409", code)
	}

	code, view = lifecyclePost(t, ts.URL+"/recover?machine=0")
	if code != http.StatusOK || view.State != "up" {
		t.Fatalf("recover = %d %+v, want 200 up", code, view)
	}

	// The fleet view carries the lifecycle counters.
	var stats Stats
	getJSON(t, ts.URL+"/fleet", &stats)
	if stats.MachinesUp != 2 {
		t.Fatalf("MachinesUp = %d after recover, want 2", stats.MachinesUp)
	}
}

// TestServerLifecycleChurnUnderLoad is the -race audit for the lifecycle
// paths: jobs stream in over HTTP while machine 1 is drained and recovered
// in a tight loop and pollers read /machines and /fleet — all against the
// live driver. Evacuation, backfill and the machine-state reads must be
// fully serialized with the advancing scheduler; any unguarded state is a
// -race failure here. Every job must still complete: drains are graceful,
// so churn may slow the stream but never lose a job.
func TestServerLifecycleChurnUnderLoad(t *testing.T) {
	ts := newLifecycleServer(t)

	const body = `{"spec":{"Name":"churnjob","ReadGBs":10,"WriteGBs":1,"PrivateFrac":0.3,
"LatencySensitivity":0.2,"SyncFactor":0.1,"WorkGB":400,"SharedGB":0.25,"PrivateGBPerNode":0.1},
"workers":2,"work_scale":0.05}`
	const jobs = 8

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// 409s are expected: the loop races itself and the scheduler.
			if code, _ := lifecyclePost(t, ts.URL+"/drain?machine=1"); code == http.StatusOK {
				time.Sleep(time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
				lifecyclePost(t, ts.URL+"/recover?machine=1")
			}
		}
	}()
	var pollers sync.WaitGroup
	for _, path := range []string{"/machines", "/fleet"} {
		pollers.Add(1)
		go func(path string) {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(path)
	}

	var submitters sync.WaitGroup
	for i := 0; i < 4; i++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for j := 0; j < jobs/4; j++ {
				postSubmit(t, ts.URL, body)
			}
		}()
	}
	submitters.Wait()

	deadline := time.Now().Add(30 * time.Second) //bwap:wallclock polling deadline for the real background driver
	var stats Stats
	for {
		getJSON(t, ts.URL+"/fleet", &stats)
		if stats.Completed == jobs {
			break
		}
		if time.Now().After(deadline) { //bwap:wallclock polling deadline for the real background driver
			t.Fatalf("stream did not drain under churn: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond) //bwap:wallclock poll interval against the real driver goroutine
	}
	close(stop)
	churn.Wait()
	pollers.Wait()

	if stats.FailedJobs != 0 {
		t.Fatalf("graceful drains failed %d jobs: %+v", stats.FailedJobs, stats)
	}
	// Leave the fleet healthy; a trailing drain may have left machine 1
	// down (recover may 409 if the churn loop already brought it back).
	lifecyclePost(t, ts.URL+"/recover?machine=1")
	var views []MachineView
	getJSON(t, ts.URL+"/machines", &views)
	if views[1].State != "up" {
		t.Fatalf("machine 1 ended %q, want up", views[1].State)
	}
}
