package fleet

import (
	"bytes"
	"os"
	"testing"

	"bwap/internal/sim"
)

// The fleet fast-forward tests extend the PR 3 replay-equivalence table
// with the quiescent-interval axis: for every routing policy and shard
// count, the merged JSONL event log must be byte-identical with
// fast-forward on and off. The on-path batches barrier-free replay windows
// and memoizes per-machine solves; the off-path is the naive
// solve-every-tick reference kept alive by BWAP_NO_FASTFORWARD=1.

func ffShardConfig(routing string, shards int, disable bool) Config {
	cfg := shardConfig(PolicyFirstTouch, AdmitMostFree, shards, shards, 29)
	cfg.Routing = routing
	cfg.SimCfg.DisableFastForward = disable
	return cfg
}

// TestFastForwardFleetEquivalence is the tentpole property test: all three
// routing policies at 1, 2 and 4 shards, fast-forward on vs. off,
// byte-identical logs and identical headline stats.
func TestFastForwardFleetEquivalence(t *testing.T) {
	if os.Getenv("BWAP_NO_FASTFORWARD") == "1" {
		t.Skip("BWAP_NO_FASTFORWARD=1 forces the naive path everywhere; on-vs-off comparison would be vacuous")
	}
	for _, routing := range []string{RouteLeastLoaded, RouteHashAffinity, RouteRoundRobin} {
		t.Run(routing, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				fOff, sOff := runFleet(t, ffShardConfig(routing, shards, true), shardStreams())
				fOn, sOn := runFleet(t, ffShardConfig(routing, shards, false), shardStreams())
				if !bytes.Equal(fOff.LogBytes(), fOn.LogBytes()) {
					t.Fatalf("shards=%d: fast-forward changed the log\n--- off ---\n%s\n--- on ---\n%s",
						shards, fOff.LogBytes(), fOn.LogBytes())
				}
				if sOff.Completed != sOn.Completed || sOff.MeanTurnaround != sOn.MeanTurnaround ||
					sOff.Utilization != sOn.Utilization || sOff.LogRecords != sOn.LogRecords {
					t.Fatalf("shards=%d: fast-forward changed stats: %+v vs %+v", shards, sOff, sOn)
				}
				if sOff.TickReplays != 0 {
					t.Fatalf("shards=%d: disabled fleet replayed %d ticks", shards, sOff.TickReplays)
				}
				if sOn.TickReplays == 0 {
					t.Fatalf("shards=%d: fast-forward never engaged (equivalence would be vacuous)", shards)
				}
			}
		})
	}
}

// TestFastForwardFleetEquivalenceBWAP covers the DWP policy path — cache
// hits, coalesced retunes (placement churn mid-run) and migration backlog
// draining — against a shared pre-warmed cache, so the dwp/cache_hit log
// fields are exercised too.
func TestFastForwardFleetEquivalenceBWAP(t *testing.T) {
	var base []byte
	for _, disable := range []bool{true, false} {
		cache := NewTuningCache(sim.Config{Seed: 29}, 0, 29)
		warm := shardConfig(PolicyBWAP, AdmitMostFree, 1, 1, 29)
		warm.Cache = cache
		warm.SimCfg.DisableFastForward = disable
		runFleet(t, warm, shardStreams())

		cfg := shardConfig(PolicyBWAP, AdmitMostFree, 4, 4, 29)
		cfg.Cache = cache
		cfg.SimCfg.DisableFastForward = disable
		f, stats := runFleet(t, cfg, shardStreams())
		if stats.CacheMisses != 0 {
			t.Fatalf("disable=%v: %d probes against a warm cache", disable, stats.CacheMisses)
		}
		if base == nil {
			base = f.LogBytes()
			continue
		}
		if !bytes.Equal(base, f.LogBytes()) {
			t.Fatal("fast-forward changed the bwap log")
		}
	}
}
