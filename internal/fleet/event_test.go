package fleet

import (
	"container/heap"
	"math/rand"
	"testing"
)

// TestEventHeapKindTiebreak pins the exact tiebreak replay determinism
// depends on: at equal timestamps, the eight kinds pop in the documented
// order — completion, crash, drain, recover, machine-add, arrival, retry,
// retune — regardless of push order.
func TestEventHeapKindTiebreak(t *testing.T) {
	want := []eventKind{evComplete, evCrash, evDrain, evRecover, evMachineAdd, evArrive, evRetry, evRetune}
	var h eventHeap
	for i := len(want) - 1; i >= 0; i-- { // reverse push order
		heap.Push(&h, &event{t: 1, kind: want[i], seq: len(want) - i})
	}
	for i, k := range want {
		ev := heap.Pop(&h).(*event)
		if ev.kind != k {
			t.Fatalf("pop %d: kind %v, want %v", i, ev.kind, k)
		}
	}
}

// TestEventKindOrderPinned freezes the numeric slots: reordering the enum
// would silently reorder same-timestamp events and break replay of every
// recorded log.
func TestEventKindOrderPinned(t *testing.T) {
	slots := map[eventKind]int{
		evComplete: 0, evCrash: 1, evDrain: 2, evRecover: 3,
		evMachineAdd: 4, evArrive: 5, evRetry: 6, evRetune: 7,
	}
	for k, want := range slots {
		if int(k) != want {
			t.Fatalf("event kind %v has slot %d, want %d", k, int(k), want)
		}
	}
}

// TestEventHeapPopOrderProperty drives random interleaved push/pop batches
// through the heap and checks two properties against a brute-force
// reference multiset: every pop returns the (t, kind, seq)-minimum of the
// live contents, and a full drain comes out totally ordered. Timestamps
// are drawn from a small set so kind and seq tiebreaks fire constantly.
func TestEventHeapPopOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	times := []float64{0, 0.5, 0.5, 1, 2.5}
	for trial := 0; trial < 300; trial++ {
		var h eventHeap
		var live []*event // reference multiset
		seq := 0
		var lastPopped *event
		popOne := func() {
			ev := heap.Pop(&h).(*event)
			// The reference minimum, found by linear scan with the same
			// comparator.
			mi := 0
			for i := 1; i < len(live); i++ {
				if eventLess(live[i], live[mi]) {
					mi = i
				}
			}
			if live[mi] != ev {
				t.Fatalf("trial %d: popped (t=%v kind=%v seq=%d), reference min (t=%v kind=%v seq=%d)",
					trial, ev.t, ev.kind, ev.seq, live[mi].t, live[mi].kind, live[mi].seq)
			}
			live = append(live[:mi], live[mi+1:]...)
			// Pops between pushes need not be globally sorted, but two
			// consecutive pops with no push in between must be.
			if lastPopped != nil && eventLess(ev, lastPopped) {
				t.Fatalf("trial %d: consecutive pops out of order", trial)
			}
			lastPopped = ev
		}
		for op := 0; op < 60; op++ {
			if h.Len() > 0 && rng.Intn(3) == 0 {
				popOne()
				continue
			}
			lastPopped = nil
			seq++
			ev := &event{
				t:    times[rng.Intn(len(times))],
				kind: eventKind(rng.Intn(8)),
				seq:  seq,
			}
			heap.Push(&h, ev)
			live = append(live, ev)
		}
		lastPopped = nil
		for h.Len() > 0 {
			popOne()
		}
		if len(live) != 0 {
			t.Fatalf("trial %d: reference still holds %d events", trial, len(live))
		}
	}
}

// TestEventHeapSeqBreaksTimeKindTies confirms the final tiebreak: equal
// time and kind pop in push order.
func TestEventHeapSeqBreaksTimeKindTies(t *testing.T) {
	var h eventHeap
	for i := 5; i >= 1; i-- {
		heap.Push(&h, &event{t: 2, kind: evArrive, seq: i})
	}
	for want := 1; want <= 5; want++ {
		if got := heap.Pop(&h).(*event).seq; got != want {
			t.Fatalf("seq %d popped before %d", got, want)
		}
	}
}

// TestPeekNextMatchesSingleHeap is the cross-shard merge property: pushing
// a random event mix through a fleet partitioned into 1..4 shard heaps
// (plus the router-level arrival heap, exactly as Fleet.push routes kinds)
// and draining via peekNext must reproduce the pop order of one merged
// heap — the (t, kind, seq) contract every shard-invariance test builds on.
func TestPeekNextMatchesSingleHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	times := []float64{0, 0.5, 0.5, 1, 3, 3}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(80)
		type pushArg struct {
			t    float64
			kind eventKind
			mach int
		}
		pushes := make([]pushArg, n)
		for i := range pushes {
			pushes[i] = pushArg{
				t:    times[rng.Intn(len(times))],
				kind: eventKind(rng.Intn(8)),
				mach: rng.Intn(6),
			}
		}

		// Reference: every event in one heap, popped to exhaustion.
		var single eventHeap
		for i, p := range pushes {
			heap.Push(&single, &event{t: p.t, kind: p.kind, seq: i + 1, mach: p.mach})
		}
		var want []*event
		for single.Len() > 0 {
			want = append(want, heap.Pop(&single).(*event))
		}

		for shards := 1; shards <= 4; shards++ {
			f := &Fleet{shards: make([]*shard, shards)}
			for s := range f.shards {
				f.shards[s] = &shard{id: s}
			}
			for _, p := range pushes {
				f.push(p.t, p.kind, nil, p.mach)
			}
			for i, w := range want {
				ev, from := f.peekNext()
				if ev == nil {
					t.Fatalf("trial %d/%d shards: heaps dry after %d of %d pops", trial, shards, i, len(want))
				}
				if ev.t != w.t || ev.kind != w.kind || ev.seq != w.seq {
					t.Fatalf("trial %d/%d shards: pop %d = (t=%v kind=%v seq=%d), single heap gives (t=%v kind=%v seq=%d)",
						trial, shards, i, ev.t, ev.kind, ev.seq, w.t, w.kind, w.seq)
				}
				heap.Pop(from)
			}
			if ev, _ := f.peekNext(); ev != nil {
				t.Fatalf("trial %d/%d shards: events left after the reference drained", trial, shards)
			}
		}
	}
}
