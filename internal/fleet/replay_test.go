package fleet

import (
	"bytes"
	"testing"

	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// The replay-equivalence tests pin the sharding acceptance criterion:
// for a fixed seed and job stream, neither the shard count nor the worker
// count may change the merged JSONL event log by a single byte. Worker
// invariance holds for every routing policy (parallelism only moves tick
// work between goroutines under the barrier); shard invariance holds for
// the least-loaded router, whose shard choice composes with the shard-
// level machine selection into the same global argmax for any partition.

func eightNodeMachine(int) *topology.Machine { return topology.Symmetric(4, 4, 40, 10) }

// shardStreams mixes worker demands and demand classes: alpha/beta are
// bandwidth-hungry (anti-affinity spreads them), modest falls back to
// most-free packing, and the beta class wants whole machines so the queue
// and backfill paths run too.
func shardStreams() []StreamSpec {
	modest := testSpec("modest")
	modest.ReadGBs, modest.WriteGBs = 3, 0.5 // below the anti-affinity threshold
	return []StreamSpec{
		{
			Workload: testSpec("alpha"),
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 3, Count: 6},
			Workers:  2, WorkScale: 0.1,
		},
		{
			Workload: testSpec("beta"),
			Arrival:  workload.ArrivalSpec{Process: workload.Periodic, Rate: 2, Count: 4},
			Workers:  4, WorkScale: 0.1,
		},
		{
			Workload: modest,
			Arrival:  workload.ArrivalSpec{Process: workload.Poisson, Rate: 2, Start: 1, Count: 4},
			Workers:  1, WorkScale: 0.1,
		},
	}
}

func shardConfig(placement, admission string, shards, workers int, seed uint64) Config {
	return Config{
		Machines:   8,
		Shards:     shards,
		Workers:    workers,
		NewMachine: eightNodeMachine,
		SimCfg:     sim.Config{Seed: seed},
		Policy:     placement,
		Admission:  admission,
		Seed:       seed,
	}
}

var replayCombos = []struct{ shards, workers int }{
	{1, 1}, {2, 1}, {2, 2}, {8, 1}, {8, 4}, {8, 8},
}

// TestReplayShardWorkerEquivalence runs the same seed and stream at 1, 2
// and 8 shards with 1 and N workers, table-driven over all three
// admission policies, and demands byte-identical merged logs.
func TestReplayShardWorkerEquivalence(t *testing.T) {
	for _, admission := range []string{AdmitMostFree, AdmitBestBandwidth, AdmitAntiAffinity} {
		t.Run(admission, func(t *testing.T) {
			var base []byte
			var baseStats *Stats
			for _, c := range replayCombos {
				f, stats := runFleet(t, shardConfig(PolicyFirstTouch, admission, c.shards, c.workers, 17), shardStreams())
				if stats.Completed != 14 {
					t.Fatalf("shards=%d workers=%d completed %d/14", c.shards, c.workers, stats.Completed)
				}
				if base == nil {
					base, baseStats = f.LogBytes(), stats
					continue
				}
				if !bytes.Equal(base, f.LogBytes()) {
					t.Fatalf("shards=%d workers=%d changed the log\n--- baseline ---\n%s\n--- got ---\n%s",
						c.shards, c.workers, base, f.LogBytes())
				}
				if stats.Completed != baseStats.Completed || stats.MeanTurnaround != baseStats.MeanTurnaround ||
					stats.LogRecords != baseStats.LogRecords {
					t.Fatalf("shards=%d workers=%d changed stats: %+v vs %+v", c.shards, c.workers, stats, baseStats)
				}
			}
		})
	}
}

// TestReplayShardEquivalenceBWAP covers the DWP path: with a shared,
// pre-warmed tuning cache every admission and retune resolves the same
// cached values, so the full bwap log (dwp, cache_hit fields included) is
// shard- and worker-invariant too.
func TestReplayShardEquivalenceBWAP(t *testing.T) {
	cache := NewTuningCache(sim.Config{Seed: 17}, 0, 17)
	warm := shardConfig(PolicyBWAP, AdmitMostFree, 1, 1, 17)
	warm.Cache = cache
	runFleet(t, warm, shardStreams()) // populates every (sig, workers, co) key

	var base []byte
	for _, c := range []struct{ shards, workers int }{{1, 1}, {4, 2}, {8, 8}} {
		cfg := shardConfig(PolicyBWAP, AdmitMostFree, c.shards, c.workers, 17)
		cfg.Cache = cache
		f, stats := runFleet(t, cfg, shardStreams())
		if stats.CacheMisses != 0 {
			t.Fatalf("shards=%d: %d probes ran against a warm cache", c.shards, stats.CacheMisses)
		}
		if base == nil {
			base = f.LogBytes()
			continue
		}
		if !bytes.Equal(base, f.LogBytes()) {
			t.Fatalf("bwap log differs at shards=%d workers=%d", c.shards, c.workers)
		}
	}
}

// TestReplayWorkerInvarianceStickyRouting checks the worker-count half of
// the contract for the shard-dependent routers: hash-affinity and
// round-robin change placement with the shard count (by design), but for
// a fixed shard count the worker pool size must still not leak into the
// log.
func TestReplayWorkerInvarianceStickyRouting(t *testing.T) {
	for _, routing := range []string{RouteHashAffinity, RouteRoundRobin} {
		t.Run(routing, func(t *testing.T) {
			var base []byte
			for _, workers := range []int{1, 4} {
				cfg := shardConfig(PolicyFirstTouch, AdmitMostFree, 4, workers, 23)
				cfg.Routing = routing
				f, stats := runFleet(t, cfg, shardStreams())
				if stats.Completed != 14 {
					t.Fatalf("workers=%d completed %d/14", workers, stats.Completed)
				}
				if base == nil {
					base = f.LogBytes()
					continue
				}
				if !bytes.Equal(base, f.LogBytes()) {
					t.Fatalf("%s: worker count changed the log", routing)
				}
			}
		})
	}
}

// TestReplaySeedStillMatters guards against the invariance tests passing
// vacuously: a different seed must produce a different log.
func TestReplaySeedStillMatters(t *testing.T) {
	f1, _ := runFleet(t, shardConfig(PolicyFirstTouch, AdmitMostFree, 8, 8, 17), shardStreams())
	f2, _ := runFleet(t, shardConfig(PolicyFirstTouch, AdmitMostFree, 8, 8, 18), shardStreams())
	if bytes.Equal(f1.LogBytes(), f2.LogBytes()) {
		t.Fatal("different seeds produced identical logs")
	}
}
