// Package cache provides a keyed single-flight result cache: each key's
// value is computed exactly once, concurrent first users of the same key
// share one computation, and distinct keys compute in parallel.
//
// The pattern originated as the canonical tuner's per-worker-set profiling
// cache (core package); the fleet scheduler's tuning cache needs the same
// semantics with a different value type, so it lives here as a generic.
// Both errors and values are cached: a failed computation is not retried,
// which keeps replay deterministic (the first outcome is the outcome).
package cache

import (
	"sync"
	"sync/atomic"
)

// Cache is a keyed single-flight cache. The zero value is not usable; call
// New. It is safe for concurrent use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	hits    atomic.Int64
	misses  atomic.Int64
}

type entry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// New returns an empty cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[string]*entry[V])}
}

// Get returns the value for key, running compute exactly once per key. The
// caller that creates the entry counts as a miss; every other caller —
// including those that block on an in-flight computation — counts as a hit.
// The returned hit flag reports which side this call was on.
func (c *Cache[V]) Get(key string, compute func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	en, ok := c.entries[key]
	if !ok {
		en = &entry[V]{}
		c.entries[key] = en
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	en.once.Do(func() { en.val, en.err = compute() })
	return en.val, ok, en.err
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of keys present (computed or in flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
