// Package cache provides a keyed single-flight result cache: each key's
// value is computed exactly once, concurrent first users of the same key
// share one computation, and distinct keys compute in parallel.
//
// The pattern originated as the canonical tuner's per-worker-set profiling
// cache (core package); the fleet scheduler's tuning cache needs the same
// semantics with a different value type, so it lives here as a generic.
//
// Two policies are configurable at construction:
//
//   - MaxEntries bounds the cache with LRU eviction of completed entries
//     (in-flight computations are never evicted), for long-lived
//     multi-tenant daemons whose key space grows without bound;
//   - ForgetErrors drops a failed computation instead of memoizing it, so
//     a transient failure does not poison its key forever. Without it both
//     errors and values are cached — the first outcome is the outcome —
//     which is what strict replay determinism wants.
//
// Completed entries can be serialized with Snapshot and reloaded with
// Restore, which is how a daemon's tuning cache survives restarts.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Option configures a cache at construction.
type Option func(*options)

type options struct {
	maxEntries   int
	forgetErrors bool
}

// MaxEntries bounds the cache to n completed entries, evicting the least
// recently used when the bound is exceeded. n <= 0 means unbounded.
func MaxEntries(n int) Option {
	return func(o *options) { o.maxEntries = n }
}

// ForgetErrors makes a failed computation transient: the entry is removed
// once the compute returns an error, so the next Get for that key retries
// instead of replaying the cached failure. Callers already blocked on the
// in-flight computation still observe the shared error.
func ForgetErrors() Option {
	return func(o *options) { o.forgetErrors = true }
}

// Cache is a keyed single-flight cache. The zero value is not usable; call
// New. It is safe for concurrent use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	// lru orders keys most-recently-used first; every map entry has a
	// matching element (entries forgotten on error are removed from both).
	lru       list.List
	opt       options
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	restored  atomic.Int64
}

type entry[V any] struct {
	once sync.Once
	val  V
	err  error
	// done is set under the cache mutex after once completes; eviction
	// skips entries that are still in flight.
	done bool
	elem *list.Element
}

// New returns an empty cache with the given options.
func New[V any](opts ...Option) *Cache[V] {
	c := &Cache[V]{entries: make(map[string]*entry[V])}
	for _, o := range opts {
		o(&c.opt)
	}
	return c
}

// Get returns the value for key, running compute exactly once per key. The
// caller that creates the entry counts as a miss; every other caller —
// including those that block on an in-flight computation — counts as a hit.
// The returned hit flag reports which side this call was on.
func (c *Cache[V]) Get(key string, compute func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	en, ok := c.entries[key]
	if !ok {
		en = &entry[V]{}
		c.entries[key] = en
		en.elem = c.lru.PushFront(key)
	} else {
		c.lru.MoveToFront(en.elem)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	en.once.Do(func() { en.val, en.err = compute() })

	c.mu.Lock()
	if !en.done {
		en.done = true
		if en.err != nil && c.opt.forgetErrors && c.entries[key] == en {
			delete(c.entries, key)
			c.lru.Remove(en.elem)
		}
	}
	c.evictLocked()
	c.mu.Unlock()
	return en.val, ok, en.err
}

// evictLocked enforces the entry bound: the least recently used *completed*
// entries go first; in-flight entries are skipped (their callers hold live
// references and evicting them would duplicate the computation), so the
// cache may transiently exceed the bound while computations are in flight.
func (c *Cache[V]) evictLocked() {
	if c.opt.maxEntries <= 0 {
		return
	}
	for e := c.lru.Back(); e != nil && len(c.entries) > c.opt.maxEntries; {
		prev := e.Prev()
		key := e.Value.(string)
		if en := c.entries[key]; en != nil && en.done {
			delete(c.entries, key)
			c.lru.Remove(e)
			c.evictions.Add(1)
		}
		e = prev
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many completed entries the LRU bound has dropped.
func (c *Cache[V]) Evictions() int64 { return c.evictions.Load() }

// Restored returns how many entries Restore has loaded.
func (c *Cache[V]) Restored() int64 { return c.restored.Load() }

// Len returns the number of keys present (computed or in flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
