// Package cache provides a keyed single-flight result cache: each key's
// value is computed exactly once, concurrent first users of the same key
// share one computation, and distinct keys compute in parallel.
//
// The pattern originated as the canonical tuner's per-worker-set profiling
// cache (core package); the fleet scheduler's tuning cache needs the same
// semantics with a different value type, so it lives here as a generic.
//
// Two policies are configurable at construction:
//
//   - MaxEntries bounds the cache with LRU eviction of completed entries
//     (in-flight computations are never evicted), for long-lived
//     multi-tenant daemons whose key space grows without bound;
//   - ForgetErrors drops a failed computation instead of memoizing it, so
//     a transient failure does not poison its key forever. Without it both
//     errors and values are cached — the first outcome is the outcome —
//     which is what strict replay determinism wants.
//
// Completed entries can be serialized with Snapshot and reloaded with
// Restore, which is how a daemon's tuning cache survives restarts.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Option configures a cache at construction.
type Option func(*options)

type options struct {
	maxEntries   int
	forgetErrors bool
}

// MaxEntries bounds the cache to n completed entries, evicting the least
// recently used when the bound is exceeded. n <= 0 means unbounded.
func MaxEntries(n int) Option {
	return func(o *options) { o.maxEntries = n }
}

// ForgetErrors makes a failed computation transient: the entry is removed
// once the compute returns an error, so the next Get for that key retries
// instead of replaying the cached failure. Callers already blocked on the
// in-flight computation still observe the shared error.
func ForgetErrors() Option {
	return func(o *options) { o.forgetErrors = true }
}

// Cache is a keyed single-flight cache. The zero value is not usable; call
// New. It is safe for concurrent use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	// lru orders keys most-recently-used first; every map entry has a
	// matching element (entries forgotten on error are removed from both).
	lru list.List
	// spec counts entries whose speculative flag is still set, so the
	// eviction passes can bound demanded entries without scanning.
	spec      int
	opt       options
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	restored  atomic.Int64
}

type entry[V any] struct {
	once sync.Once
	val  V
	err  error
	// done is set under the cache mutex after once completes; eviction
	// skips entries that are still in flight.
	done bool
	// speculative marks an entry created by Prefetch that no Get has
	// consumed yet. Speculative entries are invisible to the hit/miss
	// accounting and to the demanded-entry LRU bound: the first Get of the
	// key consumes the reservation and counts as the miss, so every
	// demand-side observable (hit flags, counters, which demanded entries
	// the bound evicts) is exactly what a run without prefetching sees.
	speculative bool
	elem        *list.Element
}

// New returns an empty cache with the given options.
func New[V any](opts ...Option) *Cache[V] {
	c := &Cache[V]{entries: make(map[string]*entry[V])}
	for _, o := range opts {
		o(&c.opt)
	}
	return c
}

// Get returns the value for key, running compute exactly once per key. The
// caller that creates the entry counts as a miss; every other caller —
// including those that block on an in-flight computation — counts as a hit.
// The returned hit flag reports which side this call was on.
func (c *Cache[V]) Get(key string, compute func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	en, ok := c.entries[key]
	if !ok {
		en = &entry[V]{}
		c.entries[key] = en
		en.elem = c.lru.PushFront(key)
	} else {
		if en.speculative {
			// First demand of a prefetched key: consume the reservation.
			// The consumer takes the miss (and, if the prefetch has not
			// finished or even started, the computation itself via the
			// shared once), so the demand-side accounting matches an
			// unprefetched run exactly.
			en.speculative = false
			c.spec--
			ok = false
		}
		c.lru.MoveToFront(en.elem)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	en.once.Do(func() { en.val, en.err = compute() })
	c.finish(key, en)
	return en.val, ok, en.err
}

// Prefetch reserves key and hands back the computation to run for it,
// intended for a worker pool that fills the cache ahead of demand. The
// reservation is made synchronously (so the caller's view of Len is
// deterministic); run executes compute through the entry's single-flight
// once and may be invoked on any goroutine. If the key already exists —
// computed, in flight, or reserved — Prefetch returns (nil, false).
//
// A speculative entry is a pure hint: the first Get of its key consumes
// the reservation and still counts as the miss, a mispredicted key is
// never consumed and costs only background work, and the eviction bound
// treats reservations separately (see evictLocked) — so prefetching can
// never change what any sequence of Get calls observes.
func (c *Cache[V]) Prefetch(key string, compute func() (V, error)) (run func(), reserved bool) {
	c.mu.Lock()
	if _, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return nil, false
	}
	en := &entry[V]{speculative: true}
	c.entries[key] = en
	en.elem = c.lru.PushFront(key)
	c.spec++
	c.mu.Unlock()
	return func() {
		en.once.Do(func() { en.val, en.err = compute() })
		c.finish(key, en)
	}, true
}

// finish records a completed computation: marks the entry done, applies
// the forget-on-error policy, and enforces the entry bound. Idempotent —
// both the prefetch runner and a consuming Get call it for the same entry.
func (c *Cache[V]) finish(key string, en *entry[V]) {
	c.mu.Lock()
	if !en.done {
		en.done = true
		if en.err != nil && c.opt.forgetErrors && c.entries[key] == en {
			if en.speculative {
				c.spec--
			}
			delete(c.entries, key)
			c.lru.Remove(en.elem)
		}
	}
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked enforces the entry bound in two passes. Demanded entries
// first: the least recently used *completed* ones go while more than
// maxEntries remain; in-flight entries are skipped (their callers hold
// live references and evicting them would duplicate the computation), so
// the cache may transiently exceed the bound while computations are in
// flight. Speculative reservations are invisible to this pass — its
// count, order and Evictions tally are a pure function of the demand
// sequence, so a bounded cache hits and misses identically with or
// without prefetching. The second pass holds unconsumed reservations to
// the same total bound so mispredicted prefetches cannot grow a bounded
// cache without limit; dropping one only discards a precomputed value
// (the eventual demand recomputes it identically), so it is uncounted.
func (c *Cache[V]) evictLocked() {
	if c.opt.maxEntries <= 0 {
		return
	}
	normal := len(c.entries) - c.spec
	for e := c.lru.Back(); e != nil && normal > c.opt.maxEntries; {
		prev := e.Prev()
		key := e.Value.(string)
		if en := c.entries[key]; en != nil && en.done && !en.speculative {
			delete(c.entries, key)
			c.lru.Remove(e)
			c.evictions.Add(1)
			normal--
		}
		e = prev
	}
	for e := c.lru.Back(); e != nil && len(c.entries) > c.opt.maxEntries && c.spec > 0; {
		prev := e.Prev()
		key := e.Value.(string)
		if en := c.entries[key]; en != nil && en.done && en.speculative {
			delete(c.entries, key)
			c.lru.Remove(e)
			c.spec--
		}
		e = prev
	}
}

// Contains reports whether key is present — computed, in flight, or
// reserved — without touching LRU order or the hit/miss accounting. The
// []byte key avoids materializing a string: the compiler elides the
// conversion in the map index, so a caller probing with a stack-built key
// allocates nothing. Purely advisory (the answer can be stale by the time
// the caller acts on it); Prefetch re-checks under the same lock, so a
// stale false costs one wasted key allocation, never a duplicated
// computation.
func (c *Cache[V]) Contains(key []byte) bool {
	c.mu.Lock()
	_, ok := c.entries[string(key)]
	c.mu.Unlock()
	return ok
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many completed entries the LRU bound has dropped.
func (c *Cache[V]) Evictions() int64 { return c.evictions.Load() }

// Restored returns how many entries Restore has loaded.
func (c *Cache[V]) Restored() int64 { return c.restored.Load() }

// Len returns the number of keys present (computed or in flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
