package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetComputesOncePerKey(t *testing.T) {
	c := New[int]()
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.Get("k", func() (int, error) { calls++; return 42, nil })
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != 42 {
			t.Fatalf("Get = %d, want 42", v)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Fatalf("call %d: hit = %v, want %v", i, hit, wantHit)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d/%d, want 2 hits / 1 miss", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New[int]()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Get("bad", func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("Get err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute ran %d times, want 1 (errors are cached)", calls)
	}
}

// TestForgetErrorsRetries is the error-poisoning regression test: with
// ForgetErrors a failing compute is retried on the next Get, and a
// succeeding one is still computed exactly once.
func TestForgetErrorsRetries(t *testing.T) {
	c := New[int](ForgetErrors())
	boom := errors.New("boom")
	calls := 0
	// First attempt fails and must not be memoized.
	if _, _, err := c.Get("flaky", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Get err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after a forgotten error, want 0", c.Len())
	}
	// Retry succeeds; the success is memoized.
	for i := 0; i < 3; i++ {
		v, hit, err := c.Get("flaky", func() (int, error) { calls++; return 9, nil })
		if err != nil || v != 9 {
			t.Fatalf("retry %d: Get = %d, %v", i, v, err)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Fatalf("retry %d: hit = %v, want %v", i, hit, wantHit)
		}
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (one failure retried, one success cached)", calls)
	}
}

// TestLRUEvictionOrder pins the basic LRU contract: touching an entry
// protects it, the least recently used completed entry goes first, and
// evictions are counted.
func TestLRUEvictionOrder(t *testing.T) {
	c := New[string](MaxEntries(3))
	get := func(k string) bool {
		_, hit, err := c.Get(k, func() (string, error) { return "v-" + k, nil })
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		return hit
	}
	get("a")
	get("b")
	get("c")
	get("a") // refresh a: LRU order is now a, c, b
	get("d") // exceeds the bound; b, the least recently used, must go
	if get("b") {
		t.Fatal("b survived eviction; LRU order not honoured")
	}
	// The b lookup recomputed b, pushing the cache over the bound again and
	// evicting c (a and d were both touched more recently).
	if !get("a") || !get("d") {
		t.Fatal("recently used entry was evicted")
	}
	if c.Evictions() < 1 {
		t.Fatalf("Evictions = %d, want >= 1", c.Evictions())
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want the bound 3", c.Len())
	}
}

// TestLRUEvictionProperty runs a randomized access sequence against a
// reference LRU model: the cache's hit/miss outcome must match the model's
// containment on every access.
func TestLRUEvictionProperty(t *testing.T) {
	const bound, keys, accesses = 5, 12, 2000
	c := New[int](MaxEntries(bound))
	rng := rand.New(rand.NewSource(42))

	// Reference model: slice ordered most-recent-first.
	var model []string
	touch := func(k string) bool {
		for i, mk := range model {
			if mk == k {
				model = append(model[:i], model[i+1:]...)
				model = append([]string{k}, model...)
				return true
			}
		}
		model = append([]string{k}, model...)
		if len(model) > bound {
			model = model[:bound]
		}
		return false
	}

	for i := 0; i < accesses; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(keys))
		wantHit := touch(k)
		_, hit, err := c.Get(k, func() (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if hit != wantHit {
			t.Fatalf("access %d (%s): hit = %v, model says %v", i, k, hit, wantHit)
		}
		if c.Len() > bound {
			t.Fatalf("access %d: Len = %d exceeds bound %d with no compute in flight", i, c.Len(), bound)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("property run produced no evictions; bound never engaged")
	}
}

// TestSnapshotRestoreRoundTrip serializes a populated cache and reloads it
// into a fresh one: every restored key must hit without recomputing, the
// restored count must be reported, and failed/in-flight entries must not
// travel.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New[float64](ForgetErrors())
	for i, k := range []string{"x", "y", "z"} {
		if _, _, err := src.Get(k, func() (float64, error) { return float64(i) + 0.5, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// A failed entry is forgotten and must not appear in the snapshot.
	src.Get("bad", func() (float64, error) { return 0, errors.New("boom") }) //nolint:errcheck

	data, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dst := New[float64]()
	n, err := dst.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || dst.Restored() != 3 {
		t.Fatalf("restored %d (counter %d), want 3", n, dst.Restored())
	}
	for i, k := range []string{"x", "y", "z"} {
		v, hit, err := dst.Get(k, func() (float64, error) {
			t.Fatalf("restored key %q recomputed", k)
			return 0, nil
		})
		if err != nil || !hit || v != float64(i)+0.5 {
			t.Fatalf("Get(%q) = %g hit=%v err=%v", k, v, hit, err)
		}
	}
	if _, hit, _ := dst.Get("bad", func() (float64, error) { return 1, nil }); hit {
		t.Fatal("failed entry travelled through the snapshot")
	}

	// Version mismatches are rejected.
	if _, err := dst.Restore([]byte(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("Restore accepted an unknown snapshot version")
	}
	if _, err := dst.Restore([]byte(`not json`)); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

// TestRestorePreservesLRUOrder checks that a bounded cache evicts restored
// entries before live ones, and restored entries among themselves in
// snapshot (recency) order.
func TestRestorePreservesLRUOrder(t *testing.T) {
	src := New[int]()
	for _, k := range []string{"old", "mid", "new"} {
		k := k
		src.Get(k, func() (int, error) { return len(k), nil }) //nolint:errcheck
	}
	src.Get("mid", func() (int, error) { return 0, nil }) //nolint:errcheck
	src.Get("new", func() (int, error) { return 0, nil }) //nolint:errcheck
	// LRU order in src is now new, mid, old (most recent first).

	data, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst := New[int](MaxEntries(3))
	dst.Get("live", func() (int, error) { return 1, nil }) //nolint:errcheck
	// Bound 3 with 1 live + 3 snapshot entries: "old" (least recent of the
	// snapshot, behind the live entry) is evicted during the load, and only
	// the survivors are counted as restored.
	if n, err := dst.Restore(data); err != nil || n != 2 {
		t.Fatalf("Restore = %d, %v; want 2 survivors", n, err)
	}
	if dst.Restored() != 2 || dst.Evictions() != 1 {
		t.Fatalf("restored %d / evictions %d, want 2 / 1", dst.Restored(), dst.Evictions())
	}
	if _, hit, _ := dst.Get("live", func() (int, error) { return 1, nil }); !hit {
		t.Fatal("live entry evicted in favour of a restored one")
	}
	if _, hit, _ := dst.Get("old", func() (int, error) { return 0, nil }); hit {
		t.Fatal("least-recent snapshot entry survived past the bound")
	}
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	c := New[string]()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		v, hit, err := c.Get(k, func() (string, error) { return "v-" + k, nil })
		if err != nil || hit || v != "v-"+k {
			t.Fatalf("Get(%q) = %q hit=%v err=%v", k, v, hit, err)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("Stats = %d/%d, want 0/3", hits, misses)
	}
}

// TestSingleFlight hammers one key from many goroutines: the computation
// must run exactly once, every caller must observe its value, and exactly
// one caller is the miss.
func TestSingleFlight(t *testing.T) {
	c := New[int]()
	var calls, missCount atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, hit, err := c.Get("shared", func() (int, error) {
				calls.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Get = %d, %v", v, err)
			}
			if !hit {
				missCount.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if missCount.Load() != 1 {
		t.Fatalf("%d callers saw a miss, want exactly 1", missCount.Load())
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("Stats = %d hits / %d misses, want %d/1", hits, misses, goroutines-1)
	}
}

// TestRestoreBadSnapshots is the corrupt-snapshot table: every class of
// unusable payload — truncation, garbage, wrong version, wrong shape —
// returns an error wrapping ErrBadSnapshot and leaves the cache exactly as
// it was: same length, same entries, still serving computes. This is the
// contract bwapd's boot path relies on to warm-start opportunistically and
// fall back to a cold cache on anything unusable.
func TestRestoreBadSnapshots(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not json")},
		{"truncated", []byte(`{"version":1,"entries":[{"key":"a"`)},
		{"wrong version", []byte(`{"version":99,"entries":[]}`)},
		{"future version", []byte(`{"version":2,"entries":[{"key":"a","value":1}]}`)},
		{"wrong shape", []byte(`{"version":"one","entries":{}}`)},
		{"array root", []byte(`[1,2,3]`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New[int]()
			if _, _, err := c.Get("live", func() (int, error) { return 7, nil }); err != nil {
				t.Fatal(err)
			}
			n, err := c.Restore(tc.data)
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("Restore = %v, want ErrBadSnapshot", err)
			}
			if n != 0 {
				t.Fatalf("Restore reported %d entries from a bad snapshot", n)
			}
			if c.Len() != 1 || c.Restored() != 0 {
				t.Fatalf("bad snapshot mutated the cache: len %d, restored %d", c.Len(), c.Restored())
			}
			v, hit, err := c.Get("live", func() (int, error) { return 0, errors.New("recompute") })
			if err != nil || !hit || v != 7 {
				t.Fatalf("cache unusable after failed restore: %d, %v, %v", v, hit, err)
			}
		})
	}
	// A valid snapshot still loads after any number of failed attempts.
	c := New[int]()
	if _, err := c.Restore([]byte(`not json`)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatal("garbage restore not flagged")
	}
	if n, err := c.Restore([]byte(`{"version":1,"entries":[{"key":"k","value":3}]}`)); err != nil || n != 1 {
		t.Fatalf("good restore after bad: %d, %v", n, err)
	}
}

// TestPrefetchReservesAndComputes covers the speculative lifecycle: the
// reservation is synchronous, the handed-back runner computes through the
// shared once, and the first Get consumes the reservation as its miss
// without recomputing.
func TestPrefetchReservesAndComputes(t *testing.T) {
	c := New[int]()
	calls := 0
	run, reserved := c.Prefetch("k", func() (int, error) { calls++; return 42, nil })
	if !reserved || run == nil {
		t.Fatal("first Prefetch must reserve")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after reservation, want 1", c.Len())
	}
	if _, dup := c.Prefetch("k", func() (int, error) { return 0, nil }); dup {
		t.Fatal("second Prefetch of the same key must not reserve")
	}
	run()
	if calls != 1 {
		t.Fatalf("prefetch compute ran %d times, want 1", calls)
	}
	v, hit, err := c.Get("k", func() (int, error) { calls++; return 0, nil })
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v; want 42", v, err)
	}
	if hit {
		t.Fatal("consuming Get must count as the miss")
	}
	if calls != 1 {
		t.Fatalf("consuming Get recomputed (%d calls)", calls)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("Stats = %d/%d, want 0 hits / 1 miss", hits, misses)
	}
	if _, hit, _ := c.Get("k", func() (int, error) { return 0, nil }); !hit {
		t.Fatal("second Get must hit")
	}
}

// TestPrefetchConsumeBeforeRun: a Get that arrives before the pool ran the
// prefetch computes the value itself through the shared once; the late
// runner is a no-op.
func TestPrefetchConsumeBeforeRun(t *testing.T) {
	c := New[int]()
	var prefetchCalls, getCalls int
	run, reserved := c.Prefetch("k", func() (int, error) { prefetchCalls++; return 7, nil })
	if !reserved {
		t.Fatal("reservation failed")
	}
	v, hit, err := c.Get("k", func() (int, error) { getCalls++; return 7, nil })
	if err != nil || v != 7 || hit {
		t.Fatalf("Get = %d, hit=%v, err=%v; want 7, miss", v, hit, err)
	}
	run() // late pool execution must not recompute or error
	if prefetchCalls+getCalls != 1 {
		t.Fatalf("compute ran %d times, want exactly once", prefetchCalls+getCalls)
	}
}

// TestPrefetchExistingKeyNotReserved: demanded and in-flight keys refuse
// reservations, so prefetching never perturbs an entry that demand owns.
func TestPrefetchExistingKeyNotReserved(t *testing.T) {
	c := New[int]()
	if _, _, err := c.Get("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, reserved := c.Prefetch("k", func() (int, error) { return 2, nil }); reserved {
		t.Fatal("Prefetch reserved a demanded key")
	}
	if v, hit, _ := c.Get("k", func() (int, error) { return 3, nil }); v != 1 || !hit {
		t.Fatalf("demanded entry perturbed: %d, hit=%v", v, hit)
	}
}

// TestPrefetchForgetErrors: with ForgetErrors, a failed speculative
// computation vanishes (never memoized), and a later demand retries.
func TestPrefetchForgetErrors(t *testing.T) {
	c := New[int](ForgetErrors())
	run, _ := c.Prefetch("k", func() (int, error) { return 0, errors.New("boom") })
	run()
	if c.Len() != 0 {
		t.Fatalf("failed speculative entry survived: Len = %d", c.Len())
	}
	v, hit, err := c.Get("k", func() (int, error) { return 5, nil })
	if err != nil || hit || v != 5 {
		t.Fatalf("retry after forgotten error: %d, hit=%v, err=%v", v, hit, err)
	}
}

// TestPrefetchEvictionPurity: the demanded-entry LRU bound must behave as
// if prefetching did not exist — same evictions, same survivors — while
// unconsumed reservations are separately held to the total bound.
func TestPrefetchEvictionPurity(t *testing.T) {
	mk := func() *Cache[int] { return New[int](MaxEntries(2)) }

	// Reference: demand-only fill of a 2-entry cache.
	ref := mk()
	for _, k := range []string{"a", "b", "c"} {
		ref.Get(k, func() (int, error) { return 1, nil })
	}

	// Same demand sequence with unconsumed speculative entries alongside.
	c := mk()
	for _, k := range []string{"s1", "s2", "s3"} {
		run, _ := c.Prefetch(k, func() (int, error) { return 9, nil })
		run()
	}
	for _, k := range []string{"a", "b", "c"} {
		c.Get(k, func() (int, error) { return 1, nil })
	}
	if got, want := c.Evictions(), ref.Evictions(); got != want {
		t.Fatalf("evictions with prefetching = %d, demand-only = %d", got, want)
	}
	for _, k := range []string{"b", "c"} { // LRU keeps the two newest demanded keys
		if _, hit, _ := c.Get(k, func() (int, error) { return 2, nil }); !hit {
			t.Fatalf("demanded survivor %q was evicted", k)
		}
	}
	// The second pass caps total occupancy: speculative leftovers above the
	// bound were dropped, uncounted.
	if c.Len() > 2+1 { // 2 demanded survivors + at most the in-bound slack
		t.Fatalf("unconsumed reservations kept the cache at %d entries", c.Len())
	}
	if got, want := c.Evictions(), ref.Evictions(); got != want {
		t.Fatalf("speculative drops were counted: %d vs %d", got, want)
	}
}

// TestPrefetchSnapshotSkipsSpeculative: never-demanded speculative values
// must not leak into snapshots, or a warm-booted daemon would diverge from
// one that booted from a demand-only snapshot.
func TestPrefetchSnapshotSkipsSpeculative(t *testing.T) {
	c := New[int]()
	run, _ := c.Prefetch("spec", func() (int, error) { return 1, nil })
	run()
	if _, _, err := c.Get("demanded", func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c2 := New[int]()
	if _, err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("snapshot carried %d entries, want only the demanded one", c2.Len())
	}
	if _, hit, _ := c2.Get("demanded", func() (int, error) { return 0, nil }); !hit {
		t.Fatal("demanded entry missing from snapshot")
	}
	if _, hit, _ := c2.Get("spec", func() (int, error) { return 1, nil }); hit {
		t.Fatal("speculative entry leaked into the snapshot")
	}
}

// TestPrefetchConcurrentWithGets races a prefetch pool against demanding
// readers under -race: every reader of a key sees the same value, and each
// key computes at most once.
func TestPrefetchConcurrentWithGets(t *testing.T) {
	c := New[int]()
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i%4)
		want := i % 4
		if run, ok := c.Prefetch(key, func() (int, error) { computes.Add(1); return want, nil }); ok {
			wg.Add(1)
			go func() { defer wg.Done(); run() }()
		}
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, _, err := c.Get(key, func() (int, error) { computes.Add(1); return want, nil })
				if err != nil || v != want {
					t.Errorf("Get(%s) = %d, %v; want %d", key, v, err, want)
				}
			}()
		}
	}
	wg.Wait()
	if n := computes.Load(); n != 4 {
		t.Fatalf("computed %d times for 4 keys", n)
	}
}
