package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetComputesOncePerKey(t *testing.T) {
	c := New[int]()
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.Get("k", func() (int, error) { calls++; return 42, nil })
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != 42 {
			t.Fatalf("Get = %d, want 42", v)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Fatalf("call %d: hit = %v, want %v", i, hit, wantHit)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d/%d, want 2 hits / 1 miss", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New[int]()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Get("bad", func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("Get err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	c := New[string]()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		v, hit, err := c.Get(k, func() (string, error) { return "v-" + k, nil })
		if err != nil || hit || v != "v-"+k {
			t.Fatalf("Get(%q) = %q hit=%v err=%v", k, v, hit, err)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("Stats = %d/%d, want 0/3", hits, misses)
	}
}

// TestSingleFlight hammers one key from many goroutines: the computation
// must run exactly once, every caller must observe its value, and exactly
// one caller is the miss.
func TestSingleFlight(t *testing.T) {
	c := New[int]()
	var calls, missCount atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, hit, err := c.Get("shared", func() (int, error) {
				calls.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Get = %d, %v", v, err)
			}
			if !hit {
				missCount.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if missCount.Load() != 1 {
		t.Fatalf("%d callers saw a miss, want exactly 1", missCount.Load())
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("Stats = %d hits / %d misses, want %d/1", hits, misses, goroutines-1)
	}
}
