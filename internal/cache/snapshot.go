package cache

import (
	"encoding/json"
	"errors"
	"fmt"
)

// SnapshotVersion is the serialization format version Snapshot writes and
// Restore accepts.
const SnapshotVersion = 1

// ErrBadSnapshot wraps every Restore failure caused by the snapshot data
// itself — truncation, garbage, a wrong format version. Callers detect it
// with errors.Is and continue with a cold cache: a failed Restore never
// modifies the cache, so it stays fully usable.
var ErrBadSnapshot = errors.New("cache: bad snapshot")

// snapshot is the versioned serialized form of a cache: completed,
// error-free entries in most-recently-used-first order, so a restore
// reconstructs both the values and the LRU ordering.
type snapshot[V any] struct {
	Version int            `json:"version"`
	Entries []snapEntry[V] `json:"entries"`
}

type snapEntry[V any] struct {
	Key   string `json:"key"`
	Value V      `json:"value"`
}

// Snapshot serializes every completed, error-free entry to versioned JSON,
// most recently used first. In-flight and failed entries are skipped, and
// so are unconsumed speculative reservations — a key no Get ever demanded
// must not warm a later boot, or restoring would turn that boot's first
// demand into a hit a prefetch-free run would have missed. The value type
// must be JSON-serializable.
func (c *Cache[V]) Snapshot() ([]byte, error) {
	c.mu.Lock()
	s := snapshot[V]{Version: SnapshotVersion, Entries: []snapEntry[V]{}}
	for e := c.lru.Front(); e != nil; e = e.Next() {
		key := e.Value.(string)
		en := c.entries[key]
		if en == nil || !en.done || en.err != nil || en.speculative {
			continue
		}
		s.Entries = append(s.Entries, snapEntry[V]{Key: key, Value: en.val})
	}
	c.mu.Unlock()
	return json.Marshal(s)
}

// Restore loads a Snapshot into the cache and returns how many entries
// actually survived loading: entries a MaxEntries bound evicts in the same
// call are not counted, so the restored accounting never overstates how
// warm the cache is. Restored entries behave exactly like computed ones: a
// later Get for their key is a hit and runs no compute. Keys already
// present win over the snapshot (live state is fresher), and the LRU order
// of the snapshot is preserved beneath any live entries.
func (c *Cache[V]) Restore(data []byte) (int, error) {
	var s snapshot[V]
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if s.Version != SnapshotVersion {
		return 0, fmt.Errorf("%w: snapshot version %d, want %d", ErrBadSnapshot, s.Version, SnapshotVersion)
	}
	var added []string
	c.mu.Lock()
	// Entries arrive most-recent-first; appending each with PushBack keeps
	// their relative order and places all of them behind entries computed
	// live since boot — a restored entry is never considered fresher than
	// one this process produced itself.
	for _, se := range s.Entries {
		if _, exists := c.entries[se.Key]; exists {
			continue
		}
		en := &entry[V]{val: se.Value, done: true}
		en.once.Do(func() {})
		c.entries[se.Key] = en
		en.elem = c.lru.PushBack(se.Key)
		added = append(added, se.Key)
	}
	c.evictLocked()
	n := 0
	for _, k := range added {
		if _, survived := c.entries[k]; survived {
			n++
		}
	}
	c.mu.Unlock()
	c.restored.Add(int64(n))
	return n, nil
}
