package obs

import "math"

// Histogram is a fixed-bucket cumulative-on-render histogram in the
// Prometheus style: counts[i] holds observations with value <= bounds[i]
// and > bounds[i-1]; counts[len(bounds)] is the +Inf bucket. Observe is
// allocation-free (a linear scan over at most a few dozen bounds), so it
// may sit on the fleet's event path without perturbing the zero-alloc
// barrier contract.
type Histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bounds returns the finite upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket (shared; do not mutate).
func (h *Histogram) BucketCounts() []uint64 { return h.counts }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the rank — the standard Prometheus
// histogram_quantile estimate. The answer lives in the first non-empty
// bucket whose cumulative count reaches rank = q·count; a rank landing
// exactly on a bucket's cumulative boundary returns that bucket's upper
// bound, regardless of any run of empty buckets that follows. Ranks
// beyond the last finite bucket — the target observation sits in the
// +Inf bucket — report the largest finite bound, since the histogram
// cannot localize them further. Returns NaN when the histogram is empty
// or q is NaN or outside (0, 1]: out-of-domain ranks would otherwise
// extrapolate to values (negative, or past every observation) that no
// sample could have produced.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	cum, lower := 0.0, 0.0
	for i, b := range h.bounds {
		c := float64(h.counts[i])
		if c > 0 && cum+c >= rank {
			// cum < rank on entry (every earlier bucket fell short and
			// empty buckets leave cum unchanged), so the interpolation
			// factor is in (0, 1] and the estimate in (lower, b].
			return lower + (b-lower)*((rank-cum)/c)
		}
		cum += c
		lower = b
	}
	return lower // rank beyond every finite bucket: +Inf bucket
}

// ExpBuckets returns n exponentially spaced bounds: start, start*factor,
// ... — the log-bucket scheme the fleet's latency histograms use. The
// bounds are produced by repeated multiplication, a fixed float program,
// so they are identical on every run.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
