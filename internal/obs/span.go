package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SpanWriter streams lifecycle spans as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto open directly. Events are written
// one per line inside a JSON array; Close terminates the array, but both
// viewers accept a truncated (unclosed) file, so a crashed run's span log
// is still loadable. Timestamps are simulated seconds scaled to
// microseconds, the unit the trace viewers expect.
//
// Span output is a pure function of the (name, cat, pid, tid, ts, dur,
// args) call sequence: args marshal through encoding/json (struct fields
// in declaration order, map keys sorted), so a deterministic caller gets
// deterministic bytes.
type SpanWriter struct {
	w   io.Writer
	n   int
	err error
}

// NewSpanWriter wraps w. The caller owns closing any underlying file
// after calling Close on the writer.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{w: w}
}

// traceEvent is the Chrome trace-event wire shape.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

const microsPerSec = 1e6

// Complete emits a ph="X" complete span: [start, start+dur) in simulated
// seconds on track (pid, tid).
func (s *SpanWriter) Complete(name, cat string, pid, tid int, start, dur float64, args any) {
	s.emit(traceEvent{Name: name, Cat: cat, Ph: "X",
		Ts: start * microsPerSec, Dur: dur * microsPerSec, Pid: pid, Tid: tid, Args: args})
}

// Instant emits a ph="i" instant event at time t.
func (s *SpanWriter) Instant(name, cat string, pid, tid int, t float64, args any) {
	s.emit(traceEvent{Name: name, Cat: cat, Ph: "i",
		Ts: t * microsPerSec, Pid: pid, Tid: tid, Args: args})
}

func (s *SpanWriter) emit(ev traceEvent) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	var prefix string
	if s.n == 0 {
		prefix = "[\n"
	} else {
		prefix = ",\n"
	}
	if _, err := io.WriteString(s.w, prefix); err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(data); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Close terminates the JSON array, making the output strictly valid JSON.
func (s *SpanWriter) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.n == 0 {
		_, s.err = io.WriteString(s.w, "[]\n")
		return s.err
	}
	_, s.err = io.WriteString(s.w, "\n]\n")
	return s.err
}

// Err returns the first write or encode error.
func (s *SpanWriter) Err() error {
	if s.err != nil {
		return fmt.Errorf("obs: span writer: %w", s.err)
	}
	return nil
}

// Events returns how many events have been written.
func (s *SpanWriter) Events() int { return s.n }
