package obs

import "math"

// Timeline rolls per-series windowed statistics over fixed sim-time
// intervals: each series is a ring of equal-width windows holding
// count/sum/min/max, updated allocation-free. The ring keeps the most
// recent Slots windows; observations older than the live range fold into
// the oldest window rather than resurrecting dropped ones, and a jump far
// past the live range resets the ring (both deterministic functions of
// the observation stream).
type Timeline struct {
	width  float64
	slots  int
	series []*TimeSeries
	byName map[string]*TimeSeries
}

// DefaultTimelineSlots is the ring capacity when the caller passes 0.
const DefaultTimelineSlots = 512

// NewTimeline builds a timeline with the given base window width in
// simulated seconds (default 1) and ring capacity (default
// DefaultTimelineSlots).
func NewTimeline(width float64, slots int) *Timeline {
	if width <= 0 {
		width = 1
	}
	if slots <= 0 {
		slots = DefaultTimelineSlots
	}
	return &Timeline{width: width, slots: slots, byName: map[string]*TimeSeries{}}
}

// Width returns the base window width in simulated seconds.
func (t *Timeline) Width() float64 { return t.width }

// Series finds or creates the named series.
func (t *Timeline) Series(name string) *TimeSeries {
	if s, ok := t.byName[name]; ok {
		return s
	}
	s := &TimeSeries{
		name:  name,
		width: t.width,
		ring:  make([]windowAgg, t.slots),
		first: -1,
	}
	t.series = append(t.series, s)
	t.byName[name] = s
	return s
}

// windowAgg is one window's aggregate.
type windowAgg struct {
	count    uint64
	sum      float64
	min, max float64
}

func (w *windowAgg) observe(v float64) {
	if w.count == 0 || v < w.min {
		w.min = v
	}
	if w.count == 0 || v > w.max {
		w.max = v
	}
	w.count++
	w.sum += v
}

// TimeSeries is one named ring of windows.
type TimeSeries struct {
	name  string
	width float64
	ring  []windowAgg
	first int64 // absolute index of the oldest live window; -1 when empty
	head  int   // ring position of the oldest live window
	n     int   // live window count
}

// Observe records value v at simulated time t. Allocation-free.
func (s *TimeSeries) Observe(t, v float64) {
	idx := int64(math.Floor(t / s.width))
	cap64 := int64(len(s.ring))
	switch {
	case s.n == 0:
		s.first, s.head, s.n = idx, 0, 1
		s.ring[0] = windowAgg{}
	case idx < s.first:
		// Late observation from before the live range: clamp into the
		// oldest window rather than losing it silently.
		idx = s.first
	case idx >= s.first+int64(s.n):
		if idx-s.first >= 2*cap64 {
			// Far jump: nothing in the ring would survive; reset.
			s.first, s.head, s.n = idx, 0, 1
			s.ring[0] = windowAgg{}
			break
		}
		// Drop windows that fall off the capacity, then zero-extend.
		if shift := idx - s.first - cap64 + 1; shift > 0 {
			s.head = int((int64(s.head) + shift) % cap64)
			s.first += shift
			s.n -= int(shift)
			if s.n < 0 {
				s.n = 0
			}
		}
		for s.first+int64(s.n) <= idx {
			s.ring[(s.head+s.n)%len(s.ring)] = windowAgg{}
			s.n++
		}
	}
	s.ring[(s.head+int(idx-s.first))%len(s.ring)].observe(v)
}

// WindowStat is one (possibly merged) window's aggregate, the /timeline
// JSON element.
type WindowStat struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot renders every series, merging k base windows per output window
// (k >= 1). Merge groups align to absolute window indices that are
// multiples of k, so the same stream snapshotted at the same instant
// always produces the same groups. Empty windows are skipped.
func (t *Timeline) Snapshot(k int) map[string][]WindowStat {
	if k < 1 {
		k = 1
	}
	out := make(map[string][]WindowStat, len(t.series))
	for _, s := range t.series {
		out[s.name] = s.snapshot(k)
	}
	return out
}

func (s *TimeSeries) snapshot(k int) []WindowStat {
	out := []WindowStat{}
	if s.n == 0 {
		return out
	}
	var cur windowAgg
	curGroup := int64(-1)
	flush := func() {
		if cur.count == 0 {
			return
		}
		start := float64(curGroup*int64(k)) * s.width
		out = append(out, WindowStat{
			Start: start,
			End:   start + float64(k)*s.width,
			Count: cur.count,
			Sum:   cur.sum,
			Min:   cur.min,
			Max:   cur.max,
			Mean:  cur.sum / float64(cur.count),
		})
	}
	for i := 0; i < s.n; i++ {
		abs := s.first + int64(i)
		w := s.ring[(s.head+i)%len(s.ring)]
		if w.count == 0 {
			continue
		}
		group := abs / int64(k)
		if group != curGroup {
			flush()
			cur, curGroup = windowAgg{}, group
		}
		if cur.count == 0 {
			cur = w
		} else {
			cur.count += w.count
			cur.sum += w.sum
			if w.min < cur.min {
				cur.min = w.min
			}
			if w.max > cur.max {
				cur.max = w.max
			}
		}
	}
	flush()
	return out
}
