// Package obs is the deterministic telemetry core: counters, gauges and
// fixed log-bucket histograms keyed on *simulated* time, plus a windowed
// time-series ring and a Chrome-trace span writer.
//
// Nothing in this package reads the wall clock, allocates on the update
// path, or iterates a map where order could leak into output — so any
// metric fed exclusively from a deterministic event stream renders to
// byte-identical text for the same seed, shard count and worker count.
// The fleet exploits this for its replayable /metrics surface: updates
// are driven off the merged event log (itself bit-reproducible), and the
// exposition walks families and series in registration order.
//
// The types here are NOT safe for concurrent use; the fleet scheduler is
// single-threaded and the HTTP server serializes access behind its mutex,
// which is the same contract every other fleet structure has.
package obs

import (
	"fmt"
	"strings"
)

// Metric kinds, in Prometheus exposition vocabulary.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// Registry holds metric families in registration order — the order the
// exposition renders them in, which is what makes the output deterministic
// without any sorting pass.
type Registry struct {
	fams   []*family
	byName map[string]*family
}

// family is one named metric family: a help string, a kind, and its series.
type family struct {
	name   string
	help   string
	kind   string
	series []*series
	byKey  map[string]*series
}

// series is one labeled instance of a family. Exactly one of c/g/h is set,
// matching the family kind.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// lookup finds or creates the family, enforcing kind/help consistency.
func (r *Registry) lookup(name, help, kind string) *family {
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: family %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// labelKey renders labels into the canonical identity string.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// find returns the existing series with these labels, or nil.
func (f *family) find(key string) *series {
	return f.byKey[key]
}

func (f *family) add(key string, s *series) {
	f.series = append(f.series, s)
	f.byKey[key] = s
}

// Counter registers (or returns) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.lookup(name, help, KindCounter)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.c
	}
	c := &Counter{}
	f.add(key, &series{labels: labels, c: c})
	return c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.lookup(name, help, KindGauge)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.g
	}
	g := &Gauge{}
	f.add(key, &series{labels: labels, g: g})
	return g
}

// Histogram registers (or returns) a histogram with the given fixed upper
// bounds (ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	f := r.lookup(name, help, KindHistogram)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.h
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	f.add(key, &series{labels: labels, h: h})
	return h
}

// Counter is a monotonically increasing count. The update path is
// allocation-free.
type Counter struct {
	v float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds d (must be >= 0 to keep the counter monotone; not checked on
// the hot path).
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is an instantaneous value. The update path is allocation-free.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }
