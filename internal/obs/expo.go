package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Write renders the registry in the Prometheus text exposition format
// (version 0.0.4). Families render in registration order and series in
// creation order; floats go through strconv with the shortest round-trip
// representation — no map iteration, no wall clock — so the same metric
// state always produces the same bytes.
func (r *Registry) Write(w io.Writer) error {
	var b bytes.Buffer
	for _, f := range r.fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind)
		b.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				writeSample(&b, f.name, "", s.labels, "", s.c.v)
			case KindGauge:
				writeSample(&b, f.name, "", s.labels, "", s.g.v)
			case KindHistogram:
				h := s.h
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i]
					writeSample(&b, f.name, "_bucket", s.labels, fmtFloat(bound), float64(cum))
				}
				cum += h.counts[len(h.bounds)]
				writeSample(&b, f.name, "_bucket", s.labels, "+Inf", float64(cum))
				writeSample(&b, f.name, "_sum", s.labels, "", h.sum)
				writeSample(&b, f.name, "_count", s.labels, "", float64(h.count))
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writeSample renders one sample line; le is the bucket bound rendering
// for _bucket samples ("" elsewhere).
func writeSample(b *bytes.Buffer, name, suffix string, labels []Label, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	b.WriteByte('\n')
}

// fmtFloat renders a float the shortest way that round-trips — the single
// formatting rule every exposition value goes through.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Lint validates a text exposition payload: every sample belongs to a
// family with HELP and TYPE lines seen first, values parse, histogram
// bucket bounds are strictly increasing and end at +Inf, cumulative bucket
// counts are non-decreasing, and the _count sample equals the +Inf bucket.
// The CI exposition-lint test runs it over the live /metrics output.
func Lint(data []byte) error {
	type histState struct {
		les     []float64
		counts  []float64
		sum     *float64
		count   *float64
		lastInf bool
	}
	helps := map[string]bool{}
	types := map[string]string{}
	hists := map[string]map[string]*histState{} // family → series key (sans le)

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return fmt.Errorf("obs: line %d: malformed HELP", lineNo)
			}
			helps[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return fmt.Errorf("obs: line %d: malformed TYPE", lineNo)
			}
			switch kind {
			case KindCounter, KindGauge, KindHistogram:
			default:
				return fmt.Errorf("obs: line %d: unknown type %q", lineNo, kind)
			}
			if !helps[name] {
				return fmt.Errorf("obs: line %d: TYPE %s before its HELP", lineNo, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		v, err := parseValue(value)
		if err != nil {
			return fmt.Errorf("obs: line %d: bad value %q: %w", lineNo, value, err)
		}

		// Resolve the family: direct name, or a histogram suffix.
		family, role := name, "plain"
		if _, ok := types[family]; !ok {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && types[base] == KindHistogram {
					family, role = base, suf
					break
				}
			}
		}
		kind, ok := types[family]
		if !ok {
			return fmt.Errorf("obs: line %d: sample %s has no TYPE", lineNo, name)
		}
		if role == "plain" && kind == KindHistogram {
			return fmt.Errorf("obs: line %d: bare sample for histogram %s", lineNo, family)
		}
		if role != "plain" && kind != KindHistogram {
			return fmt.Errorf("obs: line %d: %s sample on %s family %s", lineNo, role, kind, family)
		}
		if kind == KindCounter && v < 0 {
			return fmt.Errorf("obs: line %d: negative counter %s", lineNo, name)
		}
		if kind != KindHistogram {
			continue
		}

		// Histogram bookkeeping: series identity is the label set minus le.
		var le string
		var rest []string
		for _, l := range labels {
			k, val, _ := strings.Cut(l, "=")
			if k == "le" {
				le = strings.Trim(val, `"`)
			} else {
				rest = append(rest, l)
			}
		}
		key := strings.Join(rest, ",")
		if hists[family] == nil {
			hists[family] = map[string]*histState{}
		}
		hs := hists[family][key]
		if hs == nil {
			hs = &histState{}
			hists[family][key] = hs
		}
		switch role {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("obs: line %d: bucket without le", lineNo)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("obs: line %d: bad le %q", lineNo, le)
				}
			}
			if n := len(hs.les); n > 0 && !(bound > hs.les[n-1]) {
				return fmt.Errorf("obs: line %d: %s bucket bounds not increasing (%g after %g)",
					lineNo, family, bound, hs.les[n-1])
			}
			if n := len(hs.counts); n > 0 && v < hs.counts[n-1] {
				return fmt.Errorf("obs: line %d: %s cumulative bucket counts decreased", lineNo, family)
			}
			hs.les = append(hs.les, bound)
			hs.counts = append(hs.counts, v)
			hs.lastInf = math.IsInf(bound, 1)
		case "_sum":
			hs.sum = &v
		case "_count":
			hs.count = &v
		}
	}

	for family, byKey := range hists {
		for key, hs := range byKey {
			id := family
			if key != "" {
				id += "{" + key + "}"
			}
			if len(hs.les) == 0 || !hs.lastInf {
				return fmt.Errorf("obs: histogram %s missing +Inf bucket", id)
			}
			if hs.sum == nil {
				return fmt.Errorf("obs: histogram %s missing _sum", id)
			}
			if hs.count == nil {
				return fmt.Errorf("obs: histogram %s missing _count", id)
			}
			if inf := hs.counts[len(hs.counts)-1]; *hs.count != inf {
				return fmt.Errorf("obs: histogram %s _count %g != +Inf bucket %g", id, *hs.count, inf)
			}
		}
	}
	return nil
}

// parseSample splits a sample line into name, raw label pairs and value.
func parseSample(line string) (name string, labels []string, value string, err error) {
	open := strings.IndexByte(line, '{')
	if open < 0 {
		name, value, _ = strings.Cut(line, " ")
		if name == "" || value == "" {
			return "", nil, "", fmt.Errorf("malformed sample %q", line)
		}
		return name, nil, strings.TrimSpace(value), nil
	}
	name = line[:open]
	body, rest, ok := cutLabels(line[open+1:])
	if !ok {
		return "", nil, "", fmt.Errorf("unterminated labels in %q", line)
	}
	if labels, err = splitLabels(body); err != nil {
		return "", nil, "", err
	}
	value = strings.TrimSpace(rest)
	if name == "" || value == "" {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	return name, labels, value, nil
}

// cutLabels scans to the closing brace, honoring quoted values.
func cutLabels(s string) (body, rest string, ok bool) {
	inq, esc := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case inq && c == '\\':
			esc = true
		case c == '"':
			inq = !inq
		case !inq && c == '}':
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// splitLabels splits k="v" pairs on unquoted commas.
func splitLabels(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	start, inq, esc := 0, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case inq && c == '\\':
			esc = true
		case c == '"':
			inq = !inq
		case !inq && c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if inq {
		return nil, fmt.Errorf("unterminated quote in labels %q", s)
	}
	out = append(out, s[start:])
	for _, pair := range out {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return nil, fmt.Errorf("malformed label pair %q", pair)
		}
	}
	return out, nil
}

// parseValue parses an exposition float, accepting the +Inf/-Inf/NaN forms.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
