package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bucketOf returns the index of the bucket holding v under Observe's
// placement rule (v <= bounds[i] and > bounds[i-1]; len(bounds) = +Inf).
func bucketOf(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// TestHistogramQuantileProperty checks Quantile against a sorted-sample
// reference estimator over randomized bucket layouts and sample sets,
// including exact-boundary ranks and runs of empty buckets. The histogram
// cannot beat its bucket resolution, so the property is containment: the
// estimate must fall inside the bucket that holds the rank-th sorted
// sample (its +Inf bucket collapsing to the largest finite bound), must
// be monotone in q, and must hit the bucket's upper bound exactly when
// the rank lands on the bucket's cumulative-count boundary.
func TestHistogramQuantileProperty(t *testing.T) {
	layouts := [][]float64{
		ExpBuckets(0.5, 2, 8),
		LinearBuckets(0, 0.5, 12),
		{1, 2, 3, 5, 8, 13}, // irregular, easy to leave holes in
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		bounds := layouts[trial%len(layouts)]
		h := Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		n := 1 + rng.Intn(150)
		samples := make([]float64, n)
		// A small value alphabet concentrates samples, manufacturing
		// empty-bucket runs; the alphabet mixes exact bounds (boundary
		// ranks), interior points and +Inf-bucket values.
		alphabet := []float64{
			bounds[rng.Intn(len(bounds))],
			bounds[0] * 0.5,
			bounds[len(bounds)-1] * (1.5 + rng.Float64()),
			bounds[rng.Intn(len(bounds))] * 0.99,
		}
		for i := range samples {
			samples[i] = alphabet[rng.Intn(1+rng.Intn(len(alphabet)))]
			h.Observe(samples[i])
		}
		sort.Float64s(samples)

		qs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		for k := 1; k <= n; k++ {
			qs = append(qs, float64(k)/float64(n)) // exact cumulative ranks
		}
		sort.Float64s(qs)
		prev := math.Inf(-1)
		for _, q := range qs {
			got := h.Quantile(q)
			if math.IsNaN(got) {
				t.Fatalf("trial %d: Quantile(%v) = NaN on a populated histogram", trial, q)
			}
			if got < prev {
				t.Fatalf("trial %d: Quantile not monotone: q=%v gave %v after %v", trial, q, got, prev)
			}
			prev = got

			// The same float expression the implementation uses, so the
			// reference picks the same order statistic on boundary ranks.
			rank := q * float64(n)
			idx := int(math.Ceil(rank)) - 1
			if idx < 0 {
				idx = 0
			}
			ref := samples[idx]
			bi := bucketOf(bounds, ref)
			if bi == len(bounds) {
				if want := bounds[len(bounds)-1]; got != want {
					t.Fatalf("trial %d: q=%v rank in +Inf bucket: got %v, want largest finite bound %v",
						trial, q, got, want)
				}
				continue
			}
			lower := 0.0
			if bi > 0 {
				lower = bounds[bi-1]
			}
			cumBefore := uint64(0)
			for j := 0; j < bi; j++ {
				cumBefore += h.counts[j]
			}
			// The first bucket's implicit lower bound is 0, but it also
			// absorbs samples <= 0 (e.g. a 0 bound), so containment is
			// inclusive there. And a rank a float-ULP above the preceding
			// cumulative boundary (q built as k/n wobbles around the integer
			// k) interpolates with a factor so small the estimate rounds back
			// onto the bucket's lower edge — that near-boundary case is
			// accepted; an estimate on the edge with the rank well inside the
			// bucket is not.
			nearBoundary := rank-float64(cumBefore) <= 1e-9
			below := got < lower || (bi > 0 && got == lower && !nearBoundary)
			if below || got > bounds[bi] {
				t.Fatalf("trial %d: q=%v: estimate %v outside the rank sample's bucket (%v, %v] (sample %v)",
					trial, q, got, lower, bounds[bi], ref)
			}
			// A rank exactly on this bucket's cumulative boundary pins the
			// bucket's upper bound, empty-run or not.
			cum := cumBefore + h.counts[bi]
			if rank == float64(cum) && got != bounds[bi] {
				t.Fatalf("trial %d: q=%v rank %v on cumulative boundary of bucket %d: got %v, want %v",
					trial, q, rank, bi, got, bounds[bi])
			}
		}
	}
}

// TestHistogramQuantileEdgeCases pins the documented domain contract.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := Histogram{bounds: []float64{1, 2, 3, 4}, counts: make([]uint64, 5)}
	for _, v := range []float64{0.5, 0.7, 1, 3.5, 4} {
		h.Observe(v)
	}
	for _, q := range []float64{0, -0.1, 1.0000001, 42, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want NaN for out-of-domain q", q, got)
		}
	}
	// Exact boundary into an empty-bucket run: 3 of 5 samples are <= 1 and
	// q = 0.6 puts the rank exactly on bucket 0's cumulative count, so the
	// estimate is bucket 0's upper bound — not a point inside the empty
	// (1,2] or (2,3] buckets, and not a value from the (3,4] bucket.
	if got := h.Quantile(0.6); got != 1 {
		t.Fatalf("boundary rank across empty run: got %v, want 1", got)
	}
	if got := h.Quantile(0.61); !(got > 3 && got <= 4) {
		t.Fatalf("rank past the empty run must land in (3,4], got %v", got)
	}

	// All mass in +Inf: every quantile collapses to the largest finite
	// bound, including q=1.
	inf := Histogram{bounds: []float64{1, 2}, counts: make([]uint64, 3)}
	inf.Observe(9)
	inf.Observe(1e12)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := inf.Quantile(q); got != 2 {
			t.Fatalf("+Inf-only Quantile(%v) = %v, want 2", q, got)
		}
	}

	// Partial +Inf mass: ranks inside the finite buckets still resolve
	// there; only ranks beyond them collapse.
	mix := Histogram{bounds: []float64{1, 2}, counts: make([]uint64, 3)}
	for _, v := range []float64{0.5, 1.5, 7, 8} {
		mix.Observe(v)
	}
	if got := mix.Quantile(0.25); !(got > 0 && got <= 1) {
		t.Fatalf("finite-rank quantile escaped its bucket: %v", got)
	}
	if got := mix.Quantile(0.9); got != 2 {
		t.Fatalf("+Inf-rank quantile = %v, want 2", got)
	}

	var empty Histogram
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %v, want NaN", got)
	}
}
