package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func renderString(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return b.String()
}

func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs seen.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("up", "Machine up.", Label{"machine", "0"})
	g.Set(1)
	h := r.Histogram("wait_seconds", "Queue wait.", []float64{0.5, 1, 2})
	h.Observe(0.3)
	h.Observe(1.5)
	h.Observe(9)

	got := renderString(t, r)
	want := `# HELP jobs_total Jobs seen.
# TYPE jobs_total counter
jobs_total 3
# HELP up Machine up.
# TYPE up gauge
up{machine="0"} 1
# HELP wait_seconds Queue wait.
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.5"} 1
wait_seconds_bucket{le="1"} 1
wait_seconds_bucket{le="2"} 2
wait_seconds_bucket{le="+Inf"} 3
wait_seconds_sum 10.8
wait_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Fatalf("Lint rejected valid exposition: %v", err)
	}
}

func TestRegistryDedupesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"k", "v"})
	b := r.Counter("c", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c", "h", Label{"k", "w"})
	if a == other {
		t.Fatal("different labels shared a counter")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "h")
	r.Gauge("x", "h")
}

func TestHistogramQuantile(t *testing.T) {
	h := Histogram{bounds: ExpBuckets(1, 2, 4), counts: make([]uint64, 5)}
	for _, v := range []float64{0.5, 1.5, 3, 3, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 {
		t.Fatalf("count/sum = %d/%g", h.Count(), h.Sum())
	}
	// rank(0.5) = 2.5 → bucket (2,4] holds obs 3..4, interpolate.
	q := h.Quantile(0.5)
	if q < 2 || q > 4 {
		t.Fatalf("p50 = %g, want within (2,4]", q)
	}
	if q99 := h.Quantile(0.99); q99 < 4 || q99 > 8 {
		t.Fatalf("p99 = %g, want within (4,8]", q99)
	}
	var empty Histogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	// Observations past the last bound report the largest finite bound.
	h2 := Histogram{bounds: []float64{1, 2}, counts: make([]uint64, 3)}
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %g, want 2", got)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "x 1\n",
		"TYPE before HELP": "# TYPE x counter\nx 1\n",
		"bad type":         "# HELP x h\n# TYPE x summary\nx 1\n",
		"negative counter": "# HELP x h\n# TYPE x counter\nx -1\n",
		"bad value":        "# HELP x h\n# TYPE x gauge\nx zero\n",
		"non-monotone bounds": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"2\"} 0\nx_bucket{le=\"1\"} 0\nx_bucket{le=\"+Inf\"} 0\nx_sum 0\nx_count 0\n",
		"decreasing cumulative": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_sum 0\nx_count 5\n",
		"missing +Inf": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_sum 1\nx_count 1\n",
		"count mismatch": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 3\n",
		"missing sum": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"+Inf\"} 1\nx_count 1\n",
		"bare histogram sample": "# HELP x h\n# TYPE x histogram\nx 1\n",
	}
	for name, payload := range cases {
		if err := Lint([]byte(payload)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, payload)
		}
	}
}

func TestLintAcceptsLabeledHistograms(t *testing.T) {
	payload := "# HELP x h\n# TYPE x histogram\n" +
		"x_bucket{m=\"0\",le=\"1\"} 1\nx_bucket{m=\"0\",le=\"+Inf\"} 2\nx_sum{m=\"0\"} 3\nx_count{m=\"0\"} 2\n" +
		"x_bucket{m=\"1\",le=\"1\"} 0\nx_bucket{m=\"1\",le=\"+Inf\"} 0\nx_sum{m=\"1\"} 0\nx_count{m=\"1\"} 0\n"
	if err := Lint([]byte(payload)); err != nil {
		t.Fatalf("Lint rejected labeled histograms: %v", err)
	}
}

func TestTimelineWindows(t *testing.T) {
	tl := NewTimeline(1, 8)
	s := tl.Series("lat")
	s.Observe(0.2, 10)
	s.Observe(0.9, 20)
	s.Observe(3.5, 6)
	snap := tl.Snapshot(1)["lat"]
	if len(snap) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(snap), snap)
	}
	w0 := snap[0]
	if w0.Start != 0 || w0.End != 1 || w0.Count != 2 || w0.Sum != 30 || w0.Min != 10 || w0.Max != 20 || w0.Mean != 15 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if snap[1].Start != 3 || snap[1].Count != 1 {
		t.Fatalf("window 1 = %+v", snap[1])
	}

	// Merged snapshot: k=4 groups align to multiples of 4 base windows.
	merged := tl.Snapshot(4)["lat"]
	if len(merged) != 1 || merged[0].Count != 3 || merged[0].Start != 0 || merged[0].End != 4 {
		t.Fatalf("merged = %+v", merged)
	}
}

func TestTimelineRingDropsOldWindows(t *testing.T) {
	tl := NewTimeline(1, 4)
	s := tl.Series("x")
	for i := 0; i < 10; i++ {
		s.Observe(float64(i)+0.5, 1)
	}
	snap := tl.Snapshot(1)["x"]
	if len(snap) != 4 {
		t.Fatalf("ring kept %d windows, want 4", len(snap))
	}
	if snap[0].Start != 6 || snap[3].Start != 9 {
		t.Fatalf("live range = [%g, %g], want [6, 9]", snap[0].Start, snap[3].Start)
	}
	// A late observation folds into the oldest live window.
	s.Observe(0.5, 5)
	snap = tl.Snapshot(1)["x"]
	if snap[0].Count != 2 {
		t.Fatalf("late observation not folded into oldest window: %+v", snap[0])
	}
	// A far jump resets the ring.
	s.Observe(1000.5, 1)
	snap = tl.Snapshot(1)["x"]
	if len(snap) != 1 || snap[0].Start != 1000 {
		t.Fatalf("far jump: %+v", snap)
	}
}

func TestSpanWriterValidJSON(t *testing.T) {
	var b bytes.Buffer
	w := NewSpanWriter(&b)
	w.Complete("running", "job", 1, 7, 2.5, 1.5, map[string]any{"job": 7})
	w.Instant("crash", "machine", 1, 0, 4, nil)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("span log is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["ts"] != 2.5e6 || events[0]["dur"] != 1.5e6 {
		t.Fatalf("complete span = %+v", events[0])
	}
	if events[1]["ph"] != "i" {
		t.Fatalf("instant span = %+v", events[1])
	}
	if !strings.HasPrefix(b.String(), "[\n") {
		t.Fatal("missing array header")
	}

	var empty bytes.Buffer
	w2 := NewSpanWriter(&empty)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close empty: %v", err)
	}
	if empty.String() != "[]\n" {
		t.Fatalf("empty span log = %q", empty.String())
	}
}

// TestUpdatePathsAllocationFree pins the hot-path contract: counter, gauge,
// histogram and timeline updates must not allocate, so the fleet can feed
// them from its event path without perturbing the zero-alloc barrier.
func TestUpdatePathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", ExpBuckets(0.1, 2, 16))
	tl := NewTimeline(1, 64)
	s := tl.Series("s")
	i := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(i)
		h.Observe(i)
		s.Observe(i, i)
		i += 0.25
	})
	if allocs != 0 {
		t.Fatalf("update path allocates %.1f per run, want 0", allocs)
	}
}

func TestExpBucketsDeterministic(t *testing.T) {
	a, b := ExpBuckets(0.1, 2, 16), ExpBuckets(0.1, 2, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket %d differs", i)
		}
		if i > 0 && !(a[i] > a[i-1]) {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
	lin := LinearBuckets(1, 0.05, 20)
	if lin[0] != 1 || len(lin) != 20 {
		t.Fatalf("linear buckets = %v", lin)
	}
}
