package bwapvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedIO flags calls that perform I/O — file and network operations,
// writes to escape-prone writers, logging — or invoke stored callbacks
// while a sync.Mutex or sync.RWMutex is provably held. This is the PR 8
// server-exposition bug class: rendering /metrics to a slow client under
// the fleet mutex stalls the simulation driver; logging under a lock
// serializes every contender behind stderr. The analysis is a forward walk
// over each function body tracking Lock/Unlock pairs (including deferred
// unlocks, which hold to function end), so "provably held" means held on
// every straight-line path the walker can see — cross-function lock flow
// is out of scope by design.
//
// Rendering into an in-memory buffer (*bytes.Buffer, *strings.Builder)
// under a lock is the approved snapshot-then-write idiom and is not
// flagged; what is flagged is letting an interface-typed writer — which
// may be a socket — absorb writes before the unlock.
var LockedIO = &Analyzer{
	Name: "lockedio",
	Doc: "flag I/O, exposition writes, logging, and stored-callback invocation " +
		"while a sync.Mutex/RWMutex is held",
	Run: runLockedIO,
}

// lockedIOFuncs maps package path → function name → index of the writer
// argument whose static type decides the verdict (-1: always I/O).
var lockedIOFuncs = map[string]map[string]int{
	"fmt": {"Fprint": 0, "Fprintf": 0, "Fprintln": 0},
	"io":  {"WriteString": 0, "Copy": 0, "CopyN": 0, "CopyBuffer": 0},
	"net/http": {
		"Error": 0, "Redirect": 0, "ServeContent": 0, "ServeFile": 0, "SetCookie": 0,
	},
	"os": {
		"Create": -1, "Open": -1, "OpenFile": -1, "ReadFile": -1, "WriteFile": -1,
		"Remove": -1, "RemoveAll": -1, "Rename": -1, "Mkdir": -1, "MkdirAll": -1,
		"ReadDir": -1, "Stat": -1, "Lstat": -1, "Chmod": -1, "Chtimes": -1,
		"Truncate": -1, "Link": -1, "Symlink": -1,
	},
	"net": {"Dial": -1, "DialTimeout": -1, "Listen": -1, "ListenPacket": -1},
	"log": {
		"Print": -1, "Printf": -1, "Println": -1, "Fatal": -1, "Fatalf": -1,
		"Fatalln": -1, "Panic": -1, "Panicf": -1, "Panicln": -1, "Output": -1,
	},
	"log/slog": {
		"Debug": -1, "DebugContext": -1, "Info": -1, "InfoContext": -1,
		"Warn": -1, "WarnContext": -1, "Error": -1, "ErrorContext": -1,
		"Log": -1, "LogAttrs": -1,
	},
}

// lockedIOMethods maps receiver type (types.Type string) → method names
// that perform I/O on it.
var lockedIOMethods = map[string]map[string]bool{
	"*log/slog.Logger": {
		"Debug": true, "DebugContext": true, "Info": true, "InfoContext": true,
		"Warn": true, "WarnContext": true, "Error": true, "ErrorContext": true,
		"Log": true, "LogAttrs": true,
	},
	"*log.Logger": {
		"Print": true, "Printf": true, "Println": true, "Fatal": true,
		"Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true,
		"Panicln": true, "Output": true,
	},
	"*encoding/json.Encoder": {"Encode": true},
	"*os.File": {
		"Write": true, "WriteString": true, "WriteAt": true, "Read": true,
		"ReadAt": true, "Sync": true, "Close": true, "Truncate": true,
	},
	"*bufio.Writer": {
		"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
		"Flush": true, "ReadFrom": true,
	},
}

// writerIfaceMethods are methods that move bytes when invoked on an
// interface-typed receiver with a Write method (io.Writer,
// http.ResponseWriter, net.Conn, ...).
var writerIfaceMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteHeader": true,
	"Flush": true, "Sync": true, "ReadFrom": true, "Close": true,
}

func runLockedIO(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				st := &lockState{held: map[string]bool{}}
				p.walkLocked(body.List, st)
			}
			return true
		})
	}
	return nil
}

// lockState is the set of mutexes provably held at a program point, keyed
// by the printed receiver expression ("s.mu").
type lockState struct {
	held map[string]bool
}

func (st *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]bool, len(st.held))}
	for k := range st.held {
		c.held[k] = true
	}
	return c
}

func (st *lockState) absorb(other *lockState) {
	for k := range other.held {
		st.held[k] = true
	}
}

// walkLocked advances the lock state across stmts in order, checking every
// call reached while a lock is held.
func (p *Pass) walkLocked(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		p.walkStmt(s, st)
	}
}

func (p *Pass) walkStmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockTransition(p, s.X); ok {
			switch op {
			case "Lock", "RLock":
				st.held[key] = true
			case "Unlock", "RUnlock":
				delete(st.held, key)
			}
			return
		}
		p.checkCalls(s.X, st)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held through the rest of the
		// function; other deferred calls run at return time, outside the
		// region this walker reasons about.
		if _, op, ok := lockTransition(p, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
	case *ast.BlockStmt:
		p.walkLocked(s.List, st)
	case *ast.LabeledStmt:
		p.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		p.checkCalls(s.Init, st)
		p.checkCalls(s.Cond, st)
		thenSt := st.clone()
		p.walkLocked(s.Body.List, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			p.walkStmt(s.Else, elseSt)
		}
		merged := &lockState{held: map[string]bool{}}
		if !terminates(s.Body.List) {
			merged.absorb(thenSt)
		}
		if s.Else == nil || !stmtTerminates(s.Else) {
			merged.absorb(elseSt)
		}
		st.held = merged.held
	case *ast.ForStmt:
		p.checkCalls(s.Init, st)
		p.checkCalls(s.Cond, st)
		bodySt := st.clone()
		p.walkLocked(s.Body.List, bodySt)
		st.absorb(bodySt)
	case *ast.RangeStmt:
		p.checkCalls(s.X, st)
		bodySt := st.clone()
		p.walkLocked(s.Body.List, bodySt)
		st.absorb(bodySt)
	case *ast.SwitchStmt:
		p.checkCalls(s.Init, st)
		p.checkCalls(s.Tag, st)
		p.walkClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		p.checkCalls(s.Assign, st)
		p.walkClauses(s.Body, st)
	case *ast.SelectStmt:
		p.walkClauses(s.Body, st)
	default:
		p.checkCalls(s, st)
	}
}

// walkClauses runs every case clause from a clone of the incoming state
// and merges the fall-through ends conservatively.
func (p *Pass) walkClauses(body *ast.BlockStmt, st *lockState) {
	merged := &lockState{held: map[string]bool{}}
	any := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		clSt := st.clone()
		p.walkLocked(stmts, clSt)
		if !terminates(stmts) {
			merged.absorb(clSt)
			any = true
		}
	}
	if any {
		st.held = merged.held
	}
}

// terminates reports whether a statement list definitely does not fall
// through (ends in return, panic, or a branch out).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// lockTransition matches x.Lock()/RLock()/Unlock()/RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the receiver key and operation.
func lockTransition(p *Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", "", false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil || !isSyncLockType(t) {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

func isSyncLockType(t types.Type) bool {
	s := t.String()
	s = strings.TrimPrefix(s, "*")
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// checkCalls walks an expression or statement subtree (not descending into
// function literals or go/defer statements) and reports every I/O-or-
// callback call when a lock is held.
func (p *Pass) checkCalls(n ast.Node, st *lockState) {
	if n == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			p.checkOneCall(m, st)
		}
		return true
	})
}

func (p *Pass) checkOneCall(call *ast.CallExpr, st *lockState) {
	heldKey := anyKey(st.held)
	if p.Escaped(call.Pos(), "lockedio") {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if isPkgQualified(p, fun) {
				if argIdx, ok := lockedIOFuncs[fn.Pkg().Path()][fn.Name()]; ok {
					if argIdx < 0 || !isInMemoryWriterArg(p, call, argIdx) {
						p.Reportf(call.Pos(),
							"%s.%s performs I/O while %s is held; move it after the unlock, or annotate //bwap:lockedio <reason>",
							fn.Pkg().Name(), fn.Name(), heldKey)
					}
				}
				return
			}
			// Method call: receiver-type sinks, then writer-shaped interfaces.
			recv := p.Info.TypeOf(fun.X)
			if recv == nil {
				return
			}
			if lockedIOMethods[recv.String()][fn.Name()] {
				p.Reportf(call.Pos(),
					"(%s).%s performs I/O while %s is held; move it after the unlock, or annotate //bwap:lockedio <reason>",
					recv.String(), fn.Name(), heldKey)
				return
			}
			if writerIfaceMethods[fn.Name()] && isWriterInterface(recv) {
				p.Reportf(call.Pos(),
					"%s.%s writes through an interface that may be a live socket or file while %s is held; snapshot into a buffer and write after the unlock, or annotate //bwap:lockedio <reason>",
					types.ExprString(fun.X), fn.Name(), heldKey)
				return
			}
			// A call that hands an interface-typed writer into another
			// function smuggles the I/O one frame down.
			if interfaceWriterArg(p, call) && fn.Pkg().Path() != "sync" {
				p.Reportf(call.Pos(),
					"call passes an interface-typed writer while %s is held; the callee may write to a live socket — snapshot-then-write instead, or annotate //bwap:lockedio <reason>",
					heldKey)
				return
			}
			// Stored callback: a func-typed struct field invoked under lock.
			if selection, ok := p.Info.Selections[fun]; ok && selection.Kind() == types.FieldVal {
				if _, isSig := selection.Type().Underlying().(*types.Signature); isSig {
					p.Reportf(call.Pos(),
						"callback field %s invoked while %s is held can re-enter or block arbitrarily; call it after the unlock, or annotate //bwap:lockedio <reason>",
						types.ExprString(fun), heldKey)
				}
			}
			return
		}
		// Selection did not resolve to a *types.Func: a func-typed field.
		if selection, ok := p.Info.Selections[fun]; ok && selection.Kind() == types.FieldVal {
			if _, isSig := selection.Type().Underlying().(*types.Signature); isSig && !p.Escaped(call.Pos(), "lockedio") {
				p.Reportf(call.Pos(),
					"callback field %s invoked while %s is held can re-enter or block arbitrarily; call it after the unlock, or annotate //bwap:lockedio <reason>",
					types.ExprString(fun), heldKey)
			}
		}
	case *ast.Ident:
		// Package-level func variables are mutable seams — treat them like
		// stored callbacks. Locals and parameters are internal plumbing
		// (e.g. an op passed by the one caller that owns the lock) and are
		// deliberately not flagged.
		if v, ok := p.Info.Uses[fun].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				p.Reportf(call.Pos(),
					"package-level func variable %s invoked while %s is held can be rebound to anything; call it after the unlock, or annotate //bwap:lockedio <reason>",
					fun.Name, heldKey)
			}
		}
	}
}

// anyKey returns one held-lock key for the message (sorted for stability).
func anyKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// isInMemoryWriterArg reports whether argument idx has a concrete
// in-memory type that cannot reach a socket or file.
func isInMemoryWriterArg(p *Pass, call *ast.CallExpr, idx int) bool {
	if idx >= len(call.Args) {
		return false
	}
	return isInMemoryWriter(p.Info.TypeOf(call.Args[idx]))
}

func isInMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	s := strings.TrimPrefix(t.String(), "*")
	return s == "bytes.Buffer" || s == "strings.Builder"
}

// interfaceWriterArg reports whether any argument's static type is a
// writer-shaped interface (has a Write method) and not an in-memory type.
func interfaceWriterArg(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isWriterInterface(p.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isWriterInterface reports whether t is an interface type whose method
// set includes Write([]byte) (int, error) — io.Writer, http.ResponseWriter,
// net.Conn and friends.
func isWriterInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Write" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}
