package bwapvet

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SeededRand forbids unseeded or unspecified randomness in deterministic
// packages (non-test files):
//
//   - importing math/rand at all: its stream is unspecified across Go
//     versions, so a replayed log could differ under a toolchain bump;
//   - referencing any package-level function of math/rand/v2 — the global
//     functions (rand.IntN, rand.Float64, ...) draw from a runtime-seeded
//     source, and the constructors (rand.New, rand.NewPCG, rand.NewChaCha8)
//     mint ad-hoc streams that bypass the experiment seed plumbing.
//
// Deterministic code takes a seeded stream from stats.NewRand or
// workload.NewRand (splitmix64-derived), or a *rand.Rand handed in by its
// caller; methods on such a value are fine. The sanctioned constructors
// themselves carry //bwap:rand annotations.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand and ad-hoc math/rand/v2 sources in deterministic packages; " +
		"construct streams via stats.NewRand / workload.NewRand",
	Run: runSeededRand,
}

func runSeededRand(p *Pass) error {
	if !isDeterministic(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Package) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "math/rand" {
				continue
			}
			if p.Escaped(imp.Pos(), "rand") {
				continue
			}
			p.Reportf(imp.Pos(),
				"math/rand has an unspecified stream; deterministic package %s must use math/rand/v2 via stats.NewRand or workload.NewRand",
				basePkgPath(p.Pkg.Path()))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			// Only package-qualified references: methods on a *rand.Rand
			// value that was seeded upstream are the sanctioned pattern.
			if !isPkgQualified(p, sel) {
				return true
			}
			if p.Escaped(sel.Pos(), "rand") {
				return true
			}
			p.Reportf(sel.Pos(),
				"%s.%s bypasses the experiment seed plumbing in deterministic package %s; take a seeded *rand.Rand from stats.NewRand or workload.NewRand, or annotate //bwap:rand <reason>",
				pkgPath, fn.Name(), basePkgPath(p.Pkg.Path()))
			return true
		})
	}
	return nil
}
