// Fixture for the walltime analyzer, checked under the deterministic
// package path bwap/internal/sim.
package sim

import "time"

// Durations are units, not clocks: never flagged.
const tick = 10 * time.Millisecond

func scale(d time.Duration) float64 { return d.Seconds() }

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock in deterministic package bwap/internal/sim`
}

func badTimer() {
	t := time.NewTicker(tick) // want `time\.NewTicker reads the wall clock`
	defer t.Stop()
	time.Sleep(tick)   // want `time\.Sleep reads the wall clock`
	<-time.After(tick) // want `time\.After reads the wall clock`
}

func escapedSameLine() time.Time {
	return time.Now() //bwap:wallclock fixture: sanctioned for display-only timing
}

func escapedLineAbove() time.Duration {
	//bwap:wallclock fixture: sanctioned for display-only timing
	start := time.Now()
	//bwap:wallclock fixture: sanctioned for display-only timing
	return time.Since(start)
}

// A method that happens to be called Now is not the clock.
type clock struct{}

func (clock) Now() int { return 0 }

func methodShadow() int {
	var c clock
	return c.Now()
}
