// Fixture for the maporder analyzer, checked under the deterministic
// package path bwap/internal/fleet.
package fleet

import "sort"

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration captures randomized order`
	}
	return keys
}

// Collect-then-sort launders map order back into a total one: allowed.
func okSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A loop-local accumulator cannot leak iteration order past the loop.
func okLoopLocal(m map[string]int) int {
	total := 0
	for _, v := range m {
		scratch := []int{}
		scratch = append(scratch, v)
		total += scratch[0]
	}
	return total
}

func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration publishes values in randomized order`
	}
}

type record struct{ key string }

type recordLog struct{ recs []record }

func (l *recordLog) append(r record) { l.recs = append(l.recs, r) }

func badSink(m map[string]record, l *recordLog) {
	for _, r := range m {
		l.append(r) // want `l\.append called inside map iteration feeds ordered state`
	}
}

// A closure built during iteration does not run during iteration.
var deferred func()

func okClosure(m map[string]int) {
	var out []string
	for k := range m {
		deferred = func() { out = append(out, k) }
	}
	_ = out
}

func escapedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { //bwap:maporder fixture: consumer sorts downstream
		keys = append(keys, k)
	}
	return keys
}

// Ranging over a slice is ordered; nothing to flag.
func okSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
