// Fixture proving the deterministic-set gate: this package is checked
// under bwap/cmd/bwapd, which lives on the wall-clock side of the
// boundary, so nothing here is flagged.
package main

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func stamp() time.Time { return time.Now() }
