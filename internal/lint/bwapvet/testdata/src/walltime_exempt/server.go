// Fixture proving the per-file exemption: server.go in bwap/internal/fleet
// is the declared wall↔sim bridge, so its clock reads are not flagged.
package fleet

import "time"

func pace() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	<-t.C
}
