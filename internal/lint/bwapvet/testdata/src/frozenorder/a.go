// Fixture for the frozenorder analyzer, checked against a golden that
// deliberately disagrees: kindC drifted (an event kind was inserted),
// schemaVersion was bumped without updating the golden, and "gone" pins a
// constant this package no longer declares.
package frozen // want `frozen constant example/frozen\.gone is gone`

type kind int

const (
	kindA kind = iota
	kindB
	kindC // want `frozen constant example/frozen\.kindC = 2, want 1 per frozen\.golden`
)

const schemaVersion = 3 // want `frozen constant example/frozen\.schemaVersion = 3, want 2 per frozen\.golden`

const envelopeKind = "frozen-envelope"

var _ = []any{kindA, kindB, kindC, schemaVersion, envelopeKind}
