// Fixture for the seededrand analyzer, checked under the deterministic
// package path bwap/internal/stats.
package stats

import "math/rand/v2"

func badGlobal() int {
	return rand.IntN(10) // want `math/rand/v2\.IntN bypasses the experiment seed plumbing`
}

func badConstructor(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed)) // want `math/rand/v2\.New bypasses` `math/rand/v2\.NewPCG bypasses`
}

// Methods on a stream somebody seeded upstream are the sanctioned pattern.
func okMethods(r *rand.Rand) float64 {
	return r.Float64() + float64(r.IntN(3))
}

func escapedConstructor(seed uint64) *rand.Rand {
	//bwap:rand fixture: the sanctioned constructor itself
	return rand.New(rand.NewPCG(seed, seed))
}
