package stats

import oldrand "math/rand" // want `math/rand has an unspecified stream`

func badV1() int {
	return oldrand.Int() // want `math/rand\.Int bypasses the experiment seed plumbing`
}
