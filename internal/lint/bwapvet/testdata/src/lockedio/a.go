// Fixture for the lockedio analyzer. The package path does not matter:
// holding a lock across I/O is wrong everywhere.
package locked

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"sync"
)

type server struct {
	mu       sync.Mutex
	n        int
	onChange func(int)
}

func (s *server) badFprintf(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", s.n) // want `fmt\.Fprintf performs I/O while s\.mu is held`
}

// Rendering into an in-memory buffer under the lock, writing after: the
// approved snapshot-then-write idiom.
func (s *server) okBuffer(w io.Writer) error {
	s.mu.Lock()
	var b bytes.Buffer
	fmt.Fprintf(&b, "n=%d\n", s.n)
	s.mu.Unlock()
	_, err := w.Write(b.Bytes())
	return err
}

func (s *server) badLog() {
	s.mu.Lock()
	slog.Info("tick", "n", s.n) // want `slog\.Info performs I/O while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) badWriterMethod(w io.Writer) {
	s.mu.Lock()
	w.Write([]byte("x")) // want `w\.Write writes through an interface that may be a live socket`
	s.mu.Unlock()
}

// A deferred unlock holds the lock to the end of the function.
func (s *server) badDeferred(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	w.Write([]byte("x")) // want `w\.Write writes through an interface`
}

func (s *server) okAfterUnlock(w io.Writer) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", n)
}

// The spawned goroutine does not inherit the caller's lock.
func (s *server) okGoroutine(done chan struct{}) {
	s.mu.Lock()
	go func() {
		slog.Info("async")
		close(done)
	}()
	s.mu.Unlock()
}

func (s *server) badCallbackField() {
	s.mu.Lock()
	s.onChange(s.n) // want `callback field s\.onChange invoked while s\.mu is held`
	s.mu.Unlock()
}

// A callback parameter is internal plumbing the caller controls: allowed.
func (s *server) okParamCallback(op func(int)) {
	s.mu.Lock()
	op(s.n)
	s.mu.Unlock()
}

var hook = func(int) {}

func (s *server) badPkgHook() {
	s.mu.Lock()
	hook(s.n) // want `package-level func variable hook invoked while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) escapedLog() {
	s.mu.Lock()
	slog.Info("tick", "n", s.n) //bwap:lockedio fixture: startup-only path, no contention
	s.mu.Unlock()
}

// A branch that unlocks and returns must not poison the merge.
func (s *server) okBranchReturn(w io.Writer) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", s.n)
}

func (s *server) badBranch(w io.Writer) {
	s.mu.Lock()
	if s.n > 0 {
		fmt.Fprintf(w, "positive\n") // want `fmt\.Fprintf performs I/O while s\.mu is held`
	}
	s.mu.Unlock()
}

type gauge struct {
	mu sync.RWMutex
	v  float64
}

func (g *gauge) badRLock(w io.Writer) {
	g.mu.RLock()
	fmt.Fprintf(w, "%g\n", g.v) // want `fmt\.Fprintf performs I/O while g\.mu is held`
	g.mu.RUnlock()
}

// The observer.go bug shape: handing an interface-typed writer to a callee
// smuggles the socket write one frame down.
type registry struct{}

func (r *registry) Write(w io.Writer) error {
	_, err := fmt.Fprintln(w, "snapshot")
	return err
}

type observer struct {
	mu  sync.Mutex
	reg registry
}

func (o *observer) badIndirectWrite(w io.Writer) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reg.Write(w) // want `passes an interface-typed writer while o\.mu is held`
}
