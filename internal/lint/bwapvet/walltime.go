package bwapvet

import (
	"go/ast"
	"go/types"
)

// Walltime forbids reading the wall clock in deterministic packages.
// Simulated components advance on sim time only; a single time.Now (or a
// timer, which is a wall clock wearing a channel) makes output depend on
// host speed and scheduling, which breaks bit-identical replay. Legitimate
// uses — experiment harness speedup measurements, server test deadlines —
// carry a //bwap:wallclock annotation with a reason.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/time.Since/timers in deterministic packages; " +
		"annotate genuine wall-clock needs with //bwap:wallclock",
	Run: runWalltime,
}

// walltimeForbidden is the set of package time functions that read or
// schedule against the wall clock. Duration arithmetic and constants
// (time.Millisecond, d.Seconds()) stay legal: they are units, not clocks.
var walltimeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Sleep":     true,
}

func runWalltime(p *Pass) error {
	if !isDeterministic(p.Pkg.Path()) {
		return nil
	}
	exempt := walltimeExemptFiles[basePkgPath(p.Pkg.Path())]
	for _, f := range p.Files {
		if exempt[p.fileBase(f)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeForbidden[fn.Name()] {
				return true
			}
			if !isPkgQualified(p, sel) {
				return true // a method that happens to share a name
			}
			if p.Escaped(sel.Pos(), "wallclock") {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock in deterministic package %s; use sim time, or annotate //bwap:wallclock <reason>",
				fn.Name(), basePkgPath(p.Pkg.Path()))
			return true
		})
	}
	return nil
}

// isPkgQualified reports whether sel is a package-qualified reference
// (pkg.Name) rather than a field or method selection.
func isPkgQualified(p *Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := p.Info.Uses[id].(*types.PkgName)
	return isPkg
}
