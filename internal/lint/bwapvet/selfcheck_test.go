package bwapvet

import (
	"strings"
	"sync"
	"testing"
)

var (
	moduleOnce sync.Once
	modulePkgs []*Package
	moduleErr  error
)

// loadModule loads every package of the repository (test variants
// included) exactly once per test binary; the go list + typecheck round
// trip is the expensive part of these tests.
func loadModule(t *testing.T) []*Package {
	t.Helper()
	moduleOnce.Do(func() {
		modulePkgs, moduleErr = LoadPackages("../../..", "./...")
	})
	if moduleErr != nil {
		t.Fatal(moduleErr)
	}
	return modulePkgs
}

// TestSuiteCleanOnTree is the contract the repository ships under: the
// full analyzer suite reports nothing on the current tree. Every genuine
// finding must be fixed or carry a reviewed //bwap: annotation before it
// lands — this test is the same gate CI applies via go vet -vettool.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and typechecks the whole module")
	}
	for _, pkg := range loadModule(t) {
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s (%s)", pkg.Path, pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}

// TestFrozenOrderCatchesBump doctors the embedded golden one pinned
// constant at a time and proves the analyzer notices against the real
// packages — i.e. an accidental event-kind reorder, log-schema bump, or
// envelope-version bump cannot land silently.
func TestFrozenOrderCatchesBump(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and typechecks the whole module")
	}
	pkgs := loadModule(t)
	byPath := make(map[string]*Package)
	for _, pkg := range pkgs {
		if _, ok := byPath[pkg.Path]; !ok {
			byPath[pkg.Path] = pkg
		}
	}
	cases := []struct {
		name    string
		pkgPath string
		pin     string // golden line to corrupt
		doctor  string // replacement pinning a different value
	}{
		{"event kind order", "bwap/internal/fleet",
			"bwap/internal/fleet.evRetune = 7", "bwap/internal/fleet.evRetune = 6"},
		{"log schema version", "bwap/internal/fleet",
			"bwap/internal/fleet.LogSchemaVersion = 2", "bwap/internal/fleet.LogSchemaVersion = 3"},
		{"tuning cache envelope version", "bwap/internal/fleet",
			"bwap/internal/fleet.tuningCacheFileVersion = 1", "bwap/internal/fleet.tuningCacheFileVersion = 2"},
		{"tuning cache envelope kind", "bwap/internal/fleet",
			`bwap/internal/fleet.tuningCacheFileKind = "bwap-tuning-cache"`,
			`bwap/internal/fleet.tuningCacheFileKind = "bwap-tuning-cache-v2"`},
		{"snapshot envelope version", "bwap/internal/cache",
			"bwap/internal/cache.SnapshotVersion = 1", "bwap/internal/cache.SnapshotVersion = 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := byPath[tc.pkgPath]
			if pkg == nil {
				t.Fatalf("package %s not loaded", tc.pkgPath)
			}
			if !strings.Contains(frozenGolden, tc.pin) {
				t.Fatalf("embedded golden no longer pins %q", tc.pin)
			}
			doctored := strings.Replace(frozenGolden, tc.pin, tc.doctor, 1)
			diags, err := Run(pkg, []*Analyzer{NewFrozenOrder(doctored)})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 1 {
				t.Fatalf("doctored golden (%s): got %d diagnostics, want exactly 1: %v",
					tc.name, len(diags), diags)
			}
			name := tc.pin[strings.LastIndex(tc.pin, ".")+1 : strings.Index(tc.pin, " =")]
			if !strings.Contains(diags[0].Message, name) {
				t.Fatalf("diagnostic does not name %s: %s", name, diags[0].Message)
			}
		})
	}
}

// TestFrozenOrderCleanGolden proves the committed golden matches the tree.
func TestFrozenOrderCleanGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and typechecks the whole module")
	}
	for _, pkg := range loadModule(t) {
		diags, err := Run(pkg, []*Analyzer{FrozenOrder})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
