// Package bwapvet is a static-analysis suite that mechanically enforces
// this repository's determinism & replay contract (DESIGN.md §13). Every
// guarantee the fleet makes — bit-identical JSONL logs per seed,
// shard-invariant replay, byte-identical /metrics re-ingestion — rests on
// coding rules that used to be enforced by review alone:
//
//   - walltime:    no wall clock (time.Now & friends) in simulated paths;
//   - seededrand:  no math/rand v1 and no ad-hoc RNG construction — streams
//     come from the seeded helpers (stats.NewRand, workload.NewRand);
//   - maporder:    no map-iteration order leaking into ordered state
//     (appends, channel sends, record/metric sinks);
//   - lockedio:    no I/O, exposition writes, or callback invocation while
//     a sync.Mutex/RWMutex is provably held;
//   - frozenorder: pinned constants (event-kind iota block, log schema
//     version, cache snapshot envelope) must match the frozen golden.
//
// The suite runs three ways: as `go vet -vettool=$(which bwapvet) ./...`
// (cmd/bwapvet speaks the unitchecker .cfg protocol), standalone as
// `bwapvet ./...`, and in-process from tests via LoadPackages + Run.
//
// The framework below is a deliberately small, stdlib-only subset of
// golang.org/x/tools/go/analysis — this module has no external
// dependencies, and five analyzers over one module do not need facts,
// result passing, or an analyzer DAG.
package bwapvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)

	// directives maps file → line → escape-directive names ("wallclock",
	// "rand", "maporder", "lockedio") found in //bwap: comments.
	directives map[string]map[int][]string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// directivePrefix introduces an escape comment: //bwap:NAME reason...
// The reason is mandatory by convention (reviewed, not machine-checked).
const directivePrefix = "//bwap:"

// buildDirectives indexes every //bwap: escape comment by file and line.
func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, _, _ := strings.Cut(rest, " ")
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				posn := p.Fset.Position(c.Pos())
				byLine := p.directives[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.directives[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], name)
			}
		}
	}
}

// Escaped reports whether an escape directive //bwap:name annotates the
// line of pos or the line immediately above it.
func (p *Pass) Escaped(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	posn := p.Fset.Position(pos)
	byLine := p.directives[posn.Filename]
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, d := range byLine[line] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// fileBase returns the base name of the file f was parsed from.
func (p *Pass) fileBase(f *ast.File) string {
	return filepath.Base(p.Fset.Position(f.Package).Filename)
}

// deterministicPkgs lists the packages bound by the determinism contract:
// everything under internal/ except the lint tooling itself. Code here may
// consume only simulated time and seeded randomness, and may not let map
// iteration order reach ordered state. cmd/, examples/ and the root facade
// run on the wall-clock side of the boundary. The fleet server (the one
// wall-coupled file, listed in walltimeExemptFiles) drives simulated time
// from real time by design.
var deterministicPkgs = map[string]bool{
	"bwap/internal/cache":       true,
	"bwap/internal/core":        true,
	"bwap/internal/experiments": true,
	"bwap/internal/fleet":       true,
	"bwap/internal/memsys":      true,
	"bwap/internal/mm":          true,
	"bwap/internal/numaapi":     true,
	"bwap/internal/obs":         true,
	"bwap/internal/perf":        true,
	"bwap/internal/policy":      true,
	"bwap/internal/sched":       true,
	"bwap/internal/search":      true,
	"bwap/internal/sim":         true,
	"bwap/internal/stats":       true,
	"bwap/internal/topology":    true,
	"bwap/internal/trace":       true,
	"bwap/internal/workload":    true,
}

// walltimeExemptFiles lists files, by package, exempt from the walltime
// analyzer: the fleet server is the process's bridge between wall time and
// simulated time (its background driver paces Fleet.Advance off a real
// ticker), so wall-clock use there is the point, not a leak. Server tests
// are NOT exempt — their real deadlines carry //bwap:wallclock annotations.
var walltimeExemptFiles = map[string]map[string]bool{
	"bwap/internal/fleet": {"server.go": true},
}

// basePkgPath reduces a test-variant package path to the path the
// determinism contract speaks about: "p [p.test]" (in-package test
// variant) and "p_test" (external test package) both map to "p".
func basePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// isDeterministic reports whether the determinism contract applies to the
// package (test variants follow their base package).
func isDeterministic(path string) bool {
	return deterministicPkgs[basePkgPath(path)]
}

// All returns the full bwapvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, SeededRand, MapOrder, LockedIO, FrozenOrder}
}

// Run applies the analyzers to one loaded package and returns the
// diagnostics sorted by position then message, so output order is
// deterministic regardless of analyzer internals.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
