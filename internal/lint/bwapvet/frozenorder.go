package bwapvet

import (
	_ "embed"
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrozenOrder verifies that replay-critical constants still carry their
// frozen values. The event-kind iota block orders same-timestamp events;
// the JSONL log schema version names the record shape replay tooling
// parses; the tuning-cache and snapshot envelope versions gate artifact
// reuse. Any of these can drift by accident — an event kind inserted
// mid-block renumbers everything after it and changes every log byte — so
// the frozen values live in frozen.golden and this analyzer diffs the
// typechecked constants against it. A deliberate change updates the golden
// in the same commit.
var FrozenOrder = NewFrozenOrder(frozenGolden)

//go:embed frozen.golden
var frozenGolden string

// NewFrozenOrder builds a frozenorder analyzer against an arbitrary golden
// table; tests use it to prove that a constant bump is caught.
func NewFrozenOrder(golden string) *Analyzer {
	return &Analyzer{
		Name: "frozenorder",
		Doc: "verify pinned event-kind order and schema/envelope version constants " +
			"against frozen.golden",
		Run: func(p *Pass) error { return runFrozenOrder(p, golden) },
	}
}

// parseFrozenGolden parses "pkg.Const = value" lines into
// pkgPath → constName → ExactString value.
func parseFrozenGolden(golden string) (map[string]map[string]string, error) {
	table := make(map[string]map[string]string)
	for i, line := range strings.Split(golden, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lhs, val, ok := strings.Cut(line, " = ")
		if !ok {
			return nil, fmt.Errorf("frozen.golden line %d: want \"pkg.Const = value\", got %q", i+1, line)
		}
		dot := strings.LastIndex(lhs, ".")
		if dot < 0 {
			return nil, fmt.Errorf("frozen.golden line %d: no package path in %q", i+1, lhs)
		}
		pkg, name := lhs[:dot], lhs[dot+1:]
		if table[pkg] == nil {
			table[pkg] = make(map[string]string)
		}
		table[pkg][name] = val
	}
	return table, nil
}

func runFrozenOrder(p *Pass, golden string) error {
	table, err := parseFrozenGolden(golden)
	if err != nil {
		return err
	}
	// Only the package that declares the constants is checked. The
	// in-package test variant ("p [p.test]") re-typechecks the same
	// declarations and is checked too — harmless duplication at worst —
	// but an external "p_test" package does not declare them and must not
	// produce phantom "removed" findings, so no _test suffix stripping.
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	want := table[path]
	if len(want) == 0 || strings.HasSuffix(p.Pkg.Name(), "_test") {
		return nil
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wantVal := want[name]
		obj := p.Pkg.Scope().Lookup(name)
		if obj == nil {
			p.Reportf(p.pkgPos(),
				"frozen constant %s.%s is gone (removed or renamed); it is pinned in frozen.golden because replay artifacts depend on it",
				path, name)
			continue
		}
		c, ok := obj.(*types.Const)
		if !ok {
			p.Reportf(obj.Pos(),
				"frozen name %s.%s is no longer a constant; frozen.golden pins it as %s",
				path, name, wantVal)
			continue
		}
		if exact := c.Val().ExactString(); exact != wantVal {
			p.Reportf(obj.Pos(),
				"frozen constant %s.%s = %s, want %s per frozen.golden; this value is part of the replay contract — a deliberate change must update frozen.golden in the same commit and state the migration story",
				path, name, exact, wantVal)
		}
	}
	return nil
}

// pkgPos is a stable anchor for package-scoped findings: the package clause
// of the first file.
func (p *Pass) pkgPos() token.Pos {
	if len(p.Files) > 0 {
		return p.Files[0].Package
	}
	return token.NoPos
}
