package bwapvet

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map whose loop body feeds ordered or
// deterministic state. Go randomizes map iteration order per run, so a
// body that appends to an outer slice, sends on a channel, or calls a
// record/metric sink produces output whose order varies run to run — the
// exact bug class that breaks bit-identical logs. A loop whose collected
// slice is sorted immediately afterwards (any sort./slices. call over it
// in the same block) is recognized and allowed; anything else needs the
// loop rewritten over sorted keys or a //bwap:maporder annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body appends to outer slices, sends on channels, " +
		"or writes records/metrics without an intervening sort",
	Run: runMapOrder,
}

// mapOrderSinkMethods are method names whose call inside a map-range body
// counts as feeding ordered/deterministic state: log record appends,
// metric observations, and writer/encoder calls. Float accumulation makes
// even "commutative" sinks (histogram sums) order-sensitive.
var mapOrderSinkMethods = map[string]bool{
	"append":      true, // the fleet eventLog's record sink
	"Observe":     true,
	"Write":       true,
	"WriteString": true,
	"Encode":      true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

func runMapOrder(p *Pass) error {
	if !isDeterministic(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Package) {
			continue
		}
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.Escaped(rs.Pos(), "maporder") {
				return true
			}
			p.checkMapRangeBody(rs, parents)
			return true
		})
	}
	return nil
}

// checkMapRangeBody scans one map-range body for order-sensitive sinks.
func (p *Pass) checkMapRangeBody(rs *ast.RangeStmt, parents map[ast.Node]ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure body does not run during iteration
		case *ast.SendStmt:
			p.Reportf(n.Pos(),
				"channel send inside map iteration publishes values in randomized order; iterate over sorted keys or annotate //bwap:maporder <reason>")
		case *ast.AssignStmt:
			p.checkMapRangeAppend(rs, n, parents)
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || isPkgQualified(p, sel) {
				// Package funcs (fmt.Fprintf...) are caught here too.
				if ok && mapOrderSinkMethods[sel.Sel.Name] {
					p.Reportf(n.Pos(),
						"%s called inside map iteration emits in randomized order; iterate over sorted keys or annotate //bwap:maporder <reason>",
						sel.Sel.Name)
				}
				return true
			}
			if mapOrderSinkMethods[sel.Sel.Name] {
				p.Reportf(n.Pos(),
					"%s.%s called inside map iteration feeds ordered state in randomized order; iterate over sorted keys or annotate //bwap:maporder <reason>",
					types.ExprString(sel.X), sel.Sel.Name)
			}
		}
		return true
	})
}

// checkMapRangeAppend flags `dst = append(dst, ...)` inside a map-range
// body when dst is declared outside the loop and is not sorted in the
// statements that follow the loop in its enclosing block.
func (p *Pass) checkMapRangeAppend(rs *ast.RangeStmt, as *ast.AssignStmt, parents map[ast.Node]ast.Node) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || i >= len(as.Lhs) {
			continue
		}
		obj := assignTarget(p, as.Lhs[i])
		if obj == nil {
			continue
		}
		// Appends to loop-local accumulators cannot leak iteration order
		// past the loop without a second, itself-flagged escape.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			continue
		}
		if sortedAfter(p, rs, obj, parents) {
			continue
		}
		p.Reportf(as.Pos(),
			"append to %s inside map iteration captures randomized order; sort %s afterwards, iterate over sorted keys, or annotate //bwap:maporder <reason>",
			obj.Name(), obj.Name())
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// assignTarget resolves the assigned object behind an identifier or a
// field selector LHS (x or s.f); anything else returns nil.
func assignTarget(p *Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[lhs]; obj != nil {
			return obj
		}
		return p.Info.Defs[lhs]
	case *ast.SelectorExpr:
		return p.Info.Uses[lhs.Sel]
	}
	return nil
}

// sortedAfter reports whether some statement after rs in its enclosing
// block passes obj to a sort./slices. sorting function — the "collect then
// sort" idiom that launders map order back into a total one.
func sortedAfter(p *Pass, rs *ast.RangeStmt, obj types.Object, parents map[ast.Node]ast.Node) bool {
	block, ok := parents[rs].(*ast.BlockStmt)
	if !ok {
		return false
	}
	idx := -1
	for i, st := range block.List {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range block.List[idx+1:] {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if pp := fn.Pkg().Path(); pp != "sort" && pp != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if argUses(p, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// argUses reports whether expr mentions obj.
func argUses(p *Pass, expr ast.Expr, obj types.Object) bool {
	uses := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			uses = true
			return false
		}
		return !uses
	})
	return uses
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
