package bwapvet

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runTestdata typechecks the fixture package at testdata/src/<dir> under
// the given package path (which is what the deterministic-set gating keys
// on), runs the analyzers, and matches the diagnostics against `// want
// "regexp"` comments in the fixtures — the x/tools analysistest idiom,
// reimplemented on the stdlib source importer.
func runTestdata(t *testing.T, dir, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	base := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(base, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	// Fixtures import only the stdlib, so the source importer resolves
	// everything without export data.
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := newTypesInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	pkg := &Package{Path: pkgPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, fset, files, diags)
}

// A want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants extracts expectations: each `// want` comment carries one or
// more quoted (or backquoted) regexps that diagnostics on the same line
// must match.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pattern := m[1]
					if pattern == "" {
						pattern = m[2]
					} else {
						pattern = strings.ReplaceAll(pattern, `\"`, `"`)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pattern, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

// matchWants pairs every diagnostic with an expectation on its line and
// fails on unexpected diagnostics or unmatched expectations.
func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic (%s): %s", posn, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestWalltime(t *testing.T) {
	runTestdata(t, "walltime", "bwap/internal/sim", Walltime)
}

// TestWalltimeNonDeterministic proves the gate: the same violations in a
// package outside the deterministic set produce nothing.
func TestWalltimeNonDeterministic(t *testing.T) {
	runTestdata(t, "walltime_nondet", "bwap/cmd/bwapd", Walltime)
}

// TestWalltimeExemptFile proves the one sanctioned wall-coupling point:
// a file named server.go in bwap/internal/fleet may read the clock.
func TestWalltimeExemptFile(t *testing.T) {
	runTestdata(t, "walltime_exempt", "bwap/internal/fleet", Walltime)
}

func TestSeededRand(t *testing.T) {
	runTestdata(t, "seededrand", "bwap/internal/stats", SeededRand)
}

func TestMapOrder(t *testing.T) {
	runTestdata(t, "maporder", "bwap/internal/fleet", MapOrder)
}

func TestLockedIO(t *testing.T) {
	runTestdata(t, "lockedio", "example/locked", LockedIO)
}

// frozenTestGolden deliberately disagrees with the fixture package: kindC
// and schemaVersion are pinned to other values, and "gone" pins a constant
// the fixture does not declare.
const frozenTestGolden = `
example/frozen.kindA = 0
example/frozen.kindB = 1
example/frozen.kindC = 1
example/frozen.schemaVersion = 2
example/frozen.envelopeKind = "frozen-envelope"
example/frozen.gone = 9
`

func TestFrozenOrderMismatch(t *testing.T) {
	runTestdata(t, "frozenorder", "example/frozen", NewFrozenOrder(frozenTestGolden))
}

func TestFrozenGoldenSyntax(t *testing.T) {
	if _, err := parseFrozenGolden("bad line without equals\n"); err == nil {
		t.Fatal("want parse error for malformed golden line")
	}
	table, err := parseFrozenGolden(frozenGolden)
	if err != nil {
		t.Fatal(err)
	}
	if len(table["bwap/internal/fleet"]) == 0 || len(table["bwap/internal/cache"]) == 0 {
		t.Fatalf("embedded golden missing expected packages: %v", table)
	}
}

func TestEscapedDirectiveParsing(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n\t//bwap:wallclock reason here\n\t_ = 1\n\t_ = 2\n}\n"
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pass{Analyzer: Walltime, Fset: fset, Files: []*ast.File{f}}
	stmts := f.Decls[0].(*ast.FuncDecl).Body.List
	if !p.Escaped(stmts[0].Pos(), "wallclock") {
		t.Error("directive on preceding line should escape the statement")
	}
	if p.Escaped(stmts[1].Pos(), "wallclock") {
		t.Error("directive must not leak past the next line")
	}
	if p.Escaped(stmts[0].Pos(), "rand") {
		t.Error("directive names must match exactly")
	}
}
