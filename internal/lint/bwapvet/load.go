package bwapvet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one typechecked package ready for analysis.
type Package struct {
	// Path is the package path as the build system names it; in-package
	// test variants look like "bwap/internal/fleet [bwap.test]".
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	ForTest    string
	Standard   bool
	DepOnly    bool
}

// LoadPackages loads, parses, and typechecks the module packages matching
// patterns (relative to dir), including their in-package and external test
// variants. It shells out to `go list -export -deps -test` so every
// dependency — stdlib included — resolves through compiler export data;
// no network, no module downloads, no golang.org/x/tools.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}

	// Export data for every package in the closure, keyed by the exact
	// (possibly bracketed) import path go list reported.
	exportFile := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
	}

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		// Skip the synthesized test-main package.
		if lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		pkg, err := typecheckListed(lp, exportFile)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheckListed parses one listed package's files and typechecks them
// against the export data of its dependencies.
func typecheckListed(lp *listPackage, exportFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// The gc importer hands us the import path as written; resolve it to
	// the build-system path (test variants via ImportMap, identity
	// otherwise) and feed back that package's export data. A fresh
	// importer per target keeps the bracketed and plain variants of the
	// same path from colliding in the importer's cache.
	lookup := func(path string) (io.ReadCloser, error) {
		resolved := path
		if m, ok := lp.ImportMap[path]; ok {
			resolved = m
		} else if lp.ForTest != "" {
			if _, ok := exportFile[path+" ["+lp.ForTest+".test]"]; ok {
				resolved = path + " [" + lp.ForTest + ".test]"
			}
		}
		file, ok := exportFile[resolved]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (resolved %q)", path, resolved)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := newTypesInfo()
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// newTypesInfo allocates the types.Info maps the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
