package bwapvet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig is the JSON configuration the go command writes to vet.cfg
// for each package when driving a vet tool. The field set mirrors the
// x/tools unitchecker protocol, which is the contract `go vet -vettool`
// speaks: the go command typechecks nothing itself, it hands the tool file
// lists plus export-data locations and expects diagnostics on stderr.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers against the single package described by the
// vet.cfg file and returns the process exit code: 0 clean, 1 diagnostics
// reported, 2 operational failure. Diagnostics and errors go to stderr in
// the format the go command expects ("file:line:col: message").
func RunUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkg, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// Another vet run already reported the compile error.
			writeVetx(cfg)
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The go command caches per-package "facts" via the vetx file and
	// requires it to exist even though this suite exchanges none.
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readUnitConfig(cfgFile string) (*UnitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	return cfg, nil
}

func writeVetx(cfg *UnitConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// typecheckUnit parses and typechecks the one package a vet.cfg describes,
// resolving imports through the export files the go command supplies.
func typecheckUnit(cfg *UnitConfig) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if resolved, ok := cfg.ImportMap[path]; ok {
			path = resolved
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
