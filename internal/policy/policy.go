// Package policy implements the page-placement baselines the paper
// evaluates BWAP against (Section IV): Linux's default first-touch, uniform
// interleaving across worker nodes (the strategy of Carrefour [21] and
// AsymSched [37]), uniform interleaving across all nodes, the locality-driven
// AutoNUMA extension, and a static weighted interleave used by the offline
// n-dimensional search of Section II.
package policy

import (
	"fmt"

	"bwap/internal/mm"
	"bwap/internal/numaapi"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// FirstTouch is the Linux default policy: each page is allocated on the
// node of the thread that first touches it. Thread-private pages land on
// their owner's node; shared pages land on the node of the initializing
// thread — the first worker — which is the centralization pathology the
// paper describes ("it tends to centralize many shared pages on a single
// node").
type FirstTouch struct{}

// Name implements sim.Placer.
func (FirstTouch) Name() string { return "first-touch" }

// Place implements sim.Placer.
func (FirstTouch) Place(e *sim.Engine, a *sim.App) error {
	for _, seg := range a.Segments() {
		if seg.Owner() != mm.SharedOwner {
			seg.FaultAll(seg.Owner())
		} else {
			seg.FaultAll(a.Workers[0])
		}
	}
	return nil
}

// UniformWorkers interleaves every page uniformly across the worker nodes —
// the paper's "uniform-workers", the core strategy of state-of-the-art
// systems.
type UniformWorkers struct{}

// Name implements sim.Placer.
func (UniformWorkers) Name() string { return "uniform-workers" }

// Place implements sim.Placer.
func (UniformWorkers) Place(e *sim.Engine, a *sim.App) error {
	mask := numaapi.NewBitmask(a.Workers...)
	for _, seg := range a.Segments() {
		if err := numaapi.InterleaveMemory(seg, mask); err != nil {
			return err
		}
	}
	return nil
}

// UniformAll interleaves every page uniformly across all nodes of the
// machine (workers and non-workers) — the paper's "uniform-all".
type UniformAll struct{}

// Name implements sim.Placer.
func (UniformAll) Name() string { return "uniform-all" }

// Place implements sim.Placer.
func (UniformAll) Place(e *sim.Engine, a *sim.App) error {
	mask := numaapi.AllNodes(e.M.NumNodes())
	for _, seg := range a.Segments() {
		if err := numaapi.InterleaveMemory(seg, mask); err != nil {
			return err
		}
	}
	return nil
}

// StaticWeighted places every segment by a fixed weight vector using the
// kernel-level weighted interleave. The offline n-dimensional search of
// Section II evaluates candidate weight distributions through this policy.
type StaticWeighted struct {
	// Weights has one non-negative entry per node; it is normalized by mm.
	Weights []float64
	// Label customizes Name() for experiment output.
	Label string
}

// Name implements sim.Placer.
func (p StaticWeighted) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "static-weighted"
}

// Place implements sim.Placer.
func (p StaticWeighted) Place(e *sim.Engine, a *sim.App) error {
	if len(p.Weights) != e.M.NumNodes() {
		return fmt.Errorf("policy: %d weights for %d nodes", len(p.Weights), e.M.NumNodes())
	}
	for _, seg := range a.Segments() {
		if err := seg.MbindWeighted(p.Weights, mm.MoveFlag); err != nil {
			return err
		}
	}
	return nil
}

// AutoNUMA simulates Linux's locality-driven NUMA balancing [1][10]: pages
// start first-touch, then periodic access sampling migrates each page
// toward the node that accesses it most, at a capped migration rate.
// Thread-private pages converge to their owner; uniformly shared pages have
// no stable majority, so their samples keep nominating different workers
// and the pages ping-pong among the worker set — locality-driven balancing
// is bandwidth-oblivious, which is exactly the behaviour BWAP improves on.
//
// One AutoNUMA instance handles every app it places; register it as a hook
// once per engine via Attach.
type AutoNUMA struct {
	// ScanInterval is the balancing period in simulated seconds (default 1).
	ScanInterval float64
	// RateGBs caps migration bandwidth per app (default 0.5 GB/s, matching
	// the kernel's conservative default ratelimit).
	RateGBs float64

	apps     []*sim.App
	lastScan float64
	rotor    int
	attached bool
	target   []float64 // reusable fraction-vector scratch
}

// Name implements sim.Placer.
func (p *AutoNUMA) Name() string { return "autonuma" }

// Place implements sim.Placer: initial placement is first-touch, and the
// balancer hook is registered on first use.
func (p *AutoNUMA) Place(e *sim.Engine, a *sim.App) error {
	if err := (FirstTouch{}).Place(e, a); err != nil {
		return err
	}
	p.apps = append(p.apps, a)
	if !p.attached {
		p.attached = true
		e.AddHook(p)
	}
	return nil
}

// Tick implements sim.Hook: every ScanInterval, migrate pages toward their
// sampled majority accessor.
func (p *AutoNUMA) Tick(e *sim.Engine) {
	interval := p.ScanInterval
	if interval <= 0 {
		interval = 1.0
	}
	rate := p.RateGBs
	if rate <= 0 {
		rate = 0.5
	}
	if e.Now()-p.lastScan < interval {
		return
	}
	p.lastScan = e.Now()
	p.rotor++
	for _, a := range p.apps {
		if a.Done() {
			continue
		}
		budget := int64(rate * interval * 1e9)
		segs := a.Segments()
		if len(segs) == 0 {
			continue
		}
		perSeg := budget / int64(len(segs))
		for _, seg := range segs {
			if len(p.target) != e.M.NumNodes() {
				p.target = make([]float64, e.M.NumNodes())
			}
			target := p.target
			for i := range target {
				target[i] = 0
			}
			if owner := seg.Owner(); owner != mm.SharedOwner {
				// Private pages: the owner is the unambiguous majority.
				target[owner] = 1
			} else {
				// Shared pages: samples arrive from every worker; the
				// instantaneous majority is noise, so the balancer chases a
				// rotating favourite — uniform across workers in the long
				// run, with sustained ping-pong migration cost.
				bias := a.Workers[p.rotor%len(a.Workers)]
				for _, w := range a.Workers {
					target[w] = 0.9 / float64(len(a.Workers))
				}
				target[bias] += 0.1
			}
			seg.MigrateToward(target, perSeg) //nolint:errcheck // target sized by construction
		}
	}
}

// WorkerOneHot returns a weight vector that places everything on a single
// node — a convenience for tests and the DWP=1 extreme.
func WorkerOneHot(n int, w topology.NodeID) []float64 {
	out := make([]float64, n)
	out[w] = 1
	return out
}
