package policy_test

import (
	"math"
	"testing"

	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

func testSpec() workload.Spec {
	return workload.Spec{
		Name: "t", ReadGBs: 8, WriteGBs: 2, PrivateFrac: 0.5,
		WorkGB: 20, SharedGB: 0.016, PrivateGBPerNode: 0.008,
	}
}

func newApp(t *testing.T, m *topology.Machine, p sim.Placer, workers ...topology.NodeID) (*sim.Engine, *sim.App) {
	t.Helper()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("t", testSpec(), workers, p)
	if err != nil {
		t.Fatal(err)
	}
	return e, app
}

func place(t *testing.T, e *sim.Engine, app *sim.App) {
	t.Helper()
	if err := app.Placer().Place(e, app); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouchCentralizesShared(t *testing.T) {
	m := topology.MachineB()
	e, app := newApp(t, m, policy.FirstTouch{}, 1, 2)
	place(t, e, app)
	// Shared pages all on the initializing worker (first worker = node 1).
	fr := app.SharedSegment().Fractions()
	if fr[1] != 1 {
		t.Fatalf("shared fractions = %v, want all on node 1", fr)
	}
	// Private pages on their owners.
	if got := app.PrivateSegment(2).Fractions()[2]; got != 1 {
		t.Fatalf("private(2) fraction = %v, want 1", got)
	}
}

func TestUniformWorkersInterleavesOverWorkers(t *testing.T) {
	m := topology.MachineB()
	e, app := newApp(t, m, policy.UniformWorkers{}, 0, 2)
	place(t, e, app)
	fr := app.SharedSegment().Fractions()
	if math.Abs(fr[0]-0.5) > 0.01 || math.Abs(fr[2]-0.5) > 0.01 {
		t.Fatalf("fractions = %v, want 0.5/0.5 on workers", fr)
	}
	if fr[1] != 0 || fr[3] != 0 {
		t.Fatalf("non-workers received pages: %v", fr)
	}
	// Private segments are interleaved too (the uniform-workers strategy
	// applies to the whole address space).
	pf := app.PrivateSegment(0).Fractions()
	if math.Abs(pf[0]-0.5) > 0.01 || math.Abs(pf[2]-0.5) > 0.01 {
		t.Fatalf("private fractions = %v", pf)
	}
}

func TestUniformAllUsesEveryNode(t *testing.T) {
	m := topology.MachineA()
	e, app := newApp(t, m, policy.UniformAll{}, 0)
	place(t, e, app)
	fr := app.SharedSegment().Fractions()
	for n, f := range fr {
		if math.Abs(f-0.125) > 0.01 {
			t.Fatalf("fraction[%d] = %v, want 0.125", n, f)
		}
	}
}

func TestStaticWeighted(t *testing.T) {
	m := topology.MachineB()
	w := []float64{0.4, 0.3, 0.2, 0.1}
	e, app := newApp(t, m, policy.StaticWeighted{Weights: w}, 0)
	place(t, e, app)
	fr := app.SharedSegment().Fractions()
	for n := range w {
		if math.Abs(fr[n]-w[n]) > 0.02 {
			t.Fatalf("fraction[%d] = %v, want %v", n, fr[n], w[n])
		}
	}
}

func TestStaticWeightedWrongLength(t *testing.T) {
	m := topology.MachineB()
	e, app := newApp(t, m, policy.StaticWeighted{Weights: []float64{1}}, 0)
	if err := app.Placer().Place(e, app); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]sim.Placer{
		"first-touch":     policy.FirstTouch{},
		"uniform-workers": policy.UniformWorkers{},
		"uniform-all":     policy.UniformAll{},
		"autonuma":        &policy.AutoNUMA{},
		"static-weighted": policy.StaticWeighted{},
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if got := (policy.StaticWeighted{Label: "x"}).Name(); got != "x" {
		t.Errorf("label override broken: %q", got)
	}
}

func TestAutoNUMAMigratesPrivateToOwner(t *testing.T) {
	m := topology.MachineB()
	an := &policy.AutoNUMA{RateGBs: 100} // generous budget: converge fast
	e := sim.New(m, sim.Config{})
	spec := testSpec()
	spec.WorkGB = 200
	app, err := e.AddApp("t", spec, []topology.NodeID{1, 2}, an)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Private pages of node 2's threads must end up on node 2 (they start
	// there under first-touch and must stay).
	if got := app.PrivateSegment(2).Fractions()[2]; got < 0.95 {
		t.Fatalf("private(2) local fraction = %v, want ~1", got)
	}
}

func TestAutoNUMASpreadsSharedAcrossWorkersOnly(t *testing.T) {
	m := topology.MachineB()
	an := &policy.AutoNUMA{RateGBs: 100}
	e := sim.New(m, sim.Config{})
	spec := testSpec()
	spec.WorkGB = 400
	app, err := e.AddApp("t", spec, []topology.NodeID{1, 2}, an)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fr := app.SharedSegment().Fractions()
	// Shared pages spread over the worker set (locality balancing), not
	// beyond it.
	if fr[0] > 0.01 || fr[3] > 0.01 {
		t.Fatalf("autonuma placed shared pages outside workers: %v", fr)
	}
	if fr[1] < 0.25 || fr[2] < 0.25 {
		t.Fatalf("autonuma did not balance across workers: %v", fr)
	}
}

func TestAutoNUMAKeepsMigrating(t *testing.T) {
	// The ping-pong on uniformly shared pages must cost migration traffic
	// continuously (bandwidth-oblivious balancing is not free).
	m := topology.MachineB()
	an := &policy.AutoNUMA{}
	e := sim.New(m, sim.Config{})
	spec := testSpec()
	spec.WorkGB = 300
	app, err := e.AddApp("t", spec, []topology.NodeID{1, 2}, an)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if app.AS.TotalMigratedBytes() == 0 {
		t.Fatal("autonuma performed no migrations at all")
	}
}

func TestAutoNUMAHandlesMultipleApps(t *testing.T) {
	m := topology.MachineB()
	an := &policy.AutoNUMA{}
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("a", testSpec(), []topology.NodeID{0}, an); err != nil {
		t.Fatal(err)
	}
	spec2 := testSpec()
	if _, err := e.AddApp("b", spec2, []topology.NodeID{2}, an); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerOneHot(t *testing.T) {
	w := policy.WorkerOneHot(4, 2)
	if w[2] != 1 || w[0] != 0 || len(w) != 4 {
		t.Fatalf("WorkerOneHot = %v", w)
	}
}
