// Package core implements BWAP — bandwidth-aware weighted page placement —
// exactly as Section III of the paper describes it:
//
//   - the canonical tuner (offline): profiles the machine with a
//     bandwidth-intensive reference application under uniform-all
//     interleaving, reads the per-node-pair throughput counters as the
//     bw(src→dst) estimate, and derives canonical weights via the min-BW
//     reduction (Equations 2, 4 and 5);
//   - the DWP tuner (on-line): from the canonical distribution (DWP=0),
//     hill-climbs the data-to-worker-proximity factor on sampled stall
//     rates, migrating pages incrementally at each step;
//   - Algorithm 1: the portable user-level approximation of weighted
//     interleaving built from sub-range mbind calls;
//   - the co-scheduled variant (Section III-B3): a two-stage search that
//     first protects a high-priority co-runner, then optimizes the
//     best-effort application.
package core

import (
	"fmt"

	"bwap/internal/cache"
	"bwap/internal/numaapi"
	"bwap/internal/sim"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// ProbeSpec is the canonical application used for profiling
// (Section III-A3): one thread per hardware thread of the worker nodes,
// each performing a random traversal of a shared array — extremely
// bandwidth-intensive, read-only, fully shared, latency-oblivious.
func ProbeSpec() workload.Spec {
	return workload.Synthetic("canonical-probe", 60, 0, 0, 0)
}

// CanonicalTuner computes and caches canonical weight distributions per
// worker set for one machine. It is safe for concurrent use.
type CanonicalTuner struct {
	m *topology.Machine
	// SimCfg configures the profiling runs; Zero uses engine defaults.
	SimCfg sim.Config
	// ProfileSeconds is the simulated duration of one profiling run
	// (default 3 s).
	ProfileSeconds float64

	// entries caches one profiling result per worker-set key with
	// single-flight semantics: concurrent first users of the same key share
	// a run, while distinct keys profile in parallel.
	entries *cache.Cache[canonicalResult]
}

// canonicalResult is one worker set's profiling outcome.
type canonicalResult struct {
	matrix  [][]float64
	weights []float64
}

// NewCanonicalTuner returns a tuner for the machine. The simulation
// configuration should match the one experiments use, so that the profiled
// bandwidths reflect the same contention model.
func NewCanonicalTuner(m *topology.Machine, cfg sim.Config) *CanonicalTuner {
	return &CanonicalTuner{
		m:              m,
		SimCfg:         cfg,
		ProfileSeconds: 3,
		entries:        cache.New[canonicalResult](),
	}
}

func workerKey(workers []topology.NodeID) string {
	// Same bytes as NewBitmask(...).String(), rendered straight into a
	// stack buffer: this key is derived on every DWP-weight lookup, so the
	// node-slice/parts/join allocations of the naive rendering showed up in
	// fleet profiles.
	var buf [256]byte
	return string(numaapi.NewBitmask(workers...).AppendRanges(buf[:0]))
}

// uniformAllPlacer places the probe's pages uniformly across all nodes,
// the profiling configuration of Section III-A3.
type uniformAllPlacer struct{}

func (uniformAllPlacer) Name() string { return "profile-uniform-all" }

func (uniformAllPlacer) Place(e *sim.Engine, a *sim.App) error {
	mask := numaapi.AllNodes(e.M.NumNodes())
	for _, seg := range a.Segments() {
		if err := numaapi.InterleaveMemory(seg, mask); err != nil {
			return err
		}
	}
	return nil
}

// entry returns the worker set's profiling result, computing it at most
// once via the single-flight cache.
func (ct *CanonicalTuner) entry(workers []topology.NodeID) (canonicalResult, error) {
	key := workerKey(workers)
	res, _, err := ct.entries.Get(key, func() (canonicalResult, error) {
		return ct.compute(key, workers)
	})
	return res, err
}

func (ct *CanonicalTuner) compute(key string, workers []topology.NodeID) (canonicalResult, error) {
	cfg := ct.SimCfg
	secs := ct.ProfileSeconds
	if secs <= 0 {
		secs = 3
	}
	cfg.MaxTime = secs
	e := sim.New(ct.m, cfg)
	app, err := e.AddApp("canonical-probe", ProbeSpec(), workers, uniformAllPlacer{})
	if err != nil {
		return canonicalResult{}, fmt.Errorf("core: profiling %s: %w", key, err)
	}
	if _, err := e.Run(); err != nil {
		return canonicalResult{}, fmt.Errorf("core: profiling %s: %w", key, err)
	}
	matrix := app.Counters.BWMatrixGBs()
	return canonicalResult{
		matrix:  matrix,
		weights: WeightsFromMinBW(MinBW(matrix, workers)),
	}, nil
}

// Profile runs the profiling benchmark for the worker set and returns the
// measured bw(src→dst) matrix in GB/s (only worker destinations carry
// meaning). Results are cached per worker set.
func (ct *CanonicalTuner) Profile(workers []topology.NodeID) ([][]float64, error) {
	res, err := ct.entry(workers)
	return res.matrix, err
}

// CacheStats reports the profiling cache's cumulative hit and miss counts.
func (ct *CanonicalTuner) CacheStats() (hits, misses int64) {
	return ct.entries.Stats()
}

// MinBW reduces a profiled matrix to per-source minimum bandwidths over the
// worker set: minbw(n) = min over workers w of bw(n→w) (Equation 4).
func MinBW(matrix [][]float64, workers []topology.NodeID) []float64 {
	out := make([]float64, len(matrix))
	for src := range matrix {
		minV := -1.0
		for _, w := range workers {
			v := matrix[src][w]
			if minV < 0 || v < minV {
				minV = v
			}
		}
		if minV < 0 {
			minV = 0
		}
		out[src] = minV
	}
	return out
}

// WeightsFromMinBW normalizes min-bandwidths into the canonical weight
// distribution: wᵢ = minbw(nᵢ) / Σⱼ minbw(nⱼ) (Equations 2 and 5).
func WeightsFromMinBW(minbw []float64) []float64 {
	return stats.Normalize(minbw)
}

// Weights returns the canonical weight distribution for the worker set,
// profiling the machine on first use (Section III-A: the canonical tuner
// runs offline, at installation time, for the relevant worker sets).
func (ct *CanonicalTuner) Weights(workers []topology.NodeID) ([]float64, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("core: empty worker set")
	}
	res, err := ct.entry(workers)
	return res.weights, err
}

// Precompute profiles every worker set in the list — the installation-time
// step; worker sets that are symmetric images of each other could share an
// entry, but profiling is cheap in simulation so we keep it direct.
func (ct *CanonicalTuner) Precompute(sets [][]topology.NodeID) error {
	for _, ws := range sets {
		if _, err := ct.Weights(ws); err != nil {
			return err
		}
	}
	return nil
}
