package core

import (
	"math"
	"testing"

	"bwap/internal/sim"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// latencyBoundSpec has demand far below any controller: locality always
// wins, so the DWP tuner must climb all the way to 1.
func latencyBoundSpec() workload.Spec {
	return workload.Spec{
		Name: "latbound", ReadGBs: 6, WriteGBs: 0, PrivateFrac: 0,
		LatencySensitivity: 1.0, WorkGB: 4000,
		SharedGB: 0.032, PrivateGBPerNode: 0.004,
	}
}

// bwBoundSpec saturates everything: spreading always wins, so the tuner
// must stop immediately (within one step of 0).
func bwBoundSpec() workload.Spec {
	return workload.Spec{
		Name: "bwbound", ReadGBs: 120, WriteGBs: 0, PrivateFrac: 0,
		LatencySensitivity: 0.0, WorkGB: 8000,
		SharedGB: 0.032, PrivateGBPerNode: 0.004,
	}
}

func TestCanonicalTunerSymmetricMachineIsUniform(t *testing.T) {
	m := topology.Symmetric(4, 4, 20, 10)
	ct := NewCanonicalTuner(m, sim.Config{})
	w, err := ct.Weights([]topology.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Sum(w)-1) > 1e-9 {
		t.Fatalf("weights sum %v", stats.Sum(w))
	}
	// On a symmetric machine every non-worker node must weigh the same,
	// and both workers the same.
	if math.Abs(w[2]-w[3]) > 0.01 || math.Abs(w[0]-w[1]) > 0.01 {
		t.Fatalf("asymmetric weights on symmetric machine: %v", w)
	}
}

func TestCanonicalTunerMachineAIsAsymmetric(t *testing.T) {
	m := topology.MachineA()
	ct := NewCanonicalTuner(m, sim.Config{})
	w, err := ct.Weights([]topology.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Sum(w)-1) > 1e-9 {
		t.Fatalf("weights sum %v", stats.Sum(w))
	}
	// Observation 2: weights must be visibly uneven.
	if stats.CV(w) < 0.15 {
		t.Fatalf("canonical weights suspiciously uniform on Machine A: %v (CV=%.3f)", w, stats.CV(w))
	}
	// Nodes 5 and 7 have the weakest min paths to workers {0,1}
	// (1.8 GB/s); they must get less weight than the workers themselves.
	if w[5] >= w[0] || w[7] >= w[1] {
		t.Fatalf("weak nodes out-weigh workers: %v", w)
	}
	for i, wi := range w {
		if wi <= 0 {
			t.Fatalf("node %d got zero weight: %v (all nodes should contribute, Observation 1)", i, w)
		}
	}
}

func TestCanonicalTunerCaches(t *testing.T) {
	m := topology.MachineB()
	ct := NewCanonicalTuner(m, sim.Config{})
	w1, err := ct.Weights([]topology.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ct.Weights([]topology.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("cache returned different weights")
		}
	}
	if err := ct.Precompute([][]topology.NodeID{{0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalTunerEmptyWorkers(t *testing.T) {
	ct := NewCanonicalTuner(topology.MachineB(), sim.Config{})
	if _, err := ct.Weights(nil); err == nil {
		t.Fatal("empty worker set accepted")
	}
}

func TestDWPTunerClimbsToOneForLatencyBoundApp(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{Seed: 3})
	b := NewBWAPUniform()
	app, err := e.AddApp("lat", latencyBoundSpec(), []topology.NodeID{0}, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("lat")
	if tuner == nil {
		t.Fatal("no tuner registered")
	}
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	if got := tuner.AppliedDWP(); got < 0.95 {
		t.Fatalf("applied DWP = %v, want 1 (locality always wins here); trajectory %v",
			got, tuner.Trajectory())
	}
	// Everything must have migrated onto the worker.
	if fr := app.SharedSegment().Fractions()[0]; fr < 0.95 {
		t.Fatalf("worker share = %v after DWP=1", fr)
	}
}

func TestDWPTunerStaysLowForBWBoundApp(t *testing.T) {
	m := topology.MachineA()
	e := sim.New(m, sim.Config{Seed: 4})
	b := NewBWAPUniform()
	if _, err := e.AddApp("bw", bwBoundSpec(), []topology.NodeID{0, 1}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("bw")
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	if got := tuner.AppliedDWP(); got > 0.21 {
		t.Fatalf("applied DWP = %v, want <= 0.2 (spreading always wins)", got)
	}
	if got := tuner.BestDWP(); got > 0.11 {
		t.Fatalf("best DWP = %v, want ~0", got)
	}
}

func TestDWPTunerWithinOneStepOfStaticOptimum(t *testing.T) {
	// The accuracy claim of Section IV-B: the on-line search lands within
	// one step of the best static DWP. Use the SC model on Machine A.
	m := topology.MachineA()
	cfg := sim.Config{Seed: 9}
	ct := NewCanonicalTuner(m, cfg)
	workers := []topology.NodeID{4}
	spec := workload.Streamcluster.Scaled(0.25)

	// Static sweep as ground truth.
	bestStatic, bestTime := 0.0, math.Inf(1)
	for dwp := 0.0; dwp <= 1.001; dwp += 0.1 {
		e := sim.New(m, cfg)
		if _, err := e.AddApp("sc", spec, workers, StaticDWP{Canonical: ct, DWP: dwp, UserLevel: true}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tt := res.Times["sc"]; tt < bestTime {
			bestStatic, bestTime = dwp, tt
		}
	}

	// On-line tuner.
	e := sim.New(m, cfg)
	b := NewBWAP(ct)
	if _, err := e.AddApp("sc", spec, workers, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("sc")
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	if !tuner.Finished() {
		t.Logf("tuner still running at app completion (trajectory %v)", tuner.Trajectory())
	}
	if diff := math.Abs(tuner.BestDWP() - bestStatic); diff > 0.11 {
		t.Fatalf("tuner best DWP %v vs static optimum %v: off by more than one step (trajectory %v)",
			tuner.BestDWP(), bestStatic, tuner.Trajectory())
	}
}

func TestDWPTunerTrajectoryRecorded(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{Seed: 5})
	b := NewBWAPUniform()
	if _, err := e.AddApp("lat", latencyBoundSpec(), []topology.NodeID{0}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	traj := b.TunerFor("lat").Trajectory()
	if len(traj) < 2 {
		t.Fatalf("trajectory too short: %v", traj)
	}
	prev := -1.0
	for _, mnt := range traj {
		if mnt.DWP < prev {
			t.Fatalf("DWP decreased along trajectory: %v", traj)
		}
		prev = mnt.DWP
		if mnt.StallRate < 0 {
			t.Fatalf("negative stall rate: %v", mnt)
		}
	}
}

func TestCoScheduledTunerProtectsHighPriorityApp(t *testing.T) {
	// B floods the whole of Machine A including A's nodes; stage 1 must
	// raise B's DWP above 0 (pulling pages off A's nodes) before stage 2.
	m := topology.MachineA()
	cfg := sim.Config{Seed: 11}
	e := sim.New(m, cfg)
	hi := workload.Swaptions
	hi.SharedGB, hi.PrivateGBPerNode = 0.016, 0.008
	if _, err := e.AddApp("swaptions", hi, []topology.NodeID{4, 5, 6, 7}, noopFirstTouch{}); err != nil {
		t.Fatal(err)
	}
	b := NewBWAPUniform()
	b.CoRunner = "swaptions"
	spec := bwBoundSpec()
	spec.WorkGB = 3000
	if _, err := e.AddApp("be", spec, []topology.NodeID{0, 1}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("be")
	if tuner == nil {
		t.Fatal("no co-scheduled tuner registered")
	}
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	co, ok := tuner.(*CoScheduledTuner)
	if !ok {
		t.Fatalf("expected CoScheduledTuner, got %T", tuner)
	}
	stages := map[int]bool{}
	for _, m := range co.Trajectory() {
		stages[m.Stage] = true
	}
	if !stages[1] {
		t.Fatalf("stage 1 never measured: %v", co.Trajectory())
	}
}

type noopFirstTouch struct{}

func (noopFirstTouch) Name() string { return "local" }
func (noopFirstTouch) Place(e *sim.Engine, a *sim.App) error {
	for _, seg := range a.Segments() {
		if seg.Owner() >= 0 {
			seg.FaultAll(seg.Owner())
		} else {
			seg.FaultAll(a.Workers[0])
		}
	}
	return nil
}

func TestBWAPPlaceErrors(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	// Full variant without canonical tuner must fail at placement.
	b := &BWAP{UserLevel: true}
	if _, err := e.AddApp("x", latencyBoundSpec(), []topology.NodeID{0}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("BWAP without canonical tuner accepted")
	}
	// Missing co-runner.
	e2 := sim.New(m, sim.Config{})
	b2 := NewBWAPUniform()
	b2.CoRunner = "ghost"
	if _, err := e2.AddApp("x", latencyBoundSpec(), []topology.NodeID{0}, b2); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err == nil {
		t.Fatal("missing co-runner accepted")
	}
}

func TestBWAPNames(t *testing.T) {
	if got := NewBWAPUniform().Name(); got != "bwap-uniform" {
		t.Fatalf("Name = %q", got)
	}
	ct := NewCanonicalTuner(topology.MachineB(), sim.Config{})
	if got := NewBWAP(ct).Name(); got != "bwap" {
		t.Fatalf("Name = %q", got)
	}
	if got := (StaticDWP{DWP: 0.3}).Name(); got != "bwap-static-dwp30%" {
		t.Fatalf("StaticDWP name = %q", got)
	}
}

func TestStaticDWPPlacesAtFixedDelta(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("x", latencyBoundSpec(), []topology.NodeID{0},
		StaticDWP{Uniform: true, DWP: 1, UserLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Placer().Place(e, app); err != nil {
		t.Fatal(err)
	}
	if fr := app.SharedSegment().Fractions()[0]; fr < 0.99 {
		t.Fatalf("DWP=1 static placement put only %v on worker", fr)
	}
}

func TestProbeSpecIsCanonical(t *testing.T) {
	s := ProbeSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.WriteGBs != 0 {
		t.Fatal("canonical app must be read-only")
	}
	if s.PrivateFrac != 0 {
		t.Fatal("canonical app must be fully shared")
	}
	if s.LatencySensitivity != 0 {
		t.Fatal("canonical app must be BW-dominated")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	if p.N != d.N || p.C != 0 || p.T != d.T || p.Step != d.Step {
		t.Fatalf("withDefaults = %+v", p)
	}
	// Explicit paper values survive.
	p = Params{N: 20, C: 5, T: 0.2, Step: 0.1}.withDefaults()
	if p.C != 5 {
		t.Fatalf("C lost: %+v", p)
	}
}

// TestHybridMemoryFutureWork exercises the paper's Section VI direction:
// on a DRAM+NVRAM machine, BWAP's canonical weights shift pages away from
// the slow memory, beating uniform-all without any algorithm changes.
func TestHybridMemoryFutureWork(t *testing.T) {
	m := topology.HybridDRAMNVRAM(2, 2, 8, 24, 6)
	cfg := sim.Config{Seed: 31}
	ct := NewCanonicalTuner(m, cfg)
	workers := []topology.NodeID{0, 1} // the DRAM compute nodes
	w, err := ct.Weights(workers)
	if err != nil {
		t.Fatal(err)
	}
	if w[2] >= w[0] || w[3] >= w[1] {
		t.Fatalf("NVRAM nodes not down-weighted: %v", w)
	}
	spec := workload.Synthetic("stream", 60, 0, 0, 0.1)
	spec.WorkGB = 300

	run := func(placer sim.Placer) float64 {
		e := sim.New(m, cfg)
		if _, err := e.AddApp("stream", spec, workers, placer); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["stream"]
	}
	uniform := run(StaticDWP{Uniform: true, DWP: 0, UserLevel: true}) // uniform-all
	weighted := run(StaticDWP{Canonical: ct, DWP: 0, UserLevel: true})
	if weighted > uniform*1.001 {
		t.Fatalf("BW-aware weights lost on hybrid memory: %v vs %v", weighted, uniform)
	}
}
