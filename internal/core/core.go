package core
