package core

import (
	"math"
	"testing"
	"testing/quick"

	"bwap/internal/mm"
	"bwap/internal/stats"
	"bwap/internal/topology"
)

func TestDWPWeightsEndpoints(t *testing.T) {
	canonical := []float64{0.1, 0.2, 0.3, 0.4}
	workers := []topology.NodeID{2, 3}
	// δ=0 must reproduce the canonical distribution.
	w0, err := DWPWeights(canonical, workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range canonical {
		if math.Abs(w0[i]-canonical[i]) > 1e-12 {
			t.Fatalf("δ=0 weights %v != canonical %v", w0, canonical)
		}
	}
	// δ=1 must map everything onto the workers.
	w1, err := DWPWeights(canonical, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1[0] != 0 || w1[1] != 0 {
		t.Fatalf("δ=1 leaked weight to non-workers: %v", w1)
	}
	if math.Abs(w1[2]+w1[3]-1) > 1e-12 {
		t.Fatalf("δ=1 worker mass %v != 1", w1[2]+w1[3])
	}
	// Intra-set ratios preserved: 0.3:0.4.
	if math.Abs(w1[2]/w1[3]-0.75) > 1e-9 {
		t.Fatalf("worker ratio lost: %v", w1)
	}
}

func TestDWPWeightsPreservesRelativeWeights(t *testing.T) {
	canonical := []float64{0.25, 0.15, 0.35, 0.25}
	workers := []topology.NodeID{0}
	w, err := DWPWeights(canonical, workers, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Non-worker ratios must match canonical ratios (Observation 3).
	want12 := canonical[1] / canonical[2]
	if math.Abs(w[1]/w[2]-want12) > 1e-9 {
		t.Fatalf("non-worker ratio drifted: %v", w)
	}
	// Worker aggregate = Cw + δ·Cn = 0.25 + 0.5·0.75 = 0.625.
	if math.Abs(w[0]-0.625) > 1e-9 {
		t.Fatalf("worker share = %v, want 0.625", w[0])
	}
	if math.Abs(stats.Sum(w)-1) > 1e-9 {
		t.Fatalf("weights do not sum to 1: %v", w)
	}
}

func TestDWPWeightsPropertyMonotoneWorkerShare(t *testing.T) {
	f := func(a, b, c, d uint8, step uint8) bool {
		canonical := stats.Normalize([]float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1})
		workers := []topology.NodeID{1, 2}
		prev := -1.0
		for dwp := 0.0; dwp <= 1.0; dwp += 0.1 {
			w, err := DWPWeights(canonical, workers, dwp)
			if err != nil {
				return false
			}
			if math.Abs(stats.Sum(w)-1) > 1e-9 {
				return false
			}
			share := w[1] + w[2]
			if share < prev-1e-9 {
				return false
			}
			prev = share
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDWPWeightsErrors(t *testing.T) {
	canonical := []float64{0.5, 0.5}
	if _, err := DWPWeights(canonical, []topology.NodeID{0}, -0.5); err == nil {
		t.Fatal("negative DWP accepted")
	}
	if _, err := DWPWeights(canonical, []topology.NodeID{0}, 1.5); err == nil {
		t.Fatal("DWP > 1 accepted")
	}
	if _, err := DWPWeights(canonical, []topology.NodeID{7}, 0.5); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if _, err := DWPWeights([]float64{0, 1}, []topology.NodeID{0}, 0.5); err == nil {
		t.Fatal("zero worker mass accepted")
	}
}

func TestAlgorithm1MatchesWeights(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*4000, mm.SharedOwner)
	w := []float64{0.4, 0.3, 0.2, 0.1}
	if err := UserLevelWeightedInterleave(seg, w, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	fr := seg.Fractions()
	for n := range w {
		if math.Abs(fr[n]-w[n]) > 0.02 {
			t.Fatalf("fraction[%d] = %v, want %v (Algorithm 1 sub-range sizing)", n, fr[n], w[n])
		}
	}
	if seg.MappedPages() != seg.PageCount() {
		t.Fatalf("Algorithm 1 left pages unmapped: %d/%d", seg.MappedPages(), seg.PageCount())
	}
}

func TestAlgorithm1ZeroWeightNodesGetNothing(t *testing.T) {
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*1024, mm.SharedOwner)
	w := []float64{0.6, 0, 0.4, 0}
	if err := UserLevelWeightedInterleave(seg, w, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	c := seg.Counts()
	if c[1] != 0 || c[3] != 0 {
		t.Fatalf("zero-weight nodes received pages: %v", c)
	}
	fr := seg.Fractions()
	if math.Abs(fr[0]-0.6) > 0.02 || math.Abs(fr[2]-0.4) > 0.02 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestAlgorithm1PropertyRandomWeights(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint8) bool {
		raw := []float64{float64(a), float64(b), float64(c), float64(d),
			float64(e), float64(f2), float64(g), float64(h%16) + 1}
		w := stats.Normalize(raw)
		as := mm.NewAddressSpace(8)
		seg := as.AddSegment("d", mm.PageSize*8192, mm.SharedOwner)
		if err := UserLevelWeightedInterleave(seg, w, mm.MoveFlag); err != nil {
			return false
		}
		fr := seg.Fractions()
		for n := range w {
			// User-level interleaving is approximate (Section III-B2); the
			// error must stay small on a few thousand pages.
			if math.Abs(fr[n]-w[n]) > 0.03 {
				return false
			}
		}
		return seg.MappedPages() == seg.PageCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1CloseToKernelLevel(t *testing.T) {
	// The paper reports the user-level approximation within ~3% of the
	// kernel implementation; at page-distribution level they must agree.
	w := []float64{0.35, 0.3, 0.05, 0.3}
	asU := mm.NewAddressSpace(4)
	segU := asU.AddSegment("d", mm.PageSize*4096, mm.SharedOwner)
	if err := UserLevelWeightedInterleave(segU, w, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	asK := mm.NewAddressSpace(4)
	segK := asK.AddSegment("d", mm.PageSize*4096, mm.SharedOwner)
	if err := segK.MbindWeighted(w, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	fu, fk := segU.Fractions(), segK.Fractions()
	for n := range w {
		if math.Abs(fu[n]-fk[n]) > 0.03 {
			t.Fatalf("user vs kernel fraction[%d]: %v vs %v", n, fu[n], fk[n])
		}
	}
}

func TestAlgorithm1NarrowingMigratesIncrementally(t *testing.T) {
	// Raising DWP narrows the interleave sets; re-applying must migrate
	// only part of the segment, not rewrite everything.
	canonical := []float64{0.25, 0.25, 0.25, 0.25}
	workers := []topology.NodeID{0, 1}
	as := mm.NewAddressSpace(4)
	seg := as.AddSegment("d", mm.PageSize*4096, mm.SharedOwner)
	w0, _ := DWPWeights(canonical, workers, 0)
	if err := UserLevelWeightedInterleave(seg, w0, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	as.DrainMigratedBytes()
	w1, _ := DWPWeights(canonical, workers, 0.1)
	if err := UserLevelWeightedInterleave(seg, w1, mm.MoveFlag); err != nil {
		t.Fatal(err)
	}
	moved := as.DrainMigratedBytes()
	total := int64(seg.PageCount()) * mm.PageSize
	if moved == 0 {
		t.Fatal("DWP step migrated nothing")
	}
	if moved > total/2 {
		t.Fatalf("DWP step rewrote %d of %d bytes; not incremental", moved, total)
	}
	// Distribution must now match the δ=0.1 weights.
	fr := seg.Fractions()
	for n := range w1 {
		if math.Abs(fr[n]-w1[n]) > 0.03 {
			t.Fatalf("fraction[%d] = %v, want %v", n, fr[n], w1[n])
		}
	}
}

func TestAlgorithm1Errors(t *testing.T) {
	as := mm.NewAddressSpace(2)
	seg := as.AddSegment("d", mm.PageSize*16, mm.SharedOwner)
	if err := UserLevelWeightedInterleave(seg, []float64{1}, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := UserLevelWeightedInterleave(seg, []float64{-1, 2}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := UserLevelWeightedInterleave(seg, []float64{0, 0}, 0); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestApplyWeightsBothPaths(t *testing.T) {
	for _, userLevel := range []bool{true, false} {
		as := mm.NewAddressSpace(4)
		as.AddSegment("a", mm.PageSize*512, mm.SharedOwner)
		as.AddSegment("b", mm.PageSize*512, topology.NodeID(1))
		w := []float64{0.5, 0.5, 0, 0}
		if err := ApplyWeights(as, w, userLevel); err != nil {
			t.Fatal(err)
		}
		d := as.Distribution()
		if d[2] != 0 || d[3] != 0 {
			t.Fatalf("userLevel=%v: zero-weight nodes got pages: %v", userLevel, d)
		}
		if math.Abs(float64(d[0])-float64(d[1])) > 40 {
			t.Fatalf("userLevel=%v: unbalanced: %v", userLevel, d)
		}
	}
}

func TestMinBWAndWeights(t *testing.T) {
	matrix := [][]float64{
		{9, 4, 1, 1},
		{4, 9, 1, 1},
		{2, 6, 9, 1},
		{3, 2, 1, 9},
	}
	workers := []topology.NodeID{0, 1}
	minbw := MinBW(matrix, workers)
	want := []float64{4, 4, 2, 2} // min over the two worker columns
	for i := range want {
		if minbw[i] != want[i] {
			t.Fatalf("minbw = %v, want %v", minbw, want)
		}
	}
	w := WeightsFromMinBW(minbw)
	if math.Abs(stats.Sum(w)-1) > 1e-12 {
		t.Fatalf("weights sum %v", stats.Sum(w))
	}
	if math.Abs(w[0]-4.0/12.0) > 1e-12 {
		t.Fatalf("w[0] = %v, want 1/3", w[0])
	}
}
