package core

import (
	"math"

	"bwap/internal/perf"
	"bwap/internal/sim"
	"bwap/internal/stats"
)

// ReTuner implements the paper's first future-work extension (Section VI):
// "extend BWAP to dynamically adjust its weight distribution throughout the
// application's execution time, in order to obtain improved performance for
// applications whose access patterns change over time".
//
// It wraps the standard DWP search with a phase watchdog: after a search
// converges, it keeps monitoring the application's MAPI; when the metric
// departs from the level observed at tuning time by more than
// PhaseTolerance, the current placement is assumed stale, pages are re-laid
// at the canonical distribution (DWP = 0) and the search restarts.
//
// Restarting requires migrating pages *away* from the workers, which the
// user-level Algorithm 1 cannot do (Section III-B2: reverse migration is
// unsupported by its mbind pattern); the re-tuner therefore always enforces
// placements through the kernel-level weighted interleave.
type ReTuner struct {
	app       *sim.App
	canonical []float64
	params    Params
	// PhaseTolerance is the relative MAPI deviation that triggers a
	// re-tune (default 25%).
	PhaseTolerance float64
	// ReTuneCount reports how many times the search restarted.
	ReTuneCount int

	sampler    *perf.Sampler
	started    bool
	searching  bool
	dwp        float64
	prevScore  float64
	trajectory []Measurement
	err        error

	// MAPI watchdog state.
	refMAPI    float64
	lastBytes  float64
	lastInstrs float64
	lastCheck  float64
}

// NewReTuner returns a dynamic tuner hook for app.
func NewReTuner(app *sim.App, canonical []float64, params Params, seed uint64) *ReTuner {
	params = params.withDefaults()
	return &ReTuner{
		app:            app,
		canonical:      append([]float64(nil), canonical...),
		params:         params,
		PhaseTolerance: 0.25,
		sampler:        perf.NewSampler(params.N, params.C, params.T, params.NoiseRel, seed),
		searching:      true,
		prevScore:      math.Inf(1),
	}
}

// Tick implements sim.Hook.
func (t *ReTuner) Tick(e *sim.Engine) {
	if t.err != nil || t.app.Done() {
		return
	}
	if !t.started {
		if e.Now() < t.app.StableSince(e.Cfg) {
			return
		}
		t.started = true
		t.sampler.Restart()
		t.resetMAPIWindow(e.Now())
	}
	if t.searching {
		t.searchStep(e)
		return
	}
	t.watchdog(e)
}

// searchStep advances the upward DWP climb (identical schedule to the
// stand-alone tuner, kernel-level enforcement).
func (t *ReTuner) searchStep(e *sim.Engine) {
	score, ok := t.sampler.Offer(e.Now(), t.app.Counters.StalledCycles)
	if !ok {
		return
	}
	t.trajectory = append(t.trajectory, Measurement{DWP: t.dwp, StallRate: score, Time: e.Now()})
	if score >= t.prevScore || t.dwp >= 1-1e-9 {
		// Converged; arm the watchdog against the current MAPI level.
		t.searching = false
		t.refMAPI = math.NaN()
		t.resetMAPIWindow(e.Now())
		return
	}
	t.prevScore = score
	t.apply(e, stats.Clamp(t.dwp+t.params.Step, 0, 1))
	t.sampler.Restart()
}

// watchdog samples MAPI over one-second windows and restarts the search on
// a phase change.
func (t *ReTuner) watchdog(e *sim.Engine) {
	const window = 1.0
	if e.Now()-t.lastCheck < window {
		return
	}
	c := t.app.Counters
	bytes := c.BytesRead + c.BytesWritten
	instrs := c.Instructions
	dBytes, dInstrs := bytes-t.lastBytes, instrs-t.lastInstrs
	t.lastBytes, t.lastInstrs, t.lastCheck = bytes, instrs, e.Now()
	if dInstrs <= 0 {
		return
	}
	mapi := dBytes / perf.CacheLineBytes / dInstrs
	if math.IsNaN(t.refMAPI) {
		t.refMAPI = mapi
		return
	}
	if t.refMAPI > 0 && math.Abs(mapi-t.refMAPI)/t.refMAPI > t.PhaseTolerance {
		// Phase change: re-lay at canonical and search again.
		t.ReTuneCount++
		t.prevScore = math.Inf(1)
		t.searching = true
		t.apply(e, 0)
		t.sampler.Restart()
	}
}

// apply enforces the weight distribution for the given DWP via the
// kernel-level weighted interleave (reverse migrations allowed).
func (t *ReTuner) apply(e *sim.Engine, dwp float64) {
	t.dwp = dwp
	w, err := DWPWeights(t.canonical, t.app.Workers, t.dwp)
	if err == nil {
		err = ApplyWeights(t.app.AS, w, false)
	}
	if err != nil {
		t.err = err
	}
}

// resetMAPIWindow re-bases the watchdog counters.
func (t *ReTuner) resetMAPIWindow(now float64) {
	c := t.app.Counters
	t.lastBytes = c.BytesRead + c.BytesWritten
	t.lastInstrs = c.Instructions
	t.lastCheck = now
}

// Finished reports whether the tuner is currently idle (watchdog armed).
func (t *ReTuner) Finished() bool { return t.started && !t.searching }

// AppliedDWP returns the DWP currently in force.
func (t *ReTuner) AppliedDWP() float64 { return t.dwp }

// BestDWP returns the DWP with the lowest stall rate measured during the
// most recent search.
func (t *ReTuner) BestDWP() float64 {
	best, bestScore := 0.0, math.Inf(1)
	for _, m := range t.trajectory {
		if m.StallRate < bestScore {
			best, bestScore = m.DWP, m.StallRate
		}
	}
	return best
}

// Trajectory returns all completed measurement periods across searches.
func (t *ReTuner) Trajectory() []Measurement {
	return append([]Measurement(nil), t.trajectory...)
}

// Err returns a placement failure, if any occurred.
func (t *ReTuner) Err() error { return t.err }

// DynamicBWAP is a Placer that deploys the ReTuner: the Section VI
// dynamic variant of the policy.
type DynamicBWAP struct {
	// Canonical supplies canonical distributions; nil uses uniform-all
	// (the bwap-uniform flavour).
	Canonical *CanonicalTuner
	// Params configures the search (zero = paper defaults).
	Params Params

	tuners map[string]*ReTuner
}

// Name implements sim.Placer.
func (d *DynamicBWAP) Name() string { return "bwap-dynamic" }

// Place implements sim.Placer.
func (d *DynamicBWAP) Place(e *sim.Engine, app *sim.App) error {
	var canonical []float64
	if d.Canonical != nil {
		w, err := d.Canonical.Weights(app.Workers)
		if err != nil {
			return err
		}
		canonical = w
	} else {
		canonical = uniformWeights(e.M.NumNodes())
	}
	w0, err := DWPWeights(canonical, app.Workers, 0)
	if err != nil {
		return err
	}
	if err := ApplyWeights(app.AS, w0, false); err != nil {
		return err
	}
	tuner := NewReTuner(app, canonical, d.Params, e.NextSeed())
	e.AddHook(tuner)
	if d.tuners == nil {
		d.tuners = make(map[string]*ReTuner)
	}
	d.tuners[app.Name] = tuner
	return nil
}

// TunerFor returns the re-tuner attached to the named app, or nil.
func (d *DynamicBWAP) TunerFor(appName string) *ReTuner { return d.tuners[appName] }

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}
