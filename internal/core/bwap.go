package core

import (
	"fmt"
	"sync"

	"bwap/internal/search"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// BWAP is the complete policy as a sim.Placer: it enriches the libnuma
// interface with the paper's bw-interleaved option. At application start it
// places pages at the canonical distribution (DWP = 0); it then registers
// the on-line DWP tuner — or, when CoRunner names a high-priority
// co-scheduled application, the two-stage co-scheduled tuner.
//
// With Uniform set, the canonical tuner is disabled and the initial
// distribution is uniform-all: the BWAP-uniform ablation of Section IV-B.
type BWAP struct {
	// Canonical supplies canonical weight distributions; required unless
	// Uniform is set.
	Canonical *CanonicalTuner
	// Uniform disables the canonical tuner (the BWAP-uniform variant).
	Uniform bool
	// UserLevel selects Algorithm 1 (true, the paper's portable default)
	// or the kernel-level weighted interleave (false).
	UserLevel bool
	// Params configures the DWP search; zero value uses the paper's.
	Params Params
	// CoRunner optionally names the high-priority application sharing the
	// machine; it must be registered with the engine before this app.
	CoRunner string
	// AutoDetectStablePhase starts the tuner when the MAPI phase detector
	// reports a stable access pattern instead of at the fixed BWAP-init
	// time — the automation Section III-B3 proposes for applications that
	// cannot be modified to call BWAP-init themselves. Stand-alone tuner
	// only.
	AutoDetectStablePhase bool

	mu     sync.Mutex
	tuners map[string]Tuner
}

// Tuner is the common read-side of both tuner variants, used by the
// experiment harness to extract DWP values (Table II) and trajectories
// (Figure 4).
type Tuner interface {
	sim.Hook
	Finished() bool
	AppliedDWP() float64
	BestDWP() float64
	Trajectory() []Measurement
	Err() error
}

// NewBWAP returns the full policy backed by the canonical tuner.
func NewBWAP(ct *CanonicalTuner) *BWAP {
	return &BWAP{Canonical: ct, UserLevel: true, Params: DefaultParams()}
}

// NewBWAPUniform returns the BWAP-uniform ablation: DWP tuner only,
// starting from uniform-all.
func NewBWAPUniform() *BWAP {
	return &BWAP{Uniform: true, UserLevel: true, Params: DefaultParams()}
}

// Name implements sim.Placer.
func (b *BWAP) Name() string {
	if b.Uniform {
		return "bwap-uniform"
	}
	return "bwap"
}

// canonicalFor returns the canonical distribution for a worker set.
func (b *BWAP) canonicalFor(e *sim.Engine, workers []topology.NodeID) ([]float64, error) {
	if b.Uniform {
		return search.Uniform(e.M.NumNodes()), nil
	}
	if b.Canonical == nil {
		return nil, fmt.Errorf("core: BWAP has no canonical tuner (use NewBWAP or NewBWAPUniform)")
	}
	return b.Canonical.Weights(workers)
}

// Place implements sim.Placer: initial placement at DWP=0, then register
// the on-line tuner.
func (b *BWAP) Place(e *sim.Engine, app *sim.App) error {
	canonical, err := b.canonicalFor(e, app.Workers)
	if err != nil {
		return err
	}
	w0, err := DWPWeights(canonical, app.Workers, 0)
	if err != nil {
		return err
	}
	if err := ApplyWeights(app.AS, w0, b.UserLevel); err != nil {
		return err
	}

	var tuner Tuner
	if b.CoRunner != "" {
		var hi *sim.App
		for _, other := range e.Apps() {
			if other.Name == b.CoRunner {
				hi = other
			}
		}
		if hi == nil {
			return fmt.Errorf("core: co-runner %q not registered before %q", b.CoRunner, app.Name)
		}
		tuner = NewCoScheduledTuner(hi, app, canonical, b.Params, b.UserLevel, e.NextSeed(), e.NextSeed())
	} else {
		dt := NewDWPTuner(app, canonical, b.Params, b.UserLevel, e.NextSeed())
		if b.AutoDetectStablePhase {
			dt.SetPhaseDetector(NewPhaseDetector(app))
		}
		tuner = dt
	}
	// Register as an app-owned hook so a fleet engine that removes the app
	// on departure drops the tuner with it.
	e.AddAppHook(app, tuner)

	b.mu.Lock()
	if b.tuners == nil {
		b.tuners = make(map[string]Tuner)
	}
	b.tuners[app.Name] = tuner
	b.mu.Unlock()
	return nil
}

// TunerFor returns the tuner attached to the named app, or nil.
func (b *BWAP) TunerFor(appName string) Tuner {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tuners[appName]
}

// StaticDWP is a placer that applies the BWAP weight distribution at a
// fixed proximity factor, with no on-line tuning — the manual deployments
// behind Figure 4's static curves and the tuner-accuracy analysis.
type StaticDWP struct {
	// Canonical supplies the canonical distribution; nil with Uniform set
	// uses uniform-all.
	Canonical *CanonicalTuner
	// Uniform selects the uniform canonical distribution.
	Uniform bool
	// DWP is the fixed proximity factor in [0,1].
	DWP float64
	// UserLevel selects Algorithm 1 vs kernel weighted interleave.
	UserLevel bool
	// Label overrides Name() in output.
	Label string
}

// Name implements sim.Placer.
func (p StaticDWP) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("bwap-static-dwp%.0f%%", p.DWP*100)
}

// Place implements sim.Placer.
func (p StaticDWP) Place(e *sim.Engine, app *sim.App) error {
	var canonical []float64
	var err error
	if p.Uniform || p.Canonical == nil {
		canonical = search.Uniform(e.M.NumNodes())
	} else {
		canonical, err = p.Canonical.Weights(app.Workers)
		if err != nil {
			return err
		}
	}
	w, err := DWPWeights(canonical, app.Workers, p.DWP)
	if err != nil {
		return err
	}
	return ApplyWeights(app.AS, w, p.UserLevel)
}
