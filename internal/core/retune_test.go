package core

import (
	"testing"

	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// phaseChangingSpec is bandwidth-hungry for the first 40% of its work
// (optimal DWP ≈ 0), then drops to a light latency-bound regime (optimal
// DWP = 1). The demand drop moves the MAPI metric, which is what the
// re-tuner's watchdog keys on.
func phaseChangingSpec() workload.Spec {
	s := workload.Spec{
		Name: "phasey", ReadGBs: 60, WriteGBs: 0, PrivateFrac: 0,
		LatencySensitivity: 0.6, WorkGB: 700,
		SharedGB: 0.032, PrivateGBPerNode: 0.004,
		Phases: []workload.Phase{
			{AtWorkFraction: 0, DemandFactor: 1, LatencyFactor: 0.02},
			{AtWorkFraction: 0.4, DemandFactor: 0.12, LatencyFactor: 1.5},
		},
	}
	return s
}

func TestPhaseChangingSpecValidates(t *testing.T) {
	if err := phaseChangingSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := phaseChangingSpec()
	bad.Phases[1].AtWorkFraction = 0 // out of order
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order phases accepted")
	}
	bad = phaseChangingSpec()
	bad.Phases[0].DemandFactor = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative phase factor accepted")
	}
}

func TestPhaseAt(t *testing.T) {
	s := phaseChangingSpec()
	if d, k := s.PhaseAt(0.1); d != 1 || k != 0.02 {
		t.Fatalf("PhaseAt(0.1) = %v/%v", d, k)
	}
	if d, k := s.PhaseAt(0.9); d != 0.12 || k != 1.5 {
		t.Fatalf("PhaseAt(0.9) = %v/%v", d, k)
	}
	none := workload.Streamcluster
	if d, k := none.PhaseAt(0.5); d != 1 || k != 1 {
		t.Fatalf("phase-less spec returned %v/%v", d, k)
	}
}

// TestReTunerFollowsPhaseChange is the Section VI dynamic scenario: the
// static tuner tunes once for the bandwidth-hungry phase and is stuck when
// the app turns latency-bound; the re-tuner detects the change, re-lays at
// canonical, and climbs to high DWP.
func TestReTunerFollowsPhaseChange(t *testing.T) {
	m := topology.MachineB()
	cfg := sim.Config{Seed: 17}
	spec := phaseChangingSpec()

	e := sim.New(m, cfg)
	d := &DynamicBWAP{Params: Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}}
	if _, err := e.AddApp("phasey", spec, []topology.NodeID{0}, d); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := d.TunerFor("phasey")
	if tuner == nil {
		t.Fatal("no re-tuner registered")
	}
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	if tuner.ReTuneCount == 0 {
		t.Fatalf("watchdog never fired; trajectory %v", tuner.Trajectory())
	}
	// After the light latency-bound phase, the placement must sit at high
	// DWP (the second search climbed).
	if got := tuner.AppliedDWP(); got < 0.7 {
		t.Fatalf("post-retune DWP = %v, want high (latency-bound phase); retunes=%d trajectory %v",
			got, tuner.ReTuneCount, tuner.Trajectory())
	}
}

// TestReTunerBeatsStaticTunerOnPhaseChange quantifies the extension: on a
// phase-changing app, the dynamic variant must finish no slower than the
// one-shot tuner (which is stuck with the phase-1 placement).
func TestReTunerBeatsStaticTunerOnPhaseChange(t *testing.T) {
	m := topology.MachineB()
	spec := phaseChangingSpec()
	run := func(placer sim.Placer) float64 {
		e := sim.New(m, sim.Config{Seed: 17})
		if _, err := e.AddApp("phasey", spec, []topology.NodeID{0}, placer); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["phasey"]
	}
	params := Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}
	static := NewBWAPUniform()
	static.Params = params
	tStatic := run(static)
	tDynamic := run(&DynamicBWAP{Params: params})
	if tDynamic > tStatic*1.02 {
		t.Fatalf("dynamic variant slower than one-shot: %v vs %v", tDynamic, tStatic)
	}
	t.Logf("one-shot %.1f s, dynamic %.1f s (%.1f%% faster)", tStatic, tDynamic, 100*(1-tDynamic/tStatic))
}

// TestReTunerStableAppNeverRetunes: on a single-phase app the watchdog must
// stay quiet.
func TestReTunerStableAppNeverRetunes(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{Seed: 19})
	d := &DynamicBWAP{Params: Params{N: 5, C: 1, T: 0.1, Step: 0.1, NoiseRel: 0.02}}
	spec := latencyBoundSpec()
	spec.WorkGB = 300
	if _, err := e.AddApp("lat", spec, []topology.NodeID{0}, d); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := d.TunerFor("lat")
	if tuner.ReTuneCount != 0 {
		t.Fatalf("spurious re-tunes: %d", tuner.ReTuneCount)
	}
	if got := tuner.AppliedDWP(); got < 0.9 {
		t.Fatalf("latency-bound app should sit at DWP 1: %v", got)
	}
}

func TestDynamicBWAPWithCanonicalTuner(t *testing.T) {
	m := topology.MachineA()
	cfg := sim.Config{Seed: 23}
	ct := NewCanonicalTuner(m, cfg)
	e := sim.New(m, cfg)
	d := &DynamicBWAP{Canonical: ct, Params: Params{N: 5, C: 1, T: 0.1, Step: 0.1}}
	spec := workload.Streamcluster.Scaled(0.1)
	if _, err := e.AddApp("SC", spec, []topology.NodeID{4}, d); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "bwap-dynamic" {
		t.Fatal("name wrong")
	}
	if tuner := d.TunerFor("SC"); tuner == nil || len(tuner.Trajectory()) == 0 {
		t.Fatal("dynamic tuner did not run")
	}
}
