package core

import (
	"math"

	"bwap/internal/perf"
	"bwap/internal/sim"
	"bwap/internal/stats"
)

// This file implements the two automations Section III-B3 leaves as
// addressable limitations:
//
//  1. classifying workloads as memory-intensive or not via the number of
//     memory accesses per instruction (MAPI), "like in Carrefour [21]", so
//     the co-scheduled variant does not need an external hint; and
//  2. triggering BWAP-init automatically by watching the periodic
//     variation of the MAPI metric and acting "only when such variation is
//     below a given threshold", instead of requiring the programmer to
//     call BWAP-init at the start of the stable phase.

// DefaultMAPIThreshold separates memory-intensive workloads from the rest.
// With 64-byte lines and nominal IPC 1, a workload needs roughly one
// access per 50 instructions to stress a commodity memory system; Swaptions
// sits two orders of magnitude below the paper's benchmarks.
const DefaultMAPIThreshold = 0.02

// MemoryIntensive classifies an application from its accumulated counters.
// It requires some execution history; an app with no retired instructions
// classifies as not memory-intensive.
func MemoryIntensive(app *sim.App, threshold float64) bool {
	if threshold <= 0 {
		threshold = DefaultMAPIThreshold
	}
	return app.Counters.MAPI() >= threshold
}

// PhaseDetector watches the periodic variation of an application's MAPI
// and reports stability once the relative spread of recent windows drops
// below Tolerance — the trigger the paper proposes for automating
// BWAP-init.
type PhaseDetector struct {
	// WindowSeconds is the MAPI sampling window (default 0.5 s).
	WindowSeconds float64
	// Windows is how many consecutive windows are compared (default 3).
	Windows int
	// Tolerance is the maximum relative spread (max-min)/mean considered
	// stable (default 5%).
	Tolerance float64

	app        *sim.App
	lastTime   float64
	lastBytes  float64
	lastInstrs float64
	history    []float64
	stableAt   float64
}

// NewPhaseDetector returns a detector for the app with default parameters.
func NewPhaseDetector(app *sim.App) *PhaseDetector {
	return &PhaseDetector{
		WindowSeconds: 0.5,
		Windows:       3,
		Tolerance:     0.05,
		app:           app,
		stableAt:      math.NaN(),
	}
}

// Observe feeds the detector the current simulated time; call it every
// tick. It returns true once the application's MAPI has been stable for
// the configured number of windows.
func (d *PhaseDetector) Observe(now float64) bool {
	if d.Stable() {
		return true
	}
	c := d.app.Counters
	if d.lastTime == 0 && d.lastBytes == 0 && d.lastInstrs == 0 {
		d.lastTime, d.lastBytes, d.lastInstrs = now, c.BytesRead+c.BytesWritten, c.Instructions
		return false
	}
	if now-d.lastTime < d.WindowSeconds {
		return false
	}
	bytes := c.BytesRead + c.BytesWritten
	instrs := c.Instructions
	dBytes, dInstrs := bytes-d.lastBytes, instrs-d.lastInstrs
	d.lastTime, d.lastBytes, d.lastInstrs = now, bytes, instrs
	mapi := 0.0
	if dInstrs > 0 {
		mapi = dBytes / perf.CacheLineBytes / dInstrs
	}
	d.history = append(d.history, mapi)
	if len(d.history) > d.Windows {
		d.history = d.history[len(d.history)-d.Windows:]
	}
	if len(d.history) < d.Windows {
		return false
	}
	mean := stats.Mean(d.history)
	if mean <= 0 {
		return false
	}
	spread := (stats.Max(d.history) - stats.Min(d.history)) / mean
	if spread <= d.Tolerance {
		d.stableAt = now
		return true
	}
	return false
}

// Stable reports whether stability has been detected.
func (d *PhaseDetector) Stable() bool { return !math.IsNaN(d.stableAt) }

// StableAt returns the simulated time at which stability was detected
// (NaN before that).
func (d *PhaseDetector) StableAt() float64 { return d.stableAt }
