package core

import (
	"math"
	"testing"

	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// runToCompletion executes a stand-alone app and returns it.
func runToCompletion(t *testing.T, m *topology.Machine, spec workload.Spec, placer sim.Placer) (*sim.Engine, *sim.App) {
	t.Helper()
	e := sim.New(m, sim.Config{Seed: 21})
	app, err := e.AddApp(spec.Name, spec, []topology.NodeID{0}, placer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, app
}

func TestMAPIClassifiesBenchmarksVsSwaptions(t *testing.T) {
	m := topology.MachineB()
	// A memory-hungry benchmark classifies as memory-intensive.
	sc := workload.Streamcluster.Scaled(0.02)
	_, app := runToCompletion(t, m, sc, StaticDWP{Uniform: true, DWP: 0, UserLevel: true})
	if !MemoryIntensive(app, 0) {
		t.Fatalf("SC misclassified: MAPI = %v", app.Counters.MAPI())
	}
	// Swaptions (compute-bound co-runner) does not. Run it as foreground
	// briefly by giving it work.
	sw := workload.Swaptions
	sw.ComputeBound = false
	sw.WorkGB = 2
	_, app2 := runToCompletion(t, m, sw, StaticDWP{Uniform: true, DWP: 1, UserLevel: true})
	if MemoryIntensive(app2, 0) {
		t.Fatalf("Swaptions misclassified: MAPI = %v", app2.Counters.MAPI())
	}
	// The two must be separated by a comfortable margin.
	if app.Counters.MAPI() < 10*app2.Counters.MAPI() {
		t.Fatalf("classification margin too thin: %v vs %v", app.Counters.MAPI(), app2.Counters.MAPI())
	}
}

func TestMemoryIntensiveNoHistory(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("idle", workload.Streamcluster.Scaled(0.01), []topology.NodeID{0},
		StaticDWP{Uniform: true, DWP: 0, UserLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if MemoryIntensive(app, 0) {
		t.Fatal("app with no history classified as memory-intensive")
	}
}

func TestPhaseDetectorWaitsOutInitPhase(t *testing.T) {
	// A workload with a 3-second low-demand init phase: the detector must
	// fire only after the phase boundary, while the fixed BWAP-init time
	// (default 1 s) would have fired inside the init phase.
	m := topology.MachineB()
	spec := workload.Streamcluster.Scaled(0.05).WithInitPhase(3.0, 0.1)
	e := sim.New(m, sim.Config{Seed: 9})
	app, err := e.AddApp("sc", spec, []topology.NodeID{0}, StaticDWP{Uniform: true, DWP: 0, UserLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	det := NewPhaseDetector(app)
	e.AddHook(observeHook{det: det, e: e})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !det.Stable() {
		t.Fatal("detector never fired")
	}
	if at := det.StableAt(); at < 3.0 {
		t.Fatalf("detector fired at %v s, inside the init phase (ends at 3.0)", at)
	}
	if at := det.StableAt(); at > 6.5 {
		t.Fatalf("detector too slow: fired at %v s", at)
	}
}

type observeHook struct {
	det *PhaseDetector
	e   *sim.Engine
}

func (h observeHook) Tick(e *sim.Engine) { h.det.Observe(e.Now()) }

func TestPhaseDetectorStableImmediatelyForSteadyApp(t *testing.T) {
	m := topology.MachineB()
	spec := workload.Streamcluster.Scaled(0.05)
	e := sim.New(m, sim.Config{Seed: 9})
	app, err := e.AddApp("sc", spec, []topology.NodeID{0}, StaticDWP{Uniform: true, DWP: 0, UserLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	det := NewPhaseDetector(app)
	e.AddHook(observeHook{det: det, e: e})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !det.Stable() {
		t.Fatal("detector never fired on a steady app")
	}
	// Three windows of 0.5 s plus slack.
	if at := det.StableAt(); at > 2.5 {
		t.Fatalf("steady app detected only at %v s", at)
	}
}

func TestBWAPAutoDetectStablePhase(t *testing.T) {
	// End to end: with AutoDetectStablePhase the tuner skips the noisy
	// init phase and still converges to high DWP for a latency-bound app.
	m := topology.MachineB()
	spec := latencyBoundSpec().WithInitPhase(2.0, 0.2)
	spec.WorkGB = 3000
	e := sim.New(m, sim.Config{Seed: 13})
	b := NewBWAPUniform()
	b.AutoDetectStablePhase = true
	if _, err := e.AddApp("lat", spec, []topology.NodeID{0}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tuner := b.TunerFor("lat")
	if err := tuner.Err(); err != nil {
		t.Fatal(err)
	}
	traj := tuner.Trajectory()
	if len(traj) == 0 {
		t.Fatal("tuner never started")
	}
	// No measurement may predate the init-phase boundary.
	if first := traj[0].Time; first < 2.0 {
		t.Fatalf("first measurement at %v s, inside init phase", first)
	}
	if got := tuner.AppliedDWP(); got < 0.9 {
		t.Fatalf("tuner did not converge after auto-detection: DWP %v", got)
	}
}

func TestMAPIMetricValue(t *testing.T) {
	// Unsaturated app: stall ~0, instructions ≈ cycles, so
	// MAPI ≈ bytes/64/cycles. 7 GB/s at 1e9 cycles/s = 7e9/64/1e9 ≈ 0.109.
	m := topology.MachineB()
	spec := workload.Spec{
		Name: "probe", ReadGBs: 7, WriteGBs: 0, PrivateFrac: 0,
		WorkGB: 30, SharedGB: 0.016,
	}
	_, app := runToCompletion(t, m, spec, StaticDWP{Uniform: true, DWP: 1, UserLevel: true})
	if got := app.Counters.MAPI(); math.Abs(got-0.109) > 0.02 {
		t.Fatalf("MAPI = %v, want ~0.109", got)
	}
}
