package core

import (
	"fmt"

	"bwap/internal/mm"
	"bwap/internal/numaapi"
	"bwap/internal/stats"
	"bwap/internal/topology"
)

// UserLevelWeightedInterleave is Algorithm 1 of the paper: a portable,
// user-level approximation of weighted page interleaving built from uniform
// mbind calls over sub-ranges.
//
// The segment is carved into contiguous sub-ranges; the first is uniformly
// interleaved over all nodes, the second over all nodes except the one with
// the lowest weight, and so on. Sizing each sub-range as
// |nodes| · Δweight · segmentLength makes the aggregate per-node page
// ratios equal the requested weights.
//
// With mm.MoveFlag the call migrates pages that no longer conform — and, as
// Section III-B2 observes, when DWP grows each sub-range is re-bound over
// the same or a narrower node set than before, which plain mbind handles;
// the reverse direction (widening) is unsupported, which is why the DWP
// tuner never decreases DWP.
func UserLevelWeightedInterleave(seg *mm.Segment, weights []float64, flags mm.Flags) error {
	if len(weights) != seg.NumNodes() {
		return fmt.Errorf("core: %d weights for %d nodes", len(weights), seg.NumNodes())
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("core: negative weight %f for node %d", w, i)
		}
	}
	if stats.Sum(weights) <= 0 {
		return fmt.Errorf("core: weights sum to zero")
	}
	// Stack scratch for the normalized weights and the sorted node order:
	// this runs once per placement and re-placement, and a 64-entry buffer
	// covers every Bitmask-addressable machine (append falls back to the
	// heap beyond that).
	var wbuf [64]float64
	w := stats.AppendNormalized(wbuf[:0], weights)

	// nodes, ordered by ascending weight (Algorithm 1's getNodeWithMinWeight
	// iteration), over the full node set; zero-weight nodes produce
	// zero-length sub-ranges and simply drop out first.
	mask := numaapi.AllNodes(len(w))
	var nbuf [64]topology.NodeID
	nodes := numaapi.AppendSortedByWeight(nbuf[:0], w, mask)

	length := float64(seg.Length())
	address := uint64(0)
	weightPrev := 0.0
	for i, node := range nodes {
		remaining := nodes[i:]
		delta := w[node] - weightPrev
		size := uint64(float64(len(remaining)) * delta * length)
		// Round to whole pages; the final sub-range absorbs the rounding
		// remainder so the whole segment is covered.
		size -= size % mm.PageSize
		if i == len(nodes)-1 {
			size = seg.Length() - address
		}
		if size > 0 {
			if err := seg.Mbind(address, size, remaining, flags); err != nil {
				return err
			}
			address += size
		}
		weightPrev = w[node]
	}
	return nil
}

// ApplyWeights places every segment of an address space according to the
// weight vector, via Algorithm 1 (userLevel) or the kernel-level weighted
// interleave system call; the paper reports the two differ by at most 3%.
func ApplyWeights(as *mm.AddressSpace, weights []float64, userLevel bool) error {
	for _, seg := range as.Segments() {
		var err error
		if userLevel {
			err = UserLevelWeightedInterleave(seg, weights, mm.MoveFlag|mm.StrictFlag)
		} else {
			err = seg.MbindWeighted(weights, mm.MoveFlag)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
