package core

import (
	"fmt"
	"math"

	"bwap/internal/perf"
	"bwap/internal/sim"
	"bwap/internal/stats"
	"bwap/internal/topology"
)

// DWPWeights converts a canonical weight distribution and a data-to-worker
// proximity factor δ ∈ [0,1] into the applied weight vector
// (Section III-B): the aggregate worker share grows from its canonical
// value Cw to Cw + δ·(1−Cw), while the relative weights *within* the worker
// set and within the non-worker set are preserved (Observation 3). δ=0 is
// the canonical distribution; δ=1 maps every page onto the worker set.
func DWPWeights(canonical []float64, workers []topology.NodeID, dwp float64) ([]float64, error) {
	if dwp < -1e-9 || dwp > 1+1e-9 {
		return nil, fmt.Errorf("core: DWP %v out of [0,1]", dwp)
	}
	dwp = stats.Clamp(dwp, 0, 1)
	// Stack scratch for the worker membership flags: DWPWeights runs per
	// placement and per tuner step, and 64 entries cover every
	// Bitmask-addressable machine.
	var wbuf [64]bool
	var isWorker []bool
	if len(canonical) <= len(wbuf) {
		isWorker = wbuf[:len(canonical)]
	} else {
		isWorker = make([]bool, len(canonical))
	}
	cw := 0.0
	for _, w := range workers {
		if int(w) < 0 || int(w) >= len(canonical) {
			return nil, fmt.Errorf("core: worker %d out of range", w)
		}
		isWorker[w] = true
		cw += canonical[w]
	}
	if cw <= 0 {
		return nil, fmt.Errorf("core: canonical distribution gives no weight to workers")
	}
	cn := 1 - cw
	out := make([]float64, len(canonical))
	workerScale := (cw + dwp*cn) / cw
	for i, c := range canonical {
		if isWorker[i] {
			out[i] = c * workerScale
		} else {
			out[i] = c * (1 - dwp)
		}
	}
	// Normalize in place — the same x/sum operations stats.Normalize
	// performs, minus its fresh slice; sum > 0 is guaranteed because
	// cw > 0 and workerScale > 0.
	sum := stats.Sum(out)
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// Params are the DWP tuner's search parameters. The paper sets n=20, c=5,
// t=0.2 s and x=10%, tuned once on Ocean*/Machine A and reused everywhere
// (Section IV).
type Params struct {
	// N is the number of stall-rate measurements per period.
	N int
	// C is the count of outliers trimmed from each end.
	C int
	// T is the duration of one measurement in seconds.
	T float64
	// Step is the DWP increment x.
	Step float64
	// NoiseRel is the relative standard deviation of simulated measurement
	// noise on each stall-rate sample.
	NoiseRel float64
}

// DefaultParams returns the paper's parameters (with the reproduction's
// default measurement-noise level).
func DefaultParams() Params {
	return Params{N: 20, C: 5, T: 0.2, Step: 0.10, NoiseRel: 0.02}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.N <= 0 {
		p.N = d.N
	}
	if p.C < 0 || 2*p.C >= p.N {
		p.C = 0
	}
	if p.T <= 0 {
		p.T = d.T
	}
	if p.Step <= 0 || p.Step > 1 {
		p.Step = d.Step
	}
	if p.NoiseRel < 0 {
		p.NoiseRel = 0
	}
	return p
}

// Measurement is one completed sampling period of the tuner.
type Measurement struct {
	// DWP is the proximity factor under which the period was measured.
	DWP float64
	// StallRate is the trimmed-mean stalled cycles per second.
	StallRate float64
	// Time is the simulated time at which the period completed.
	Time float64
	// Stage is 1 or 2 for the co-scheduled tuner, 0 for the stand-alone one.
	Stage int
}

// DWPTuner is the on-line component of BWAP (Section III-B1): once its
// application enters the stable phase (the BWAP-init call), it repeatedly
// measures the trimmed-mean stall rate over one period and raises DWP by
// one step while the rate keeps improving, migrating pages incrementally.
// It stops at the first worsening step, i.e. within one step of the local
// optimum; reverse migration is unsupported (Section III-B2) so it never
// steps back.
type DWPTuner struct {
	app       *sim.App
	canonical []float64
	params    Params
	userLevel bool

	sampler    *perf.Sampler
	detector   *PhaseDetector
	started    bool
	finished   bool
	dwp        float64
	prevScore  float64
	trajectory []Measurement
	err        error
}

// SetPhaseDetector makes the tuner start when the MAPI phase detector
// reports stability instead of at the fixed BWAP-init time — the
// automation Section III-B3 proposes.
func (t *DWPTuner) SetPhaseDetector(d *PhaseDetector) { t.detector = d }

// NewDWPTuner returns a tuner hook for app. canonical is the distribution
// for the app's worker set; userLevel selects Algorithm 1 (true) or the
// kernel weighted-interleave (false). seed feeds the measurement-noise
// stream.
func NewDWPTuner(app *sim.App, canonical []float64, params Params, userLevel bool, seed uint64) *DWPTuner {
	params = params.withDefaults()
	return &DWPTuner{
		app:       app,
		canonical: append([]float64(nil), canonical...),
		params:    params,
		userLevel: userLevel,
		sampler:   perf.NewSampler(params.N, params.C, params.T, params.NoiseRel, seed),
		prevScore: math.Inf(1),
	}
}

// Tick implements sim.Hook.
func (t *DWPTuner) Tick(e *sim.Engine) {
	if t.finished || t.err != nil || t.app.Done() {
		return
	}
	if !t.started {
		if t.detector != nil {
			if !t.detector.Observe(e.Now()) {
				return
			}
		} else if e.Now() < t.app.StableSince(e.Cfg) {
			return
		}
		t.started = true
		t.sampler.Restart()
	}
	score, ok := t.sampler.Offer(e.Now(), t.app.Counters.StalledCycles)
	if !ok {
		return
	}
	t.trajectory = append(t.trajectory, Measurement{DWP: t.dwp, StallRate: score, Time: e.Now()})
	if score >= t.prevScore {
		// Likely a local optimum (at most one step past it); stop.
		t.finished = true
		return
	}
	t.prevScore = score
	if t.dwp >= 1-1e-9 {
		t.finished = true
		return
	}
	t.step(e)
}

// step raises DWP by one increment and applies the new interleaving.
func (t *DWPTuner) step(e *sim.Engine) {
	t.dwp = stats.Clamp(t.dwp+t.params.Step, 0, 1)
	w, err := DWPWeights(t.canonical, t.app.Workers, t.dwp)
	if err == nil {
		err = ApplyWeights(t.app.AS, w, t.userLevel)
	}
	if err != nil {
		t.err = err
		t.finished = true
		return
	}
	t.sampler.Restart()
}

// Finished reports whether the search has stopped.
func (t *DWPTuner) Finished() bool { return t.finished }

// AppliedDWP returns the DWP currently in force (it may overshoot the best
// value by one step, matching the paper's error bound).
func (t *DWPTuner) AppliedDWP() float64 { return t.dwp }

// BestDWP returns the DWP with the lowest measured stall rate — the value
// Table II reports.
func (t *DWPTuner) BestDWP() float64 {
	best, bestScore := 0.0, math.Inf(1)
	for _, m := range t.trajectory {
		if m.StallRate < bestScore {
			best, bestScore = m.DWP, m.StallRate
		}
	}
	return best
}

// Trajectory returns the completed measurement periods in order.
func (t *DWPTuner) Trajectory() []Measurement {
	return append([]Measurement(nil), t.trajectory...)
}

// Err returns a placement failure, if any occurred.
func (t *DWPTuner) Err() error { return t.err }

// CoScheduledTuner is the workload-consolidation variant (Section III-B3).
// An external monitor watches both applications' stall rates:
//
//   - stage 1 raises the best-effort app B's DWP as long as the
//     high-priority app A's stall rate keeps decreasing (B's pages are
//     leaving A's nodes); when A's rate stabilizes, the current DWP is the
//     lower bound that protects A;
//   - stage 2 continues from that bound exactly like the stand-alone
//     tuner, now guided by B's stall rate.
type CoScheduledTuner struct {
	a, b      *sim.App
	canonical []float64
	params    Params
	userLevel bool
	// StabilizeTol is the absolute stall-fraction improvement (in cycles
	// per cycle) below which stage 1 considers A's stall rate stabilized
	// (default 0.01, i.e. one percentage point of stalled cycles). An
	// absolute threshold matches the paper's semantics: once B's presence
	// stops noticeably degrading A, further relative wiggles of an already
	// tiny stall rate must not keep the stage alive.
	StabilizeTol float64

	samplerA  *perf.Sampler
	samplerB  *perf.Sampler
	started   bool
	stage     int
	dwp       float64
	stage1DWP float64
	prevA     float64
	prevB     float64
	// trajectory holds B's stall measurements (both stages); aTrajectory
	// holds A's stage-1 measurements. The external monitor watches both
	// applications (Section III-B3), which lets stage 2 reuse B's stage-1
	// history instead of taking a second blind step.
	trajectory  []Measurement
	aTrajectory []Measurement
	err         error
}

// NewCoScheduledTuner returns the two-stage monitor: a is the high-priority
// application, b the best-effort one whose placement is tuned.
func NewCoScheduledTuner(a, b *sim.App, canonical []float64, params Params, userLevel bool, seedA, seedB uint64) *CoScheduledTuner {
	params = params.withDefaults()
	return &CoScheduledTuner{
		a: a, b: b,
		canonical:    append([]float64(nil), canonical...),
		params:       params,
		userLevel:    userLevel,
		StabilizeTol: 0.01,
		samplerA:     perf.NewSampler(params.N, params.C, params.T, params.NoiseRel, seedA),
		samplerB:     perf.NewSampler(params.N, params.C, params.T, params.NoiseRel, seedB),
		stage:        1,
		prevA:        math.Inf(1),
		prevB:        math.Inf(1),
	}
}

// Tick implements sim.Hook.
func (t *CoScheduledTuner) Tick(e *sim.Engine) {
	if t.stage > 2 || t.err != nil || t.b.Done() {
		return
	}
	if !t.started {
		if e.Now() < t.b.StableSince(e.Cfg) {
			return
		}
		t.started = true
		t.samplerA.Restart()
		t.samplerB.Restart()
	}
	switch t.stage {
	case 1:
		// Both samplers run on the same cadence; a period completes when
		// A's does.
		scoreB, okB := t.samplerB.Offer(e.Now(), t.b.Counters.StalledCycles)
		if okB {
			t.trajectory = append(t.trajectory, Measurement{DWP: t.dwp, StallRate: scoreB, Time: e.Now(), Stage: 1})
		}
		scoreA, okA := t.samplerA.Offer(e.Now(), t.a.Counters.StalledCycles)
		if !okA {
			return
		}
		t.aTrajectory = append(t.aTrajectory, Measurement{DWP: t.dwp, StallRate: scoreA, Time: e.Now(), Stage: 1})
		improved := t.prevA-scoreA > t.StabilizeTol*perf.ClockHz
		t.prevA = math.Min(t.prevA, scoreA)
		if !improved && !math.IsInf(t.prevA, 1) && len(t.aTrajectory) > 1 {
			// A has stabilized: the lower bound is found. B's stage-1
			// history already tells us whether the last step hurt B; if it
			// did, the search is over (one-step error bound, as in the
			// stand-alone tuner).
			t.stage1DWP = t.dwp
			n := len(t.trajectory)
			if n >= 2 && t.trajectory[n-1].StallRate >= t.trajectory[n-2].StallRate {
				t.stage = 3
				return
			}
			if n >= 1 {
				t.prevB = t.trajectory[n-1].StallRate
			}
			t.stage = 2
			if t.dwp >= 1-1e-9 {
				t.stage = 3
				return
			}
			t.applyStep(t.dwp + t.params.Step)
			t.samplerB.Restart()
			return
		}
		if t.dwp >= 1-1e-9 {
			t.stage1DWP = t.dwp
			t.stage = 3
			return
		}
		t.applyStep(t.dwp + t.params.Step)
		t.samplerA.Restart()
		t.samplerB.Restart()
	case 2:
		score, ok := t.samplerB.Offer(e.Now(), t.b.Counters.StalledCycles)
		if !ok {
			return
		}
		t.trajectory = append(t.trajectory, Measurement{DWP: t.dwp, StallRate: score, Time: e.Now(), Stage: 2})
		if score >= t.prevB {
			t.stage = 3
			return
		}
		t.prevB = score
		if t.dwp >= 1-1e-9 {
			t.stage = 3
			return
		}
		t.applyStep(t.dwp + t.params.Step)
		t.samplerB.Restart()
	}
}

// ATrajectory returns the high-priority application's stage-1 stall
// measurements.
func (t *CoScheduledTuner) ATrajectory() []Measurement {
	return append([]Measurement(nil), t.aTrajectory...)
}

func (t *CoScheduledTuner) applyStep(dwp float64) {
	t.dwp = stats.Clamp(dwp, 0, 1)
	w, err := DWPWeights(t.canonical, t.b.Workers, t.dwp)
	if err == nil {
		err = ApplyWeights(t.b.AS, w, t.userLevel)
	}
	if err != nil {
		t.err = err
		t.stage = 3
	}
}

// Finished reports whether the two-stage search has stopped.
func (t *CoScheduledTuner) Finished() bool { return t.stage > 2 }

// AppliedDWP returns the DWP currently in force for B.
func (t *CoScheduledTuner) AppliedDWP() float64 { return t.dwp }

// Stage1DWP returns the lower bound stage 1 settled on.
func (t *CoScheduledTuner) Stage1DWP() float64 { return t.stage1DWP }

// BestDWP returns the DWP with the lowest measured B stall rate across
// both stages; if nothing was measured (B finished first), it returns the
// stage-1 bound.
func (t *CoScheduledTuner) BestDWP() float64 {
	best, bestScore := t.stage1DWP, math.Inf(1)
	for _, m := range t.trajectory {
		if m.StallRate < bestScore {
			best, bestScore = m.DWP, m.StallRate
		}
	}
	return best
}

// Trajectory returns the completed measurement periods of both stages.
func (t *CoScheduledTuner) Trajectory() []Measurement {
	return append([]Measurement(nil), t.trajectory...)
}

// Err returns a placement failure, if any occurred.
func (t *CoScheduledTuner) Err() error { return t.err }
