// Package search provides the optimization loops the paper uses:
//
//   - the offline n-dimensional hill climbing over per-node weight
//     distributions (Section II) that serves as the near-optimal oracle of
//     Figure 1b, and
//   - a generic 1-D ascent/descent primitive mirroring the DWP tuner's
//     fixed-step search (the tuner itself lives in the core package because
//     it is event-driven, but tests cross-validate it against this).
//
// Objective convention: lower is better (execution time, stall rate).
package search

import (
	"fmt"
	"sort"

	"bwap/internal/stats"
)

// Eval is an objective over a weight vector; lower is better.
type Eval func(weights []float64) float64

// Candidate pairs an evaluated point with its score.
type Candidate struct {
	Weights []float64
	Score   float64
}

// Result reports a hill-climbing run.
type Result struct {
	// Best is the best candidate found.
	Best Candidate
	// History lists every evaluated candidate in evaluation order — the
	// paper averages the top-10 candidates of each search (Section II).
	History []Candidate
	// Evals is the number of objective evaluations spent.
	Evals int
}

// TopK returns the k best evaluated candidates, best first.
func (r *Result) TopK(k int) []Candidate {
	sorted := append([]Candidate(nil), r.History...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// MeanTopK returns the mean score of the k best candidates — the paper's
// "averages over a selection of the top-10 best performing distributions".
func (r *Result) MeanTopK(k int) float64 {
	top := r.TopK(k)
	scores := make([]float64, len(top))
	for i, c := range top {
		scores[i] = c.Score
	}
	return stats.Mean(scores)
}

// HillClimbWeights runs steepest-descent hill climbing on the weight
// simplex: from the current point it evaluates, for every dimension, the
// neighbours obtained by shifting ±step of mass to/from that dimension
// (renormalized), moves to the best improving neighbour, and halves the
// step when stuck, stopping when the evaluation budget is exhausted or the
// step underflows. This mirrors the paper's offline search: ~180
// evaluations starting from uniform-workers.
func HillClimbWeights(eval Eval, start []float64, step float64, budget int) (*Result, error) {
	if len(start) == 0 {
		return nil, fmt.Errorf("search: empty start point")
	}
	if step <= 0 || step >= 1 {
		return nil, fmt.Errorf("search: step %v out of (0,1)", step)
	}
	if budget < 1 {
		return nil, fmt.Errorf("search: budget %d", budget)
	}
	res := &Result{}
	evalPoint := func(w []float64) float64 {
		score := eval(w)
		res.History = append(res.History, Candidate{Weights: append([]float64(nil), w...), Score: score})
		res.Evals++
		return score
	}

	cur := stats.Normalize(start)
	curScore := evalPoint(cur)
	res.Best = res.History[0]

	for res.Evals < budget && step > 1e-4 {
		bestNeighbor := []float64(nil)
		bestScore := curScore
		for dim := range cur {
			for _, dir := range []float64{+1, -1} {
				if res.Evals >= budget {
					break
				}
				cand := perturb(cur, dim, dir*step)
				if cand == nil {
					continue
				}
				s := evalPoint(cand)
				if s < bestScore {
					bestScore, bestNeighbor = s, cand
				}
			}
		}
		if bestNeighbor == nil {
			step /= 2
			continue
		}
		cur, curScore = bestNeighbor, bestScore
	}

	for _, c := range res.History {
		if c.Score < res.Best.Score {
			res.Best = c
		}
	}
	return res, nil
}

// perturb shifts delta of weight mass onto dimension dim (negative delta
// removes mass) and renormalizes. It returns nil when the move is
// infeasible (weight would go negative).
func perturb(w []float64, dim int, delta float64) []float64 {
	out := append([]float64(nil), w...)
	out[dim] += delta
	if out[dim] < 0 {
		return nil
	}
	sum := stats.Sum(out)
	if sum <= 0 {
		return nil
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// HillClimbMulti runs HillClimbWeights from several starting points,
// splitting the budget evenly, and merges the histories into one Result.
// The paper's single 180-evaluation climb from uniform-workers explores a
// large sample of the landscape; at the reduced budgets tests and
// benchmarks use, restarting from structurally different points (e.g.
// uniform-workers and uniform-all) recovers that coverage.
func HillClimbMulti(eval Eval, starts [][]float64, step float64, budget int) (*Result, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("search: no start points")
	}
	merged := &Result{}
	per := budget / len(starts)
	if per < 1 {
		per = 1
	}
	for _, start := range starts {
		r, err := HillClimbWeights(eval, start, step, per)
		if err != nil {
			return nil, err
		}
		merged.History = append(merged.History, r.History...)
		merged.Evals += r.Evals
		if merged.Best.Weights == nil || r.Best.Score < merged.Best.Score {
			merged.Best = r.Best
		}
	}
	return merged, nil
}

// Ascend1D performs the DWP tuner's fixed-step 1-D search in its offline
// form: starting at x0, step upward by step while the objective keeps
// improving (strictly decreasing); stop on the first worsening step or at
// hi. It returns the last improving x, its score, and the number of
// evaluations. The on-line tuner in package core follows exactly this
// schedule against sampled stall rates.
func Ascend1D(eval func(x float64) float64, x0, step, hi float64) (bestX, bestScore float64, evals int) {
	x := x0
	best := eval(x)
	evals = 1
	bestX = x
	for x+step <= hi+1e-9 {
		x = stats.Clamp(x+step, 0, hi)
		s := eval(x)
		evals++
		if s >= best {
			return bestX, best, evals
		}
		best, bestX = s, x
	}
	return bestX, best, evals
}

// Uniform returns the uniform weight vector of length n.
func Uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// UniformOver returns a vector of length n with uniform mass on the given
// indices (e.g. uniform-workers as a search start point).
func UniformOver(n int, idx []int) []float64 {
	w := make([]float64, n)
	if len(idx) == 0 {
		return w
	}
	for _, i := range idx {
		w[i] = 1 / float64(len(idx))
	}
	return w
}
