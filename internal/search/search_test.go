package search

import (
	"math"
	"testing"

	"bwap/internal/stats"
)

// sphere is a convex objective over the simplex with minimum at target.
func sphere(target []float64) Eval {
	return func(w []float64) float64 {
		s := 0.0
		for i := range w {
			d := w[i] - target[i]
			s += d * d
		}
		return s
	}
}

func TestHillClimbFindsSimplexOptimum(t *testing.T) {
	target := []float64{0.5, 0.3, 0.15, 0.05}
	res, err := HillClimbWeights(sphere(target), Uniform(4), 0.1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > 0.003 {
		t.Fatalf("best score %v too far from optimum (weights %v)", res.Best.Score, res.Best.Weights)
	}
	if math.Abs(stats.Sum(res.Best.Weights)-1) > 1e-9 {
		t.Fatalf("best point off the simplex: %v", res.Best.Weights)
	}
}

func TestHillClimbRespectsBudget(t *testing.T) {
	res, err := HillClimbWeights(sphere([]float64{1, 0, 0}), Uniform(3), 0.1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 25 {
		t.Fatalf("budget exceeded: %d evals", res.Evals)
	}
	if len(res.History) != res.Evals {
		t.Fatalf("history %d != evals %d", len(res.History), res.Evals)
	}
}

func TestHillClimbHistoryContainsBest(t *testing.T) {
	res, err := HillClimbWeights(sphere([]float64{0.7, 0.2, 0.1}), Uniform(3), 0.1, 120)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.History {
		if c.Score == res.Best.Score {
			found = true
		}
	}
	if !found {
		t.Fatal("best score not present in history")
	}
}

func TestHillClimbErrors(t *testing.T) {
	if _, err := HillClimbWeights(sphere(nil), nil, 0.1, 10); err == nil {
		t.Fatal("empty start accepted")
	}
	if _, err := HillClimbWeights(sphere([]float64{1}), []float64{1}, 0, 10); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := HillClimbWeights(sphere([]float64{1}), []float64{1}, 1.5, 10); err == nil {
		t.Fatal("step >= 1 accepted")
	}
	if _, err := HillClimbWeights(sphere([]float64{1}), []float64{1}, 0.1, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestTopKAndMeanTopK(t *testing.T) {
	res := &Result{History: []Candidate{
		{Score: 5}, {Score: 1}, {Score: 3}, {Score: 2}, {Score: 4},
	}}
	top := res.TopK(3)
	if top[0].Score != 1 || top[1].Score != 2 || top[2].Score != 3 {
		t.Fatalf("TopK = %v", top)
	}
	if got := res.MeanTopK(3); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanTopK = %v, want 2", got)
	}
	if got := res.TopK(99); len(got) != 5 {
		t.Fatalf("TopK clamp failed: %d", len(got))
	}
}

func TestAscend1DStopsWithinOneStep(t *testing.T) {
	// Convex objective with minimum at 0.43; fixed-step 0.1 search from 0
	// must stop at 0.4 or 0.5.
	obj := func(x float64) float64 { return (x - 0.43) * (x - 0.43) }
	bestX, _, evals := Ascend1D(obj, 0, 0.1, 1)
	if math.Abs(bestX-0.4) > 1e-9 {
		t.Fatalf("bestX = %v, want 0.4", bestX)
	}
	if evals < 5 || evals > 7 {
		t.Fatalf("evals = %d, want ~6", evals)
	}
}

func TestAscend1DMonotoneReachesEnd(t *testing.T) {
	obj := func(x float64) float64 { return -x } // always improving
	bestX, _, _ := Ascend1D(obj, 0, 0.25, 1)
	if math.Abs(bestX-1) > 1e-9 {
		t.Fatalf("bestX = %v, want 1", bestX)
	}
}

func TestAscend1DImmediateStop(t *testing.T) {
	obj := func(x float64) float64 { return x } // any step worsens
	bestX, _, evals := Ascend1D(obj, 0, 0.1, 1)
	if bestX != 0 || evals != 2 {
		t.Fatalf("bestX = %v evals = %d, want 0 after 2 evals", bestX, evals)
	}
}

func TestUniformHelpers(t *testing.T) {
	u := Uniform(4)
	if math.Abs(stats.Sum(u)-1) > 1e-12 || u[0] != 0.25 {
		t.Fatalf("Uniform = %v", u)
	}
	w := UniformOver(6, []int{1, 3})
	if w[1] != 0.5 || w[3] != 0.5 || stats.Sum(w) != 1 {
		t.Fatalf("UniformOver = %v", w)
	}
	if z := UniformOver(3, nil); stats.Sum(z) != 0 {
		t.Fatalf("UniformOver(nil) = %v", z)
	}
}

func TestPerturbFloors(t *testing.T) {
	if got := perturb([]float64{0.1, 0.9}, 0, -0.2); got != nil {
		t.Fatalf("negative weight allowed: %v", got)
	}
	got := perturb([]float64{0.5, 0.5}, 0, 0.1)
	if math.Abs(stats.Sum(got)-1) > 1e-12 {
		t.Fatalf("perturb off simplex: %v", got)
	}
}

func TestHillClimbMulti(t *testing.T) {
	target := []float64{0.6, 0.25, 0.1, 0.05}
	starts := [][]float64{Uniform(4), UniformOver(4, []int{0})}
	res, err := HillClimbMulti(sphere(target), starts, 0.1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > 0.01 {
		t.Fatalf("multi-start missed optimum: %v at %v", res.Best.Score, res.Best.Weights)
	}
	if res.Evals > 200+2 {
		t.Fatalf("budget exceeded: %d", res.Evals)
	}
	if _, err := HillClimbMulti(sphere(target), nil, 0.1, 10); err == nil {
		t.Fatal("no starts accepted")
	}
}

func TestHillClimbMultiTinyBudget(t *testing.T) {
	// Budget below the start count still evaluates every start once.
	res, err := HillClimbMulti(sphere([]float64{1, 0}), [][]float64{Uniform(2), {1, 0}}, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Fatalf("history = %d", len(res.History))
	}
}
