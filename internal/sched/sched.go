// Package sched implements the thread-placement side of the deployment:
// choosing worker node sets and pinning threads to cores. The paper
// delegates this to prior work and adopts AsymSched's rule of thumb
// (Section IV): group threads on the subset of worker nodes with the
// highest aggregate inter-worker bandwidth, then pin one thread per core.
package sched

import (
	"fmt"

	"bwap/internal/topology"
)

// InterWorkerBW scores a candidate worker set: the sum of nominal
// bandwidths over all ordered pairs of distinct workers. For a single
// worker the score is its local bandwidth.
func InterWorkerBW(m *topology.Machine, workers []topology.NodeID) float64 {
	if len(workers) == 1 {
		return m.NominalBW(workers[0], workers[0])
	}
	total := 0.0
	for _, a := range workers {
		for _, b := range workers {
			if a != b {
				total += m.NominalBW(a, b)
			}
		}
	}
	return total
}

// BestWorkerSet returns the k-node worker set with the highest aggregate
// inter-worker bandwidth (the AsymSched rule), breaking ties toward the
// lexicographically smallest set so the choice is deterministic.
func BestWorkerSet(m *topology.Machine, k int) ([]topology.NodeID, error) {
	n := m.NumNodes()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("sched: worker count %d out of [1,%d]", k, n)
	}
	all := make([]topology.NodeID, n)
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	return BestWorkerSubset(m, all, k)
}

// BestWorkerSubset is BestWorkerSet restricted to a candidate node list —
// how a fleet admission policy picks the highest-bandwidth worker set
// among a machine's currently *free* nodes. Candidates are combined in
// the order given; with an ascending list, ties resolve to the
// lexicographically smallest set, matching BestWorkerSet.
func BestWorkerSubset(m *topology.Machine, avail []topology.NodeID, k int) ([]topology.NodeID, error) {
	return BestScoredSubset(avail, k, func(sub []topology.NodeID) float64 {
		return InterWorkerBW(m, sub)
	})
}

// BestScoredSubset enumerates the k-element subsets of avail in
// lexicographic (candidate-order) position and returns the one maximizing
// score, keeping the earliest subset on ties — the deterministic
// tie-break every placement caller relies on. Scores may be negative; the
// first subset evaluated always seeds the maximum.
func BestScoredSubset(avail []topology.NodeID, k int, score func([]topology.NodeID) float64) ([]topology.NodeID, error) {
	if k <= 0 || k > len(avail) {
		return nil, fmt.Errorf("sched: worker count %d out of [1,%d]", k, len(avail))
	}
	var best []topology.NodeID
	bestScore := 0.0
	cur := make([]topology.NodeID, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			if s := score(cur); best == nil || s > bestScore+1e-12 {
				bestScore = s
				best = append(best[:0], cur...)
			}
			return
		}
		// Prune: not enough candidates left.
		need := k - len(cur)
		for i := start; i <= len(avail)-need; i++ {
			cur = append(cur, avail[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return best, nil
}

// RemainingNodes returns the machine's nodes not in the worker set, in
// ascending order — where a co-scheduled high-priority application runs.
func RemainingNodes(m *topology.Machine, workers []topology.NodeID) []topology.NodeID {
	used := make(map[topology.NodeID]bool, len(workers))
	for _, w := range workers {
		used[w] = true
	}
	var out []topology.NodeID
	for i := 0; i < m.NumNodes(); i++ {
		if !used[topology.NodeID(i)] {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// DistributeThreads spreads t threads across the workers as evenly as
// possible (the paper's canonical model assumes t is a multiple of the
// worker count; this handles the general case by giving earlier workers the
// remainder). The result maps worker position to thread count.
func DistributeThreads(t int, workers int) ([]int, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("sched: no workers")
	}
	if t < 0 {
		return nil, fmt.Errorf("sched: negative thread count %d", t)
	}
	out := make([]int, workers)
	base, rem := t/workers, t%workers
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out, nil
}

// PinAllCores returns the thread distribution that pins one thread per
// hardware thread of every worker node — how the paper deploys every
// benchmark ("we pin each thread to a distinct core").
func PinAllCores(m *topology.Machine, workers []topology.NodeID) []int {
	out := make([]int, len(workers))
	for i, w := range workers {
		out[i] = m.Node(w).Cores
	}
	return out
}
