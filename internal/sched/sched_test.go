package sched

import (
	"testing"

	"bwap/internal/topology"
)

func TestBestWorkerSetSingle(t *testing.T) {
	// With one worker the score is local bandwidth; Machine A's fastest
	// local controllers are nodes 4..7 (10.5 GB/s), so node 4 wins ties.
	m := topology.MachineA()
	w, err := BestWorkerSet(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || w[0] != 4 {
		t.Fatalf("BestWorkerSet(1) = %v, want [4]", w)
	}
}

func TestBestWorkerSetPairPrefersSamePackage(t *testing.T) {
	// Same-package pairs have the highest inter-worker BW (5.4-5.5 GB/s
	// both ways on Machine A).
	m := topology.MachineA()
	w, err := BestWorkerSet(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("set size %d", len(w))
	}
	// Must be one of the same-package pairs.
	if !(w[0]/2 == w[1]/2 && w[1] == w[0]+1) {
		t.Fatalf("BestWorkerSet(2) = %v, want a same-package pair", w)
	}
}

func TestBestWorkerSetFull(t *testing.T) {
	m := topology.MachineB()
	w, err := BestWorkerSet(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 4 {
		t.Fatalf("full set size %d", len(w))
	}
}

func TestBestWorkerSetErrors(t *testing.T) {
	m := topology.MachineB()
	if _, err := BestWorkerSet(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := BestWorkerSet(m, 5); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestBestWorkerSetDeterministic(t *testing.T) {
	m := topology.MachineA()
	a, _ := BestWorkerSet(m, 3)
	b, _ := BestWorkerSet(m, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestBestWorkerSubsetRestrictsToCandidates(t *testing.T) {
	m := topology.MachineA()
	// The global best pair is a same-package pair; exclude both members of
	// every same-package pair's low half and the subset search must pick
	// the best pair among what remains.
	avail := []topology.NodeID{1, 3, 4, 6}
	w, err := BestWorkerSubset(m, avail, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := map[topology.NodeID]bool{1: true, 3: true, 4: true, 6: true}
	for _, n := range w {
		if !in[n] {
			t.Fatalf("BestWorkerSubset chose %v outside candidates %v", w, avail)
		}
	}
	// Agreement with the unrestricted search when every node is available.
	all := []topology.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	ws, err := BestWorkerSubset(m, all, 2)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := BestWorkerSet(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wf {
		if ws[i] != wf[i] {
			t.Fatalf("full-candidate subset %v != BestWorkerSet %v", ws, wf)
		}
	}
}

func TestBestWorkerSubsetErrors(t *testing.T) {
	m := topology.MachineB()
	if _, err := BestWorkerSubset(m, []topology.NodeID{0, 1}, 3); err == nil {
		t.Fatal("k > len(avail) accepted")
	}
	if _, err := BestWorkerSubset(m, nil, 1); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestInterWorkerBWSymmetricMachine(t *testing.T) {
	m := topology.Symmetric(4, 4, 20, 10)
	// Any pair scores 2×10 on a symmetric machine.
	if got := InterWorkerBW(m, []topology.NodeID{0, 1}); got != 20 {
		t.Fatalf("pair score = %v, want 20", got)
	}
	if got := InterWorkerBW(m, []topology.NodeID{2}); got != 20 {
		t.Fatalf("single score = %v, want local 20", got)
	}
}

func TestRemainingNodes(t *testing.T) {
	m := topology.MachineA()
	rest := RemainingNodes(m, []topology.NodeID{0, 1})
	if len(rest) != 6 {
		t.Fatalf("remaining = %v", rest)
	}
	for _, r := range rest {
		if r == 0 || r == 1 {
			t.Fatalf("worker leaked into remaining: %v", rest)
		}
	}
	if len(RemainingNodes(m, nil)) != 8 {
		t.Fatal("empty worker set must leave all nodes")
	}
}

func TestDistributeThreads(t *testing.T) {
	got, err := DistributeThreads(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	sum := 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DistributeThreads = %v, want %v", got, want)
		}
		sum += got[i]
	}
	if sum != 10 {
		t.Fatalf("threads lost: %d", sum)
	}
	if _, err := DistributeThreads(4, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := DistributeThreads(-1, 2); err == nil {
		t.Fatal("negative threads accepted")
	}
}

func TestPinAllCores(t *testing.T) {
	m := topology.MachineB() // 7 cores per node
	got := PinAllCores(m, []topology.NodeID{0, 2})
	if len(got) != 2 || got[0] != 7 || got[1] != 7 {
		t.Fatalf("PinAllCores = %v", got)
	}
}
