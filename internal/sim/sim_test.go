package sim_test

import (
	"math"
	"testing"

	"bwap/internal/mm"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// testPlacer is a minimal placement policy for engine tests.
type testPlacer struct {
	mode string // "local", "uniform-all", "uniform-workers"
}

func (p testPlacer) Name() string { return "test-" + p.mode }

func (p testPlacer) Place(e *sim.Engine, a *sim.App) error {
	all := make([]topology.NodeID, e.M.NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	for _, seg := range a.Segments() {
		switch p.mode {
		case "local":
			if seg.Owner() != mm.SharedOwner {
				seg.FaultAll(seg.Owner())
			} else {
				seg.FaultAll(a.Workers[0])
			}
		case "uniform-all":
			if err := seg.Mbind(0, seg.Length(), all, mm.MoveFlag); err != nil {
				return err
			}
		case "uniform-workers":
			if err := seg.Mbind(0, seg.Length(), a.Workers, mm.MoveFlag); err != nil {
				return err
			}
		}
	}
	return nil
}

// smallSpec returns a fast-running workload for engine tests.
func smallSpec(readGBs, writeGBs, privFrac, kappa, workGB float64) workload.Spec {
	return workload.Spec{
		Name: "t", ReadGBs: readGBs, WriteGBs: writeGBs, PrivateFrac: privFrac,
		LatencySensitivity: kappa, WorkGB: workGB,
		SharedGB: 0.016, PrivateGBPerNode: 0.016,
	}
}

func TestRunCompletesAtExpectedTime(t *testing.T) {
	// Unsaturated, latency-insensitive app: achieved == demand, so
	// finish = work / demand.
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	spec := smallSpec(7, 0, 0, 0, 50) // 7 GB/s per 7-core node => 1 GB/s/thread
	app, err := e.AddApp("a", spec, []topology.NodeID{0}, testPlacer{"local"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	want := 50.0 / 7.0
	if got := res.Times["a"]; math.Abs(got-want) > 0.2 {
		t.Fatalf("finish time = %v, want ~%v", got, want)
	}
	if !app.Done() {
		t.Fatal("app not done")
	}
	if app.Progress() < 50 {
		t.Fatalf("progress = %v, want >= 50", app.Progress())
	}
}

func TestUnsaturatedAppHasNearZeroStall(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("a", smallSpec(5, 0, 0, 0, 20), []topology.NodeID{0}, testPlacer{"local"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f := app.Counters.AvgStallFraction(); f > 0.02 {
		t.Fatalf("stall fraction = %v, want ~0", f)
	}
}

func TestSaturatedAppStalls(t *testing.T) {
	// Demand 40 GB/s against a 25 GB/s local controller: stall must be
	// roughly 1 - eff*25/40.
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("a", smallSpec(40, 0, 0, 0, 200), []topology.NodeID{0}, testPlacer{"local"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	f := app.Counters.AvgStallFraction()
	if f < 0.3 || f > 0.55 {
		t.Fatalf("stall fraction = %v, want ~0.4", f)
	}
}

func TestInterleavingBeatsLocalForSaturatingApp(t *testing.T) {
	// The paper's core premise: a BW-bound app finishes sooner with pages
	// interleaved than with everything on one node.
	m := topology.MachineB()
	run := func(mode string) float64 {
		e := sim.New(m, sim.Config{})
		if _, err := e.AddApp("a", smallSpec(40, 0, 0, 0, 400), []topology.NodeID{0}, testPlacer{mode}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}
	local, spread := run("local"), run("uniform-all")
	if spread >= local {
		t.Fatalf("uniform-all (%v s) not faster than local (%v s)", spread, local)
	}
	if local/spread < 1.3 {
		t.Fatalf("speedup only %.2fx, expected clear win", local/spread)
	}
}

func TestLatencySensitiveAppPrefersLocal(t *testing.T) {
	// A latency-bound app with demand below local capacity must run faster
	// with local placement than fully spread.
	m := topology.MachineA()
	run := func(mode string) float64 {
		e := sim.New(m, sim.Config{})
		if _, err := e.AddApp("a", smallSpec(6, 0, 0, 1.2, 100), []topology.NodeID{0}, testPlacer{mode}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}
	local, spread := run("local"), run("uniform-all")
	if local >= spread {
		t.Fatalf("local (%v s) not faster than uniform-all (%v s) for latency-bound app", local, spread)
	}
}

func TestBackgroundAppDoesNotGateCompletion(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("fg", smallSpec(5, 0, 0, 0, 10), []topology.NodeID{0, 1}, testPlacer{"uniform-workers"}); err != nil {
		t.Fatal(err)
	}
	bg := workload.Swaptions
	bg.SharedGB, bg.PrivateGBPerNode = 0.016, 0.016
	if _, err := e.AddApp("bg", bg, []topology.NodeID{2, 3}, testPlacer{"local"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("background app gated completion")
	}
	if _, ok := res.Times["bg"]; ok {
		t.Fatal("background app reported a finish time")
	}
	if _, ok := res.AvgStallRate["bg"]; !ok {
		t.Fatal("background app stall rate missing")
	}
}

func TestCoScheduledContentionSlowsBoth(t *testing.T) {
	// Two saturating apps sharing memory nodes must each run slower than
	// alone.
	m := topology.MachineB()
	alone := func() float64 {
		e := sim.New(m, sim.Config{})
		if _, err := e.AddApp("a", smallSpec(40, 0, 0, 0, 200), []topology.NodeID{0, 1}, testPlacer{"uniform-all"}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}()
	together := func() float64 {
		e := sim.New(m, sim.Config{})
		if _, err := e.AddApp("a", smallSpec(40, 0, 0, 0, 200), []topology.NodeID{0, 1}, testPlacer{"uniform-all"}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AddApp("b", smallSpec(40, 0, 0, 0, 200), []topology.NodeID{2, 3}, testPlacer{"uniform-all"}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}()
	if together <= alone*1.05 {
		t.Fatalf("no contention: together %v vs alone %v", together, alone)
	}
}

func TestParallelEfficiencyAppliedToProgress(t *testing.T) {
	// With sync factor sigma, 2 workers at unsaturated demand D give rate
	// 2*D*eff(2); completion time = W / that.
	m := topology.MachineB()
	spec := smallSpec(5, 0, 0, 0, 40)
	spec.SyncFactor = 1.0 // eff(2) = 0.5 => rate 2*5*0.5 = 5 GB/s
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("a", spec, []topology.NodeID{0, 1}, testPlacer{"uniform-workers"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 40.0 / 5.0
	if got := res.Times["a"]; math.Abs(got-want) > 0.3 {
		t.Fatalf("finish = %v, want ~%v", got, want)
	}
}

func TestMigrationChargesOverhead(t *testing.T) {
	// A hook that keeps migrating pages back and forth must slow the app
	// down.
	m := topology.MachineB()
	spec := smallSpec(10, 0, 0, 0, 100)
	spec.SharedGB = 0.128 // enough pages that churn costs real bandwidth
	base := func(withChurn bool) float64 {
		e := sim.New(m, sim.Config{})
		app, err := e.AddApp("a", spec, []topology.NodeID{0}, testPlacer{"uniform-all"})
		if err != nil {
			t.Fatal(err)
		}
		if withChurn {
			e.AddHook(churnHook{app: app})
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}
	calm, churned := base(false), base(true)
	if churned <= calm*1.02 {
		t.Fatalf("migration churn free of charge: %v vs %v", churned, calm)
	}
}

type churnHook struct{ app *sim.App }

func (h churnHook) Tick(e *sim.Engine) {
	seg := h.app.SharedSegment()
	// Alternate between two placements to generate endless migrations.
	if e.Ticks()%2 == 0 {
		seg.Mbind(0, seg.Length(), []topology.NodeID{0, 1}, mm.MoveFlag)
	} else {
		seg.Mbind(0, seg.Length(), []topology.NodeID{2, 3}, mm.MoveFlag)
	}
}

func TestHooksRunEveryTick(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("a", smallSpec(5, 0, 0, 0, 5), []topology.NodeID{0}, testPlacer{"local"}); err != nil {
		t.Fatal(err)
	}
	count := 0
	e.AddHook(hookFunc(func(*sim.Engine) { count++ }))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != e.Ticks() {
		t.Fatalf("hook ran %d times over %d ticks", count, e.Ticks())
	}
	if count == 0 {
		t.Fatal("hook never ran")
	}
}

type hookFunc func(*sim.Engine)

func (f hookFunc) Tick(e *sim.Engine) { f(e) }

func TestErrors(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	spec := smallSpec(5, 0, 0, 0, 5)
	if _, err := e.AddApp("a", spec, nil, testPlacer{"local"}); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := e.AddApp("a", spec, []topology.NodeID{9}, testPlacer{"local"}); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if _, err := e.AddApp("a", spec, []topology.NodeID{0, 0}, testPlacer{"local"}); err == nil {
		t.Fatal("duplicate worker accepted")
	}
	if _, err := e.AddApp("a", spec, []topology.NodeID{0}, nil); err == nil {
		t.Fatal("nil placer accepted")
	}
	if _, err := e.AddApp("a", spec, []topology.NodeID{0}, testPlacer{"local"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddApp("a", spec, []topology.NodeID{1}, testPlacer{"local"}); err == nil {
		t.Fatal("duplicate app name accepted")
	}
	// Engine with only background apps cannot run.
	e2 := sim.New(m, sim.Config{})
	bg := workload.Swaptions
	bg.SharedGB, bg.PrivateGBPerNode = 0.016, 0.016
	if _, err := e2.AddApp("bg", bg, []topology.NodeID{0}, testPlacer{"local"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err == nil {
		t.Fatal("background-only run accepted")
	}
}

type lazyPlacer struct{}

func (lazyPlacer) Name() string                      { return "lazy" }
func (lazyPlacer) Place(*sim.Engine, *sim.App) error { return nil }

func TestUnmappedPagesRejected(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("a", smallSpec(5, 0, 0, 0, 5), []topology.NodeID{0}, lazyPlacer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("run accepted a policy that mapped nothing")
	}
}

func TestMaxTimeAborts(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{MaxTime: 1.0})
	if _, err := e.AddApp("a", smallSpec(1, 0, 0, 0, 1e6), []topology.NodeID{0}, testPlacer{"local"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("run did not report timeout")
	}
	if !math.IsInf(res.Times["a"], 1) {
		t.Fatal("unfinished app must report +Inf time")
	}
}

func TestDeterminism(t *testing.T) {
	m := topology.MachineA()
	run := func() (float64, float64) {
		e := sim.New(m, sim.Config{Seed: 42})
		app, err := e.AddApp("a", smallSpec(30, 10, 0.5, 0.2, 150), []topology.NodeID{0, 1}, testPlacer{"uniform-all"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"], app.Counters.StalledCycles
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", t1, s1, t2, s2)
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	spec := smallSpec(8, 2, 0.4, 0, 30)
	app, err := e.AddApp("a", spec, []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	c := app.Counters
	if c.BytesRead <= 0 || c.BytesWritten <= 0 {
		t.Fatal("read/write counters empty")
	}
	// Read:write ratio must mirror the demand mix 8:2.
	if ratio := c.BytesRead / c.BytesWritten; math.Abs(ratio-4) > 0.2 {
		t.Fatalf("read/write ratio = %v, want ~4", ratio)
	}
	if c.SharedBytes <= 0 || c.PrivateBytes <= 0 {
		t.Fatal("class counters empty")
	}
	// Private fraction of traffic must be near the spec's 0.4.
	if frac := c.PrivateBytes / (c.PrivateBytes + c.SharedBytes); math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("private traffic fraction = %v, want ~0.4", frac)
	}
	// Pair traffic only from nodes holding pages (workers 0,1).
	if c.PairBytes[2][0] != 0 || c.PairBytes[3][1] != 0 {
		t.Fatal("traffic from nodes without pages")
	}
}

func TestNextSeedDistinct(t *testing.T) {
	e := sim.New(topology.MachineB(), sim.Config{Seed: 1})
	a, b := e.NextSeed(), e.NextSeed()
	if a == b {
		t.Fatal("NextSeed repeated")
	}
}

func TestStableSince(t *testing.T) {
	e := sim.New(topology.MachineB(), sim.Config{StableAfter: 2.5})
	app, err := e.AddApp("a", smallSpec(5, 0, 0, 0, 5), []topology.NodeID{0}, testPlacer{"local"})
	if err != nil {
		t.Fatal(err)
	}
	if got := app.StableSince(e.Cfg); got != 2.5 {
		t.Fatalf("StableSince = %v, want 2.5", got)
	}
}
