package sim_test

import (
	"testing"

	"bwap/internal/sim"
	"bwap/internal/topology"
)

// countingHook records how many ticks it observed.
type countingHook struct{ ticks int }

func (h *countingHook) Tick(*sim.Engine) { h.ticks++ }

// TestIncrementalRunMatchesBatchRun drives the engine with the
// run-until-event primitives (PlaceApp + AdvanceTo + Step) and checks the
// app finishes at the same simulated time as a conventional Run.
func TestIncrementalRunMatchesBatchRun(t *testing.T) {
	m := topology.MachineB()
	spec := smallSpec(7, 0, 0, 0, 50)

	ref := sim.New(m, sim.Config{})
	if _, err := ref.AddApp("a", spec, []topology.NodeID{0}, testPlacer{mode: "local"}); err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := res.Times["a"]

	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("a", spec, []topology.NodeID{0}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceApp(app); err != nil {
		t.Fatal(err)
	}
	// Advance in uneven chunks, then tick to completion.
	e.AdvanceTo(1.0)
	if app.Done() {
		t.Fatalf("app done after 1s, expected ~%.1fs", want)
	}
	e.AdvanceTo(3.7)
	for i := 0; !app.Done() && i < 100000; i++ {
		e.Step()
	}
	if !app.Done() {
		t.Fatal("app never finished under Step loop")
	}
	if got := app.FinishTime(); got != want {
		t.Fatalf("incremental finish %.6f, batch finish %.6f", got, want)
	}
}

// TestMidRunArrival adds a second app while the first is in flight: the
// late app must start at the engine's current time and both must finish.
func TestMidRunArrival(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	a1, err := e.AddApp("first", smallSpec(7, 0, 0, 0, 40), []topology.NodeID{0}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceApp(a1); err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(2.0)

	spec2 := smallSpec(7, 0, 0, 0, 40)
	spec2.Name = "second"
	a2, err := e.AddApp("second", spec2, []topology.NodeID{1}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceApp(a2); err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(200)
	if !a1.Done() || !a2.Done() {
		t.Fatalf("done: first=%v second=%v, want both", a1.Done(), a2.Done())
	}
	if a2.FinishTime() <= a1.FinishTime() {
		t.Fatalf("late arrival finished at %.2f, before first app's %.2f", a2.FinishTime(), a1.FinishTime())
	}
}

// TestRemoveAppDetachesOwnedHooks removes a departed app and checks its
// hooks stop ticking while global hooks keep running, and that the engine
// keeps advancing the remaining app correctly.
func TestRemoveAppDetachesOwnedHooks(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	a1, err := e.AddApp("short", smallSpec(7, 0, 0, 0, 20), []topology.NodeID{0}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	long := smallSpec(7, 0, 0, 0, 60)
	long.Name = "long"
	a2, err := e.AddApp("long", long, []topology.NodeID{1}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*sim.App{a1, a2} {
		if err := e.PlaceApp(a); err != nil {
			t.Fatal(err)
		}
	}
	owned := &countingHook{}
	global := &countingHook{}
	e.AddAppHook(a1, owned)
	e.AddHook(global)

	for !a1.Done() {
		e.Step()
	}
	ownedTicks := owned.ticks
	if err := e.RemoveApp(a1); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveApp(a1); err == nil {
		t.Fatal("second RemoveApp succeeded, want error")
	}
	e.AdvanceTo(e.Now() + 5)
	if owned.ticks != ownedTicks {
		t.Fatalf("owned hook ticked %d more times after RemoveApp", owned.ticks-ownedTicks)
	}
	if global.ticks <= ownedTicks {
		t.Fatalf("global hook stopped ticking (%d)", global.ticks)
	}
	if len(e.Apps()) != 1 || e.Apps()[0] != a2 {
		t.Fatalf("apps after removal: %d", len(e.Apps()))
	}
	e.AdvanceTo(200)
	if !a2.Done() {
		t.Fatal("remaining app never finished after RemoveApp reindexing")
	}
}

// TestUnplacedAppDoesNotRun ensures an app added without PlaceApp is inert.
func TestUnplacedAppDoesNotRun(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("idle", smallSpec(7, 0, 0, 0, 20), []topology.NodeID{0}, testPlacer{mode: "local"})
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(5)
	if app.Progress() != 0 || app.Done() {
		t.Fatalf("unplaced app made progress %.3f GB", app.Progress())
	}
	if err := e.PlaceApp(app); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceApp(app); err == nil {
		t.Fatal("double PlaceApp succeeded, want error")
	}
	e.AdvanceTo(200)
	if !app.Done() {
		t.Fatal("app never ran after late placement")
	}
}
