package sim_test

import (
	"math"
	"testing"

	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TestCompletionHorizonNeverContainsACompletion pins the conservative-
// lookahead bound the fleet's windowed engine is built on: ticks inside a
// predicted horizon must not complete any app, under full Step dynamics —
// phase curves, init bursts, co-runners, migration backlogs — and with
// fast-forward both on and off. The horizon needs no quiescence, so it is
// re-queried after every window and must also make progress (the run may
// not be starved by an always-zero horizon).
func TestCompletionHorizonNeverContainsACompletion(t *testing.T) {
	for _, sc := range ffScenarios() {
		if sc.name == "autonuma-churn" {
			continue // hook-driven; covered by TestCompletionHorizonZeroWithHooks
		}
		for _, disable := range []bool{false, true} {
			e := sim.New(topology.MachineB(), sim.Config{Seed: 7, DisableFastForward: disable})
			sc.build(t, e)
			var apps []*sim.App
			for _, app := range e.Apps() {
				if err := e.PlaceApp(app); err != nil {
					t.Fatal(err)
				}
				if !app.Background {
					apps = append(apps, app)
				}
			}
			if len(apps) == 0 {
				t.Fatalf("%s: no foreground apps found", sc.name)
			}
			doneCount := func() int {
				n := 0
				for _, a := range apps {
					if a.Done() {
						n++
					}
				}
				return n
			}
			horizonSum, windows := 0, 0
			for tick := 0; doneCount() < len(apps); {
				if tick > 1_000_000 {
					t.Fatalf("%s: run did not finish within 1M ticks", sc.name)
				}
				h := e.CompletionHorizonTicks(1 << 20)
				before := doneCount()
				for i := 0; i < h; i++ {
					e.Step()
					tick++
					if got := doneCount(); got != before {
						t.Fatalf("%s (disableFF=%v): app completed %d ticks into a %d-tick horizon",
							sc.name, disable, i+1, h)
					}
				}
				horizonSum += h
				windows++
				// One unguarded tick past the horizon keeps the loop moving
				// even when a completion is imminent (h == 0).
				e.Step()
				tick++
			}
			if horizonSum == 0 {
				t.Fatalf("%s (disableFF=%v): horizon never exceeded zero; the bound is vacuous", sc.name, disable)
			}
		}
	}
}

// TestCompletionHorizonPhaseAware pins the sharpening of the per-phase
// completion bound: demand peaks the app has already moved past — an
// expired init burst, an early high-demand phase — must no longer shrink
// the horizon. The old bound majorized by the lifetime peak, so an app
// that burned 3× demand in its first 5% of work kept a 3×-too-small
// horizon for the remaining 95%. Each pair advances a phased/bursty app
// and a plain one to the same progress point, where both provably face
// only factor-1 demand until completion; the horizons must then agree to
// well within the old peak factor.
func TestCompletionHorizonPhaseAware(t *testing.T) {
	horizonAt := func(spec workload.Spec, minFrac, minNow float64) int {
		e := sim.New(topology.MachineB(), sim.Config{Seed: 7})
		app := addApp(t, e, "a", spec, []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
		if err := e.PlaceApp(app); err != nil {
			t.Fatal(err)
		}
		for app.Progress()/spec.WorkGB < minFrac || e.Now() < minNow {
			if app.Done() {
				t.Fatalf("%s finished before reaching the probe point", spec.Name)
			}
			e.Step()
		}
		return e.CompletionHorizonTicks(1 << 20)
	}

	plain := horizonAt(ffSpec(40), 0.1, 0)
	if plain == 0 {
		t.Fatal("plain horizon is zero; the comparison is vacuous")
	}

	phased := ffSpec(40)
	phased.Name = "early-peak"
	phased.Phases = []workload.Phase{
		{AtWorkFraction: 0.02, DemandFactor: 3, LatencyFactor: 1},
		{AtWorkFraction: 0.08, DemandFactor: 1, LatencyFactor: 1},
	}
	if h := horizonAt(phased, 0.1, 0); h < plain/2 {
		t.Errorf("passed 3x phase still shrinks the horizon: %d vs plain %d", h, plain)
	}

	bursty := ffSpec(40)
	bursty.Name = "init-burst"
	bursty.InitSeconds = 0.5
	bursty.InitDemandFactor = 5
	if h := horizonAt(bursty, 0.1, 1.0); h < plain/2 {
		t.Errorf("expired init burst still shrinks the horizon: %d vs plain %d", h, plain)
	}
}

// TestCompletionHorizonZeroWithHooks: hooks may mutate placement (and in
// principle progress) mid-window, so the horizon must refuse to predict.
func TestCompletionHorizonZeroWithHooks(t *testing.T) {
	e := sim.New(topology.MachineB(), sim.Config{Seed: 7})
	app := addApp(t, e, "a", ffSpec(30), []topology.NodeID{0, 1}, &policy.AutoNUMA{})
	e.AddAppHook(app, &policy.AutoNUMA{})
	if h := e.CompletionHorizonTicks(100); h != 0 {
		t.Fatalf("horizon %d with hooks registered, want 0", h)
	}
}

// TestSnapLatFeedbackConvergence pins the v2 bit-compat break's two
// claims: with SnapLatFeedback the engine replays strictly more ticks on
// a perturbed workload (the sub-ULP latEpoch churn is gone), and the
// simulated outcome moves by at most a hair — the multipliers freeze
// within 64 ULPs of the exact fixed point, so completion times shift at
// most in the last couple of float digits.
func TestSnapLatFeedbackConvergence(t *testing.T) {
	skipIfNoFF(t)
	run := func(snap bool) (*sim.Result, *sim.Engine) {
		e := sim.New(topology.MachineB(), sim.Config{Seed: 7, SnapLatFeedback: snap})
		spec := ffSpec(200) // long enough for the feedback to converge at all
		spec.Phases = []workload.Phase{
			{AtWorkFraction: 0.25, DemandFactor: 1.6, LatencyFactor: 0.8},
			{AtWorkFraction: 0.7, DemandFactor: 0.5, LatencyFactor: 1.4},
		}
		addApp(t, e, "a", spec, []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, e
	}
	base, be := run(false)
	snap, se := run(true)
	_, baseReplays := be.FastForwardStats()
	_, snapReplays := se.FastForwardStats()
	if snapReplays <= baseReplays {
		t.Fatalf("snap replays %d ticks, base %d — the snap bought nothing", snapReplays, baseReplays)
	}
	bt, st := base.Times["a"], snap.Times["a"]
	if math.Abs(bt-st) > 1e-6*bt {
		t.Fatalf("snap moved the completion time materially: %.12g vs %.12g", bt, st)
	}
	t.Logf("replays %d -> %d, finish %.9g -> %.9g", baseReplays, snapReplays, bt, st)
}
