package sim_test

import (
	"math"
	"os"
	"testing"

	"bwap/internal/perf"
	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// The fast-forward equivalence tests pin the tentpole acceptance
// criterion at the engine layer: with fast-forward on, every Result,
// counter and clock value must be byte-identical to the naive
// solve-every-tick loop, across phase changes, init bursts, co-scheduled
// contention, migration backlogs and hook-driven placement churn.

// ffScenario populates an engine with a workload mix; the same function
// runs once with fast-forward enabled and once disabled.
type ffScenario struct {
	name  string
	build func(t *testing.T, e *sim.Engine)
}

// skipIfNoFF skips the fast-forward tests when the BWAP_NO_FASTFORWARD=1
// CI knob is set: the knob overrides Config.DisableFastForward in
// withDefaults, so under it every engine takes the naive path and an
// on-vs-off comparison would silently compare naive against naive —
// passing without exercising the replay code at all. The knob run's job
// is the rest of the suite on the reference loop; these tests belong to
// the normal run.
func skipIfNoFF(t *testing.T) {
	t.Helper()
	if os.Getenv("BWAP_NO_FASTFORWARD") == "1" {
		t.Skip("BWAP_NO_FASTFORWARD=1 forces the naive path everywhere; on-vs-off comparison would be vacuous")
	}
}

func ffSpec(workGB float64) workload.Spec {
	return workload.Spec{
		Name: "ff", ReadGBs: 7, WriteGBs: 1.5, PrivateFrac: 0.4,
		LatencySensitivity: 0.6, WorkGB: workGB,
		SharedGB: 0.016, PrivateGBPerNode: 0.016,
	}
}

func addApp(t *testing.T, e *sim.Engine, name string, spec workload.Spec, workers []topology.NodeID, p sim.Placer) *sim.App {
	t.Helper()
	app, err := e.AddApp(name, spec, workers, p)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func ffScenarios() []ffScenario {
	return []ffScenario{
		{"steady", func(t *testing.T, e *sim.Engine) {
			addApp(t, e, "a", ffSpec(40), []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
		}},
		{"init-burst", func(t *testing.T, e *sim.Engine) {
			spec := ffSpec(30).WithInitPhase(1.7, 0.5)
			addApp(t, e, "a", spec, []topology.NodeID{0}, testPlacer{"local"})
		}},
		{"phase-curve", func(t *testing.T, e *sim.Engine) {
			spec := ffSpec(35)
			spec.Phases = []workload.Phase{
				{AtWorkFraction: 0.25, DemandFactor: 1.6, LatencyFactor: 0.8},
				{AtWorkFraction: 0.7, DemandFactor: 0.5, LatencyFactor: 1.4},
			}
			addApp(t, e, "a", spec, []topology.NodeID{0, 1}, testPlacer{"uniform-all"})
		}},
		{"co-scheduled-background", func(t *testing.T, e *sim.Engine) {
			addApp(t, e, "fg", ffSpec(25), []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
			bg := ffSpec(0)
			bg.Name = "bg"
			bg.ComputeBound = true
			addApp(t, e, "bg", bg, []topology.NodeID{2, 3}, testPlacer{"local"})
		}},
		{"staggered-completions", func(t *testing.T, e *sim.Engine) {
			addApp(t, e, "short", ffSpec(12), []topology.NodeID{0}, testPlacer{"local"})
			long := ffSpec(45)
			long.Name = "long"
			addApp(t, e, "long", long, []topology.NodeID{2, 3}, testPlacer{"uniform-workers"})
		}},
		{"autonuma-churn", func(t *testing.T, e *sim.Engine) {
			// A per-tick hook that migrates pages: placement epochs must
			// invalidate the cached solve exactly when migrations land.
			addApp(t, e, "a", ffSpec(30), []topology.NodeID{0, 1}, &policy.AutoNUMA{})
		}},
	}
}

func runFF(t *testing.T, sc ffScenario, disable bool) (*sim.Result, *sim.Engine) {
	t.Helper()
	e := sim.New(topology.MachineB(), sim.Config{Seed: 7, DisableFastForward: disable})
	sc.build(t, e)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, e
}

// sameCounters fails unless the two apps' PMU state is bit-identical.
func sameCounters(t *testing.T, name string, a, b *perf.Counters) {
	t.Helper()
	if a.Time != b.Time || a.StalledCycles != b.StalledCycles || a.Cycles != b.Cycles ||
		a.Instructions != b.Instructions || a.BytesRead != b.BytesRead ||
		a.BytesWritten != b.BytesWritten || a.SharedBytes != b.SharedBytes ||
		a.PrivateBytes != b.PrivateBytes {
		t.Fatalf("%s: scalar counters diverge:\n%+v\n%+v", name, a, b)
	}
	for n := range a.NodeOutBytes {
		if a.NodeOutBytes[n] != b.NodeOutBytes[n] {
			t.Fatalf("%s: NodeOutBytes[%d] %v != %v", name, n, a.NodeOutBytes[n], b.NodeOutBytes[n])
		}
		for d := range a.PairBytes[n] {
			if a.PairBytes[n][d] != b.PairBytes[n][d] {
				t.Fatalf("%s: PairBytes[%d][%d] %v != %v", name, n, d, a.PairBytes[n][d], b.PairBytes[n][d])
			}
		}
	}
}

// TestFastForwardEquivalence pins byte-equality of the memoized tick loop
// against the naive reference across every scenario class the engine
// models.
func TestFastForwardEquivalence(t *testing.T) {
	skipIfNoFF(t)
	for _, sc := range ffScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			on, onEng := runFF(t, sc, false)
			off, offEng := runFF(t, sc, true)

			if on.Elapsed != off.Elapsed || on.TimedOut != off.TimedOut {
				t.Fatalf("run shape diverges: %+v vs %+v", on, off)
			}
			for name, tOn := range on.Times {
				if tOff, ok := off.Times[name]; !ok || tOn != tOff {
					t.Fatalf("Times[%s]: %v (on) != %v (off)", name, tOn, tOff)
				}
			}
			for name, sOn := range on.AvgStallRate {
				if sOff := off.AvgStallRate[name]; sOn != sOff {
					t.Fatalf("AvgStallRate[%s]: %v (on) != %v (off)", name, sOn, sOff)
				}
			}
			if onEng.Now() != offEng.Now() || onEng.Ticks() != offEng.Ticks() {
				t.Fatalf("clock diverges: %v/%d vs %v/%d",
					onEng.Now(), onEng.Ticks(), offEng.Now(), offEng.Ticks())
			}
			for i, appOn := range onEng.Apps() {
				appOff := offEng.Apps()[i]
				if appOn.Progress() != appOff.Progress() {
					t.Fatalf("%s: progress %v != %v", appOn.Name, appOn.Progress(), appOff.Progress())
				}
				sameCounters(t, appOn.Name, appOn.Counters, appOff.Counters)
			}
			if _, replays := offEng.FastForwardStats(); replays != 0 {
				t.Fatalf("disabled engine replayed %d ticks", replays)
			}
		})
	}
}

// TestFastForwardEngages guards the equivalence suite against passing
// vacuously: once the latency feedback reaches its floating-point fixed
// point (a few dozen ticks), a long quiescent run must replay the
// overwhelming majority of its ticks.
func TestFastForwardEngages(t *testing.T) {
	skipIfNoFF(t)
	sc := ffScenario{"long-steady", func(t *testing.T, e *sim.Engine) {
		addApp(t, e, "a", ffSpec(2000), []topology.NodeID{0, 1}, testPlacer{"uniform-workers"})
	}}
	_, eng := runFF(t, sc, false)
	solves, replays := eng.FastForwardStats()
	if replays == 0 {
		t.Fatal("fast-forward never engaged")
	}
	if solves > eng.Ticks()/10 {
		t.Fatalf("only %d of %d ticks replayed (%d solves) on a quiescent run",
			replays, eng.Ticks(), solves)
	}
}

// TestAdvanceToQuiescentMatchesAdvanceTo drives two engines through the
// same uneven advance schedule — one on the checked per-tick path, one on
// the batched replay path — and demands identical clocks, progress and
// completion times.
func TestAdvanceToQuiescentMatchesAdvanceTo(t *testing.T) {
	skipIfNoFF(t)
	build := func() (*sim.Engine, *sim.App) {
		e := sim.New(topology.MachineB(), sim.Config{Seed: 3})
		app := addApp(t, e, "a", ffSpec(40).WithInitPhase(1.1, 0.6), []topology.NodeID{0, 1},
			testPlacer{"uniform-workers"})
		if err := e.PlaceApp(app); err != nil {
			t.Fatal(err)
		}
		return e, app
	}
	ref, refApp := build()
	fast, fastApp := build()
	for _, target := range []float64{0.5, 1.05, 2.0, 7.33, 30, 200} {
		ref.AdvanceTo(target)
		fast.AdvanceToQuiescent(target)
		if ref.Now() != fast.Now() || ref.Ticks() != fast.Ticks() {
			t.Fatalf("at target %v: clock %v/%d vs %v/%d",
				target, ref.Now(), ref.Ticks(), fast.Now(), fast.Ticks())
		}
		if refApp.Progress() != fastApp.Progress() {
			t.Fatalf("at target %v: progress %v vs %v", target, refApp.Progress(), fastApp.Progress())
		}
	}
	if !refApp.Done() || !fastApp.Done() {
		t.Fatal("apps did not finish")
	}
	if refApp.FinishTime() != fastApp.FinishTime() {
		t.Fatalf("finish %v vs %v", refApp.FinishTime(), fastApp.FinishTime())
	}
	if _, replays := fast.FastForwardStats(); replays == 0 {
		t.Fatal("AdvanceToQuiescent never replayed")
	}
	sameCounters(t, "a", refApp.Counters, fastApp.Counters)
}

// TestAdvanceToIntegerTicks pins the float-drift fix: the tick count of a
// long advance must equal the drift-free count computed from (t-now)/DT,
// and chunked advances must land on the same total as one big advance.
func TestAdvanceToIntegerTicks(t *testing.T) {
	e := sim.New(topology.MachineB(), sim.Config{})
	app := addApp(t, e, "a", ffSpec(0.001), []topology.NodeID{0}, testPlacer{"local"})
	if err := e.PlaceApp(app); err != nil {
		t.Fatal(err)
	}
	const target = 5000.0
	e.AdvanceTo(target)
	if want := int(math.Round(target / 0.1)); e.Ticks() != want {
		t.Fatalf("AdvanceTo(%v) ran %d ticks, want %d", target, e.Ticks(), want)
	}

	chunked := sim.New(topology.MachineB(), sim.Config{})
	app2 := addApp(t, chunked, "a", ffSpec(0.001), []topology.NodeID{0}, testPlacer{"local"})
	if err := chunked.PlaceApp(app2); err != nil {
		t.Fatal(err)
	}
	for at := 0.7; at < target; at += 13.7 {
		chunked.AdvanceTo(at)
	}
	chunked.AdvanceTo(target)
	if chunked.Ticks() != e.Ticks() {
		t.Fatalf("chunked advance ran %d ticks, single advance %d", chunked.Ticks(), e.Ticks())
	}
}
