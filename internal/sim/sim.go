// Package sim is the discrete-time execution engine of the reproduction.
//
// It binds together a machine (topology), its contended memory system
// (memsys), per-application address spaces (mm) and simulated performance
// counters (perf), then advances simulated time in fixed ticks. Each tick:
//
//  1. every running application turns its per-thread memory demand
//     (workload.Spec) into flows, split by page class (shared vs
//     thread-private) and by the current page placement of each class's
//     segments, throttled by the placement-weighted mean access latency;
//  2. the flow set of all co-scheduled applications is solved jointly for
//     demand-bounded max-min fair rates;
//  3. achieved bandwidth becomes application progress (scaled by parallel
//     efficiency), pays for any pending page-migration traffic, and is
//     accounted into PMU-style counters (stalled cycles, per-node and
//     per-pair throughput);
//  4. controller utilization feeds back into next tick's access latency
//     (queueing), and registered hooks — the BWAP tuners, AutoNUMA — run.
//
// Execution time of an application is the simulated time at which its work
// volume completes, the metric every figure of the paper reports.
package sim

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"

	"bwap/internal/memsys"
	"bwap/internal/mm"
	"bwap/internal/perf"
	"bwap/internal/sched"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// noFastForwardEnv reports whether the BWAP_NO_FASTFORWARD=1 environment
// knob forces the naive per-tick solve path — the CI switch that keeps the
// reference implementation exercised.
var noFastForwardEnv = sync.OnceValue(func() bool {
	return os.Getenv("BWAP_NO_FASTFORWARD") == "1"
})

// Placer is a page-placement policy: it performs the initial placement of
// an application's segments when the application starts. Policies that also
// act at runtime (AutoNUMA, the BWAP DWP tuner) additionally implement Hook
// and register themselves with the engine.
type Placer interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Place performs the initial placement of app's address space.
	Place(e *Engine, app *App) error
}

// Hook runs at the end of every engine tick, after counters are updated.
type Hook interface {
	Tick(e *Engine)
}

// Config tunes the engine. The zero value is completed by defaults.
//
// Mem and LatQueueFactor are pointers so that an explicit zero/disabled
// setting is distinguishable from "unset": nil selects the default, while
// a pointer to a zero value really means zero (e.g. LatQueueFactor
// pointing at 0 disables the queueing latency feedback entirely). Use
// FloatPtr and MemPtr to build them inline.
type Config struct {
	// DT is the tick length in simulated seconds (default 0.1).
	DT float64
	// MaxTime aborts the run after this much simulated time (default 3600).
	MaxTime float64
	// Mem configures the contention model; nil selects
	// memsys.DefaultConfig().
	Mem *memsys.Config
	// MigrationGBs is the bandwidth budget for draining page-migration
	// backlog, per application (default 2.0 GB/s). Migration traffic is
	// stolen from the application's achieved bandwidth, which is how the
	// DWP tuner's overhead arises.
	MigrationGBs float64
	// LatQueueFactor scales the utilization-dependent latency multiplier
	// on loaded memory controllers: mult = 1 + f·u²/(1.02−u). nil selects
	// the default 0.35; a pointer to 0 disables the feedback.
	LatQueueFactor *float64
	// LatSmoothing is the exponential smoothing factor for the latency
	// feedback across ticks, in (0,1] (default 0.5).
	LatSmoothing float64
	// DemandFactor uniformly scales per-thread demand on this machine
	// relative to the Table I reference measurement (default 1.0). The
	// Machine A experiment profile raises it: its cores were measured to
	// saturate their far weaker controllers (Section II).
	DemandFactor float64
	// StableAfter is the simulated time after an application's start at
	// which it enters its stable phase and calls BWAP-init (default 1.0 s).
	StableAfter float64
	// Seed derives the noise streams of any samplers hooks create.
	Seed uint64
	// DisableFastForward turns off the quiescent-interval fast-forward:
	// every tick rebuilds its flow set and runs a full memsys solve, even
	// when the inputs are provably unchanged. The fast path is bit-identical
	// to this naive loop by construction; the switch keeps the naive loop
	// alive as the reference implementation (the BWAP_NO_FASTFORWARD=1
	// environment knob forces it on for a whole test run).
	DisableFastForward bool
	// SnapLatFeedback freezes the latency-feedback smoothing once an
	// update would move a multiplier by at most latSnapRel of its value:
	// the controller has reached its floating-point fixed point for all
	// practical purposes, and chasing the last few ULPs only keeps
	// latEpoch churning, which blocks the replay path for dozens of ticks
	// after every perturbation. This deliberately changes results at the
	// last-ULP level relative to the default loop — a versioned
	// bit-compat break, opted into by the fleet's engine v2 (DESIGN.md
	// §12) and never enabled for the frozen v1 reference logs.
	SnapLatFeedback bool
}

// FloatPtr returns a pointer to v, for the Config fields where nil means
// "use the default" and a pointer to zero means "explicitly zero".
func FloatPtr(v float64) *float64 { return &v }

// MemPtr returns a pointer to a copy of cfg for Config.Mem.
func MemPtr(cfg memsys.Config) *memsys.Config { return &cfg }

func (c Config) withDefaults() Config {
	if c.DT <= 0 {
		c.DT = 0.1
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 3600
	}
	if c.Mem == nil {
		c.Mem = MemPtr(memsys.DefaultConfig())
	}
	if c.MigrationGBs <= 0 {
		c.MigrationGBs = 2.0
	}
	if c.LatQueueFactor == nil {
		c.LatQueueFactor = FloatPtr(0.35)
	}
	if c.LatSmoothing <= 0 || c.LatSmoothing > 1 {
		c.LatSmoothing = 0.5
	}
	if c.DemandFactor <= 0 {
		c.DemandFactor = 1.0
	}
	if noFastForwardEnv() {
		c.DisableFastForward = true
	}
	if c.StableAfter <= 0 {
		c.StableAfter = defaultStableAfter
	}
	return c
}

// defaultStableAfter is the default stable-phase delay; StableSince must
// agree with withDefaults even when handed a raw Config.
const defaultStableAfter = 1.0

// App is one running application instance.
type App struct {
	Name    string
	Spec    workload.Spec
	Workers []topology.NodeID
	// Threads[i] is the thread count pinned on Workers[i] (one per core by
	// default, the paper's deployment rule).
	Threads []int
	// AS is the application's simulated address space.
	AS *mm.AddressSpace
	// Counters accumulates the app's simulated PMU state.
	Counters *perf.Counters
	// Background marks co-runners that never finish (Swaptions); the run
	// ends when all foreground apps finish.
	Background bool

	placer      Placer
	shared      *mm.Segment
	privSeg     []*mm.Segment // indexed like Workers; nil without private data
	workerIndex map[topology.NodeID]int
	// index is the app's position in the engine's app list; the tick loop
	// uses it to attribute flows through flat slices instead of maps.
	index int

	start float64
	// progressGB[i] tracks the work completed by the threads of Workers[i];
	// the run finishes when the slowest worker completes its share — the
	// "slowest worker dominates" semantic of the paper's Equation 3.
	progressGB []float64
	// tickByWorker is per-tick achieved-bandwidth scratch, reused across
	// ticks to keep the loop allocation-free.
	tickByWorker []float64
	workGB       float64
	migBacklogGB float64
	placed       bool
	done         bool
	finish       float64

	lastStallFrac float64
	lastAchieved  float64
	lastDemand    float64

	// Quiescence bookkeeping, recorded when the engine caches a flow solve:
	// the placement epoch and phase factors the solve was built from, and
	// the total progress (GB) at which the app's next phase boundary falls
	// (+Inf when none). A replayed tick is valid only while these still
	// describe the app.
	solveASEpoch uint64
	solvePhase   float64
	solveKappa   float64
	nextPhaseGB  float64
}

// SharedSegment returns the app's shared-data segment (nil if the workload
// has no shared accesses).
func (a *App) SharedSegment() *mm.Segment { return a.shared }

// PrivateSegment returns the private segment owned by worker node w, or nil.
func (a *App) PrivateSegment(w topology.NodeID) *mm.Segment {
	if wi, ok := a.workerIndex[w]; ok && a.privSeg != nil {
		return a.privSeg[wi]
	}
	return nil
}

// Segments returns all of the app's segments.
func (a *App) Segments() []*mm.Segment { return a.AS.Segments() }

// Done reports whether the app completed its work.
func (a *App) Done() bool { return a.done }

// FinishTime returns the simulated completion time; meaningless until Done.
func (a *App) FinishTime() float64 { return a.finish }

// Progress returns total completed work in equivalent GB, summed over
// workers.
func (a *App) Progress() float64 {
	total := 0.0
	for _, p := range a.progressGB {
		total += p
	}
	return total
}

// WorkerProgress returns the completed work of Workers[i] in GB.
func (a *App) WorkerProgress(i int) float64 { return a.progressGB[i] }

// StallFraction returns the stall fraction of the most recent tick.
func (a *App) StallFraction() float64 { return a.lastStallFrac }

// AchievedGBs returns the achieved bandwidth of the most recent tick.
func (a *App) AchievedGBs() float64 { return a.lastAchieved }

// DemandGBs returns the unthrottled demand of the most recent tick.
func (a *App) DemandGBs() float64 { return a.lastDemand }

// Placer returns the app's placement policy.
func (a *App) Placer() Placer { return a.placer }

// StableSince returns the simulated time at which the app entered (or will
// enter) its stable phase.
func (a *App) StableSince(cfg Config) float64 {
	sa := cfg.StableAfter
	if sa <= 0 {
		sa = defaultStableAfter
	}
	return a.start + sa
}

// Engine advances a set of co-scheduled applications through simulated time.
type Engine struct {
	M   *topology.Machine
	Sys *memsys.System
	Cfg Config

	apps    []*App
	hooks   []hookEntry
	now     float64
	ticks   int
	latMult []float64
	rng     *rngState

	// Resolved configuration values, so the tick loop never chases Config
	// pointers.
	memCfg memsys.Config
	latQF  float64

	// Reusable tick-loop state: the solver carries all progressive-filling
	// scratch, flows/metas are the per-tick flow set, and the per-app
	// slices replace the attribution maps a naive loop would allocate.
	solver       *memsys.Solver
	flows        []memsys.Flow
	metas        []flowMeta
	tickAchieved []float64
	tickRawRatio []float64

	// Quiescent-interval fast-forward state. A tick whose inputs (app set,
	// placements, phase factors, latency multipliers) are unchanged since
	// the cached solve replays the cached per-flow rates — the same
	// floating-point additions in the same order, so results stay
	// byte-identical — instead of rebuilding flows and solving again.
	ff         bool           // fast-forward enabled
	lastRes    *memsys.Result // cached solve; owned by e.solver
	solveValid bool           // lastRes matches flows/metas from a real solve
	stateEpoch uint64         // app set / placement lifecycle epoch
	latEpoch   uint64         // bumped when latency feedback changes latMult
	solveState uint64         // stateEpoch captured at the cached solve
	solveLat   uint64         // latEpoch captured at the cached solve
	solveSolve uint64         // solver epoch captured at the cached solve
	ffSolves   int            // ticks that ran a full flow build + solve
	ffReplays  int            // ticks served from the cached solve
}

type rngState struct{ next uint64 }

// hookEntry binds a hook to the app that owns it (nil for engine-global
// hooks), so RemoveApp can detach an app's tuners along with the app.
type hookEntry struct {
	h     Hook
	owner *App
}

// New returns an engine for the machine.
func New(m *topology.Machine, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	lat := make([]float64, m.NumNodes())
	for i := range lat {
		lat[i] = 1
	}
	sys := memsys.New(m, *cfg.Mem)
	return &Engine{
		M:       m,
		Sys:     sys,
		Cfg:     cfg,
		latMult: lat,
		rng:     &rngState{next: cfg.Seed},
		memCfg:  *cfg.Mem,
		latQF:   *cfg.LatQueueFactor,
		solver:  sys.NewSolver(),
		ff:      !cfg.DisableFastForward,
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Ticks returns the number of completed ticks.
func (e *Engine) Ticks() int { return e.ticks }

// LatMultipliers returns the per-node utilization-driven latency
// multipliers the feedback loop has settled on — the engine's latency-
// feedback fixed point, exposed read-only so observers can record it as a
// first-class signal. The slice is the engine's own; callers must not
// mutate it.
func (e *Engine) LatMultipliers() []float64 { return e.latMult }

// Apps returns the registered applications.
func (e *Engine) Apps() []*App { return e.apps }

// NextSeed returns a fresh deterministic seed derived from the engine seed,
// for hooks that need their own noise streams.
func (e *Engine) NextSeed() uint64 {
	e.rng.next = e.rng.next*0x5851f42d4c957f2d + 0x14057b7ef767814f
	return e.rng.next
}

// AddHook registers an engine-global per-tick hook.
func (e *Engine) AddHook(h Hook) { e.hooks = append(e.hooks, hookEntry{h: h}) }

// AddAppHook registers a per-tick hook owned by app: RemoveApp(app) will
// drop it together with the app. Placement policies that attach per-app
// runtime state (the BWAP tuners) register through this.
func (e *Engine) AddAppHook(app *App, h Hook) {
	e.hooks = append(e.hooks, hookEntry{h: h, owner: app})
}

// AddApp registers an application on the given worker nodes with one thread
// pinned per core, creating its address space (one shared segment plus one
// private segment per worker, sized by the spec).
func (e *Engine) AddApp(name string, spec workload.Spec, workers []topology.NodeID, placer Placer) (*App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if placer == nil {
		return nil, fmt.Errorf("sim: app %s has no placer", name)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("sim: app %s has no workers", name)
	}
	for i, w := range workers {
		if int(w) < 0 || int(w) >= e.M.NumNodes() {
			return nil, fmt.Errorf("sim: app %s worker %d out of range", name, w)
		}
		// Worker sets are machine-sized, so a quadratic scan beats a
		// duplicate-detection map and its allocations on the fleet's
		// app-creation hot path.
		for _, prev := range workers[:i] {
			if prev == w {
				return nil, fmt.Errorf("sim: app %s duplicate worker %d", name, w)
			}
		}
	}
	for _, other := range e.apps {
		if other.Name == name {
			return nil, fmt.Errorf("sim: duplicate app name %q", name)
		}
	}
	app := &App{
		Name:        name,
		Spec:        spec,
		Workers:     append([]topology.NodeID(nil), workers...),
		Threads:     sched.PinAllCores(e.M, workers),
		AS:          mm.NewAddressSpace(e.M.NumNodes()),
		Counters:    perf.NewCounters(e.M.NumNodes()),
		Background:  spec.ComputeBound,
		placer:      placer,
		workerIndex: make(map[topology.NodeID]int, len(workers)),
		index:       len(e.apps),
		workGB:      spec.WorkGB,
		start:       e.now,
	}
	// Both per-worker accumulators share one backing array; the full slice
	// expression keeps progressGB from growing into tickByWorker.
	acc := make([]float64, 2*len(workers))
	app.progressGB = acc[:len(workers):len(workers)]
	app.tickByWorker = acc[len(workers):]
	for i, w := range app.Workers {
		app.workerIndex[w] = i
	}
	if spec.SharedGB > 0 {
		app.shared = app.AS.AddSegment("shared", uint64(spec.SharedGB*float64(1<<30)), mm.SharedOwner)
	}
	if spec.PrivateGBPerNode > 0 {
		app.privSeg = make([]*mm.Segment, len(workers))
		for i, w := range app.Workers {
			// Same bytes as fmt.Sprintf("priv-n%d", w) without the
			// operand boxing; node ids are validated non-negative above.
			app.privSeg[i] = app.AS.AddSegment("priv-n"+strconv.Itoa(int(w)),
				uint64(spec.PrivateGBPerNode*float64(1<<30)), w)
		}
	}
	e.apps = append(e.apps, app)
	e.stateEpoch++
	return app, nil
}

// Result summarizes a completed run.
type Result struct {
	// Times maps foreground app names to completion times in simulated
	// seconds.
	Times map[string]float64
	// AvgStallRate maps app names (including background apps) to their
	// lifetime average stalled cycles per second.
	AvgStallRate map[string]float64
	// Elapsed is the total simulated duration of the run.
	Elapsed float64
	// TimedOut reports that MaxTime was hit before all foreground apps
	// finished.
	TimedOut bool
}

// Run places every app, then ticks until all foreground apps complete (or
// MaxTime elapses). It may be called once per engine. Quiescent stretches
// are fast-forwarded: the cached flow solve is replayed tick by tick (bit-
// identical to solving each tick) until the next phase boundary or the
// analytically predicted completion.
func (e *Engine) Run() (*Result, error) {
	if err := e.place(); err != nil {
		return nil, err
	}
	e.prepare()
	for !e.allForegroundDone() {
		if e.now >= e.Cfg.MaxTime {
			return e.result(true), nil
		}
		if k := e.QuiescentTicks(e.ticksBefore(e.Cfg.MaxTime)); k > 0 && e.ReplayTicks(k) > 0 {
			continue
		}
		e.tick()
	}
	return e.result(false), nil
}

// place runs every app's initial placement and validates full mapping.
func (e *Engine) place() error {
	foreground := 0
	for _, a := range e.apps {
		if !a.Background {
			foreground++
		}
	}
	if foreground == 0 {
		return fmt.Errorf("sim: no foreground applications")
	}
	for _, a := range e.apps {
		if a.placed {
			continue
		}
		if err := e.PlaceApp(a); err != nil {
			return err
		}
	}
	return nil
}

// PlaceApp runs the app's initial placement immediately and validates that
// every page got mapped. Run calls it for every registered app; callers
// driving the engine incrementally (Step/AdvanceTo) must call it themselves
// after AddApp — an unplaced app does not execute. Placing twice is an
// error.
func (e *Engine) PlaceApp(a *App) error {
	if a.placed {
		return fmt.Errorf("sim: app %s already placed", a.Name)
	}
	if err := a.placer.Place(e, a); err != nil {
		return fmt.Errorf("sim: placing %s with %s: %w", a.Name, a.placer.Name(), err)
	}
	for _, seg := range a.AS.Segments() {
		if seg.MappedPages() != seg.PageCount() {
			return fmt.Errorf("sim: %s: policy %s left %d/%d pages of %s unmapped",
				a.Name, a.placer.Name(), seg.PageCount()-seg.MappedPages(), seg.PageCount(), seg.Name())
		}
	}
	// The initial allocation-time placement is not a migration; the
	// backlog starts clean.
	a.AS.DrainMigratedBytes()
	a.placed = true
	e.stateEpoch++
	return nil
}

// RemoveApp deregisters a departed app and any hooks it owns, so a
// long-lived engine serving a stream of jobs does not accumulate per-tick
// work for applications that already finished. The app's address space and
// counters stay valid for post-mortem inspection. Removing an app that was
// never registered (or was already removed) is an error. Must not be called
// from inside a hook.
func (e *Engine) RemoveApp(a *App) error {
	idx := -1
	for i, x := range e.apps {
		if x == a {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("sim: app %s not registered", a.Name)
	}
	e.apps = append(e.apps[:idx], e.apps[idx+1:]...)
	for i, x := range e.apps {
		x.index = i
	}
	kept := e.hooks[:0]
	for _, he := range e.hooks {
		if he.owner != a {
			kept = append(kept, he)
		}
	}
	for i := len(kept); i < len(e.hooks); i++ {
		e.hooks[i] = hookEntry{} // release removed hooks for GC
	}
	e.hooks = kept
	e.stateEpoch++
	return nil
}

// Step advances the simulation by exactly one tick, regardless of
// completion state — the engine idles fine with zero runnable apps, which
// is what keeps a fleet of machines advancing in lockstep. Apps must have
// been placed (PlaceApp); unplaced apps are skipped.
func (e *Engine) Step() { e.tick() }

// AdvanceTo ticks until the engine clock reaches t (within half a tick).
// It is the run-until-event primitive: a caller that knows the next
// externally scheduled event advances to it, mutates the app set
// (AddApp/PlaceApp/RemoveApp), and resumes. Unlike Run it does not stop
// when foreground apps finish; poll Apps()[i].Done() between calls.
//
// The tick count is computed once from (t − now)/DT and the loop runs on
// an integer counter: the clock's repeated += DT accumulation can drift by
// several ULPs over a long advance, and re-testing `now + DT/2 < t` per
// tick made the tick count depend on that drift (over- or under-ticking
// for large t).
func (e *Engine) AdvanceTo(t float64) {
	for n := e.remainingTicks(t); n > 0; n-- {
		e.tick()
	}
}

// AdvanceToQuiescent advances to time t exactly like AdvanceTo, but
// fast-forwards quiescent stretches: while the tick inputs are provably
// unchanged it replays the cached solve in a tight inner loop without
// per-tick revalidation, stopping at the earliest invalidating boundary
// (phase/init crossing, predicted completion) and resuming the checked
// loop there. Byte-identical to AdvanceTo for any t.
func (e *Engine) AdvanceToQuiescent(t float64) {
	n := e.remainingTicks(t)
	for n > 0 {
		if k := e.QuiescentTicks(n); k > 0 {
			if ran := e.ReplayTicks(k); ran > 0 {
				n -= ran
				continue
			}
		}
		e.tick()
		n--
	}
}

// remainingTicks returns how many ticks AdvanceTo(t) still has to run:
// the count a drift-free `now + DT/2 < t` loop would execute.
func (e *Engine) remainingTicks(t float64) int {
	n := math.Ceil((t-e.now)/e.Cfg.DT - 0.5)
	if n <= 0 || math.IsNaN(n) {
		return 0
	}
	if n > 1<<40 {
		n = 1 << 40
	}
	return int(n)
}

// ticksBefore returns a conservative count of ticks that keep the clock
// strictly below t — the bound Run hands to QuiescentTicks so a replay
// batch never crosses MaxTime.
func (e *Engine) ticksBefore(t float64) int {
	n := (t - e.now) / e.Cfg.DT
	if !(n > 0) { // also catches NaN
		return 0
	}
	if !(n < 1<<40) { // clamp before int(): out-of-range conversion wraps
		n = 1 << 40
	}
	return max(int(n)-1, 0)
}

// prepare sizes the per-app tick scratch once the app set is final.
func (e *Engine) prepare() {
	if len(e.tickAchieved) < len(e.apps) {
		e.tickAchieved = make([]float64, len(e.apps))
		e.tickRawRatio = make([]float64, len(e.apps))
	}
}

func (e *Engine) allForegroundDone() bool {
	for _, a := range e.apps {
		if !a.Background && !a.done {
			return false
		}
	}
	return true
}

func (e *Engine) result(timedOut bool) *Result {
	res := &Result{
		Times:        make(map[string]float64),
		AvgStallRate: make(map[string]float64),
		Elapsed:      e.now,
		TimedOut:     timedOut,
	}
	for _, a := range e.apps {
		if !a.Background {
			t := a.finish
			if !a.done {
				t = math.Inf(1)
			}
			res.Times[a.Name] = t
		}
		res.AvgStallRate[a.Name] = a.Counters.AvgStallRate()
	}
	return res
}

// flowMeta carries per-flow attribution through the solver.
type flowMeta struct {
	app     *App
	wi      int // index into app.Workers of the flow's destination
	private bool
	src     topology.NodeID
	dst     topology.NodeID
	// rawRatio converts controller-equivalent rate back to raw bytes.
	rawRatio float64
	// readFrac splits raw bytes into reads vs writes.
	readFrac float64
}

// tick advances the simulation by one DT. All intermediate state lives in
// buffers reused across ticks: at steady state a tick performs no heap
// allocation (pinned by TestTickAllocationFree).
//
// The tick is memoized: when canReplay proves the flow-solve inputs are
// bit-identical to the cached solve's, the expensive half (flow rebuild,
// segment Fractions, throttle, memsys.Solve) is skipped and the cached
// per-flow rates are replayed through the same attribution, progress and
// feedback code — the identical floating-point additions in the identical
// order, so a replayed tick is byte-equal to a solved one by construction.
func (e *Engine) tick() {
	e.prepare()
	if e.ff && e.canReplay() {
		e.ffReplays++
	} else {
		e.buildFlows()
		e.lastRes = e.solver.Solve(e.flows)
		e.ffSolves++
		e.noteSolve()
	}
	e.attribute()
	e.advanceApps()
	e.feedback()
	for _, he := range e.hooks {
		he.h.Tick(e)
	}
	e.now += e.Cfg.DT
	e.ticks++
}

// phaseFactors returns the demand and latency factors a tick starting at
// the current clock applies to app a — the only tick inputs that change
// with time and progress rather than through an epoch-counted mutation.
func (e *Engine) phaseFactors(a *App) (phase, kappaFactor float64) {
	phase = 1.0
	kappaFactor = 1.0
	if len(a.Spec.Phases) > 0 && a.workGB > 0 {
		phase, kappaFactor = a.Spec.PhaseAt(a.Progress() / a.workGB)
	}
	if a.Spec.InitSeconds > 0 && e.now-a.start < a.Spec.InitSeconds {
		// Initialization phases (allocation, input parsing) have
		// erratic memory behaviour — the reason the paper defers
		// BWAP-init to the stable phase. A deterministic pseudo-random
		// burst pattern around the init demand level models that: the
		// MAPI phase detector must not see a steady signal before the
		// boundary.
		slot := uint64((e.now - a.start) / 0.3)
		h := slot*2654435761 + 0x9e3779b9
		h ^= h >> 13
		u := float64(h%1000) / 1000
		phase = a.Spec.InitDemandFactor * (0.3 + 1.4*u)
		kappaFactor = 1
	}
	return phase, kappaFactor
}

// inInit reports whether a is inside its initialization burst window, in
// which demand changes every 0.3 s slot.
func (e *Engine) inInit(a *App) bool {
	return a.Spec.InitSeconds > 0 && e.now-a.start < a.Spec.InitSeconds
}

// buildFlows turns every running app's demand into the per-tick flow set.
func (e *Engine) buildFlows() {
	flows := e.flows[:0]
	metas := e.metas[:0]

	for _, a := range e.apps {
		if a.done || !a.placed {
			continue
		}
		a.lastDemand = 0
		phase, kappaFactor := e.phaseFactors(a)
		a.solvePhase, a.solveKappa = phase, kappaFactor
		perThreadRead := a.Spec.PerThreadReadGBs() * e.Cfg.DemandFactor * phase
		perThreadWrite := a.Spec.PerThreadWriteGBs() * e.Cfg.DemandFactor * phase
		rawPerThread := perThreadRead + perThreadWrite
		eqPerThread := e.memCfg.EquivalentDemand(perThreadRead, perThreadWrite)
		readFrac := 0.0
		if rawPerThread > 0 {
			readFrac = perThreadRead / rawPerThread
		}
		rawRatio := 0.0
		if eqPerThread > 0 {
			rawRatio = rawPerThread / eqPerThread
		}

		for wi, w := range a.Workers {
			threads := a.Threads[wi]
			eqNode := eqPerThread * float64(threads)
			first := true
			for ci := 0; ci < 2; ci++ {
				var private bool
				var frac float64
				var seg *mm.Segment
				if ci == 0 {
					private, frac, seg = false, a.Spec.SharedFrac(), a.shared
				} else {
					private, frac = true, a.Spec.PrivateFrac
					if a.privSeg != nil {
						seg = a.privSeg[wi]
					}
				}
				if frac <= 0 || seg == nil {
					continue
				}
				eqClass := eqNode * frac
				a.lastDemand += eqClass
				fr := seg.Fractions()
				throttle := e.throttle(a.Spec.LatencySensitivity*kappaFactor, fr, w)
				for s, f := range fr {
					if f <= 0 {
						continue
					}
					streams := -1 // already counted for this (app, worker)
					if first {
						streams = threads
					}
					flows = append(flows, memsys.Flow{
						Src:     topology.NodeID(s),
						Dst:     w,
						Demand:  eqClass * throttle * f,
						Streams: streams,
						Tag:     len(metas),
					})
					metas = append(metas, flowMeta{
						app: a, wi: wi, private: private,
						src: topology.NodeID(s), dst: w,
						rawRatio: rawRatio, readFrac: readFrac,
					})
					first = false
				}
			}
		}
	}
	e.flows, e.metas = flows, metas
}

// noteSolve captures the inputs the solve just consumed, so later ticks
// can prove (canReplay) that replaying its rates is byte-equal to solving
// again. buildFlows already stored each app's phase factors.
func (e *Engine) noteSolve() {
	e.solveValid = true
	e.solveState = e.stateEpoch
	e.solveLat = e.latEpoch
	e.solveSolve = e.solver.Epoch()
	for _, a := range e.apps {
		if a.done || !a.placed {
			continue
		}
		a.solveASEpoch = a.AS.PlacementEpoch()
		a.nextPhaseGB = math.Inf(1)
		if len(a.Spec.Phases) > 0 && a.workGB > 0 {
			frac := a.Progress() / a.workGB
			for _, ph := range a.Spec.Phases {
				if ph.AtWorkFraction > frac {
					a.nextPhaseGB = ph.AtWorkFraction * a.workGB
					break
				}
			}
		}
	}
}

// canReplay reports whether the cached solve's inputs are bit-identical to
// the ones buildFlows would produce right now: same app set and lifecycle
// state (stateEpoch), same placements (per-address-space epochs), same
// phase/init demand factors, and the same latency multipliers the throttle
// would read (latEpoch — unchanged exactly when the feedback loop reached
// its floating-point fixed point). Identical inputs make the solver — a
// deterministic function — return identical rates, so replaying the cache
// is equality, not approximation.
func (e *Engine) canReplay() bool {
	if !e.solveValid || e.stateEpoch != e.solveState || e.latEpoch != e.solveLat ||
		e.solveSolve != e.solver.Epoch() {
		return false
	}
	for _, a := range e.apps {
		if a.done || !a.placed {
			continue
		}
		if a.AS.PlacementEpoch() != a.solveASEpoch {
			return false
		}
		phase, kappa := e.phaseFactors(a)
		if phase != a.solvePhase || kappa != a.solveKappa {
			return false
		}
	}
	return true
}

// attribute spreads the solved per-flow rates over apps, workers and PMU
// counters. Progress is accounted in raw bytes (reads+writes), so
// write-heavy workloads pay the controller's write penalty in completion
// time.
func (e *Engine) attribute() {
	dt := e.Cfg.DT
	flows, metas := e.flows, e.metas
	res := e.lastRes
	achieved := e.tickAchieved
	rawRatioOf := e.tickRawRatio
	for _, a := range e.apps {
		achieved[a.index] = 0
		rawRatioOf[a.index] = 0
		for wi := range a.tickByWorker {
			a.tickByWorker[wi] = 0
		}
	}
	for i := range flows {
		meta := &metas[i]
		rate := res.Rates[i]
		achieved[meta.app.index] += rate
		meta.app.tickByWorker[meta.wi] += rate
		rawRatioOf[meta.app.index] = meta.rawRatio
		bytes := rate * 1e9 * dt
		c := meta.app.Counters
		c.NodeOutBytes[meta.src] += bytes
		c.PairBytes[meta.src][meta.dst] += bytes
		raw := bytes * meta.rawRatio
		c.BytesRead += raw * meta.readFrac
		c.BytesWritten += raw * (1 - meta.readFrac)
		if meta.private {
			c.PrivateBytes += raw
		} else {
			c.SharedBytes += raw
		}
	}
}

// advanceApps charges migration cost, updates stall accounting and worker
// progress, and detects completions. It reports whether the tick hit a
// quiescence boundary — an app completed or crossed its next phase
// threshold — which is what ends an unchecked replay batch.
func (e *Engine) advanceApps() bool {
	dt := e.Cfg.DT
	achieved := e.tickAchieved
	rawRatioOf := e.tickRawRatio
	boundary := false
	for _, a := range e.apps {
		if a.done || !a.placed {
			continue
		}
		ach := achieved[a.index]
		// Page migration steals bandwidth from the app (bounded so the app
		// always keeps making some progress, as the kernel's rate-limited
		// migration does).
		a.migBacklogGB += float64(a.AS.DrainMigratedBytes()) / 1e9
		migCost := math.Min(a.migBacklogGB, e.Cfg.MigrationGBs*dt)
		migCost = math.Min(migCost, 0.5*ach*dt)
		a.migBacklogGB -= migCost
		achEff := ach - migCost/dt

		stall := 0.0
		if a.lastDemand > 0 {
			stall = stats.Clamp(1-achEff/a.lastDemand, 0, 1)
		}
		a.lastStallFrac = stall
		a.lastAchieved = achEff
		a.Counters.Time += dt
		a.Counters.Cycles += perf.ClockHz * dt
		a.Counters.StalledCycles += stall * perf.ClockHz * dt
		// Retired instructions: unstalled cycles at nominal IPC 1 — the
		// denominator of the MAPI classification metric.
		a.Counters.Instructions += (1 - stall) * perf.ClockHz * dt

		if !a.Background {
			eta := a.Spec.ParallelEfficiency(len(a.Workers))
			// Migration cost scales every worker's useful bandwidth down
			// uniformly.
			scale := 1.0
			if ach > 0 {
				scale = achEff / ach
			}
			share := a.workGB / float64(len(a.Workers))
			allDone := true
			lastFraction := 0.0
			for wi := range a.Workers {
				before := a.progressGB[wi]
				delta := a.tickByWorker[wi] * rawRatioOf[a.index] * scale * eta * dt
				a.progressGB[wi] = before + delta
				if a.progressGB[wi] < share {
					allDone = false
					continue
				}
				if before < share && delta > 0 {
					// This worker crossed its share within this tick;
					// remember the latest crossing point for interpolation.
					if f := (share - before) / delta; f > lastFraction {
						lastFraction = f
					}
				}
			}
			if allDone {
				a.done = true
				a.finish = e.now + dt*stats.Clamp(lastFraction, 0, 1)
				if lastFraction == 0 {
					a.finish = e.now + dt
				}
				// A departed flow set invalidates the cached solve.
				e.stateEpoch++
				boundary = true
			} else if a.Progress() >= a.nextPhaseGB {
				// Crossed into the next phase: the following tick's demand
				// factors change, so a replay batch must stop here.
				boundary = true
			}
		}
	}
	return boundary
}

// feedback applies the queueing-latency feedback: loaded controllers
// answer slower next tick. latEpoch advances only when some multiplier
// actually changes; once the exponential smoothing reaches its
// floating-point fixed point under stable utilization the epoch stands
// still — one of the quiescence conditions.
func (e *Engine) feedback() {
	sm := e.Cfg.LatSmoothing
	changed := false
	for i, u := range e.lastRes.ControllerUtil {
		u = stats.Clamp(u, 0, 1)
		target := 1 + e.latQF*u*u/(1.02-u)
		next := (1-sm)*e.latMult[i] + sm*target
		if next == e.latMult[i] {
			continue
		}
		if e.Cfg.SnapLatFeedback && math.Abs(next-e.latMult[i]) <= latSnapRel*e.latMult[i] {
			continue // sub-ULP drift: treat the fixed point as reached
		}
		e.latMult[i] = next
		changed = true
	}
	if changed {
		e.latEpoch++
	}
}

// latSnapRel is the SnapLatFeedback freeze threshold: 2⁻⁴⁶ ≈ 64 ULPs for
// multipliers in [1,2). Geometric smoothing halves the residual each tick,
// so the snap cuts ~45 ticks of sub-ULP epoch churn per perturbation while
// pinning the multiplier within 64 ULPs of the exact fixed point; any
// material utilization shift moves the target far past the threshold and
// the controller tracks it again immediately.
const latSnapRel = 0x1p-46

// ReplayTicks advances up to n ticks on the memoized replay path without
// per-tick revalidation: no epoch checks, no latency feedback (provably a
// no-op while quiescent) and no hook dispatch. It stops after a tick that
// hits a boundary — an app completing or crossing a phase threshold, both
// detected exactly from the live progress values — and returns the number
// of ticks advanced. 0 means the engine is not replayable right now
// (stale solve, hooks registered, or an app inside its init burst);
// callers fall back to Step. Every tick it advances is byte-identical to
// a full Step.
func (e *Engine) ReplayTicks(n int) int {
	if n <= 0 || !e.ff || len(e.hooks) > 0 || !e.canReplay() {
		return 0
	}
	for _, a := range e.apps {
		if !a.done && a.placed && e.inInit(a) {
			return 0 // init-burst demand changes every 0.3 s slot
		}
	}
	dt := e.Cfg.DT
	for i := 0; i < n; i++ {
		e.attribute()
		boundary := e.advanceApps()
		e.now += dt
		e.ticks++
		e.ffReplays++
		if boundary {
			return i + 1
		}
	}
	return n
}

// QuiescentTicks returns a conservative count of upcoming ticks (at most
// max) that are provably interior to the current quiescent interval: the
// cached solve replays, no app completes, and no phase or init boundary is
// crossed. The fleet layer uses it to advance whole machines without
// re-entering the per-tick shard barrier. 0 means "not quiescent" (or a
// boundary is too close to be worth batching past the checked loop).
//
// Completion and phase crossings are predicted analytically from the
// constant per-tick progress deltas, shaved by a relative safety margin
// (1e-9, plus two ticks) that dominates worst-case floating-point
// accumulation drift for any realistic run length; the replay loop's exact
// per-tick boundary checks backstop the prediction regardless.
func (e *Engine) QuiescentTicks(limit int) int {
	if limit <= 0 || !e.ff || len(e.hooks) > 0 || !e.canReplay() {
		return 0
	}
	// Cap each batch so the within-batch float accumulation (≤ batch ×
	// ulp(share)/2 in progress units) stays orders of magnitude below the
	// boundaryTicks margin even for extremely slow workers; longer
	// quiescent spans simply take several batches, each re-predicted from
	// the live float state.
	n := min(limit, 1<<20)
	dt := e.Cfg.DT
	for _, a := range e.apps {
		if a.done || !a.placed {
			continue
		}
		if e.inInit(a) {
			return 0
		}
		if a.Background {
			continue // no progress, no completion, constant phase factors
		}
		rawRatio := e.tickRawRatio[a.index]
		eta := a.Spec.ParallelEfficiency(len(a.Workers))
		// Replay ticks add a constant delta per worker (identical rates;
		// migration cost only ever slows progress further, so these deltas
		// upper-bound it and the tick predictions stay lower bounds).
		if len(a.Spec.Phases) > 0 && a.workGB > 0 && !math.IsInf(a.nextPhaseGB, 1) {
			total := 0.0
			for wi := range a.Workers {
				total += a.tickByWorker[wi] * rawRatio * eta * dt
			}
			n = min(n, boundaryTicks(a.nextPhaseGB-a.Progress(), total))
		}
		// Completion fires when the slowest worker reaches its share, so
		// the largest per-worker lower bound bounds the completion tick.
		share := a.workGB / float64(len(a.Workers))
		comp := 0
		for wi := range a.Workers {
			if p := a.progressGB[wi]; p < share {
				delta := a.tickByWorker[wi] * rawRatio * eta * dt
				comp = max(comp, boundaryTicks(share-p, delta))
			}
		}
		n = min(n, comp)
	}
	return n
}

// CompletionHorizonTicks returns a conservative count of upcoming ticks
// (at most limit) that provably cannot complete any foreground app, no
// matter what the flow solver does in between. Solved rates are
// demand-bounded (max-min fairness never grants a flow more than it asks
// for), and migration cost and throttling only slow progress further — so
// per-worker progress per tick is bounded by the worker's unthrottled
// demand under the worst demand factor actually reachable within the
// window (see appCompletionHorizon), and completion (every worker at its
// share) cannot fire before the slowest worker's gap divided by that
// bound. Unlike QuiescentTicks this needs no quiescence: solves,
// placement changes, phase and init crossings may all happen inside the
// horizon; only completions cannot. 0 means a completion may be imminent,
// or hooks could mutate apps mid-window. The fleet's
// conservative-lookahead engine (DESIGN.md §12) sizes its barrier-free
// windows with this bound.
func (e *Engine) CompletionHorizonTicks(limit int) int {
	if limit <= 0 || len(e.hooks) > 0 {
		return 0
	}
	// Same batch cap as QuiescentTicks: within-window float accumulation
	// must stay far below the boundaryTicks margin.
	n := min(limit, 1<<20)
	for _, a := range e.apps {
		if a.done || !a.placed || a.Background {
			continue
		}
		n = e.appCompletionHorizon(a, n)
		if n == 0 {
			return 0
		}
	}
	return n
}

// appCompletionHorizon bounds the ticks (at most limit) before app a can
// possibly complete, using the per-phase demand schedule instead of a
// single lifetime peak. It maintains fWorst, an upper bound on every
// demand factor phaseFactors can return while total progress stays below
// the next unfolded phase boundary:
//
//   - Progress is monotone, so phases behind the current one never recur;
//     fWorst starts at the factor currently in force.
//   - While inside the init burst, its peak (InitDemandFactor·(0.3+1.4u)
//     with u < 1, hence ·1.7) is folded across the whole window — the
//     burst never recurs after expiry, so later-window phase factors are
//     already covered by the phase folding. Outside the burst it can
//     never re-enter (e.now − a.start only grows) and is ignored.
//
// The loop then alternates bounding and widening: bound completion under
// fWorst (slowest worker's gap over its demand-bounded delta); if total
// progress — advancing at the fWorst-bounded aggregate rate, an upper
// bound on the true rate while fWorst is valid — provably cannot reach
// the next phase boundary within that many ticks, the bound is sound and
// returned. Otherwise the next phase's factor is folded into fWorst and
// the bound recomputed; the phase index strictly increases, so the loop
// terminates. Workloads whose demand peaks late (e.g. a 3× compaction
// phase at 90% progress) thus get horizons sized by the phases actually
// reachable, not by the lifetime peak — wider free-run windows and fewer
// shard-barrier entries for the same, unchanged, per-tick state sequence.
func (e *Engine) appCompletionHorizon(a *App, limit int) int {
	dt := e.Cfg.DT
	eta := a.Spec.ParallelEfficiency(len(a.Workers))
	// base is the per-thread demand-bounded progress delta per tick under a
	// demand factor of 1; a worker's delta under fWorst is
	// base·threads·fWorst.
	base := (a.Spec.PerThreadReadGBs() + a.Spec.PerThreadWriteGBs()) *
		e.Cfg.DemandFactor * eta * dt
	share := a.workGB / float64(len(a.Workers))

	phased := len(a.Spec.Phases) > 0 && a.workGB > 0
	progress := a.Progress()
	fWorst := 1.0
	if phased {
		fWorst, _ = a.Spec.PhaseAt(progress / a.workGB)
	}
	if e.inInit(a) {
		fWorst = math.Max(fWorst, a.Spec.InitDemandFactor*1.7)
	}
	idx := len(a.Spec.Phases) // first boundary still ahead of progress
	if phased {
		for idx = 0; idx < len(a.Spec.Phases); idx++ {
			if a.Spec.Phases[idx].AtWorkFraction*a.workGB > progress {
				break
			}
		}
	}
	totalThreads := 0.0
	for wi := range a.Workers {
		totalThreads += float64(a.Threads[wi])
	}

	for {
		// Completion needs every worker at its share, so the slowest
		// worker's provably-free ticks bound the app's completion tick.
		comp := 0
		for wi := range a.Workers {
			gap := share - a.progressGB[wi]
			if gap <= 0 {
				continue
			}
			comp = max(comp, boundaryTicks(gap, base*float64(a.Threads[wi])*fWorst))
			if comp >= limit {
				comp = limit
				break
			}
		}
		comp = min(comp, limit)
		if comp == 0 || idx >= len(a.Spec.Phases) {
			return comp
		}
		// fWorst is only valid while total progress stays below the next
		// unfolded boundary. If the aggregate fWorst-bounded rate cannot
		// carry progress there within comp ticks, no unfolded factor can
		// apply inside the window and comp is sound.
		bound := a.Spec.Phases[idx].AtWorkFraction * a.workGB
		if boundaryTicks(bound-progress, base*totalThreads*fWorst) >= comp {
			return comp
		}
		fWorst = math.Max(fWorst, a.Spec.Phases[idx].DemandFactor)
		idx++
	}
}

// boundaryTicks lower-bounds how many constant-delta ticks fit strictly
// below gap, with the safety margin described at QuiescentTicks.
func boundaryTicks(gap, delta float64) int {
	if !(delta > 0) || !(gap > 0) {
		return 1 << 40 // no progress toward the boundary: never reached
	}
	t := gap/delta*(1-1e-9) - 2
	if t <= 0 {
		return 0
	}
	if t > 1<<40 {
		return 1 << 40
	}
	return int(t)
}

// FastForwardStats reports the tick-loop economics since construction:
// solves is the number of ticks that rebuilt flows and ran a full
// memsys solve, replays the number served from the cached solve.
func (e *Engine) FastForwardStats() (solves, replays int) {
	return e.ffSolves, e.ffReplays
}

// throttle computes the latency-driven demand suppression for a worker on
// node w whose pages are spread per fr: 1/(1+κ·(L̄/L_local − 1)), where L̄
// uses the utilization-inflated latencies of the previous tick.
func (e *Engine) throttle(kappa float64, fr []float64, w topology.NodeID) float64 {
	if kappa <= 0 {
		return 1
	}
	lbar := 0.0
	for s, f := range fr {
		if f <= 0 {
			continue
		}
		lbar += f * e.M.LatencyNs(topology.NodeID(s), w) * e.latMult[s]
	}
	local := e.M.LatencyNs(w, w)
	if lbar <= local {
		return 1
	}
	return 1 / (1 + kappa*(lbar/local-1))
}
