package sim_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bwap/internal/memsys"
	"bwap/internal/sim"
	"bwap/internal/stats"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// TestConservationNoOverAccounting: the traffic accounted into an app's
// counters can never exceed what the machine's controllers could have
// served in the elapsed time.
func TestConservationNoOverAccounting(t *testing.T) {
	m := topology.MachineB()
	rng := stats.NewRand(77)
	f := func(seedRaw uint16) bool {
		read := 5 + rng.Float64()*40
		write := rng.Float64() * 10
		priv := rng.Float64()
		spec := workload.Spec{
			Name: "p", ReadGBs: read, WriteGBs: write, PrivateFrac: priv,
			LatencySensitivity: rng.Float64(), WorkGB: 30 + rng.Float64()*50,
			SharedGB: 0.016, PrivateGBPerNode: 0.016,
		}
		workers := []topology.NodeID{topology.NodeID(rng.IntN(4))}
		e := sim.New(m, sim.Config{Seed: uint64(seedRaw)})
		app, err := e.AddApp("p", spec, workers, testPlacer{"uniform-all"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Aggregate controller capacity bound (generous: ignores links).
		totalCap := 0.0
		for i := 0; i < m.NumNodes(); i++ {
			totalCap += m.Node(topology.NodeID(i)).ControllerGBs
		}
		elapsed := res.Elapsed
		rawAccounted := (app.Counters.BytesRead + app.Counters.BytesWritten) / 1e9
		return rawAccounted <= totalCap*elapsed*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStallFractionBounds: the per-tick stall fraction stays within [0,1]
// for arbitrary workloads, so StalledCycles never exceeds Cycles.
func TestStallFractionBounds(t *testing.T) {
	m := topology.MachineA()
	rng := stats.NewRand(123)
	f := func(_ uint8) bool {
		spec := workload.Spec{
			Name: "p", ReadGBs: 1 + rng.Float64()*100, WriteGBs: rng.Float64() * 30,
			PrivateFrac:        rng.Float64(),
			LatencySensitivity: rng.Float64() * 2,
			WorkGB:             20 + rng.Float64()*40,
			SharedGB:           0.016, PrivateGBPerNode: 0.016,
		}
		nw := 1 + rng.IntN(4)
		workers := make([]topology.NodeID, nw)
		for i := range workers {
			workers[i] = topology.NodeID(i * 2)
		}
		e := sim.New(m, sim.Config{})
		app, err := e.AddApp("p", spec, workers, testPlacer{"uniform-workers"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		c := app.Counters
		return c.StalledCycles >= 0 && c.StalledCycles <= c.Cycles+1e-6 &&
			c.Instructions >= 0 && c.Instructions <= c.Cycles+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerProgressSumsToWork: on completion, every worker finished its
// share (the Eq. 3 semantics) and total progress covers the work volume.
func TestWorkerProgressSumsToWork(t *testing.T) {
	m := topology.MachineB()
	spec := smallSpec(10, 2, 0.3, 0.1, 40)
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("p", spec, []topology.NodeID{0, 2}, testPlacer{"uniform-workers"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	share := spec.WorkGB / 2
	for wi := 0; wi < 2; wi++ {
		if got := app.WorkerProgress(wi); got < share-1e-6 {
			t.Fatalf("worker %d progress %v below share %v", wi, got, share)
		}
	}
	if app.Progress() < spec.WorkGB {
		t.Fatalf("total progress %v below work %v", app.Progress(), spec.WorkGB)
	}
}

// TestUnbalancedPlacementDelaysSlowestWorker: first-touch centralization
// must make the app slower than a balanced placement even when aggregate
// bandwidth is similar — the slowest worker gates completion.
func TestUnbalancedPlacementDelaysSlowestWorker(t *testing.T) {
	m := topology.MachineB()
	spec := smallSpec(30, 0, 0, 0, 120)
	run := func(mode string) float64 {
		e := sim.New(m, sim.Config{})
		if _, err := e.AddApp("p", spec, []topology.NodeID{0, 1, 2, 3}, testPlacer{mode}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["p"]
	}
	central, balanced := run("local"), run("uniform-workers")
	if central <= balanced*1.2 {
		t.Fatalf("centralized shared pages not punished: %v vs %v", central, balanced)
	}
}

type failingPlacer struct{}

func (failingPlacer) Name() string { return "failing" }
func (failingPlacer) Place(e *sim.Engine, a *sim.App) error {
	return errors.New("injected placement failure")
}

func TestPlacementFailurePropagates(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	if _, err := e.AddApp("p", smallSpec(5, 0, 0, 0, 5), []topology.NodeID{0}, failingPlacer{}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Run()
	if err == nil || !containsErr(err, "injected placement failure") {
		t.Fatalf("placement failure not propagated: %v", err)
	}
}

func containsErr(err error, sub string) bool {
	s := err.Error()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestInitPhaseDemandApplied: the init-phase demand factor must visibly
// reduce early-phase traffic.
func TestInitPhaseDemandApplied(t *testing.T) {
	m := topology.MachineB()
	spec := smallSpec(10, 0, 0, 0, 60).WithInitPhase(2.0, 0.1)
	e := sim.New(m, sim.Config{})
	app, err := e.AddApp("p", spec, []topology.NodeID{0}, testPlacer{"local"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 2 s at ~10% demand, completion must take visibly longer than
	// the no-init-phase baseline of 6 s.
	if res.Times["p"] < 7.0 {
		t.Fatalf("init phase had no effect: finished at %v", res.Times["p"])
	}
	if math.IsInf(res.Times["p"], 1) {
		t.Fatal("run never completed")
	}
	_ = app
}

// TestEngineMemConfigRespected: a custom write penalty must change how
// write-heavy demand loads the system.
func TestEngineMemConfigRespected(t *testing.T) {
	m := topology.MachineB()
	run := func(penalty float64) float64 {
		cfg := sim.Config{Mem: sim.MemPtr(memsys.Config{StreamPenalty: 0.035, EfficiencyFloor: 0.7, WritePenalty: penalty})}
		e := sim.New(m, cfg)
		if _, err := e.AddApp("p", smallSpec(15, 15, 0, 0, 100), []topology.NodeID{0}, testPlacer{"local"}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["p"]
	}
	if cheap, costly := run(1.0), run(2.0); costly <= cheap {
		t.Fatalf("write penalty ignored: %v vs %v", cheap, costly)
	}
}
