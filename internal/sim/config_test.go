package sim_test

import (
	"testing"

	"bwap/internal/memsys"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

// TestLatQueueFactorExplicitZeroDisables pins the Config fix: nil selects
// the default queueing feedback, while a pointer to zero really disables
// it — previously indistinguishable states.
func TestLatQueueFactorExplicitZeroDisables(t *testing.T) {
	m := topology.MachineA()
	run := func(cfg sim.Config) float64 {
		e := sim.New(m, cfg)
		// A strongly latency-sensitive app under partial contention: the
		// utilization-driven latency feedback throttles its demand, so
		// disabling the feedback measurably changes completion time.
		if _, err := e.AddApp("a", smallSpec(30, 0, 0, 2.0, 100), []topology.NodeID{0}, testPlacer{"uniform-all"}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}
	def := run(sim.Config{})
	expl := run(sim.Config{LatQueueFactor: sim.FloatPtr(0.35)})
	if def != expl {
		t.Fatalf("explicit default (%v) differs from nil default (%v)", expl, def)
	}
	disabled := run(sim.Config{LatQueueFactor: sim.FloatPtr(0)})
	if disabled == def {
		t.Fatal("LatQueueFactor = &0 behaved like the default: zero is still conflated with unset")
	}
}

// TestMemNilSelectsDefault pins that a nil Mem equals the explicit default
// config, and that a non-default config is respected.
func TestMemNilSelectsDefault(t *testing.T) {
	m := topology.MachineB()
	run := func(cfg sim.Config) float64 {
		e := sim.New(m, cfg)
		if _, err := e.AddApp("a", smallSpec(20, 10, 0, 0, 60), []topology.NodeID{0}, testPlacer{"uniform-all"}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times["a"]
	}
	def := run(sim.Config{})
	expl := run(sim.Config{Mem: sim.MemPtr(memsys.DefaultConfig())})
	if def != expl {
		t.Fatalf("nil Mem (%v) differs from explicit default (%v)", def, expl)
	}
	custom := run(sim.Config{Mem: sim.MemPtr(memsys.Config{StreamPenalty: 0.035, EfficiencyFloor: 0.7, WritePenalty: 3})})
	if custom == def {
		t.Fatal("custom Mem config ignored")
	}
}
