package sim

import (
	"testing"

	"bwap/internal/mm"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// uniformAllPlacer is a minimal in-package placer for the alloc tests.
type uniformAllPlacer struct{}

func (uniformAllPlacer) Name() string { return "uniform-all" }

func (uniformAllPlacer) Place(e *Engine, a *App) error {
	all := make([]topology.NodeID, e.M.NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	for _, seg := range a.AS.Segments() {
		if err := seg.Mbind(0, seg.Length(), all, mm.MoveFlag); err != nil {
			return err
		}
	}
	return nil
}

// newSteadyEngine builds a placed, prepared engine whose app never
// finishes, so ticks can be driven directly.
func newSteadyEngine(t testing.TB) *Engine {
	t.Helper()
	m := topology.MachineA()
	spec := workload.OceanCP
	spec.WorkGB = 1e12 // steady state: bounded only by MaxTime, never reached here
	e := New(m, Config{MaxTime: 1e9, DemandFactor: 1.3})
	if _, err := e.AddApp("oc", spec, []topology.NodeID{0, 1, 2, 3}, uniformAllPlacer{}); err != nil {
		t.Fatal(err)
	}
	if err := e.place(); err != nil {
		t.Fatal(err)
	}
	e.prepare()
	return e
}

// TestTickAllocationFree pins the tentpole property: after warm-up, the
// steady-state tick loop performs no heap allocation at all — flows, flow
// metadata, solver scratch, placement fractions and per-app attribution
// all live in reused buffers.
func TestTickAllocationFree(t *testing.T) {
	e := newSteadyEngine(t)
	for i := 0; i < 5; i++ {
		e.tick() // warm buffer capacities
	}
	avg := testing.AllocsPerRun(200, e.tick)
	if avg != 0 {
		t.Fatalf("steady-state tick allocates %.2f objects/op, want 0", avg)
	}
}

// TestTickAllocationFreeCoScheduled repeats the check with two apps
// sharing the machine, the configuration every co-scheduled experiment
// cell runs.
func TestTickAllocationFreeCoScheduled(t *testing.T) {
	m := topology.MachineA()
	spec := workload.OceanCP
	spec.WorkGB = 1e12
	bg := workload.Swaptions
	e := New(m, Config{MaxTime: 1e9, DemandFactor: 1.3})
	if _, err := e.AddApp("oc", spec, []topology.NodeID{0, 1}, uniformAllPlacer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddApp("bg", bg, []topology.NodeID{2, 3}, uniformAllPlacer{}); err != nil {
		t.Fatal(err)
	}
	if err := e.place(); err != nil {
		t.Fatal(err)
	}
	e.prepare()
	for i := 0; i < 5; i++ {
		e.tick()
	}
	avg := testing.AllocsPerRun(200, e.tick)
	if avg != 0 {
		t.Fatalf("co-scheduled steady-state tick allocates %.2f objects/op, want 0", avg)
	}
}

// TestReplayAllocationFree pins the fast-forward acceptance criterion on
// allocations: the memoized replay inner loop — both the checked per-tick
// path and the unchecked ReplayTicks batch — performs zero heap
// allocations, and the ticks measured really are replays, not solves.
func TestReplayAllocationFree(t *testing.T) {
	if noFastForwardEnv() {
		t.Skip("BWAP_NO_FASTFORWARD=1 forces the naive path")
	}
	e := newSteadyEngine(t)
	// Tick until the latency feedback reaches its fixed point and the
	// engine goes quiescent.
	for i := 0; i < 500; i++ {
		e.tick()
	}
	if !e.canReplay() {
		t.Fatal("engine did not reach quiescence after 500 ticks")
	}
	_, before := e.FastForwardStats()
	if avg := testing.AllocsPerRun(200, e.tick); avg != 0 {
		t.Fatalf("replayed tick allocates %.2f objects/op, want 0", avg)
	}
	_, after := e.FastForwardStats()
	if after-before < 200 {
		t.Fatalf("only %d of 200+ measured ticks were replays", after-before)
	}
	if avg := testing.AllocsPerRun(50, func() { e.ReplayTicks(20) }); avg != 0 {
		t.Fatalf("ReplayTicks batch allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkSteadyTick measures one steady-state tick in isolation (the
// root BenchmarkEngineTickThroughput includes engine construction and
// placement; this one is the pure loop).
func BenchmarkSteadyTick(b *testing.B) {
	e := newSteadyEngine(b)
	e.tick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.tick()
	}
}
