package perf

import (
	"math"
	"testing"
)

func TestCountersZeroValue(t *testing.T) {
	c := NewCounters(4)
	if c.AvgStallRate() != 0 || c.AvgStallFraction() != 0 {
		t.Fatal("fresh counters report nonzero rates")
	}
	if len(c.NodeOutBytes) != 4 || len(c.PairBytes) != 4 {
		t.Fatal("counter dimensions wrong")
	}
}

func TestCountersAverages(t *testing.T) {
	c := NewCounters(2)
	c.Time = 2
	c.Cycles = 2 * ClockHz
	c.StalledCycles = 0.5 * ClockHz
	if got := c.AvgStallRate(); got != 0.25*ClockHz {
		t.Fatalf("AvgStallRate = %v", got)
	}
	if got := c.AvgStallFraction(); got != 0.25 {
		t.Fatalf("AvgStallFraction = %v", got)
	}
}

func TestCountersReset(t *testing.T) {
	c := NewCounters(3)
	c.Time = 5
	c.PairBytes[1][2] = 100
	c.Reset()
	if c.Time != 0 || c.PairBytes[1][2] != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestBWMatrix(t *testing.T) {
	c := NewCounters(2)
	c.Time = 2
	c.PairBytes[0][1] = 4e9 // 4 GB over 2 s = 2 GB/s
	m := c.BWMatrixGBs()
	if math.Abs(m[0][1]-2) > 1e-12 {
		t.Fatalf("BWMatrix[0][1] = %v, want 2", m[0][1])
	}
	if m[1][0] != 0 {
		t.Fatalf("BWMatrix[1][0] = %v, want 0", m[1][0])
	}
}

func TestSamplerCollectsPeriod(t *testing.T) {
	// Noise-free sampler: 4 samples of 1 s each, trim 1 from each side.
	s := NewSampler(4, 1, 1.0, 0, 1)
	cum := 0.0
	now := 0.0
	var got float64
	var done bool
	// Constant stall rate of 10 units/s.
	for i := 0; i < 60 && !done; i++ {
		got, done = s.Offer(now, cum)
		now += 0.5
		cum += 5 // 10 per second
	}
	if !done {
		t.Fatal("sampler never completed a period")
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("period score = %v, want 10", got)
	}
}

func TestSamplerTrimsOutliers(t *testing.T) {
	s := NewSampler(5, 1, 1.0, 0, 1)
	rates := []float64{10, 10, 1000, 10, 0} // outliers 1000 and 0 trimmed
	now, cum := 0.0, 0.0
	s.Offer(now, cum) // establish window start
	var got float64
	var done bool
	for _, r := range rates {
		now += 1.0
		cum += r
		got, done = s.Offer(now, cum)
	}
	if !done {
		t.Fatal("period incomplete")
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("trimmed score = %v, want 10", got)
	}
}

func TestSamplerRestartDiscardsPartial(t *testing.T) {
	s := NewSampler(3, 0, 1.0, 0, 1)
	s.Offer(0, 0)
	s.Offer(1, 100) // one sample of rate 100 recorded
	s.Restart()
	// New period at rate 10 must not be polluted by the rate-100 sample.
	now, cum := 10.0, 0.0
	s.Offer(now, cum)
	var got float64
	var done bool
	for i := 0; i < 3; i++ {
		now += 1
		cum += 10
		got, done = s.Offer(now, cum)
	}
	if !done || math.Abs(got-10) > 1e-9 {
		t.Fatalf("after restart got %v (done=%v), want 10", got, done)
	}
}

func TestSamplerNoiseIsSeededAndBounded(t *testing.T) {
	run := func(seed uint64) float64 {
		s := NewSampler(20, 5, 0.2, 0.05, seed)
		now, cum := 0.0, 0.0
		s.Offer(now, cum)
		for {
			now += 0.2
			cum += 0.2 * 100
			if got, done := s.Offer(now, cum); done {
				return got
			}
		}
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatal("same seed, different scores")
	}
	if c := run(8); c == a {
		t.Fatal("different seeds, identical scores (noise not applied?)")
	}
	// 5% relative noise, trimmed mean of 10 → within a few percent of 100.
	if math.Abs(a-100) > 10 {
		t.Fatalf("noisy score %v too far from 100", a)
	}
}

func TestSamplerNegativeRatesClamped(t *testing.T) {
	s := NewSampler(2, 0, 1.0, 0, 1)
	s.Offer(0, 100)
	s.Offer(1, 50) // counter went backwards → negative rate → clamp to 0
	got, done := s.Offer(2, 50)
	if !done {
		t.Fatal("period incomplete")
	}
	if got != 0 {
		t.Fatalf("score = %v, want 0 (clamped)", got)
	}
}

func TestSamplerPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewSampler(0, 0, 1, 0, 1) },
		func() { NewSampler(4, 2, 1, 0, 1) }, // 2c >= n
		func() { NewSampler(4, -1, 1, 0, 1) },
		func() { NewSampler(4, 0, 0, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPeriodSeconds(t *testing.T) {
	s := NewSampler(20, 5, 0.2, 0, 1)
	if got := s.PeriodSeconds(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("PeriodSeconds = %v, want 4", got)
	}
}
