// Package perf simulates the hardware performance counters BWAP consumes:
// per-node memory throughput (used by the canonical tuner's profiling run)
// and per-application stalled cycles (used by the DWP tuner's on-line
// search), plus the paper's sampling pipeline — n measurements of t seconds
// each, sorted, c outliers trimmed from both ends, averaged
// (Section III-B1; the paper reads the real counters via LIKWID [19]).
package perf

import (
	"math/rand/v2"

	"bwap/internal/stats"
)

// ClockHz is the nominal core clock used to scale stall fractions into
// stalled cycles per second, matching the units the paper monitors.
const ClockHz = 1e9

// Counters accumulates the simulated PMU state of one application. The
// simulation engine adds to it every tick; tuners read it.
type Counters struct {
	// Time is the total simulated seconds accounted so far.
	Time float64
	// StalledCycles accumulates stall cycles (ClockHz × stall fraction × dt).
	StalledCycles float64
	// Cycles accumulates total cycles (ClockHz × dt).
	Cycles float64
	// Instructions accumulates retired instructions (unstalled cycles ×
	// nominal IPC); the MAPI classifier divides memory accesses by this.
	Instructions float64
	// BytesRead and BytesWritten accumulate raw demand-side traffic.
	BytesRead, BytesWritten float64
	// SharedBytes and PrivateBytes split achieved traffic by page class,
	// feeding the Table I characterization.
	SharedBytes, PrivateBytes float64
	// NodeOutBytes accumulates bytes served by each source node.
	NodeOutBytes []float64
	// PairBytes accumulates bytes moved from src (first index) to dst
	// (second index) — the per-node throughput matrix the canonical tuner
	// profiles.
	PairBytes [][]float64
}

// NewCounters returns zeroed counters for a machine with n nodes. The
// per-node slices share one backing array (full slice expressions keep the
// rows from growing into each other): counters are created per app per
// placement on the fleet hot path, where n+2 row allocations dominated.
func NewCounters(n int) *Counters {
	backing := make([]float64, n*n+n)
	pb := make([][]float64, n)
	for i := range pb {
		pb[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return &Counters{NodeOutBytes: backing[n*n : n*n+n : n*n+n], PairBytes: pb}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	n := len(c.NodeOutBytes)
	*c = *NewCounters(n)
}

// AvgStallRate returns average stalled cycles per second over the counters'
// lifetime, or 0 before any time has been accounted.
func (c *Counters) AvgStallRate() float64 {
	if c.Time <= 0 {
		return 0
	}
	return c.StalledCycles / c.Time
}

// AvgStallFraction returns the average fraction of cycles stalled in [0,1].
func (c *Counters) AvgStallFraction() float64 {
	if c.Cycles <= 0 {
		return 0
	}
	return c.StalledCycles / c.Cycles
}

// CacheLineBytes is the access granularity used to convert traffic volume
// into access counts for the MAPI metric.
const CacheLineBytes = 64

// MAPI returns memory accesses per instruction over the counters' lifetime
// — the metric Carrefour [21] uses to classify workloads as
// memory-intensive, and which the paper proposes for automating both the
// co-scheduled classification and the BWAP-init trigger (Section III-B3).
func (c *Counters) MAPI() float64 {
	if c.Instructions <= 0 {
		return 0
	}
	return (c.BytesRead + c.BytesWritten) / CacheLineBytes / c.Instructions
}

// BWMatrixGBs converts the accumulated pair traffic into an average GB/s
// bandwidth matrix over the counters' lifetime.
func (c *Counters) BWMatrixGBs() [][]float64 {
	n := len(c.PairBytes)
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		out[s] = make([]float64, n)
		for d := 0; d < n; d++ {
			if c.Time > 0 {
				out[s][d] = c.PairBytes[s][d] / c.Time / 1e9
			}
		}
	}
	return out
}

// Sampler implements the DWP tuner's measurement pipeline. Each measurement
// is the stall rate over a window of T simulated seconds, perturbed by
// multiplicative Gaussian noise (real PMU readings are noisy; the trimming
// step exists to survive that). After N measurements the sampler emits the
// trimmed mean and starts over.
type Sampler struct {
	// N is the number of measurements per period (paper: 20).
	N int
	// C is the count trimmed from each end after sorting (paper: 5).
	C int
	// T is the measurement window in seconds (paper: 0.2).
	T float64

	noiseRel  float64
	rng       *rand.Rand
	samples   []float64
	haveStart bool
	startT    float64
	startVal  float64
}

// NewSampler returns a sampler with the paper's pipeline shape. noiseRel is
// the relative standard deviation of measurement noise; seed makes the
// noise stream reproducible.
func NewSampler(n, c int, t, noiseRel float64, seed uint64) *Sampler {
	if n <= 0 || c < 0 || 2*c >= n || t <= 0 {
		panic("perf: invalid sampler parameters")
	}
	return &Sampler{N: n, C: c, T: t, noiseRel: noiseRel, rng: stats.NewRand(seed)}
}

// Offer feeds the sampler the current cumulative stalled-cycle counter at
// simulated time now. When a full period (N measurements) completes, it
// returns the trimmed-mean stall rate and true. Call it once per engine
// tick.
func (s *Sampler) Offer(now, cumStalled float64) (score float64, done bool) {
	if !s.haveStart {
		s.haveStart = true
		s.startT, s.startVal = now, cumStalled
		return 0, false
	}
	if now-s.startT < s.T {
		return 0, false
	}
	rate := (cumStalled - s.startVal) / (now - s.startT)
	if s.noiseRel > 0 {
		rate *= 1 + s.noiseRel*s.rng.NormFloat64()
	}
	if rate < 0 {
		rate = 0
	}
	s.samples = append(s.samples, rate)
	s.startT, s.startVal = now, cumStalled
	if len(s.samples) < s.N {
		return 0, false
	}
	score = stats.TrimmedMean(s.samples, s.C)
	s.samples = s.samples[:0]
	return score, true
}

// Restart discards any partial period (used when the tuner changes the
// placement and stale measurements must not leak into the next decision).
func (s *Sampler) Restart() {
	s.samples = s.samples[:0]
	s.haveStart = false
}

// PeriodSeconds returns the simulated time one full sampling period takes.
func (s *Sampler) PeriodSeconds() float64 { return float64(s.N) * s.T }
