package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV zero-mean = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := CV(xs); !almostEq(got, 0.4, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %v, want 0", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := ArgMin(xs); got != 1 {
		t.Fatalf("ArgMin = %v, want 1", got)
	}
	if got := ArgMax(xs); got != 2 {
		t.Fatalf("ArgMax = %v, want 2", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("ArgMin/ArgMax of empty must be -1")
	}
}

func TestTrimmedMean(t *testing.T) {
	// Paper parameters: n=20 samples, c=5 trimmed from each side.
	xs := []float64{100, 1, 2, 3, 4, -50} // outliers 100 and -50
	got := TrimmedMean(xs, 1)
	if !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("TrimmedMean = %v, want 2.5", got)
	}
	// Over-trimming falls back to plain mean.
	if got := TrimmedMean([]float64{1, 2}, 1); got != 1.5 {
		t.Fatalf("TrimmedMean overtrim = %v, want 1.5", got)
	}
	if got := TrimmedMean(nil, 2); got != 0 {
		t.Fatalf("TrimmedMean(nil) = %v, want 0", got)
	}
	// Input must not be mutated (it gets sorted internally).
	in := []float64{9, 1, 5}
	TrimmedMean(in, 0)
	if in[0] != 9 {
		t.Fatalf("TrimmedMean mutated input: %v", in)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 3})
	if !almostEq(got[0], 0.25, 1e-12) || !almostEq(got[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", got)
	}
	// Zero-sum input becomes uniform.
	got = Normalize([]float64{0, 0, 0, 0})
	for _, g := range got {
		if !almostEq(g, 0.25, 1e-12) {
			t.Fatalf("Normalize zero = %v", got)
		}
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = math.Abs(math.Mod(r, 1000)) // bounded non-negative
		}
		if len(xs) == 0 {
			return true
		}
		out := Normalize(xs)
		return almostEq(Sum(out), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean skip-zero = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaved")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRand(7)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Gaussian(r, 10, 2)
	}
	if m := Mean(xs); !almostEq(m, 10, 0.1) {
		t.Fatalf("Gaussian mean = %v, want ~10", m)
	}
	if sd := StdDev(xs); !almostEq(sd, 2, 0.1) {
		t.Fatalf("Gaussian sd = %v, want ~2", sd)
	}
}

func TestTrimmedMeanPropertyBounded(t *testing.T) {
	// TrimmedMean always lies within [Min, Max] of the input.
	f := func(raw []float64, c uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			xs[i] = math.Mod(r, 1e6)
		}
		tm := TrimmedMean(xs, int(c%8))
		return tm >= Min(xs)-1e-9 && tm <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
