// Package stats provides the small statistical toolbox used throughout the
// BWAP reproduction: summary statistics, the paper's sort-and-trim outlier
// filter (Section III-B1), normalization helpers, and deterministic RNG
// construction so every experiment is reproducible.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev/mean) of xs.
// It returns 0 when the mean is 0 to avoid dividing by zero; the paper uses
// CV to quantify Observation 3 (per-node weight similarity after scaling).
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Median returns the median of xs, or 0 for an empty slice.
// The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs, or -1 if empty.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element of xs, or -1 if empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// TrimmedMean implements the DWP tuner's outlier filter (Section III-B1):
// sort the n measurements, discard the first and last c, and average the
// rest. If trimming would discard everything, the plain mean is returned.
// The input is not modified.
func TrimmedMean(xs []float64, c int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if c < 0 || 2*c >= len(xs) {
		return Mean(xs)
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	return Mean(tmp[c : len(tmp)-c])
}

// Normalize returns xs scaled so that it sums to 1. A zero-sum or empty
// input returns a uniform distribution of the same length (uniform over
// zero elements being the empty slice).
func Normalize(xs []float64) []float64 {
	return AppendNormalized(make([]float64, 0, len(xs)), xs)
}

// AppendNormalized appends xs scaled to sum to 1 onto dst and returns the
// extended slice — the non-allocating form of Normalize for hot paths that
// own a scratch buffer (Algorithm 1 normalizes per placement).
func AppendNormalized(dst, xs []float64) []float64 {
	sum := Sum(xs)
	if sum == 0 {
		for range xs {
			dst = append(dst, 1/float64(len(xs)))
		}
		return dst
	}
	for _, x := range xs {
		dst = append(dst, x/sum)
	}
	return dst
}

// GeoMean returns the geometric mean of xs. Non-positive entries make the
// geometric mean undefined; they are skipped. An empty (or all-skipped)
// input returns 0.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NewRand returns a deterministic PRNG for the given seed. All stochastic
// elements in the reproduction (measurement noise, sampled traces) draw from
// seeded generators so experiments are replayable.
func NewRand(seed uint64) *rand.Rand {
	//bwap:rand the sanctioned constructor: every stream the suite allows is minted here, seeded by the caller
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Gaussian returns a normally distributed sample with the given mean and
// standard deviation drawn from r.
func Gaussian(r *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}
