// Package trace is the reproduction's stand-in for the NumaMMA memory
// profiler [15]: it characterizes a finished (or running) application's
// memory behaviour — read/write bandwidth demand and the private/shared
// access split — producing the rows of Table I.
package trace

import (
	"fmt"
	"strings"

	"bwap/internal/sim"
)

// Characterization is one row of Table I.
type Characterization struct {
	// Benchmark is the workload name.
	Benchmark string
	// ReadMBs and WriteMBs are the measured bandwidth demands in MB/s.
	ReadMBs, WriteMBs float64
	// PrivatePct and SharedPct split observed accesses by page class, in
	// percent (they sum to 100 for apps with any traffic).
	PrivatePct, SharedPct float64
}

// Characterize derives a characterization from an app's accumulated
// counters.
func Characterize(app *sim.App) Characterization {
	c := app.Counters
	out := Characterization{Benchmark: app.Spec.Name}
	if c.Time > 0 {
		out.ReadMBs = c.BytesRead / c.Time / 1e6
		out.WriteMBs = c.BytesWritten / c.Time / 1e6
	}
	if total := c.PrivateBytes + c.SharedBytes; total > 0 {
		out.PrivatePct = 100 * c.PrivateBytes / total
		out.SharedPct = 100 * c.SharedBytes / total
	}
	return out
}

// Table renders rows in the layout of the paper's Table I.
func Table(rows []Characterization) string {
	var b strings.Builder
	b.WriteString("Benchmark   Reads(MB/s)  Writes(MB/s)  Private(%)  Shared(%)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %11.0f %13.0f %11.1f %10.1f\n",
			r.Benchmark, r.ReadMBs, r.WriteMBs, r.PrivatePct, r.SharedPct)
	}
	return b.String()
}
