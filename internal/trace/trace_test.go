package trace_test

import (
	"math"
	"strings"
	"testing"

	"bwap/internal/policy"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/trace"
	"bwap/internal/workload"
)

func TestCharacterizeMatchesSpecMix(t *testing.T) {
	// An unsaturated app must characterize at its specified demand and
	// access mix.
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	spec := workload.Spec{
		Name: "probe", ReadGBs: 8, WriteGBs: 2, PrivateFrac: 0.25,
		WorkGB: 40, SharedGB: 0.032, PrivateGBPerNode: 0.016,
	}
	app, err := e.AddApp("probe", spec, []topology.NodeID{0}, policy.FirstTouch{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(app)
	if c.Benchmark != "probe" {
		t.Fatalf("name %q", c.Benchmark)
	}
	if math.Abs(c.ReadMBs-8000) > 400 {
		t.Fatalf("ReadMBs = %v, want ~8000", c.ReadMBs)
	}
	if math.Abs(c.WriteMBs-2000) > 100 {
		t.Fatalf("WriteMBs = %v, want ~2000", c.WriteMBs)
	}
	if math.Abs(c.PrivatePct-25) > 2 {
		t.Fatalf("PrivatePct = %v, want ~25", c.PrivatePct)
	}
	if math.Abs(c.PrivatePct+c.SharedPct-100) > 1e-6 {
		t.Fatalf("percentages do not sum to 100: %v + %v", c.PrivatePct, c.SharedPct)
	}
}

func TestCharacterizeZeroTime(t *testing.T) {
	m := topology.MachineB()
	e := sim.New(m, sim.Config{})
	spec := workload.Spec{
		Name: "idle", ReadGBs: 1, WorkGB: 1, SharedGB: 0.004,
	}
	app, err := e.AddApp("idle", spec, []topology.NodeID{0}, policy.FirstTouch{})
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(app) // before running: counters empty
	if c.ReadMBs != 0 || c.PrivatePct != 0 {
		t.Fatalf("fresh app characterized as %+v", c)
	}
}

func TestTableRendering(t *testing.T) {
	rows := []trace.Characterization{
		{Benchmark: "OC", ReadMBs: 17576, WriteMBs: 6492, PrivatePct: 79.3, SharedPct: 20.7},
	}
	s := trace.Table(rows)
	if !strings.Contains(s, "OC") || !strings.Contains(s, "17576") || !strings.Contains(s, "79.3") {
		t.Fatalf("table missing fields:\n%s", s)
	}
}
