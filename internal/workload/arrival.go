package workload

import (
	"fmt"
	"math"
	"strconv"
)

// Signature returns a stable 64-bit hex digest of every behavioural field
// of the spec. Jobs whose specs hash identically behave identically in the
// simulator, so the fleet scheduler's tuning cache keys placement results
// by this signature (together with the machine's topology fingerprint).
//
// The digest is FNV-64a over an exact byte stream — the same bytes the
// original fmt.Fprintf("%s|%g|...") formulation hashed, now produced with
// strconv appends into a stack scratch buffer. Signature sits on the fleet
// scheduler's cache-key hot path (every admission, prefetch and retune
// derives a key), where the fmt operand boxing dominated the allocation
// profile; TestSignatureMatchesReference pins byte-stream equality with
// the fmt-based reference, and cache snapshots persisted under the old
// hash stay loadable because the digests are identical.
func (s Spec) Signature() string {
	var scratch [16]byte
	return string(s.AppendSignature(scratch[:0]))
}

// AppendSignature appends the Signature digest to dst and returns the
// extended slice, for callers composing cache keys into a reused buffer
// without materializing the intermediate string.
func (s Spec) AppendSignature(dst []byte) []byte {
	var scratch [192]byte
	b := append(scratch[:0], s.Name...)
	for _, f := range [...]float64{
		s.ReadGBs, s.WriteGBs, s.PrivateFrac, s.LatencySensitivity,
		s.SyncFactor, s.WorkGB, s.SharedGB, s.PrivateGBPerNode,
	} {
		b = append(b, '|')
		b = strconv.AppendFloat(b, f, 'g', -1, 64)
	}
	b = append(b, '|')
	b = strconv.AppendBool(b, s.ComputeBound)
	b = append(b, '|')
	b = strconv.AppendFloat(b, s.InitSeconds, 'g', -1, 64)
	b = append(b, '|')
	b = strconv.AppendFloat(b, s.InitDemandFactor, 'g', -1, 64)
	h := fnv64a(fnvOffset64, b)
	for _, ph := range s.Phases {
		b = append(b[:0], '|', 'p')
		b = strconv.AppendFloat(b, ph.AtWorkFraction, 'g', -1, 64)
		b = append(b, ':')
		b = strconv.AppendFloat(b, ph.DemandFactor, 'g', -1, 64)
		b = append(b, ':')
		b = strconv.AppendFloat(b, ph.LatencyFactor, 'g', -1, 64)
		h = fnv64a(h, b)
	}
	return appendHex64(dst, h)
}

// fnvOffset64 and fnvPrime64 are the FNV-64a parameters, matching
// hash/fnv's New64a.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a folds data into an FNV-64a running hash without the heap
// allocation of a hash.Hash64 value.
func fnv64a(h uint64, data []byte) uint64 {
	for _, c := range data {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// appendHex64 appends h exactly like fmt.Sprintf("%016x", h): 16
// lowercase hex digits, zero-padded.
func appendHex64(dst []byte, h uint64) []byte {
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[h&0xF]
		h >>= 4
	}
	return append(dst, buf[:]...)
}

// ArrivalSpec describes when instances of a workload enter the system — the
// churn layer the single-mix paper experiments lack. Arrival times are
// materialized deterministically from a seed with the repo's own splitmix64
// stream (not math/rand), so the same spec and seed produce bit-identical
// series on every platform and Go version; the fleet scheduler's replayable
// event log depends on that.
type ArrivalSpec struct {
	// Process selects the arrival process: "periodic" (fixed interval, with
	// optional jitter), "poisson" (exponential inter-arrival gaps) or
	// "trace" (explicit recorded timestamps, replayed verbatim).
	Process string
	// Rate is the mean arrival rate in jobs per simulated second
	// (periodic/poisson only).
	Rate float64
	// Start offsets the first arrival from time zero (periodic/poisson
	// only).
	Start float64
	// Count is the number of arrivals the spec generates. For the trace
	// process it is implied by len(Trace); if set it must agree.
	Count int
	// Jitter (periodic only) perturbs each arrival uniformly within
	// ±Jitter/2 of its slot, as a fraction of the interval, in [0,1).
	Jitter float64
	// Trace (trace process only) is the explicit arrival series in
	// simulated seconds — typically read back from a fleet event log. It is
	// replayed exactly; the seed is ignored.
	Trace []float64
}

// Arrival process names.
const (
	Periodic = "periodic"
	Poisson  = "poisson"
	Trace    = "trace"
)

// TraceArrival builds the arrival spec that replays the given timestamps
// verbatim — the trace-driven source that turns a recorded fleet event log
// back into an input stream. The slice is copied.
func TraceArrival(times []float64) ArrivalSpec {
	return ArrivalSpec{
		Process: Trace,
		Count:   len(times),
		Trace:   append([]float64(nil), times...),
	}
}

// Validate checks the spec for internal consistency.
func (a ArrivalSpec) Validate() error {
	switch a.Process {
	case Periodic, Poisson:
		if a.Rate <= 0 {
			return fmt.Errorf("workload: arrival rate %g must be positive", a.Rate)
		}
		if a.Start < 0 {
			return fmt.Errorf("workload: negative arrival start %g", a.Start)
		}
		if a.Count <= 0 {
			return fmt.Errorf("workload: arrival count %d must be positive", a.Count)
		}
		if a.Jitter < 0 || a.Jitter >= 1 {
			return fmt.Errorf("workload: jitter %g out of [0,1)", a.Jitter)
		}
	case Trace:
		if len(a.Trace) == 0 {
			return fmt.Errorf("workload: trace arrival spec has no timestamps")
		}
		if a.Count != 0 && a.Count != len(a.Trace) {
			return fmt.Errorf("workload: trace count %d disagrees with %d timestamps", a.Count, len(a.Trace))
		}
		for i, t := range a.Trace {
			if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
				return fmt.Errorf("workload: trace timestamp %d is %g", i, t)
			}
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q", a.Process)
	}
	return nil
}

// Times materializes the arrival time series. The same spec and seed always
// produce the same series; distinct seeds decorrelate streams. The trace
// process ignores the seed and returns its recorded series unchanged.
func (a ArrivalSpec) Times(seed uint64) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.Process == Trace {
		return append([]float64(nil), a.Trace...), nil
	}
	rng := NewRand(seed)
	out := make([]float64, a.Count)
	interval := 1 / a.Rate
	t := a.Start
	for i := range out {
		switch a.Process {
		case Periodic:
			out[i] = t
			if a.Jitter > 0 {
				out[i] += interval * a.Jitter * (rng.Float64() - 0.5)
				if out[i] < 0 {
					out[i] = 0
				}
			}
			t += interval
		case Poisson:
			// Exponential gap via inverse transform; 1-u is in (0,1], so
			// the log argument never hits zero.
			t += -math.Log(1-rng.Float64()) * interval
			out[i] = t
		}
	}
	return out, nil
}

// Rand is a tiny deterministic PRNG (splitmix64): platform- and
// Go-version-independent, unlike math/rand's unspecified stream. It backs
// every randomized choice on the fleet's replay path.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
