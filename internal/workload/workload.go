// Package workload models the memory-intensive applications the paper
// evaluates. The paper characterizes each benchmark by its per-node memory
// demand and access mix (Table I, measured with NumaMMA on Machine B with
// one full worker node) plus its scalability (optimal worker counts in
// Figure 3c/d). A Spec captures exactly those published quantities, plus
// two behavioural parameters the reproduction calibrates: latency
// sensitivity (how much remote/loaded-latency suppresses issued demand)
// and a synchronization factor (how parallel efficiency decays with the
// worker count).
package workload

import "fmt"

// RefCoresPerNode is the core count of the node Table I was measured on
// (Machine B, 7 cores per node). Per-thread demand is the per-node demand
// divided by this.
const RefCoresPerNode = 7

// Spec is a parametric application model.
type Spec struct {
	// Name identifies the workload (paper abbreviations: OC, ON, SP.B, SC,
	// FT.C, Swaptions).
	Name string

	// ReadGBs and WriteGBs are the demand of one full reference worker node
	// in GB/s (Table I columns 2-3, converted from MB/s).
	ReadGBs, WriteGBs float64

	// PrivateFrac is the fraction of accesses that target thread-private
	// pages (Table I column 4); the rest go to shared pages.
	PrivateFrac float64

	// LatencySensitivity (κ) throttles issued demand as the mean access
	// latency rises above the unloaded local latency:
	// demand = maxDemand / (1 + κ·(L̄/L_local − 1)). Streaming workloads
	// with deep prefetching have low κ; pointer-chasing ones high κ.
	LatencySensitivity float64

	// SyncFactor (σ) models synchronization/serial-fraction losses:
	// parallel efficiency on W worker nodes is 1/(1 + σ·(W−1)). It is
	// calibrated so the optimal worker counts match Figure 3c/d.
	SyncFactor float64

	// WorkGB is the raw data volume (GB of reads plus writes) the run must
	// transfer to complete. Execution time = how long the simulated memory
	// system takes to move it (scaled by parallel efficiency).
	WorkGB float64

	// SharedGB is the size of the shared dataset segment.
	SharedGB float64

	// PrivateGBPerNode is the size of the per-worker-node private segment.
	PrivateGBPerNode float64

	// ComputeBound marks workloads whose performance is not memory-bound
	// (Swaptions); they run indefinitely as background co-runners and only
	// their stall rate is observed.
	ComputeBound bool

	// InitSeconds models an initialization phase (allocation, input
	// parsing) at the start of the run during which memory demand is
	// scaled by InitDemandFactor. The paper expects BWAP-init to be called
	// only once the application enters its stable phase; the MAPI-based
	// phase detector (core package) automates that using this phase
	// structure.
	InitSeconds float64
	// InitDemandFactor scales demand during InitSeconds (default 1 = no
	// distinct phase).
	InitDemandFactor float64

	// Phases optionally makes the stable behaviour itself change over the
	// run — the paper's Section VI future-work scenario ("applications
	// whose access patterns change over time"). Entries must be ordered by
	// AtWorkFraction; the engine applies the last phase whose threshold
	// the app's progress has crossed. An empty slice means one stable
	// phase.
	Phases []Phase
}

// Phase is one stable regime of a phase-changing application.
type Phase struct {
	// AtWorkFraction is the progress fraction (0..1) at which the phase
	// begins.
	AtWorkFraction float64
	// DemandFactor scales the spec's memory demand during the phase.
	DemandFactor float64
	// LatencyFactor scales the spec's latency sensitivity during the phase.
	LatencyFactor float64
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.ReadGBs < 0 || s.WriteGBs < 0 || s.ReadGBs+s.WriteGBs == 0 {
		return fmt.Errorf("workload %s: demand %.2f/%.2f GB/s", s.Name, s.ReadGBs, s.WriteGBs)
	}
	if s.PrivateFrac < 0 || s.PrivateFrac > 1 {
		return fmt.Errorf("workload %s: private fraction %.3f", s.Name, s.PrivateFrac)
	}
	if s.LatencySensitivity < 0 {
		return fmt.Errorf("workload %s: negative latency sensitivity", s.Name)
	}
	if s.SyncFactor < 0 {
		return fmt.Errorf("workload %s: negative sync factor", s.Name)
	}
	if !s.ComputeBound && s.WorkGB <= 0 {
		return fmt.Errorf("workload %s: non-positive work volume", s.Name)
	}
	if s.SharedGB <= 0 && s.PrivateFrac < 1 {
		return fmt.Errorf("workload %s: shared accesses but no shared segment", s.Name)
	}
	if s.PrivateGBPerNode <= 0 && s.PrivateFrac > 0 {
		return fmt.Errorf("workload %s: private accesses but no private segment", s.Name)
	}
	if s.InitSeconds < 0 {
		return fmt.Errorf("workload %s: negative init phase", s.Name)
	}
	if s.InitSeconds > 0 && s.InitDemandFactor < 0 {
		return fmt.Errorf("workload %s: negative init demand factor", s.Name)
	}
	prev := -1.0
	for i, ph := range s.Phases {
		if ph.AtWorkFraction < 0 || ph.AtWorkFraction > 1 {
			return fmt.Errorf("workload %s: phase %d at fraction %v", s.Name, i, ph.AtWorkFraction)
		}
		if ph.AtWorkFraction <= prev {
			return fmt.Errorf("workload %s: phases out of order at %d", s.Name, i)
		}
		if ph.DemandFactor < 0 || ph.LatencyFactor < 0 {
			return fmt.Errorf("workload %s: phase %d has negative factors", s.Name, i)
		}
		prev = ph.AtWorkFraction
	}
	return nil
}

// PhaseAt returns the demand and latency factors in force at the given
// progress fraction (1,1 when no phase applies).
func (s Spec) PhaseAt(workFraction float64) (demandFactor, latencyFactor float64) {
	demandFactor, latencyFactor = 1, 1
	for _, ph := range s.Phases {
		if workFraction >= ph.AtWorkFraction {
			demandFactor, latencyFactor = ph.DemandFactor, ph.LatencyFactor
		}
	}
	return demandFactor, latencyFactor
}

// WithInitPhase returns a copy of the spec with an initialization phase of
// the given duration and relative memory demand.
func (s Spec) WithInitPhase(seconds, demandFactor float64) Spec {
	out := s
	out.InitSeconds = seconds
	out.InitDemandFactor = demandFactor
	return out
}

// PerThreadReadGBs returns the read demand of one thread.
func (s Spec) PerThreadReadGBs() float64 { return s.ReadGBs / RefCoresPerNode }

// PerThreadWriteGBs returns the write demand of one thread.
func (s Spec) PerThreadWriteGBs() float64 { return s.WriteGBs / RefCoresPerNode }

// ParallelEfficiency returns 1/(1+σ·(W−1)) for W worker nodes.
func (s Spec) ParallelEfficiency(workers int) float64 {
	if workers <= 1 {
		return 1
	}
	return 1 / (1 + s.SyncFactor*float64(workers-1))
}

// SharedFrac returns 1 − PrivateFrac.
func (s Spec) SharedFrac() float64 { return 1 - s.PrivateFrac }

// The paper's benchmark suite, calibrated to Table I. WorkGB values give
// each benchmark a stand-alone single-worker runtime in the low hundreds of
// simulated seconds, mirroring the native/CLASS-C datasets' minutes-scale
// runs; experiments scale them down uniformly when appropriate.
//
// Latency sensitivities: OC/ON/FT.C are blocked stencil/FFT codes with
// regular streams (low κ); SP.B has tighter data dependencies; SC
// (Streamcluster) is dominated by dependent distance computations over
// shared points, the most latency-exposed of the set. Sync factors are
// calibrated against the optimal worker counts of Figure 3c/d (SP.B stops
// scaling at 1 node; SC at 4; OC/ON/FT.C scale to the full machine).
var (
	// OceanCP is SPLASH-2 Ocean (contiguous partitions): 17576 MB/s reads,
	// 6492 MB/s writes, 79.3% private accesses.
	OceanCP = Spec{
		Name: "OC", ReadGBs: 17.576, WriteGBs: 6.492, PrivateFrac: 0.793,
		LatencySensitivity: 0.0, SyncFactor: 0.05,
		WorkGB: 3200, SharedGB: 0.75, PrivateGBPerNode: 0.35,
	}
	// OceanNCP is SPLASH-2 Ocean (non-contiguous partitions): 16053/5578
	// MB/s, 86.7% private.
	OceanNCP = Spec{
		Name: "ON", ReadGBs: 16.053, WriteGBs: 5.578, PrivateFrac: 0.867,
		LatencySensitivity: 0.0, SyncFactor: 0.05,
		WorkGB: 2900, SharedGB: 0.6, PrivateGBPerNode: 0.4,
	}
	// SPB is NAS SP class B: 11962/5352 MB/s, 80.1% shared, stops scaling
	// beyond one worker node (Figure 3c/d shows SP.B at 1W on both machines).
	SPB = Spec{
		Name: "SP.B", ReadGBs: 11.962, WriteGBs: 5.352, PrivateFrac: 0.199,
		LatencySensitivity: 0.25, SyncFactor: 1.1,
		WorkGB: 2200, SharedGB: 1.0, PrivateGBPerNode: 0.1,
	}
	// Streamcluster (PARSEC): 10055/70 MB/s, 99.8% shared, read-dominated —
	// the closest real workload to the paper's canonical application.
	Streamcluster = Spec{
		Name: "SC", ReadGBs: 10.055, WriteGBs: 0.070, PrivateFrac: 0.002,
		LatencySensitivity: 0.30, SyncFactor: 0.22,
		WorkGB: 1900, SharedGB: 1.0, PrivateGBPerNode: 0.02,
	}
	// FTC is NAS FT class C: 5585/4715 MB/s, 95% private, write-heavy.
	FTC = Spec{
		Name: "FT.C", ReadGBs: 5.585, WriteGBs: 4.715, PrivateFrac: 0.95,
		LatencySensitivity: 0.03, SyncFactor: 0.05,
		WorkGB: 2000, SharedGB: 0.3, PrivateGBPerNode: 0.45,
	}
	// Swaptions (PARSEC) is the compute-bound co-runner of the co-scheduled
	// experiments: negligible bandwidth demand and mild latency
	// sensitivity. The paper reports that B placing pages on Swaptions'
	// nodes caused "no relevant changes" to its performance; the small κ
	// reproduces that near-indifference while still letting the
	// co-scheduled tuner's stage 1 observe a stall-rate signal.
	Swaptions = Spec{
		Name: "Swaptions", ReadGBs: 0.35, WriteGBs: 0.05, PrivateFrac: 0.9,
		LatencySensitivity: 0.2, SyncFactor: 0,
		SharedGB: 0.05, PrivateGBPerNode: 0.05, ComputeBound: true,
	}
)

// Benchmarks returns the five memory-intensive benchmarks in the order the
// paper's figures use (SC, OC, ON, SP.B, FT.C).
func Benchmarks() []Spec {
	return []Spec{Streamcluster, OceanCP, OceanNCP, SPB, FTC}
}

// ByName returns the named spec (paper abbreviation) or an error.
func ByName(name string) (Spec, error) {
	for _, s := range append(Benchmarks(), Swaptions) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Scaled returns a copy of the spec with its work volume multiplied by f —
// used by tests and benchmarks to run shortened experiments with identical
// steady-state behaviour.
func (s Spec) Scaled(f float64) Spec {
	out := s
	out.WorkGB *= f
	return out
}

// Synthetic returns a configurable streaming workload, used for property
// tests and as the canonical profiling application (Section III-A3: "a
// simple benchmark [whose threads perform] a random traversal of a shared
// array").
func Synthetic(name string, readGBs, writeGBs, privateFrac, kappa float64) Spec {
	return Spec{
		Name: name, ReadGBs: readGBs, WriteGBs: writeGBs, PrivateFrac: privateFrac,
		LatencySensitivity: kappa, SyncFactor: 0,
		WorkGB:   1e9, // effectively unbounded; profiling runs are time-limited
		SharedGB: 1.0, PrivateGBPerNode: 0.25,
	}
}
