package workload

import (
	"math"
	"testing"
)

func TestSignatureStableAndDiscriminating(t *testing.T) {
	a := Streamcluster
	b := Streamcluster
	if a.Signature() != b.Signature() {
		t.Fatal("identical specs must share a signature")
	}
	b.ReadGBs += 0.001
	if a.Signature() == b.Signature() {
		t.Fatal("changed demand must change the signature")
	}
	c := Streamcluster
	c.Phases = []Phase{{AtWorkFraction: 0.5, DemandFactor: 2, LatencyFactor: 1}}
	if a.Signature() == c.Signature() {
		t.Fatal("phases must be part of the signature")
	}
}

func TestArrivalValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Process: "burst", Rate: 1, Count: 1},
		{Process: Periodic, Rate: 0, Count: 1},
		{Process: Periodic, Rate: 1, Count: 0},
		{Process: Periodic, Rate: 1, Count: 1, Start: -1},
		{Process: Periodic, Rate: 1, Count: 1, Jitter: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
	good := ArrivalSpec{Process: Poisson, Rate: 0.5, Count: 10, Start: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestPeriodicTimes(t *testing.T) {
	a := ArrivalSpec{Process: Periodic, Rate: 2, Start: 1, Count: 4}
	got, err := a.Times(7)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 2.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Times = %v, want %v", got, want)
		}
	}
}

func TestPoissonTimesDeterministicAndPlausible(t *testing.T) {
	a := ArrivalSpec{Process: Poisson, Rate: 1, Count: 2000}
	t1, err := a.Times(42)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := a.Times(42)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	t3, _ := a.Times(43)
	if t1[0] == t3[0] && t1[1] == t3[1] {
		t.Fatal("different seeds produced the same series")
	}
	// Mean inter-arrival gap should approximate 1/rate.
	mean := t1[len(t1)-1] / float64(len(t1))
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("mean gap %.3f, want ~1.0", mean)
	}
	// Strictly increasing.
	for i := 1; i < len(t1); i++ {
		if t1[i] <= t1[i-1] {
			t.Fatalf("non-increasing arrivals at %d", i)
		}
	}
}

func TestRandUnitRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", u)
		}
	}
}
