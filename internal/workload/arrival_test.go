package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// referenceSignature is the original fmt-based formulation of Signature,
// kept as the oracle for the alloc-free strconv rewrite: the two must
// agree byte for byte on every spec, or cache snapshots persisted under
// the old digests would silently stop matching.
func referenceSignature(s Spec) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%g|%g|%g|%g|%g|%g|%g|%g|%v|%g|%g",
		s.Name, s.ReadGBs, s.WriteGBs, s.PrivateFrac, s.LatencySensitivity,
		s.SyncFactor, s.WorkGB, s.SharedGB, s.PrivateGBPerNode,
		s.ComputeBound, s.InitSeconds, s.InitDemandFactor)
	for _, ph := range s.Phases {
		fmt.Fprintf(h, "|p%g:%g:%g", ph.AtWorkFraction, ph.DemandFactor, ph.LatencyFactor)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestSignatureMatchesReference pins Signature to the fmt-based oracle
// over the full benchmark catalog plus adversarial specs (tiny, huge and
// negative floats exercising %g's exponent switchover, long names, phase
// lists, the init-burst fields and the bool).
func TestSignatureMatchesReference(t *testing.T) {
	specs := Benchmarks()
	extra := Streamcluster
	extra.Name = "adversarial|sig"
	extra.ReadGBs = 1e-7
	extra.WriteGBs = 1.25e21
	extra.PrivateFrac = -0.125
	extra.LatencySensitivity = 5e-324
	extra.SyncFactor = math.MaxFloat64
	extra.WorkGB = 123456789.000001
	extra.ComputeBound = true
	extra.InitSeconds = 0.5
	extra.InitDemandFactor = 3
	extra.Phases = []Phase{
		{AtWorkFraction: 1e-9, DemandFactor: 2.5, LatencyFactor: 0.75},
		{AtWorkFraction: 0.9999999999, DemandFactor: 1e20, LatencyFactor: -0},
	}
	specs = append(specs, extra, Spec{}, Synthetic("syn", 60, 12, 0.3, 0.1))
	for _, s := range specs {
		if got, want := s.Signature(), referenceSignature(s); got != want {
			t.Errorf("%q: Signature %s, reference %s", s.Name, got, want)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { specs[0].Signature() }); allocs > 1 {
		t.Errorf("Signature allocates %.1f times per call; want <= 1 (the returned string)", allocs)
	}
}

func TestSignatureStableAndDiscriminating(t *testing.T) {
	a := Streamcluster
	b := Streamcluster
	if a.Signature() != b.Signature() {
		t.Fatal("identical specs must share a signature")
	}
	b.ReadGBs += 0.001
	if a.Signature() == b.Signature() {
		t.Fatal("changed demand must change the signature")
	}
	c := Streamcluster
	c.Phases = []Phase{{AtWorkFraction: 0.5, DemandFactor: 2, LatencyFactor: 1}}
	if a.Signature() == c.Signature() {
		t.Fatal("phases must be part of the signature")
	}
}

func TestArrivalValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Process: "burst", Rate: 1, Count: 1},
		{Process: Periodic, Rate: 0, Count: 1},
		{Process: Periodic, Rate: 1, Count: 0},
		{Process: Periodic, Rate: 1, Count: 1, Start: -1},
		{Process: Periodic, Rate: 1, Count: 1, Jitter: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
	good := ArrivalSpec{Process: Poisson, Rate: 0.5, Count: 10, Start: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestPeriodicTimes(t *testing.T) {
	a := ArrivalSpec{Process: Periodic, Rate: 2, Start: 1, Count: 4}
	got, err := a.Times(7)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 2.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Times = %v, want %v", got, want)
		}
	}
}

func TestPoissonTimesDeterministicAndPlausible(t *testing.T) {
	a := ArrivalSpec{Process: Poisson, Rate: 1, Count: 2000}
	t1, err := a.Times(42)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := a.Times(42)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	t3, _ := a.Times(43)
	if t1[0] == t3[0] && t1[1] == t3[1] {
		t.Fatal("different seeds produced the same series")
	}
	// Mean inter-arrival gap should approximate 1/rate.
	mean := t1[len(t1)-1] / float64(len(t1))
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("mean gap %.3f, want ~1.0", mean)
	}
	// Strictly increasing.
	for i := 1; i < len(t1); i++ {
		if t1[i] <= t1[i-1] {
			t.Fatalf("non-increasing arrivals at %d", i)
		}
	}
}

// TestTraceArrival covers the trace-driven source: recorded timestamps are
// replayed verbatim, seed-independently, and defensively copied.
func TestTraceArrival(t *testing.T) {
	recorded := []float64{0, 0.4, 2.25, 2.25, 7}
	a := TraceArrival(recorded)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Count != len(recorded) {
		t.Fatalf("Count = %d, want %d", a.Count, len(recorded))
	}
	t1, err := a.Times(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Times(999) // seed must be irrelevant
	if err != nil {
		t.Fatal(err)
	}
	for i := range recorded {
		if t1[i] != recorded[i] || t2[i] != recorded[i] {
			t.Fatalf("trace replay diverged at %d: %v / %v, want %v", i, t1[i], t2[i], recorded[i])
		}
	}
	// Mutating the input or the output must not alias the spec.
	recorded[0] = 99
	t1[1] = 99
	t3, _ := a.Times(1)
	if t3[0] != 0 || t3[1] != 0.4 {
		t.Fatalf("trace spec aliases caller slices: %v", t3)
	}
}

func TestTraceArrivalValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Process: Trace}, // no timestamps
		{Process: Trace, Trace: []float64{1}, Count: 2}, // count disagrees
		{Process: Trace, Trace: []float64{-1}},          // negative time
		{Process: Trace, Trace: []float64{math.NaN()}},  // NaN
		{Process: Trace, Trace: []float64{math.Inf(1)}}, // +Inf never arrives
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("trace spec %d validated, want error", i)
		}
	}
	if err := (ArrivalSpec{Process: Trace, Trace: []float64{0, 1}}).Validate(); err != nil {
		t.Errorf("good trace spec rejected: %v", err)
	}
}

func TestRandUnitRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", u)
		}
	}
}
