package workload

import (
	"math"
	"testing"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for _, s := range append(Benchmarks(), Swaptions) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestTableICalibration pins the specs to the paper's Table I numbers
// (MB/s and access-mix percentages).
func TestTableICalibration(t *testing.T) {
	cases := []struct {
		spec           Spec
		readMBs, wrMBs float64
		privPct, shPct float64
	}{
		{OceanCP, 17576, 6492, 79.3, 20.7},
		{OceanNCP, 16053, 5578, 86.7, 13.3},
		{SPB, 11962, 5352, 19.9, 80.1},
		{Streamcluster, 10055, 70, 0.2, 99.8},
		{FTC, 5585, 4715, 95.0, 5.0},
	}
	for _, c := range cases {
		if got := c.spec.ReadGBs * 1000; math.Abs(got-c.readMBs) > 0.5 {
			t.Errorf("%s reads = %.0f MB/s, want %.0f", c.spec.Name, got, c.readMBs)
		}
		if got := c.spec.WriteGBs * 1000; math.Abs(got-c.wrMBs) > 0.5 {
			t.Errorf("%s writes = %.0f MB/s, want %.0f", c.spec.Name, got, c.wrMBs)
		}
		if got := c.spec.PrivateFrac * 100; math.Abs(got-c.privPct) > 0.05 {
			t.Errorf("%s private = %.1f%%, want %.1f%%", c.spec.Name, got, c.privPct)
		}
		if got := c.spec.SharedFrac() * 100; math.Abs(got-c.shPct) > 0.05 {
			t.Errorf("%s shared = %.1f%%, want %.1f%%", c.spec.Name, got, c.shPct)
		}
	}
}

func TestPerThreadDemand(t *testing.T) {
	// Table I was measured with one full 7-core worker node.
	if got := Streamcluster.PerThreadReadGBs() * RefCoresPerNode; math.Abs(got-10.055) > 1e-9 {
		t.Fatalf("per-thread read × 7 = %v, want 10.055", got)
	}
}

func TestParallelEfficiency(t *testing.T) {
	s := Spec{SyncFactor: 0.5}
	if got := s.ParallelEfficiency(1); got != 1 {
		t.Fatalf("eff(1) = %v", got)
	}
	if got := s.ParallelEfficiency(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("eff(3) = %v, want 0.5", got)
	}
	// Monotone non-increasing.
	prev := 1.0
	for w := 1; w <= 8; w++ {
		e := SPB.ParallelEfficiency(w)
		if e > prev+1e-12 {
			t.Fatalf("efficiency increased at W=%d", w)
		}
		prev = e
	}
}

func TestSPBStopsScalingEarly(t *testing.T) {
	// SP.B's sync factor must make 2 workers unattractive even if memory
	// bandwidth doubled perfectly: 2·eff(2) < 1.05·eff(1).
	if 2*SPB.ParallelEfficiency(2) >= 1.05 {
		t.Fatalf("SP.B would scale to 2 workers even with perfect BW scaling: 2·eff(2) = %v",
			2*SPB.ParallelEfficiency(2))
	}
	// The scalable codes must keep most of their efficiency at 4 workers.
	for _, s := range []Spec{OceanCP, OceanNCP, FTC} {
		if 4*s.ParallelEfficiency(4) < 3 {
			t.Errorf("%s lost too much efficiency at 4W", s.Name)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", ReadGBs: -1, WriteGBs: 2, WorkGB: 1, SharedGB: 1},
		{Name: "x", ReadGBs: 1, PrivateFrac: 1.5, WorkGB: 1, SharedGB: 1},
		{Name: "x", ReadGBs: 1, LatencySensitivity: -1, WorkGB: 1, SharedGB: 1},
		{Name: "x", ReadGBs: 1, SyncFactor: -1, WorkGB: 1, SharedGB: 1},
		{Name: "x", ReadGBs: 1, WorkGB: 0, SharedGB: 1},                   // no work
		{Name: "x", ReadGBs: 1, WorkGB: 1, SharedGB: 0},                   // shared accesses, no segment
		{Name: "x", ReadGBs: 1, WorkGB: 1, SharedGB: 1, PrivateFrac: 0.5}, // private accesses, no segment
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("SC")
	if err != nil || s.Name != "SC" {
		t.Fatalf("ByName(SC) = %v, %v", s.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if s, err := ByName("Swaptions"); err != nil || !s.ComputeBound {
		t.Fatal("Swaptions must be compute-bound")
	}
}

func TestScaled(t *testing.T) {
	s := Streamcluster.Scaled(0.5)
	if math.Abs(s.WorkGB-Streamcluster.WorkGB/2) > 1e-9 {
		t.Fatalf("Scaled work = %v", s.WorkGB)
	}
	if s.ReadGBs != Streamcluster.ReadGBs {
		t.Fatal("Scaled must not change demand")
	}
}

func TestSynthetic(t *testing.T) {
	s := Synthetic("probe", 20, 0, 0, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SharedFrac() != 1 {
		t.Fatal("synthetic probe must be all-shared with privateFrac 0")
	}
}

func TestBenchmarksOrderMatchesPaperFigures(t *testing.T) {
	want := []string{"SC", "OC", "ON", "SP.B", "FT.C"}
	got := Benchmarks()
	if len(got) != len(want) {
		t.Fatalf("got %d benchmarks", len(got))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Fatalf("order %v, want %v", got[i].Name, want[i])
		}
	}
}

func TestWithInitPhase(t *testing.T) {
	s := Streamcluster.WithInitPhase(2.5, 0.3)
	if s.InitSeconds != 2.5 || s.InitDemandFactor != 0.3 {
		t.Fatalf("WithInitPhase = %v/%v", s.InitSeconds, s.InitDemandFactor)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Streamcluster
	bad.InitSeconds = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative init phase accepted")
	}
	bad = Streamcluster.WithInitPhase(1, -0.5)
	if err := bad.Validate(); err == nil {
		t.Fatal("negative init demand accepted")
	}
}
