// Package memsys models the contended memory system of a NUMA machine.
//
// Given a set of flows — (source memory node → destination worker node)
// pairs with a bandwidth demand — it computes the rates the flows actually
// achieve under demand-bounded max-min fairness (progressive filling) over
// three resource classes:
//
//   - the source node's memory controller (local/remote contention),
//   - every directed interconnect link on the flow's route (congestion),
//   - the destination node's core ingest capacity.
//
// This is the substrate behind the paper's Equations 1–5: the "parallel
// transfers, slowest transfer dominates" abstraction is exactly what
// max-min fair sharing produces when a worker spreads demand across nodes.
//
// Two refinements model the non-linearities Section III-A3 cites:
//
//   - controller efficiency shrinks with the number of distinct streams
//     contending at a controller (row-buffer/bank interference, DraMon [30]);
//   - write traffic costs more than read traffic at the controller
//     (callers fold writes in via EquivalentDemand).
package memsys

import (
	"fmt"
	"math"

	"bwap/internal/topology"
)

// Flow is one directed bandwidth demand: threads on Dst reading (and
// writing) pages that live on Src at up to Demand GB/s of
// controller-equivalent traffic.
type Flow struct {
	Src, Dst topology.NodeID
	// Demand is the controller-equivalent demand in GB/s (reads plus
	// write-penalty-weighted writes; see EquivalentDemand).
	Demand float64
	// Streams is the number of distinct hardware streams (threads) behind
	// this flow; it feeds the source controller's multi-stream efficiency
	// model. Zero is treated as one stream; a negative value contributes no
	// streams (used when the same threads are already counted by a sibling
	// flow of the same application and worker).
	Streams int
	// Tag is opaque caller context (e.g. which app and page class the flow
	// belongs to); the solver ignores it.
	Tag int
}

// streamCount returns the effective stream count of a flow.
func (f Flow) streamCount() int {
	switch {
	case f.Streams < 0:
		return 0
	case f.Streams == 0:
		return 1
	default:
		return f.Streams
	}
}

// Config tunes the contention model.
type Config struct {
	// StreamPenalty is the per-extra-stream controller efficiency loss
	// coefficient: eff(k) = Floor + (1-Floor)/(1+StreamPenalty*(k-1)).
	StreamPenalty float64
	// EfficiencyFloor bounds how far multi-stream interference can degrade
	// a controller.
	EfficiencyFloor float64
	// WritePenalty is the controller cost multiplier for write bytes,
	// applied by EquivalentDemand.
	WritePenalty float64
}

// DefaultConfig returns the model parameters used across the reproduction.
// StreamPenalty/Floor are chosen so that a fully loaded 8-thread node keeps
// roughly 80% of its single-stream controller bandwidth, consistent with
// the saturation behaviour the paper observes for OC/ON/FT.C private
// traffic; WritePenalty reflects DRAM write turnaround cost.
func DefaultConfig() Config {
	return Config{
		StreamPenalty:   0.035,
		EfficiencyFloor: 0.70,
		WritePenalty:    1.5,
	}
}

// EquivalentDemand folds a read/write demand pair into a single
// controller-equivalent GB/s figure.
func (c Config) EquivalentDemand(readGBs, writeGBs float64) float64 {
	return readGBs + c.WritePenalty*writeGBs
}

// Efficiency returns the controller efficiency for k contending streams.
func (c Config) Efficiency(k int) float64 {
	if k <= 1 {
		return 1
	}
	eff := c.EfficiencyFloor + (1-c.EfficiencyFloor)/(1+c.StreamPenalty*float64(k-1))
	return eff
}

// System solves flow sets against one machine. It is reusable and
// goroutine-safe for concurrent Solve calls (all state is per-call).
type System struct {
	m   *topology.Machine
	cfg Config
}

// New returns a System for the machine with the given model configuration.
func New(m *topology.Machine, cfg Config) *System {
	return &System{m: m, cfg: cfg}
}

// Machine returns the underlying machine description.
func (s *System) Machine() *topology.Machine { return s.m }

// Config returns the contention model configuration.
func (s *System) Config() Config { return s.cfg }

// Result reports the outcome of one Solve call.
type Result struct {
	// Rates holds the achieved GB/s of each flow, in input order.
	Rates []float64
	// ControllerUtil is the per-node memory controller utilization in
	// [0,1] relative to effective (efficiency-scaled) capacity.
	ControllerUtil []float64
	// IngestUtil is the per-node core ingest utilization in [0,1].
	IngestUtil []float64
	// LinkUtil is the per-link utilization in [0,1].
	LinkUtil []float64
	// NodeOutGBs is the achieved outbound (read-side) traffic per source
	// node; this is what the per-node DRAM throughput counters expose and
	// what the canonical tuner profiles.
	NodeOutGBs []float64
}

// TotalRate returns the sum of all achieved flow rates.
func (r *Result) TotalRate() float64 {
	total := 0.0
	for _, v := range r.Rates {
		total += v
	}
	return total
}

// resource indices within the solver's flat resource table:
// [0,N)      controllers
// [N,2N)     ingest caps
// [2N,2N+L)  links
func (s *System) resourceCount() int { return 2*s.m.NumNodes() + s.m.NumLinks() }

// Solve computes demand-bounded max-min fair rates for the given flows.
// Flows with non-positive demand get rate 0. The algorithm is progressive
// filling: all unfrozen flows grow at the same rate until either a flow's
// demand is met (it freezes satisfied) or a resource saturates (all flows
// through it freeze bottlenecked); repeat until every flow is frozen.
//
// Each call allocates a fresh Solver, which keeps System goroutine-safe.
// Callers on a hot loop should hold their own Solver and call its Solve,
// which reuses all scratch state and allocates nothing at steady state.
func (s *System) Solve(flows []Flow) *Result {
	return s.NewSolver().Solve(flows)
}

// Solver computes max-min fair rates against one System while reusing all
// intermediate state across calls. It is not safe for concurrent use; give
// each goroutine its own Solver (the simulation engine owns one per run).
type Solver struct {
	sys *System

	// Per-resource scratch, sized once at construction.
	capacity []float64
	initial  []float64
	streams  []int
	load     []int32

	// Per-flow scratch, grown on demand and reused.
	pathBuf   []int32 // concatenated resource lists
	pathOff   []int32 // pathBuf offsets; flow i's path is pathBuf[pathOff[i]:pathOff[i+1]]
	remaining []float64
	activeIdx []int32 // indices of unfrozen flows, ascending

	res Result
	// epoch counts Solve calls, so a caller holding the returned *Result
	// can prove it still describes the most recent solve.
	epoch uint64
}

// NewSolver returns a reusable solver for the system. The float64 scratch
// and result slices are carved from one backing array (full slice
// expressions keep them from growing into each other): the fleet scheduler
// creates an engine — and with it a solver — per placement evaluation, so
// construction cost is on the hot path.
func (s *System) NewSolver() *Solver {
	n := s.m.NumNodes()
	rc := s.resourceCount()
	nl := s.m.NumLinks()
	f := make([]float64, 2*rc+3*n+nl)
	capacity, f := f[:rc:rc], f[rc:]
	initial, f := f[:rc:rc], f[rc:]
	cu, f := f[:n:n], f[n:]
	iu, f := f[:n:n], f[n:]
	lu, f := f[:nl:nl], f[nl:]
	return &Solver{
		sys:      s,
		capacity: capacity,
		initial:  initial,
		streams:  make([]int, n),
		load:     make([]int32, rc),
		res: Result{
			ControllerUtil: cu,
			IngestUtil:     iu,
			LinkUtil:       lu,
			NodeOutGBs:     f,
		},
	}
}

// path returns flow i's resource list.
func (sv *Solver) path(i int32) []int32 {
	return sv.pathBuf[sv.pathOff[i]:sv.pathOff[i+1]]
}

// Epoch returns the number of Solve calls performed on this solver. The
// *Result a Solve returns is the solver's reusable buffer — stable in
// identity, overwritten by the next Solve — so a cached pointer is valid
// exactly while the epoch captured alongside it is unchanged. This is the
// contract the simulation engine's quiescent-interval fast-forward relies
// on to replay a solve bit for bit.
func (sv *Solver) Epoch() uint64 { return sv.epoch }

// Solve computes demand-bounded max-min fair rates for the given flows.
// The returned Result shares the solver's buffers: it is valid only until
// the next Solve call on this solver.
func (sv *Solver) Solve(flows []Flow) *Result {
	s := sv.sys
	n := s.m.NumNodes()
	sv.epoch++
	res := &sv.res
	res.Rates = grow(res.Rates, len(flows))
	zero(res.Rates)
	zero(res.ControllerUtil)
	zero(res.IngestUtil)
	zero(res.LinkUtil)
	zero(res.NodeOutGBs)
	if len(flows) == 0 {
		return res
	}

	// Effective controller capacity given stream counts.
	for i := range sv.streams {
		sv.streams[i] = 0
	}
	for _, f := range flows {
		if f.Demand > 0 {
			sv.streams[f.Src] += f.streamCount()
		}
	}
	capacity := sv.capacity
	for i := 0; i < n; i++ {
		node := s.m.Node(topology.NodeID(i))
		capacity[i] = node.ControllerGBs * s.cfg.Efficiency(sv.streams[i])
		capacity[n+i] = s.m.IngestGBs()
	}
	for l := 0; l < s.m.NumLinks(); l++ {
		capacity[2*n+l] = s.m.Link(topology.LinkID(l)).CapacityGBs
	}
	initial := sv.initial
	copy(initial, capacity)

	// Per-flow resource lists (flat) and the active-flow index list.
	sv.pathOff = grow(sv.pathOff, len(flows)+1)
	sv.remaining = grow(sv.remaining, len(flows))
	sv.activeIdx = sv.activeIdx[:0]
	sv.pathBuf = sv.pathBuf[:0]
	sv.pathOff[0] = 0
	for i, f := range flows {
		if f.Demand > 0 {
			sv.pathBuf = append(sv.pathBuf, int32(f.Src), int32(n+int(f.Dst)))
			for _, l := range s.m.Route(f.Src, f.Dst) {
				sv.pathBuf = append(sv.pathBuf, int32(2*n+int(l)))
			}
			sv.remaining[i] = f.Demand
			sv.activeIdx = append(sv.activeIdx, int32(i))
		}
		sv.pathOff[i+1] = int32(len(sv.pathBuf))
	}

	// Progressive filling. The per-resource active-flow counts (load) are
	// maintained incrementally: initialized once, decremented along a
	// flow's path when it freezes — no per-round rescan of the flow set.
	load := sv.load
	for r := range load {
		load[r] = 0
	}
	for _, i := range sv.activeIdx {
		for _, r := range sv.path(i) {
			load[r]++
		}
	}
	const eps = 1e-9
	for len(sv.activeIdx) > 0 {
		// The uniform increment every active flow can take.
		inc := math.Inf(1)
		for r, k := range load {
			if k > 0 {
				if share := capacity[r] / float64(k); share < inc {
					inc = share
				}
			}
		}
		for _, i := range sv.activeIdx {
			if sv.remaining[i] < inc {
				inc = sv.remaining[i]
			}
		}
		if inc < 0 {
			inc = 0
		}
		// Apply the increment.
		for _, i := range sv.activeIdx {
			res.Rates[i] += inc
			sv.remaining[i] -= inc
			for _, r := range sv.path(i) {
				capacity[r] -= inc
			}
		}
		// Freeze satisfied flows and flows on saturated resources,
		// compacting the active list in place (order is preserved).
		kept := sv.activeIdx[:0]
		for _, i := range sv.activeIdx {
			frozen := sv.remaining[i] <= eps
			if !frozen {
				for _, r := range sv.path(i) {
					if capacity[r] <= eps {
						frozen = true
						break
					}
				}
			}
			if frozen {
				for _, r := range sv.path(i) {
					load[r]--
				}
			} else {
				kept = append(kept, i)
			}
		}
		if len(kept) == len(sv.activeIdx) {
			// Defensive: cannot happen (inc always exhausts a demand or a
			// resource), but never loop forever on numerical corner cases.
			sv.activeIdx = kept
			break
		}
		sv.activeIdx = kept
	}

	// Utilizations and per-node outbound counters.
	for i, f := range flows {
		if res.Rates[i] > 0 {
			res.NodeOutGBs[f.Src] += res.Rates[i]
		}
	}
	for i := 0; i < n; i++ {
		if initial[i] > 0 {
			res.ControllerUtil[i] = (initial[i] - capacity[i]) / initial[i]
		}
		if initial[n+i] > 0 {
			res.IngestUtil[i] = (initial[n+i] - capacity[n+i]) / initial[n+i]
		}
	}
	for l := 0; l < s.m.NumLinks(); l++ {
		r := 2*n + l
		if initial[r] > 0 {
			res.LinkUtil[l] = (initial[r] - capacity[r]) / initial[r]
		}
	}
	return res
}

// grow returns s resized to n, reusing capacity; new elements are zeroed
// only where Go's append semantics leave them stale, so callers must reset
// any state they rely on.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n, n+n/2)
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// PairwiseBW measures the single-stream bandwidth from src to dst — the
// procedure behind Figure 1a: one saturating flow, nothing else running.
func (s *System) PairwiseBW(src, dst topology.NodeID) float64 {
	r := s.Solve([]Flow{{Src: src, Dst: dst, Demand: 1e6}})
	return r.Rates[0]
}

// MeasuredMatrix returns the full pairwise single-stream bandwidth matrix.
func (s *System) MeasuredMatrix() [][]float64 {
	n := s.m.NumNodes()
	out := make([][]float64, n)
	for src := 0; src < n; src++ {
		out[src] = make([]float64, n)
		for dst := 0; dst < n; dst++ {
			out[src][dst] = s.PairwiseBW(topology.NodeID(src), topology.NodeID(dst))
		}
	}
	return out
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.StreamPenalty < 0 {
		return fmt.Errorf("memsys: negative stream penalty %v", c.StreamPenalty)
	}
	if c.EfficiencyFloor <= 0 || c.EfficiencyFloor > 1 {
		return fmt.Errorf("memsys: efficiency floor %v out of (0,1]", c.EfficiencyFloor)
	}
	if c.WritePenalty < 1 {
		return fmt.Errorf("memsys: write penalty %v below 1", c.WritePenalty)
	}
	return nil
}
