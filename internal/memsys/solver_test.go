package memsys

import (
	"testing"

	"bwap/internal/topology"
)

// solverFlows builds a representative contended flow set: every worker
// pulls from every node, private plus shared classes.
func solverFlows(m *topology.Machine) []Flow {
	var flows []Flow
	n := m.NumNodes()
	for dst := 0; dst < n; dst++ {
		for src := 0; src < n; src++ {
			flows = append(flows, Flow{
				Src: topology.NodeID(src), Dst: topology.NodeID(dst),
				Demand:  5 + float64(src+dst),
				Streams: 8,
			})
			flows = append(flows, Flow{
				Src: topology.NodeID(src), Dst: topology.NodeID(dst),
				Demand:  2,
				Streams: -1,
			})
		}
	}
	return flows
}

// TestSolverMatchesSystemSolve pins the reusable solver to the one-shot
// System.Solve results bit for bit, across repeated reuse.
func TestSolverMatchesSystemSolve(t *testing.T) {
	m := topology.MachineA()
	sys := New(m, DefaultConfig())
	flows := solverFlows(m)
	want := sys.Solve(flows)
	sv := sys.NewSolver()
	for round := 0; round < 3; round++ {
		got := sv.Solve(flows)
		for i := range flows {
			if got.Rates[i] != want.Rates[i] {
				t.Fatalf("round %d: rate[%d] = %v, want %v", round, i, got.Rates[i], want.Rates[i])
			}
		}
		for i := range want.ControllerUtil {
			if got.ControllerUtil[i] != want.ControllerUtil[i] {
				t.Fatalf("round %d: controller util[%d] differs", round, i)
			}
			if got.IngestUtil[i] != want.IngestUtil[i] {
				t.Fatalf("round %d: ingest util[%d] differs", round, i)
			}
			if got.NodeOutGBs[i] != want.NodeOutGBs[i] {
				t.Fatalf("round %d: node out[%d] differs", round, i)
			}
		}
		for i := range want.LinkUtil {
			if got.LinkUtil[i] != want.LinkUtil[i] {
				t.Fatalf("round %d: link util[%d] differs", round, i)
			}
		}
	}
}

// TestSolverShrinkingFlowSets checks buffer reuse across calls with
// different flow counts (apps finish, flow sets shrink).
func TestSolverShrinkingFlowSets(t *testing.T) {
	m := topology.MachineB()
	sys := New(m, DefaultConfig())
	sv := sys.NewSolver()
	all := solverFlows(m)
	for _, n := range []int{len(all), 5, len(all), 1, 0, 3} {
		flows := all[:n]
		got := sv.Solve(flows)
		want := sys.Solve(flows)
		if len(got.Rates) != n {
			t.Fatalf("rates length %d, want %d", len(got.Rates), n)
		}
		for i := range flows {
			if got.Rates[i] != want.Rates[i] {
				t.Fatalf("n=%d: rate[%d] = %v, want %v", n, i, got.Rates[i], want.Rates[i])
			}
		}
	}
}

// TestSolverAllocationFree pins the perf contract: a warmed solver
// performs no heap allocation per Solve.
func TestSolverAllocationFree(t *testing.T) {
	m := topology.MachineA()
	sys := New(m, DefaultConfig())
	sv := sys.NewSolver()
	flows := solverFlows(m)
	sv.Solve(flows) // warm buffers
	avg := testing.AllocsPerRun(200, func() { sv.Solve(flows) })
	if avg != 0 {
		t.Fatalf("warmed Solver.Solve allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkSolverSolve measures the reusable solver on the fully loaded
// Machine A flow set.
func BenchmarkSolverSolve(b *testing.B) {
	m := topology.MachineA()
	sys := New(m, DefaultConfig())
	sv := sys.NewSolver()
	flows := solverFlows(m)
	sv.Solve(flows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Solve(flows)
	}
}
