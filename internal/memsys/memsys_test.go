package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"bwap/internal/stats"
	"bwap/internal/topology"
)

func sys(m *topology.Machine) *System { return New(m, DefaultConfig()) }

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsBad(t *testing.T) {
	bad := []Config{
		{StreamPenalty: -1, EfficiencyFloor: 0.5, WritePenalty: 1},
		{StreamPenalty: 0, EfficiencyFloor: 0, WritePenalty: 1},
		{StreamPenalty: 0, EfficiencyFloor: 1.5, WritePenalty: 1},
		{StreamPenalty: 0, EfficiencyFloor: 0.5, WritePenalty: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestEfficiencyMonotoneNonIncreasing(t *testing.T) {
	c := DefaultConfig()
	prev := c.Efficiency(1)
	if prev != 1 {
		t.Fatalf("Efficiency(1) = %v, want 1", prev)
	}
	for k := 2; k <= 64; k++ {
		e := c.Efficiency(k)
		if e > prev+1e-12 {
			t.Fatalf("efficiency increased at k=%d: %v > %v", k, e, prev)
		}
		if e < c.EfficiencyFloor {
			t.Fatalf("efficiency %v fell below floor %v", e, c.EfficiencyFloor)
		}
		prev = e
	}
}

func TestEquivalentDemand(t *testing.T) {
	c := Config{WritePenalty: 1.5}
	if got := c.EquivalentDemand(10, 4); got != 16 {
		t.Fatalf("EquivalentDemand = %v, want 16", got)
	}
}

// TestMeasuredMatrixReproducesFig1a: the solver, driven pairwise exactly the
// way the paper measures Figure 1a, must return the calibrated matrix.
func TestMeasuredMatrixReproducesFig1a(t *testing.T) {
	m := topology.MachineA()
	got := sys(m).MeasuredMatrix()
	want := m.NominalMatrix()
	for s := range want {
		for d := range want[s] {
			if math.Abs(got[s][d]-want[s][d]) > 1e-6 {
				t.Errorf("measured[%d][%d] = %.3f, want %.3f", s, d, got[s][d], want[s][d])
			}
		}
	}
}

func TestSolveEmptyAndZeroDemand(t *testing.T) {
	s := sys(topology.MachineB())
	r := s.Solve(nil)
	if r.TotalRate() != 0 {
		t.Fatal("empty solve produced traffic")
	}
	r = s.Solve([]Flow{{Src: 0, Dst: 1, Demand: 0}, {Src: 0, Dst: 1, Demand: -5}})
	if r.Rates[0] != 0 || r.Rates[1] != 0 {
		t.Fatalf("zero/negative demand produced rates %v", r.Rates)
	}
}

func TestSmallDemandFullySatisfied(t *testing.T) {
	s := sys(topology.MachineB())
	flows := []Flow{
		{Src: 0, Dst: 0, Demand: 1.0},
		{Src: 1, Dst: 0, Demand: 2.0},
		{Src: 3, Dst: 2, Demand: 0.5},
	}
	r := s.Solve(flows)
	for i, f := range flows {
		if math.Abs(r.Rates[i]-f.Demand) > 1e-9 {
			t.Fatalf("flow %d rate %v, want full demand %v", i, r.Rates[i], f.Demand)
		}
	}
}

func TestControllerContention(t *testing.T) {
	// Two local streams on MachineB node 0 (controller 25 GB/s, efficiency
	// <1 with 2 streams) must share the controller roughly equally and sum
	// to the effective capacity.
	s := sys(topology.MachineB())
	r := s.Solve([]Flow{
		{Src: 0, Dst: 0, Demand: 100},
		{Src: 0, Dst: 0, Demand: 100},
	})
	eff := DefaultConfig().Efficiency(2) * 25
	total := r.Rates[0] + r.Rates[1]
	if math.Abs(total-eff) > 1e-6 {
		t.Fatalf("total = %v, want effective capacity %v", total, eff)
	}
	if math.Abs(r.Rates[0]-r.Rates[1]) > 1e-9 {
		t.Fatalf("equal-demand flows got unequal shares: %v", r.Rates)
	}
}

func TestTrunkCongestion(t *testing.T) {
	// Flows 0->4 and 1->5 on Machine A cross the same package trunk
	// (package 0 -> package 2). Individually each achieves 2.8 GB/s; the
	// trunk is 1.25*2.8 = 3.5 GB/s, so together they must be squeezed.
	s := sys(topology.MachineA())
	solo := s.Solve([]Flow{{Src: 0, Dst: 4, Demand: 100}}).Rates[0]
	r := s.Solve([]Flow{
		{Src: 0, Dst: 4, Demand: 100},
		{Src: 1, Dst: 5, Demand: 100},
	})
	if solo < 2.79 || solo > 2.81 {
		t.Fatalf("solo rate = %v, want 2.8", solo)
	}
	together := r.Rates[0] + r.Rates[1]
	if together >= 2*solo-1e-6 {
		t.Fatalf("no congestion: together %v vs 2x solo %v", together, 2*solo)
	}
	if together < 3.4 || together > 3.6 {
		t.Fatalf("together = %v, want ~trunk capacity 3.5", together)
	}
}

func TestAsymmetricPairs(t *testing.T) {
	// Figure 1a is asymmetric: bw(0->4)=2.8 but bw(4->0)=4.0.
	s := sys(topology.MachineA())
	if a, b := s.PairwiseBW(0, 4), s.PairwiseBW(4, 0); math.Abs(a-2.8) > 1e-6 || math.Abs(b-4.0) > 1e-6 {
		t.Fatalf("asymmetry lost: bw(0->4)=%v bw(4->0)=%v", a, b)
	}
}

func TestMaxMinNoUnsatisfiedFlowWithSlack(t *testing.T) {
	// Max-min invariant: every flow is either demand-satisfied or crosses at
	// least one saturated resource.
	m := topology.MachineA()
	s := sys(m)
	flows := []Flow{
		{Src: 0, Dst: 1, Demand: 10},
		{Src: 2, Dst: 1, Demand: 10},
		{Src: 5, Dst: 1, Demand: 10},
		{Src: 1, Dst: 1, Demand: 50},
		{Src: 7, Dst: 6, Demand: 3},
	}
	r := s.Solve(flows)
	checkMaxMinInvariants(t, m, flows, r)
}

// checkMaxMinInvariants verifies (a) rate <= demand, (b) no resource
// overcommitted, (c) unsatisfied flows cross a saturated resource.
func checkMaxMinInvariants(t *testing.T, m *topology.Machine, flows []Flow, r *Result) {
	t.Helper()
	n := m.NumNodes()
	cfg := DefaultConfig()
	streams := make([]int, n)
	for _, f := range flows {
		if f.Demand > 0 {
			streams[f.Src]++
		}
	}
	ctrl := make([]float64, n)
	ingest := make([]float64, n)
	link := make([]float64, m.NumLinks())
	for i, f := range flows {
		if r.Rates[i] > f.Demand+1e-6 {
			t.Fatalf("flow %d rate %v exceeds demand %v", i, r.Rates[i], f.Demand)
		}
		if r.Rates[i] < 0 {
			t.Fatalf("flow %d negative rate %v", i, r.Rates[i])
		}
		ctrl[f.Src] += r.Rates[i]
		ingest[f.Dst] += r.Rates[i]
		for _, l := range m.Route(f.Src, f.Dst) {
			link[l] += r.Rates[i]
		}
	}
	const eps = 1e-6
	for i := 0; i < n; i++ {
		capEff := m.Node(topology.NodeID(i)).ControllerGBs * cfg.Efficiency(streams[i])
		if ctrl[i] > capEff+eps {
			t.Fatalf("controller %d overcommitted: %v > %v", i, ctrl[i], capEff)
		}
		if ingest[i] > m.IngestGBs()+eps {
			t.Fatalf("ingest %d overcommitted: %v > %v", i, ingest[i], m.IngestGBs())
		}
	}
	for l := 0; l < m.NumLinks(); l++ {
		if link[l] > m.Link(topology.LinkID(l)).CapacityGBs+eps {
			t.Fatalf("link %d overcommitted: %v > %v", l, link[l], m.Link(topology.LinkID(l)).CapacityGBs)
		}
	}
	for i, f := range flows {
		if f.Demand <= 0 || r.Rates[i] >= f.Demand-eps {
			continue
		}
		saturated := false
		capEff := m.Node(f.Src).ControllerGBs * cfg.Efficiency(streams[f.Src])
		if ctrl[f.Src] >= capEff-eps {
			saturated = true
		}
		if ingest[f.Dst] >= m.IngestGBs()-eps {
			saturated = true
		}
		for _, l := range m.Route(f.Src, f.Dst) {
			if link[l] >= m.Link(topology.LinkID(l)).CapacityGBs-eps {
				saturated = true
			}
		}
		if !saturated {
			t.Fatalf("flow %d unsatisfied (%v < %v) but crosses no saturated resource", i, r.Rates[i], f.Demand)
		}
	}
}

// TestMaxMinPropertyRandomFlows drives the invariant check with random flow
// sets on both reference machines.
func TestMaxMinPropertyRandomFlows(t *testing.T) {
	machines := []*topology.Machine{topology.MachineA(), topology.MachineB()}
	rng := stats.NewRand(1234)
	f := func(seed uint64) bool {
		m := machines[int(seed%uint64(len(machines)))]
		s := sys(m)
		nf := 1 + int(seed%13)
		flows := make([]Flow, nf)
		for i := range flows {
			flows[i] = Flow{
				Src:    topology.NodeID(rng.IntN(m.NumNodes())),
				Dst:    topology.NodeID(rng.IntN(m.NumNodes())),
				Demand: rng.Float64() * 30,
			}
		}
		r := s.Solve(flows)
		checkMaxMinInvariants(t, m, flows, r)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationBounds(t *testing.T) {
	s := sys(topology.MachineA())
	r := s.Solve([]Flow{
		{Src: 0, Dst: 1, Demand: 100},
		{Src: 4, Dst: 1, Demand: 100},
		{Src: 1, Dst: 1, Demand: 100},
	})
	for i, u := range r.ControllerUtil {
		if u < -1e-9 || u > 1+1e-9 {
			t.Fatalf("controller util[%d] = %v out of [0,1]", i, u)
		}
	}
	for i, u := range r.LinkUtil {
		if u < -1e-9 || u > 1+1e-9 {
			t.Fatalf("link util[%d] = %v out of [0,1]", i, u)
		}
	}
	for i, u := range r.IngestUtil {
		if u < -1e-9 || u > 1+1e-9 {
			t.Fatalf("ingest util[%d] = %v out of [0,1]", i, u)
		}
	}
}

func TestNodeOutCounters(t *testing.T) {
	s := sys(topology.MachineB())
	r := s.Solve([]Flow{
		{Src: 0, Dst: 1, Demand: 3},
		{Src: 0, Dst: 2, Demand: 4},
		{Src: 2, Dst: 2, Demand: 5},
	})
	if math.Abs(r.NodeOutGBs[0]-7) > 1e-9 {
		t.Fatalf("NodeOutGBs[0] = %v, want 7", r.NodeOutGBs[0])
	}
	if math.Abs(r.NodeOutGBs[2]-5) > 1e-9 {
		t.Fatalf("NodeOutGBs[2] = %v, want 5", r.NodeOutGBs[2])
	}
	if r.NodeOutGBs[1] != 0 || r.NodeOutGBs[3] != 0 {
		t.Fatalf("unexpected outbound traffic: %v", r.NodeOutGBs)
	}
}

// TestMoreStreamsDegradeController: aggregate achieved bandwidth from one
// controller shrinks as the stream count grows (the DraMon non-linearity).
func TestMoreStreamsDegradeController(t *testing.T) {
	s := sys(topology.MachineB())
	prev := math.Inf(1)
	for k := 1; k <= 8; k *= 2 {
		flows := make([]Flow, k)
		for i := range flows {
			flows[i] = Flow{Src: 0, Dst: 0, Demand: 100}
		}
		total := s.Solve(flows).TotalRate()
		if total > prev+1e-9 {
			t.Fatalf("throughput grew with more streams: k=%d total=%v prev=%v", k, total, prev)
		}
		prev = total
	}
}

// TestInterleavingBeatsSingleNode reproduces the paper's core motivation:
// a worker with demand above local controller capacity achieves more
// aggregate bandwidth when pages are spread across nodes.
func TestInterleavingBeatsSingleNode(t *testing.T) {
	m := topology.MachineA()
	s := sys(m)
	// All pages local: one fat stream bounded by the local controller.
	local := s.Solve([]Flow{{Src: 0, Dst: 0, Demand: 40}}).TotalRate()
	// Pages interleaved across 4 nodes: parallel transfers.
	spread := s.Solve([]Flow{
		{Src: 0, Dst: 0, Demand: 10},
		{Src: 1, Dst: 0, Demand: 10},
		{Src: 2, Dst: 0, Demand: 10},
		{Src: 3, Dst: 0, Demand: 10},
	}).TotalRate()
	if spread <= local {
		t.Fatalf("interleaving did not help: spread %v <= local %v", spread, local)
	}
}

func TestSolveDeterministic(t *testing.T) {
	s := sys(topology.MachineA())
	flows := []Flow{
		{Src: 0, Dst: 1, Demand: 10},
		{Src: 2, Dst: 1, Demand: 8},
		{Src: 4, Dst: 3, Demand: 12},
	}
	a := s.Solve(flows)
	b := s.Solve(flows)
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("non-deterministic solve: %v vs %v", a.Rates, b.Rates)
		}
	}
}

func BenchmarkSolve64Flows(b *testing.B) {
	m := topology.MachineA()
	s := sys(m)
	rng := stats.NewRand(5)
	flows := make([]Flow, 64)
	for i := range flows {
		flows[i] = Flow{
			Src:    topology.NodeID(rng.IntN(8)),
			Dst:    topology.NodeID(rng.IntN(8)),
			Demand: 1 + rng.Float64()*10,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Solve(flows)
	}
}

func TestStreamsFieldDegradesController(t *testing.T) {
	// One flow carrying 8 hardware streams must see the same effective
	// controller capacity as 8 single-stream flows.
	s := sys(topology.MachineB())
	one := s.Solve([]Flow{{Src: 0, Dst: 0, Demand: 100, Streams: 8}}).TotalRate()
	many := make([]Flow, 8)
	for i := range many {
		many[i] = Flow{Src: 0, Dst: 0, Demand: 12.5}
	}
	eight := s.Solve(many).TotalRate()
	if math.Abs(one-eight) > 1e-6 {
		t.Fatalf("aggregated streams %v != separate streams %v", one, eight)
	}
	solo := s.Solve([]Flow{{Src: 0, Dst: 0, Demand: 100}}).TotalRate()
	if one >= solo {
		t.Fatalf("multi-stream flow not degraded: %v >= %v", one, solo)
	}
}
