package mm

import (
	"testing"

	"bwap/internal/topology"
)

// FuzzSegmentEquivalence fuzzes the interval split/merge path against the
// per-page reference implementation: the input bytes decode to an
// operation stream (faults, unaligned mbinds, weighted interleaves,
// migration drains and rate-limited migrations) driven through both a
// run-length Segment and a refSegment, with full state equivalence —
// node assignments, counts, fractions, migration volume — demanded after
// every operation. The seed corpus below runs in a plain `go test`, so CI
// exercises every opcode without -fuzz; `go test -fuzz
// FuzzSegmentEquivalence ./internal/mm` explores further.
//
// This closes the gap left by the randomized-but-not-fuzzed equivalence
// test: rand-driven sequences only ever sample the generator's
// distribution, while the fuzzer mutates the raw operand bytes — page
// indexes on run boundaries, zero-length binds, degenerate weight
// vectors — exactly where split/merge bookkeeping breaks.
func FuzzSegmentEquivalence(f *testing.F) {
	// One seed per opcode plus mixed streams, with operands chosen to sit
	// on interesting boundaries (page 0, full-range binds, zero weights).
	f.Add([]byte{40, 0, 0, 0, 5, 1, 0, 0, 0, 0})                         // single fault
	f.Add([]byte{12, 0, 1, 2, 0, 0, 0, 0, 0, 0})                         // fault everything
	f.Add([]byte{100, 0, 2, 5, 0, 1, 0, 3, 1, 0})                        // unaligned mbind + move
	f.Add([]byte{77, 0, 3, 3, 0, 7, 1, 2, 1, 0})                         // weighted interleave
	f.Add([]byte{31, 0, 1, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}) // fault-all then drain
	f.Add([]byte{
		63, 0,
		1, 3, 0, 0, 0, 0, 0, 0, // fault everything on node 3
		5, 9, 200, 30, 0, 120, 0, 0, // migrate toward a skewed target
		4, 0, 0, 0, 0, 0, 0, 0, // drain
	})
	f.Add([]byte{
		90, 1, // 346 pages
		2, 15, 0, 0, 255, 255, 1, 0, // full-range uniform interleave, all nodes, move
		0, 0, 90, 2, 0, 0, 0, 0, // fault page on a run boundary
		3, 0, 6, 0, 2, 1, 1, 0, // weighted with zero weights in the vector
		5, 1, 1, 1, 3, 255, 0, 0, // migrate, tiny budget
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		const numNodes = 4
		if len(data) < 2 {
			return
		}
		pageCount := 1 + (int(data[0])|int(data[1])<<8)%600
		data = data[2:]

		as := NewAddressSpace(numNodes)
		s := as.AddSegment("fz", uint64(pageCount)*PageSize, SharedOwner)
		ref := newRefSegment(numNodes, pageCount)
		refDrained := int64(0)

		for op := 0; len(data) >= 8 && op < 64; op++ {
			c := data[:8]
			data = data[8:]
			switch c[0] % 6 {
			case 0: // single fault
				p := (int(c[1]) | int(c[2])<<8) % pageCount
				n := topology.NodeID(c[3] % numNodes)
				s.Fault(p, n)
				ref.fault(p, n)
			case 1: // fault everything
				n := topology.NodeID(c[1] % numNodes)
				s.FaultAll(n)
				ref.faultAll(n)
			case 2: // uniform interleave over an arbitrary (unaligned,
				// possibly out-of-range) byte window and node set
				var nodes []topology.NodeID
				for n := 0; n < numNodes; n++ {
					if c[1]&(1<<n) != 0 {
						nodes = append(nodes, topology.NodeID(n))
					}
				}
				if len(nodes) == 0 {
					nodes = []topology.NodeID{topology.NodeID(c[1] % numNodes)}
				}
				offset := (uint64(c[2]) | uint64(c[3])<<8) * PageSize / 3 * 3
				length := (1 + uint64(c[4]) | uint64(c[5])<<8) * PageSize * 2 / 3
				flags := Flags(0)
				if c[6]&1 != 0 {
					flags = MoveFlag
				}
				if err := s.Mbind(offset, length, nodes, flags); err != nil {
					t.Fatal(err)
				}
				ref.mbind(offset, length, nodes, flags)
			case 3: // kernel-level weighted interleave
				w := make([]float64, numNodes)
				sum := 0.0
				for n := 0; n < numNodes; n++ {
					w[n] = float64(c[1+n] % 8)
					sum += w[n]
				}
				if sum == 0 {
					w[int(c[5])%numNodes] = 1
				}
				flags := Flags(0)
				if c[6]&1 != 0 {
					flags = MoveFlag
				}
				if err := s.MbindWeighted(w, flags); err != nil {
					t.Fatal(err)
				}
				ref.mbindWeighted(w, flags)
			case 4: // drain returns the delta since the previous drain
				got := as.DrainMigratedBytes()
				if want := ref.migrated - refDrained; got != want {
					t.Fatalf("op %d: drain = %d, ref %d", op, got, want)
				}
				refDrained = ref.migrated
			case 5: // rate-limited migration toward a byte-derived target
				raw := [4]float64{float64(c[1]) + 1, float64(c[2]) + 1, float64(c[3]) + 1, 1}
				sum := raw[0] + raw[1] + raw[2] + raw[3]
				target := make([]float64, numNodes)
				for n := range target {
					target[n] = raw[n] / sum
				}
				budget := (int64(c[4]) | int64(c[5])<<8) * PageSize
				moved, err := s.MigrateToward(target, budget)
				if err != nil {
					t.Fatal(err)
				}
				if want := ref.migrateToward(target, budget); moved != want {
					t.Fatalf("op %d: MigrateToward moved %d, ref %d", op, moved, want)
				}
			}
			checkEquiv(t, "after fuzz op", s, ref)
		}
	})
}
