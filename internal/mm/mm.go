// Package mm simulates the OS virtual-memory mechanisms BWAP builds on:
// address spaces made of segments (.data/BSS/heap mappings), 4 KiB pages
// with a page→node mapping, fault-driven first-touch, the mbind(2) system
// call with uniform-interleave semantics and MPOL_MF_MOVE migration, the
// kernel-level weighted-interleave policy the paper adds, and a migration
// byte counter so the simulator can charge page-migration cost.
//
// Section III-B2 of the paper executes Algorithm 1 against exactly this
// API surface; the core package reimplements the algorithm verbatim on top
// of this package.
//
// Pages are not materialized individually. A Segment stores a sorted list
// of runs — (startPage, placement-pattern) intervals covering the segment —
// so creating a segment is O(1) regardless of size, placement calls split
// and merge O(affected runs), per-node page counts are maintained
// incrementally, and Fractions() is a cached view recomputed only after a
// placement change. Placement patterns are either an explicit node sequence
// applied cyclically from an origin page (faults, binds and uniform
// interleaves) or a weighted Bresenham assignment anchored at page 0 (the
// kernel-level weighted interleave); both reproduce, page for page, the
// assignment a per-page implementation of the same calls would produce.
//
// An AddressSpace is not safe for concurrent use; the simulation engine
// drives each address space from a single goroutine.
package mm

import (
	"fmt"
	"slices"
	"sort"

	"bwap/internal/topology"
)

// PageSize is the simulated page size in bytes — the Linux default 4 KiB
// used by all the paper's experiments (large pages are future work there).
const PageSize = 4096

// SharedOwner marks a segment accessed uniformly by all worker nodes
// (the paper's "shared pages").
const SharedOwner topology.NodeID = -1

// Unmapped is the node value of a page that has not been faulted in.
const Unmapped topology.NodeID = -1

// Flags mirror the mbind(2) flags the paper relies on.
type Flags uint

const (
	// MoveFlag corresponds to MPOL_MF_MOVE: migrate currently mapped pages
	// that do not conform to the requested policy.
	MoveFlag Flags = 1 << iota
	// StrictFlag corresponds to MPOL_MF_STRICT; with MoveFlag it demands
	// full conformance (our simulated migrations always succeed, so it is
	// recorded but has no additional effect).
	StrictFlag
)

// patternKind discriminates the placement patterns a run can carry.
type patternKind uint8

const (
	patUnmapped patternKind = iota
	// patSeq assigns page p to seq[(p-origin) mod len(seq)].
	patSeq
	// patWeighted assigns pages by the Bresenham weighted round-robin of
	// MbindWeighted, anchored at page 0 of the segment.
	patWeighted
)

// pattern is a placement rule for a page interval. Patterns are value
// types; their slices are immutable once built and may be shared between
// runs (splits keep the slice, only the covered interval changes).
type pattern struct {
	kind    patternKind
	origin  int
	seq     []topology.NodeID
	weights []float64 // normalized
}

func (p pattern) mapped() bool { return p.kind != patUnmapped }

// sameFunc reports whether two patterns assign every page identically —
// the merge criterion for adjacent runs.
func (p pattern) sameFunc(q pattern) bool {
	if p.kind != q.kind {
		return false
	}
	switch p.kind {
	case patUnmapped:
		return true
	case patSeq:
		k := len(p.seq)
		return len(q.seq) == k && (p.origin-q.origin)%k == 0 && slices.Equal(p.seq, q.seq)
	default:
		return slices.Equal(p.weights, q.weights)
	}
}

// seqIndex returns the index into seq for an absolute page.
func (p pattern) seqIndex(page int) int {
	k := len(p.seq)
	i := (page - p.origin) % k
	if i < 0 {
		i += k
	}
	return i
}

// nodeAt returns the node the pattern assigns to page. Weighted patterns
// replay the Bresenham walk from page 0, so this is O(page) for them; it is
// only used by point queries (tests, tools) and the slow migration path.
func (p pattern) nodeAt(page int) topology.NodeID {
	switch p.kind {
	case patUnmapped:
		return Unmapped
	case patSeq:
		return p.seq[p.seqIndex(page)]
	default:
		it := newBresIter(p.weights)
		var n topology.NodeID
		for i := 0; i <= page; i++ {
			n = it.next()
		}
		return n
	}
}

// countInto adds sign× the pattern's per-node page counts over [lo,hi)
// into counts. Seq patterns are counted in O(len(seq)); weighted patterns
// replay the Bresenham walk (placement-time only).
func (p pattern) countInto(lo, hi int, counts []int64, sign int64) {
	if lo >= hi {
		return
	}
	switch p.kind {
	case patUnmapped:
	case patSeq:
		k := len(p.seq)
		span := hi - lo
		if cycles := int64(span / k); cycles > 0 {
			for _, n := range p.seq {
				counts[n] += sign * cycles
			}
		}
		idx := p.seqIndex(lo)
		for i := 0; i < span%k; i++ {
			counts[p.seq[idx]] += sign
			idx++
			if idx == k {
				idx = 0
			}
		}
	default:
		it := newBresIter(p.weights)
		for page := 0; page < hi; page++ {
			n := it.next()
			if page >= lo {
				counts[n] += sign
			}
		}
	}
}

// samePlacement counts the pages in [lo,hi) that patterns p and q assign
// to the same node — the pages a re-bind from p to q does NOT migrate.
// Two cyclic patterns are compared over one joint period; weighted
// patterns are replayed.
func samePlacement(p, q pattern, lo, hi int) int64 {
	if lo >= hi {
		return 0
	}
	if p.kind == patSeq && q.kind == patSeq {
		span := hi - lo
		period := lcm(len(p.seq), len(q.seq))
		window := period
		if window > span {
			window = span
		}
		ip, iq := p.seqIndex(lo), q.seqIndex(lo)
		var windowMatch, rem int64
		remLen := span % period
		for i := 0; i < window; i++ {
			if p.seq[ip] == q.seq[iq] {
				windowMatch++
				if i < remLen {
					rem++
				}
			}
			if ip++; ip == len(p.seq) {
				ip = 0
			}
			if iq++; iq == len(q.seq) {
				iq = 0
			}
		}
		if span <= period {
			return windowMatch
		}
		return int64(span/period)*windowMatch + rem
	}
	// At least one weighted side: replay from page 0.
	next := patternCursor(p)
	nextQ := patternCursor(q)
	var match int64
	for page := 0; page < hi; page++ {
		a, b := next(), nextQ()
		if page >= lo && a == b {
			match++
		}
	}
	return match
}

// patternCursor returns a function yielding the pattern's node for pages
// 0, 1, 2, … in order.
func patternCursor(p pattern) func() topology.NodeID {
	switch p.kind {
	case patSeq:
		idx := p.seqIndex(0)
		return func() topology.NodeID {
			n := p.seq[idx]
			if idx++; idx == len(p.seq) {
				idx = 0
			}
			return n
		}
	case patWeighted:
		it := newBresIter(p.weights)
		return it.next
	default:
		return func() topology.NodeID { return Unmapped }
	}
}

func lcm(a, b int) int {
	x, y := a, b
	for y != 0 {
		x, y = y, x%y
	}
	return a / x * b
}

// bresIter replays the Bresenham weighted round-robin of MbindWeighted:
// each page, every positive weight accrues credit and the page goes to the
// highest-credit node (first index wins ties), which then pays one page of
// credit. The arithmetic matches a per-page implementation bit for bit.
type bresIter struct {
	weights []float64
	credit  []float64
}

func newBresIter(weights []float64) *bresIter {
	return &bresIter{weights: weights, credit: make([]float64, len(weights))}
}

func (it *bresIter) next() topology.NodeID {
	best := -1
	for n, w := range it.weights {
		if w <= 0 {
			continue
		}
		it.credit[n] += w
		if best == -1 || it.credit[n] > it.credit[best] {
			best = n
		}
	}
	it.credit[best]--
	return topology.NodeID(best)
}

// run is one interval of pages sharing a placement pattern. A run spans
// [start, nextRun.start) — the last run ends at the segment's page count.
type run struct {
	start int
	pat   pattern
}

// Segment is one contiguous virtual mapping (e.g. .data, BSS, or a heap
// arena) with a per-page physical node assignment, stored run-length
// encoded.
type Segment struct {
	name      string
	start     uint64
	pageCount int
	runs      []run
	runsAlt   []run // scratch for rebuilds, swapped with runs
	// counts[n] is the number of pages currently on node n, maintained
	// incrementally by every placement operation.
	counts []int64
	mapped int
	owner  topology.NodeID
	as     *AddressSpace

	frac      []float64
	fracDirty bool
	// epoch counts placement changes (binds, faults, migrations) — the
	// invalidation signal behind the simulation engine's quiescent-interval
	// fast-forward: a segment whose epoch is unchanged since the last flow
	// solve contributes byte-identical Fractions(), so the solve can be
	// replayed instead of recomputed.
	epoch uint64
}

// AddressSpace is the set of segments of one simulated process.
type AddressSpace struct {
	numNodes int
	segments []*Segment
	byName   map[string]*Segment
	nextAddr uint64
	// migratedBytes counts every page migration ever performed.
	migratedBytes int64
	// pendingMigrated counts migrations since the last Drain; the engine
	// drains it each tick to charge migration bandwidth cost.
	pendingMigrated int64
	// placeEpoch aggregates every segment's placement epoch (plus segment
	// creation), so the engine checks one counter per address space.
	placeEpoch uint64
	// singleSeq caches one-node sequences so faults and binds share them.
	singleSeq [][]topology.NodeID
	// setSeq caches canonical multi-node sequences by bitmask, so repeated
	// mbinds over the same set (Algorithm 1's sub-range sweeps, retunes)
	// share one slice instead of sorting a fresh copy each call. Patterns
	// never mutate their seq, the same invariant singleSeq relies on.
	setSeq map[uint64][]topology.NodeID
}

// NewAddressSpace returns an empty address space for a machine with
// numNodes NUMA nodes.
func NewAddressSpace(numNodes int) *AddressSpace {
	if numNodes <= 0 {
		panic("mm: address space needs at least one node")
	}
	return &AddressSpace{
		numNodes: numNodes,
		byName:   make(map[string]*Segment),
		nextAddr: 0x4000_0000, // arbitrary base; only relative layout matters
	}
}

// NumNodes returns the node count the address space was built for.
func (as *AddressSpace) NumNodes() int { return as.numNodes }

// single returns the shared one-node sequence for n.
func (as *AddressSpace) single(n topology.NodeID) []topology.NodeID {
	if as.singleSeq == nil {
		as.singleSeq = make([][]topology.NodeID, as.numNodes)
	}
	if as.singleSeq[n] == nil {
		as.singleSeq[n] = []topology.NodeID{n}
	}
	return as.singleSeq[n]
}

// canonicalSet returns the shared sorted-deduplicated sequence for nodes,
// memoized by bitmask for machines of up to 64 nodes (larger machines
// fall back to a fresh canonicalNodeSet copy per call).
func (as *AddressSpace) canonicalSet(nodes []topology.NodeID) []topology.NodeID {
	var mask uint64
	for _, n := range nodes {
		if uint(n) >= 64 {
			return canonicalNodeSet(nodes)
		}
		mask |= 1 << uint(n)
	}
	if set, ok := as.setSeq[mask]; ok {
		return set
	}
	set := canonicalNodeSet(nodes)
	if as.setSeq == nil {
		as.setSeq = make(map[uint64][]topology.NodeID)
	}
	as.setSeq[mask] = set
	return set
}

// AddSegment appends a segment of the given length (rounded up to a page
// multiple). owner is SharedOwner for shared data or a node id for
// thread-private data of the threads pinned on that node. The segment is
// created unmapped in O(1) — no per-page state exists.
func (as *AddressSpace) AddSegment(name string, length uint64, owner topology.NodeID) *Segment {
	if length == 0 {
		panic(fmt.Sprintf("mm: segment %q has zero length", name))
	}
	if _, dup := as.byName[name]; dup {
		panic(fmt.Sprintf("mm: duplicate segment %q", name))
	}
	n := int((length + PageSize - 1) / PageSize)
	// Algorithm 1 carves a segment into ~numNodes sub-ranges, and the
	// rebuild scratch mirrors the live slice, so start both at a capacity
	// that avoids growth in the common case — carved out of one backing
	// array (the full slice expressions keep them from growing into each
	// other).
	runScratch := make([]run, 16)
	s := &Segment{
		name:      name,
		start:     as.nextAddr,
		pageCount: n,
		runs:      runScratch[0:1:8],
		runsAlt:   runScratch[8:8:16],
		counts:    make([]int64, as.numNodes),
		frac:      make([]float64, as.numNodes),
		owner:     owner,
		as:        as,
	}
	s.runs[0] = run{start: 0, pat: pattern{kind: patUnmapped}}
	as.nextAddr += uint64(n) * PageSize
	as.segments = append(as.segments, s)
	as.byName[name] = s
	as.placeEpoch++
	return s
}

// PlacementEpoch returns a counter that advances on every placement
// change in any of the address space's segments (and on segment
// creation). Two reads returning the same value bracket an interval in
// which every segment's page→node assignment — and therefore every
// Fractions() view — was bit-identical.
func (as *AddressSpace) PlacementEpoch() uint64 { return as.placeEpoch }

// Segments returns the segments in creation order. The slice is shared;
// do not modify it.
func (as *AddressSpace) Segments() []*Segment { return as.segments }

// Segment returns the named segment, or nil.
func (as *AddressSpace) Segment(name string) *Segment { return as.byName[name] }

// Distribution returns mapped page counts per node across all segments.
func (as *AddressSpace) Distribution() []int64 {
	out := make([]int64, as.numNodes)
	for _, s := range as.segments {
		for n, c := range s.counts {
			out[n] += c
		}
	}
	return out
}

// TotalMigratedBytes returns the lifetime page-migration volume.
func (as *AddressSpace) TotalMigratedBytes() int64 { return as.migratedBytes }

// DrainMigratedBytes returns the migration volume accumulated since the
// previous call and resets the accumulator. The simulation engine calls
// this each tick to charge migration bandwidth.
func (as *AddressSpace) DrainMigratedBytes() int64 {
	v := as.pendingMigrated
	as.pendingMigrated = 0
	return v
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Start returns the segment's base virtual address.
func (s *Segment) Start() uint64 { return s.start }

// Length returns the segment length in bytes.
func (s *Segment) Length() uint64 { return uint64(s.pageCount) * PageSize }

// PageCount returns the number of pages in the segment.
func (s *Segment) PageCount() int { return s.pageCount }

// MappedPages returns how many pages have been faulted in.
func (s *Segment) MappedPages() int { return s.mapped }

// Owner returns SharedOwner or the owning node for private segments.
func (s *Segment) Owner() topology.NodeID { return s.owner }

// Runs returns the number of placement runs the segment currently holds —
// an observability hook for fragmentation monitoring.
func (s *Segment) Runs() int { return len(s.runs) }

// Epoch returns the segment's placement-change counter. It advances on
// every operation that can alter the page→node assignment (faults, binds,
// migrations), conservatively including no-op re-binds; it never advances
// between them, which is what lets the engine reuse a cached flow solve
// while the epoch stands still.
func (s *Segment) Epoch() uint64 { return s.epoch }

// touch records a (possible) placement change: the cached fraction view is
// stale and both the segment's and the address space's epochs advance.
func (s *Segment) touch() {
	s.fracDirty = true
	s.epoch++
	s.as.placeEpoch++
}

// runIndex returns the index of the run containing page i.
func (s *Segment) runIndex(i int) int {
	return sort.Search(len(s.runs), func(j int) bool { return s.runs[j].start > i }) - 1
}

// runEnd returns the exclusive page bound of run j.
func (s *Segment) runEnd(j int) int {
	if j+1 < len(s.runs) {
		return s.runs[j+1].start
	}
	return s.pageCount
}

// Node returns the node of page i, or Unmapped. It panics for an
// out-of-range page, like an indexed per-page array would.
func (s *Segment) Node(i int) topology.NodeID {
	if i < 0 || i >= s.pageCount {
		panic(fmt.Sprintf("mm: %s: page %d out of range [0,%d)", s.name, i, s.pageCount))
	}
	return s.runs[s.runIndex(i)].pat.nodeAt(i)
}

// Counts returns a copy of the per-node page counts.
func (s *Segment) Counts() []int64 { return append([]int64(nil), s.counts...) }

// NumNodes returns the node count of the segment's address space.
func (s *Segment) NumNodes() int { return s.as.numNodes }

// Fractions returns the fraction of mapped pages on each node. If nothing
// is mapped, all fractions are zero.
//
// The returned slice is a cached view owned by the segment, recomputed
// lazily after placement changes: callers must not modify it and must not
// hold it across placement operations. The simulation engine reads it
// every tick; the cache is what keeps that read allocation-free.
func (s *Segment) Fractions() []float64 {
	if s.fracDirty {
		s.fracDirty = false
		if s.mapped == 0 {
			for i := range s.frac {
				s.frac[i] = 0
			}
		} else {
			m := float64(s.mapped)
			for n, c := range s.counts {
				s.frac[n] = float64(c) / m
			}
		}
	}
	return s.frac
}

// appendRun appends a run to dst, merging it into the previous run when
// both cover pages with the same placement function.
func appendRun(dst []run, start int, pat pattern) []run {
	if n := len(dst); n > 0 && dst[n-1].pat.sameFunc(pat) {
		return dst
	}
	return append(dst, run{start: start, pat: pat})
}

// replaceRange applies pattern np to pages [a,b): unmapped pages always
// adopt np (allocation under the policy); mapped pages adopt it only when
// move is set, counting a migration for every page whose node changes.
// Counts, the mapped total and the migration accumulators are maintained
// incrementally; the runs slice is rebuilt into scratch and swapped, so a
// steady-state re-bind of an existing range allocates nothing.
func (s *Segment) replaceRange(a, b int, np pattern, move bool) {
	if a < 0 {
		a = 0
	}
	if b > s.pageCount {
		b = s.pageCount
	}
	if a >= b {
		return
	}
	out := s.runsAlt[:0]
	migrated := int64(0)
	for j := range s.runs {
		r := s.runs[j]
		lo, hi := r.start, s.runEnd(j)
		if hi <= a || lo >= b {
			out = appendRun(out, lo, r.pat)
			continue
		}
		if lo < a {
			out = appendRun(out, lo, r.pat)
		}
		il, ih := max(lo, a), min(hi, b)
		switch {
		case !r.pat.mapped():
			s.mapped += ih - il
			np.countInto(il, ih, s.counts, 1)
			out = appendRun(out, il, np)
		case move:
			migrated += int64(ih-il) - samePlacement(r.pat, np, il, ih)
			r.pat.countInto(il, ih, s.counts, -1)
			np.countInto(il, ih, s.counts, 1)
			out = appendRun(out, il, np)
		default:
			out = appendRun(out, il, r.pat)
		}
		if hi > b {
			out = appendRun(out, b, r.pat)
		}
	}
	s.runs, s.runsAlt = out, s.runs
	s.touch()
	if migrated > 0 {
		s.as.migratedBytes += migrated * PageSize
		s.as.pendingMigrated += migrated * PageSize
	}
}

// Fault maps page i onto node n if it is unmapped (first-touch semantics).
// It reports whether a new mapping was created. It panics for an
// out-of-range page, like an indexed per-page array would.
func (s *Segment) Fault(i int, n topology.NodeID) bool {
	if i < 0 || i >= s.pageCount {
		panic(fmt.Sprintf("mm: %s: page %d out of range [0,%d)", s.name, i, s.pageCount))
	}
	if s.runs[s.runIndex(i)].pat.mapped() {
		return false
	}
	s.replaceRange(i, i+1, pattern{kind: patSeq, origin: i, seq: s.as.single(n)}, false)
	return true
}

// FaultAll first-touches every unmapped page of the segment onto node n.
func (s *Segment) FaultAll(n topology.NodeID) {
	s.replaceRange(0, s.pageCount, pattern{kind: patSeq, seq: s.as.single(n)}, false)
}

// canonicalNodeSet sorts node ids ascending and removes duplicates,
// mirroring the kernel's bitmask representation of an interleave set. The
// copy is retained by the caller's pattern, so it must be owned; the sort
// is an insertion sort because node sets are at most machine-sized (a
// handful of ids) and this runs on every mbind — reflection-based
// sort.Slice dominated the fleet's placement allocation profile here.
func canonicalNodeSet(nodes []topology.NodeID) []topology.NodeID {
	out := append(make([]topology.NodeID, 0, len(nodes)), nodes...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// checkNodes validates a node set argument.
func (s *Segment) checkNodes(nodes []topology.NodeID) error {
	if len(nodes) == 0 {
		return fmt.Errorf("mm: %s: empty node set", s.name)
	}
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= s.as.numNodes {
			return fmt.Errorf("mm: %s: node %d out of range [0,%d)", s.name, n, s.as.numNodes)
		}
	}
	return nil
}

// Mbind applies a uniform page interleave over the byte range
// [offset, offset+length) of the segment, mirroring
// mbind(MPOL_INTERLEAVE). The range is truncated to the segment and
// page-aligned (offset rounded down, end rounded up). The node set is a
// *set* — as in the kernel, where it is a bitmask — so caller order is
// irrelevant: page p of the range targets the (p mod k)-th set node in
// ascending id order, counted from the start of the range. Each mbind call
// establishes its own interleave origin, and identical ranges re-bound over
// the same set are no-ops; both properties are what keep Algorithm 1's
// DWP steps incremental.
//
// With MoveFlag, mapped pages that violate the target are migrated
// (MPOL_MF_MOVE); unmapped pages are always mapped to their target
// (allocation under the policy).
func (s *Segment) Mbind(offset, length uint64, nodes []topology.NodeID, flags Flags) error {
	if err := s.checkNodes(nodes); err != nil {
		return err
	}
	if offset >= s.Length() || length == 0 {
		return nil
	}
	end := offset + length
	if end > s.Length() {
		end = s.Length()
	}
	first := int(offset / PageSize)
	last := int((end + PageSize - 1) / PageSize)
	var set []topology.NodeID
	if len(nodes) == 1 {
		set = s.as.single(nodes[0]) // share the sequence so adjacent binds merge
	} else if set = s.as.canonicalSet(nodes); len(set) == 1 {
		set = s.as.single(set[0])
	}
	s.replaceRange(first, last, pattern{kind: patSeq, origin: first, seq: set}, flags&MoveFlag != 0)
	return nil
}

// MbindWeighted applies the kernel-level weighted-interleave policy the
// paper implements as a new system call (Section III-B2): pages are
// assigned in a Bresenham-style weighted round-robin so that every prefix
// of the segment approximates the weight distribution. Weights must have
// one entry per node and a positive sum; they are normalized internally.
func (s *Segment) MbindWeighted(weights []float64, flags Flags) error {
	if len(weights) != s.as.numNodes {
		return fmt.Errorf("mm: %s: %d weights for %d nodes", s.name, len(weights), s.as.numNodes)
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("mm: %s: negative weight %f for node %d", s.name, w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("mm: %s: weights sum to zero", s.name)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	s.replaceRange(0, s.pageCount, pattern{kind: patWeighted, weights: norm}, flags&MoveFlag != 0)
	return nil
}

// migrateEdit is one contiguous block of pages MigrateToward re-homes.
type migrateEdit struct {
	lo, hi int
	to     topology.NodeID
}

// MigrateToward moves up to maxBytes of mapped pages so the segment's
// distribution approaches target (a fraction vector over nodes). Pages move
// in page order from the most over-represented nodes to the most
// under-represented ones, and the cost is proportional to the runs visited
// and pages actually moved — not the segment size. It returns the bytes
// actually migrated. This is the primitive behind the simulated AutoNUMA
// policy's rate-limited locality migrations.
func (s *Segment) MigrateToward(target []float64, maxBytes int64) (int64, error) {
	if len(target) != s.as.numNodes {
		return 0, fmt.Errorf("mm: %s: %d target fractions for %d nodes", s.name, len(target), s.as.numNodes)
	}
	if s.mapped == 0 || maxBytes <= 0 {
		return 0, nil
	}
	// Deficit (in pages) per node: positive = wants pages.
	deficit := make([]int64, s.as.numNodes)
	for n := range deficit {
		want := int64(target[n] * float64(s.mapped))
		deficit[n] = want - s.counts[n]
	}
	budget := maxBytes / PageSize
	if budget == 0 {
		return 0, nil
	}
	argmax := func() int {
		best, bestDeficit := -1, int64(0)
		for n, d := range deficit {
			if d > bestDeficit {
				best, bestDeficit = n, d
			}
		}
		return best
	}
	// receiverQuota returns how many consecutive pages may move to rcv
	// before a per-page argmax re-evaluation would pick a different
	// receiver — the bound that keeps bulk moves identical to a per-page
	// implementation, which alternates between receivers whose deficits
	// converge (ties break to the lowest node id).
	receiverQuota := func(rcv int) int64 {
		second, secondIdx := int64(0), -1
		for n, d := range deficit {
			if n != rcv && d > second {
				second, secondIdx = d, n
			}
		}
		if secondIdx < 0 {
			return deficit[rcv]
		}
		q := deficit[rcv] - second
		if rcv < secondIdx {
			q++ // rcv wins the tie at equality
		}
		return q
	}
	var edits []migrateEdit
	moved := int64(0)
scan:
	for j := 0; j < len(s.runs) && budget > 0; j++ {
		r := s.runs[j]
		lo, hi := r.start, s.runEnd(j)
		if !r.pat.mapped() {
			continue
		}
		if r.pat.kind == patSeq && len(r.pat.seq) == 1 {
			// Fast path: a single-node run donates a contiguous prefix.
			d := r.pat.seq[0]
			p := lo
			for budget > 0 && p < hi && deficit[d] < 0 {
				rcv := argmax()
				if rcv < 0 {
					break scan
				}
				k := min(int64(hi-p), -deficit[d], receiverQuota(rcv), budget)
				edits = append(edits, migrateEdit{lo: p, hi: p + int(k), to: topology.NodeID(rcv)})
				s.counts[d] -= k
				s.counts[rcv] += k
				deficit[d] += k
				deficit[rcv] -= k
				budget -= k
				moved += k
				p += int(k)
			}
			continue
		}
		// General path: walk the run's assignment page by page. Bounded by
		// the run length, as a per-page implementation would be.
		next := patternCursor(r.pat)
		for skip := 0; skip < lo; skip++ {
			next()
		}
		for p := lo; p < hi && budget > 0; p++ {
			cur := next()
			if deficit[cur] >= 0 {
				continue
			}
			rcv := argmax()
			if rcv < 0 {
				break scan
			}
			if n := len(edits); n > 0 && edits[n-1].hi == p && edits[n-1].to == topology.NodeID(rcv) {
				edits[n-1].hi = p + 1
			} else {
				edits = append(edits, migrateEdit{lo: p, hi: p + 1, to: topology.NodeID(rcv)})
			}
			s.counts[cur]--
			s.counts[rcv]++
			deficit[cur]++
			deficit[rcv]--
			budget--
			moved++
		}
	}
	if moved == 0 {
		return 0, nil
	}
	s.applyEdits(edits)
	s.as.migratedBytes += moved * PageSize
	s.as.pendingMigrated += moved * PageSize
	s.touch()
	return moved * PageSize, nil
}

// applyEdits rebuilds the runs slice with the (sorted, disjoint) edit
// blocks re-homed to their destination nodes. Counts have already been
// adjusted by the caller.
func (s *Segment) applyEdits(edits []migrateEdit) {
	out := s.runsAlt[:0]
	e := 0
	for j := range s.runs {
		r := s.runs[j]
		lo, hi := r.start, s.runEnd(j)
		pos := lo
		for e < len(edits) && edits[e].lo < hi {
			// Clip the edit to this run; a coalesced edit may span runs.
			el, eh := max(edits[e].lo, lo), min(edits[e].hi, hi)
			if pos < el {
				out = appendRun(out, pos, r.pat)
			}
			out = appendRun(out, el, pattern{kind: patSeq, origin: el, seq: s.as.single(edits[e].to)})
			pos = eh
			if edits[e].hi > hi {
				break // remainder of the edit belongs to the next run
			}
			e++
		}
		if pos < hi {
			out = appendRun(out, pos, r.pat)
		}
	}
	s.runs, s.runsAlt = out, s.runs
}
