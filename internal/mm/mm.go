// Package mm simulates the OS virtual-memory mechanisms BWAP builds on:
// address spaces made of segments (.data/BSS/heap mappings), 4 KiB pages
// with a page→node mapping, fault-driven first-touch, the mbind(2) system
// call with uniform-interleave semantics and MPOL_MF_MOVE migration, the
// kernel-level weighted-interleave policy the paper adds, and a migration
// byte counter so the simulator can charge page-migration cost.
//
// Section III-B2 of the paper executes Algorithm 1 against exactly this
// API surface; the core package reimplements the algorithm verbatim on top
// of this package.
//
// An AddressSpace is not safe for concurrent use; the simulation engine
// drives each address space from a single goroutine.
package mm

import (
	"fmt"
	"sort"

	"bwap/internal/topology"
)

// PageSize is the simulated page size in bytes — the Linux default 4 KiB
// used by all the paper's experiments (large pages are future work there).
const PageSize = 4096

// SharedOwner marks a segment accessed uniformly by all worker nodes
// (the paper's "shared pages").
const SharedOwner topology.NodeID = -1

// Unmapped is the node value of a page that has not been faulted in.
const Unmapped topology.NodeID = -1

// Flags mirror the mbind(2) flags the paper relies on.
type Flags uint

const (
	// MoveFlag corresponds to MPOL_MF_MOVE: migrate currently mapped pages
	// that do not conform to the requested policy.
	MoveFlag Flags = 1 << iota
	// StrictFlag corresponds to MPOL_MF_STRICT; with MoveFlag it demands
	// full conformance (our simulated migrations always succeed, so it is
	// recorded but has no additional effect).
	StrictFlag
)

// Segment is one contiguous virtual mapping (e.g. .data, BSS, or a heap
// arena) with a per-page physical node assignment.
type Segment struct {
	name  string
	start uint64
	// pages[i] is the node holding page i, or Unmapped.
	pages []topology.NodeID
	// counts[n] is the number of pages currently on node n.
	counts []int64
	mapped int
	owner  topology.NodeID
	as     *AddressSpace
}

// AddressSpace is the set of segments of one simulated process.
type AddressSpace struct {
	numNodes int
	segments []*Segment
	byName   map[string]*Segment
	nextAddr uint64
	// migratedBytes counts every page migration ever performed.
	migratedBytes int64
	// pendingMigrated counts migrations since the last Drain; the engine
	// drains it each tick to charge migration bandwidth cost.
	pendingMigrated int64
}

// NewAddressSpace returns an empty address space for a machine with
// numNodes NUMA nodes.
func NewAddressSpace(numNodes int) *AddressSpace {
	if numNodes <= 0 {
		panic("mm: address space needs at least one node")
	}
	return &AddressSpace{
		numNodes: numNodes,
		byName:   make(map[string]*Segment),
		nextAddr: 0x4000_0000, // arbitrary base; only relative layout matters
	}
}

// NumNodes returns the node count the address space was built for.
func (as *AddressSpace) NumNodes() int { return as.numNodes }

// AddSegment appends a segment of the given length (rounded up to a page
// multiple). owner is SharedOwner for shared data or a node id for
// thread-private data of the threads pinned on that node.
func (as *AddressSpace) AddSegment(name string, length uint64, owner topology.NodeID) *Segment {
	if length == 0 {
		panic(fmt.Sprintf("mm: segment %q has zero length", name))
	}
	if _, dup := as.byName[name]; dup {
		panic(fmt.Sprintf("mm: duplicate segment %q", name))
	}
	n := int((length + PageSize - 1) / PageSize)
	s := &Segment{
		name:   name,
		start:  as.nextAddr,
		pages:  make([]topology.NodeID, n),
		counts: make([]int64, as.numNodes),
		owner:  owner,
		as:     as,
	}
	for i := range s.pages {
		s.pages[i] = Unmapped
	}
	as.nextAddr += uint64(n) * PageSize
	as.segments = append(as.segments, s)
	as.byName[name] = s
	return s
}

// Segments returns the segments in creation order. The slice is shared;
// do not modify it.
func (as *AddressSpace) Segments() []*Segment { return as.segments }

// Segment returns the named segment, or nil.
func (as *AddressSpace) Segment(name string) *Segment { return as.byName[name] }

// Distribution returns mapped page counts per node across all segments.
func (as *AddressSpace) Distribution() []int64 {
	out := make([]int64, as.numNodes)
	for _, s := range as.segments {
		for n, c := range s.counts {
			out[n] += c
		}
	}
	return out
}

// TotalMigratedBytes returns the lifetime page-migration volume.
func (as *AddressSpace) TotalMigratedBytes() int64 { return as.migratedBytes }

// DrainMigratedBytes returns the migration volume accumulated since the
// previous call and resets the accumulator. The simulation engine calls
// this each tick to charge migration bandwidth.
func (as *AddressSpace) DrainMigratedBytes() int64 {
	v := as.pendingMigrated
	as.pendingMigrated = 0
	return v
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Start returns the segment's base virtual address.
func (s *Segment) Start() uint64 { return s.start }

// Length returns the segment length in bytes.
func (s *Segment) Length() uint64 { return uint64(len(s.pages)) * PageSize }

// PageCount returns the number of pages in the segment.
func (s *Segment) PageCount() int { return len(s.pages) }

// MappedPages returns how many pages have been faulted in.
func (s *Segment) MappedPages() int { return s.mapped }

// Owner returns SharedOwner or the owning node for private segments.
func (s *Segment) Owner() topology.NodeID { return s.owner }

// Node returns the node of page i, or Unmapped.
func (s *Segment) Node(i int) topology.NodeID { return s.pages[i] }

// Counts returns a copy of the per-node page counts.
func (s *Segment) Counts() []int64 { return append([]int64(nil), s.counts...) }

// Fractions returns the fraction of mapped pages on each node. If nothing
// is mapped, all fractions are zero.
func (s *Segment) Fractions() []float64 {
	out := make([]float64, len(s.counts))
	if s.mapped == 0 {
		return out
	}
	for n, c := range s.counts {
		out[n] = float64(c) / float64(s.mapped)
	}
	return out
}

// setPage maps or migrates page i to node n, maintaining counters.
func (s *Segment) setPage(i int, n topology.NodeID) {
	cur := s.pages[i]
	if cur == n {
		return
	}
	if cur != Unmapped {
		s.counts[cur]--
		s.as.migratedBytes += PageSize
		s.as.pendingMigrated += PageSize
	} else {
		s.mapped++
	}
	s.pages[i] = n
	s.counts[n]++
}

// Fault maps page i onto node n if it is unmapped (first-touch semantics).
// It reports whether a new mapping was created.
func (s *Segment) Fault(i int, n topology.NodeID) bool {
	if s.pages[i] != Unmapped {
		return false
	}
	s.setPage(i, n)
	return true
}

// FaultAll first-touches every unmapped page of the segment onto node n.
func (s *Segment) FaultAll(n topology.NodeID) {
	for i := range s.pages {
		s.Fault(i, n)
	}
}

// canonicalNodeSet sorts node ids ascending and removes duplicates,
// mirroring the kernel's bitmask representation of an interleave set.
func canonicalNodeSet(nodes []topology.NodeID) []topology.NodeID {
	out := append([]topology.NodeID(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// checkNodes validates a node set argument.
func (s *Segment) checkNodes(nodes []topology.NodeID) error {
	if len(nodes) == 0 {
		return fmt.Errorf("mm: %s: empty node set", s.name)
	}
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= s.as.numNodes {
			return fmt.Errorf("mm: %s: node %d out of range [0,%d)", s.name, n, s.as.numNodes)
		}
	}
	return nil
}

// Mbind applies a uniform page interleave over the byte range
// [offset, offset+length) of the segment, mirroring
// mbind(MPOL_INTERLEAVE). The range is truncated to the segment and
// page-aligned (offset rounded down, end rounded up). The node set is a
// *set* — as in the kernel, where it is a bitmask — so caller order is
// irrelevant: page p of the range targets the (p mod k)-th set node in
// ascending id order, counted from the start of the range. Each mbind call
// establishes its own interleave origin, and identical ranges re-bound over
// the same set are no-ops; both properties are what keep Algorithm 1's
// DWP steps incremental.
//
// With MoveFlag, mapped pages that violate the target are migrated
// (MPOL_MF_MOVE); unmapped pages are always mapped to their target
// (allocation under the policy).
func (s *Segment) Mbind(offset, length uint64, nodes []topology.NodeID, flags Flags) error {
	if err := s.checkNodes(nodes); err != nil {
		return err
	}
	nodes = canonicalNodeSet(nodes)
	if offset >= s.Length() || length == 0 {
		return nil
	}
	end := offset + length
	if end > s.Length() {
		end = s.Length()
	}
	first := int(offset / PageSize)
	last := int((end + PageSize - 1) / PageSize)
	for p := first; p < last; p++ {
		target := nodes[(p-first)%len(nodes)]
		if s.pages[p] == Unmapped || flags&MoveFlag != 0 {
			s.setPage(p, target)
		}
	}
	return nil
}

// MbindWeighted applies the kernel-level weighted-interleave policy the
// paper implements as a new system call (Section III-B2): pages are
// assigned in a Bresenham-style weighted round-robin so that every prefix
// of the segment approximates the weight distribution. Weights must have
// one entry per node and a positive sum; they are normalized internally.
func (s *Segment) MbindWeighted(weights []float64, flags Flags) error {
	if len(weights) != s.as.numNodes {
		return fmt.Errorf("mm: %s: %d weights for %d nodes", s.name, len(weights), s.as.numNodes)
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("mm: %s: negative weight %f for node %d", s.name, w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("mm: %s: weights sum to zero", s.name)
	}
	credit := make([]float64, len(weights))
	for p := range s.pages {
		best := -1
		for n, w := range weights {
			if w <= 0 {
				continue
			}
			credit[n] += w / sum
			if best == -1 || credit[n] > credit[best] {
				best = n
			}
		}
		credit[best]--
		target := topology.NodeID(best)
		if s.pages[p] == Unmapped || flags&MoveFlag != 0 {
			s.setPage(p, target)
		}
	}
	return nil
}

// MigrateToward moves up to maxBytes of mapped pages so the segment's
// distribution approaches target (a fraction vector over nodes). Pages move
// from the most over-represented nodes to the most under-represented ones.
// It returns the bytes actually migrated. This is the primitive behind the
// simulated AutoNUMA policy's rate-limited locality migrations.
func (s *Segment) MigrateToward(target []float64, maxBytes int64) (int64, error) {
	if len(target) != s.as.numNodes {
		return 0, fmt.Errorf("mm: %s: %d target fractions for %d nodes", s.name, len(target), s.as.numNodes)
	}
	if s.mapped == 0 || maxBytes <= 0 {
		return 0, nil
	}
	// Deficit (in pages) per node: positive = wants pages.
	deficit := make([]int64, s.as.numNodes)
	for n := range deficit {
		want := int64(target[n] * float64(s.mapped))
		deficit[n] = want - s.counts[n]
	}
	budget := maxBytes / PageSize
	moved := int64(0)
	if budget == 0 {
		return 0, nil
	}
	// Single pass: re-home pages on over-represented nodes to the node with
	// the largest deficit.
	for i := range s.pages {
		if budget == 0 {
			break
		}
		cur := s.pages[i]
		if cur == Unmapped || deficit[cur] >= 0 {
			continue
		}
		best, bestDeficit := -1, int64(0)
		for n, d := range deficit {
			if d > bestDeficit {
				best, bestDeficit = n, d
			}
		}
		if best < 0 {
			break
		}
		deficit[cur]++
		deficit[best]--
		s.setPage(i, topology.NodeID(best))
		moved += PageSize
		budget--
	}
	return moved, nil
}
