package mm

import (
	"math/rand"
	"testing"

	"bwap/internal/topology"
)

// refSegment is a per-page reference implementation of the Segment
// placement semantics — a direct port of the original flat-array code —
// used to pin the interval implementation to byte-identical behaviour.
type refSegment struct {
	numNodes int
	pages    []topology.NodeID
	counts   []int64
	mapped   int
	migrated int64
}

func newRefSegment(numNodes, pageCount int) *refSegment {
	r := &refSegment{
		numNodes: numNodes,
		pages:    make([]topology.NodeID, pageCount),
		counts:   make([]int64, numNodes),
	}
	for i := range r.pages {
		r.pages[i] = Unmapped
	}
	return r
}

func (r *refSegment) setPage(i int, n topology.NodeID) {
	cur := r.pages[i]
	if cur == n {
		return
	}
	if cur != Unmapped {
		r.counts[cur]--
		r.migrated += PageSize
	} else {
		r.mapped++
	}
	r.pages[i] = n
	r.counts[n]++
}

func (r *refSegment) fault(i int, n topology.NodeID) {
	if r.pages[i] == Unmapped {
		r.setPage(i, n)
	}
}

func (r *refSegment) faultAll(n topology.NodeID) {
	for i := range r.pages {
		r.fault(i, n)
	}
}

func (r *refSegment) length() uint64 { return uint64(len(r.pages)) * PageSize }

func (r *refSegment) mbind(offset, length uint64, nodes []topology.NodeID, flags Flags) {
	nodes = canonicalNodeSet(nodes)
	if offset >= r.length() || length == 0 {
		return
	}
	end := offset + length
	if end > r.length() {
		end = r.length()
	}
	first := int(offset / PageSize)
	last := int((end + PageSize - 1) / PageSize)
	for p := first; p < last; p++ {
		target := nodes[(p-first)%len(nodes)]
		if r.pages[p] == Unmapped || flags&MoveFlag != 0 {
			r.setPage(p, target)
		}
	}
}

func (r *refSegment) mbindWeighted(weights []float64, flags Flags) {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	credit := make([]float64, len(weights))
	for p := range r.pages {
		best := -1
		for n, w := range weights {
			if w <= 0 {
				continue
			}
			credit[n] += w / sum
			if best == -1 || credit[n] > credit[best] {
				best = n
			}
		}
		credit[best]--
		target := topology.NodeID(best)
		if r.pages[p] == Unmapped || flags&MoveFlag != 0 {
			r.setPage(p, target)
		}
	}
}

func (r *refSegment) migrateToward(target []float64, maxBytes int64) int64 {
	if r.mapped == 0 || maxBytes <= 0 {
		return 0
	}
	deficit := make([]int64, r.numNodes)
	for n := range deficit {
		want := int64(target[n] * float64(r.mapped))
		deficit[n] = want - r.counts[n]
	}
	budget := maxBytes / PageSize
	moved := int64(0)
	if budget == 0 {
		return 0
	}
	for i := range r.pages {
		if budget == 0 {
			break
		}
		cur := r.pages[i]
		if cur == Unmapped || deficit[cur] >= 0 {
			continue
		}
		best, bestDeficit := -1, int64(0)
		for n, d := range deficit {
			if d > bestDeficit {
				best, bestDeficit = n, d
			}
		}
		if best < 0 {
			break
		}
		deficit[cur]++
		deficit[best]--
		r.setPage(i, topology.NodeID(best))
		moved += PageSize
		budget--
	}
	return moved
}

// checkEquiv compares the interval segment against the reference, page for
// page, counter for counter.
func checkEquiv(t *testing.T, step string, s *Segment, ref *refSegment) {
	t.Helper()
	if s.MappedPages() != ref.mapped {
		t.Fatalf("%s: mapped = %d, ref %d", step, s.MappedPages(), ref.mapped)
	}
	for n, c := range s.Counts() {
		if c != ref.counts[n] {
			t.Fatalf("%s: counts[%d] = %d, ref %d (counts %v vs %v)", step, n, c, ref.counts[n], s.Counts(), ref.counts)
		}
	}
	if got := s.as.TotalMigratedBytes(); got != ref.migrated {
		t.Fatalf("%s: migrated = %d, ref %d", step, got, ref.migrated)
	}
	fr := s.Fractions()
	for n := range fr {
		want := 0.0
		if ref.mapped > 0 {
			want = float64(ref.counts[n]) / float64(ref.mapped)
		}
		if fr[n] != want {
			t.Fatalf("%s: fraction[%d] = %v, ref %v", step, n, fr[n], want)
		}
	}
	for p := range ref.pages {
		if got := s.Node(p); got != ref.pages[p] {
			t.Fatalf("%s: page %d on node %d, ref %d", step, p, got, ref.pages[p])
		}
	}
}

// TestIntervalMatchesPerPageReference drives randomized operation
// sequences through both implementations and demands byte-identical node
// assignments, counts, fractions and migration volume after every step.
func TestIntervalMatchesPerPageReference(t *testing.T) {
	const numNodes = 4
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		pageCount := 1 + rng.Intn(600)
		as := NewAddressSpace(numNodes)
		s := as.AddSegment("d", uint64(pageCount)*PageSize, SharedOwner)
		ref := newRefSegment(numNodes, pageCount)
		refDrained := int64(0) // lifetime bytes already drained, mirrors pendingMigrated

		for op := 0; op < 25; op++ {
			switch rng.Intn(6) {
			case 0: // single fault
				p := rng.Intn(pageCount)
				n := topology.NodeID(rng.Intn(numNodes))
				s.Fault(p, n)
				ref.fault(p, n)
			case 1: // fault everything
				n := topology.NodeID(rng.Intn(numNodes))
				s.FaultAll(n)
				ref.faultAll(n)
			case 2: // uniform interleave over a random byte range and set
				var nodes []topology.NodeID
				for len(nodes) == 0 {
					for n := 0; n < numNodes; n++ {
						if rng.Intn(2) == 0 {
							nodes = append(nodes, topology.NodeID(n))
						}
					}
				}
				// Deliberately unaligned, possibly out-of-range offsets.
				offset := uint64(rng.Intn(pageCount+2)) * PageSize / 3 * 3
				length := uint64(1+rng.Intn(pageCount)) * PageSize * 2 / 3
				flags := Flags(0)
				if rng.Intn(2) == 0 {
					flags = MoveFlag
				}
				if err := s.Mbind(offset, length, nodes, flags); err != nil {
					t.Fatal(err)
				}
				ref.mbind(offset, length, nodes, flags)
			case 3: // kernel-level weighted interleave
				w := make([]float64, numNodes)
				sum := 0.0
				for n := range w {
					w[n] = float64(rng.Intn(8))
					sum += w[n]
				}
				if sum == 0 {
					w[rng.Intn(numNodes)] = 1
				}
				flags := Flags(0)
				if rng.Intn(2) == 0 {
					flags = MoveFlag
				}
				if err := s.MbindWeighted(w, flags); err != nil {
					t.Fatal(err)
				}
				ref.mbindWeighted(w, flags)
			case 4: // drain returns the delta since the previous drain
				got := as.DrainMigratedBytes()
				if want := ref.migrated - refDrained; got != want {
					t.Fatalf("trial %d op %d: drain = %d, ref %d", trial, op, got, want)
				}
				refDrained = ref.migrated
			case 5: // rate-limited migration toward a random distribution
				target := make([]float64, numNodes)
				rem := 1.0
				for n := 0; n < numNodes-1; n++ {
					target[n] = rem * rng.Float64()
					rem -= target[n]
				}
				target[numNodes-1] = rem
				budget := int64(rng.Intn(2*pageCount)) * PageSize
				moved, err := s.MigrateToward(target, budget)
				if err != nil {
					t.Fatal(err)
				}
				if want := ref.migrateToward(target, budget); moved != want {
					t.Fatalf("trial %d op %d: MigrateToward moved %d, ref %d", trial, op, moved, want)
				}
			}
			checkEquiv(t, "after op", s, ref)
		}
	}
}

// TestMigrateTowardIntervalInvariants checks the interval MigrateToward
// against the properties the per-page version guaranteed: budget respected,
// page population preserved, deficits never overshot, deterministic.
func TestMigrateTowardIntervalInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		pageCount := 50 + rng.Intn(400)
		as := NewAddressSpace(4)
		s := as.AddSegment("d", uint64(pageCount)*PageSize, SharedOwner)
		// Random starting placement.
		s.FaultAll(topology.NodeID(rng.Intn(4)))
		if rng.Intn(2) == 0 {
			nodes := []topology.NodeID{0, topology.NodeID(1 + rng.Intn(3))}
			if err := s.Mbind(0, s.Length(), nodes, MoveFlag); err != nil {
				t.Fatal(err)
			}
		}
		target := make([]float64, 4)
		rem := 1.0
		for n := 0; n < 3; n++ {
			target[n] = rem * rng.Float64()
			rem -= target[n]
		}
		target[3] = rem
		budget := int64(1+rng.Intn(pageCount)) * PageSize

		before := s.Counts()
		var beforeTotal int64
		for _, c := range before {
			beforeTotal += c
		}
		moved, err := s.MigrateToward(target, budget)
		if err != nil {
			t.Fatal(err)
		}
		if moved > budget {
			t.Fatalf("moved %d bytes over budget %d", moved, budget)
		}
		var afterTotal int64
		for _, c := range s.Counts() {
			afterTotal += c
		}
		if afterTotal != beforeTotal || s.MappedPages() != pageCount {
			t.Fatalf("page population changed: %d -> %d", beforeTotal, afterTotal)
		}
		// No node may end up further from its target than it started on the
		// wrong side (no overshoot past the deficit).
		for n, c := range s.Counts() {
			want := int64(target[n] * float64(pageCount))
			if before[n] < want && c > want {
				t.Fatalf("node %d overshot: %d -> %d (want %d)", n, before[n], c, want)
			}
			if before[n] > want && c < want {
				t.Fatalf("node %d undershot: %d -> %d (want %d)", n, before[n], c, want)
			}
		}
	}
}

// TestMigrateTowardFullySatisfiesWithBudget confirms convergence matches
// the per-page implementation's end state when the budget is unbounded.
func TestMigrateTowardFullySatisfiesWithBudget(t *testing.T) {
	as := NewAddressSpace(4)
	s := as.AddSegment("d", PageSize*1000, SharedOwner)
	s.FaultAll(0)
	target := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 10; i++ {
		if _, err := s.MigrateToward(target, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counts()
	for n, f := range target {
		want := int64(f * 1000)
		if diff := c[n] - want; diff < -1 || diff > 1+3 { // rounding slack
			t.Fatalf("counts[%d] = %d, want ~%d", n, c[n], want)
		}
	}
	moved, _ := s.MigrateToward(target, 1<<40)
	if moved != 0 {
		t.Fatalf("converged segment still moved %d bytes", moved)
	}
}

// TestRunCompressionStaysBounded pins the representation advantage the
// rewrite exists for: a multi-GiB segment is one run after a uniform
// placement and O(nodes) runs after Algorithm-1-style sub-range binds.
func TestRunCompressionStaysBounded(t *testing.T) {
	as := NewAddressSpace(8)
	s := as.AddSegment("big", 4<<30, SharedOwner) // 1M pages, no per-page state
	all := make([]topology.NodeID, 8)
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	if err := s.Mbind(0, s.Length(), all, MoveFlag); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 1 {
		t.Fatalf("uniform placement uses %d runs, want 1", s.Runs())
	}
	// Algorithm-1 shape: progressively narrower sub-range binds.
	addr := uint64(0)
	for i := 0; i < 8; i++ {
		size := s.Length() / 8
		if err := s.Mbind(addr, size, all[i:], MoveFlag); err != nil {
			t.Fatal(err)
		}
		addr += size
	}
	if s.Runs() > 8 {
		t.Fatalf("sub-range binds fragmented into %d runs, want <= 8", s.Runs())
	}
	if s.MappedPages() != s.PageCount() {
		t.Fatal("pages lost")
	}
}
