package mm

import (
	"math"
	"testing"
	"testing/quick"

	"bwap/internal/stats"
	"bwap/internal/topology"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(4)
}

func TestAddSegmentRoundsToPages(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("heap", PageSize*3+1, SharedOwner)
	if s.PageCount() != 4 {
		t.Fatalf("PageCount = %d, want 4", s.PageCount())
	}
	if s.Length() != 4*PageSize {
		t.Fatalf("Length = %d, want %d", s.Length(), 4*PageSize)
	}
	if s.MappedPages() != 0 {
		t.Fatalf("fresh segment has %d mapped pages", s.MappedPages())
	}
}

func TestSegmentAddressesDisjoint(t *testing.T) {
	as := newAS(t)
	a := as.AddSegment("a", PageSize*8, SharedOwner)
	b := as.AddSegment("b", PageSize*8, SharedOwner)
	if a.Start()+a.Length() > b.Start() {
		t.Fatalf("segments overlap: a=[%d,%d) b starts at %d", a.Start(), a.Start()+a.Length(), b.Start())
	}
}

func TestDuplicateSegmentPanics(t *testing.T) {
	as := newAS(t)
	as.AddSegment("x", PageSize, SharedOwner)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate segment name did not panic")
		}
	}()
	as.AddSegment("x", PageSize, SharedOwner)
}

func TestZeroLengthSegmentPanics(t *testing.T) {
	as := newAS(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length segment did not panic")
		}
	}()
	as.AddSegment("z", 0, SharedOwner)
}

func TestFirstTouchSemantics(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	if !s.Fault(0, 2) {
		t.Fatal("first fault reported no new mapping")
	}
	if s.Fault(0, 3) {
		t.Fatal("second fault on same page reported a new mapping")
	}
	if s.Node(0) != 2 {
		t.Fatalf("page 0 on node %d, want first-touch node 2", s.Node(0))
	}
	if as.TotalMigratedBytes() != 0 {
		t.Fatal("fault counted as migration")
	}
}

func TestFaultAll(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*10, SharedOwner)
	s.Fault(3, 1)
	s.FaultAll(0)
	if s.MappedPages() != 10 {
		t.Fatalf("mapped = %d, want 10", s.MappedPages())
	}
	c := s.Counts()
	if c[0] != 9 || c[1] != 1 {
		t.Fatalf("counts = %v, want [9 1 0 0]", c)
	}
}

func TestMbindUniformInterleave(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*12, SharedOwner)
	if err := s.Mbind(0, s.Length(), []topology.NodeID{0, 1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c[0] != 4 || c[1] != 4 || c[2] != 4 || c[3] != 0 {
		t.Fatalf("counts = %v, want [4 4 4 0]", c)
	}
	// Round-robin page order.
	for p := 0; p < 12; p++ {
		if want := topology.NodeID(p % 3); s.Node(p) != want {
			t.Fatalf("page %d on node %d, want %d", p, s.Node(p), want)
		}
	}
}

func TestMbindRangeOriginIsRangeStart(t *testing.T) {
	// Each mbind call interleaves relative to its own range start — the
	// property Algorithm 1 depends on.
	as := newAS(t)
	s := as.AddSegment("d", PageSize*8, SharedOwner)
	if err := s.Mbind(4*PageSize, 4*PageSize, []topology.NodeID{2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Node(4) != 2 || s.Node(5) != 3 || s.Node(6) != 2 || s.Node(7) != 3 {
		t.Fatalf("range interleave wrong: %v %v %v %v", s.Node(4), s.Node(5), s.Node(6), s.Node(7))
	}
	if s.Node(0) != Unmapped {
		t.Fatal("mbind leaked outside its range")
	}
}

func TestMbindWithoutMoveLeavesMappedPages(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	s.FaultAll(3)
	if err := s.Mbind(0, s.Length(), []topology.NodeID{0, 1}, 0); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if s.Node(p) != 3 {
			t.Fatalf("page %d migrated without MoveFlag", p)
		}
	}
	if as.TotalMigratedBytes() != 0 {
		t.Fatal("migration counted without MoveFlag")
	}
}

func TestMbindMoveMigratesAndCounts(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	s.FaultAll(3)
	if err := s.Mbind(0, s.Length(), []topology.NodeID{0, 1}, MoveFlag|StrictFlag); err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c[0] != 2 || c[1] != 2 || c[3] != 0 {
		t.Fatalf("counts = %v, want [2 2 0 0]", c)
	}
	if as.TotalMigratedBytes() != 4*PageSize {
		t.Fatalf("migrated = %d, want %d", as.TotalMigratedBytes(), 4*PageSize)
	}
}

func TestMbindMoveIdempotentNoExtraMigration(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*8, SharedOwner)
	nodes := []topology.NodeID{0, 1, 2, 3}
	if err := s.Mbind(0, s.Length(), nodes, MoveFlag); err != nil {
		t.Fatal(err)
	}
	before := as.TotalMigratedBytes()
	if err := s.Mbind(0, s.Length(), nodes, MoveFlag); err != nil {
		t.Fatal(err)
	}
	if as.TotalMigratedBytes() != before {
		t.Fatal("re-applying identical policy migrated pages")
	}
}

func TestMbindErrors(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	if err := s.Mbind(0, PageSize, nil, 0); err == nil {
		t.Fatal("empty node set accepted")
	}
	if err := s.Mbind(0, PageSize, []topology.NodeID{9}, 0); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Out-of-segment offset is a silent no-op (mirrors clamping).
	if err := s.Mbind(s.Length()+PageSize, PageSize, []topology.NodeID{0}, 0); err != nil {
		t.Fatal(err)
	}
	if s.MappedPages() != 0 {
		t.Fatal("out-of-range mbind mapped pages")
	}
}

func TestMbindRangeClampedToSegment(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	if err := s.Mbind(2*PageSize, 100*PageSize, []topology.NodeID{1}, 0); err != nil {
		t.Fatal(err)
	}
	if s.MappedPages() != 2 {
		t.Fatalf("mapped = %d, want 2 (clamped)", s.MappedPages())
	}
}

func TestMbindWeightedMatchesWeights(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*1000, SharedOwner)
	w := []float64{0.5, 0.3, 0.2, 0}
	if err := s.MbindWeighted(w, 0); err != nil {
		t.Fatal(err)
	}
	fr := s.Fractions()
	for n := range w {
		if math.Abs(fr[n]-w[n]) > 0.01 {
			t.Fatalf("fraction[%d] = %v, want %v", n, fr[n], w[n])
		}
	}
	if s.Counts()[3] != 0 {
		t.Fatal("zero-weight node received pages")
	}
}

func TestMbindWeightedPrefixProperty(t *testing.T) {
	// Bresenham assignment: every prefix approximates the weights, so the
	// distribution holds even if the application only touches part of the
	// segment.
	as := newAS(t)
	s := as.AddSegment("d", PageSize*1000, SharedOwner)
	w := []float64{0.4, 0.4, 0.1, 0.1}
	if err := s.MbindWeighted(w, 0); err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for p := 0; p < 250; p++ {
		counts[s.Node(p)]++
	}
	for n := range w {
		if math.Abs(counts[n]/250-w[n]) > 0.05 {
			t.Fatalf("prefix fraction[%d] = %v, want ~%v", n, counts[n]/250, w[n])
		}
	}
}

func TestMbindWeightedNormalizesWeights(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*100, SharedOwner)
	if err := s.MbindWeighted([]float64{5, 5, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c[0] != 50 || c[1] != 50 {
		t.Fatalf("counts = %v, want [50 50 0 0]", c)
	}
}

func TestMbindWeightedErrors(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	if err := s.MbindWeighted([]float64{1, 1}, 0); err == nil {
		t.Fatal("wrong weight count accepted")
	}
	if err := s.MbindWeighted([]float64{1, -1, 0, 0}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := s.MbindWeighted([]float64{0, 0, 0, 0}, 0); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestMbindWeightedPropertyFractions(t *testing.T) {
	rng := stats.NewRand(99)
	f := func(a, b, c, d uint8) bool {
		w := []float64{float64(a), float64(b), float64(c), float64(d%8) + 1} // ensure positive sum
		as := NewAddressSpace(4)
		s := as.AddSegment("d", PageSize*2048, SharedOwner)
		if err := s.MbindWeighted(w, 0); err != nil {
			return false
		}
		sum := w[0] + w[1] + w[2] + w[3]
		fr := s.Fractions()
		for n := range w {
			if math.Abs(fr[n]-w[n]/sum) > 0.01 {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateTowardRespectsBudget(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*100, SharedOwner)
	s.FaultAll(0)
	target := []float64{0, 1, 0, 0}
	moved, err := s.MigrateToward(target, 10*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 10*PageSize {
		t.Fatalf("moved = %d, want %d", moved, 10*PageSize)
	}
	if s.Counts()[1] != 10 {
		t.Fatalf("counts = %v, want 10 pages on node 1", s.Counts())
	}
}

func TestMigrateTowardConverges(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*100, SharedOwner)
	s.FaultAll(0)
	target := []float64{0.25, 0.25, 0.25, 0.25}
	for i := 0; i < 20; i++ {
		if _, err := s.MigrateToward(target, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	fr := s.Fractions()
	for n := range target {
		if math.Abs(fr[n]-0.25) > 0.02 {
			t.Fatalf("fraction[%d] = %v after convergence, want 0.25", n, fr[n])
		}
	}
	// Converged: further calls migrate nothing.
	moved, _ := s.MigrateToward(target, 1<<30)
	if moved != 0 {
		t.Fatalf("converged segment still moved %d bytes", moved)
	}
}

func TestMigrateTowardPreservesPageCount(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*64, SharedOwner)
	s.FaultAll(2)
	if _, err := s.MigrateToward([]float64{0.5, 0.5, 0, 0}, 1<<30); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, c := range s.Counts() {
		total += c
	}
	if total != 64 {
		t.Fatalf("page count changed: %d, want 64", total)
	}
	if s.MappedPages() != 64 {
		t.Fatalf("mapped changed: %d", s.MappedPages())
	}
}

func TestMigrateTowardErrors(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	if _, err := s.MigrateToward([]float64{1}, PageSize); err == nil {
		t.Fatal("wrong target length accepted")
	}
}

func TestDrainMigratedBytes(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	s.FaultAll(0)
	if err := s.Mbind(0, s.Length(), []topology.NodeID{1}, MoveFlag); err != nil {
		t.Fatal(err)
	}
	if got := as.DrainMigratedBytes(); got != 4*PageSize {
		t.Fatalf("drain = %d, want %d", got, 4*PageSize)
	}
	if got := as.DrainMigratedBytes(); got != 0 {
		t.Fatalf("second drain = %d, want 0", got)
	}
	if as.TotalMigratedBytes() != 4*PageSize {
		t.Fatal("TotalMigratedBytes must survive draining")
	}
}

func TestDistributionAggregatesSegments(t *testing.T) {
	as := newAS(t)
	a := as.AddSegment("a", PageSize*4, SharedOwner)
	b := as.AddSegment("b", PageSize*4, topology.NodeID(1))
	a.FaultAll(0)
	b.FaultAll(1)
	d := as.Distribution()
	if d[0] != 4 || d[1] != 4 || d[2] != 0 {
		t.Fatalf("distribution = %v", d)
	}
}

func TestFractionsUnmappedSegment(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("d", PageSize*4, SharedOwner)
	for _, f := range s.Fractions() {
		if f != 0 {
			t.Fatal("unmapped segment has nonzero fractions")
		}
	}
}

func TestSegmentLookup(t *testing.T) {
	as := newAS(t)
	as.AddSegment("heap", PageSize, SharedOwner)
	if as.Segment("heap") == nil {
		t.Fatal("Segment lookup failed")
	}
	if as.Segment("nope") != nil {
		t.Fatal("Segment lookup invented a segment")
	}
	if len(as.Segments()) != 1 {
		t.Fatal("Segments() wrong length")
	}
}

func TestOwnerRecorded(t *testing.T) {
	as := newAS(t)
	s := as.AddSegment("p", PageSize, topology.NodeID(2))
	if s.Owner() != 2 {
		t.Fatalf("owner = %d, want 2", s.Owner())
	}
	sh := as.AddSegment("s", PageSize, SharedOwner)
	if sh.Owner() != SharedOwner {
		t.Fatalf("owner = %d, want SharedOwner", sh.Owner())
	}
}

func TestMbindNodeOrderIrrelevant(t *testing.T) {
	// The kernel represents the interleave set as a bitmask; caller order
	// must not matter.
	a := NewAddressSpace(4)
	sa := a.AddSegment("d", PageSize*12, SharedOwner)
	if err := sa.Mbind(0, sa.Length(), []topology.NodeID{2, 0, 1}, 0); err != nil {
		t.Fatal(err)
	}
	b := NewAddressSpace(4)
	sb := b.AddSegment("d", PageSize*12, SharedOwner)
	if err := sb.Mbind(0, sb.Length(), []topology.NodeID{0, 1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 12; p++ {
		if sa.Node(p) != sb.Node(p) {
			t.Fatalf("page %d differs by caller order: %v vs %v", p, sa.Node(p), sb.Node(p))
		}
	}
	// Duplicates are collapsed.
	c := NewAddressSpace(4)
	sc := c.AddSegment("d", PageSize*12, SharedOwner)
	if err := sc.Mbind(0, sc.Length(), []topology.NodeID{1, 1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	counts := sc.Counts()
	if counts[0] != 6 || counts[1] != 6 {
		t.Fatalf("dedup failed: %v", counts)
	}
}

// TestPlacementEpochs pins the invalidation contract behind the engine's
// quiescent-interval fast-forward: every operation that can change a
// page→node assignment advances both the segment's Epoch and the address
// space's aggregated PlacementEpoch; pure reads never do.
func TestPlacementEpochs(t *testing.T) {
	as := NewAddressSpace(4)
	base := as.PlacementEpoch()
	s := as.AddSegment("d", PageSize*16, SharedOwner)
	if as.PlacementEpoch() == base {
		t.Fatal("AddSegment did not advance the address-space epoch")
	}

	// Each mutation class advances both counters.
	step := func(name string, f func()) {
		t.Helper()
		se, ae := s.Epoch(), as.PlacementEpoch()
		f()
		if s.Epoch() == se {
			t.Fatalf("%s did not advance the segment epoch", name)
		}
		if as.PlacementEpoch() == ae {
			t.Fatalf("%s did not advance the address-space epoch", name)
		}
	}
	step("Fault", func() { s.Fault(3, 1) })
	step("FaultAll", func() { s.FaultAll(0) })
	step("Mbind", func() {
		if err := s.Mbind(0, s.Length(), []topology.NodeID{0, 1}, MoveFlag); err != nil {
			t.Fatal(err)
		}
	})
	// A re-bind of the identical range and set is conservatively counted
	// as a change (the runs are rebuilt either way).
	step("no-op re-bind", func() {
		if err := s.Mbind(0, s.Length(), []topology.NodeID{0, 1}, MoveFlag); err != nil {
			t.Fatal(err)
		}
	})
	step("MbindWeighted", func() {
		if err := s.MbindWeighted([]float64{0.5, 0.3, 0.2, 0}, MoveFlag); err != nil {
			t.Fatal(err)
		}
	})
	step("MigrateToward", func() {
		if n, err := s.MigrateToward([]float64{0, 0, 0, 1}, PageSize*4); err != nil || n == 0 {
			t.Fatalf("migrate moved %d bytes, err %v", n, err)
		}
	})

	// Reads and ineffective operations stand still.
	se, ae := s.Epoch(), as.PlacementEpoch()
	_ = s.Fractions()
	_ = s.Counts()
	_ = s.Node(5)
	s.Fault(3, 2) // already mapped: first-touch is a no-op
	if n, err := s.MigrateToward([]float64{0, 0, 0, 1}, 0); err != nil || n != 0 {
		t.Fatalf("zero-budget migrate moved %d bytes, err %v", n, err)
	}
	if s.Epoch() != se || as.PlacementEpoch() != ae {
		t.Fatal("reads or no-op operations advanced an epoch")
	}
}
