module bwap

go 1.24
