// The multi-core scaling gate: a hard pass/fail wrapper around the
// BenchmarkFleetThroughputSharded axis, run only by the CI multicore job
// (GOMAXPROCS >= 4). Benchmarks report numbers; this test enforces one —
// under the conservative-lookahead engine, 4 shards must beat 1 shard in
// wall time on the identical warm-cache stream.
package bwap_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"bwap"
)

// TestShardScalingMultiCoreGate fails if the windowed engine does not
// scale with shards. Guarded by BWAP_SCALING_TEST=1 so single-core
// development machines and the reference CI job skip it: on one core the
// shard counts tie modulo overhead and the comparison is meaningless.
func TestShardScalingMultiCoreGate(t *testing.T) {
	if os.Getenv("BWAP_SCALING_TEST") != "1" {
		t.Skip("set BWAP_SCALING_TEST=1 (CI multicore job) to run the scaling gate")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("scaling gate needs >= 4 CPUs, have %d", n)
	}

	const jobs = 48
	stream := []bwap.StreamSpec{{
		Workload: bwap.Streamcluster(),
		Arrival:  bwap.ArrivalSpec{Process: "poisson", Rate: 2.0, Count: jobs},
		Workers:  2, WorkScale: 0.05,
	}}
	cache := bwap.NewTuningCache(bwap.Config{Seed: 1}, 0, 1)
	run := func(shards int) time.Duration {
		start := time.Now()
		f, err := bwap.NewFleet(bwap.FleetConfig{
			Machines:      8,
			Shards:        shards,
			Workers:       shards,
			EngineVersion: 2,
			SimCfg:        bwap.Config{Seed: 1},
			Seed:          1,
			Cache:         cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SubmitStream(stream); err != nil {
			t.Fatal(err)
		}
		stats, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Completed != jobs {
			t.Fatalf("%d shards completed %d/%d jobs", shards, stats.Completed, jobs)
		}
		return time.Since(start)
	}
	run(1) // warm the shared tuning cache outside any measured run

	// Best-of-5 per shard count: the gate compares the machines' capability,
	// not a single run's scheduler luck.
	best := func(shards int) time.Duration {
		b := run(shards)
		for i := 0; i < 4; i++ {
			if d := run(shards); d < b {
				b = d
			}
		}
		return b
	}
	t1, t4 := best(1), best(4)
	t.Logf("engine v2 wall time: 1 shard %v, 4 shards %v (%.2fx)", t1, t4, float64(t1)/float64(t4))
	if t4 >= t1 {
		t.Fatalf("4 shards (%v) not faster than 1 shard (%v) under engine v2 on a %d-CPU runner",
			t4, t1, runtime.NumCPU())
	}
}

// TestProbeBurstMultiCoreGate is the probe pool's hard pass/fail wrapper
// around BenchmarkColdCacheProbeBurst: on a multi-core runner, a cold
// cache hit by a burst of distinct workload classes must drain faster
// with four probe workers than with one. Every run builds a fresh fleet
// with a fresh private cache, so each pays the full probe bill; the pool
// width is the only variable. Same guards as the shard gate — the
// comparison is meaningless on a single core.
func TestProbeBurstMultiCoreGate(t *testing.T) {
	if os.Getenv("BWAP_SCALING_TEST") != "1" {
		t.Skip("set BWAP_SCALING_TEST=1 (CI multicore job) to run the probe gate")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("probe gate needs >= 4 CPUs, have %d", n)
	}

	const sigs = 16
	streams := probeBurstStreams(sigs)
	run := func(probeWorkers int) time.Duration {
		start := time.Now()
		f, err := bwap.NewFleet(bwap.FleetConfig{
			Machines:      8,
			Shards:        2,
			Workers:       2,
			EngineVersion: 2,
			ProbeWorkers:  probeWorkers,
			SimCfg:        bwap.Config{Seed: 1},
			Seed:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SubmitStream(streams); err != nil {
			t.Fatal(err)
		}
		stats, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Completed != sigs {
			t.Fatalf("probe-workers=%d completed %d/%d jobs", probeWorkers, stats.Completed, sigs)
		}
		if stats.CacheMisses == 0 {
			t.Fatalf("probe-workers=%d recorded no probe misses; the burst is vacuous", probeWorkers)
		}
		return time.Since(start)
	}
	run(1) // one throwaway run to warm code paths, never the cache

	best := func(probeWorkers int) time.Duration {
		b := run(probeWorkers)
		for i := 0; i < 4; i++ {
			if d := run(probeWorkers); d < b {
				b = d
			}
		}
		return b
	}
	t1, t4 := best(1), best(4)
	t.Logf("cold-cache probe burst wall time: 1 worker %v, 4 workers %v (%.2fx)", t1, t4, float64(t1)/float64(t4))
	if t4 >= t1 {
		t.Fatalf("4 probe workers (%v) not faster than 1 (%v) on a %d-CPU runner",
			t4, t1, runtime.NumCPU())
	}
}
