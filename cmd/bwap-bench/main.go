// bwap-bench runs the repository's root benchmarks and emits a
// machine-readable JSON snapshot (ns/op, B/op, allocs/op), so the
// performance trajectory is tracked across PRs. CI runs it with a short
// -benchtime; the default output name BENCH_7.json follows the PR number.
//
// Usage:
//
//	bwap-bench                                  # all root benchmarks -> BENCH_7.json
//	bwap-bench -bench 'FleetThroughputSharded' -out BENCH_7.json
//	bwap-bench -bench 'EngineTick|Solver' -benchtime 10x -out bench.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion string  `json:"go_version"`
	Bench     string  `json:"bench_regex"`
	BenchTime string  `json:"benchtime"`
	Packages  string  `json:"packages"`
	Entries   []Entry `json:"entries"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value for go test -benchtime")
	pkgs := flag.String("pkgs", "bwap", "packages whose benchmarks to run")
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	args = append(args, strings.Fields(*pkgs)...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bwap-bench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	report := Report{
		GoVersion: goVersion(),
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  *pkgs,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			report.Entries = append(report.Entries, e)
		}
	}
	if len(report.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "bwap-bench: no benchmark lines matched")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bwap-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bwap-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark entries to %s\n", len(report.Entries), *out)
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkEngineTickThroughput-8   10   758516 ns/op   29616 B/op   142 allocs/op
func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Entry{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		}
	}
	return e, true
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
